#include "metrics/quantile_sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "metrics/request_metrics.h"
#include "metrics/summary.h"

namespace splitwise::metrics {
namespace {

/** Exact reference distribution alongside the sketch under test. */
struct Pair {
    QuantileSketch sketch;
    Summary exact;

    void
    add(double v)
    {
        sketch.add(v);
        exact.add(v);
    }
};

void
expectWithin(const Pair& p, double percentile, double rel_bound)
{
    const double exact = p.exact.percentile(percentile);
    const double approx = p.sketch.percentile(percentile);
    ASSERT_GT(exact, 0.0);
    EXPECT_NEAR(approx / exact, 1.0, rel_bound)
        << "p" << percentile << ": exact=" << exact
        << " sketch=" << approx;
}

/**
 * The acceptance bound from the issue: p50/p99 within 1% relative
 * error. The default alpha (0.005) guarantees 0.5% against any
 * sample inside the located bucket, leaving headroom for the
 * half-rank the fractional-rank convention can shift the order
 * statistic by.
 */
TEST(QuantileSketchTest, LinearRampWithinOnePercent)
{
    Pair p;
    for (int i = 0; i < 100000; ++i)
        p.add(0.5 + 0.001 * i);  // 0.5ms .. 100.5ms
    for (double q : {50.0, 90.0, 99.0, 99.9})
        expectWithin(p, q, 0.01);
}

TEST(QuantileSketchTest, GeometricHeavyTailWithinOnePercent)
{
    // Latencies spanning five orders of magnitude - the adversarial
    // case for uniform-bucket histograms, the design case here.
    Pair p;
    double v = 0.01;
    for (int i = 0; i < 60000; ++i) {
        p.add(v);
        v *= 1.0002;  // up to ~0.01 * e^12 ~ 1600
    }
    for (double q : {50.0, 99.0})
        expectWithin(p, q, 0.01);
}

TEST(QuantileSketchTest, BimodalWithOutliersWithinOnePercent)
{
    // 98% fast requests near 40ms, 2% stragglers near 30s: p99 lands
    // inside the straggler mode, three orders of magnitude from p50.
    // (Exactly *at* the cliff the exact side linearly interpolates
    // across the modes while the sketch reports an order statistic,
    // so the conventions diverge by construction - that rank is not
    // a meaningful accuracy probe.)
    Pair p;
    for (int i = 0; i < 98000; ++i)
        p.add(40.0 + 0.0001 * (i % 1000));
    for (int i = 0; i < 2000; ++i)
        p.add(30000.0 + static_cast<double>(i));
    for (double q : {50.0, 99.0})
        expectWithin(p, q, 0.01);
}

TEST(QuantileSketchTest, MomentsAreExact)
{
    Pair p;
    double sum = 0.0;
    for (int i = 1; i <= 1000; ++i) {
        const double v = static_cast<double>(i) * 1.5;
        p.add(v);
        sum += v;
    }
    EXPECT_EQ(p.sketch.count(), 1000u);
    EXPECT_DOUBLE_EQ(p.sketch.sum(), sum);
    EXPECT_DOUBLE_EQ(p.sketch.mean(), sum / 1000.0);
    EXPECT_DOUBLE_EQ(p.sketch.min(), 1.5);
    EXPECT_DOUBLE_EQ(p.sketch.max(), 1500.0);
}

TEST(QuantileSketchTest, EstimatesClampToExactEnvelope)
{
    QuantileSketch s;
    s.add(10.0);
    s.add(20.0);
    // Whatever bucket midpoints say, estimates never leave [min, max].
    EXPECT_GE(s.percentile(0.0), 10.0);
    EXPECT_LE(s.percentile(100.0), 20.0);
    EXPECT_DOUBLE_EQ(s.percentile(100.0), 20.0);
}

TEST(QuantileSketchTest, EmptyAndNanMatchSummaryConventions)
{
    QuantileSketch s;
    EXPECT_TRUE(s.empty());
    EXPECT_DOUBLE_EQ(s.percentile(50.0), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
    s.add(1.0);
    EXPECT_TRUE(std::isnan(s.percentile(
        std::numeric_limits<double>::quiet_NaN())));
}

TEST(QuantileSketchTest, NonPositiveSamplesLandInZeroBucket)
{
    QuantileSketch s;
    s.add(0.0);
    s.add(-1.0);
    s.add(5.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.min(), -1.0);
    // Rank 0 and 1 fall in the zero bucket; the estimate clamps to
    // the exact min.
    EXPECT_DOUBLE_EQ(s.percentile(0.0), -1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100.0), 5.0);
}

TEST(QuantileSketchTest, MergeIsOrderIndependent)
{
    // Shard a stream 8 ways, merge forward and backward: bucket
    // addition must make the results bit-identical - the property
    // the jobs-1-vs-8 report gate rests on.
    std::vector<QuantileSketch> shards(8);
    QuantileSketch whole;
    double v = 0.02;
    for (int i = 0; i < 20000; ++i) {
        shards[static_cast<std::size_t>(i % 8)].add(v);
        whole.add(v);
        v *= 1.0005;
    }
    QuantileSketch forward, backward;
    for (std::size_t i = 0; i < shards.size(); ++i)
        forward.merge(shards[i]);
    for (std::size_t i = shards.size(); i-- > 0;)
        backward.merge(shards[i]);

    for (double q : {0.0, 10.0, 50.0, 90.0, 99.0, 100.0}) {
        EXPECT_DOUBLE_EQ(forward.percentile(q), backward.percentile(q));
        EXPECT_DOUBLE_EQ(forward.percentile(q), whole.percentile(q));
    }
    EXPECT_EQ(forward.count(), whole.count());
    // Sums reassociate floating-point addition across merge orders,
    // so compare those to a relative ulp bound; the percentile
    // comparisons above are bit-exact because they ride on integer
    // bucket counts and the exact min/max envelope.
    EXPECT_NEAR(forward.sum() / backward.sum(), 1.0, 1e-12);
    EXPECT_NEAR(forward.sum() / whole.sum(), 1.0, 1e-12);
    EXPECT_EQ(forward.bucketCount(), whole.bucketCount());
}

TEST(QuantileSketchTest, MergeRejectsMismatchedAlpha)
{
    QuantileSketch a(0.005);
    QuantileSketch b(0.01);
    b.add(1.0);
    EXPECT_THROW(a.merge(b), std::runtime_error);
}

TEST(QuantileSketchTest, ConstructorRejectsBadAlpha)
{
    EXPECT_THROW(QuantileSketch(0.0), std::runtime_error);
    EXPECT_THROW(QuantileSketch(1.0), std::runtime_error);
    EXPECT_THROW(QuantileSketch(-0.5), std::runtime_error);
}

TEST(QuantileSketchTest, MemoryStaysBoundedAtAMillionSamples)
{
    // 10^6 samples across nine decades: the exact store would hold
    // 8 MB of doubles; the sketch holds O(log(max/min)/alpha)
    // buckets. gamma ~ 1.01 covers a decade in ~230 buckets.
    QuantileSketch s;
    double v = 0.001;
    const double step = std::pow(10.0, 9.0 / 1e6);
    for (int i = 0; i < 1000000; ++i) {
        s.add(v);
        v *= step;
    }
    EXPECT_EQ(s.count(), 1000000u);
    EXPECT_LT(s.bucketCount(), 4096u);
    s.clear();
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.bucketCount(), 0u);
}

TEST(RequestMetricsSketchTest, SketchModeDropsSamplesButKeepsStats)
{
    RequestMetrics exact;
    RequestMetrics sketched;
    sketched.setSketchMode(true);
    for (int i = 0; i < 20000; ++i) {
        RequestResult r;
        r.requestId = static_cast<std::uint64_t>(i);
        r.arrival = i;
        r.promptTokens = 100;
        r.outputTokens = 50;
        r.ttftMs = 50.0 * (1.0 + 0.0001 * i);
        r.tbtMs = 30.0 + 0.001 * (i % 97);
        r.maxTbtMs = r.tbtMs * 2.0;
        r.e2eMs = r.ttftMs + 49 * r.tbtMs;
        exact.add(r);
        sketched.add(r);
    }
    EXPECT_TRUE(sketched.results().empty());
    EXPECT_EQ(sketched.completed(), 20000u);
    EXPECT_EQ(sketched.totalOutputTokens(), exact.totalOutputTokens());

    const auto e = exact.ttftStats();
    const auto s = sketched.ttftStats();
    EXPECT_EQ(s.count, e.count);
    EXPECT_DOUBLE_EQ(s.mean, e.mean);
    EXPECT_DOUBLE_EQ(s.max, e.max);
    EXPECT_NEAR(s.p50 / e.p50, 1.0, 0.01);
    EXPECT_NEAR(s.p99 / e.p99, 1.0, 0.01);
}

TEST(RequestMetricsSketchTest, SketchMergeIsOrderIndependent)
{
    auto fill = [](RequestMetrics& m, int lo, int hi) {
        for (int i = lo; i < hi; ++i) {
            RequestResult r;
            r.requestId = static_cast<std::uint64_t>(i);
            r.arrival = i;
            r.ttftMs = 10.0 + 0.01 * i;
            r.tbtMs = 30.0;
            r.maxTbtMs = 45.0;
            r.e2eMs = 500.0 + 0.02 * i;
            m.add(r);
        }
    };
    RequestMetrics a, b, ab, ba;
    a.setSketchMode(true);
    b.setSketchMode(true);
    ab.setSketchMode(true);
    ba.setSketchMode(true);
    fill(a, 0, 500);
    fill(b, 500, 1000);
    ab.merge(a);
    ab.merge(b);
    ba.merge(b);
    ba.merge(a);
    const auto x = ab.ttftStats();
    const auto y = ba.ttftStats();
    EXPECT_EQ(x.count, y.count);
    EXPECT_DOUBLE_EQ(x.p50, y.p50);
    EXPECT_DOUBLE_EQ(x.p99, y.p99);
    EXPECT_DOUBLE_EQ(x.mean, y.mean);
}

TEST(RequestMetricsSketchTest, ModeSwitchAfterAddIsFatal)
{
    RequestMetrics m;
    RequestResult r;
    r.e2eMs = 1.0;
    m.add(r);
    EXPECT_THROW(m.setSketchMode(true), std::runtime_error);
}

}  // namespace
}  // namespace splitwise::metrics
