/**
 * @file
 * Cluster-level latency-attribution tests: breakdown-sums-to-E2E,
 * SLO-breach exemplars, flow events in the Perfetto export, span
 * balance under fault storms, sketch-mode report determinism across
 * job counts, and flight-recorder capture on invariant violations.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/designs.h"
#include "core/report_io.h"
#include "model/llm_config.h"
#include "sim/run_pool.h"
#include "testing/fuzzer.h"
#include "testing/scenario.h"
#include "workload/trace_gen.h"
#include "workload/workloads.h"

#include "../telemetry/json_checker.h"

namespace splitwise {
namespace {

using core::Cluster;
using core::RunReport;
using core::SimConfig;

workload::Trace
convTrace(double rps, double seconds, std::uint64_t seed = 7)
{
    workload::TraceGenerator gen(workload::conversation(), seed);
    return gen.generate(rps, sim::secondsToUs(seconds));
}

#if SPLITWISE_TELEMETRY_ENABLED

TEST(AttributionIntegrationTest, BreakdownSumsToE2eOnClusterRun)
{
    const auto trace = convTrace(8.0, 15);
    SimConfig config;
    config.telemetry.spanTracking = true;
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(2, 2), config);
    const RunReport report = cluster.run(trace);

    ASSERT_NE(cluster.spanTracker(), nullptr);
    EXPECT_EQ(cluster.spanTracker()->liveCount(), 0u);
    EXPECT_EQ(cluster.spanTracker()->completedCount(),
              report.requests.completed());
    EXPECT_EQ(cluster.spanTracker()->integrityError(), "");

    const auto& bd = report.breakdown;
    ASSERT_TRUE(bd.enabled);
    EXPECT_EQ(bd.requests, report.requests.completed());
    ASSERT_GT(bd.e2eTotalMs, 0.0);

    // Contiguous timelines: attribution reproduces E2E exactly, and
    // the per-phase totals sum to the attributed total.
    EXPECT_NEAR(bd.attributedTotalMs / bd.e2eTotalMs, 1.0, 1e-9);
    double phase_sum = 0.0;
    for (const auto& ps : bd.phases)
        phase_sum += ps.totalMs;
    EXPECT_NEAR(phase_sum / bd.e2eTotalMs, 1.0, 1e-9);

    // And the span-side E2E agrees with the metrics-side E2E (same
    // arrival/completion instants, independent bookkeeping) well
    // inside the 0.5% acceptance bound.
    double metrics_e2e = 0.0;
    for (const auto& r : report.requests.results())
        metrics_e2e += r.e2eMs;
    EXPECT_NEAR(bd.e2eTotalMs / metrics_e2e, 1.0, 0.005);
}

TEST(AttributionIntegrationTest, BreakdownSectionGatedInReportJson)
{
    const auto trace = convTrace(4.0, 8);
    auto run_once = [&](bool spans) {
        SimConfig config;
        config.telemetry.spanTracking = spans;
        Cluster cluster(model::llama2_70b(), core::splitwiseHH(1, 1),
                        config);
        return core::reportToJson(cluster.run(trace));
    };
    const std::string with = run_once(true);
    const std::string without = run_once(false);

    test_json::Checker checker(with);
    EXPECT_TRUE(checker.valid())
        << "parse error near " << with.substr(checker.errorAt(), 40);
    EXPECT_NE(with.find("\"breakdown\""), std::string::npos);
    for (const char* phase : {"\"queue\"", "\"prefill\"", "\"kv_transfer\"",
                              "\"decode\"", "\"restart_penalty\""})
        EXPECT_NE(with.find(phase), std::string::npos) << phase;
    // Untracked runs keep the exact pre-existing schema.
    EXPECT_EQ(without.find("\"breakdown\""), std::string::npos);
}

TEST(AttributionIntegrationTest, OverloadYieldsRankedSloExemplars)
{
    // 1P/1T at 20 rps is far past saturation: deep queues, heavy
    // slowdowns, guaranteed SLO breaches to exemplify.
    const auto trace = convTrace(20.0, 10);
    SimConfig config;
    config.telemetry.spanTracking = true;
    config.telemetry.exemplarK = 3;
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(1, 1), config);
    cluster.run(trace);

    const auto& ex = cluster.spanTracker()->exemplars();
    ASSERT_FALSE(ex.empty());
    ASSERT_LE(ex.size(), 3u);
    for (std::size_t i = 1; i < ex.size(); ++i)
        EXPECT_GE(ex[i - 1].slowdown, ex[i].slowdown);
    // Saturated queues push the worst offender well past 1x.
    EXPECT_GT(ex[0].slowdown, 1.0);
    // Each exemplar retains a full, closed, causally ordered timeline.
    for (const auto& e : ex) {
        ASSERT_FALSE(e.timeline.segments.empty());
        EXPECT_NE(e.timeline.doneUs, telemetry::kSpanOpen);
        EXPECT_EQ(e.timeline.segments.front().startUs,
                  e.timeline.arrivalUs);
        for (std::size_t i = 0; i < e.timeline.segments.size(); ++i) {
            const auto& seg = e.timeline.segments[i];
            EXPECT_NE(seg.endUs, telemetry::kSpanOpen);
            EXPECT_GE(seg.endUs, seg.startUs);
            if (i + 1 < e.timeline.segments.size())
                EXPECT_EQ(e.timeline.segments[i + 1].startUs, seg.endUs);
        }
        EXPECT_EQ(e.timeline.segments.back().endUs, e.timeline.doneUs);
    }
}

TEST(AttributionIntegrationTest, FlowEventsLinkPrefillToDecode)
{
    const auto trace = convTrace(6.0, 10);
    SimConfig config;
    config.telemetry.traceEnabled = true;
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(2, 2), config);
    const RunReport report = cluster.run(trace);
    ASSERT_GT(report.transfers.transfers, 0u);

    const auto* rec = cluster.traceRecorder();
    ASSERT_NE(rec, nullptr);
    EXPECT_FALSE(rec->hasPendingFlows());

    const std::string json = rec->toJson();
    test_json::Checker checker(json);
    EXPECT_TRUE(checker.valid())
        << "parse error near " << json.substr(checker.errorAt(), 40);

    auto count = [&](const char* needle) {
        std::size_t n = 0, pos = 0;
        const std::string s(needle);
        while ((pos = json.find(s, pos)) != std::string::npos) {
            ++n;
            pos += s.size();
        }
        return n;
    };
    // Every KV hand-off draws a flow arrow: one 's' on the prompt
    // side, one binding-enclosing 'f' on the decode side.
    const std::size_t starts = count("\"ph\":\"s\"");
    const std::size_t ends = count("\"ph\":\"f\"");
    EXPECT_GE(starts, report.transfers.transfers);
    EXPECT_EQ(starts, ends);
    EXPECT_EQ(count("\"bp\":\"e\""), ends);
}

TEST(AttributionIntegrationTest, SketchReportsByteIdenticalAcrossJobs)
{
    // The sweep determinism contract extended to sketch mode: the
    // per-config report bytes must not depend on the worker count.
    std::vector<std::uint64_t> seeds = {11, 12, 13, 14, 15, 16};
    auto run_all = [&](int jobs) {
        sim::RunPool pool(jobs);
        return pool.map(seeds, [](std::uint64_t seed) {
            workload::TraceGenerator gen(workload::conversation(), seed);
            SimConfig config;
            config.sketchLatencies = true;
            config.telemetry.spanTracking = true;
            Cluster cluster(model::llama2_70b(), core::splitwiseHH(1, 1),
                            config);
            return core::reportToJson(
                cluster.run(gen.generate(5.0, sim::secondsToUs(8.0))));
        });
    };
    const auto serial = run_all(1);
    const auto parallel = run_all(8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "seed " << seeds[i];
    // Sketch-mode reports still carry the full latency sections.
    EXPECT_NE(serial[0].find("\"ttft_ms\""), std::string::npos);
    EXPECT_NE(serial[0].find("\"max_tbt_ms\""), std::string::npos);
}

TEST(AttributionIntegrationTest, FaultStormScenariosKeepSpanBalance)
{
    // Fuzzed scenarios with crashes, link faults, brownouts, and
    // retries, spans force-enabled: the span-balance invariant and
    // the tracker's structural self-check hold at every quiescent
    // point and the final check proves no timeline leaked.
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        testing::Scenario s = testing::makeScenario(seed);
        s.spanOverride = 1;
        ASSERT_TRUE(s.spansEnabled());
        const auto outcome = testing::runScenario(s);
        EXPECT_FALSE(outcome.violated)
            << "seed " << seed << ": " << outcome.invariant << " - "
            << outcome.detail;
    }
}

TEST(AttributionIntegrationTest, SpanOverrideOffDisablesTracking)
{
    testing::Scenario s = testing::makeScenario(3);
    s.traceEnabled = true;
    s.spanOverride = -1;
    EXPECT_FALSE(s.spansEnabled());
    const auto outcome = testing::runScenario(s);
    EXPECT_FALSE(outcome.violated) << outcome.detail;
    EXPECT_EQ(outcome.outcomeJson.find("\"breakdown\""),
              std::string::npos);
}

TEST(AttributionIntegrationTest, ViolationCapturesFlightRecorder)
{
    // Seed a KV leak so an invariant fires mid-run; the outcome must
    // carry the tracker's flight-recorder dump for the postmortem.
    testing::Scenario s = testing::makeScenario(5);
    s.spanOverride = 1;
    s.bug.kind = testing::BugKind::kOrphanKvBlock;
    s.bug.machineId = 0;
    s.bug.atUs = sim::msToUs(300.0);
    const auto outcome = testing::runScenario(s);
    ASSERT_TRUE(outcome.violated);
    ASSERT_FALSE(outcome.flightRecorderJson.empty());
    test_json::Checker checker(outcome.flightRecorderJson);
    EXPECT_TRUE(checker.valid())
        << "parse error near "
        << outcome.flightRecorderJson.substr(checker.errorAt(), 40);
    EXPECT_NE(outcome.flightRecorderJson.find("\"recent\":["),
              std::string::npos);
    EXPECT_NE(outcome.flightRecorderJson.find("\"live\":["),
              std::string::npos);
}

#endif  // SPLITWISE_TELEMETRY_ENABLED

TEST(AttributionIntegrationTest, NoSpanTrackerUnlessEnabled)
{
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(1, 1));
    EXPECT_EQ(cluster.spanTracker(), nullptr);
    const RunReport report = cluster.run(convTrace(2.0, 5));
    EXPECT_FALSE(report.breakdown.enabled);
}

}  // namespace
}  // namespace splitwise
