#include "telemetry/span_tracker.h"

#include <gtest/gtest.h>

#include <string>

namespace splitwise::telemetry {
namespace {

TEST(SpanTrackerTest, LifecycleAttributionSumsToE2e)
{
    SpanTracker t;
    const std::uint64_t id = 7;
    t.transition(id, SpanPhase::kQueue, 0);
    t.transition(id, SpanPhase::kPrefill, 10000);
    t.transition(id, SpanPhase::kKvTransfer, 30000);
    t.transition(id, SpanPhase::kDecode, 34000);
    EXPECT_EQ(t.liveCount(), 1u);
    EXPECT_EQ(t.integrityError(), "");
    t.complete(id, 50000, 1.0);
    EXPECT_EQ(t.liveCount(), 0u);
    EXPECT_EQ(t.completedCount(), 1u);

    const LatencyBreakdown bd = t.breakdown();
    EXPECT_TRUE(bd.enabled);
    EXPECT_EQ(bd.requests, 1u);
    EXPECT_DOUBLE_EQ(bd.e2eTotalMs, 50.0);
    EXPECT_DOUBLE_EQ(bd.attributedTotalMs, 50.0);
    double sum = 0.0;
    for (const auto& ps : bd.phases)
        sum += ps.totalMs;
    EXPECT_DOUBLE_EQ(sum, bd.e2eTotalMs);

    auto total = [&](SpanPhase p) {
        return bd.phases[static_cast<std::size_t>(p)].totalMs;
    };
    EXPECT_DOUBLE_EQ(total(SpanPhase::kQueue), 10.0);
    EXPECT_DOUBLE_EQ(total(SpanPhase::kPrefill), 20.0);
    EXPECT_DOUBLE_EQ(total(SpanPhase::kKvTransfer), 4.0);
    EXPECT_DOUBLE_EQ(total(SpanPhase::kDecode), 16.0);
    EXPECT_DOUBLE_EQ(total(SpanPhase::kRestartPenalty), 0.0);
}

TEST(SpanTrackerTest, RepeatOfOpenPhaseIsANoOp)
{
    SpanTracker t;
    t.transition(1, SpanPhase::kQueue, 0);
    t.transition(1, SpanPhase::kQueue, 500);
    const SpanTimeline* tl = t.liveTimeline(1);
    ASSERT_NE(tl, nullptr);
    ASSERT_EQ(tl->segments.size(), 1u);
    EXPECT_EQ(tl->segments[0].startUs, 0);
    EXPECT_EQ(tl->segments[0].endUs, kSpanOpen);
}

TEST(SpanTrackerTest, BrownoutSubstitutesForQueueWhileEngaged)
{
    SpanTracker t;
    t.setBrownoutLevel(2);
    t.transition(1, SpanPhase::kQueue, 0);
    const SpanTimeline* tl = t.liveTimeline(1);
    ASSERT_NE(tl, nullptr);
    EXPECT_EQ(tl->segments[0].phase, SpanPhase::kBrownoutStall);

    // Back to normal: a fresh request queues as plain kQueue.
    t.setBrownoutLevel(0);
    t.transition(2, SpanPhase::kQueue, 100);
    EXPECT_EQ(t.liveTimeline(2)->segments[0].phase, SpanPhase::kQueue);

    // Non-queue phases are never substituted.
    t.setBrownoutLevel(1);
    t.transition(3, SpanPhase::kPrefill, 200);
    EXPECT_EQ(t.liveTimeline(3)->segments[0].phase, SpanPhase::kPrefill);
}

TEST(SpanTrackerTest, RestartFoldsIncarnationIntoPenalty)
{
    SpanTracker t;
    t.transition(9, SpanPhase::kQueue, 1000);
    t.transition(9, SpanPhase::kPrefill, 2000);
    t.restart(9, 5000);

    const SpanTimeline* tl = t.liveTimeline(9);
    ASSERT_NE(tl, nullptr);
    EXPECT_EQ(tl->restarts, 1);
    // The queue+prefill work collapsed into one penalty segment.
    ASSERT_EQ(tl->segments.size(), 1u);
    EXPECT_EQ(tl->segments[0].phase, SpanPhase::kRestartPenalty);
    EXPECT_EQ(tl->segments[0].startUs, 1000);
    EXPECT_EQ(tl->segments[0].endUs, 5000);

    // Re-admission reopens at the restart timestamp: contiguous.
    t.transition(9, SpanPhase::kQueue, 5000);
    EXPECT_EQ(t.integrityError(), "");
    t.transition(9, SpanPhase::kPrefill, 6000);
    t.transition(9, SpanPhase::kDecode, 8000);
    t.complete(9, 9000, 2.0);

    const LatencyBreakdown bd = t.breakdown();
    auto total = [&](SpanPhase p) {
        return bd.phases[static_cast<std::size_t>(p)].totalMs;
    };
    EXPECT_DOUBLE_EQ(total(SpanPhase::kRestartPenalty), 4.0);
    EXPECT_DOUBLE_EQ(total(SpanPhase::kQueue), 1.0);
    EXPECT_DOUBLE_EQ(total(SpanPhase::kPrefill), 2.0);
    EXPECT_DOUBLE_EQ(total(SpanPhase::kDecode), 1.0);
    EXPECT_DOUBLE_EQ(bd.attributedTotalMs, bd.e2eTotalMs);
    EXPECT_DOUBLE_EQ(bd.e2eTotalMs, 8.0);
}

TEST(SpanTrackerTest, BackToBackRestartsExtendOnePenalty)
{
    SpanTracker t;
    t.transition(4, SpanPhase::kQueue, 0);
    t.restart(4, 1000);
    t.transition(4, SpanPhase::kQueue, 1000);
    t.restart(4, 3000);
    const SpanTimeline* tl = t.liveTimeline(4);
    ASSERT_NE(tl, nullptr);
    EXPECT_EQ(tl->restarts, 2);
    ASSERT_EQ(tl->segments.size(), 1u);
    EXPECT_EQ(tl->segments[0].startUs, 0);
    EXPECT_EQ(tl->segments[0].endUs, 3000);
}

TEST(SpanTrackerTest, ExemplarsKeepWorstKSortedDescending)
{
    SpanTrackerConfig config;
    config.exemplarK = 2;
    SpanTracker t(config);
    const double slowdowns[] = {1.0, 5.0, 3.0, 4.0};
    sim::TimeUs now = 0;
    std::uint64_t id = 1;
    for (double s : slowdowns) {
        t.transition(id, SpanPhase::kQueue, now);
        now += 100;
        t.complete(id, now, s);
        ++id;
    }
    const auto& ex = t.exemplars();
    ASSERT_EQ(ex.size(), 2u);
    EXPECT_DOUBLE_EQ(ex[0].slowdown, 5.0);
    EXPECT_DOUBLE_EQ(ex[1].slowdown, 4.0);
    EXPECT_EQ(ex[0].timeline.requestId, 2u);
    EXPECT_EQ(ex[1].timeline.requestId, 4u);
    // Retained exemplar timelines are complete and closed.
    for (const auto& e : ex) {
        EXPECT_NE(e.timeline.doneUs, kSpanOpen);
        for (const auto& seg : e.timeline.segments)
            EXPECT_NE(seg.endUs, kSpanOpen);
    }
}

TEST(SpanTrackerTest, FlightRecorderKeepsMostRecentOldestFirst)
{
    SpanTrackerConfig config;
    config.flightRecorderCapacity = 2;
    SpanTracker t(config);
    for (std::uint64_t id = 1; id <= 3; ++id) {
        t.transition(id, SpanPhase::kQueue,
                     static_cast<sim::TimeUs>(id * 10));
        t.complete(id, static_cast<sim::TimeUs>(id * 10 + 5), 1.0);
    }
    t.transition(42, SpanPhase::kPrefill, 100);  // still live

    const std::string json = t.flightRecorderJson();
    // Request 1 was evicted; 2 precedes 3 (oldest first); the live
    // request appears in the "live" section with an open segment.
    EXPECT_EQ(json.find("\"request\":1,"), std::string::npos);
    const auto at2 = json.find("\"request\":2");
    const auto at3 = json.find("\"request\":3");
    ASSERT_NE(at2, std::string::npos);
    ASSERT_NE(at3, std::string::npos);
    EXPECT_LT(at2, at3);
    const auto live = json.find("\"live\":[");
    ASSERT_NE(live, std::string::npos);
    const auto at42 = json.find("\"request\":42");
    ASSERT_NE(at42, std::string::npos);
    EXPECT_GT(at42, live);
    EXPECT_NE(json.find("\"end_us\":-1", at42), std::string::npos);
}

TEST(SpanTrackerTest, AttributionJsonCarriesPhasesAndExemplars)
{
    SpanTrackerConfig config;
    config.exemplarK = 1;
    SpanTracker t(config);
    t.transition(11, SpanPhase::kQueue, 0);
    t.transition(11, SpanPhase::kPrefill, 2000);
    t.transition(11, SpanPhase::kDecode, 7000);
    t.complete(11, 12000, 3.5);

    const std::string json = t.attributionJson();
    EXPECT_NE(json.find("\"requests\":1"), std::string::npos);
    EXPECT_NE(json.find("\"e2e_total_ms\":12"), std::string::npos);
    EXPECT_NE(json.find("\"attributed_total_ms\":12"), std::string::npos);
    for (const char* phase :
         {"\"queue\"", "\"prefill\"", "\"decode\"", "\"restart_penalty\""})
        EXPECT_NE(json.find(phase), std::string::npos) << phase;
    EXPECT_NE(json.find("\"slowdown\":3.5"), std::string::npos);
    EXPECT_NE(json.find("\"spans\":["), std::string::npos);
}

TEST(SpanTrackerTest, SlotsAreRecycledAcrossRequests)
{
    SpanTracker t;
    for (std::uint64_t id = 1; id <= 100; ++id) {
        t.transition(id, SpanPhase::kQueue,
                     static_cast<sim::TimeUs>(id));
        t.transition(id, SpanPhase::kDecode,
                     static_cast<sim::TimeUs>(id + 1));
        t.complete(id, static_cast<sim::TimeUs>(id + 2), 1.0);
    }
    EXPECT_EQ(t.liveCount(), 0u);
    EXPECT_EQ(t.completedCount(), 100u);
    // A recycled slot starts a fresh timeline, not a stale one.
    t.transition(500, SpanPhase::kQueue, 1000);
    const SpanTimeline* tl = t.liveTimeline(500);
    ASSERT_NE(tl, nullptr);
    EXPECT_EQ(tl->requestId, 500u);
    EXPECT_EQ(tl->restarts, 0);
    EXPECT_EQ(tl->arrivalUs, 1000);
    EXPECT_EQ(tl->segments.size(), 1u);
    EXPECT_EQ(t.integrityError(), "");
}

TEST(SpanTrackerDeathTest, CompleteForUntrackedRequestPanics)
{
    SpanTracker t;
    EXPECT_DEATH(t.complete(99, 0, 1.0), "untracked");
}

TEST(SpanTrackerDeathTest, RestartForUntrackedRequestPanics)
{
    SpanTracker t;
    EXPECT_DEATH(t.restart(99, 0), "untracked");
}

}  // namespace
}  // namespace splitwise::telemetry
