#include "model/transfer_model.h"

#include <gtest/gtest.h>

#include "hw/machine_spec.h"
#include "model/llm_config.h"
#include "model/perf_model.h"

namespace splitwise::model {
namespace {

TransferModel
llamaOver(const hw::MachineSpec& a, const hw::MachineSpec& b)
{
    return TransferModel(llama2_70b(), hw::linkBetween(a, b));
}

TEST(TransferModelTest, KvBytesScaleWithPromptSize)
{
    const TransferModel t = llamaOver(hw::dgxH100(), hw::dgxH100());
    EXPECT_EQ(t.kvBytes(1000), 1000 * llama2_70b().kvBytesPerToken());
    EXPECT_EQ(t.kvBytes(0), 0);
}

TEST(TransferModelTest, SerializedTimeGrowsLinearly)
{
    // Fig. 14: serialized transfer grows linearly with prompt size.
    const TransferModel t = llamaOver(hw::dgxH100(), hw::dgxH100());
    const double t1k = sim::usToMs(t.serializedTime(1024));
    const double t2k = sim::usToMs(t.serializedTime(2048));
    const double t4k = sim::usToMs(t.serializedTime(4096));
    EXPECT_NEAR(t4k - t2k, 2 * (t2k - t1k), 0.5);
}

TEST(TransferModelTest, A100SerializedAboutTwiceH100)
{
    const TransferModel hh = llamaOver(hw::dgxH100(), hw::dgxH100());
    const TransferModel aa = llamaOver(hw::dgxA100(), hw::dgxA100());
    const double ratio = static_cast<double>(aa.serializedTime(2048)) /
                         static_cast<double>(hh.serializedTime(2048));
    EXPECT_NEAR(ratio, 2.0, 0.25);
}

TEST(TransferModelTest, LayerwiseVisibleIsNearConstant)
{
    // Fig. 14: layer-wise transfer leaves a roughly constant visible
    // latency (~5 ms H100, ~8 ms A100) regardless of prompt size.
    const TransferModel hh = llamaOver(hw::dgxH100(), hw::dgxH100());
    const AnalyticalPerfModel perf(llama2_70b(), hw::dgxH100());
    const double v1500 = sim::usToMs(
        hh.layerwiseVisibleTime(1500, perf.promptTime(1500, 1)));
    const double v6000 = sim::usToMs(
        hh.layerwiseVisibleTime(6000, perf.promptTime(6000, 1)));
    EXPECT_NEAR(v1500, 5.0, 2.0);
    EXPECT_LT(v6000 - v1500, 3.0);
}

TEST(TransferModelTest, A100LayerwiseVisibleAroundEightMs)
{
    const TransferModel aa = llamaOver(hw::dgxA100(), hw::dgxA100());
    const AnalyticalPerfModel perf(llama2_70b(), hw::dgxA100());
    const double v = sim::usToMs(
        aa.layerwiseVisibleTime(1500, perf.promptTime(1500, 1)));
    EXPECT_NEAR(v, 8.0, 2.5);
}

TEST(TransferModelTest, LayerwiseHidesMostOfLargeTransfers)
{
    const TransferModel hh = llamaOver(hw::dgxH100(), hw::dgxH100());
    const AnalyticalPerfModel perf(llama2_70b(), hw::dgxH100());
    const auto compute = perf.promptTime(4096, 1);
    EXPECT_LT(hh.layerwiseVisibleTime(4096, compute),
              hh.serializedTime(4096) / 3);
}

TEST(TransferModelTest, ThresholdSelectsTechnique)
{
    // SVI-A: serialized below 512 prompt tokens, layer-wise above.
    const TransferModel t = llamaOver(hw::dgxH100(), hw::dgxH100());
    EXPECT_FALSE(t.useLayerwise(256));
    EXPECT_FALSE(t.useLayerwise(511));
    EXPECT_TRUE(t.useLayerwise(512));
    EXPECT_TRUE(t.useLayerwise(4096));
}

TEST(TransferModelTest, PlanPicksCheaperVisibleTimeAtScale)
{
    const TransferModel t = llamaOver(hw::dgxH100(), hw::dgxH100());
    const AnalyticalPerfModel perf(llama2_70b(), hw::dgxH100());

    const auto small = t.plan(128, perf.promptTime(128, 1));
    EXPECT_FALSE(small.layerwise);
    EXPECT_EQ(small.interferenceUs, 0);

    const auto large = t.plan(3000, perf.promptTime(3000, 1));
    EXPECT_TRUE(large.layerwise);
    EXPECT_LT(large.visibleUs, t.serializedTime(3000));
}

TEST(TransferModelTest, InterferenceIsSmallFractionOfCompute)
{
    // SVI-A: total transfer + interference overhead stays < 7% of
    // the prompt computation.
    const TransferModel t = llamaOver(hw::dgxH100(), hw::dgxH100());
    const AnalyticalPerfModel perf(llama2_70b(), hw::dgxH100());
    for (std::int64_t p : {512, 1500, 3000, 6000}) {
        const auto compute = perf.promptTime(p, 1);
        const auto interference = t.layerwiseInterference(p, compute);
        EXPECT_LT(static_cast<double>(interference),
                  0.07 * static_cast<double>(compute))
            << "prompt " << p;
    }
}

TEST(TransferModelTest, InterferenceBoundedByCompute)
{
    const TransferModel t = llamaOver(hw::dgxH100(), hw::dgxH100());
    EXPECT_LE(t.layerwiseInterference(100000, 100), 100);
}

TEST(TransferModelTest, SecondTokenOverheadMatchesPaper)
{
    // SVI-A: Splitwise adds ~16.5% to the second token's latency at
    // the coding median, versus ~64% for a serialized transfer.
    const TransferModel t = llamaOver(hw::dgxH100(), hw::dgxH100());
    const AnalyticalPerfModel perf(llama2_70b(), hw::dgxH100());
    const double tbt = sim::usToMs(perf.tokenTime(1, 1500));
    const auto plan = t.plan(1500, perf.promptTime(1500, 1));
    const double splitwise_overhead = sim::usToMs(plan.visibleUs) / tbt;
    const double serialized_overhead =
        sim::usToMs(t.serializedTime(1500)) / tbt;
    EXPECT_NEAR(splitwise_overhead, 0.165, 0.10);
    EXPECT_GT(serialized_overhead, 2.0 * splitwise_overhead);
}

TEST(TransferModelTest, CompressionShrinksWireBytes)
{
    // SVII: the KV-cache could be compressed before transfer.
    const auto link = hw::linkBetween(hw::dgxH100(), hw::dgxH100());
    const TransferModel raw(llama2_70b(), link, 512, 1.0);
    const TransferModel compressed(llama2_70b(), link, 512, 4.0);
    EXPECT_EQ(compressed.kvBytes(1000), raw.kvBytes(1000) / 4);
    EXPECT_LT(compressed.serializedTime(2048), raw.serializedTime(2048));
}

TEST(TransferModelTest, CompressionRatioBelowOneRejected)
{
    const auto link = hw::linkBetween(hw::dgxH100(), hw::dgxH100());
    EXPECT_THROW(TransferModel(llama2_70b(), link, 512, 0.5),
                 std::runtime_error);
}

TEST(TransferModelTest, CustomThresholdHonored)
{
    const TransferModel t(llama2_70b(),
                          hw::linkBetween(hw::dgxH100(), hw::dgxH100()),
                          2048);
    EXPECT_FALSE(t.useLayerwise(1024));
    EXPECT_TRUE(t.useLayerwise(2048));
}

}  // namespace
}  // namespace splitwise::model
