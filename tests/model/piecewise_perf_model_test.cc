#include "model/piecewise_perf_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "hw/machine_spec.h"
#include "model/llm_config.h"
#include "model/perf_model.h"
#include "sim/rng.h"

namespace splitwise::model {
namespace {

/**
 * The paper validates its piecewise-linear performance model at
 * less than 3% MAPE against held-out hardware profiles (SV-B). We
 * reproduce the check against the analytical reference on a random
 * held-out test set.
 */
class FitValidation : public ::testing::TestWithParam<const char*> {
  protected:
    static AnalyticalPerfModel
    reference(const std::string& which)
    {
        if (which == "llama-h100")
            return {llama2_70b(), hw::dgxH100()};
        if (which == "llama-a100")
            return {llama2_70b(), hw::dgxA100()};
        if (which == "bloom-h100")
            return {bloom_176b(), hw::dgxH100()};
        return {bloom_176b(), hw::dgxA100()};
    }
};

TEST_P(FitValidation, PromptMapeBelowThreePercent)
{
    const AnalyticalPerfModel ref = reference(GetParam());
    const auto fit = PiecewiseLinearPerfModel::fit(ref);
    sim::Rng rng(99);
    double mape = 0.0;
    const int n = 200;
    for (int i = 0; i < n; ++i) {
        const auto tokens = rng.uniformInt(8, 12000);
        const double truth = sim::usToMs(ref.promptTime(tokens, 1));
        const double est = sim::usToMs(fit->promptTime(tokens, 1));
        mape += std::abs(est - truth) / truth;
    }
    EXPECT_LT(mape / n, 0.03);
}

TEST_P(FitValidation, TokenMapeBelowThreePercent)
{
    const AnalyticalPerfModel ref = reference(GetParam());
    const auto fit = PiecewiseLinearPerfModel::fit(ref);
    sim::Rng rng(7);
    double mape = 0.0;
    const int n = 200;
    for (int i = 0; i < n; ++i) {
        const auto batch = static_cast<int>(rng.uniformInt(1, 128));
        const auto ctx = rng.uniformInt(0, 4000) * batch;
        const double truth = sim::usToMs(ref.tokenTime(batch, ctx));
        const double est = sim::usToMs(fit->tokenTime(batch, ctx));
        mape += std::abs(est - truth) / truth;
    }
    EXPECT_LT(mape / n, 0.03);
}

INSTANTIATE_TEST_SUITE_P(AllModelMachinePairs, FitValidation,
                         ::testing::Values("llama-h100", "llama-a100",
                                           "bloom-h100", "bloom-a100"));

TEST(PiecewisePerfModelTest, ExactAtProfiledKnots)
{
    const AnalyticalPerfModel ref(llama2_70b(), hw::dgxH100());
    const auto fit = PiecewiseLinearPerfModel::fit(ref);
    for (std::int64_t p : {64, 512, 1024, 2048, 4096}) {
        EXPECT_NEAR(sim::usToMs(fit->promptTime(p, 1)),
                    sim::usToMs(ref.promptTime(p, 1)), 0.01)
            << "prompt knot " << p;
    }
}

TEST(PiecewisePerfModelTest, ZeroBatchIsFree)
{
    const AnalyticalPerfModel ref(llama2_70b(), hw::dgxH100());
    const auto fit = PiecewiseLinearPerfModel::fit(ref);
    EXPECT_EQ(fit->promptTime(0, 0), 0);
    EXPECT_EQ(fit->tokenTime(0, 0), 0);
}

TEST(PiecewisePerfModelTest, MultiRequestPromptCostsMore)
{
    const AnalyticalPerfModel ref(llama2_70b(), hw::dgxH100());
    const auto fit = PiecewiseLinearPerfModel::fit(ref);
    EXPECT_GE(fit->promptTime(2048, 8), fit->promptTime(2048, 1));
}

TEST(PiecewisePerfModelTest, CustomKnotsRespected)
{
    const AnalyticalPerfModel ref(llama2_70b(), hw::dgxH100());
    const auto fit = PiecewiseLinearPerfModel::fit(
        ref, {1, 4096, 16384}, {1, 64}, {0, 1000000});
    // Coarse knots still give a usable (if less accurate) model.
    EXPECT_GT(fit->promptTime(2000, 1), 0);
    EXPECT_GT(fit->tokenTime(8, 8000), 0);
}

TEST(PiecewisePerfModelTest, MixedCompositionViaDefault)
{
    const AnalyticalPerfModel ref(llama2_70b(), hw::dgxH100());
    const auto fit = PiecewiseLinearPerfModel::fit(ref);
    IterationShape shape;
    shape.promptTokens = 1024;
    shape.promptRequests = 1;
    shape.tokenRequests = 8;
    shape.contextTokens = 8 * 1000;
    const double fitted = sim::usToMs(fit->iterationTime(shape));
    const double truth = sim::usToMs(ref.iterationTime(shape));
    EXPECT_NEAR(fitted / truth, 1.0, 0.10);
}

}  // namespace
}  // namespace splitwise::model
