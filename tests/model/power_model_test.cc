#include "model/power_model.h"

#include <gtest/gtest.h>

#include "hw/gpu_spec.h"
#include "hw/machine_spec.h"

namespace splitwise::model {
namespace {

TEST(PowerModelTest, PromptPowerRisesWithBatch)
{
    // Fig. 8a: prompt-phase draw grows with batched tokens.
    const PowerModel pm(hw::h100());
    double prev = 0.0;
    for (std::int64_t p : {16, 128, 512, 1024, 1500}) {
        const double frac = pm.promptPowerFraction(p);
        EXPECT_GT(frac, prev);
        prev = frac;
    }
    EXPECT_NEAR(prev, hw::h100().promptPowerNeed, 1e-9);
}

TEST(PowerModelTest, PromptPowerSaturates)
{
    const PowerModel pm(hw::h100());
    EXPECT_DOUBLE_EQ(pm.promptPowerFraction(1500),
                     pm.promptPowerFraction(8000));
}

TEST(PowerModelTest, TokenPowerIsFlat)
{
    // Fig. 8b: decode draw barely moves with batch size.
    const PowerModel pm(hw::h100());
    const double b1 = pm.tokenPowerFraction(1);
    const double b64 = pm.tokenPowerFraction(64);
    EXPECT_LT(b64 - b1, 0.05);
}

TEST(PowerModelTest, TokenDrawsFarBelowTdp)
{
    // Insight VI: the token phase does not use the power budget.
    const PowerModel pm(hw::h100());
    EXPECT_LT(pm.tokenPowerFraction(64), 0.65);
}

TEST(PowerModelTest, UncappedHasNoPenalty)
{
    const PowerModel pm(hw::h100());
    EXPECT_DOUBLE_EQ(pm.capLatencyMultiplier(Phase::kPrompt, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(pm.capLatencyMultiplier(Phase::kToken, 1.0), 1.0);
}

TEST(PowerModelTest, TokenFreeUntilItsNeed)
{
    // Fig. 9b: capping to 50% TDP costs the token phase nothing.
    const PowerModel pm(hw::h100());
    EXPECT_DOUBLE_EQ(pm.capLatencyMultiplier(Phase::kToken, 0.5), 1.0);
    EXPECT_GT(pm.capLatencyMultiplier(Phase::kToken, 0.3), 1.0);
}

TEST(PowerModelTest, PromptPenaltyGrowsAsCapTightens)
{
    // Fig. 9a: prompt latency rises substantially under caps.
    const PowerModel pm(hw::h100());
    const double at70 = pm.capLatencyMultiplier(Phase::kPrompt, 0.7);
    const double at50 = pm.capLatencyMultiplier(Phase::kPrompt, 0.5);
    const double at30 = pm.capLatencyMultiplier(Phase::kPrompt, 0.3);
    EXPECT_GT(at70, 1.2);
    EXPECT_GT(at50, at70);
    EXPECT_GT(at30, at50);
}

TEST(PowerModelTest, CapClampsToSaneRange)
{
    const PowerModel pm(hw::h100());
    // A nonsensical cap of 0 behaves like the minimum cap.
    EXPECT_DOUBLE_EQ(pm.capLatencyMultiplier(Phase::kPrompt, 0.0),
                     pm.capLatencyMultiplier(Phase::kPrompt, 0.05));
}

TEST(PowerModelTest, MachinePowerIncludesPlatform)
{
    const PowerModel pm(hw::h100());
    const hw::MachineSpec m = hw::dgxH100();
    const double idle = pm.machinePowerWatts(m, 0.0);
    EXPECT_DOUBLE_EQ(idle, m.platformOverheadWatts);
    const double full = pm.machinePowerWatts(m, 1.0);
    EXPECT_DOUBLE_EQ(full, m.ratedPowerWatts());
}

TEST(PowerModelTest, MachineCapLimitsGpuDraw)
{
    const PowerModel pm(hw::h100());
    const hw::MachineSpec capped = hw::dgxH100Capped();
    EXPECT_DOUBLE_EQ(pm.machinePowerWatts(capped, 1.0),
                     capped.provisionedPowerWatts());
}

TEST(PowerModelTest, PhaseNames)
{
    EXPECT_STREQ(phaseName(Phase::kPrompt), "prompt");
    EXPECT_STREQ(phaseName(Phase::kToken), "token");
}

}  // namespace
}  // namespace splitwise::model
