#include "model/memory_model.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "hw/machine_spec.h"
#include "model/llm_config.h"

namespace splitwise::model {
namespace {

TEST(MemoryModelTest, WeightsFitOnDgx)
{
    EXPECT_TRUE(MemoryModel(llama2_70b(), hw::dgxH100()).weightsFit());
    EXPECT_TRUE(MemoryModel(bloom_176b(), hw::dgxH100()).weightsFit());
}

TEST(MemoryModelTest, KvCapacityPositiveAndBounded)
{
    const MemoryModel m(llama2_70b(), hw::dgxH100());
    EXPECT_GT(m.kvCapacityTokens(), 0);
    EXPECT_LT(m.kvCapacityBytes(), hw::dgxH100().totalHbmBytes());
}

TEST(MemoryModelTest, BloomHasLessKvRoomThanLlama)
{
    // Fig. 7 intuition: BLOOM's 352 GB of weights and 4 MB/token KV
    // leave far fewer batched tokens than Llama.
    const MemoryModel llama(llama2_70b(), hw::dgxH100());
    const MemoryModel bloom(bloom_176b(), hw::dgxH100());
    EXPECT_LT(bloom.kvCapacityTokens(), llama.kvCapacityTokens() / 2);
}

TEST(MemoryModelTest, BloomRunsOutNearBatch64)
{
    // Fig. 6b/SIII-D: at the conversation service's ~900-token mean
    // context the machine runs out of memory around batch 64.
    const MemoryModel bloom(bloom_176b(), hw::dgxH100());
    const std::int64_t ctx = 900;
    const std::int64_t max_batch = bloom.kvCapacityTokens() / ctx;
    EXPECT_GE(max_batch, 32);
    EXPECT_LE(max_batch, 96);
}

TEST(MemoryModelTest, RequiredGbGrowsLinearly)
{
    const MemoryModel m(llama2_70b(), hw::dgxH100());
    const double base = m.requiredGb(0);
    const double with_kv = m.requiredGb(10000);
    EXPECT_NEAR(base, 140.0, 1.0);
    EXPECT_NEAR(with_kv - base,
                10000.0 * m.kvBytesPerToken() / 1e9, 1e-6);
}

TEST(MemoryModelTest, UsableFractionShrinksCapacity)
{
    const MemoryModel big(llama2_70b(), hw::dgxH100(), 0.95);
    const MemoryModel small(llama2_70b(), hw::dgxH100(), 0.60);
    EXPECT_GT(big.kvCapacityTokens(), small.kvCapacityTokens());
}

TEST(MemoryModelTest, RejectsBadUsableFraction)
{
    EXPECT_THROW(MemoryModel(llama2_70b(), hw::dgxH100(), 0.0),
                 std::runtime_error);
    EXPECT_THROW(MemoryModel(llama2_70b(), hw::dgxH100(), 1.5),
                 std::runtime_error);
}

TEST(MemoryModelTest, CapacityClampsAtZeroWhenWeightsDontFit)
{
    // A single-GPU "machine" cannot hold a 70B model in FP16.
    hw::MachineSpec tiny = hw::dgxH100();
    tiny.gpuCount = 1;
    const MemoryModel m(llama2_70b(), tiny);
    EXPECT_FALSE(m.weightsFit());
    EXPECT_EQ(m.kvCapacityTokens(), 0);
}

}  // namespace
}  // namespace splitwise::model
