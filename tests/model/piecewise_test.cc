#include "model/piecewise.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace splitwise::model {
namespace {

TEST(PiecewiseLinearTest, InterpolatesBetweenKnots)
{
    PiecewiseLinear f({0, 10}, {0, 100});
    EXPECT_DOUBLE_EQ(f(0), 0.0);
    EXPECT_DOUBLE_EQ(f(5), 50.0);
    EXPECT_DOUBLE_EQ(f(10), 100.0);
}

TEST(PiecewiseLinearTest, ClampsOutsideRange)
{
    PiecewiseLinear f({1, 2}, {10, 20});
    EXPECT_DOUBLE_EQ(f(0), 10.0);
    EXPECT_DOUBLE_EQ(f(5), 20.0);
}

TEST(PiecewiseLinearTest, MultiSegment)
{
    PiecewiseLinear f({0, 1, 3}, {0, 10, 0});
    EXPECT_DOUBLE_EQ(f(0.5), 5.0);
    EXPECT_DOUBLE_EQ(f(2), 5.0);
}

TEST(PiecewiseLinearTest, ExactKnotHits)
{
    PiecewiseLinear f({1, 2, 3}, {5, 7, 9});
    EXPECT_DOUBLE_EQ(f(2), 7.0);
}

TEST(PiecewiseLinearTest, RejectsUnsortedKnots)
{
    EXPECT_THROW(PiecewiseLinear({2, 1}, {0, 0}), std::runtime_error);
    EXPECT_THROW(PiecewiseLinear({1, 1}, {0, 0}), std::runtime_error);
}

TEST(PiecewiseLinearTest, RejectsLengthMismatch)
{
    EXPECT_THROW(PiecewiseLinear({1, 2}, {0}), std::runtime_error);
}

TEST(PiecewiseLinearTest, RejectsTooFewKnots)
{
    EXPECT_THROW(PiecewiseLinear({1}, {0}), std::runtime_error);
}

TEST(BilinearGridTest, ExactCorners)
{
    BilinearGrid g({0, 1}, {0, 1}, {1, 2, 3, 4});
    EXPECT_DOUBLE_EQ(g.at(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(g.at(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(g.at(1, 0), 3.0);
    EXPECT_DOUBLE_EQ(g.at(1, 1), 4.0);
}

TEST(BilinearGridTest, CenterInterpolates)
{
    BilinearGrid g({0, 1}, {0, 1}, {1, 2, 3, 4});
    EXPECT_DOUBLE_EQ(g.at(0.5, 0.5), 2.5);
}

TEST(BilinearGridTest, ClampsOutside)
{
    BilinearGrid g({0, 1}, {0, 1}, {1, 2, 3, 4});
    EXPECT_DOUBLE_EQ(g.at(-1, -1), 1.0);
    EXPECT_DOUBLE_EQ(g.at(9, 9), 4.0);
}

TEST(BilinearGridTest, ReproducesLinearFunctionExactly)
{
    // f(x, y) = 2x + 3y is exactly representable.
    std::vector<double> xs = {0, 2, 5};
    std::vector<double> ys = {0, 1, 4};
    std::vector<double> vals;
    for (double x : xs)
        for (double y : ys)
            vals.push_back(2 * x + 3 * y);
    BilinearGrid g(xs, ys, vals);
    EXPECT_NEAR(g.at(1.3, 2.7), 2 * 1.3 + 3 * 2.7, 1e-12);
    EXPECT_NEAR(g.at(4.0, 0.5), 2 * 4.0 + 3 * 0.5, 1e-12);
}

TEST(BilinearGridTest, RejectsBadValueCount)
{
    EXPECT_THROW(BilinearGrid({0, 1}, {0, 1}, {1, 2, 3}),
                 std::runtime_error);
}

}  // namespace
}  // namespace splitwise::model
