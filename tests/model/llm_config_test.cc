#include "model/llm_config.h"

#include <gtest/gtest.h>

namespace splitwise::model {
namespace {

TEST(LlmConfigTest, TableIIIParameters)
{
    const LlmConfig& llama = llama2_70b();
    EXPECT_EQ(llama.numLayers, 80);
    EXPECT_EQ(llama.hiddenSize, 8192);
    EXPECT_EQ(llama.numHeads, 32);
    EXPECT_EQ(llama.numParams, 70'000'000'000LL);

    const LlmConfig& bloom = bloom_176b();
    EXPECT_EQ(bloom.numLayers, 70);
    EXPECT_EQ(bloom.hiddenSize, 14336);
    EXPECT_EQ(bloom.numHeads, 112);
    EXPECT_EQ(bloom.numParams, 176'000'000'000LL);
}

TEST(LlmConfigTest, WeightBytesAtFp16)
{
    EXPECT_EQ(llama2_70b().weightBytes(), 140'000'000'000LL);
    EXPECT_EQ(bloom_176b().weightBytes(), 352'000'000'000LL);
}

TEST(LlmConfigTest, KvBytesPerToken)
{
    // 2 (K,V) x layers x hidden x 2 bytes for MHA models.
    EXPECT_EQ(llama2_70b().kvBytesPerToken(), 2LL * 80 * 8192 * 2);
    EXPECT_EQ(bloom_176b().kvBytesPerToken(), 2LL * 70 * 14336 * 2);
}

TEST(LlmConfigTest, GroupedQueryAttentionShrinksKv)
{
    LlmConfig gqa = llama2_70b();
    gqa.numKvHeads = 8;
    gqa.numHeads = 64;
    EXPECT_EQ(gqa.kvBytesPerToken(), llama2_70b().kvBytesPerToken() / 8);
}

TEST(LlmConfigTest, BloomKvLargerThanLlama)
{
    // BLOOM's wider hidden size makes its per-token KV cache ~1.5x
    // Llama's despite fewer layers.
    EXPECT_GT(bloom_176b().kvBytesPerToken(), llama2_70b().kvBytesPerToken());
}

}  // namespace
}  // namespace splitwise::model
