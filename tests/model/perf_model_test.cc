#include "model/perf_model.h"

#include <gtest/gtest.h>

#include "hw/machine_spec.h"
#include "model/llm_config.h"

namespace splitwise::model {
namespace {

double
ms(sim::TimeUs t)
{
    return sim::usToMs(t);
}

class PerfModelAnchors : public ::testing::Test {
  protected:
    AnalyticalPerfModel llamaH100_{llama2_70b(), hw::dgxH100()};
    AnalyticalPerfModel llamaA100_{llama2_70b(), hw::dgxA100()};
    AnalyticalPerfModel bloomH100_{bloom_176b(), hw::dgxH100()};
};

// --- Paper anchor points (Table IV, SIII-C) ---

TEST_F(PerfModelAnchors, LlamaH100TtftAtCodingMedianPrompt)
{
    // Table IV: coding P50 TTFT on H100 = 95 ms at median prompt 1500.
    EXPECT_NEAR(ms(llamaH100_.promptTime(1500, 1)), 95.0, 10.0);
}

TEST_F(PerfModelAnchors, LlamaA100TtftAtCodingMedianPrompt)
{
    // Table IV: coding P50 TTFT on A100 = 185 ms.
    EXPECT_NEAR(ms(llamaA100_.promptTime(1500, 1)), 185.0, 18.0);
}

TEST_F(PerfModelAnchors, TtftRatioA100vsH100)
{
    // Table IV: H100 TTFT is ~0.51x of A100.
    const double ratio = ms(llamaH100_.promptTime(1500, 1)) /
                         ms(llamaA100_.promptTime(1500, 1));
    EXPECT_NEAR(ratio, 0.51, 0.08);
}

TEST_F(PerfModelAnchors, LlamaH100TbtUnbatched)
{
    // Table IV: TBT on H100 = 28-31 ms.
    EXPECT_NEAR(ms(llamaH100_.tokenTime(1, 1024)), 29.0, 3.0);
}

TEST_F(PerfModelAnchors, LlamaA100TbtUnbatched)
{
    // Table IV: TBT on A100 = 40-52 ms.
    EXPECT_NEAR(ms(llamaA100_.tokenTime(1, 1024)), 43.0, 6.0);
}

TEST_F(PerfModelAnchors, TbtRatioA100vsH100)
{
    // Table IV: H100 TBT is ~0.70x of A100.
    const double ratio = ms(llamaH100_.tokenTime(1, 1024)) /
                         ms(llamaA100_.tokenTime(1, 1024));
    EXPECT_NEAR(ratio, 0.70, 0.08);
}

TEST_F(PerfModelAnchors, BloomPromptEqualsSixTokens)
{
    // SIII-C: for BLOOM-176B, a 1500-token prompt phase takes the
    // same time as generating 6 output tokens.
    const double prompt = ms(bloomH100_.promptTime(1500, 1));
    const double token = ms(bloomH100_.tokenTime(1, 1500));
    EXPECT_NEAR(prompt / token, 6.0, 1.0);
}

TEST_F(PerfModelAnchors, TbtAtBatch64IsAboutTwiceBatch1)
{
    // Fig. 5b: batching 64 token streams only doubles TBT.
    const double b1 = ms(llamaH100_.tokenTime(1, 1200));
    const double b64 = ms(llamaH100_.tokenTime(64, 64 * 1200));
    EXPECT_NEAR(b64 / b1, 2.0, 0.45);
}

// --- Shape properties (Figs. 5a, 6) ---

TEST_F(PerfModelAnchors, TtftGrowsMonotonicallyWithPromptSize)
{
    sim::TimeUs prev = 0;
    for (std::int64_t p : {64, 128, 256, 512, 1024, 2048, 4096, 8192}) {
        const sim::TimeUs t = llamaH100_.promptTime(p, 1);
        EXPECT_GT(t, prev) << "at prompt size " << p;
        prev = t;
    }
}

TEST_F(PerfModelAnchors, TtftIsRoughlyLinearInMidRange)
{
    // Fig. 5a: TTFT grows almost linearly with prompt size.
    const double t1k = ms(llamaH100_.promptTime(1024, 1));
    const double t2k = ms(llamaH100_.promptTime(2048, 1));
    const double slope_ratio = (t2k - t1k) / t1k;
    EXPECT_GT(slope_ratio, 0.5);
    EXPECT_LT(slope_ratio, 1.5);
}

TEST_F(PerfModelAnchors, PromptThroughputPeaksNear2048)
{
    // Fig. 6a / Insight IV: prompt throughput degrades past ~2048
    // batched tokens.
    double best_thpt = 0.0;
    std::int64_t best_p = 0;
    for (std::int64_t p = 256; p <= 8192; p += 128) {
        const double thpt = llamaH100_.promptThroughput(p);
        if (thpt > best_thpt) {
            best_thpt = thpt;
            best_p = p;
        }
    }
    EXPECT_GE(best_p, 1536);
    EXPECT_LE(best_p, 3072);
}

TEST_F(PerfModelAnchors, TokenThroughputScalesWithBatch)
{
    // Fig. 6b: decode throughput keeps rising through batch 64.
    double prev = 0.0;
    for (int b : {1, 2, 4, 8, 16, 32, 64}) {
        const double thpt = llamaH100_.tokenThroughput(b, 1200);
        EXPECT_GT(thpt, prev) << "at batch " << b;
        prev = thpt;
    }
}

TEST_F(PerfModelAnchors, TokenTimeGrowsWithContext)
{
    const sim::TimeUs small = llamaH100_.tokenTime(8, 8 * 256);
    const sim::TimeUs large = llamaH100_.tokenTime(8, 8 * 8192);
    EXPECT_GT(large, small);
}

// --- Mixed batching composition (Fig. 2c) ---

TEST_F(PerfModelAnchors, MixedIterationSlowerThanEitherPhase)
{
    IterationShape mixed;
    mixed.promptTokens = 1500;
    mixed.promptRequests = 1;
    mixed.tokenRequests = 16;
    mixed.contextTokens = 16 * 1200;
    const sim::TimeUs t_mixed = llamaH100_.iterationTime(mixed);
    EXPECT_GT(t_mixed, llamaH100_.promptTime(1500, 1));
    EXPECT_GT(t_mixed, llamaH100_.tokenTime(16, 16 * 1200));
}

TEST_F(PerfModelAnchors, MixedIterationDoesNotDoubleCountWeightPass)
{
    IterationShape mixed;
    mixed.promptTokens = 1500;
    mixed.promptRequests = 1;
    mixed.tokenRequests = 4;
    mixed.contextTokens = 4 * 512;
    const double t_mixed = ms(llamaH100_.iterationTime(mixed));
    const double sum = ms(llamaH100_.promptTime(1500, 1)) +
                       ms(llamaH100_.tokenTime(4, 4 * 512));
    EXPECT_LT(t_mixed, sum);
}

TEST_F(PerfModelAnchors, EmptyShapesCostNothingOrBaseline)
{
    IterationShape empty;
    EXPECT_EQ(llamaH100_.promptTime(0, 0), llamaH100_.iterationTime(empty));
}

// --- Power capping (Fig. 9) ---

TEST(PerfModelPowerCap, PromptSlowsUnderCap)
{
    const AnalyticalPerfModel uncapped(llama2_70b(), hw::dgxH100());
    const AnalyticalPerfModel capped(llama2_70b(), hw::dgxH100Capped());
    const double slowdown = ms(capped.promptTime(1500, 1)) /
                            ms(uncapped.promptTime(1500, 1));
    // Fig. 9a: the prompt phase is highly power sensitive.
    EXPECT_GT(slowdown, 1.5);
}

TEST(PerfModelPowerCap, TokenPhaseUnaffectedAtFiftyPercent)
{
    const AnalyticalPerfModel uncapped(llama2_70b(), hw::dgxH100());
    const AnalyticalPerfModel capped(llama2_70b(), hw::dgxH100Capped());
    // Fig. 9b: capping 700W -> 350W costs the token phase almost
    // nothing.
    const double slowdown = ms(capped.tokenTime(16, 16 * 1200)) /
                            ms(uncapped.tokenTime(16, 16 * 1200));
    EXPECT_NEAR(slowdown, 1.0, 0.02);
}

TEST(PerfModelEdge, SmallPromptsStillPayWeightRead)
{
    const AnalyticalPerfModel m(llama2_70b(), hw::dgxH100());
    // A 1-token prompt cannot be faster than streaming the weights.
    const sim::TimeUs floor = m.tokenTime(1, 0);
    EXPECT_GE(m.promptTime(1, 1) * 2, floor);
}

TEST(PerfModelEdge, ZeroThroughputForEmptyBatch)
{
    const AnalyticalPerfModel m(llama2_70b(), hw::dgxH100());
    EXPECT_DOUBLE_EQ(m.promptThroughput(0), 0.0);
    EXPECT_DOUBLE_EQ(m.tokenThroughput(0, 100), 0.0);
}

TEST(PerfModelEdge, FactoryReturnsWorkingModel)
{
    const auto m = makeAnalyticalPerfModel(llama2_70b(), hw::dgxH100());
    EXPECT_GT(m->promptTime(1024, 1), 0);
    EXPECT_GT(m->tokenTime(4, 1024), 0);
}

}  // namespace
}  // namespace splitwise::model
