#include "workload/workloads.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace splitwise::workload {
namespace {

TEST(WorkloadsTest, CodingMediansMatchPaper)
{
    // SIII-A: coding median prompt 1500 tokens, median output 13.
    EXPECT_EQ(coding().promptTokens->median(), 1500);
    EXPECT_EQ(coding().outputTokens->median(), 13);
}

TEST(WorkloadsTest, ConversationMediansMatchPaper)
{
    // SIII-A: conversation median prompt 1020, median output 129.
    EXPECT_EQ(conversation().promptTokens->median(), 1020);
    EXPECT_NEAR(static_cast<double>(conversation().outputTokens->median()),
                129.0, 20.0);
}

TEST(WorkloadsTest, CodingOutputsAreShort)
{
    // Fig. 3b: the coding service generates very few tokens.
    EXPECT_LE(coding().outputTokens->quantile(0.9), 100);
}

TEST(WorkloadsTest, ConversationOutputsAreBimodal)
{
    // Fig. 3b: conversation outputs have a short mode and a long
    // mode; the p90 is far above the median.
    const auto& out = *conversation().outputTokens;
    EXPECT_GT(out.quantile(0.9), 3 * out.median());
}

TEST(WorkloadsTest, CodingPromptsLargerThanConversation)
{
    EXPECT_GT(coding().promptTokens->median(),
              conversation().promptTokens->median());
}

TEST(WorkloadsTest, PromptQuantilesMonotone)
{
    for (const Workload* w : {&coding(), &conversation()}) {
        std::int64_t prev = 0;
        for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
            const auto v = w->promptTokens->quantile(q);
            EXPECT_GE(v, prev) << w->name << " q=" << q;
            prev = v;
        }
    }
}

TEST(WorkloadsTest, LookupByName)
{
    EXPECT_EQ(workloadByName("coding").name, "coding");
    EXPECT_EQ(workloadByName("conversation").name, "conversation");
    EXPECT_THROW(workloadByName("nonsense"), std::runtime_error);
}

TEST(WorkloadsTest, SamplingIsDeterministicPerSeed)
{
    sim::Rng a(5);
    sim::Rng b(5);
    for (int i = 0; i < 50; ++i) {
        ASSERT_EQ(coding().promptTokens->sample(a),
                  coding().promptTokens->sample(b));
    }
}

}  // namespace
}  // namespace splitwise::workload
