#include "workload/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace splitwise::workload {
namespace {

class TraceIoTest : public ::testing::Test {
  protected:
    void
    SetUp() override
    {
        path_ = std::filesystem::temp_directory_path() /
                ("trace_test_" + std::to_string(::getpid()) + ".csv");
    }

    void
    TearDown() override
    {
        std::error_code ec;
        std::filesystem::remove(path_, ec);
    }

    std::filesystem::path path_;
};

Trace
sampleTrace()
{
    Trace t;
    t.push_back({0, 0, 100, 10, 0});
    t.push_back({1, sim::secondsToUs(1), 2000, 50, 1});
    t.push_back({2, sim::secondsToUs(2), 512, 1, 2});
    return t;
}

TEST_F(TraceIoTest, RoundTripsThroughCsv)
{
    const Trace original = sampleTrace();
    writeCsv(original, path_.string());
    const Trace loaded = readCsv(path_.string());
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded[i].id, original[i].id);
        EXPECT_EQ(loaded[i].arrival, original[i].arrival);
        EXPECT_EQ(loaded[i].promptTokens, original[i].promptTokens);
        EXPECT_EQ(loaded[i].outputTokens, original[i].outputTokens);
        EXPECT_EQ(loaded[i].priority, original[i].priority);
    }
}

TEST_F(TraceIoTest, LegacyRowsWithoutPriorityParseAsZero)
{
    std::ofstream out(path_);
    out << "id,arrival_us,prompt_tokens,output_tokens\n";
    out << "0,0,100,10\n";
    out << "1,5,200,20\n";
    out.close();
    const Trace loaded = readCsv(path_.string());
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded[0].priority, 0);
    EXPECT_EQ(loaded[1].priority, 0);
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips)
{
    writeCsv({}, path_.string());
    EXPECT_TRUE(readCsv(path_.string()).empty());
}

TEST_F(TraceIoTest, ReadMissingFileThrows)
{
    EXPECT_THROW(readCsv("/nonexistent/dir/trace.csv"),
                 std::runtime_error);
}

TEST_F(TraceIoTest, MalformedRowThrows)
{
    std::ofstream out(path_);
    out << "id,arrival_us,prompt_tokens,output_tokens\n";
    out << "not,a,valid,row\n";
    out.close();
    EXPECT_THROW(readCsv(path_.string()), std::runtime_error);
}

TEST_F(TraceIoTest, BlankLinesSkipped)
{
    std::ofstream out(path_);
    out << "id,arrival_us,prompt_tokens,output_tokens\n";
    out << "0,0,100,10\n\n";
    out << "1,5,200,20\n";
    out.close();
    EXPECT_EQ(readCsv(path_.string()).size(), 2u);
}

TEST(TraceStatsTest, SpanAndRps)
{
    const Trace t = sampleTrace();
    EXPECT_EQ(traceSpan(t), sim::secondsToUs(2));
    EXPECT_NEAR(traceRps(t), 1.5, 1e-9);
}

TEST(TraceStatsTest, DegenerateTraces)
{
    EXPECT_EQ(traceSpan({}), 0);
    EXPECT_DOUBLE_EQ(traceRps({}), 0.0);
    Trace one;
    one.push_back({0, 100, 10, 5});
    EXPECT_EQ(traceSpan(one), 0);
    EXPECT_DOUBLE_EQ(traceRps(one), 0.0);
}

}  // namespace
}  // namespace splitwise::workload
