#include "workload/distribution.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

namespace splitwise::workload {
namespace {

TEST(EmpiricalDistributionTest, QuantilesInterpolate)
{
    EmpiricalDistribution d({{0.0, 0}, {0.5, 100}, {1.0, 200}});
    EXPECT_EQ(d.quantile(0.0), 0);
    EXPECT_EQ(d.quantile(0.25), 50);
    EXPECT_EQ(d.quantile(0.5), 100);
    EXPECT_EQ(d.quantile(0.75), 150);
    EXPECT_EQ(d.quantile(1.0), 200);
}

TEST(EmpiricalDistributionTest, MedianHelper)
{
    EmpiricalDistribution d({{0.0, 10}, {0.5, 42}, {1.0, 90}});
    EXPECT_EQ(d.median(), 42);
}

TEST(EmpiricalDistributionTest, QuantileClampsInput)
{
    EmpiricalDistribution d({{0.0, 5}, {1.0, 10}});
    EXPECT_EQ(d.quantile(-1.0), 5);
    EXPECT_EQ(d.quantile(2.0), 10);
}

TEST(EmpiricalDistributionTest, SamplesStayInSupport)
{
    EmpiricalDistribution d({{0.0, 3}, {1.0, 17}});
    sim::Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const auto v = d.sample(rng);
        ASSERT_GE(v, 3);
        ASSERT_LE(v, 17);
    }
}

TEST(EmpiricalDistributionTest, SampleMedianApproximatesQuantile)
{
    EmpiricalDistribution d({{0.0, 0}, {0.5, 1000}, {1.0, 5000}});
    sim::Rng rng(11);
    std::vector<std::int64_t> samples;
    for (int i = 0; i < 4001; ++i)
        samples.push_back(d.sample(rng));
    std::nth_element(samples.begin(), samples.begin() + 2000, samples.end());
    EXPECT_NEAR(static_cast<double>(samples[2000]), 1000.0, 120.0);
}

TEST(EmpiricalDistributionTest, SamplesAreAtLeastOne)
{
    EmpiricalDistribution d({{0.0, 0}, {1.0, 2}});
    sim::Rng rng(3);
    for (int i = 0; i < 200; ++i)
        ASSERT_GE(d.sample(rng), 1);
}

TEST(EmpiricalDistributionTest, RejectsBadAnchors)
{
    using Anchors = std::vector<std::pair<double, std::int64_t>>;
    EXPECT_THROW(EmpiricalDistribution(Anchors{{0.0, 1}}),
                 std::runtime_error);
    EXPECT_THROW(EmpiricalDistribution(Anchors{{0.0, 1}, {0.0, 2}}),
                 std::runtime_error);
    EXPECT_THROW(EmpiricalDistribution(Anchors{{0.1, 1}, {1.0, 2}}),
                 std::runtime_error);
    EXPECT_THROW(EmpiricalDistribution(Anchors{{0.0, 1}, {0.9, 2}}),
                 std::runtime_error);
}

TEST(FixedDistributionTest, AlwaysSameValue)
{
    FixedDistribution d(77);
    sim::Rng rng(1);
    EXPECT_EQ(d.quantile(0.0), 77);
    EXPECT_EQ(d.quantile(1.0), 77);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(d.sample(rng), 77);
}

TEST(MixtureDistributionTest, SamplesFromBothModes)
{
    auto low = std::make_shared<FixedDistribution>(10);
    auto high = std::make_shared<FixedDistribution>(1000);
    MixtureDistribution mix(low, high, 0.5);
    sim::Rng rng(9);
    int lows = 0;
    int highs = 0;
    for (int i = 0; i < 2000; ++i) {
        const auto v = mix.sample(rng);
        if (v == 10)
            ++lows;
        else if (v == 1000)
            ++highs;
        else
            FAIL() << "unexpected sample " << v;
    }
    EXPECT_NEAR(static_cast<double>(lows) / 2000, 0.5, 0.05);
    EXPECT_GT(highs, 0);
}

TEST(MixtureDistributionTest, WeightControlsMass)
{
    auto low = std::make_shared<FixedDistribution>(1);
    auto high = std::make_shared<FixedDistribution>(2);
    MixtureDistribution mix(low, high, 0.9);
    sim::Rng rng(13);
    int lows = 0;
    for (int i = 0; i < 2000; ++i)
        lows += mix.sample(rng) == 1 ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(lows) / 2000, 0.9, 0.03);
}

TEST(MixtureDistributionTest, QuantileSwitchesAtWeight)
{
    auto low = std::make_shared<FixedDistribution>(10);
    auto high = std::make_shared<FixedDistribution>(1000);
    MixtureDistribution mix(low, high, 0.4);
    EXPECT_EQ(mix.quantile(0.2), 10);
    EXPECT_EQ(mix.quantile(0.8), 1000);
}

TEST(MixtureDistributionTest, RejectsBadWeight)
{
    auto d = std::make_shared<FixedDistribution>(1);
    EXPECT_THROW(MixtureDistribution(d, d, -0.1), std::runtime_error);
    EXPECT_THROW(MixtureDistribution(d, d, 1.1), std::runtime_error);
}

}  // namespace
}  // namespace splitwise::workload
