#include "workload/trace_gen.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "workload/workloads.h"

namespace splitwise::workload {
namespace {

TEST(TraceGeneratorTest, PoissonRateApproximatelyHonored)
{
    TraceGenerator gen(conversation(), 1);
    const Trace t = gen.generate(20.0, sim::secondsToUs(120));
    EXPECT_NEAR(static_cast<double>(t.size()) / 120.0, 20.0, 2.0);
}

TEST(TraceGeneratorTest, ArrivalsSortedAndWithinHorizon)
{
    TraceGenerator gen(coding(), 2);
    const Trace t = gen.generate(10.0, sim::secondsToUs(30));
    sim::TimeUs prev = 0;
    for (const auto& r : t) {
        EXPECT_GE(r.arrival, prev);
        EXPECT_LT(r.arrival, sim::secondsToUs(30));
        prev = r.arrival;
    }
}

TEST(TraceGeneratorTest, IdsAreSequential)
{
    TraceGenerator gen(coding(), 3);
    const Trace t = gen.generate(5.0, sim::secondsToUs(10));
    for (std::size_t i = 0; i < t.size(); ++i)
        ASSERT_EQ(t[i].id, i);
}

TEST(TraceGeneratorTest, TokenCountsPositive)
{
    TraceGenerator gen(conversation(), 4);
    const Trace t = gen.generate(10.0, sim::secondsToUs(20));
    for (const auto& r : t) {
        ASSERT_GE(r.promptTokens, 1);
        ASSERT_GE(r.outputTokens, 1);
    }
}

TEST(TraceGeneratorTest, DeterministicForSeed)
{
    TraceGenerator a(conversation(), 42);
    TraceGenerator b(conversation(), 42);
    const Trace ta = a.generate(10.0, sim::secondsToUs(10));
    const Trace tb = b.generate(10.0, sim::secondsToUs(10));
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t i = 0; i < ta.size(); ++i) {
        ASSERT_EQ(ta[i].arrival, tb[i].arrival);
        ASSERT_EQ(ta[i].promptTokens, tb[i].promptTokens);
        ASSERT_EQ(ta[i].outputTokens, tb[i].outputTokens);
    }
}

TEST(TraceGeneratorTest, DifferentSeedsDiffer)
{
    TraceGenerator a(conversation(), 1);
    TraceGenerator b(conversation(), 2);
    const Trace ta = a.generate(10.0, sim::secondsToUs(10));
    const Trace tb = b.generate(10.0, sim::secondsToUs(10));
    EXPECT_TRUE(ta.size() != tb.size() ||
                ta.front().promptTokens != tb.front().promptTokens ||
                ta.front().arrival != tb.front().arrival);
}

TEST(TraceGeneratorTest, SampledMediansTrackWorkload)
{
    TraceGenerator gen(coding(), 5);
    const Trace t = gen.generate(50.0, sim::secondsToUs(120));
    std::vector<std::int64_t> prompts;
    for (const auto& r : t)
        prompts.push_back(r.promptTokens);
    std::nth_element(prompts.begin(), prompts.begin() + prompts.size() / 2,
                     prompts.end());
    EXPECT_NEAR(static_cast<double>(prompts[prompts.size() / 2]), 1500.0,
                200.0);
}

TEST(TraceGeneratorTest, UniformIntervalsExact)
{
    TraceGenerator gen(coding(), 6);
    const Trace t = gen.generateUniform(10, 500);
    ASSERT_EQ(t.size(), 10u);
    for (std::size_t i = 0; i < t.size(); ++i)
        ASSERT_EQ(t[i].arrival, static_cast<sim::TimeUs>(i) * 500);
}

TEST(TraceGeneratorTest, RejectsNonPositiveRate)
{
    TraceGenerator gen(coding(), 7);
    EXPECT_THROW(gen.generate(0.0, sim::secondsToUs(10)),
                 std::runtime_error);
    EXPECT_THROW(gen.generate(-1.0, sim::secondsToUs(10)),
                 std::runtime_error);
}

}  // namespace
}  // namespace splitwise::workload
