/**
 * @file
 * Pull-based trace streams must be indistinguishable from their
 * materialized twins: every stream*() factory yields exactly the
 * requests the matching generate*() call returns, draining a stream
 * advances the generator's sampling state identically, and the CSV
 * stream replays a file byte-for-byte as readCsv would load it.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "workload/rate_curve.h"
#include "workload/trace.h"
#include "workload/trace_gen.h"
#include "workload/trace_stream.h"
#include "workload/workloads.h"

namespace splitwise::workload {
namespace {

void
expectSameTrace(const Trace& a, const Trace& b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id) << "request " << i;
        EXPECT_EQ(a[i].arrival, b[i].arrival) << "request " << i;
        EXPECT_EQ(a[i].promptTokens, b[i].promptTokens) << "request " << i;
        EXPECT_EQ(a[i].outputTokens, b[i].outputTokens) << "request " << i;
        EXPECT_EQ(a[i].priority, b[i].priority) << "request " << i;
    }
}

TEST(TraceStreamTest, PoissonStreamMatchesGenerate)
{
    TraceGenerator materialized(coding(), 7);
    const Trace trace = materialized.generate(20.0, sim::secondsToUs(30.0));

    TraceGenerator streaming(coding(), 7);
    auto stream = streaming.streamPoisson(20.0, sim::secondsToUs(30.0));
    const Trace drained = drainStream(*stream);

    ASSERT_FALSE(trace.empty());
    expectSameTrace(trace, drained);
}

TEST(TraceStreamTest, UniformStreamMatchesGenerate)
{
    TraceGenerator materialized(conversation(), 11);
    const Trace trace = materialized.generateUniform(500, 1000);

    TraceGenerator streaming(conversation(), 11);
    auto stream = streaming.streamUniform(500, 1000);
    const Trace drained = drainStream(*stream);

    ASSERT_EQ(drained.size(), 500u);
    expectSameTrace(trace, drained);
}

TEST(TraceStreamTest, CurveStreamMatchesGenerate)
{
    RateCurve curve =
        RateCurve::diurnal(5.0, 40.0, sim::secondsToUs(20.0));
    curve.addSpike(sim::secondsToUs(6.0), sim::secondsToUs(2.0), 3.0);

    TraceGenerator materialized(coding(), 3);
    const Trace trace = materialized.generate(curve, sim::secondsToUs(20.0));

    TraceGenerator streaming(coding(), 3);
    auto stream = streaming.streamCurve(curve, sim::secondsToUs(20.0));
    const Trace drained = drainStream(*stream);

    ASSERT_FALSE(trace.empty());
    expectSameTrace(trace, drained);
}

TEST(TraceStreamTest, AdoptSyncsGeneratorStateAcrossDrains)
{
    // Generating twice from one generator must equal stream-drain +
    // adopt + generate: the stream consumes exactly the generator's
    // draws and hands the state back.
    TraceGenerator twice(coding(), 21);
    const Trace first = twice.generate(15.0, sim::secondsToUs(20.0));
    const Trace second = twice.generate(15.0, sim::secondsToUs(20.0));

    TraceGenerator mixed(coding(), 21);
    auto stream = mixed.streamPoisson(15.0, sim::secondsToUs(20.0));
    const Trace streamed_first = drainStream(*stream);
    mixed.adopt(*stream);
    const Trace mixed_second = mixed.generate(15.0, sim::secondsToUs(20.0));

    expectSameTrace(first, streamed_first);
    expectSameTrace(second, mixed_second);
    // Ids keep counting across the boundary - no reuse, no gap.
    ASSERT_FALSE(second.empty());
    EXPECT_EQ(second.front().id, first.back().id + 1);
}

TEST(TraceStreamTest, StreamFactoriesDoNotAdvanceTheGenerator)
{
    TraceGenerator gen(coding(), 5);
    // Building (and even draining) a stream leaves the generator
    // untouched until adopt().
    auto stream = gen.streamPoisson(10.0, sim::secondsToUs(10.0));
    drainStream(*stream);

    TraceGenerator fresh(coding(), 5);
    expectSameTrace(fresh.generate(10.0, sim::secondsToUs(10.0)),
                    gen.generate(10.0, sim::secondsToUs(10.0)));
}

TEST(TraceStreamTest, NextIsIdempotentlyFalseAfterExhaustion)
{
    TraceGenerator gen(coding(), 9);
    auto stream = gen.streamUniform(3, 500);
    Request out;
    EXPECT_TRUE(stream->next(out));
    EXPECT_TRUE(stream->next(out));
    EXPECT_TRUE(stream->next(out));
    EXPECT_FALSE(stream->next(out));
    EXPECT_FALSE(stream->next(out));
}

TEST(TraceStreamTest, VectorStreamYieldsTheTraceInOrder)
{
    Trace trace;
    for (int i = 0; i < 5; ++i)
        trace.push_back({static_cast<std::uint64_t>(i), i * 100, 10 + i,
                         2 + i, i % 2});
    VectorTraceStream stream(trace);
    expectSameTrace(trace, drainStream(stream));
    Request out;
    EXPECT_FALSE(stream.next(out));
}

TEST(TraceStreamTest, CsvStreamMatchesReadCsv)
{
    TraceGenerator gen(conversation(), 13);
    const Trace trace = gen.generate(25.0, sim::secondsToUs(10.0));
    ASSERT_FALSE(trace.empty());

    const std::string path = ::testing::TempDir() + "trace_stream_test.csv";
    writeCsv(trace, path);

    const Trace loaded = readCsv(path);
    CsvTraceStream stream(path);
    const Trace streamed = drainStream(stream);

    expectSameTrace(loaded, streamed);
    expectSameTrace(trace, streamed);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace splitwise::workload
