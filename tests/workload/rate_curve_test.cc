#include "workload/rate_curve.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>

#include "sim/time.h"
#include "workload/trace_gen.h"
#include "workload/workloads.h"

namespace splitwise::workload {
namespace {

constexpr sim::TimeUs kDay = sim::secondsToUs(600);

TEST(RateCurveTest, ConstantIsFlat)
{
    const RateCurve curve = RateCurve::constant(40.0);
    EXPECT_DOUBLE_EQ(curve.rateAt(0), 40.0);
    EXPECT_DOUBLE_EQ(curve.rateAt(sim::secondsToUs(123)), 40.0);
    EXPECT_DOUBLE_EQ(curve.maxRate(), 40.0);
}

TEST(RateCurveTest, DiurnalOscillatesBetweenTroughAndPeak)
{
    const RateCurve curve = RateCurve::diurnal(10.0, 50.0, kDay);
    EXPECT_NEAR(curve.rateAt(0), 10.0, 1e-9);
    EXPECT_NEAR(curve.rateAt(kDay / 2), 50.0, 1e-9);
    EXPECT_NEAR(curve.rateAt(kDay), 10.0, 1e-9);
    EXPECT_NEAR(curve.rateAt(kDay / 4), 30.0, 1e-9);
    // Never outside the band.
    for (sim::TimeUs t = 0; t <= 2 * kDay; t += kDay / 37) {
        const double r = curve.rateAt(t);
        EXPECT_GE(r, 10.0 - 1e-9);
        EXPECT_LE(r, 50.0 + 1e-9);
    }
    EXPECT_DOUBLE_EQ(curve.maxRate(), 50.0);
}

TEST(RateCurveTest, PhaseShiftsTheCurve)
{
    const RateCurve shifted = RateCurve::diurnal(10.0, 50.0, kDay, kDay / 2);
    EXPECT_NEAR(shifted.rateAt(0), 50.0, 1e-9);
}

TEST(RateCurveTest, SpikesMultiplyInsideTheirWindowOnly)
{
    RateCurve curve = RateCurve::constant(20.0);
    curve.addSpike(sim::secondsToUs(100), sim::secondsToUs(50), 3.0);
    EXPECT_DOUBLE_EQ(curve.rateAt(sim::secondsToUs(99)), 20.0);
    EXPECT_DOUBLE_EQ(curve.rateAt(sim::secondsToUs(100)), 60.0);
    EXPECT_DOUBLE_EQ(curve.rateAt(sim::secondsToUs(149)), 60.0);
    EXPECT_DOUBLE_EQ(curve.rateAt(sim::secondsToUs(150)), 20.0);
    EXPECT_DOUBLE_EQ(curve.maxRate(), 60.0);
}

TEST(RateCurveTest, OverlappingSpikesCompound)
{
    RateCurve curve = RateCurve::constant(10.0);
    curve.addSpike(0, sim::secondsToUs(100), 2.0)
        .addSpike(sim::secondsToUs(50), sim::secondsToUs(100), 3.0);
    EXPECT_DOUBLE_EQ(curve.rateAt(sim::secondsToUs(75)), 60.0);
    EXPECT_DOUBLE_EQ(curve.maxRate(), 60.0);
}

TEST(NonHomogeneousTraceTest, DeterministicPerSeed)
{
    const RateCurve curve = RateCurve::diurnal(5.0, 40.0, kDay);
    TraceGenerator a(coding(), 7);
    TraceGenerator b(coding(), 7);
    const Trace ta = a.generate(curve, kDay);
    const Trace tb = b.generate(curve, kDay);
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t i = 0; i < ta.size(); ++i) {
        EXPECT_EQ(ta[i].arrival, tb[i].arrival);
        EXPECT_EQ(ta[i].promptTokens, tb[i].promptTokens);
        EXPECT_EQ(ta[i].outputTokens, tb[i].outputTokens);
    }
}

TEST(NonHomogeneousTraceTest, ArrivalsTrackTheCurve)
{
    // A full diurnal day: the peak-half of the day must hold far
    // more arrivals than the trough-half, and totals must be within
    // a loose band of the integrated rate.
    const RateCurve curve = RateCurve::diurnal(5.0, 50.0, kDay);
    TraceGenerator gen(coding(), 11);
    const Trace trace = gen.generate(curve, kDay);

    std::size_t trough_half = 0;
    std::size_t peak_half = 0;
    for (const auto& r : trace) {
        ASSERT_GE(r.arrival, 0);
        ASSERT_LT(r.arrival, kDay);
        if (r.arrival >= kDay / 4 && r.arrival < 3 * kDay / 4)
            ++peak_half;
        else
            ++trough_half;
    }
    EXPECT_GT(peak_half, 2 * trough_half);

    // Integrated mean rate over a full period = (trough + peak) / 2.
    const double expected =
        0.5 * (5.0 + 50.0) * sim::usToSeconds(kDay);
    EXPECT_GT(static_cast<double>(trace.size()), 0.8 * expected);
    EXPECT_LT(static_cast<double>(trace.size()), 1.2 * expected);
}

TEST(NonHomogeneousTraceTest, FlashCrowdConcentratesArrivals)
{
    RateCurve curve = RateCurve::constant(10.0);
    const sim::TimeUs start = sim::secondsToUs(200);
    const sim::TimeUs len = sim::secondsToUs(60);
    curve.addSpike(start, len, 8.0);
    TraceGenerator gen(coding(), 3);
    const Trace trace = gen.generate(curve, sim::secondsToUs(600));

    std::size_t inside = 0;
    for (const auto& r : trace) {
        if (r.arrival >= start && r.arrival < start + len)
            ++inside;
    }
    // The 60 s spike at 8x should hold roughly half the arrivals
    // (480 expected inside vs 5400/600 outside -> ~47%).
    EXPECT_GT(inside, trace.size() / 3);
    EXPECT_LT(inside, 2 * trace.size() / 3);
}

TEST(AssignPrioritiesTest, DeterministicAndProportional)
{
    TraceGenerator gen(coding(), 5);
    Trace a = gen.generateUniform(2000, 1000);
    Trace b = a;
    assignPriorities(a, 0.3, 99);
    assignPriorities(b, 0.3, 99);

    std::size_t sheddable = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].priority, b[i].priority);
        if (a[i].priority == 1)
            ++sheddable;
    }
    EXPECT_GT(sheddable, a.size() / 5);
    EXPECT_LT(sheddable, a.size() / 2);
}

TEST(AssignPrioritiesTest, ZeroFractionLeavesEveryoneInteractive)
{
    TraceGenerator gen(coding(), 5);
    Trace t = gen.generateUniform(50, 1000);
    assignPriorities(t, 0.0, 1);
    EXPECT_TRUE(std::all_of(t.begin(), t.end(),
                            [](const Request& r) { return r.priority == 0; }));
}

}  // namespace
}  // namespace splitwise::workload
