#include "workload/multi_turn.h"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>

namespace splitwise::workload {
namespace {

MultiTurnConfig
fastConfig()
{
    MultiTurnConfig config = defaultMultiTurnConfig();
    config.thinkTimeMeanS = 2.0;
    return config;
}

TEST(MultiTurnTest, GeneratesSessionsAndTurns)
{
    MultiTurnTraceGenerator gen(fastConfig(), 1);
    const Trace trace = gen.generate(2.0, sim::secondsToUs(60));
    EXPECT_GT(gen.lastSessionCount(), 60u);
    // At 2-6 turns per session, turns outnumber sessions.
    EXPECT_GT(trace.size(), gen.lastSessionCount());
}

TEST(MultiTurnTest, ArrivalsSorted)
{
    MultiTurnTraceGenerator gen(fastConfig(), 2);
    const Trace trace = gen.generate(3.0, sim::secondsToUs(60));
    for (std::size_t i = 1; i < trace.size(); ++i)
        ASSERT_GE(trace[i].arrival, trace[i - 1].arrival);
}

TEST(MultiTurnTest, ContextGrowsAcrossTurnsWithinSession)
{
    // With one session, consecutive requests are that session's
    // turns; each resends the grown context (SVII).
    MultiTurnConfig config = fastConfig();
    config.minTurns = 4;
    config.maxTurns = 4;
    MultiTurnTraceGenerator gen(config, 3);
    Trace trace;
    while (trace.size() != 4)
        trace = gen.generate(0.05, sim::secondsToUs(30));
    for (std::size_t i = 1; i < trace.size(); ++i)
        ASSERT_GT(trace[i].promptTokens, trace[i - 1].promptTokens);
}

TEST(MultiTurnTest, ContextCapRespected)
{
    MultiTurnConfig config = fastConfig();
    config.maxTurns = 12;
    config.minTurns = 12;
    config.maxContextTokens = 4096;
    MultiTurnTraceGenerator gen(config, 4);
    const Trace trace = gen.generate(2.0, sim::secondsToUs(60));
    for (const auto& r : trace)
        ASSERT_LE(r.promptTokens, 4096);
}

TEST(MultiTurnTest, LaterTurnsArePromptHeavier)
{
    // The defining property: the average prompt grows with load of
    // accumulated context, shifting work toward the prompt phase.
    MultiTurnConfig config = fastConfig();
    config.minTurns = 5;
    config.maxTurns = 5;
    MultiTurnTraceGenerator gen(config, 5);
    const Trace trace = gen.generate(2.0, sim::secondsToUs(120));
    // Group turns per session via monotone prompt growth: compare
    // the global mean of first-half vs second-half arrivals per
    // session using ids (turns of a session have consecutive ids).
    double early = 0.0;
    double late = 0.0;
    std::size_t n = 0;
    for (const auto& r : trace) {
        const std::uint64_t turn = r.id % 5;
        if (turn == 0)
            early += static_cast<double>(r.promptTokens);
        if (turn == 4)
            late += static_cast<double>(r.promptTokens);
        n += turn == 0 ? 1 : 0;
    }
    ASSERT_GT(n, 0u);
    EXPECT_GT(late / static_cast<double>(n),
              2.0 * early / static_cast<double>(n));
}

TEST(MultiTurnTest, DeterministicPerSeed)
{
    MultiTurnTraceGenerator a(fastConfig(), 9);
    MultiTurnTraceGenerator b(fastConfig(), 9);
    const Trace ta = a.generate(2.0, sim::secondsToUs(30));
    const Trace tb = b.generate(2.0, sim::secondsToUs(30));
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t i = 0; i < ta.size(); ++i) {
        ASSERT_EQ(ta[i].arrival, tb[i].arrival);
        ASSERT_EQ(ta[i].promptTokens, tb[i].promptTokens);
    }
}

TEST(MultiTurnTest, RejectsBadConfig)
{
    MultiTurnConfig config = fastConfig();
    config.minTurns = 0;
    EXPECT_THROW(MultiTurnTraceGenerator(config, 1), std::runtime_error);
    config = fastConfig();
    config.maxTurns = 1;
    config.minTurns = 3;
    EXPECT_THROW(MultiTurnTraceGenerator(config, 1), std::runtime_error);
    config = fastConfig();
    config.userTokens = nullptr;
    EXPECT_THROW(MultiTurnTraceGenerator(config, 1), std::runtime_error);
}

TEST(MultiTurnTest, RejectsBadRate)
{
    MultiTurnTraceGenerator gen(fastConfig(), 1);
    EXPECT_THROW(gen.generate(0.0, sim::secondsToUs(10)),
                 std::runtime_error);
}

}  // namespace
}  // namespace splitwise::workload
