#include "workload/multi_turn.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <stdexcept>

namespace splitwise::workload {
namespace {

MultiTurnConfig
fastConfig()
{
    MultiTurnConfig config = defaultMultiTurnConfig();
    config.thinkTimeMeanS = 2.0;
    return config;
}

TEST(MultiTurnTest, GeneratesSessionsAndTurns)
{
    MultiTurnTraceGenerator gen(fastConfig(), 1);
    const Trace trace = gen.generate(2.0, sim::secondsToUs(60));
    EXPECT_GT(gen.lastSessionCount(), 60u);
    // At 2-6 turns per session, turns outnumber sessions.
    EXPECT_GT(trace.size(), gen.lastSessionCount());
}

TEST(MultiTurnTest, ArrivalsSorted)
{
    MultiTurnTraceGenerator gen(fastConfig(), 2);
    const Trace trace = gen.generate(3.0, sim::secondsToUs(60));
    for (std::size_t i = 1; i < trace.size(); ++i)
        ASSERT_GE(trace[i].arrival, trace[i - 1].arrival);
}

TEST(MultiTurnTest, ContextGrowsAcrossTurnsWithinSession)
{
    // With one session, consecutive requests are that session's
    // turns; each resends the grown context (SVII).
    MultiTurnConfig config = fastConfig();
    config.minTurns = 4;
    config.maxTurns = 4;
    MultiTurnTraceGenerator gen(config, 3);
    Trace trace;
    while (trace.size() != 4)
        trace = gen.generate(0.05, sim::secondsToUs(30));
    for (std::size_t i = 1; i < trace.size(); ++i)
        ASSERT_GT(trace[i].promptTokens, trace[i - 1].promptTokens);
}

TEST(MultiTurnTest, ContextCapRespected)
{
    MultiTurnConfig config = fastConfig();
    config.maxTurns = 12;
    config.minTurns = 12;
    config.maxContextTokens = 4096;
    MultiTurnTraceGenerator gen(config, 4);
    const Trace trace = gen.generate(2.0, sim::secondsToUs(60));
    for (const auto& r : trace)
        ASSERT_LE(r.promptTokens, 4096);
}

TEST(MultiTurnTest, LaterTurnsArePromptHeavier)
{
    // The defining property: the average prompt grows with load of
    // accumulated context, shifting work toward the prompt phase.
    MultiTurnConfig config = fastConfig();
    config.minTurns = 5;
    config.maxTurns = 5;
    MultiTurnTraceGenerator gen(config, 5);
    const Trace trace = gen.generate(2.0, sim::secondsToUs(120));
    // Group turns per session via monotone prompt growth: compare
    // the global mean of first-half vs second-half arrivals per
    // session using ids (turns of a session have consecutive ids).
    double early = 0.0;
    double late = 0.0;
    std::size_t n = 0;
    for (const auto& r : trace) {
        const std::uint64_t turn = r.id % 5;
        if (turn == 0)
            early += static_cast<double>(r.promptTokens);
        if (turn == 4)
            late += static_cast<double>(r.promptTokens);
        n += turn == 0 ? 1 : 0;
    }
    ASSERT_GT(n, 0u);
    EXPECT_GT(late / static_cast<double>(n),
              2.0 * early / static_cast<double>(n));
}

TEST(MultiTurnTest, DeterministicPerSeed)
{
    MultiTurnTraceGenerator a(fastConfig(), 9);
    MultiTurnTraceGenerator b(fastConfig(), 9);
    const Trace ta = a.generate(2.0, sim::secondsToUs(30));
    const Trace tb = b.generate(2.0, sim::secondsToUs(30));
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t i = 0; i < ta.size(); ++i) {
        ASSERT_EQ(ta[i].arrival, tb[i].arrival);
        ASSERT_EQ(ta[i].promptTokens, tb[i].promptTokens);
    }
}

TEST(MultiTurnTest, TruncationIsDeterministicAndPinsAtCap)
{
    // Regression: truncation must be a pure function shared between
    // the generator and the prefix-cache key logic. Once a session
    // exceeds the cap its context is pinned there forever - it can
    // never "un-truncate" and masquerade as a valid prefix again.
    const std::int64_t cap = 1000;
    ContextAccum c = accumulateContext(0, 400, cap);
    EXPECT_EQ(c.tokens, 400);
    EXPECT_FALSE(c.truncated);
    c = accumulateContext(c.tokens, 500, cap);
    EXPECT_EQ(c.tokens, 900);
    EXPECT_FALSE(c.truncated);
    c = accumulateContext(c.tokens, 500, cap);
    EXPECT_EQ(c.tokens, cap);
    EXPECT_TRUE(c.truncated);
    // Pinned: any further growth stays exactly at the cap.
    for (std::int64_t add : {1, 100, 10000}) {
        c = accumulateContext(c.tokens, add, cap);
        EXPECT_EQ(c.tokens, cap);
        EXPECT_TRUE(c.truncated);
    }
}

TEST(MultiTurnTest, PrefixValidityRejectsTruncatedAndNonGrowingContexts)
{
    const std::int64_t cap = 1000;
    // The happy path: a stored context strictly inside the prompt.
    EXPECT_TRUE(contextPrefixValid(400, 700, cap));
    // Nothing stored, no strict growth, or an at-cap prompt (the
    // window may have slid) are all conservative misses.
    EXPECT_FALSE(contextPrefixValid(0, 700, cap));
    EXPECT_FALSE(contextPrefixValid(700, 700, cap));
    EXPECT_FALSE(contextPrefixValid(800, 700, cap));
    EXPECT_FALSE(contextPrefixValid(400, cap, cap));

    // Storability mirrors it: an at-cap or truncated context can
    // never validate on the next turn, so it is not storable.
    EXPECT_TRUE(contextCacheStorable({400, false}, cap));
    EXPECT_FALSE(contextCacheStorable({cap, false}, cap));
    EXPECT_FALSE(contextCacheStorable({cap, true}, cap));
}

TEST(MultiTurnTest, GeneratorPromptsReplayThroughSharedAccumulation)
{
    // The generator and the cache-key logic must agree on exactly
    // when truncation happens: replaying a generated session through
    // accumulateContext() must reproduce every turn's prompt.
    MultiTurnConfig config = fastConfig();
    config.minTurns = 8;
    config.maxTurns = 8;
    config.maxContextTokens = 2048;  // small cap: truncation certain
    MultiTurnTraceGenerator gen(config, 21);
    const Trace trace = gen.generate(1.0, sim::secondsToUs(120));
    ASSERT_GT(trace.size(), 8u);

    std::map<std::uint64_t, ContextAccum> contexts;
    bool saw_truncation = false;
    for (const auto& r : trace) {
        ContextAccum& c = contexts[r.session];
        // Prompt = prior context + the new user message. The user
        // message size is not recoverable from the trace, but the
        // shared accumulator must map (prior, delta) to exactly this
        // prompt - including the pin at the cap once truncated.
        const std::int64_t user = r.promptTokens - c.tokens;
        if (c.truncated || user <= 0) {
            // Only a capped session may stop growing strictly.
            ASSERT_EQ(r.promptTokens, config.maxContextTokens)
                << "request " << r.id;
        }
        const ContextAccum prompt = accumulateContext(
            c.tokens, std::max<std::int64_t>(user, 1),
            config.maxContextTokens);
        ASSERT_EQ(prompt.tokens, r.promptTokens) << "request " << r.id;
        saw_truncation = saw_truncation || prompt.truncated;
        c = accumulateContext(prompt.tokens, r.outputTokens,
                              config.maxContextTokens);
    }
    EXPECT_TRUE(saw_truncation);
}

TEST(MultiTurnTest, StreamTwinMatchesMaterializedTrace)
{
    // PR8 treatment for the multi-turn generator: the pull-based
    // stream must be request-for-request identical to generate(),
    // session and turn ids included.
    MultiTurnConfig config = fastConfig();
    config.maxContextTokens = 4096;
    MultiTurnTraceGenerator a(config, 33);
    MultiTurnTraceGenerator b(config, 33);
    const Trace materialized = a.generate(2.0, sim::secondsToUs(60));

    auto stream = b.stream(2.0, sim::secondsToUs(60));
    Trace streamed;
    Request r;
    while (stream->next(r))
        streamed.push_back(r);
    b.adopt(*stream);

    ASSERT_EQ(streamed.size(), materialized.size());
    for (std::size_t i = 0; i < streamed.size(); ++i) {
        ASSERT_EQ(streamed[i].id, materialized[i].id) << i;
        ASSERT_EQ(streamed[i].arrival, materialized[i].arrival) << i;
        ASSERT_EQ(streamed[i].promptTokens, materialized[i].promptTokens)
            << i;
        ASSERT_EQ(streamed[i].outputTokens, materialized[i].outputTokens)
            << i;
        ASSERT_EQ(streamed[i].session, materialized[i].session) << i;
        ASSERT_EQ(streamed[i].turn, materialized[i].turn) << i;
    }
    ASSERT_EQ(a.lastSessionCount(), b.lastSessionCount());

    // adopt() folds the stream's RNG state back: a continuation run
    // from either generator stays identical.
    const Trace next_a = a.generate(2.0, sim::secondsToUs(30));
    const Trace next_b = b.generate(2.0, sim::secondsToUs(30));
    ASSERT_EQ(next_a.size(), next_b.size());
    for (std::size_t i = 0; i < next_a.size(); ++i) {
        ASSERT_EQ(next_a[i].id, next_b[i].id) << i;
        ASSERT_EQ(next_a[i].arrival, next_b[i].arrival) << i;
        ASSERT_EQ(next_a[i].session, next_b[i].session) << i;
    }
}

TEST(MultiTurnTest, RejectsBadConfig)
{
    MultiTurnConfig config = fastConfig();
    config.minTurns = 0;
    EXPECT_THROW(MultiTurnTraceGenerator(config, 1), std::runtime_error);
    config = fastConfig();
    config.maxTurns = 1;
    config.minTurns = 3;
    EXPECT_THROW(MultiTurnTraceGenerator(config, 1), std::runtime_error);
    config = fastConfig();
    config.userTokens = nullptr;
    EXPECT_THROW(MultiTurnTraceGenerator(config, 1), std::runtime_error);
}

TEST(MultiTurnTest, RejectsBadRate)
{
    MultiTurnTraceGenerator gen(fastConfig(), 1);
    EXPECT_THROW(gen.generate(0.0, sim::secondsToUs(10)),
                 std::runtime_error);
}

}  // namespace
}  // namespace splitwise::workload
