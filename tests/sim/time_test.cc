#include "sim/time.h"

#include <gtest/gtest.h>

namespace splitwise::sim {
namespace {

TEST(TimeTest, SecondsRoundTrip)
{
    EXPECT_EQ(secondsToUs(1.0), 1'000'000);
    EXPECT_DOUBLE_EQ(usToSeconds(2'500'000), 2.5);
}

TEST(TimeTest, MsRoundTrip)
{
    EXPECT_EQ(msToUs(1.5), 1500);
    EXPECT_DOUBLE_EQ(usToMs(1500), 1.5);
}

TEST(TimeTest, ConversionsRound)
{
    EXPECT_EQ(msToUs(0.0004), 0);
    EXPECT_EQ(msToUs(0.0006), 1);
    EXPECT_EQ(secondsToUs(1e-7), 0);
}

TEST(TimeTest, NeverIsLargerThanAnyPracticalTime)
{
    EXPECT_GT(kTimeNever, secondsToUs(1e9));
}

}  // namespace
}  // namespace splitwise::sim
