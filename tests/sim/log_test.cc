#include "sim/log.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace splitwise::sim {
namespace {

class LogTest : public ::testing::Test {
  protected:
    void SetUp() override { previous_ = Log::level(); }
    void TearDown() override { Log::setLevel(previous_); }

    LogLevel previous_ = LogLevel::kWarn;
};

TEST_F(LogTest, LevelRoundTrips)
{
    Log::setLevel(LogLevel::kDebug);
    EXPECT_EQ(Log::level(), LogLevel::kDebug);
    Log::setLevel(LogLevel::kOff);
    EXPECT_EQ(Log::level(), LogLevel::kOff);
}

TEST_F(LogTest, FatalThrowsRuntimeError)
{
    Log::setLevel(LogLevel::kOff);
    EXPECT_THROW(fatal("user misconfiguration"), std::runtime_error);
}

TEST_F(LogTest, FatalMessagePreserved)
{
    Log::setLevel(LogLevel::kOff);
    try {
        fatal("specific failure detail");
        FAIL() << "fatal did not throw";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "specific failure detail");
    }
}

TEST_F(LogTest, InformAndWarnDoNotThrow)
{
    Log::setLevel(LogLevel::kOff);
    EXPECT_NO_THROW(inform("status message"));
    EXPECT_NO_THROW(warn("suspicious but survivable"));
}

TEST(LogDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("invariant violated"), "invariant violated");
}

}  // namespace
}  // namespace splitwise::sim
