#include "sim/log.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>

namespace splitwise::sim {
namespace {

class LogTest : public ::testing::Test {
  protected:
    void SetUp() override { previous_ = Log::level(); }
    void TearDown() override { Log::setLevel(previous_); }

    LogLevel previous_ = LogLevel::kWarn;
};

TEST_F(LogTest, LevelRoundTrips)
{
    Log::setLevel(LogLevel::kDebug);
    EXPECT_EQ(Log::level(), LogLevel::kDebug);
    Log::setLevel(LogLevel::kOff);
    EXPECT_EQ(Log::level(), LogLevel::kOff);
}

TEST_F(LogTest, FatalThrowsRuntimeError)
{
    Log::setLevel(LogLevel::kOff);
    EXPECT_THROW(fatal("user misconfiguration"), std::runtime_error);
}

TEST_F(LogTest, FatalMessagePreserved)
{
    Log::setLevel(LogLevel::kOff);
    try {
        fatal("specific failure detail");
        FAIL() << "fatal did not throw";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "specific failure detail");
    }
}

TEST_F(LogTest, InformAndWarnDoNotThrow)
{
    Log::setLevel(LogLevel::kOff);
    EXPECT_NO_THROW(inform("status message"));
    EXPECT_NO_THROW(warn("suspicious but survivable"));
}

TEST_F(LogTest, ParseLevelAcceptsEveryName)
{
    const std::pair<const char*, LogLevel> names[] = {
        {"debug", LogLevel::kDebug}, {"info", LogLevel::kInfo},
        {"warn", LogLevel::kWarn},   {"error", LogLevel::kError},
        {"off", LogLevel::kOff},
    };
    for (const auto& [name, expected] : names) {
        LogLevel out = LogLevel::kOff;
        EXPECT_TRUE(Log::parseLevel(name, out)) << name;
        EXPECT_EQ(out, expected) << name;
    }
}

TEST_F(LogTest, ParseLevelRejectsJunk)
{
    LogLevel out = LogLevel::kWarn;
    EXPECT_FALSE(Log::parseLevel("verbose", out));
    EXPECT_FALSE(Log::parseLevel("", out));
    EXPECT_FALSE(Log::parseLevel("WARN", out));
    // The output is untouched on failure.
    EXPECT_EQ(out, LogLevel::kWarn);
}

TEST_F(LogTest, StructuredFieldsRenderAsKeyValueSuffix)
{
    Log::setLevel(LogLevel::kInfo);
    ::testing::internal::CaptureStderr();
    inform("machine failed", {{"machine", "3"}, {"t_us", "120000"}});
    const std::string out = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(out, "[info] machine failed machine=3 t_us=120000\n");
}

TEST_F(LogTest, StructuredValuesWithSpacesAreQuoted)
{
    Log::setLevel(LogLevel::kInfo);
    ::testing::internal::CaptureStderr();
    warn("shed", {{"why", "queue full"}});
    const std::string out = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(out, "[warn] shed why=\"queue full\"\n");
}

TEST_F(LogTest, StructuredMessagesRespectTheLevel)
{
    Log::setLevel(LogLevel::kOff);
    ::testing::internal::CaptureStderr();
    inform("hidden", {{"k", "v"}});
    warn("also hidden", {{"k", "v"}});
    EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST_F(LogTest, AttachedClockPrefixesEveryLine)
{
    Log::setLevel(LogLevel::kInfo);
    std::int64_t now_us = 120000;
    setLogClock(&now_us);
    ::testing::internal::CaptureStderr();
    inform("machine failed", {{"machine", "3"}});
    now_us = 130000;
    warn("plain message");
    setLogClock(nullptr);
    inform("after detach");
    const std::string out = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(out,
              "[info] machine failed t_us=120000 machine=3\n"
              "[warn] plain message t_us=130000\n"
              "[info] after detach\n");
}

TEST_F(LogTest, RequestScopeNestsAndRestores)
{
    Log::setLevel(LogLevel::kInfo);
    std::int64_t now_us = 5;
    setLogClock(&now_us);
    ::testing::internal::CaptureStderr();
    {
        LogRequestScope outer(7);
        inform("outer");
        {
            LogRequestScope inner(9);
            inform("inner", {{"k", "v"}});
        }
        inform("outer again");
    }
    inform("no scope");
    setLogClock(nullptr);
    const std::string out = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(out,
              "[info] outer t_us=5 request=7\n"
              "[info] inner t_us=5 request=9 k=v\n"
              "[info] outer again t_us=5 request=7\n"
              "[info] no scope t_us=5\n");
}

TEST_F(LogTest, FatalKeepsThrownMessageFreeOfContext)
{
    Log::setLevel(LogLevel::kOff);
    std::int64_t now_us = 42;
    setLogClock(&now_us);
    try {
        fatal("bad flag");
        FAIL() << "fatal did not throw";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "bad flag");
    }
    setLogClock(nullptr);
}

TEST(LogDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("invariant violated"), "invariant violated");
}

}  // namespace
}  // namespace splitwise::sim
