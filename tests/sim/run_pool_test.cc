#include "sim/run_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace splitwise::sim {
namespace {

TEST(RunPoolTest, DefaultJobsIsPositive)
{
    EXPECT_GE(RunPool::defaultJobs(), 1);
}

TEST(RunPoolTest, ZeroJobsResolvesToDefault)
{
    RunPool pool(0);
    EXPECT_EQ(pool.jobs(), RunPool::defaultJobs());
}

TEST(RunPoolTest, EmptyInputYieldsEmptyOutput)
{
    RunPool pool(4);
    const std::vector<int> none;
    const auto out = pool.map(none, [](int v) { return v; });
    EXPECT_TRUE(out.empty());
}

TEST(RunPoolTest, SerialPathPreservesOrder)
{
    RunPool pool(1);
    std::vector<int> items(32);
    std::iota(items.begin(), items.end(), 0);
    const auto out = pool.map(items, [](int v) { return v * v; });
    ASSERT_EQ(out.size(), items.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(RunPoolTest, ParallelOrderingUnderAdversarialDurations)
{
    // Early items sleep longest, so completion order is roughly the
    // reverse of submission order; results must still come back in
    // input order.
    RunPool pool(8);
    std::vector<int> items(24);
    std::iota(items.begin(), items.end(), 0);
    const auto out = pool.map(items, [&](int v) {
        const auto nap =
            std::chrono::milliseconds((items.size() - v) % 5);
        std::this_thread::sleep_for(nap);
        return v * 10;
    });
    ASSERT_EQ(out.size(), items.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i) * 10);
}

TEST(RunPoolTest, IndexAwareTaskReceivesInputIndex)
{
    RunPool pool(4);
    const std::vector<std::string> items = {"a", "b", "c", "d", "e"};
    const auto out =
        pool.map(items, [](const std::string& s, std::size_t index) {
            return s + std::to_string(index);
        });
    ASSERT_EQ(out.size(), items.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], items[i] + std::to_string(i));
}

TEST(RunPoolTest, LowestIndexExceptionPropagates)
{
    RunPool pool(8);
    std::vector<int> items(16);
    std::iota(items.begin(), items.end(), 0);
    std::atomic<int> completed{0};
    try {
        pool.map(items, [&](int v) {
            if (v == 3 || v == 11)
                throw std::runtime_error("boom " + std::to_string(v));
            ++completed;
            return v;
        });
        FAIL() << "expected the task exception to propagate";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "boom 3");
    }
    // The batch ran to completion despite the failures.
    EXPECT_EQ(completed.load(), 14);
}

TEST(RunPoolTest, SerialExceptionPropagatesImmediately)
{
    RunPool pool(1);
    std::vector<int> items(8);
    std::iota(items.begin(), items.end(), 0);
    int ran = 0;
    EXPECT_THROW(pool.map(items,
                          [&](int v) {
                              if (v == 2)
                                  throw std::runtime_error("stop");
                              ++ran;
                              return v;
                          }),
                 std::runtime_error);
    EXPECT_EQ(ran, 2);  // items after the throw never start
}

TEST(RunPoolTest, SerialAndParallelResultsMatch)
{
    std::vector<std::uint64_t> items(40);
    std::iota(items.begin(), items.end(), 1);
    auto fn = [](std::uint64_t v) {
        // splitmix64-ish scramble: deterministic, order-revealing.
        std::uint64_t x = v + 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    };
    RunPool serial(1);
    RunPool parallel(8);
    EXPECT_EQ(serial.map(items, fn), parallel.map(items, fn));
}

TEST(RunPoolTest, PoolIsReusableAcrossBatches)
{
    RunPool pool(4);
    std::vector<int> items(10);
    std::iota(items.begin(), items.end(), 0);
    for (int round = 0; round < 3; ++round) {
        const auto out =
            pool.map(items, [round](int v) { return v + round; });
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], static_cast<int>(i) + round);
    }
}

}  // namespace
}  // namespace splitwise::sim
