#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <utility>
#include <vector>

namespace splitwise::sim {
namespace {

/**
 * Global allocation counter for the zero-allocation steady-state
 * assertions. Defined in this TU, so it observes every operator new
 * in the test binary - including any the queue or EventAction would
 * perform.
 */
std::uint64_t g_allocations = 0;

}  // namespace
}  // namespace splitwise::sim

void*
operator new(std::size_t size)
{
    ++splitwise::sim::g_allocations;
    if (void* p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void*
operator new[](std::size_t size)
{
    ++splitwise::sim::g_allocations;
    if (void* p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

namespace splitwise::sim {
namespace {

void
drain(EventQueue& q)
{
    while (!q.empty())
        q.pop().action();
}

TEST(EventQueueTest, StartsEmpty)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.nextTime(), kTimeNever);
}

TEST(EventQueueTest, PopsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.post(30, [&] { order.push_back(3); });
    q.post(10, [&] { order.push_back(1); });
    q.post(20, [&] { order.push_back(2); });
    drain(q);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByPriorityThenFifo)
{
    EventQueue q;
    std::vector<int> order;
    q.post(5, [&] { order.push_back(1); }, 1);
    q.post(5, [&] { order.push_back(2); }, 0);
    q.post(5, [&] { order.push_back(3); }, 0);
    drain(q);
    // Priority 0 first; equal priorities preserve insertion order.
    EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
}

TEST(EventQueueTest, ManySameTimeEventsKeepInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 100; ++i)
        q.post(7, [&order, i] { order.push_back(i); });
    drain(q);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, NextTimeTracksHead)
{
    EventQueue q;
    q.post(50, [] {});
    q.post(20, [] {});
    EXPECT_EQ(q.nextTime(), 20);
    (void)q.pop();
    EXPECT_EQ(q.nextTime(), 50);
}

TEST(EventQueueTest, PopReturnsIdTimePriority)
{
    EventQueue q;
    q.post(33, [] {}, 4);
    Event ev = q.pop();
    EXPECT_EQ(ev.time, 33);
    EXPECT_EQ(ev.priority, 4);
    EXPECT_NE(ev.id, kInvalidEventId);
    EXPECT_TRUE(static_cast<bool>(ev.action));
}

// ---------------------------------------------------------------
// Cancellation: head/middle/tail, double cancel, stale handles.
// ---------------------------------------------------------------

TEST(EventQueueTest, CancelAtHeadMiddleTail)
{
    for (int victim = 0; victim < 3; ++victim) {
        EventQueue q;
        std::vector<int> order;
        std::vector<EventHandle> handles;
        for (int i = 0; i < 3; ++i) {
            handles.push_back(
                q.schedule(10 * (i + 1), [&order, i] { order.push_back(i); }));
        }
        handles[static_cast<std::size_t>(victim)].cancel();
        EXPECT_EQ(q.size(), 2u);
        EXPECT_EQ(q.integrityError(), "");
        drain(q);
        std::vector<int> expected;
        for (int i = 0; i < 3; ++i) {
            if (i != victim)
                expected.push_back(i);
        }
        EXPECT_EQ(order, expected) << "victim " << victim;
        // Remaining handles see their events fired.
        for (auto& h : handles)
            EXPECT_FALSE(h.pending());
    }
}

TEST(EventQueueTest, CancelInLargeHeapKeepsOrder)
{
    EventQueue q;
    std::vector<int> order;
    std::vector<EventHandle> handles;
    for (int i = 0; i < 200; ++i) {
        handles.push_back(
            q.schedule(1000 - i, [&order, i] { order.push_back(i); }));
    }
    // Cancel every third event, spread across the heap.
    for (std::size_t i = 0; i < handles.size(); i += 3)
        handles[i].cancel();
    EXPECT_EQ(q.integrityError(), "");
    drain(q);
    // Survivors pop in descending-insertion order (time = 1000 - i).
    std::vector<int> expected;
    for (int i = 199; i >= 0; --i) {
        if (i % 3 != 0)
            expected.push_back(i);
    }
    EXPECT_EQ(order, expected);
}

TEST(EventQueueTest, HandleDoubleCancelIsIdempotent)
{
    EventQueue q;
    bool ran = false;
    EventHandle h = q.schedule(5, [&] { ran = true; });
    EXPECT_TRUE(h.pending());
    h.cancel();
    EXPECT_FALSE(h.pending());
    h.cancel();  // second cancel: no-op, no crash
    EXPECT_TRUE(q.empty());
    drain(q);
    EXPECT_FALSE(ran);
}

TEST(EventQueueTest, RawCancelAfterFireIsInert)
{
    EventQueue q;
    const EventId id = q.schedule(5, [] {}).release();
    drain(q);
    EXPECT_FALSE(q.pending(id));
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, StaleHandleAfterSlotReuseIsInert)
{
    EventQueue q;
    EventHandle first = q.schedule(5, [] {});
    drain(q);  // fires; slot retired and recycled below
    bool second_ran = false;
    EventHandle second = q.schedule(6, [&] { second_ran = true; });
    // The stale handle must not cancel the recycled slot's new event.
    first.cancel();
    EXPECT_TRUE(second.pending());
    drain(q);
    EXPECT_TRUE(second_ran);
}

TEST(EventQueueTest, DestroyedHandleAutoCancels)
{
    EventQueue q;
    bool ran = false;
    {
        EventHandle h = q.schedule(5, [&] { ran = true; });
    }
    EXPECT_TRUE(q.empty());
    drain(q);
    EXPECT_FALSE(ran);
}

TEST(EventQueueTest, MoveAssignCancelsPreviousEvent)
{
    EventQueue q;
    bool first_ran = false;
    bool second_ran = false;
    EventHandle h = q.schedule(5, [&] { first_ran = true; });
    h = q.schedule(6, [&] { second_ran = true; });
    EXPECT_EQ(q.size(), 1u);
    h.release();
    drain(q);
    EXPECT_FALSE(first_ran);
    EXPECT_TRUE(second_ran);
}

// ---------------------------------------------------------------
// Tie-break determinism under interleaved schedule/cancel: the
// (time, priority, seq) order of survivors must be unaffected by
// unrelated cancellations.
// ---------------------------------------------------------------

TEST(EventQueueTest, InterleavedCancelPreservesTieBreakOrder)
{
    EventQueue q;
    std::vector<int> order;
    std::vector<EventHandle> doomed;
    // Interleave survivors and victims at one timestamp; cancelling
    // the victims (in scattered order) must not disturb the
    // survivors' FIFO order.
    for (int i = 0; i < 50; ++i) {
        q.post(100, [&order, i] { order.push_back(i); });
        doomed.push_back(q.schedule(100, [&order, i] {
            order.push_back(1000 + i);
        }));
    }
    for (std::size_t i = 0; i < doomed.size(); i += 2)
        doomed[i].cancel();
    for (std::size_t i = 1; i < doomed.size(); i += 2)
        doomed[i].cancel();
    EXPECT_EQ(q.integrityError(), "");
    drain(q);
    ASSERT_EQ(order.size(), 50u);
    for (int i = 0; i < 50; ++i)
        ASSERT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, CallbackCanScheduleIntoRecycledSlot)
{
    EventQueue q;
    std::vector<int> order;
    q.post(1, [&] {
        order.push_back(1);
        // The fired event's slot is already retired: this scheduling
        // recycles it while the callback is still running.
        q.post(2, [&order] { order.push_back(2); });
    });
    drain(q);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(q.integrityError(), "");
}

// ---------------------------------------------------------------
// Pooling and the zero-allocation steady state.
// ---------------------------------------------------------------

TEST(EventQueueTest, PoolReusesSlotsAfterDrain)
{
    EventQueue q;
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 32; ++i)
            q.post(round * 100 + i, [] {});
        drain(q);
    }
    const auto stats = q.memoryStats();
    // The pool never grows past the high-water mark of one round.
    EXPECT_EQ(stats.poolSlots, 32u);
    EXPECT_EQ(stats.freeSlots, 32u);
    EXPECT_EQ(stats.poolGrowths, 32u);
}

TEST(EventQueueTest, ReservePreallocatesPool)
{
    EventQueue q;
    q.reserve(64);
    const auto before = q.memoryStats();
    EXPECT_EQ(before.poolSlots, 64u);
    for (int i = 0; i < 64; ++i)
        q.post(i, [] {});
    const auto after = q.memoryStats();
    EXPECT_EQ(after.poolSlots, 64u);
    EXPECT_EQ(after.poolGrowths, 0u);
    drain(q);
}

TEST(EventQueueTest, SteadyStateLoopPerformsZeroHeapAllocations)
{
    EventQueue q;
    q.reserve(128);
    // Warm up: reach the steady-state depth once.
    for (int i = 0; i < 128; ++i)
        q.post(i, [] {});
    drain(q);

    const std::uint64_t fallbacks_before = EventAction::heapFallbacks();
    const std::uint64_t allocs_before = g_allocations;
    // The steady-state loop of the simulation: pop one event,
    // schedule a few more, repeat. Captures sized like the hot-path
    // closures (a this-pointer and a couple of scalars).
    std::uint64_t fired = 0;
    int depth = 0;
    for (int i = 0; i < 64; ++i)
        q.post(i, [&fired, &depth] { ++fired; --depth; });
    depth = 64;
    TimeUs now = 0;
    while (!q.empty() && fired < 100000) {
        Event ev = q.pop();
        now = ev.time;
        ev.action();
        while (depth < 64) {
            q.post(now + 1 + depth, [&fired, &depth] { ++fired; --depth; });
            ++depth;
        }
    }
    const std::uint64_t allocs_after = g_allocations;
    const std::uint64_t fallbacks_after = EventAction::heapFallbacks();

    EXPECT_GE(fired, 100000u);
    EXPECT_EQ(allocs_after - allocs_before, 0u)
        << "steady-state schedule/pop loop must not allocate";
    EXPECT_EQ(fallbacks_after - fallbacks_before, 0u)
        << "hot-path captures must fit EventAction's inline buffer";
    EXPECT_EQ(q.memoryStats().poolGrowths, 0u);
}

TEST(EventQueueTest, ScheduledCountAccumulates)
{
    EventQueue q;
    q.post(1, [] {});
    q.post(2, [] {});
    (void)q.pop();
    q.post(3, [] {});
    EXPECT_EQ(q.scheduledCount(), 3u);
    drain(q);
    EXPECT_EQ(q.scheduledCount(), 3u);
}

TEST(EventQueueDeathTest, EmptyActionPanics)
{
    EventQueue q;
    EXPECT_DEATH(q.post(1, EventAction()), "empty action");
}

TEST(EventQueueDeathTest, PopOnEmptyPanics)
{
    EventQueue q;
    EXPECT_DEATH((void)q.pop(), "empty queue");
}

}  // namespace
}  // namespace splitwise::sim
