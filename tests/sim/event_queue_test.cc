#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace splitwise::sim {
namespace {

TEST(EventQueueTest, StartsEmpty)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.nextTime(), kTimeNever);
}

TEST(EventQueueTest, PopsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    while (!q.empty())
        q.pop().action();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByPriorityThenFifo)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(1); }, 1);
    q.schedule(5, [&] { order.push_back(2); }, 0);
    q.schedule(5, [&] { order.push_back(3); }, 0);
    while (!q.empty())
        q.pop().action();
    // Priority 0 first; equal priorities preserve insertion order.
    EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
}

TEST(EventQueueTest, NextTimeReportsEarliestLive)
{
    EventQueue q;
    q.schedule(50, [] {});
    q.schedule(40, [] {});
    EXPECT_EQ(q.nextTime(), 40);
}

TEST(EventQueueTest, CancelRemovesEvent)
{
    EventQueue q;
    bool ran = false;
    const EventId id = q.schedule(10, [&] { ran = true; });
    q.cancel(id);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelledEventSkippedOnPop)
{
    EventQueue q;
    int value = 0;
    const EventId id = q.schedule(10, [&] { value = 1; });
    q.schedule(20, [&] { value = 2; });
    q.cancel(id);
    EXPECT_EQ(q.nextTime(), 20);
    q.pop().action();
    EXPECT_EQ(value, 2);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelIsIdempotent)
{
    EventQueue q;
    const EventId id = q.schedule(10, [] {});
    q.schedule(20, [] {});
    q.cancel(id);
    q.cancel(id);
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, CancelAfterPopIsNoOp)
{
    EventQueue q;
    const EventId id = q.schedule(10, [] {});
    q.schedule(20, [] {});
    q.pop();
    q.cancel(id);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.nextTime(), 20);
}

TEST(EventQueueTest, CancelUnknownIdIsNoOp)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.cancel(12345);
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, SizeTracksLiveEvents)
{
    EventQueue q;
    const EventId a = q.schedule(1, [] {});
    q.schedule(2, [] {});
    q.schedule(3, [] {});
    EXPECT_EQ(q.size(), 3u);
    q.cancel(a);
    EXPECT_EQ(q.size(), 2u);
    q.pop();
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, ManyEventsStableOrdering)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 1000; ++i)
        q.schedule(7, [&order, i] { order.push_back(i); });
    while (!q.empty())
        q.pop().action();
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, ScheduledCountIsMonotonic)
{
    EventQueue q;
    q.schedule(1, [] {});
    q.schedule(2, [] {});
    q.pop();
    q.schedule(3, [] {});
    EXPECT_EQ(q.scheduledCount(), 3u);
}

}  // namespace
}  // namespace splitwise::sim
