#include "sim/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace splitwise::sim {
namespace {

TEST(RngTest, SameSeedSameStream)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        ASSERT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.uniform() == b.uniform())
            ++same;
    }
    EXPECT_LT(same, 5);
}

TEST(RngTest, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(2.0, 5.0);
        ASSERT_GE(v, 2.0);
        ASSERT_LT(v, 5.0);
    }
}

TEST(RngTest, UniformIntCoversInclusiveRange)
{
    Rng rng(7);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniformInt(0, 3);
        ASSERT_GE(v, 0);
        ASSERT_LE(v, 3);
        saw_lo |= v == 0;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMeanMatchesRate)
{
    Rng rng(11);
    const double rate = 4.0;
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(rate);
    EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(RngTest, NormalMeanAndSpread)
{
    Rng rng(13);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal(10.0, 2.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.1);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, BernoulliFrequency)
{
    Rng rng(17);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream)
{
    Rng parent(21);
    Rng child = parent.fork();
    // The child must not replay the parent's stream.
    Rng parent_copy(21);
    parent_copy.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (child.uniform() == parent.uniform())
            ++same;
    }
    EXPECT_LT(same, 5);
}

TEST(RngTest, ForkIsDeterministic)
{
    Rng a(33);
    Rng b(33);
    Rng ca = a.fork();
    Rng cb = b.fork();
    for (int i = 0; i < 50; ++i)
        ASSERT_DOUBLE_EQ(ca.uniform(), cb.uniform());
}

}  // namespace
}  // namespace splitwise::sim
