#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>
#include <vector>

namespace splitwise::sim {
namespace {

TEST(SimulatorTest, ClockStartsAtZero)
{
    Simulator s;
    EXPECT_EQ(s.now(), 0);
}

TEST(SimulatorTest, RunAdvancesClockToEventTimes)
{
    Simulator s;
    std::vector<TimeUs> seen;
    s.post(100, [&] { seen.push_back(s.now()); });
    s.post(250, [&] { seen.push_back(s.now()); });
    const auto ran = s.run();
    EXPECT_EQ(ran, 2u);
    EXPECT_EQ(seen, (std::vector<TimeUs>{100, 250}));
    EXPECT_EQ(s.now(), 250);
}

TEST(SimulatorTest, ScheduleAfterIsRelative)
{
    Simulator s;
    TimeUs fired_at = -1;
    s.post(100, [&] {
        s.postAfter(50, [&] { fired_at = s.now(); });
    });
    s.run();
    EXPECT_EQ(fired_at, 150);
}

TEST(SimulatorTest, RunUntilHorizonLeavesLaterEventsQueued)
{
    Simulator s;
    int count = 0;
    s.post(10, [&] { ++count; });
    s.post(20, [&] { ++count; });
    s.post(30, [&] { ++count; });
    const auto ran = s.run(20);
    EXPECT_EQ(ran, 2u);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(s.pendingEvents(), 1u);
    // Idle clock advances to the horizon.
    EXPECT_EQ(s.now(), 20);
    s.run();
    EXPECT_EQ(count, 3);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents)
{
    Simulator s;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            s.postAfter(10, chain);
    };
    s.post(0, chain);
    s.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(s.now(), 40);
}

TEST(SimulatorTest, StepExecutesOneEvent)
{
    Simulator s;
    int count = 0;
    s.post(1, [&] { ++count; });
    s.post(2, [&] { ++count; });
    EXPECT_TRUE(s.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(s.step());
    EXPECT_FALSE(s.step());
    EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, RequestStopHaltsRun)
{
    Simulator s;
    int count = 0;
    s.post(1, [&] {
        ++count;
        s.requestStop();
    });
    s.post(2, [&] { ++count; });
    s.run();
    EXPECT_EQ(count, 1);
    EXPECT_EQ(s.pendingEvents(), 1u);
    // A later run() resumes.
    s.run();
    EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, CancelPreventsExecution)
{
    Simulator s;
    bool ran = false;
    EventHandle handle = s.schedule(10, [&] { ran = true; });
    handle.cancel();
    s.run();
    EXPECT_FALSE(ran);
}

TEST(SimulatorTest, DroppedHandleAutoCancels)
{
    Simulator s;
    bool ran = false;
    {
        EventHandle handle = s.schedule(10, [&] { ran = true; });
        EXPECT_TRUE(handle.pending());
    }
    s.run();
    EXPECT_FALSE(ran);
}

TEST(SimulatorTest, ReleasedHandleKeepsEventScheduled)
{
    Simulator s;
    bool ran = false;
    EventId id = kInvalidEventId;
    {
        EventHandle handle = s.schedule(10, [&] { ran = true; });
        id = handle.release();
    }
    EXPECT_NE(id, kInvalidEventId);
    s.run();
    EXPECT_TRUE(ran);
    // Raw-id cancel after the fact is inert.
    s.cancel(id);
}

TEST(SimulatorDeathTest, SchedulingInThePastPanics)
{
    Simulator s;
    s.post(100, [] {});
    s.run();
    EXPECT_DEATH(s.post(50, [] {}), "before now");
}

TEST(SimulatorDeathTest, NegativeDelayPanics)
{
    Simulator s;
    EXPECT_DEATH(s.postAfter(-1, [] {}), "negative delay");
}

TEST(SimulatorTest, ExecutedEventsAccumulatesAcrossRuns)
{
    Simulator s;
    s.post(1, [] {});
    s.post(2, [] {});
    s.run(1);
    s.run();
    EXPECT_EQ(s.executedEvents(), 2u);
}

TEST(SimulatorTest, TimeAdvanceHookSeesTheJumpBeforeItHappens)
{
    Simulator s;
    std::vector<std::pair<TimeUs, TimeUs>> jumps;  // (now, next)
    s.setTimeAdvanceHook(
        [&](TimeUs next) { jumps.emplace_back(s.now(), next); });
    s.post(100, [] {});
    s.post(100, [] {});  // same-time event: no jump, no hook
    s.post(250, [] {});
    s.run();
    ASSERT_EQ(jumps.size(), 2u);
    EXPECT_EQ(jumps[0], (std::pair<TimeUs, TimeUs>{0, 100}));
    EXPECT_EQ(jumps[1], (std::pair<TimeUs, TimeUs>{100, 250}));
}

TEST(SimulatorTest, TimeAdvanceHookFiresOnStepToo)
{
    Simulator s;
    TimeUs next_seen = -1;
    s.setTimeAdvanceHook([&](TimeUs next) { next_seen = next; });
    s.post(42, [] {});
    s.step();
    EXPECT_EQ(next_seen, 42);
}

TEST(SimulatorTest, NullTimeAdvanceHookDetaches)
{
    Simulator s;
    int fired = 0;
    s.setTimeAdvanceHook([&](TimeUs) { ++fired; });
    s.post(10, [] {});
    s.run();
    EXPECT_EQ(fired, 1);
    s.setTimeAdvanceHook(nullptr);
    s.post(20, [] {});
    s.run();
    EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, SameTimeEventsRunInScheduleOrder)
{
    Simulator s;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        s.post(42, [&order, i] { order.push_back(i); });
    s.run();
    for (int i = 0; i < 10; ++i)
        ASSERT_EQ(order[static_cast<std::size_t>(i)], i);
}

}  // namespace
}  // namespace splitwise::sim
