#include "sim/event_action.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace splitwise::sim {
namespace {

TEST(EventActionTest, DefaultIsEmpty)
{
    EventAction a;
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_FALSE(a.onHeap());
}

TEST(EventActionTest, InvokesSmallCallableInline)
{
    int calls = 0;
    EventAction a([&calls] { ++calls; });
    ASSERT_TRUE(static_cast<bool>(a));
    EXPECT_FALSE(a.onHeap());
    a();
    a();
    EXPECT_EQ(calls, 2);
}

TEST(EventActionTest, HotPathCaptureShapesStayInline)
{
    // The shapes the simulator schedules on its hot path. If one of
    // these outgrows the inline budget the steady state silently
    // starts allocating - keep these asserts in sync with
    // EventAction::kInlineBytes.
    struct MachineCompletion {
        void* self;
        std::uint64_t epoch;
    };
    static_assert(sizeof(MachineCompletion) <= EventAction::kInlineBytes);

    struct KvDelivery {
        void* self;
        void* request;
        void* src;
        void* dst;
        std::uint32_t epoch;
        std::int64_t prompt_compute;
        int attempt;
        bool timed_out;
        bool succeeds;
        std::function<void(void*)> done;
    };
    static_assert(sizeof(KvDelivery) <= EventAction::kInlineBytes);

    struct ClusterArrival {
        void* self;
        void* request;
    };
    static_assert(sizeof(ClusterArrival) <= EventAction::kInlineBytes);

    const std::uint64_t before = EventAction::heapFallbacks();
    int sink = 0;
    EventAction machine([p = MachineCompletion{}, &sink]() mutable {
        p.epoch++;
        ++sink;
    });
    EventAction delivery([p = KvDelivery{}, &sink]() mutable {
        p.attempt++;
        ++sink;
    });
    EventAction arrival([p = ClusterArrival{}, &sink]() mutable {
        p.self = nullptr;
        ++sink;
    });
    EXPECT_FALSE(machine.onHeap());
    EXPECT_FALSE(delivery.onHeap());
    EXPECT_FALSE(arrival.onHeap());
    EXPECT_EQ(EventAction::heapFallbacks(), before);
    machine();
    delivery();
    arrival();
    EXPECT_EQ(sink, 3);
}

TEST(EventActionTest, OversizedCaptureFallsBackToHeapAndCounts)
{
    struct Big {
        unsigned char bytes[EventAction::kInlineBytes + 1] = {};
    };
    const std::uint64_t before = EventAction::heapFallbacks();
    int calls = 0;
    EventAction a([big = Big{}, &calls]() mutable {
        big.bytes[0] = 1;
        ++calls;
    });
    EXPECT_TRUE(a.onHeap());
    EXPECT_EQ(EventAction::heapFallbacks(), before + 1);
    a();
    EXPECT_EQ(calls, 1);
}

TEST(EventActionTest, MovePreservesCallableAndState)
{
    std::vector<int> log;
    EventAction a([&log, n = 7]() mutable { log.push_back(n++); });
    EventAction b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));  // NOLINT: testing moved-from
    ASSERT_TRUE(static_cast<bool>(b));
    b();
    EventAction c;
    c = std::move(b);
    EXPECT_FALSE(static_cast<bool>(b));  // NOLINT: testing moved-from
    c();
    EXPECT_EQ(log, (std::vector<int>{7, 8}));
}

TEST(EventActionTest, MoveAssignDestroysPreviousCallable)
{
    auto tracker = std::make_shared<int>(0);
    EXPECT_EQ(tracker.use_count(), 1);
    EventAction a([keep = tracker] { (void)keep; });
    EXPECT_EQ(tracker.use_count(), 2);
    a = EventAction([] {});
    EXPECT_EQ(tracker.use_count(), 1);
}

TEST(EventActionTest, DestructorReleasesHeapCallable)
{
    struct Big {
        unsigned char pad[EventAction::kInlineBytes + 1] = {};
        std::shared_ptr<int> keep;
    };
    auto tracker = std::make_shared<int>(0);
    {
        EventAction a([big = Big{{}, tracker}] { (void)big; });
        EXPECT_TRUE(a.onHeap());
        EXPECT_EQ(tracker.use_count(), 2);
    }
    EXPECT_EQ(tracker.use_count(), 1);
}

TEST(EventActionTest, ResetEmptiesAndDestroys)
{
    auto tracker = std::make_shared<int>(0);
    EventAction a([keep = tracker] { (void)keep; });
    EXPECT_EQ(tracker.use_count(), 2);
    a.reset();
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_EQ(tracker.use_count(), 1);
}

TEST(EventActionTest, MovedHeapActionTransfersOwnershipWithoutCopy)
{
    struct Big {
        unsigned char pad[EventAction::kInlineBytes + 1] = {};
        std::shared_ptr<int> keep;
    };
    auto tracker = std::make_shared<int>(0);
    const std::uint64_t before = EventAction::heapFallbacks();
    EventAction a([big = Big{{}, tracker}] { (void)big; });
    EXPECT_EQ(EventAction::heapFallbacks(), before + 1);
    // Moving a heap-backed action moves the pointer, not the payload:
    // no new fallback, and ownership stays single.
    EventAction b(std::move(a));
    EXPECT_EQ(EventAction::heapFallbacks(), before + 1);
    EXPECT_TRUE(b.onHeap());
    EXPECT_EQ(tracker.use_count(), 2);
}

}  // namespace
}  // namespace splitwise::sim
