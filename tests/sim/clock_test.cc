#include "sim/clock.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace splitwise::sim {
namespace {

TEST(SimClockTest, NowIsAlwaysZero)
{
    SimClock clock;
    EXPECT_EQ(clock.now(), 0);
    EXPECT_TRUE(clock.waitUntil(1'000'000));
    EXPECT_EQ(clock.now(), 0);
}

TEST(SimClockTest, WaitUntilReachesDeadlineWithoutWake)
{
    SimClock clock;
    EXPECT_TRUE(clock.waitUntil(5));
    EXPECT_TRUE(clock.waitUntil(kTimeNever));
}

TEST(SimClockTest, PendingWakePreemptsWaitOnce)
{
    SimClock clock;
    clock.wake();
    // The sticky wakeup aborts exactly one wait, then is consumed.
    EXPECT_FALSE(clock.waitUntil(5));
    EXPECT_TRUE(clock.waitUntil(5));
}

TEST(SimClockTest, MultipleWakesCoalesce)
{
    SimClock clock;
    clock.wake();
    clock.wake();
    clock.wake();
    EXPECT_FALSE(clock.waitUntil(5));
    EXPECT_TRUE(clock.waitUntil(5));
}

TEST(SimClockTest, WaitForWorkReturnsOnWake)
{
    SimClock clock;
    std::thread waker([&clock] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        clock.wake();
    });
    clock.waitForWork();  // Must return rather than hang.
    waker.join();
}

TEST(WallClockTest, NowAdvances)
{
    WallClock clock;
    const TimeUs t0 = clock.now();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const TimeUs t1 = clock.now();
    EXPECT_GE(t1 - t0, 4'000);
}

TEST(WallClockTest, WaitUntilSleepsToDeadline)
{
    WallClock clock;
    const TimeUs start = clock.now();
    EXPECT_TRUE(clock.waitUntil(start + 10'000));
    EXPECT_GE(clock.now(), start + 10'000);
}

TEST(WallClockTest, PastDeadlineReturnsImmediately)
{
    WallClock clock;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_TRUE(clock.waitUntil(0));
}

TEST(WallClockTest, WakePreemptsLongSleep)
{
    WallClock clock;
    std::thread waker([&clock] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        clock.wake();
    });
    // Without the wake this would sleep for kTimeNever (forever).
    EXPECT_FALSE(clock.waitUntil(kTimeNever));
    waker.join();
}

}  // namespace
}  // namespace splitwise::sim
