#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "engine/block_manager.h"
#include "sim/rng.h"

namespace splitwise {
namespace {

// ---------------------------------------------------------------
// Shared-prefix tier properties under randomized session
// interleavings, checked against a reference model. Every assertion
// message carries (seed, step, op), so a failure is immediately
// replayable and bisectable by shrinking the step count: the op
// sequence is a pure function of the seed.
// ---------------------------------------------------------------

struct ReferenceEntry {
    std::int64_t tokens = 0;
};

struct ReferencePin {
    std::uint64_t key = 0;
    /** Entry size at acquire time (the hit-token contribution). */
    std::int64_t tokens = 0;
};

TEST(PrefixCacheProperty, RandomSessionInterleavingsMatchReferenceModel)
{
    const std::int64_t capacity = 4096;
    const int block = 16;

    for (std::uint64_t seed : {11ull, 222ull, 3333ull, 44444ull, 555555ull}) {
        engine::BlockManager bm(capacity, block);
        sim::Rng rng(seed);

        std::map<std::uint64_t, ReferenceEntry> entries;   // session key
        std::map<std::uint64_t, ReferencePin> pins;        // request id
        std::map<std::uint64_t, std::int64_t> allocs;      // id -> eff tokens

        std::uint64_t expect_hits = 0;
        std::uint64_t expect_misses = 0;
        std::uint64_t expect_evictions = 0;
        std::uint64_t expect_stores = 0;
        std::int64_t expect_hit_tokens = 0;

        for (int step = 0; step < 4000; ++step) {
            const int op = static_cast<int>(rng.uniformInt(0, 99));
            const std::uint64_t key =
                static_cast<std::uint64_t>(rng.uniformInt(1, 8));
            const std::uint64_t id =
                static_cast<std::uint64_t>(rng.uniformInt(1, 24));
            const std::string where = "seed " + std::to_string(seed) +
                                      " step " + std::to_string(step) +
                                      " op " + std::to_string(op);

            if (op < 25) {
                // Session turn completes: publish/grow its prefix.
                const std::int64_t tokens = rng.uniformInt(1, 600);
                const auto it = entries.find(key);
                const std::int64_t had =
                    it == entries.end() ? 0 : it->second.tokens;
                if (bm.storePrefix(key, tokens)) {
                    // Entries never shrink; only inserts and genuine
                    // growths count as stores.
                    if (tokens > had) {
                        entries[key].tokens = tokens;
                        ++expect_stores;
                    }
                } else {
                    ASSERT_GT(tokens, had) << where
                        << ": in-place store may never fail";
                }
            } else if (op < 50) {
                // Follow-up turn routed to this machine: pin the
                // session prefix. The acquire-time size is the hit
                // contribution even if the entry grows later.
                const bool cached = entries.count(key) > 0;
                const bool free_id = pins.count(id) == 0;
                const bool ok = bm.acquirePrefix(key, id);
                ASSERT_EQ(ok, cached && free_id) << where;
                if (ok) {
                    pins[id] = {key, entries[key].tokens};
                    ++expect_hits;
                    expect_hit_tokens += entries[key].tokens;
                } else {
                    ++expect_misses;
                }
            } else if (op < 70) {
                // Admission: allocate the full context; the manager
                // deducts the pinned prefix internally.
                const std::int64_t tokens = rng.uniformInt(0, 700);
                const auto pin = pins.find(id);
                const std::int64_t pinned =
                    pin == pins.end() ? 0 : pin->second.tokens;
                if (bm.allocate(id, tokens)) {
                    ASSERT_EQ(allocs.count(id), 0u) << where;
                    allocs[id] = std::max<std::int64_t>(0, tokens - pinned);
                } else {
                    ASSERT_TRUE(allocs.count(id) > 0 ||
                                !bm.canAllocate(std::max<std::int64_t>(
                                    0, tokens - pinned)))
                        << where << ": allocate failed with room to spare";
                }
            } else if (op < 80) {
                // Decode growth.
                const std::int64_t grow = rng.uniformInt(0, 64);
                const auto it = allocs.find(id);
                const auto pin = pins.find(id);
                const std::int64_t pinned =
                    pin == pins.end() ? 0 : pin->second.tokens;
                if (it == allocs.end()) {
                    ASSERT_FALSE(bm.extend(id, grow)) << where;
                } else {
                    const std::int64_t total =
                        pinned + it->second + grow;
                    if (bm.extend(id, total))
                        it->second += grow;
                }
            } else if (op < 96) {
                // Request done (or preempted): drop blocks and pin.
                // Double releases must be harmless no-ops.
                bm.release(id);
                allocs.erase(id);
                pins.erase(id);
                if (rng.bernoulli(0.2))
                    bm.release(id);
            } else {
                // Machine crash: KV and cache gone, counters survive.
                bm.reset();
                entries.clear();
                pins.clear();
                allocs.clear();
            }

            // --- Invariants after every operation ---
            ASSERT_EQ(bm.audit(), "") << where;

            // Ref-count conservation: every entry's refcount equals
            // the live pins pointing at it, and pinned entries are
            // never evicted.
            std::map<std::uint64_t, std::int64_t> pin_counts;
            for (const auto& [rid, pin] : pins)
                ++pin_counts[pin.key];
            for (const auto& [k, count] : pin_counts)
                ASSERT_EQ(bm.prefixRefcount(k), count) << where;

            // Evict-only-at-refcount-zero: an entry the reference
            // still knows but the manager dropped must have had no
            // pins; fold it into the expected eviction count.
            for (auto it = entries.begin(); it != entries.end();) {
                if (bm.prefixRefcount(it->first) >= 0) {
                    ++it;
                    continue;
                }
                ASSERT_EQ(pin_counts.count(it->first), 0u)
                    << where << ": pinned prefix " << it->first
                    << " was evicted";
                ++expect_evictions;
                it = entries.erase(it);
            }
            ASSERT_EQ(bm.sharedPrefixCount(), entries.size()) << where;

            // The pin view round-trips exactly.
            const auto refs = bm.prefixReferences();
            ASSERT_EQ(refs.size(), pins.size()) << where;
            for (const auto& ref : refs) {
                const auto it = pins.find(ref.requestId);
                ASSERT_NE(it, pins.end()) << where;
                ASSERT_EQ(it->second.key, ref.key) << where;
                ASSERT_EQ(it->second.tokens, ref.tokens) << where;
                ASSERT_EQ(bm.prefixTokensHeldBy(ref.requestId),
                          ref.tokens)
                    << where;
            }

            // Token conservation across private + shared tiers (a
            // double-free would undercount, a leak would overcount).
            std::int64_t private_tokens = 0;
            for (const auto& [rid, tokens] : allocs)
                private_tokens += tokens;
            std::int64_t shared_tokens = 0;
            for (const auto& [k, entry] : entries)
                shared_tokens += entry.tokens;
            ASSERT_EQ(bm.usedTokens(), private_tokens + shared_tokens)
                << where;
            ASSERT_EQ(bm.residents(), allocs.size()) << where;
            ASSERT_GE(bm.committedTokens(), 0) << where;
            ASSERT_LE(bm.committedTokens(), bm.usedTokens()) << where;

            // Hit/miss/evict/store accounting, exact at every step.
            const auto& stats = bm.prefixStats();
            ASSERT_EQ(stats.hits, expect_hits) << where;
            ASSERT_EQ(stats.misses, expect_misses) << where;
            ASSERT_EQ(stats.evictions, expect_evictions) << where;
            ASSERT_EQ(stats.stores, expect_stores) << where;
            ASSERT_EQ(stats.hitTokens, expect_hit_tokens) << where;
        }
    }
}

// ---------------------------------------------------------------
// Directed edge cases the randomized walk covers only by chance.
// ---------------------------------------------------------------

TEST(PrefixCacheProperty, DoubleAcquireIsAMissAndDoubleReleaseIsANoop)
{
    engine::BlockManager bm(1024, 16);
    ASSERT_TRUE(bm.storePrefix(7, 100));
    ASSERT_TRUE(bm.acquirePrefix(7, 1));
    // A request holds at most one pin; the second acquire is a miss
    // and must not bump the refcount.
    ASSERT_FALSE(bm.acquirePrefix(7, 1));
    ASSERT_EQ(bm.prefixRefcount(7), 1);
    ASSERT_EQ(bm.prefixStats().hits, 1u);
    ASSERT_EQ(bm.prefixStats().misses, 1u);

    bm.release(1);
    ASSERT_EQ(bm.prefixRefcount(7), 0);
    bm.release(1);  // double free: no-op, refcount stays at zero
    ASSERT_EQ(bm.prefixRefcount(7), 0);
    ASSERT_EQ(bm.audit(), "");
}

TEST(PrefixCacheProperty, PinnedPrefixSurvivesPressureUnpinnedIsEvictedLru)
{
    // 16 blocks of 16 tokens. Two cached prefixes of 4 blocks each;
    // one pinned, one idle.
    engine::BlockManager bm(256, 16);
    ASSERT_TRUE(bm.storePrefix(1, 64));
    ASSERT_TRUE(bm.storePrefix(2, 64));
    ASSERT_TRUE(bm.acquirePrefix(1, 10));

    // 12 free blocks on paper, 8 truly free. A 160-token allocation
    // needs 10 blocks: the idle prefix must be evicted, the pinned
    // one must survive.
    ASSERT_TRUE(bm.allocate(20, 160));
    ASSERT_EQ(bm.prefixRefcount(2), -1);
    ASSERT_EQ(bm.prefixRefcount(1), 1);
    ASSERT_EQ(bm.prefixStats().evictions, 1u);

    // Only 2 blocks remain and the surviving prefix is pinned, so a
    // 3-block allocation must fail rather than evict it.
    ASSERT_FALSE(bm.allocate(21, 48));
    ASSERT_EQ(bm.prefixRefcount(1), 1);

    // Dropping the pin makes the entry reclaimable; the same
    // allocation now succeeds by evicting it.
    bm.release(10);
    ASSERT_TRUE(bm.allocate(21, 48));
    ASSERT_EQ(bm.prefixRefcount(1), -1);
    ASSERT_EQ(bm.prefixStats().evictions, 2u);
    ASSERT_EQ(bm.audit(), "");
}

TEST(PrefixCacheProperty, HitTokensPriceTheAcquireTimeSize)
{
    engine::BlockManager bm(2048, 16);
    ASSERT_TRUE(bm.storePrefix(5, 200));
    ASSERT_TRUE(bm.acquirePrefix(5, 1));
    ASSERT_EQ(bm.prefixStats().hitTokens, 200);

    // The entry grows while pinned; the existing pin keeps pricing
    // its acquire-time 200 tokens, a later pin prices 300.
    ASSERT_TRUE(bm.storePrefix(5, 300));
    ASSERT_EQ(bm.prefixTokensHeldBy(1), 200);
    ASSERT_TRUE(bm.acquirePrefix(5, 2));
    ASSERT_EQ(bm.prefixStats().hitTokens, 500);

    // allocate() deducts the pin: a 260-token context on a 200-token
    // pin stores only the 60-token suffix privately.
    ASSERT_TRUE(bm.allocate(1, 260));
    ASSERT_EQ(bm.tokensOf(1), 60);
    ASSERT_EQ(bm.audit(), "");
}

}  // namespace
}  // namespace splitwise
