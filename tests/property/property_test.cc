#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "core/cluster.h"
#include "core/designs.h"
#include "engine/block_manager.h"
#include "hw/machine_spec.h"
#include "metrics/summary.h"
#include "model/llm_config.h"
#include "model/perf_model.h"
#include "model/transfer_model.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "workload/trace_gen.h"
#include "workload/workloads.h"

namespace splitwise {
namespace {

// ---------------------------------------------------------------
// Performance-model invariants, swept over every (model, machine)
// pair via parameterized tests.
// ---------------------------------------------------------------

using ModelMachine = std::tuple<const char*, const char*>;

class PerfModelProperties : public ::testing::TestWithParam<ModelMachine> {
  protected:
    static model::LlmConfig
    llm()
    {
        return std::string(std::get<0>(GetParam())) == "llama"
                   ? model::llama2_70b()
                   : model::bloom_176b();
    }

    static hw::MachineSpec
    machine()
    {
        const std::string name = std::get<1>(GetParam());
        if (name == "a100")
            return hw::dgxA100();
        if (name == "h100")
            return hw::dgxH100();
        return hw::dgxH100Capped();
    }
};

TEST_P(PerfModelProperties, PromptTimeMonotoneInTokens)
{
    const model::AnalyticalPerfModel m(llm(), machine());
    sim::TimeUs prev = 0;
    for (std::int64_t p = 64; p <= 16384; p *= 2) {
        const sim::TimeUs t = m.promptTime(p, 1);
        ASSERT_GE(t, prev) << "prompt " << p;
        prev = t;
    }
}

TEST_P(PerfModelProperties, TokenTimeMonotoneInBatch)
{
    const model::AnalyticalPerfModel m(llm(), machine());
    sim::TimeUs prev = 0;
    for (int b = 1; b <= 256; b *= 2) {
        const sim::TimeUs t = m.tokenTime(b, 1000LL * b);
        ASSERT_GE(t, prev) << "batch " << b;
        prev = t;
    }
}

TEST_P(PerfModelProperties, TokenTimeMonotoneInContext)
{
    const model::AnalyticalPerfModel m(llm(), machine());
    sim::TimeUs prev = 0;
    for (std::int64_t k = 0; k <= 1 << 20; k = k == 0 ? 1024 : k * 4) {
        const sim::TimeUs t = m.tokenTime(8, k);
        ASSERT_GE(t, prev) << "context " << k;
        prev = t;
    }
}

TEST_P(PerfModelProperties, MixedAtLeastAsSlowAsParts)
{
    const model::AnalyticalPerfModel m(llm(), machine());
    sim::Rng rng(31);
    for (int i = 0; i < 100; ++i) {
        model::IterationShape shape;
        shape.promptTokens = rng.uniformInt(1, 4096);
        shape.promptRequests = static_cast<int>(rng.uniformInt(1, 4));
        shape.tokenRequests = static_cast<int>(rng.uniformInt(1, 64));
        shape.contextTokens = rng.uniformInt(0, 2000) * shape.tokenRequests;
        const sim::TimeUs mixed = m.iterationTime(shape);
        ASSERT_GE(mixed,
                  m.promptTime(shape.promptTokens, shape.promptRequests));
        ASSERT_GE(mixed + 1,
                  m.tokenTime(shape.tokenRequests, shape.contextTokens));
    }
}

TEST_P(PerfModelProperties, TimesArePositiveAndFinite)
{
    const model::AnalyticalPerfModel m(llm(), machine());
    sim::Rng rng(33);
    for (int i = 0; i < 200; ++i) {
        const auto p = rng.uniformInt(1, 20000);
        const auto b = static_cast<int>(rng.uniformInt(1, 256));
        const auto k = rng.uniformInt(0, 1 << 21);
        ASSERT_GT(m.promptTime(p, 1), 0);
        ASSERT_LT(m.promptTime(p, 1), sim::secondsToUs(60));
        ASSERT_GT(m.tokenTime(b, k), 0);
        ASSERT_LT(m.tokenTime(b, k), sim::secondsToUs(10));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, PerfModelProperties,
    ::testing::Combine(::testing::Values("llama", "bloom"),
                       ::testing::Values("a100", "h100", "h100cap")),
    [](const ::testing::TestParamInfo<ModelMachine>& info) {
        return std::string(std::get<0>(info.param)) + "_" +
               std::get<1>(info.param);
    });

// ---------------------------------------------------------------
// Transfer-model invariants across link types and prompt sizes.
// ---------------------------------------------------------------

class TransferProperties : public ::testing::TestWithParam<const char*> {
  protected:
    static hw::LinkSpec
    link()
    {
        const std::string name = GetParam();
        if (name == "hh")
            return hw::linkBetween(hw::dgxH100(), hw::dgxH100());
        if (name == "aa")
            return hw::linkBetween(hw::dgxA100(), hw::dgxA100());
        return hw::linkBetween(hw::dgxH100(), hw::dgxA100());
    }
};

TEST_P(TransferProperties, PlanVisibleNeverWorseThanSerialized)
{
    const model::TransferModel t(model::llama2_70b(), link());
    const model::AnalyticalPerfModel perf(model::llama2_70b(),
                                          hw::dgxH100());
    for (std::int64_t p = 16; p <= 16384; p *= 2) {
        const auto plan = t.plan(p, perf.promptTime(p, 1));
        ASSERT_LE(plan.visibleUs, t.serializedTime(p) + 1) << "prompt " << p;
        ASSERT_GE(plan.visibleUs, 0);
        ASSERT_GE(plan.interferenceUs, 0);
    }
}

TEST_P(TransferProperties, WireTimeMonotone)
{
    const model::TransferModel t(model::bloom_176b(), link());
    sim::TimeUs prev = 0;
    for (std::int64_t p = 1; p <= 16384; p *= 4) {
        const auto wire = t.plan(p, 0).wireUs;
        ASSERT_GE(wire, prev);
        prev = wire;
    }
}

INSTANTIATE_TEST_SUITE_P(AllLinks, TransferProperties,
                         ::testing::Values("hh", "aa", "ha"));

// ---------------------------------------------------------------
// BlockManager randomized-operations check against a reference
// model (a simple map of token counts).
// ---------------------------------------------------------------

TEST(BlockManagerProperty, RandomOpsMatchReferenceModel)
{
    const std::int64_t capacity = 4096;
    const int block = 16;
    engine::BlockManager bm(capacity, block);
    std::map<std::uint64_t, std::int64_t> reference;  // id -> tokens
    sim::Rng rng(12345);

    auto blocks_for = [&](std::int64_t tokens) {
        return (tokens + block - 1) / block;
    };
    auto used_blocks = [&] {
        std::int64_t total = 0;
        for (const auto& [id, tokens] : reference)
            total += blocks_for(tokens);
        return total;
    };

    for (int step = 0; step < 5000; ++step) {
        const int op = static_cast<int>(rng.uniformInt(0, 2));
        const std::uint64_t id = static_cast<std::uint64_t>(
            rng.uniformInt(0, 20));
        if (op == 0) {
            const std::int64_t tokens = rng.uniformInt(0, 600);
            const bool expect_ok =
                reference.count(id) == 0 &&
                blocks_for(tokens) <= capacity / block - used_blocks();
            ASSERT_EQ(bm.allocate(id, tokens), expect_ok) << "step " << step;
            if (expect_ok)
                reference[id] = tokens;
        } else if (op == 1) {
            const std::int64_t grow = rng.uniformInt(0, 64);
            const auto it = reference.find(id);
            if (it == reference.end()) {
                ASSERT_FALSE(bm.extend(id, grow));
            } else {
                const std::int64_t target = it->second + grow;
                const std::int64_t need =
                    blocks_for(target) - blocks_for(it->second);
                const bool expect_ok =
                    need <= capacity / block - used_blocks();
                ASSERT_EQ(bm.extend(id, target), expect_ok)
                    << "step " << step;
                if (expect_ok)
                    it->second = target;
            }
        } else {
            bm.release(id);
            reference.erase(id);
        }
        // Aggregate invariants hold after every operation.
        std::int64_t ref_tokens = 0;
        for (const auto& [rid, tokens] : reference)
            ref_tokens += tokens;
        ASSERT_EQ(bm.usedTokens(), ref_tokens);
        ASSERT_EQ(bm.freeBlocks(), capacity / block - used_blocks());
        ASSERT_EQ(bm.residents(), reference.size());
    }
}

// ---------------------------------------------------------------
// Summary percentiles against a sort-based reference.
// ---------------------------------------------------------------

TEST(SummaryProperty, PercentilesMatchSortedReference)
{
    sim::Rng rng(777);
    for (int trial = 0; trial < 20; ++trial) {
        metrics::Summary s;
        std::vector<double> values;
        const int n = static_cast<int>(rng.uniformInt(1, 500));
        for (int i = 0; i < n; ++i) {
            const double v = rng.uniform(0.0, 1000.0);
            s.add(v);
            values.push_back(v);
        }
        std::sort(values.begin(), values.end());
        for (double p : {0.0, 25.0, 50.0, 90.0, 99.0, 100.0}) {
            const double rank = p / 100.0 * (n - 1);
            const auto lo = static_cast<std::size_t>(rank);
            const auto hi = std::min<std::size_t>(lo + 1, n - 1);
            const double frac = rank - static_cast<double>(lo);
            const double expected =
                values[lo] + (values[hi] - values[lo]) * frac;
            ASSERT_NEAR(s.percentile(p), expected, 1e-9)
                << "trial " << trial << " p" << p;
        }
    }
}

// ---------------------------------------------------------------
// EventQueue randomized schedule/cancel/pop against a reference
// model (multiset of live entries).
// ---------------------------------------------------------------

TEST(EventQueueProperty, RandomOpsMatchReferenceModel)
{
    sim::EventQueue queue;
    // Reference: map id -> time for live events.
    std::map<sim::EventId, std::int64_t> reference;
    std::vector<sim::EventId> all_ids;
    sim::Rng rng(4242);

    auto reference_next = [&]() -> std::int64_t {
        std::int64_t best = INT64_MAX;
        for (const auto& [id, t] : reference)
            best = std::min(best, t);
        return best;
    };

    for (int step = 0; step < 4000; ++step) {
        const int op = static_cast<int>(rng.uniformInt(0, 2));
        if (op == 0 || reference.empty()) {
            const std::int64_t t = rng.uniformInt(0, 1000);
            const auto id = queue.schedule(t, [] {}).release();
            reference[id] = t;
            all_ids.push_back(id);
        } else if (op == 1) {
            // Cancel a random known id (live or not).
            const auto id = all_ids[static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<std::int64_t>(
                                      all_ids.size() - 1)))];
            queue.cancel(id);
            reference.erase(id);
        } else {
            const auto ev = queue.pop();
            // Must be a live reference entry at the minimum time.
            const auto it = reference.find(ev.id);
            ASSERT_NE(it, reference.end()) << "step " << step;
            ASSERT_EQ(it->second, ev.time);
            ASSERT_EQ(it->second, reference_next());
            reference.erase(it);
        }
        ASSERT_EQ(queue.size(), reference.size());
        ASSERT_EQ(queue.empty(), reference.empty());
        if (!reference.empty()) {
            ASSERT_EQ(queue.nextTime(), reference_next());
        }
        ASSERT_EQ(queue.integrityError(), "") << "step " << step;
    }
}

// ---------------------------------------------------------------
// Workload distribution invariants across both services.
// ---------------------------------------------------------------

class WorkloadProperties : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadProperties, QuantileIsMonotone)
{
    const auto& w = workload::workloadByName(GetParam());
    for (const auto* dist : {w.promptTokens.get(), w.outputTokens.get()}) {
        std::int64_t prev = 0;
        for (double q = 0.0; q <= 1.0; q += 0.01) {
            const auto v = dist->quantile(q);
            ASSERT_GE(v, prev) << "q=" << q;
            prev = v;
        }
    }
}

TEST_P(WorkloadProperties, SampleMatchesQuantileEnvelope)
{
    const auto& w = workload::workloadByName(GetParam());
    sim::Rng rng(31337);
    const auto lo = w.promptTokens->quantile(0.0);
    const auto hi = w.promptTokens->quantile(1.0);
    for (int i = 0; i < 2000; ++i) {
        const auto v = w.promptTokens->sample(rng);
        ASSERT_GE(v, std::max<std::int64_t>(1, lo));
        ASSERT_LE(v, hi);
    }
}

INSTANTIATE_TEST_SUITE_P(BothServices, WorkloadProperties,
                         ::testing::Values("coding", "conversation"));

// ---------------------------------------------------------------
// Whole-cluster conservation sweep across designs and loads.
// ---------------------------------------------------------------

using DesignLoad = std::tuple<int, int>;  // (design index, rps)

class ClusterConservation : public ::testing::TestWithParam<DesignLoad> {};

TEST_P(ClusterConservation, TokensConservedAndAllComplete)
{
    const auto [design_idx, rps] = GetParam();
    core::ClusterDesign designs[] = {
        core::baselineH100(3),
        core::splitwiseHH(2, 2),
        core::splitwiseHA(2, 2),
        core::splitwiseHHcap(2, 2),
    };
    workload::TraceGenerator gen(workload::conversation(), 1234);
    const auto trace =
        gen.generate(static_cast<double>(rps), sim::secondsToUs(15));
    std::int64_t prompt_total = 0;
    std::int64_t output_total = 0;
    for (const auto& r : trace) {
        prompt_total += r.promptTokens;
        output_total += r.outputTokens;
    }
    core::Cluster cluster(model::llama2_70b(),
                          designs[static_cast<std::size_t>(design_idx)]);
    const auto report = cluster.run(trace);
    ASSERT_EQ(report.requests.completed(), trace.size());
    ASSERT_EQ(report.requests.totalPromptTokens(), prompt_total);
    ASSERT_EQ(report.requests.totalOutputTokens(), output_total);
    ASSERT_EQ(report.promptPool.tokensGenerated +
                  report.tokenPool.tokensGenerated,
              output_total);
}

INSTANTIATE_TEST_SUITE_P(
    DesignsAndLoads, ClusterConservation,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(3, 8, 20)));

}  // namespace
}  // namespace splitwise
