#include <gtest/gtest.h>

#include <limits>

#include "core/cluster.h"
#include "core/designs.h"
#include "engine/machine.h"
#include "model/llm_config.h"
#include "provision/provisioner.h"
#include "workload/trace_gen.h"
#include "workload/workloads.h"

namespace splitwise {
namespace {

using core::Cluster;
using core::RunReport;
using core::SimConfig;

workload::Trace
convTrace(double rps, double seconds, std::uint64_t seed = 9)
{
    workload::TraceGenerator gen(workload::conversation(), seed);
    return gen.generate(rps, sim::secondsToUs(seconds));
}

// --- Machine-level capacity signals ---

TEST(MachineCapacity, MaxBatchWithinTbtIsMachineTypeAware)
{
    sim::Simulator simulator;
    const model::AnalyticalPerfModel h100_perf(model::llama2_70b(),
                                               hw::dgxH100());
    const model::AnalyticalPerfModel a100_perf(model::llama2_70b(),
                                               hw::dgxA100());
    const model::MemoryModel h100_mem(model::llama2_70b(), hw::dgxH100());
    const model::MemoryModel a100_mem(model::llama2_70b(), hw::dgxA100());
    engine::Machine h100(simulator, 0, hw::dgxH100(), h100_perf, h100_mem,
                         {}, {});
    engine::Machine a100(simulator, 1, hw::dgxA100(), a100_perf, a100_mem,
                         {}, {});
    const core::SloChecker ref(model::llama2_70b());
    const double bound = 1.25 * ref.refTbtMs(1200);
    // H100s fit far larger latency-efficient decode batches.
    EXPECT_GT(h100.maxBatchWithinTbt(bound),
              1.5 * a100.maxBatchWithinTbt(bound));
    // The bound is respected.
    const int b = h100.maxBatchWithinTbt(bound);
    EXPECT_LE(sim::usToMs(h100_perf.tokenTime(b, b * 1200)), bound);
    EXPECT_GT(sim::usToMs(h100_perf.tokenTime(b + 1, (b + 1) * 1200)),
              bound);
}

TEST(MachineCapacity, DecodeBatchCappedAtThroughputOptimum)
{
    // Even with hundreds of residents, the MLS never schedules a
    // decode batch past the point where throughput starts falling
    // (the quadratic penalty makes batch 256 slower than batch 64).
    sim::Simulator simulator;
    const model::AnalyticalPerfModel perf(model::llama2_70b(),
                                          hw::dgxH100());
    const model::MemoryModel mem(model::llama2_70b(), hw::dgxH100());
    engine::MlsConfig config;
    config.maxBatchSize = 256;
    engine::Machine machine(simulator, 0, hw::dgxH100(), perf, mem, config,
                            {});
    EXPECT_LE(machine.mls().config().maxBatchSize, 80);
    EXPECT_GE(machine.mls().config().maxBatchSize, 40);
}

// --- Chunked prefill at cluster level ---

TEST(ChunkedPrefillCluster, ShrinksWorstGapAtTtftCost)
{
    const auto trace = convTrace(16.0, 30);
    SimConfig whole;
    SimConfig chunked;
    chunked.mls.promptChunkTokens = 256;

    Cluster a(model::llama2_70b(), core::baselineH100(6), whole);
    Cluster b(model::llama2_70b(), core::baselineH100(6), chunked);
    const RunReport whole_report = a.run(trace);
    const RunReport chunk_report = b.run(trace);

    // Bounded prompt slices cap the decode stall...
    EXPECT_LT(chunk_report.requests.maxTbtMs().p90(),
              0.7 * whole_report.requests.maxTbtMs().p90());
    // ...at the price of slower first tokens.
    EXPECT_GT(chunk_report.requests.ttftMs().p50(),
              whole_report.requests.ttftMs().p50());
    EXPECT_EQ(chunk_report.requests.completed(), trace.size());
}

// --- Second-token bookkeeping ---

TEST(SecondTokenAccounting, TransferGapExcludedFromStreamingTail)
{
    // A lightly loaded Splitwise pair: the only large gap each
    // request sees is the transfer-bearing second token, which must
    // land in secondTokenMs, not maxTbtMs.
    workload::Trace trace;
    for (int i = 0; i < 20; ++i) {
        trace.push_back({static_cast<std::uint64_t>(i),
                         sim::secondsToUs(i * 1.0), 2000, 20});
    }
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(1, 1));
    const RunReport report = cluster.run(trace);
    for (const auto& r : report.requests.results()) {
        EXPECT_GT(r.secondTokenMs, r.tbtMs);
        EXPECT_LT(r.maxTbtMs, r.secondTokenMs);
    }
}

// --- Forced-serialized transfer configuration ---

TEST(TransferConfig, HugeThresholdForcesSerialized)
{
    const auto trace = convTrace(4.0, 20);
    SimConfig config;
    config.layerwiseThresholdTokens = std::numeric_limits<std::int64_t>::max();
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(2, 2), config);
    const RunReport report = cluster.run(trace);
    EXPECT_GT(report.transfers.transfers, 0u);
    EXPECT_EQ(report.transfers.layerwiseTransfers, 0u);
}

TEST(TransferConfig, ZeroThresholdForcesLayerwise)
{
    const auto trace = convTrace(4.0, 20);
    SimConfig config;
    config.layerwiseThresholdTokens = 0;
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(2, 2), config);
    const RunReport report = cluster.run(trace);
    EXPECT_GT(report.transfers.transfers, 0u);
    EXPECT_EQ(report.transfers.layerwiseTransfers,
              report.transfers.transfers);
}

TEST(TransferConfig, CompressionReducesBytesMoved)
{
    const auto trace = convTrace(4.0, 20);
    SimConfig raw;
    SimConfig compressed;
    compressed.kvCompressionRatio = 4.0;
    Cluster a(model::llama2_70b(), core::splitwiseHH(2, 2), raw);
    Cluster b(model::llama2_70b(), core::splitwiseHH(2, 2), compressed);
    const RunReport ra = a.run(trace);
    const RunReport rb = b.run(trace);
    EXPECT_NEAR(static_cast<double>(rb.transfers.bytesMoved),
                static_cast<double>(ra.transfers.bytesMoved) / 4.0,
                static_cast<double>(ra.transfers.bytesMoved) * 0.01);
    // Less wire time -> second tokens no slower than raw.
    metrics::Summary second_raw;
    metrics::Summary second_comp;
    for (const auto& r : ra.requests.results())
        if (r.outputTokens > 1)
            second_raw.add(r.secondTokenMs);
    for (const auto& r : rb.requests.results())
        if (r.outputTokens > 1)
            second_comp.add(r.secondTokenMs);
    EXPECT_LE(second_comp.p50(), second_raw.p50() + 0.5);
}

// --- CLS behaviours ---

TEST(ClsBehaviour, TokenSloBoundDerivedFromReference)
{
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(1, 1));
    // The Cluster wires a positive TBT bound into the CLS by default;
    // exercised indirectly: a run at moderate load must not leave
    // token machines over their latency-efficient batch on average.
    const auto trace = convTrace(6.0, 20);
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed(), trace.size());
}

TEST(ClsBehaviour, OverloadDevolvesToLocalExecution)
{
    // 30x the sustainable load on a tiny cluster: the CLS must stop
    // splitting once everything is saturated (SVI-E), so a large
    // fraction of requests never transfer.
    const auto trace = convTrace(60.0, 10);
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(1, 1));
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed(), trace.size());
    EXPECT_LT(report.transfers.transfers, trace.size() / 2);
}

TEST(ClsBehaviour, PromptOriginMachinesKeepTakingPromptsWhileMixed)
{
    // Under decode spillover, prompt machines enter the mixed pool
    // but must keep serving prompt work (identity retention, SIV-A):
    // TTFT should stay bounded rather than collapse onto fewer
    // machines.
    const auto trace = convTrace(30.0, 20);
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(4, 4));
    const RunReport report = cluster.run(trace);
    std::int64_t prompt_pool_tokens = 0;
    for (int i = 0; i < 4; ++i) {
        prompt_pool_tokens +=
            cluster.machines()[static_cast<std::size_t>(i)]
                ->stats()
                .promptTokensProcessed;
    }
    // The prompt pool still did the overwhelming share of prompts.
    EXPECT_GT(prompt_pool_tokens,
              report.requests.totalPromptTokens() * 6 / 10);
}

// --- Provisioner determinism ---

TEST(ProvisionerDeterminism, RepeatedSearchesAgree)
{
    provision::ProvisionerOptions options;
    options.traceDuration = sim::secondsToUs(10);
    options.rpsTolerance = 4.0;
    options.promptFractions = {0.5};
    const provision::Provisioner a(model::llama2_70b(),
                                   workload::conversation(), options);
    const provision::Provisioner b(model::llama2_70b(),
                                   workload::conversation(), options);
    const auto design = core::splitwiseHH(2, 2);
    EXPECT_DOUBLE_EQ(a.maxThroughput(design), b.maxThroughput(design));
}

}  // namespace
}  // namespace splitwise
