#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/designs.h"
#include "model/llm_config.h"
#include "workload/trace_gen.h"
#include "workload/workloads.h"

namespace splitwise {
namespace {

using core::Cluster;
using core::RunReport;
using core::SimConfig;

/**
 * Failure-injection and overload scenarios: the simulator must stay
 * deadlock-free and complete every request no matter how hostile
 * the load pattern is.
 */
TEST(StressTest, BurstArrivalAllAtOnce)
{
    workload::Trace trace;
    for (int i = 0; i < 200; ++i)
        trace.push_back({static_cast<std::uint64_t>(i), 0, 1500, 30});
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(2, 2));
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed(), 200u);
}

TEST(StressTest, SustainedOverloadDrains)
{
    // 10x more load than two machines can serve; queues grow but the
    // finite trace must still drain to completion.
    workload::TraceGenerator gen(workload::conversation(), 17);
    const auto trace = gen.generate(40.0, sim::secondsToUs(15));
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(1, 1));
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed(), trace.size());
    // Overflow pushed work into the mixed pool.
    EXPECT_GT(report.mixedRoutes, 0u);
}

TEST(StressTest, MemoryPressureForcesStallsNotDeadlock)
{
    // BLOOM on a memory-starved configuration: tiny usable fraction
    // leaves barely more KV space than single requests need.
    SimConfig config;
    config.memoryUtilFraction = 0.62;  // ~45 GB of KV for BLOOM
    workload::Trace trace;
    for (int i = 0; i < 60; ++i) {
        trace.push_back({static_cast<std::uint64_t>(i),
                         sim::msToUs(i * 20.0), 2000, 60});
    }
    Cluster cluster(model::bloom_176b(), core::splitwiseHH(1, 1), config);
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed(), 60u);
    // The token machine had to queue inbound transfers.
    EXPECT_GT(report.transfers.memoryStalls, 0u);
}

TEST(StressTest, PreemptionPathExercisedUnderTightMemory)
{
    // ~11k KV tokens on the machine: three 3000-token residents fit,
    // but their decodes grow past the free blocks mid-flight.
    SimConfig config;
    config.memoryUtilFraction = 0.62;
    config.cls.tokenOverflowUtilization = 1.1;  // never overflow away
    workload::Trace trace;
    for (int i = 0; i < 12; ++i) {
        trace.push_back({static_cast<std::uint64_t>(i),
                         sim::msToUs(i * 10.0), 3000, 900});
    }
    Cluster cluster(model::bloom_176b(), core::baselineH100(1), config);
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed(), 12u);
    // With decodes growing into a full pool, recompute preemptions
    // must fire (and be survivable).
    EXPECT_GT(report.preemptions, 0u);
}

TEST(StressTest, LongGenerationsComplete)
{
    workload::Trace trace;
    for (int i = 0; i < 5; ++i) {
        trace.push_back({static_cast<std::uint64_t>(i),
                         sim::msToUs(i * 100.0), 500, 4000});
    }
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(1, 1));
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed(), 5u);
    EXPECT_EQ(report.requests.totalOutputTokens(), 20000);
}

TEST(StressTest, HugePromptsRunAlone)
{
    workload::Trace trace;
    for (int i = 0; i < 10; ++i) {
        trace.push_back({static_cast<std::uint64_t>(i),
                         sim::msToUs(i * 50.0), 16000, 4});
    }
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(1, 1));
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed(), 10u);
}

TEST(StressTest, MixOfExtremes)
{
    workload::Trace trace;
    std::uint64_t id = 0;
    for (int i = 0; i < 30; ++i) {
        trace.push_back({id++, sim::msToUs(i * 30.0), 8000, 1});
        trace.push_back({id++, sim::msToUs(i * 30.0 + 1), 1, 300});
        trace.push_back({id++, sim::msToUs(i * 30.0 + 2), 1000, 50});
    }
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(2, 2));
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed(), 90u);
}

TEST(StressTest, RequestLevelPolicyCluster)
{
    // The Fig. 2a policy end to end: slower, but correct.
    SimConfig config;
    config.mls.policy = engine::BatchPolicy::kRequestLevel;
    workload::TraceGenerator gen(workload::conversation(), 5);
    const auto trace = gen.generate(2.0, sim::secondsToUs(20));
    Cluster cluster(model::llama2_70b(), core::baselineH100(2), config);
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed(), trace.size());
}

TEST(StressTest, ContinuousPolicyCluster)
{
    SimConfig config;
    config.mls.policy = engine::BatchPolicy::kContinuous;
    workload::TraceGenerator gen(workload::conversation(), 5);
    const auto trace = gen.generate(4.0, sim::secondsToUs(20));
    Cluster cluster(model::llama2_70b(), core::baselineH100(2), config);
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed(), trace.size());
}

TEST(StressTest, BatchingPoliciesOrderTailTbtAsInFig2)
{
    // Fig. 2: request-level batching has the worst tail TTFT;
    // continuous preemption hurts tail TBT vs mixed.
    workload::TraceGenerator gen(workload::conversation(), 5);
    const auto trace = gen.generate(5.0, sim::secondsToUs(25));
    auto run_policy = [&](engine::BatchPolicy policy) {
        SimConfig config;
        config.mls.policy = policy;
        Cluster cluster(model::llama2_70b(), core::baselineH100(2), config);
        return cluster.run(trace);
    };
    const RunReport request_level =
        run_policy(engine::BatchPolicy::kRequestLevel);
    const RunReport continuous = run_policy(engine::BatchPolicy::kContinuous);
    const RunReport mixed = run_policy(engine::BatchPolicy::kMixed);
    EXPECT_GT(request_level.requests.ttftMs().p90(),
              mixed.requests.ttftMs().p90());
    EXPECT_GE(continuous.requests.maxTbtMs().p90(),
              mixed.requests.maxTbtMs().p90());
}

}  // namespace
}  // namespace splitwise
