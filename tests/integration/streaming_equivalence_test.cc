/**
 * @file
 * Streamed-vs-materialized equivalence gate: a cluster fed from a
 * pull-based TraceStream must produce a report byte-identical to the
 * same cluster run over the drained, materialized trace - per seed,
 * at every job count, and under a fault storm. Runs under the
 * `determinism` ctest label next to the golden-replay gate: the
 * streaming ingestion path can never silently diverge from the
 * vector path CI already pins.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/fault_plan.h"
#include "core/report_io.h"
#include "core/run.h"
#include "model/llm_config.h"
#include "provision/provisioner.h"
#include "sched/policy.h"
#include "workload/multi_turn.h"
#include "workload/trace_gen.h"
#include "workload/trace_stream.h"
#include "workload/workloads.h"

namespace splitwise::core {
namespace {

const std::vector<std::uint64_t> kSeeds = {7, 42, 2024};

RunOptions
baseOptions()
{
    RunOptions options;
    options.llm = model::llama2_70b();
    options.design =
        provision::makeDesign(provision::DesignKind::kSplitwiseHH, 3, 2);
    options.sim.cls.routingSeed = 99;
    return options;
}

workload::Trace
makeTrace(std::uint64_t seed)
{
    workload::TraceGenerator gen(workload::coding(), seed);
    return gen.generate(12.0, sim::secondsToUs(20.0));
}

/** reportToJson of the materialized path at a given job count. */
std::string
materializedJson(const RunOptions& base, const workload::Trace& trace,
                 int jobs)
{
    RunOptions options = base;
    options.traces = {trace};
    options.jobs = jobs;
    const auto reports = runMany(options);
    return reportToJson(reports.front());
}

/** reportToJson of the same workload pulled through runStream. */
std::string
streamedJson(const RunOptions& base, const workload::Trace& trace)
{
    RunOptions options = base;
    workload::VectorTraceStream stream(trace);
    return reportToJson(runStream(options, stream));
}

/**
 * reportToJson of the fully streaming path: the trace is never
 * materialized at all - requests are sampled from the generator one
 * arrival at a time.
 */
std::string
generatorStreamedJson(const RunOptions& base, std::uint64_t seed)
{
    RunOptions options = base;
    workload::TraceGenerator gen(workload::coding(), seed);
    auto stream = gen.streamPoisson(12.0, sim::secondsToUs(20.0));
    return reportToJson(runStream(options, *stream));
}

TEST(StreamingEquivalenceTest, ByteIdenticalAcrossPathsAndJobCounts)
{
    for (const std::uint64_t seed : kSeeds) {
        const RunOptions base = baseOptions();
        const workload::Trace trace = makeTrace(seed);
        ASSERT_FALSE(trace.empty()) << "seed " << seed;

        const std::string serial = materializedJson(base, trace, 1);
        const std::string parallel = materializedJson(base, trace, 8);
        const std::string vector_streamed = streamedJson(base, trace);
        const std::string gen_streamed = generatorStreamedJson(base, seed);

        EXPECT_EQ(serial, parallel) << "seed " << seed;
        EXPECT_EQ(serial, vector_streamed) << "seed " << seed;
        EXPECT_EQ(serial, gen_streamed) << "seed " << seed;
    }
}

TEST(StreamingEquivalenceTest, ByteIdenticalUnderFaultStorm)
{
    for (const std::uint64_t seed : kSeeds) {
        RunOptions base = baseOptions();
        FaultStormConfig storm;
        storm.numMachines = base.design.numPrompt + base.design.numToken;
        storm.horizonUs = sim::secondsToUs(20.0);
        base.faults = makeFaultStorm(storm, seed);

        const workload::Trace trace = makeTrace(seed);
        const std::string serial = materializedJson(base, trace, 1);
        const std::string parallel = materializedJson(base, trace, 8);
        const std::string vector_streamed = streamedJson(base, trace);
        const std::string gen_streamed = generatorStreamedJson(base, seed);

        EXPECT_EQ(serial, parallel) << "seed " << seed;
        EXPECT_EQ(serial, vector_streamed) << "seed " << seed;
        EXPECT_EQ(serial, gen_streamed) << "seed " << seed;
    }
}

TEST(StreamingEquivalenceTest, MultiTurnSessionsByteIdenticalAcrossPolicies)
{
    // The full matrix the prefix-cache PR adds: materialized vs
    // streamed (via the MultiTurnTraceGenerator stream twin) x jobs
    // 1 vs 8 x policy default vs prefix. Every cell of a policy must
    // produce the same bytes; the two policies must not.
    workload::MultiTurnConfig mt = workload::defaultMultiTurnConfig();
    mt.thinkTimeMeanS = 1.0;
    mt.maxContextTokens = 4096;

    for (const std::uint64_t seed : kSeeds) {
        std::string default_json;
        std::string prefix_json;
        for (const auto policy : {sched::PolicyKind::kDefault,
                                  sched::PolicyKind::kPrefixCache}) {
            RunOptions base = baseOptions();
            base.sim.policy.kind = policy;
            base.sim.policy.maxContextTokens = mt.maxContextTokens;

            workload::MultiTurnTraceGenerator gen(mt, seed);
            const workload::Trace trace =
                gen.generate(2.0, sim::secondsToUs(20.0));
            ASSERT_FALSE(trace.empty()) << "seed " << seed;

            const std::string serial = materializedJson(base, trace, 1);
            const std::string parallel = materializedJson(base, trace, 8);
            const std::string vector_streamed = streamedJson(base, trace);

            workload::MultiTurnTraceGenerator twin(mt, seed);
            auto stream = twin.stream(2.0, sim::secondsToUs(20.0));
            const std::string gen_streamed =
                reportToJson(runStream(base, *stream));

            EXPECT_EQ(serial, parallel) << "seed " << seed;
            EXPECT_EQ(serial, vector_streamed) << "seed " << seed;
            EXPECT_EQ(serial, gen_streamed) << "seed " << seed;

            const ReportDigest digest = reportDigestFromJson(serial);
            if (policy == sched::PolicyKind::kDefault) {
                default_json = serial;
                EXPECT_FALSE(digest.hasPrefixCache) << "seed " << seed;
            } else {
                prefix_json = serial;
                EXPECT_TRUE(digest.hasPrefixCache) << "seed " << seed;
                EXPECT_GT(digest.prefixHits, 0u) << "seed " << seed;
                EXPECT_GT(digest.prefixHitTokens, 0) << "seed " << seed;
            }
        }
        // Same workload, different policy: the reports must diverge
        // (the prefix policy actually changed the simulation).
        EXPECT_NE(default_json, prefix_json) << "seed " << seed;
    }
}

TEST(StreamingEquivalenceTest, SketchModeIsAlsoPathIndependent)
{
    // The scale bench's bounded-memory configuration (sketched
    // latencies + recycling) must be equivalent across paths too.
    for (const std::uint64_t seed : kSeeds) {
        RunOptions base = baseOptions();
        base.sim.sketchLatencies = true;

        const workload::Trace trace = makeTrace(seed);
        const std::string serial = materializedJson(base, trace, 1);
        const std::string vector_streamed = streamedJson(base, trace);
        const std::string gen_streamed = generatorStreamedJson(base, seed);

        EXPECT_EQ(serial, vector_streamed) << "seed " << seed;
        EXPECT_EQ(serial, gen_streamed) << "seed " << seed;
    }
}

}  // namespace
}  // namespace splitwise::core
