#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/designs.h"
#include "core/slo.h"
#include "model/llm_config.h"
#include "workload/trace_gen.h"
#include "workload/workloads.h"

namespace splitwise {
namespace {

using core::Cluster;
using core::RunReport;

/**
 * System-level anchors from the paper's evaluation (Fig. 16/17),
 * run on the full-scale iso-power clusters. These are the headline
 * orderings EXPERIMENTS.md records; regressions here mean the
 * reproduction stopped telling the paper's story.
 */
class PaperAnchors : public ::testing::Test {
  protected:
    static RunReport
    run(const core::ClusterDesign& design, double rps, std::uint64_t seed = 42)
    {
        workload::TraceGenerator gen(workload::conversation(), seed);
        const auto trace = gen.generate(rps, sim::secondsToUs(30));
        Cluster cluster(model::llama2_70b(), design);
        return cluster.run(trace);
    }
};

TEST_F(PaperAnchors, BaselinesBlowTbtTailsAtLoad)
{
    // Fig. 16 conversation: mixed batching with large prompts gives
    // baselines worst-gap tails an order of magnitude above
    // Splitwise's phase-separated decodes.
    const RunReport baseline = run(core::baselineH100(40), 100.0);
    const RunReport split = run(core::splitwiseHH(17, 23), 100.0);
    EXPECT_GT(baseline.requests.maxTbtMs().p90(),
              5.0 * split.requests.maxTbtMs().p90());
}

TEST_F(PaperAnchors, SplitwiseTtftBeatsBaselineAtLoad)
{
    // Dedicated prompt machines run full-efficiency prompt batches
    // with no decode interference.
    const RunReport baseline = run(core::baselineH100(40), 100.0);
    const RunReport split = run(core::splitwiseHH(17, 23), 100.0);
    EXPECT_LT(split.requests.ttftMs().p50(),
              baseline.requests.ttftMs().p50());
}

TEST_F(PaperAnchors, HHcapMatchesHHLatencyAtLowerPower)
{
    // Fig. 19a: power-capped token machines cost nothing in latency.
    const RunReport hh = run(core::splitwiseHH(17, 23), 70.0);
    const RunReport cap = run(core::splitwiseHHcap(17, 23), 70.0);
    EXPECT_LT(cap.footprint.powerWatts, 0.85 * hh.footprint.powerWatts);
    EXPECT_NEAR(cap.requests.e2eMs().p50() / hh.requests.e2eMs().p50(),
                1.0, 0.05);
}

TEST_F(PaperAnchors, AaTtftHigherButServiceable)
{
    // Fig. 16: Splitwise-AA has consistently higher TTFT than HH
    // (A100 prompt machines) yet meets the looser TTFT SLO.
    const RunReport aa = run(core::splitwiseAA(35, 35), 70.0);
    const RunReport hh = run(core::splitwiseHH(17, 23), 70.0);
    EXPECT_GT(aa.requests.ttftMs().p50(),
              1.4 * hh.requests.ttftMs().p50());
    const core::SloChecker checker(model::llama2_70b());
    EXPECT_TRUE(checker.evaluate(aa.requests, core::SloSet{}).pass);
}

TEST_F(PaperAnchors, HaBridgesTtftAndCost)
{
    // Fig. 16: Splitwise-HA keeps H100-class TTFT with an A100-cost
    // token pool.
    const RunReport ha = run(core::splitwiseHA(19, 36), 70.0);
    const RunReport hh = run(core::splitwiseHH(17, 23), 70.0);
    EXPECT_LT(ha.requests.ttftMs().p50(),
              1.25 * hh.requests.ttftMs().p50());
    EXPECT_LT(ha.footprint.costPerHour / ha.footprint.machines,
              hh.footprint.costPerHour / hh.footprint.machines);
}

TEST_F(PaperAnchors, SplitwiseTokenMachinesBatchBetterAtLowLoad)
{
    // Fig. 17 at 70 RPS: baseline machines sit at tiny active-token
    // counts; Splitwise token machines run real batches.
    const RunReport baseline = run(core::baselineH100(40), 70.0);
    const RunReport split = run(core::splitwiseHH(17, 23), 70.0);
    const double base_small = baseline.promptPool.activeTokens.cdfAt(10);
    const double split_small = split.tokenPool.activeTokens.cdfAt(10);
    EXPECT_LT(split_small, base_small);
}

TEST_F(PaperAnchors, MixedPoolEngagesOnlyUnderPressure)
{
    const RunReport low = run(core::splitwiseHH(17, 23), 40.0);
    const RunReport high = run(core::splitwiseHH(17, 23), 130.0);
    EXPECT_EQ(low.mixedRoutes, 0u);
    EXPECT_GT(high.mixedRoutes, 0u);
}

TEST_F(PaperAnchors, TransferVolumeMatchesPromptKv)
{
    const RunReport split = run(core::splitwiseHH(17, 23), 40.0);
    // Every transferred request ships promptTokens x kvBytesPerToken.
    EXPECT_GT(split.transfers.transfers, 0u);
    const double per_transfer =
        static_cast<double>(split.transfers.bytesMoved) /
        static_cast<double>(split.transfers.transfers);
    const double mean_prompt_bytes =
        1596.0 * static_cast<double>(model::llama2_70b().kvBytesPerToken());
    EXPECT_NEAR(per_transfer / mean_prompt_bytes, 1.0, 0.25);
}

}  // namespace
}  // namespace splitwise
