#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/designs.h"
#include "core/fault_plan.h"
#include "core/report_io.h"
#include "hw/machine_spec.h"
#include "model/llm_config.h"
#include "model/perf_model.h"
#include "workload/trace_gen.h"
#include "workload/workloads.h"

namespace splitwise {
namespace {

using core::Cluster;
using core::FaultInjector;
using core::FaultKind;
using core::FaultPlan;
using core::FaultStormConfig;
using core::RunReport;

workload::Trace
convTrace(double rps, double seconds, std::uint64_t seed = 77)
{
    workload::TraceGenerator gen(workload::conversation(), seed);
    return gen.generate(rps, sim::secondsToUs(seconds));
}

/** Uncontended prompt time for @p tokens on a DGX-H100. */
sim::TimeUs
h100PromptTime(std::int64_t tokens)
{
    const model::AnalyticalPerfModel perf(model::llama2_70b(),
                                          hw::dgxH100());
    return perf.promptTime(tokens, 1);
}

/**
 * Tentpole acceptance: a machine that crashes with finite downtime
 * rejoins its pool and serves requests again afterwards.
 */
TEST(ChaosTest, CrashedMachineRejoinsAndServesAgain)
{
    const auto trace = convTrace(10.0, 30);
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(2, 2));
    // Token machine 3: down at t=5s, back at t=15s.
    cluster.scheduleFailure(3, sim::secondsToUs(5),
                            sim::secondsToUs(10));

    std::int64_t load_while_down = -1;
    bool failed_while_down = false;
    std::int64_t generated_at_recovery = -1;
    std::int64_t load_after_recovery = -1;
    bool failed_after_recovery = true;
    auto& sim = cluster.simulator();
    const auto* machine = cluster.machines()[3].get();
    sim.post(sim::secondsToUs(14), [&] {
        failed_while_down = machine->failed();
        load_while_down = machine->tokenLoadTokens();
    });
    sim.post(sim::secondsToUs(15) + 1, [&] {
        generated_at_recovery = machine->stats().tokensGenerated;
    });
    sim.post(sim::secondsToUs(20), [&] {
        failed_after_recovery = machine->failed();
        load_after_recovery = machine->tokenLoadTokens();
    });

    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed(), trace.size());
    EXPECT_GT(report.restarts, 0u);
    EXPECT_EQ(report.rejoins, 1u);

    // Down means down: no KV, failed flag set.
    EXPECT_TRUE(failed_while_down);
    EXPECT_EQ(load_while_down, 0);

    // Back means back: the rejoined machine holds decode work again
    // and keeps generating tokens after its recovery instant.
    EXPECT_FALSE(failed_after_recovery);
    EXPECT_GT(load_after_recovery, 0);
    EXPECT_GE(generated_at_recovery, 0);
    EXPECT_GT(machine->stats().tokensGenerated, generated_at_recovery);
    EXPECT_FALSE(cluster.machines()[3]->failed());
}

TEST(ChaosTest, RejoinedMachineKeepsPoolIdentity)
{
    const auto trace = convTrace(8.0, 25);
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(2, 2));
    cluster.scheduleFailure(0, sim::secondsToUs(4), sim::secondsToUs(6));

    core::PoolType pool_after = core::PoolType::kMixed;
    cluster.simulator().post(sim::secondsToUs(11), [&] {
        pool_after = cluster.scheduler().poolOf(0);
    });
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed(), trace.size());
    EXPECT_EQ(report.rejoins, 1u);
    EXPECT_EQ(pool_after, core::PoolType::kPrompt);
}

/**
 * Tentpole acceptance: a transfer hit by a transient link fault
 * completes via retry with backoff - no from-scratch restart.
 */
TEST(ChaosTest, TransientLinkFaultRecoversViaRetry)
{
    workload::Trace trace;
    trace.push_back({0, 0, /*prompt=*/1500, /*output=*/20});

    const sim::TimeUs prompt_us = h100PromptTime(1500);
    core::SimConfig config;
    config.kvRetry.maxRetries = 5;
    config.kvRetry.backoffBaseUs = 2 * prompt_us;
    config.kvRetry.backoffMultiplier = 2.0;

    Cluster cluster(model::llama2_70b(), core::splitwiseHH(1, 1),
                    config);
    // The fault window covers the first transfer attempt (which
    // starts right after the prompt completes) but ends before the
    // first backed-off retry lands.
    cluster.scheduleLinkFault(1, 0, 2 * prompt_us);

    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed(), 1u);
    EXPECT_GT(report.transfers.transferFaults, 0u);
    EXPECT_GT(report.transfers.transferRetries, 0u);
    EXPECT_EQ(report.transfers.transferAborts, 0u);
    EXPECT_EQ(report.restarts, 0u);
    // The decode ran remotely: the retry delivered the cache.
    EXPECT_GT(cluster.machines()[1]->stats().tokensGenerated, 0);
}

/**
 * Tentpole acceptance: an exhausted retry budget falls back to the
 * paper's from-scratch restart.
 */
TEST(ChaosTest, ExhaustedRetryBudgetFallsBackToRestart)
{
    workload::Trace trace;
    trace.push_back({0, 0, /*prompt=*/1500, /*output=*/20});

    const sim::TimeUs prompt_us = h100PromptTime(1500);
    core::SimConfig config;
    config.kvRetry.maxRetries = 0;  // fail fast
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(1, 1),
                    config);
    cluster.scheduleLinkFault(1, 0, 2 * prompt_us);

    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed(), 1u);
    EXPECT_GT(report.transfers.transferAborts, 0u);
    EXPECT_EQ(report.transfers.transferRetries, 0u);
    EXPECT_GT(report.restarts, 0u);
}

TEST(ChaosTest, DegradedLinkStretchesTransferButCompletes)
{
    workload::Trace trace;
    trace.push_back({0, 0, /*prompt=*/256, /*output=*/10});

    Cluster slow(model::llama2_70b(), core::splitwiseHH(1, 1));
    // 2% of nominal bandwidth across the whole run: the serialized
    // transfer takes ~50x longer, visible on the second token.
    slow.scheduleLinkDegrade(1, 0, sim::secondsToUs(60), 0.02);
    const RunReport degraded = slow.run(trace);

    Cluster fast(model::llama2_70b(), core::splitwiseHH(1, 1));
    const RunReport clean = fast.run(trace);

    EXPECT_EQ(degraded.requests.completed(), 1u);
    EXPECT_GT(degraded.transfers.degradedTransfers, 0u);
    EXPECT_EQ(clean.transfers.degradedTransfers, 0u);
    EXPECT_GT(degraded.requests.results()[0].secondTokenMs,
              clean.requests.results()[0].secondTokenMs);
}

TEST(ChaosTest, StragglerIsRoutedAround)
{
    const auto trace = convTrace(10.0, 20);
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(2, 2));
    // Prompt machine 0 runs 4x slower for most of the run; JSQ sees
    // its queue build and shifts prompt work to machine 1.
    cluster.scheduleSlowdown(0, sim::secondsToUs(1),
                             sim::secondsToUs(14), 4.0);
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed(), trace.size());
    EXPECT_EQ(report.restarts, 0u);
    EXPECT_GT(cluster.machines()[1]->stats().promptTokensProcessed,
              cluster.machines()[0]->stats().promptTokensProcessed);
}

/** Overload protection: shed, count, and degrade gracefully. */
TEST(ChaosTest, OverloadShedsInsteadOfQueueingUnboundedly)
{
    const auto trace = convTrace(40.0, 10);
    core::SimConfig config;
    config.cls.shedQueuedTokensBound = 20000;
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(1, 1),
                    config);
    const RunReport report = cluster.run(trace);
    EXPECT_GT(report.rejected, 0u);
    EXPECT_GT(report.requests.completed(), 0u);
    // Nothing silently dropped: every request either completed or
    // was explicitly rejected.
    EXPECT_EQ(report.requests.completed() + report.rejected, trace.size());
}

TEST(ChaosTest, SheddingDisabledByDefault)
{
    const auto trace = convTrace(15.0, 10);
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(1, 1));
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.rejected, 0u);
    EXPECT_EQ(report.requests.completed(), trace.size());
}

TEST(ChaosTest, FaultStormAccountsForEveryRequest)
{
    const auto trace = convTrace(8.0, 25);
    FaultStormConfig storm;
    storm.numMachines = 6;
    storm.horizonUs = sim::secondsToUs(20.0);
    storm.crashes = 2;
    const FaultPlan plan = makeFaultStorm(storm, 123);

    core::SimConfig config;
    config.cls.shedQueuedTokensBound = 200000;
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(3, 3), config);
    FaultInjector injector(cluster);
    injector.apply(plan);

    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed() + report.rejected, trace.size());
    EXPECT_EQ(report.rejoins, plan.count(FaultKind::kCrash));
}

/**
 * Satellite acceptance: identical FaultPlan + seed => bit-identical
 * RunReport across two runs.
 */
TEST(ChaosTest, DeterministicUnderFaultStorm)
{
    const auto trace = convTrace(8.0, 20);
    FaultStormConfig storm;
    storm.numMachines = 6;
    storm.horizonUs = sim::secondsToUs(15.0);
    const FaultPlan plan = makeFaultStorm(storm, 9);

    auto run_once = [&] {
        core::SimConfig config;
        config.cls.shedQueuedTokensBound = 100000;
        config.kvRetry.maxRetries = 4;
        Cluster cluster(model::llama2_70b(), core::splitwiseHH(3, 3),
                        config);
        FaultInjector injector(cluster);
        injector.apply(plan);
        return cluster.run(trace);
    };
    const RunReport a = run_once();
    const RunReport b = run_once();

    EXPECT_EQ(a.requests.completed(), b.requests.completed());
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.rejoins, b.rejoins);
    EXPECT_EQ(a.restarts, b.restarts);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.simulatedUs, b.simulatedUs);
    EXPECT_EQ(a.transfers.transfers, b.transfers.transfers);
    EXPECT_EQ(a.transfers.transferFaults, b.transfers.transferFaults);
    EXPECT_EQ(a.transfers.transferRetries, b.transfers.transferRetries);
    EXPECT_EQ(a.transfers.transferAborts, b.transfers.transferAborts);
    EXPECT_EQ(a.transfers.degradedTransfers, b.transfers.degradedTransfers);
    EXPECT_EQ(a.transfers.bytesMoved, b.transfers.bytesMoved);
    // Bit-identical latencies, not merely close.
    EXPECT_EQ(a.requests.e2eMs().mean(), b.requests.e2eMs().mean());
    EXPECT_EQ(a.requests.e2eMs().p99(), b.requests.e2eMs().p99());
    EXPECT_EQ(a.requests.ttftMs().mean(), b.requests.ttftMs().mean());
    EXPECT_EQ(a.requests.tbtMs().mean(), b.requests.tbtMs().mean());
    // And identical serialized reports.
    EXPECT_EQ(core::reportToJson(a), core::reportToJson(b));
}

TEST(ChaosTest, ReportJsonCarriesFaultCounters)
{
    const auto trace = convTrace(5.0, 10);
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(2, 2));
    cluster.scheduleFailure(3, sim::secondsToUs(3), sim::secondsToUs(4));
    const RunReport report = cluster.run(trace);
    const std::string json = core::reportToJson(report);
    for (const char* key :
         {"\"retries\"", "\"faults\"", "\"aborts\"", "\"degraded\"",
          "\"rejected\"", "\"rejoins\"", "\"timeouts\""}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
}

TEST(ChaosTest, PermanentCrashStillSupported)
{
    // The legacy single-shot failure path (downtime 0 via the fault
    // plan) must behave exactly like scheduleFailure(id, at).
    const auto trace = convTrace(6.0, 15);
    FaultPlan plan;
    plan.add({FaultKind::kCrash, 2, sim::secondsToUs(5), 0, 1.0});
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(2, 2));
    FaultInjector injector(cluster);
    injector.apply(plan);
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed(), trace.size());
    EXPECT_EQ(report.rejoins, 0u);
    EXPECT_TRUE(cluster.machines()[2]->failed());
}

TEST(ChaosTest, FaultSchedulingAfterRunRejected)
{
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(1, 1));
    cluster.run({});
    EXPECT_THROW(cluster.scheduleSlowdown(0, 0, 1000, 2.0),
                 std::runtime_error);
    EXPECT_THROW(cluster.scheduleLinkFault(0, 0, 1000),
                 std::runtime_error);
    EXPECT_THROW(cluster.scheduleFailure(0, 0, 1000), std::runtime_error);
}

}  // namespace
}  // namespace splitwise
