#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/designs.h"
#include "model/llm_config.h"
#include "workload/trace_gen.h"
#include "workload/workloads.h"

namespace splitwise {
namespace {

using core::Cluster;
using core::RunReport;

workload::Trace
convTrace(double rps, double seconds, std::uint64_t seed = 77)
{
    workload::TraceGenerator gen(workload::conversation(), seed);
    return gen.generate(rps, sim::secondsToUs(seconds));
}

/**
 * Machine-failure recovery (paper SIV-E: "Splitwise simply restarts
 * requests from scratch").
 */
TEST(FailureTest, PromptMachineFailureRestartsItsRequests)
{
    // Heavy enough load that both prompt machines hold work when
    // the failure strikes.
    const auto trace = convTrace(30.0, 20);
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(2, 2));
    cluster.scheduleFailure(/*machine_id=*/0, sim::secondsToUs(5));
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed(), trace.size());
    EXPECT_GT(report.restarts, 0u);
    EXPECT_TRUE(cluster.machines()[0]->failed());
}

TEST(FailureTest, TokenMachineFailureRestartsResidents)
{
    const auto trace = convTrace(6.0, 20);
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(2, 2));
    cluster.scheduleFailure(/*machine_id=*/2, sim::secondsToUs(5));
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed(), trace.size());
    EXPECT_GT(report.restarts, 0u);
    // Surviving machines carry the rest of the run: the dead token
    // machine generated nothing after 5 s.
    EXPECT_EQ(cluster.machines()[2]->tokenLoadTokens(), 0);
}

TEST(FailureTest, BaselineMachineFailureRecovers)
{
    const auto trace = convTrace(6.0, 20);
    Cluster cluster(model::llama2_70b(), core::baselineH100(3));
    cluster.scheduleFailure(1, sim::secondsToUs(4));
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed(), trace.size());
    EXPECT_GT(report.restarts, 0u);
}

TEST(FailureTest, RestartPenaltyShowsInLatency)
{
    const auto trace = convTrace(5.0, 20);
    Cluster healthy(model::llama2_70b(), core::splitwiseHH(2, 2));
    Cluster faulty(model::llama2_70b(), core::splitwiseHH(2, 2));
    faulty.scheduleFailure(2, sim::secondsToUs(6));
    const RunReport ok = healthy.run(trace);
    const RunReport hit = faulty.run(trace);
    // Restarted requests pay their lost work in E2E tail latency.
    EXPECT_GT(hit.requests.e2eMs().p99(), ok.requests.e2eMs().p99());
    EXPECT_GT(hit.restarts, 0u);
}

TEST(FailureTest, MultipleFailuresSurvivable)
{
    const auto trace = convTrace(4.0, 20);
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(3, 3));
    cluster.scheduleFailure(0, sim::secondsToUs(3));
    cluster.scheduleFailure(4, sim::secondsToUs(8));
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed(), trace.size());
}

TEST(FailureTest, FailureBeforeAnyArrivalsIsHarmless)
{
    const auto trace = convTrace(4.0, 10);
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(2, 2));
    cluster.scheduleFailure(1, 0);
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed(), trace.size());
    EXPECT_EQ(report.restarts, 0u);
}

TEST(FailureTest, RequestsDestinedForDeadTokenMachineDecodeLocally)
{
    // One prompt machine, one token machine; the token machine dies
    // while prompts queue. Requests must fall back to local decode.
    workload::Trace trace;
    for (int i = 0; i < 12; ++i) {
        trace.push_back({static_cast<std::uint64_t>(i),
                         sim::msToUs(i * 30.0), 2000, 30});
    }
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(1, 1));
    cluster.scheduleFailure(1, sim::msToUs(150.0));
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed(), 12u);
    // The surviving prompt machine generated (nearly) all tokens.
    EXPECT_GT(cluster.machines()[0]->stats().tokensGenerated,
              11 * 30);
}

TEST(FailureTest, SchedulingFailureAfterRunIsRejected)
{
    Cluster cluster(model::llama2_70b(), core::baselineH100(2));
    cluster.run({});
    EXPECT_THROW(cluster.scheduleFailure(0, sim::secondsToUs(1)),
                 std::runtime_error);
}

TEST(FailureTest, BadMachineIdRejected)
{
    Cluster cluster(model::llama2_70b(), core::baselineH100(2));
    EXPECT_THROW(cluster.scheduleFailure(7, 0), std::runtime_error);
    EXPECT_THROW(cluster.scheduleFailure(-1, 0), std::runtime_error);
}

TEST(FailureTest, CheckpointingSkipsPromptRecompute)
{
    // SIV-E alternative: with KV checkpointing, requests past their
    // prompt restore the cache instead of restarting from scratch.
    const auto trace = convTrace(10.0, 20);
    core::SimConfig checkpointed;
    checkpointed.kvCheckpointing = true;
    Cluster plain(model::llama2_70b(), core::splitwiseHH(2, 2));
    Cluster ckpt(model::llama2_70b(), core::splitwiseHH(2, 2),
                 checkpointed);
    plain.scheduleFailure(2, sim::secondsToUs(6));
    ckpt.scheduleFailure(2, sim::secondsToUs(6));
    const RunReport lost = plain.run(trace);
    const RunReport restored = ckpt.run(trace);
    EXPECT_EQ(restored.requests.completed(), trace.size());
    EXPECT_GT(restored.checkpointRestores, 0u);
    EXPECT_EQ(lost.checkpointRestores, 0u);
    // Recovered decodes keep their history: fewer full restarts and
    // a gentler tail than recomputing everything.
    EXPECT_LT(restored.restarts, lost.restarts);
    EXPECT_LE(restored.requests.e2eMs().p99(),
              lost.requests.e2eMs().p99());
}

TEST(FailureTest, CheckpointRestoreKeepsTokenConservation)
{
    const auto trace = convTrace(10.0, 15);
    core::SimConfig checkpointed;
    checkpointed.kvCheckpointing = true;
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(2, 2),
                    checkpointed);
    cluster.scheduleFailure(3, sim::secondsToUs(5));
    const RunReport report = cluster.run(trace);
    std::int64_t expected = 0;
    for (const auto& r : trace)
        expected += r.outputTokens;
    EXPECT_EQ(report.requests.totalOutputTokens(), expected);
}

TEST(FailureTest, DeterministicUnderFailures)
{
    const auto trace = convTrace(5.0, 15);
    auto run_once = [&] {
        Cluster cluster(model::llama2_70b(), core::splitwiseHH(2, 2));
        cluster.scheduleFailure(3, sim::secondsToUs(5));
        return cluster.run(trace);
    };
    const RunReport a = run_once();
    const RunReport b = run_once();
    EXPECT_DOUBLE_EQ(a.requests.e2eMs().mean(), b.requests.e2eMs().mean());
    EXPECT_EQ(a.restarts, b.restarts);
}

}  // namespace
}  // namespace splitwise
