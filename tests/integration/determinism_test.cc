/**
 * @file
 * The golden-replay determinism gate: every multi-run driver must
 * produce byte-identical results whether it runs serially
 * (`--jobs 1`) or fanned out across a RunPool. CI runs these tests
 * under the `determinism` ctest label so sweep parallelism can never
 * silently break reproducibility.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/report_io.h"
#include "hw/machine_spec.h"
#include "provision/provisioner.h"
#include "testing/fuzzer.h"

namespace splitwise::provision {
namespace {

/** Small but non-trivial searches so the suite stays fast. */
ProvisionerOptions
baseOptions(int jobs)
{
    ProvisionerOptions o;
    o.traceDuration = sim::secondsToUs(10);
    o.rpsTolerance = 8.0;
    o.maxRpsCeiling = 64.0;
    o.promptFractions = {0.4, 0.6, 0.8};
    o.jobs = jobs;
    o.captureReports = true;
    return o;
}

/** The pinned seed set the golden replay runs over. */
const std::vector<std::uint64_t> kSeeds = {7, 42, 2024};

TEST(DeterminismTest, SweepReportsByteIdenticalAcrossJobCounts)
{
    const std::vector<int> prompt_counts = {1, 2, 4};
    const std::vector<int> token_counts = {1, 3};
    for (const std::uint64_t seed : kSeeds) {
        ProvisionerOptions serial_opts = baseOptions(1);
        serial_opts.seed = seed;
        ProvisionerOptions parallel_opts = baseOptions(8);
        parallel_opts.seed = seed;
        const Provisioner serial(model::llama2_70b(),
                                 workload::conversation(), serial_opts);
        const Provisioner parallel(model::llama2_70b(),
                                   workload::conversation(),
                                   parallel_opts);

        const auto a = serial.sweep(DesignKind::kSplitwiseHH,
                                    prompt_counts, token_counts, 6.0);
        const auto b = parallel.sweep(DesignKind::kSplitwiseHH,
                                      prompt_counts, token_counts, 6.0);
        ASSERT_EQ(a.size(), b.size()) << "seed " << seed;
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].numPrompt, b[i].numPrompt);
            EXPECT_EQ(a[i].numToken, b[i].numToken);
            EXPECT_EQ(a[i].pass, b[i].pass);
            EXPECT_EQ(a[i].error, b[i].error);
            EXPECT_DOUBLE_EQ(a[i].costPerHour, b[i].costPerHour);
            EXPECT_DOUBLE_EQ(a[i].e2eP50Slowdown, b[i].e2eP50Slowdown);
            // The byte-identity proof: the full serialized report.
            EXPECT_EQ(a[i].reportJson, b[i].reportJson)
                << "seed " << seed << " cell " << i;
            EXPECT_FALSE(a[i].reportJson.empty());
        }
    }
}

/**
 * The seed x jobs matrix over fuzzed DST scenarios: for each base
 * seed, a small campaign (which composes fault storms, KV-retry
 * configs, and admission control by construction) must produce
 * byte-identical outcomes at 1, 4, and 8 jobs. This extends the gate
 * from clean sweeps to runs exercising crash/rejoin recovery paths.
 */
TEST(DeterminismTest, FuzzedScenariosByteIdenticalAcrossSeedJobsMatrix)
{
    bool saw_fault_storm = false;
    for (const std::uint64_t seed : kSeeds) {
        splitwise::testing::FuzzerConfig base;
        base.scenarios = 4;
        base.baseSeed = seed * 1000;
        base.jobs = 1;
        const auto baseline = splitwise::testing::fuzz(base);
        for (const auto& r : baseline) {
            EXPECT_FALSE(r.outcome.violated)
                << "seed " << r.seed << ": " << r.outcome.invariant
                << " " << r.outcome.detail;
            saw_fault_storm |= !r.scenario.faults.empty();
        }
        for (const int jobs : {4, 8}) {
            splitwise::testing::FuzzerConfig cfg = base;
            cfg.jobs = jobs;
            const auto results = splitwise::testing::fuzz(cfg);
            ASSERT_EQ(results.size(), baseline.size());
            for (std::size_t i = 0; i < results.size(); ++i) {
                EXPECT_EQ(results[i].outcome.outcomeJson,
                          baseline[i].outcome.outcomeJson)
                    << "seed " << results[i].seed << " jobs " << jobs;
            }
        }
    }
    EXPECT_TRUE(saw_fault_storm);
}

TEST(DeterminismTest, EvaluateIsAPureFunctionOfSeedAndLoad)
{
    const Provisioner prov(model::llama2_70b(), workload::coding(),
                           baseOptions(1));
    const auto design = makeDesign(DesignKind::kSplitwiseHH, 2, 2);
    const auto once = prov.evaluate(design, 5.0);
    const auto twice = prov.evaluate(design, 5.0);
    EXPECT_EQ(core::reportToJson(once.report, &once.slo),
              core::reportToJson(twice.report, &twice.slo));
}

TEST(DeterminismTest, IsoPowerSearchMatchesSerialAcrossJobCounts)
{
    const double budget = 8 * hw::dgxH100().provisionedPowerWatts();
    const Provisioner serial(model::llama2_70b(),
                             workload::conversation(), baseOptions(1));
    const Provisioner parallel(model::llama2_70b(),
                               workload::conversation(), baseOptions(8));
    for (DesignKind kind :
         {DesignKind::kBaselineH100, DesignKind::kSplitwiseHH}) {
        const Optimum a = serial.isoPowerThroughputOptimized(kind, budget);
        const Optimum b =
            parallel.isoPowerThroughputOptimized(kind, budget);
        EXPECT_EQ(a.feasible, b.feasible) << designKindName(kind);
        EXPECT_DOUBLE_EQ(a.maxRps, b.maxRps) << designKindName(kind);
        EXPECT_EQ(a.design.numPrompt, b.design.numPrompt);
        EXPECT_EQ(a.design.numToken, b.design.numToken);
        EXPECT_DOUBLE_EQ(a.footprint.powerWatts, b.footprint.powerWatts);
    }
}

TEST(DeterminismTest, IsoThroughputSearchMatchesSerialAcrossJobCounts)
{
    const Provisioner serial(model::llama2_70b(),
                             workload::conversation(), baseOptions(1));
    const Provisioner parallel(model::llama2_70b(),
                               workload::conversation(), baseOptions(8));
    const Optimum a =
        serial.isoThroughputCostOptimized(DesignKind::kSplitwiseHH, 6.0);
    const Optimum b =
        parallel.isoThroughputCostOptimized(DesignKind::kSplitwiseHH, 6.0);
    ASSERT_EQ(a.feasible, b.feasible);
    EXPECT_EQ(a.design.numPrompt, b.design.numPrompt);
    EXPECT_EQ(a.design.numToken, b.design.numToken);
    EXPECT_DOUBLE_EQ(a.footprint.costPerHour, b.footprint.costPerHour);
}

}  // namespace
}  // namespace splitwise::provision
