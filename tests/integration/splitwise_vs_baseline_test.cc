#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/designs.h"
#include "model/llm_config.h"
#include "workload/trace_gen.h"
#include "workload/workloads.h"

namespace splitwise {
namespace {

using core::Cluster;
using core::RunReport;

workload::Trace
trace(const workload::Workload& w, double rps, double seconds,
      std::uint64_t seed = 3)
{
    workload::TraceGenerator gen(w, seed);
    return gen.generate(rps, sim::secondsToUs(seconds));
}

/**
 * System-level reproduction of the paper's headline comparisons
 * between Splitwise and the mixed-batching baselines.
 */
class SplitwiseVsBaseline : public ::testing::Test {
  protected:
    RunReport
    run(const core::ClusterDesign& design, const workload::Trace& t)
    {
        Cluster cluster(model::llama2_70b(), design);
        return cluster.run(t);
    }
};

TEST_F(SplitwiseVsBaseline, IsoCountTailTbtImproves)
{
    // Fig. 16: under load, baseline mixed batching drags prompt
    // phases into decode iterations, inflating the worst-case TBT.
    // Splitwise isolates the phases.
    const auto t = trace(workload::conversation(), 14.0, 40);
    const RunReport base = run(core::baselineH100(6), t);
    const RunReport split = run(core::splitwiseHH(3, 3), t);
    EXPECT_LT(split.requests.maxTbtMs().p90(),
              base.requests.maxTbtMs().p90());
}

TEST_F(SplitwiseVsBaseline, TokenMachinesBatchBetter)
{
    // Fig. 17: Splitwise token machines run larger decode batches
    // than baseline machines, which idle at tiny batch sizes.
    const auto t = trace(workload::conversation(), 14.0, 40);
    const RunReport base = run(core::baselineH100(6), t);
    const RunReport split = run(core::splitwiseHH(3, 3), t);
    const double base_mean = base.promptPool.activeTokens.mean();
    const double split_token_mean = split.tokenPool.activeTokens.mean();
    // Baseline machines mix giant prompt chunks in, so compare the
    // time spent at small active-token counts instead of means:
    // token-pool machines should rarely sit at <= 2 active tokens.
    EXPECT_LT(split.tokenPool.activeTokens.cdfAt(2),
              base.promptPool.activeTokens.cdfAt(2) + 0.2);
    (void)base_mean;
    (void)split_token_mean;
}

TEST_F(SplitwiseVsBaseline, CodingSkewsCapacityTowardPromptPool)
{
    // The paper provisions far more prompt machines for coding
    // (35P/5T) than for conversation (25P/15T): the prompt:token
    // work ratio is much higher for coding.
    const auto t_code = trace(workload::coding(), 6.0, 30);
    const auto t_conv = trace(workload::conversation(), 6.0, 30);
    const RunReport code = run(core::splitwiseHH(2, 2), t_code);
    const RunReport conv = run(core::splitwiseHH(2, 2), t_conv);
    const double code_ratio =
        static_cast<double>(code.promptPool.busyUs) /
        static_cast<double>(code.tokenPool.busyUs);
    const double conv_ratio =
        static_cast<double>(conv.promptPool.busyUs) /
        static_cast<double>(conv.tokenPool.busyUs);
    EXPECT_GT(code_ratio, 1.5 * conv_ratio);
}

TEST_F(SplitwiseVsBaseline, ConversationLoadsTokenPool)
{
    // Conversation: long generations keep token machines busier per
    // machine than coding does.
    const auto t_conv = trace(workload::conversation(), 6.0, 30);
    const auto t_code = trace(workload::coding(), 6.0, 30);
    const RunReport conv = run(core::splitwiseHH(2, 2), t_conv);
    const RunReport code = run(core::splitwiseHH(2, 2), t_code);
    EXPECT_GT(conv.tokenPool.busyUs, code.tokenPool.busyUs);
}

TEST_F(SplitwiseVsBaseline, TransferOverheadBarelyVisibleEndToEnd)
{
    // Fig. 15: the KV transfer's visible E2E impact is < 3%, and
    // with the optimized transfer well under 1% on the coding trace.
    const auto t = trace(workload::coding(), 1.0, 30);
    // Single-machine reference: same hardware, no transfer at all.
    const RunReport local = run(core::baselineH100(2), t);
    const RunReport split = run(core::splitwiseHH(1, 1), t);
    const double overhead = split.requests.e2eMs().mean() /
                                local.requests.e2eMs().mean() -
                            1.0;
    EXPECT_LT(overhead, 0.03);
}

TEST_F(SplitwiseVsBaseline, SecondTokenPenaltyIsModest)
{
    // SVI-A: Splitwise adds ~16.5% to the second token.
    const auto t = trace(workload::coding(), 1.0, 30);
    const RunReport local = run(core::baselineH100(2), t);
    const RunReport split = run(core::splitwiseHH(1, 1), t);
    metrics::Summary local_second;
    metrics::Summary split_second;
    for (const auto& r : local.requests.results()) {
        if (r.outputTokens > 1)
            local_second.add(r.secondTokenMs);
    }
    for (const auto& r : split.requests.results()) {
        if (r.outputTokens > 1)
            split_second.add(r.secondTokenMs);
    }
    const double penalty = split_second.p50() / local_second.p50() - 1.0;
    EXPECT_GT(penalty, 0.02);
    EXPECT_LT(penalty, 0.60);
}

TEST_F(SplitwiseVsBaseline, HaTokenPoolIsCheaperPerThroughput)
{
    // Insight VII: A100 token machines deliver better Perf/$ - the
    // HA design costs less than HH for the same machine counts while
    // still meeting low-load latencies.
    const auto t = trace(workload::conversation(), 6.0, 30);
    const RunReport hh = run(core::splitwiseHH(2, 2), t);
    const RunReport ha = run(core::splitwiseHA(2, 2), t);
    EXPECT_LT(ha.footprint.costPerHour, hh.footprint.costPerHour);
    // TBT worsens by no more than the A100/H100 decode gap plus the
    // extra batching the slower machines accumulate.
    EXPECT_LT(ha.requests.tbtMs().p50(),
              1.8 * hh.requests.tbtMs().p50());
    // TTFT stays H100-class (prompts still run on H100s), modulo
    // occasional decode spillover into the prompt pool.
    EXPECT_LT(ha.requests.ttftMs().p50(),
              1.35 * hh.requests.ttftMs().p50());
}

TEST_F(SplitwiseVsBaseline, HHcapSavesPowerWithoutLatencyLoss)
{
    // Fig. 19a: capping token machines saves provisioned power at
    // nearly unchanged latency.
    const auto t = trace(workload::conversation(), 6.0, 30);
    const RunReport hh = run(core::splitwiseHH(2, 2), t);
    const RunReport cap = run(core::splitwiseHHcap(2, 2), t);
    EXPECT_LT(cap.footprint.powerWatts, hh.footprint.powerWatts);
    EXPECT_NEAR(cap.requests.tbtMs().p50() / hh.requests.tbtMs().p50(),
                1.0, 0.05);
    EXPECT_NEAR(cap.requests.e2eMs().p50() / hh.requests.e2eMs().p50(),
                1.0, 0.10);
}

}  // namespace
}  // namespace splitwise
