#include "engine/request.h"

#include <gtest/gtest.h>

namespace splitwise::engine {
namespace {

LiveRequest
makeRequest(std::int64_t prompt, std::int64_t output,
            sim::TimeUs arrival = 0)
{
    LiveRequest r;
    r.spec = {1, arrival, prompt, output};
    return r;
}

TEST(LiveRequestTest, InitialState)
{
    LiveRequest r = makeRequest(100, 5);
    EXPECT_EQ(r.phase, RequestPhase::kPromptQueued);
    EXPECT_EQ(r.generated, 0);
    EXPECT_FALSE(r.finished());
    EXPECT_EQ(r.contextTokens(), 100);
}

TEST(LiveRequestTest, FirstTokenSetsTtft)
{
    LiveRequest r = makeRequest(100, 3, sim::msToUs(10));
    r.recordToken(sim::msToUs(110));
    EXPECT_EQ(r.generated, 1);
    EXPECT_EQ(r.firstTokenTime, sim::msToUs(110));
    EXPECT_FALSE(r.finished());
}

TEST(LiveRequestTest, SubsequentTokensTrackTbt)
{
    LiveRequest r = makeRequest(100, 3);
    r.recordToken(sim::msToUs(100));
    r.recordToken(sim::msToUs(130));
    r.recordToken(sim::msToUs(190));
    EXPECT_TRUE(r.finished());
    EXPECT_DOUBLE_EQ(r.sumTbtMs, 90.0);
    EXPECT_DOUBLE_EQ(r.maxTbtMs, 60.0);
    EXPECT_DOUBLE_EQ(r.secondTokenMs, 30.0);
}

TEST(LiveRequestTest, ContextGrowsWithGeneration)
{
    LiveRequest r = makeRequest(100, 5);
    r.recordToken(1000);
    r.recordToken(2000);
    EXPECT_EQ(r.contextTokens(), 102);
}

TEST(LiveRequestTest, SingleTokenRequestFinishesAtFirstToken)
{
    LiveRequest r = makeRequest(500, 1);
    r.recordToken(sim::msToUs(50));
    EXPECT_TRUE(r.finished());
    EXPECT_EQ(r.doneTime, sim::msToUs(50));
}

TEST(LiveRequestTest, ResultComputesPaperMetrics)
{
    LiveRequest r = makeRequest(200, 3, sim::msToUs(5));
    r.recordToken(sim::msToUs(100));
    r.recordToken(sim::msToUs(140));
    r.recordToken(sim::msToUs(200));
    const auto result = r.result();
    EXPECT_DOUBLE_EQ(result.ttftMs, 95.0);
    EXPECT_DOUBLE_EQ(result.tbtMs, 50.0);
    EXPECT_DOUBLE_EQ(result.maxTbtMs, 60.0);
    EXPECT_DOUBLE_EQ(result.e2eMs, 195.0);
    EXPECT_DOUBLE_EQ(result.secondTokenMs, 40.0);
    EXPECT_EQ(result.promptTokens, 200);
    EXPECT_EQ(result.outputTokens, 3);
}

TEST(LiveRequestTest, SingleTokenResultHasZeroTbt)
{
    LiveRequest r = makeRequest(100, 1);
    r.recordToken(sim::msToUs(30));
    const auto result = r.result();
    EXPECT_DOUBLE_EQ(result.tbtMs, 0.0);
    EXPECT_DOUBLE_EQ(result.e2eMs, result.ttftMs);
}

TEST(LiveRequestDeathTest, ResultOnUnfinishedPanics)
{
    LiveRequest r = makeRequest(100, 5);
    r.recordToken(1000);
    EXPECT_DEATH(r.result(), "unfinished");
}

TEST(LiveRequestTest, PhaseNamesAreStable)
{
    EXPECT_STREQ(requestPhaseName(RequestPhase::kPromptQueued),
                 "prompt-queued");
    EXPECT_STREQ(requestPhaseName(RequestPhase::kTransferring),
                 "transferring");
    EXPECT_STREQ(requestPhaseName(RequestPhase::kDone), "done");
}

}  // namespace
}  // namespace splitwise::engine
