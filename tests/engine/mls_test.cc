#include "engine/mls.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace splitwise::engine {
namespace {

class MlsTest : public ::testing::Test {
  protected:
    LiveRequest*
    makeRequest(std::int64_t prompt, std::int64_t output)
    {
        auto req = std::make_unique<LiveRequest>();
        req->spec = {nextId_++, 0, prompt, output};
        requests_.push_back(std::move(req));
        return requests_.back().get();
    }

    /** Simulate a resident decode with its KV already allocated. */
    LiveRequest*
    makeResident(Mls& mls, std::int64_t prompt, std::int64_t generated,
                 std::int64_t output)
    {
        LiveRequest* req = makeRequest(prompt, output);
        req->generated = generated;
        EXPECT_TRUE(mls.blocks().allocate(req->spec.id,
                                          req->contextTokens() + 1));
        mls.addResident(req);
        return req;
    }

    std::vector<std::unique_ptr<LiveRequest>> requests_;
    std::uint64_t nextId_ = 0;
};

MlsConfig
config(BatchPolicy policy, std::int64_t budget = 2048, int max_batch = 256,
       int max_preemptions = 4)
{
    MlsConfig c;
    c.policy = policy;
    c.promptTokenBudget = budget;
    c.maxBatchSize = max_batch;
    c.maxPreemptions = max_preemptions;
    return c;
}

MlsConfig
chunkedConfig(std::int64_t chunk)
{
    MlsConfig c = config(BatchPolicy::kMixed);
    c.promptChunkTokens = chunk;
    return c;
}

// --- Mixed policy (the paper's default, Fig. 2c) ---

TEST_F(MlsTest, MixedBatchesPromptsAndDecodesTogether)
{
    Mls mls(config(BatchPolicy::kMixed), 100000);
    mls.enqueuePrompt(makeRequest(1000, 10));
    makeResident(mls, 500, 2, 10);
    const BatchPlan plan = mls.nextBatch();
    EXPECT_EQ(plan.prompts.size(), 1u);
    EXPECT_EQ(plan.decodes.size(), 1u);
    // Default mixed batching runs the whole prompt with the decodes
    // (Fig. 2c): the co-scheduled token phase sees a long iteration.
    EXPECT_EQ(plan.promptTokens, 1000);
    EXPECT_EQ(plan.prompts[0]->chunkTokens, 1000);
}

TEST_F(MlsTest, ChunkedPrefillBoundsMixedPromptSlice)
{
    Mls mls(chunkedConfig(512), 100000);
    mls.enqueuePrompt(makeRequest(1000, 10));
    makeResident(mls, 500, 2, 10);
    const BatchPlan plan = mls.nextBatch();
    ASSERT_EQ(plan.prompts.size(), 1u);
    EXPECT_EQ(plan.promptTokens, 512);
}

TEST_F(MlsTest, ChunkedPrefillSpreadsPromptAcrossIterations)
{
    Mls mls(chunkedConfig(512), 100000);
    LiveRequest* prompt = makeRequest(1200, 10);
    mls.enqueuePrompt(prompt);
    makeResident(mls, 500, 2, 10);

    std::int64_t total = 0;
    for (int iter = 0; iter < 3; ++iter) {
        const BatchPlan plan = mls.nextBatch();
        ASSERT_EQ(plan.prompts.size(), 1u);
        ASSERT_EQ(plan.prompts[0], prompt);
        // The machine advances progress at iteration completion.
        prompt->promptProcessed += prompt->chunkTokens;
        total += prompt->chunkTokens;
        prompt->chunkTokens = 0;
    }
    EXPECT_EQ(total, 1200);
    // Chunks were 512, 512, 176.
    EXPECT_EQ(prompt->promptProcessed, 1200);
    // The request left the queue with its final chunk.
    EXPECT_EQ(mls.pendingPrompts(), 0u);
}

TEST_F(MlsTest, NoChunkingWithoutResidents)
{
    Mls mls(chunkedConfig(512), 100000);
    mls.enqueuePrompt(makeRequest(1200, 10));
    const BatchPlan plan = mls.nextBatch();
    ASSERT_EQ(plan.prompts.size(), 1u);
    EXPECT_EQ(plan.promptTokens, 1200);
}

TEST_F(MlsTest, PromptBudgetLimitsBatchedPromptTokens)
{
    Mls mls(config(BatchPolicy::kMixed, 2048), 100000);
    mls.enqueuePrompt(makeRequest(1000, 5));
    mls.enqueuePrompt(makeRequest(1000, 5));
    mls.enqueuePrompt(makeRequest(1000, 5));
    const BatchPlan plan = mls.nextBatch();
    // 1000 + 1000 fits; the third would exceed 2048.
    EXPECT_EQ(plan.prompts.size(), 2u);
    EXPECT_EQ(plan.promptTokens, 2000);
    EXPECT_EQ(mls.pendingPrompts(), 1u);
}

TEST_F(MlsTest, OversizedPromptRunsAlone)
{
    Mls mls(config(BatchPolicy::kMixed, 2048), 100000);
    mls.enqueuePrompt(makeRequest(5000, 5));
    mls.enqueuePrompt(makeRequest(100, 5));
    const BatchPlan plan = mls.nextBatch();
    ASSERT_EQ(plan.prompts.size(), 1u);
    EXPECT_EQ(plan.promptTokens, 5000);
}

TEST_F(MlsTest, FcfsOrderPreserved)
{
    Mls mls(config(BatchPolicy::kMixed, 4096), 100000);
    LiveRequest* first = makeRequest(1000, 5);
    LiveRequest* second = makeRequest(1000, 5);
    mls.enqueuePrompt(first);
    mls.enqueuePrompt(second);
    const BatchPlan plan = mls.nextBatch();
    ASSERT_EQ(plan.prompts.size(), 2u);
    EXPECT_EQ(plan.prompts[0], first);
    EXPECT_EQ(plan.prompts[1], second);
}

TEST_F(MlsTest, PromptAllocationReservesKv)
{
    Mls mls(config(BatchPolicy::kMixed), 100000);
    LiveRequest* req = makeRequest(1000, 5);
    mls.enqueuePrompt(req);
    mls.nextBatch();
    EXPECT_TRUE(mls.blocks().holds(req->spec.id));
    EXPECT_GE(mls.blocks().tokensOf(req->spec.id), 1001);
}

TEST_F(MlsTest, MemoryFullBlocksPromptAdmission)
{
    // Capacity for one 1000-token prompt but not two.
    Mls mls(config(BatchPolicy::kMixed), 1600);
    mls.enqueuePrompt(makeRequest(1000, 5));
    mls.enqueuePrompt(makeRequest(1000, 5));
    const BatchPlan plan = mls.nextBatch();
    EXPECT_EQ(plan.prompts.size(), 1u);
    EXPECT_EQ(mls.pendingPrompts(), 1u);
}

TEST_F(MlsTest, DecodeExtensionReservesNextToken)
{
    Mls mls(config(BatchPolicy::kMixed), 100000);
    LiveRequest* req = makeResident(mls, 100, 1, 10);
    mls.nextBatch();
    EXPECT_GE(mls.blocks().tokensOf(req->spec.id), req->contextTokens() + 1);
}

TEST_F(MlsTest, MaxBatchSizeCapsDecodes)
{
    Mls mls(config(BatchPolicy::kMixed, 2048, 4), 1000000);
    for (int i = 0; i < 8; ++i)
        makeResident(mls, 100, 1, 10);
    const BatchPlan plan = mls.nextBatch();
    EXPECT_EQ(plan.decodes.size(), 4u);
}

TEST_F(MlsTest, EmptyWhenNoWork)
{
    Mls mls(config(BatchPolicy::kMixed), 100000);
    EXPECT_TRUE(mls.nextBatch().empty());
    EXPECT_FALSE(mls.hasWork());
}

TEST_F(MlsTest, PreemptsNewestResidentWhenWedged)
{
    // 201 blocks total; a filler reservation (as left by an inbound
    // transfer) plus two residents leave two free blocks, so the
    // decodes wedge within a few dozen generated tokens while the
    // queued prompt can never allocate.
    Mls mls(config(BatchPolicy::kMixed), 3216);
    LiveRequest* resident = makeResident(mls, 1000, 1, 60);
    // Fill every remaining block (as a reserved inbound transfer
    // would), so the decode wedges at its next block boundary.
    ASSERT_TRUE(mls.blocks().allocate(9999, mls.blocks().freeTokens()));
    mls.enqueuePrompt(makeRequest(1500, 5));

    BatchPlan plan = mls.nextBatch();
    int guard = 0;
    while (!plan.empty() && plan.prompts.empty() && ++guard < 100) {
        for (auto* r : plan.decodes)
            ++r->generated;
        plan = mls.nextBatch();
    }
    // The decode wedged and was preempted; with the filler still
    // holding all other memory even the recompute cannot start, so
    // the machine idles awaiting an external release.
    ASSERT_TRUE(plan.empty());
    EXPECT_GE(mls.preemptionCount(), 1u);
    EXPECT_EQ(resident->phase, RequestPhase::kPromptQueued);
    EXPECT_GE(resident->preemptions, 1);
    EXPECT_TRUE(mls.hasWork());

    // The filler releasing (transfer completed) unwedges the queue:
    // the victim recomputes its whole accumulated context, FCFS.
    mls.blocks().release(9999);
    plan = mls.nextBatch();
    ASSERT_FALSE(plan.prompts.empty());
    EXPECT_EQ(plan.prompts[0], resident);
    EXPECT_EQ(plan.promptTokens, resident->contextTokens());
}

TEST_F(MlsTest, PreemptedRequestRecomputesWholeContext)
{
    Mls mls(config(BatchPolicy::kMixed), 100000);
    LiveRequest* req = makeRequest(100, 10);
    req->generated = 5;
    mls.enqueuePrompt(req);
    const BatchPlan plan = mls.nextBatch();
    ASSERT_EQ(plan.prompts.size(), 1u);
    EXPECT_EQ(plan.promptTokens, 105);
}

TEST_F(MlsTest, FinishReleasesMemoryAndResidency)
{
    Mls mls(config(BatchPolicy::kMixed), 100000);
    LiveRequest* req = makeResident(mls, 100, 1, 10);
    const auto free_before = mls.blocks().freeBlocks();
    mls.finish(req);
    EXPECT_EQ(mls.residentCount(), 0u);
    EXPECT_GT(mls.blocks().freeBlocks(), free_before);
}

TEST_F(MlsTest, PendingPromptTokensCountsRecomputeWork)
{
    Mls mls(config(BatchPolicy::kMixed), 100000);
    mls.enqueuePrompt(makeRequest(100, 5));
    LiveRequest* recompute = makeRequest(200, 10);
    recompute->generated = 50;
    mls.enqueuePrompt(recompute);
    EXPECT_EQ(mls.pendingPromptTokens(), 100 + 250);
}

// --- Continuous batching (Fig. 2b) ---

TEST_F(MlsTest, ContinuousRunsPurePromptOrPureTokenBatches)
{
    Mls mls(config(BatchPolicy::kContinuous), 100000);
    mls.enqueuePrompt(makeRequest(1000, 10));
    makeResident(mls, 500, 2, 10);
    const BatchPlan plan = mls.nextBatch();
    EXPECT_EQ(plan.prompts.size(), 1u);
    EXPECT_TRUE(plan.decodes.empty());
}

TEST_F(MlsTest, ContinuousPromptPreemptsTokens)
{
    Mls mls(config(BatchPolicy::kContinuous), 100000);
    LiveRequest* resident = makeResident(mls, 500, 2, 10);
    mls.enqueuePrompt(makeRequest(1000, 10));
    mls.nextBatch();
    EXPECT_EQ(resident->preemptions, 1);
    EXPECT_EQ(resident->starvedIterations, 1);
}

TEST_F(MlsTest, ContinuousRunsTokensWhenNoPrompts)
{
    Mls mls(config(BatchPolicy::kContinuous), 100000);
    makeResident(mls, 500, 2, 10);
    const BatchPlan plan = mls.nextBatch();
    EXPECT_TRUE(plan.prompts.empty());
    EXPECT_EQ(plan.decodes.size(), 1u);
}

TEST_F(MlsTest, ContinuousAgeingPreventsStarvation)
{
    Mls mls(config(BatchPolicy::kContinuous, 2048, 256,
                   /*max_preemptions=*/2),
            1000000);
    LiveRequest* resident = makeResident(mls, 500, 2, 50);
    // Endless stream of prompts tries to starve the decode.
    for (int i = 0; i < 10; ++i)
        mls.enqueuePrompt(makeRequest(1000, 5));
    int token_batches = 0;
    for (int iter = 0; iter < 6; ++iter) {
        const BatchPlan plan = mls.nextBatch();
        if (!plan.decodes.empty()) {
            ++token_batches;
            break;
        }
    }
    EXPECT_EQ(token_batches, 1);
    EXPECT_EQ(resident->starvedIterations, 0);
}

// --- Request-level batching (Fig. 2a) ---

TEST_F(MlsTest, RequestLevelFormsBatchThenDrains)
{
    Mls mls(config(BatchPolicy::kRequestLevel), 1000000);
    LiveRequest* a = makeRequest(3000, 3);
    LiveRequest* b = makeRequest(3000, 3);
    mls.enqueuePrompt(a);
    mls.enqueuePrompt(b);

    // Batch forms with both prompts; no 2048-token budget applies.
    const BatchPlan prompt_plan = mls.nextBatch();
    EXPECT_EQ(prompt_plan.prompts.size(), 2u);
    EXPECT_EQ(prompt_plan.promptTokens, 6000);

    // New arrivals must wait for the batch to drain.
    LiveRequest* late = makeRequest(100, 2);
    mls.enqueuePrompt(late);
    a->generated = 1;
    b->generated = 1;
    mls.addResident(a);
    mls.addResident(b);
    const BatchPlan decode_plan = mls.nextBatch();
    EXPECT_TRUE(decode_plan.prompts.empty());
    EXPECT_EQ(decode_plan.decodes.size(), 2u);

    // Finish the members; only then does the late request run.
    mls.finish(a);
    mls.finish(b);
    const BatchPlan next = mls.nextBatch();
    ASSERT_EQ(next.prompts.size(), 1u);
    EXPECT_EQ(next.prompts[0], late);
}

// --- Introspection ---

TEST_F(MlsTest, WorkPredicates)
{
    Mls mls(config(BatchPolicy::kMixed), 100000);
    EXPECT_FALSE(mls.hasPromptWork());
    EXPECT_FALSE(mls.hasDecodeWork());
    mls.enqueuePrompt(makeRequest(100, 2));
    EXPECT_TRUE(mls.hasPromptWork());
    makeResident(mls, 100, 1, 5);
    EXPECT_TRUE(mls.hasDecodeWork());
    EXPECT_EQ(mls.residentContextTokens(), 101);
}

TEST_F(MlsTest, RejectsRequestLargerThanMachine)
{
    Mls mls(config(BatchPolicy::kMixed), 1600);
    EXPECT_THROW(mls.enqueuePrompt(makeRequest(5000, 5)),
                 std::runtime_error);
}

TEST_F(MlsTest, BatchPlanShapeMatchesContents)
{
    Mls mls(config(BatchPolicy::kMixed), 100000);
    mls.enqueuePrompt(makeRequest(1000, 5));
    makeResident(mls, 300, 2, 10);
    makeResident(mls, 400, 3, 10);
    const BatchPlan plan = mls.nextBatch();
    const model::IterationShape shape = plan.shape();
    EXPECT_EQ(shape.promptTokens, 1000);
    EXPECT_EQ(shape.promptRequests, 1);
    EXPECT_EQ(shape.tokenRequests, 2);
    EXPECT_EQ(shape.contextTokens, 302 + 403);
    EXPECT_EQ(plan.activeTokens(), 1002);
}

TEST(MlsConfigTest, PolicyNames)
{
    EXPECT_STREQ(batchPolicyName(BatchPolicy::kMixed), "mixed");
    EXPECT_STREQ(batchPolicyName(BatchPolicy::kContinuous), "continuous");
    EXPECT_STREQ(batchPolicyName(BatchPolicy::kRequestLevel),
                 "request-level");
}

TEST(MlsConfigTest, RejectsBadConfig)
{
    MlsConfig bad;
    bad.promptTokenBudget = 0;
    EXPECT_THROW(Mls(bad, 1000), std::runtime_error);
    MlsConfig bad2;
    bad2.maxBatchSize = 0;
    EXPECT_THROW(Mls(bad2, 1000), std::runtime_error);
}

}  // namespace
}  // namespace splitwise::engine
