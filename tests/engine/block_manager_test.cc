#include "engine/block_manager.h"

#include <gtest/gtest.h>

namespace splitwise::engine {
namespace {

TEST(BlockManagerTest, CapacityRoundsDownToBlocks)
{
    BlockManager bm(100, 16);
    EXPECT_EQ(bm.totalBlocks(), 6);
    EXPECT_EQ(bm.tokenCapacity(), 96);
}

TEST(BlockManagerTest, BlocksForRoundsUp)
{
    BlockManager bm(1600, 16);
    EXPECT_EQ(bm.blocksFor(0), 0);
    EXPECT_EQ(bm.blocksFor(1), 1);
    EXPECT_EQ(bm.blocksFor(16), 1);
    EXPECT_EQ(bm.blocksFor(17), 2);
}

TEST(BlockManagerTest, AllocateAndRelease)
{
    BlockManager bm(1600, 16);
    EXPECT_TRUE(bm.allocate(1, 100));
    EXPECT_TRUE(bm.holds(1));
    EXPECT_EQ(bm.tokensOf(1), 100);
    EXPECT_EQ(bm.freeBlocks(), 100 - 7);
    EXPECT_EQ(bm.usedTokens(), 100);
    bm.release(1);
    EXPECT_FALSE(bm.holds(1));
    EXPECT_EQ(bm.freeBlocks(), 100);
    EXPECT_EQ(bm.usedTokens(), 0);
}

TEST(BlockManagerTest, DoubleAllocateFails)
{
    BlockManager bm(1600, 16);
    EXPECT_TRUE(bm.allocate(1, 10));
    EXPECT_FALSE(bm.allocate(1, 10));
}

TEST(BlockManagerTest, AllocateFailsWhenFull)
{
    BlockManager bm(160, 16);
    EXPECT_TRUE(bm.allocate(1, 100));
    EXPECT_FALSE(bm.allocate(2, 100));
    // Failed allocation changed nothing; the 3 remaining blocks
    // (48 tokens) are still allocatable.
    EXPECT_FALSE(bm.holds(2));
    EXPECT_TRUE(bm.allocate(3, 48));
}

TEST(BlockManagerTest, CanAllocateMatchesAllocate)
{
    BlockManager bm(160, 16);
    EXPECT_TRUE(bm.canAllocate(160));
    EXPECT_FALSE(bm.canAllocate(161));
    bm.allocate(1, 100);
    EXPECT_TRUE(bm.canAllocate(48));
    EXPECT_FALSE(bm.canAllocate(49));
}

TEST(BlockManagerTest, ExtendGrowsWithinBlock)
{
    BlockManager bm(1600, 16);
    bm.allocate(1, 10);
    const auto before = bm.freeBlocks();
    // Growing within the same block allocates nothing new.
    EXPECT_TRUE(bm.extend(1, 16));
    EXPECT_EQ(bm.freeBlocks(), before);
    // Crossing the boundary takes a block.
    EXPECT_TRUE(bm.extend(1, 17));
    EXPECT_EQ(bm.freeBlocks(), before - 1);
}

TEST(BlockManagerTest, ExtendFailsWhenFullAndLeavesStateIntact)
{
    BlockManager bm(32, 16);
    bm.allocate(1, 16);
    bm.allocate(2, 16);
    EXPECT_FALSE(bm.extend(1, 17));
    EXPECT_EQ(bm.tokensOf(1), 16);
    bm.release(2);
    EXPECT_TRUE(bm.extend(1, 17));
}

TEST(BlockManagerTest, ExtendShrinkIsNoOpSuccess)
{
    BlockManager bm(1600, 16);
    bm.allocate(1, 100);
    EXPECT_TRUE(bm.extend(1, 50));
    EXPECT_EQ(bm.tokensOf(1), 100);
}

TEST(BlockManagerTest, ExtendUnknownIdFails)
{
    BlockManager bm(1600, 16);
    EXPECT_FALSE(bm.extend(9, 10));
    EXPECT_FALSE(bm.canExtend(9, 10));
}

TEST(BlockManagerTest, CanExtendPredictsExtend)
{
    BlockManager bm(64, 16);
    bm.allocate(1, 16);
    bm.allocate(2, 32);
    EXPECT_TRUE(bm.canExtend(1, 32));
    EXPECT_FALSE(bm.canExtend(1, 48));
}

TEST(BlockManagerTest, ReleaseUnknownIsNoOp)
{
    BlockManager bm(160, 16);
    bm.release(42);
    EXPECT_EQ(bm.freeBlocks(), 10);
}

TEST(BlockManagerTest, UtilizationTracksUse)
{
    BlockManager bm(160, 16);
    EXPECT_DOUBLE_EQ(bm.utilization(), 0.0);
    bm.allocate(1, 80);
    EXPECT_DOUBLE_EQ(bm.utilization(), 0.5);
    bm.allocate(2, 80);
    EXPECT_DOUBLE_EQ(bm.utilization(), 1.0);
}

TEST(BlockManagerTest, ResidentsCount)
{
    BlockManager bm(160, 16);
    bm.allocate(1, 16);
    bm.allocate(2, 16);
    EXPECT_EQ(bm.residents(), 2u);
    bm.release(1);
    EXPECT_EQ(bm.residents(), 1u);
}

TEST(BlockManagerTest, ZeroTokenAllocationHoldsNothing)
{
    BlockManager bm(160, 16);
    EXPECT_TRUE(bm.allocate(1, 0));
    EXPECT_TRUE(bm.holds(1));
    EXPECT_EQ(bm.freeBlocks(), 10);
}

TEST(BlockManagerTest, ManyRequestsInternalFragmentationBounded)
{
    BlockManager bm(16000, 16);
    // 100 requests of 17 tokens: 2 blocks each despite 17 < 32.
    for (std::uint64_t i = 0; i < 100; ++i)
        ASSERT_TRUE(bm.allocate(i, 17));
    EXPECT_EQ(bm.freeBlocks(), 1000 - 200);
    EXPECT_EQ(bm.usedTokens(), 1700);
}

TEST(BlockManagerDeathTest, RejectsBadConfig)
{
    EXPECT_THROW(BlockManager(100, 0), std::runtime_error);
    EXPECT_THROW(BlockManager(-1, 16), std::runtime_error);
}

}  // namespace
}  // namespace splitwise::engine
