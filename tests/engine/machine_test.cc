#include "engine/machine.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hw/machine_spec.h"
#include "model/llm_config.h"
#include "model/memory_model.h"
#include "model/perf_model.h"
#include "sim/simulator.h"

namespace splitwise::engine {
namespace {

class MachineTest : public ::testing::Test {
  protected:
    MachineTest()
        : perf_(model::llama2_70b(), hw::dgxH100()),
          memory_(model::llama2_70b(), hw::dgxH100())
    {
    }

    Machine&
    makeMachine(MlsConfig mls = {}, Machine::Callbacks extra = {})
    {
        Machine::Callbacks cb = std::move(extra);
        if (!cb.onRequestDone) {
            cb.onRequestDone = [this](Machine&, LiveRequest* req) {
                done_.push_back(req);
            };
        }
        machines_.push_back(std::make_unique<Machine>(
            sim_, static_cast<int>(machines_.size()), hw::dgxH100(), perf_,
            memory_, mls, std::move(cb)));
        return *machines_.back();
    }

    LiveRequest*
    makeRequest(std::int64_t prompt, std::int64_t output,
                sim::TimeUs arrival = 0)
    {
        auto req = std::make_unique<LiveRequest>();
        req->spec = {nextId_++, arrival, prompt, output};
        requests_.push_back(std::move(req));
        return requests_.back().get();
    }

    sim::Simulator sim_;
    model::AnalyticalPerfModel perf_;
    model::MemoryModel memory_;
    std::vector<std::unique_ptr<Machine>> machines_;
    std::vector<std::unique_ptr<LiveRequest>> requests_;
    std::vector<LiveRequest*> done_;
    std::uint64_t nextId_ = 0;
};

TEST_F(MachineTest, SingleRequestRunsToCompletionLocally)
{
    Machine& m = makeMachine();
    LiveRequest* req = makeRequest(1000, 5);
    m.submitPrompt(req);
    sim_.run();
    ASSERT_EQ(done_.size(), 1u);
    EXPECT_TRUE(req->finished());
    EXPECT_EQ(req->phase, RequestPhase::kDone);
    EXPECT_EQ(req->generated, 5);
    // TTFT approximates one prompt iteration.
    const double ttft = sim::usToMs(req->firstTokenTime - req->spec.arrival);
    EXPECT_NEAR(ttft, sim::usToMs(perf_.promptTime(1000, 1)), 1.0);
}

TEST_F(MachineTest, SingleOutputTokenFinishesAtPrompt)
{
    Machine& m = makeMachine();
    LiveRequest* req = makeRequest(500, 1);
    m.submitPrompt(req);
    sim_.run();
    ASSERT_EQ(done_.size(), 1u);
    EXPECT_EQ(req->generated, 1);
    // KV released immediately: nothing resident.
    EXPECT_EQ(m.mls().blocks().residents(), 0u);
}

TEST_F(MachineTest, KvReleasedWhenRequestCompletes)
{
    Machine& m = makeMachine();
    m.submitPrompt(makeRequest(1000, 5));
    sim_.run();
    EXPECT_EQ(m.mls().blocks().usedTokens(), 0);
}

TEST_F(MachineTest, DecodeIterationsBatchAcrossRequests)
{
    Machine& m = makeMachine();
    for (int i = 0; i < 8; ++i)
        m.submitPrompt(makeRequest(200, 10));
    sim_.run();
    EXPECT_EQ(done_.size(), 8u);
    // Batched decoding needs far fewer iterations than the 80
    // generated tokens.
    EXPECT_LT(m.stats().iterations, 50u);
    EXPECT_EQ(m.stats().tokensGenerated, 80);
}

TEST_F(MachineTest, RemoteDestinationFiresPromptDoneAndKeepsKv)
{
    LiveRequest* captured = nullptr;
    sim::TimeUs captured_compute = 0;
    Machine::Callbacks cb;
    cb.onPromptDone = [&](Machine&, LiveRequest* req, sim::TimeUs compute) {
        captured = req;
        captured_compute = compute;
    };
    Machine& m = makeMachine({}, std::move(cb));
    LiveRequest* req = makeRequest(1000, 5);
    req->tokenMachine = 99;  // somewhere else
    m.submitPrompt(req);
    sim_.run();
    ASSERT_EQ(captured, req);
    EXPECT_GT(captured_compute, 0);
    EXPECT_EQ(req->phase, RequestPhase::kTransferring);
    EXPECT_EQ(req->generated, 1);
    // The prompt machine holds the KV until the transfer finishes.
    EXPECT_TRUE(m.mls().blocks().holds(req->spec.id));
    m.releaseKv(req);
    EXPECT_FALSE(m.mls().blocks().holds(req->spec.id));
}

TEST_F(MachineTest, AcceptTransferredDecodesToCompletion)
{
    Machine& m = makeMachine();
    LiveRequest* req = makeRequest(1000, 5);
    req->generated = 1;  // first token made on the prompt machine
    req->firstTokenTime = 0;
    req->prevTokenTime = 0;
    req->tokenMachine = m.id();
    ASSERT_TRUE(m.reserveKv(req, req->contextTokens() + 1));
    m.acceptTransferred(req);
    sim_.run();
    ASSERT_EQ(done_.size(), 1u);
    EXPECT_EQ(req->generated, 5);
}

TEST_F(MachineTest, ReserveKvFailsWhenFull)
{
    Machine& m = makeMachine();
    LiveRequest* big = makeRequest(10, 5);
    const auto capacity = m.mls().blocks().tokenCapacity();
    ASSERT_TRUE(m.reserveKv(big, capacity));
    LiveRequest* other = makeRequest(10, 5);
    EXPECT_FALSE(m.reserveKv(other, 100));
}

TEST_F(MachineTest, QueueDepthIncludesRunningPrompt)
{
    Machine& m = makeMachine();
    m.submitPrompt(makeRequest(1000, 2));
    // The prompt was admitted into a running iteration immediately.
    EXPECT_EQ(m.promptQueueDepthTokens(), 1000);
    m.submitPrompt(makeRequest(500, 2));
    EXPECT_EQ(m.promptQueueDepthTokens(), 1500);
    sim_.run();
    EXPECT_EQ(m.promptQueueDepthTokens(), 0);
}

TEST_F(MachineTest, TokenLoadTracksKv)
{
    Machine& m = makeMachine();
    EXPECT_EQ(m.tokenLoadTokens(), 0);
    LiveRequest* req = makeRequest(100, 5);
    ASSERT_TRUE(m.reserveKv(req, 300));
    EXPECT_EQ(m.tokenLoadTokens(), 300);
}

TEST_F(MachineTest, StatsAccumulate)
{
    Machine& m = makeMachine();
    m.submitPrompt(makeRequest(1000, 10));
    sim_.run();
    m.finalizeStats();
    const MachineStats& s = m.stats();
    EXPECT_GT(s.busyUs, 0);
    EXPECT_GT(s.energyWh, 0.0);
    EXPECT_EQ(s.promptTokensProcessed, 1000);
    EXPECT_EQ(s.tokensGenerated, 10);
    EXPECT_GE(s.promptIterations, 1u);
    EXPECT_GE(s.tokenIterations, 1u);
    // Machine was busy the whole run (single queue, no gaps).
    EXPECT_EQ(s.busyUs, sim_.now());
    EXPECT_EQ(s.activeTokens.histogram().totalTime(), sim_.now());
}

TEST_F(MachineTest, MixedIterationCountsWhenPromptMeetsDecodes)
{
    MlsConfig cfg;
    cfg.policy = BatchPolicy::kMixed;
    Machine& m = makeMachine(cfg);
    m.submitPrompt(makeRequest(500, 50));
    sim_.run(sim_.now() + perf_.promptTime(500, 1) + 1000);
    // Decode now resident; a newly arriving prompt joins mid-flight.
    m.submitPrompt(makeRequest(500, 50));
    sim_.run();
    EXPECT_GE(m.stats().mixedIterations, 1u);
    EXPECT_EQ(done_.size(), 2u);
}

TEST_F(MachineTest, TransferInterferenceExtendsIteration)
{
    sim::TimeUs without = 0;
    {
        Machine& m = makeMachine();
        LiveRequest* req = makeRequest(2000, 2);
        req->tokenMachine = m.id();
        m.submitPrompt(req);
        sim_.run();
        without = req->firstTokenTime;
    }
    // Fresh fixture state: new machine with an interference hook and
    // a remote destination.
    done_.clear();
    const sim::TimeUs t0 = sim_.now();
    Machine::Callbacks cb;
    cb.onPromptDone = [](Machine&, LiveRequest*, sim::TimeUs) {};
    cb.transferInterference = [](Machine&, LiveRequest*, sim::TimeUs) {
        return sim::msToUs(5.0);
    };
    Machine& m = makeMachine({}, std::move(cb));
    LiveRequest* req = makeRequest(2000, 2);
    req->tokenMachine = 999;
    m.submitPrompt(req);
    sim_.run();
    const sim::TimeUs with_interference = req->firstTokenTime - t0;
    EXPECT_NEAR(static_cast<double>(with_interference - without),
                sim::msToUs(5.0), 100.0);
}

TEST_F(MachineTest, PerMachineHistogramCountsActiveTokens)
{
    Machine& m = makeMachine();
    m.submitPrompt(makeRequest(1000, 20));
    sim_.run();
    m.finalizeStats();
    const auto& hist = m.stats().activeTokens.histogram();
    // Some time at 1000 active tokens (prompt), most at 1 (decode).
    EXPECT_GT(hist.cdfAt(1), 0.3);
    EXPECT_LT(hist.cdfAt(999), 1.0);
}

TEST_F(MachineTest, FailDropsAllWork)
{
    Machine& m = makeMachine();
    m.submitPrompt(makeRequest(1000, 5));
    m.submitPrompt(makeRequest(1000, 5));
    m.fail();
    EXPECT_TRUE(m.failed());
    EXPECT_FALSE(m.mls().hasWork());
    EXPECT_EQ(m.tokenLoadTokens(), 0);
    // The in-flight iteration's completion is a no-op.
    sim_.run();
    EXPECT_TRUE(done_.empty());
}

TEST_F(MachineTest, FailedMachineRefusesReservations)
{
    Machine& m = makeMachine();
    m.fail();
    LiveRequest* req = makeRequest(100, 5);
    EXPECT_FALSE(m.reserveKv(req, 200));
}

TEST_F(MachineTest, FailIsIdempotent)
{
    Machine& m = makeMachine();
    m.fail();
    m.fail();
    EXPECT_TRUE(m.failed());
}

using MachineDeathTest = MachineTest;

TEST_F(MachineDeathTest, SubmitToFailedMachinePanics)
{
    sim::Simulator simulator;
    const model::AnalyticalPerfModel perf(model::llama2_70b(),
                                          hw::dgxH100());
    const model::MemoryModel memory(model::llama2_70b(), hw::dgxH100());
    Machine machine(simulator, 0, hw::dgxH100(), perf, memory, {}, {});
    machine.fail();
    LiveRequest req;
    req.spec = {1, 0, 100, 5};
    EXPECT_DEATH(machine.submitPrompt(&req), "failed machine");
}

}  // namespace
}  // namespace splitwise::engine
