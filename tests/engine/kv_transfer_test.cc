#include "engine/kv_transfer.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hw/machine_spec.h"
#include "model/llm_config.h"
#include "model/memory_model.h"
#include "model/perf_model.h"
#include "sim/simulator.h"

namespace splitwise::engine {
namespace {

/**
 * Two-machine fixture: machine 0 plays the prompt role, machine 1
 * the token role, with the transfer engine between them.
 */
class KvTransferTest : public ::testing::Test {
  protected:
    KvTransferTest()
        : perf_(model::llama2_70b(), hw::dgxH100()),
          memory_(model::llama2_70b(), hw::dgxH100()),
          engine_(sim_, model::llama2_70b())
    {
        Machine::Callbacks cb;
        cb.onRequestDone = [this](Machine&, LiveRequest* req) {
            done_.push_back(req);
        };
        cb.onPromptDone = [this](Machine& m, LiveRequest* req,
                                 sim::TimeUs compute) {
            engine_.startTransfer(req, &m, machines_[1].get(), compute,
                                  [this](LiveRequest* r) {
                                      transferred_.push_back(r);
                                  });
        };
        cb.onMemoryFreed = [this](Machine& m) { engine_.onMemoryFreed(&m); };
        for (int i = 0; i < 2; ++i) {
            machines_.push_back(std::make_unique<Machine>(
                sim_, i, hw::dgxH100(), perf_, memory_, MlsConfig{}, cb));
            engine_.registerMachine(machines_.back().get());
        }
    }

    LiveRequest*
    makeRequest(std::int64_t prompt, std::int64_t output)
    {
        auto req = std::make_unique<LiveRequest>();
        req->spec = {nextId_++, 0, prompt, output};
        req->tokenMachine = 1;
        requests_.push_back(std::move(req));
        return requests_.back().get();
    }

    sim::Simulator sim_;
    model::AnalyticalPerfModel perf_;
    model::MemoryModel memory_;
    std::vector<std::unique_ptr<Machine>> machines_;
    KvTransferEngine engine_;
    std::vector<std::unique_ptr<LiveRequest>> requests_;
    std::vector<LiveRequest*> done_;
    std::vector<LiveRequest*> transferred_;
    std::uint64_t nextId_ = 0;
};

TEST_F(KvTransferTest, RequestSplitsAcrossMachines)
{
    LiveRequest* req = makeRequest(1000, 5);
    machines_[0]->submitPrompt(req);
    sim_.run();
    ASSERT_EQ(done_.size(), 1u);
    ASSERT_EQ(transferred_.size(), 1u);
    EXPECT_TRUE(req->finished());
    // Prompt ran on 0, decode on 1.
    EXPECT_EQ(machines_[0]->stats().promptTokensProcessed, 1000);
    EXPECT_EQ(machines_[0]->stats().tokensGenerated, 1);
    EXPECT_EQ(machines_[1]->stats().tokensGenerated, 4);
    // Both machines released the KV at the end.
    EXPECT_EQ(machines_[0]->tokenLoadTokens(), 0);
    EXPECT_EQ(machines_[1]->tokenLoadTokens(), 0);
}

TEST_F(KvTransferTest, SecondTokenCarriesTransferLatency)
{
    LiveRequest* req = makeRequest(2000, 3);
    machines_[0]->submitPrompt(req);
    sim_.run();
    // The second token's gap exceeds a plain decode iteration by the
    // visible transfer time.
    const double tbt = sim::usToMs(perf_.tokenTime(1, 2001));
    EXPECT_GT(req->secondTokenMs, tbt);
    EXPECT_LT(req->secondTokenMs, tbt + 25.0);
}

TEST_F(KvTransferTest, LargePromptsUseLayerwise)
{
    machines_[0]->submitPrompt(makeRequest(2048, 3));
    sim_.run();
    EXPECT_EQ(engine_.stats().transfers, 1u);
    EXPECT_EQ(engine_.stats().layerwiseTransfers, 1u);
}

TEST_F(KvTransferTest, SmallPromptsUseSerialized)
{
    machines_[0]->submitPrompt(makeRequest(128, 3));
    sim_.run();
    EXPECT_EQ(engine_.stats().transfers, 1u);
    EXPECT_EQ(engine_.stats().layerwiseTransfers, 0u);
}

TEST_F(KvTransferTest, BytesMovedMatchKvSize)
{
    machines_[0]->submitPrompt(makeRequest(1000, 3));
    sim_.run();
    EXPECT_EQ(engine_.stats().bytesMoved,
              1000 * model::llama2_70b().kvBytesPerToken());
}

TEST_F(KvTransferTest, ManyTransfersAllComplete)
{
    for (int i = 0; i < 20; ++i)
        machines_[0]->submitPrompt(makeRequest(600, 4));
    sim_.run();
    EXPECT_EQ(done_.size(), 20u);
    EXPECT_EQ(engine_.stats().transfers, 20u);
}

TEST_F(KvTransferTest, MemoryStallDefersTransferUntilFreed)
{
    // Fill the destination almost completely with a dummy
    // reservation, forcing the transfer to queue.
    LiveRequest* blocker = makeRequest(10, 2);
    const auto capacity = machines_[1]->mls().blocks().tokenCapacity();
    ASSERT_TRUE(machines_[1]->reserveKv(blocker, capacity - 100));

    LiveRequest* req = makeRequest(1000, 3);
    machines_[0]->submitPrompt(req);
    sim_.run();
    // Transfer stalled: request still parked in the transfer phase.
    EXPECT_EQ(engine_.stats().memoryStalls, 1u);
    EXPECT_EQ(req->phase, RequestPhase::kTransferring);
    EXPECT_FALSE(req->finished());

    // Free the blocker; the queued transfer resumes and completes.
    machines_[1]->releaseKv(blocker);
    sim_.run();
    EXPECT_TRUE(req->finished());
    EXPECT_EQ(engine_.stats().transfers, 1u);
}

TEST_F(KvTransferTest, InterferenceOnlyForLayerwise)
{
    LiveRequest* small = makeRequest(128, 2);
    LiveRequest* large = makeRequest(4096, 2);
    const sim::TimeUs compute = perf_.promptTime(4096, 1);
    EXPECT_EQ(engine_.interferenceFor(*machines_[0], small, compute), 0);
    EXPECT_GT(engine_.interferenceFor(*machines_[0], large, compute), 0);
}

TEST_F(KvTransferTest, InterferenceZeroForUnknownDestination)
{
    LiveRequest* req = makeRequest(4096, 2);
    req->tokenMachine = 77;  // not registered
    EXPECT_EQ(engine_.interferenceFor(*machines_[0], req, 1000), 0);
}

TEST_F(KvTransferTest, NicSerializesConcurrentTransfers)
{
    // Two simultaneous small transfers to the same destination must
    // not overlap on the NIC: completion times differ by at least
    // one visible transfer time.
    LiveRequest* a = makeRequest(256, 2);
    LiveRequest* b = makeRequest(256, 2);
    machines_[0]->submitPrompt(a);
    machines_[0]->submitPrompt(b);
    sim_.run();
    EXPECT_EQ(done_.size(), 2u);
    EXPECT_EQ(engine_.stats().transfers, 2u);
    EXPECT_GE(engine_.stats().totalVisibleUs,
              2 * hw::linkBetween(hw::dgxH100(), hw::dgxH100()).setupUs);
}

TEST_F(KvTransferTest, TransientFaultRetriesAfterBackoff)
{
    LiveRequest* req = makeRequest(1000, 4);
    const sim::TimeUs prompt = perf_.promptTime(1000, 1);

    KvRetryPolicy policy;
    policy.maxRetries = 3;
    policy.backoffBaseUs = 8 * prompt;  // first retry lands post-window
    engine_.setRetryPolicy(policy);
    // The first attempt starts right after the prompt iteration
    // (prompt compute plus a little interference), well inside this
    // window; the backed-off retry lands well outside it.
    engine_.injectLinkFault(1, 0, 3 * prompt);

    machines_[0]->submitPrompt(req);
    sim_.run();

    EXPECT_TRUE(req->finished());
    EXPECT_EQ(engine_.stats().transferFaults, 1u);
    EXPECT_EQ(engine_.stats().transferRetries, 1u);
    EXPECT_EQ(engine_.stats().transferAborts, 0u);
    // Only the successful attempt counts as a transfer.
    EXPECT_EQ(engine_.stats().transfers, 1u);
    EXPECT_EQ(machines_[1]->stats().tokensGenerated, 3);
}

TEST_F(KvTransferTest, ExhaustedRetryBudgetAbortsAndReleasesKv)
{
    std::vector<LiveRequest*> aborted;
    engine_.setOnAbort([&](LiveRequest* r) { aborted.push_back(r); });

    KvRetryPolicy policy;
    policy.maxRetries = 0;
    engine_.setRetryPolicy(policy);
    const sim::TimeUs prompt = perf_.promptTime(1000, 1);
    engine_.injectLinkFault(1, 0, 10 * prompt);

    LiveRequest* req = makeRequest(1000, 4);
    machines_[0]->submitPrompt(req);
    sim_.run();

    ASSERT_EQ(aborted.size(), 1u);
    EXPECT_EQ(aborted[0], req);
    EXPECT_EQ(engine_.stats().transferAborts, 1u);
    EXPECT_EQ(engine_.stats().transferRetries, 0u);
    EXPECT_FALSE(req->finished());
    // Both the source copy and the destination reservation are gone.
    EXPECT_EQ(machines_[0]->mls().blocks().usedTokens(), 0);
    EXPECT_EQ(machines_[1]->mls().blocks().usedTokens(), 0);
}

TEST_F(KvTransferTest, PerAttemptTimeoutCountsAndAborts)
{
    std::vector<LiveRequest*> aborted;
    engine_.setOnAbort([&](LiveRequest* r) { aborted.push_back(r); });

    KvRetryPolicy policy;
    policy.maxRetries = 0;
    policy.timeoutUs = 10;  // far below any real transfer time
    engine_.setRetryPolicy(policy);

    machines_[0]->submitPrompt(makeRequest(128, 4));
    sim_.run();

    EXPECT_EQ(engine_.stats().transferTimeouts, 1u);
    EXPECT_EQ(engine_.stats().transferAborts, 1u);
    EXPECT_EQ(aborted.size(), 1u);
}

TEST_F(KvTransferTest, DegradedLinkStretchesVisibleTime)
{
    // First transfer runs on a clean link.
    machines_[0]->submitPrompt(makeRequest(128, 3));
    sim_.run();
    const auto clean_visible = engine_.stats().totalVisibleUs;
    ASSERT_GT(clean_visible, 0);
    EXPECT_EQ(engine_.stats().degradedTransfers, 0u);

    // Second identical transfer runs inside a 10%-bandwidth window.
    engine_.injectLinkDegrade(1, sim_.now(),
                              sim_.now() + sim::secondsToUs(60.0), 0.1);
    machines_[0]->submitPrompt(makeRequest(128, 3));
    sim_.run();
    EXPECT_EQ(engine_.stats().degradedTransfers, 1u);
    EXPECT_EQ(engine_.stats().transfers, 2u);
    // 10% bandwidth => ~10x the visible time.
    EXPECT_GT(engine_.stats().totalVisibleUs - clean_visible,
              5 * clean_visible);
}

/**
 * Probe the simulation on a fixed grid and kill @p victim at the
 * first instant @p req is observed mid-transfer.
 */
void
failDuringTransfer(sim::Simulator& sim, LiveRequest* req, Machine* victim)
{
    auto killed = std::make_shared<bool>(false);
    constexpr sim::TimeUs kStepUs = 100;
    for (sim::TimeUs t = 0; t < sim::secondsToUs(2.0); t += kStepUs) {
        sim.post(t, [req, victim, killed] {
            if (*killed || req->phase != RequestPhase::kTransferring)
                return;
            *killed = true;
            victim->fail();
        });
    }
}

TEST_F(KvTransferTest, SrcDiesMidFlightReleasesDstReservation)
{
    // Serialized transfer (small prompt): the wire time is long
    // enough for the probe grid to catch the request in flight.
    LiveRequest* req = makeRequest(128, 4);
    failDuringTransfer(sim_, req, machines_[0].get());

    machines_[0]->submitPrompt(req);
    sim_.run();

    ASSERT_TRUE(machines_[0]->failed());
    EXPECT_FALSE(req->finished());
    EXPECT_TRUE(transferred_.empty());
    // The destination's reserved-but-unfilled blocks were released:
    // nothing leaks even with no cluster-level failure handler.
    EXPECT_EQ(machines_[1]->mls().blocks().usedTokens(), 0);
    EXPECT_FALSE(machines_[1]->mls().blocks().holds(req->spec.id));
}

TEST_F(KvTransferTest, DstDiesMidFlightReleasesSrcCopy)
{
    LiveRequest* req = makeRequest(128, 4);
    failDuringTransfer(sim_, req, machines_[1].get());

    machines_[0]->submitPrompt(req);
    sim_.run();

    ASSERT_TRUE(machines_[1]->failed());
    EXPECT_FALSE(req->finished());
    EXPECT_TRUE(transferred_.empty());
    // The source dropped its copy; the dead destination's pool was
    // cleared by fail(). No block is held anywhere for the request.
    EXPECT_EQ(machines_[0]->mls().blocks().usedTokens(), 0);
    EXPECT_EQ(machines_[1]->mls().blocks().usedTokens(), 0);
}

TEST_F(KvTransferTest, RetryDropsWhenEndpointDiesDuringBackoff)
{
    KvRetryPolicy policy;
    policy.maxRetries = 5;
    policy.backoffBaseUs = sim::secondsToUs(1.0);
    engine_.setRetryPolicy(policy);
    const sim::TimeUs prompt = perf_.promptTime(1000, 1);
    engine_.injectLinkFault(1, 0, 3 * prompt);

    LiveRequest* req = makeRequest(1000, 4);
    machines_[0]->submitPrompt(req);
    // The first attempt fails inside the window; the destination dies
    // during the long backoff. The retry must notice and stand down.
    sim_.post(3 * prompt + sim::msToUs(1.0),
                  [this] { machines_[1]->fail(); });
    sim_.run();

    EXPECT_EQ(engine_.stats().transferRetries, 1u);
    // The stand-down is a clean abort: the source copy is released,
    // not stranded.
    EXPECT_EQ(engine_.stats().transferAborts, 1u);
    EXPECT_FALSE(req->finished());
    EXPECT_EQ(machines_[0]->mls().blocks().usedTokens(), 0);
    EXPECT_EQ(machines_[1]->mls().blocks().usedTokens(), 0);
}

}  // namespace
}  // namespace splitwise::engine
