#include "engine/kv_transfer.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hw/machine_spec.h"
#include "model/llm_config.h"
#include "model/memory_model.h"
#include "model/perf_model.h"
#include "sim/simulator.h"

namespace splitwise::engine {
namespace {

/**
 * Two-machine fixture: machine 0 plays the prompt role, machine 1
 * the token role, with the transfer engine between them.
 */
class KvTransferTest : public ::testing::Test {
  protected:
    KvTransferTest()
        : perf_(model::llama2_70b(), hw::dgxH100()),
          memory_(model::llama2_70b(), hw::dgxH100()),
          engine_(sim_, model::llama2_70b())
    {
        Machine::Callbacks cb;
        cb.onRequestDone = [this](Machine&, LiveRequest* req) {
            done_.push_back(req);
        };
        cb.onPromptDone = [this](Machine& m, LiveRequest* req,
                                 sim::TimeUs compute) {
            engine_.startTransfer(req, &m, machines_[1].get(), compute,
                                  [this](LiveRequest* r) {
                                      transferred_.push_back(r);
                                  });
        };
        cb.onMemoryFreed = [this](Machine& m) { engine_.onMemoryFreed(&m); };
        for (int i = 0; i < 2; ++i) {
            machines_.push_back(std::make_unique<Machine>(
                sim_, i, hw::dgxH100(), perf_, memory_, MlsConfig{}, cb));
            engine_.registerMachine(machines_.back().get());
        }
    }

    LiveRequest*
    makeRequest(std::int64_t prompt, std::int64_t output)
    {
        auto req = std::make_unique<LiveRequest>();
        req->spec = {nextId_++, 0, prompt, output};
        req->tokenMachine = 1;
        requests_.push_back(std::move(req));
        return requests_.back().get();
    }

    sim::Simulator sim_;
    model::AnalyticalPerfModel perf_;
    model::MemoryModel memory_;
    std::vector<std::unique_ptr<Machine>> machines_;
    KvTransferEngine engine_;
    std::vector<std::unique_ptr<LiveRequest>> requests_;
    std::vector<LiveRequest*> done_;
    std::vector<LiveRequest*> transferred_;
    std::uint64_t nextId_ = 0;
};

TEST_F(KvTransferTest, RequestSplitsAcrossMachines)
{
    LiveRequest* req = makeRequest(1000, 5);
    machines_[0]->submitPrompt(req);
    sim_.run();
    ASSERT_EQ(done_.size(), 1u);
    ASSERT_EQ(transferred_.size(), 1u);
    EXPECT_TRUE(req->finished());
    // Prompt ran on 0, decode on 1.
    EXPECT_EQ(machines_[0]->stats().promptTokensProcessed, 1000);
    EXPECT_EQ(machines_[0]->stats().tokensGenerated, 1);
    EXPECT_EQ(machines_[1]->stats().tokensGenerated, 4);
    // Both machines released the KV at the end.
    EXPECT_EQ(machines_[0]->tokenLoadTokens(), 0);
    EXPECT_EQ(machines_[1]->tokenLoadTokens(), 0);
}

TEST_F(KvTransferTest, SecondTokenCarriesTransferLatency)
{
    LiveRequest* req = makeRequest(2000, 3);
    machines_[0]->submitPrompt(req);
    sim_.run();
    // The second token's gap exceeds a plain decode iteration by the
    // visible transfer time.
    const double tbt = sim::usToMs(perf_.tokenTime(1, 2001));
    EXPECT_GT(req->secondTokenMs, tbt);
    EXPECT_LT(req->secondTokenMs, tbt + 25.0);
}

TEST_F(KvTransferTest, LargePromptsUseLayerwise)
{
    machines_[0]->submitPrompt(makeRequest(2048, 3));
    sim_.run();
    EXPECT_EQ(engine_.stats().transfers, 1u);
    EXPECT_EQ(engine_.stats().layerwiseTransfers, 1u);
}

TEST_F(KvTransferTest, SmallPromptsUseSerialized)
{
    machines_[0]->submitPrompt(makeRequest(128, 3));
    sim_.run();
    EXPECT_EQ(engine_.stats().transfers, 1u);
    EXPECT_EQ(engine_.stats().layerwiseTransfers, 0u);
}

TEST_F(KvTransferTest, BytesMovedMatchKvSize)
{
    machines_[0]->submitPrompt(makeRequest(1000, 3));
    sim_.run();
    EXPECT_EQ(engine_.stats().bytesMoved,
              1000 * model::llama2_70b().kvBytesPerToken());
}

TEST_F(KvTransferTest, ManyTransfersAllComplete)
{
    for (int i = 0; i < 20; ++i)
        machines_[0]->submitPrompt(makeRequest(600, 4));
    sim_.run();
    EXPECT_EQ(done_.size(), 20u);
    EXPECT_EQ(engine_.stats().transfers, 20u);
}

TEST_F(KvTransferTest, MemoryStallDefersTransferUntilFreed)
{
    // Fill the destination almost completely with a dummy
    // reservation, forcing the transfer to queue.
    LiveRequest* blocker = makeRequest(10, 2);
    const auto capacity = machines_[1]->mls().blocks().tokenCapacity();
    ASSERT_TRUE(machines_[1]->reserveKv(blocker, capacity - 100));

    LiveRequest* req = makeRequest(1000, 3);
    machines_[0]->submitPrompt(req);
    sim_.run();
    // Transfer stalled: request still parked in the transfer phase.
    EXPECT_EQ(engine_.stats().memoryStalls, 1u);
    EXPECT_EQ(req->phase, RequestPhase::kTransferring);
    EXPECT_FALSE(req->finished());

    // Free the blocker; the queued transfer resumes and completes.
    machines_[1]->releaseKv(blocker);
    sim_.run();
    EXPECT_TRUE(req->finished());
    EXPECT_EQ(engine_.stats().transfers, 1u);
}

TEST_F(KvTransferTest, InterferenceOnlyForLayerwise)
{
    LiveRequest* small = makeRequest(128, 2);
    LiveRequest* large = makeRequest(4096, 2);
    const sim::TimeUs compute = perf_.promptTime(4096, 1);
    EXPECT_EQ(engine_.interferenceFor(*machines_[0], small, compute), 0);
    EXPECT_GT(engine_.interferenceFor(*machines_[0], large, compute), 0);
}

TEST_F(KvTransferTest, InterferenceZeroForUnknownDestination)
{
    LiveRequest* req = makeRequest(4096, 2);
    req->tokenMachine = 77;  // not registered
    EXPECT_EQ(engine_.interferenceFor(*machines_[0], req, 1000), 0);
}

TEST_F(KvTransferTest, NicSerializesConcurrentTransfers)
{
    // Two simultaneous small transfers to the same destination must
    // not overlap on the NIC: completion times differ by at least
    // one visible transfer time.
    LiveRequest* a = makeRequest(256, 2);
    LiveRequest* b = makeRequest(256, 2);
    machines_[0]->submitPrompt(a);
    machines_[0]->submitPrompt(b);
    sim_.run();
    EXPECT_EQ(done_.size(), 2u);
    EXPECT_EQ(engine_.stats().transfers, 2u);
    EXPECT_GE(engine_.stats().totalVisibleUs,
              2 * hw::linkBetween(hw::dgxH100(), hw::dgxH100()).setupUs);
}

}  // namespace
}  // namespace splitwise::engine
