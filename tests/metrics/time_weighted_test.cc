#include "metrics/time_weighted.h"

#include <gtest/gtest.h>

namespace splitwise::metrics {
namespace {

TEST(TimeWeightedHistogramTest, EmptyCdfIsZero)
{
    TimeWeightedHistogram h;
    EXPECT_EQ(h.totalTime(), 0);
    EXPECT_DOUBLE_EQ(h.cdfAt(100), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_TRUE(h.cdf().empty());
}

TEST(TimeWeightedHistogramTest, SingleValue)
{
    TimeWeightedHistogram h;
    h.record(5, 100);
    EXPECT_EQ(h.totalTime(), 100);
    EXPECT_DOUBLE_EQ(h.cdfAt(4), 0.0);
    EXPECT_DOUBLE_EQ(h.cdfAt(5), 1.0);
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);
}

TEST(TimeWeightedHistogramTest, CdfIsTimeWeighted)
{
    TimeWeightedHistogram h;
    h.record(1, 300);
    h.record(10, 100);
    EXPECT_DOUBLE_EQ(h.cdfAt(1), 0.75);
    EXPECT_DOUBLE_EQ(h.cdfAt(9), 0.75);
    EXPECT_DOUBLE_EQ(h.cdfAt(10), 1.0);
    EXPECT_DOUBLE_EQ(h.mean(), (1 * 300 + 10 * 100) / 400.0);
}

TEST(TimeWeightedHistogramTest, RepeatedValuesAccumulate)
{
    TimeWeightedHistogram h;
    h.record(2, 50);
    h.record(2, 50);
    EXPECT_EQ(h.totalTime(), 100);
    EXPECT_DOUBLE_EQ(h.cdfAt(2), 1.0);
}

TEST(TimeWeightedHistogramTest, ZeroOrNegativeDurationIgnored)
{
    TimeWeightedHistogram h;
    h.record(1, 0);
    h.record(2, -5);
    EXPECT_EQ(h.totalTime(), 0);
}

TEST(TimeWeightedHistogramTest, CdfStepsAscend)
{
    TimeWeightedHistogram h;
    h.record(3, 10);
    h.record(1, 10);
    h.record(7, 20);
    const auto steps = h.cdf();
    ASSERT_EQ(steps.size(), 3u);
    EXPECT_EQ(steps[0].first, 1);
    EXPECT_EQ(steps[2].first, 7);
    EXPECT_DOUBLE_EQ(steps[2].second, 1.0);
    EXPECT_LT(steps[0].second, steps[1].second);
}

TEST(TimeWeightedHistogramTest, MergeCombines)
{
    TimeWeightedHistogram a;
    a.record(1, 100);
    TimeWeightedHistogram b;
    b.record(2, 100);
    a.merge(b);
    EXPECT_EQ(a.totalTime(), 200);
    EXPECT_DOUBLE_EQ(a.cdfAt(1), 0.5);
}

TEST(TimeWeightedHistogramTest, ClearResets)
{
    TimeWeightedHistogram h;
    h.record(1, 10);
    h.clear();
    EXPECT_EQ(h.totalTime(), 0);
}

TEST(SignalTrackerTest, TracksPiecewiseConstantSignal)
{
    SignalTracker t;
    t.start(0, 0);
    t.set(100, 5);
    t.set(300, 0);
    t.finish(400);
    const auto& h = t.histogram();
    EXPECT_EQ(h.totalTime(), 400);
    // Value 0 held for [0,100) and [300,400): 200us total.
    EXPECT_DOUBLE_EQ(h.cdfAt(0), 0.5);
    EXPECT_DOUBLE_EQ(h.cdfAt(5), 1.0);
}

TEST(SignalTrackerTest, RedundantSetIsCoalesced)
{
    SignalTracker t;
    t.start(0, 1);
    t.set(50, 1);
    t.set(100, 2);
    t.finish(200);
    EXPECT_DOUBLE_EQ(t.histogram().cdfAt(1), 0.5);
}

TEST(SignalTrackerTest, SetBeforeStartActsAsStart)
{
    SignalTracker t;
    t.set(10, 3);
    t.finish(20);
    EXPECT_EQ(t.histogram().totalTime(), 10);
    EXPECT_DOUBLE_EQ(t.histogram().cdfAt(3), 1.0);
}

TEST(SignalTrackerTest, ValueAccessorTracksCurrent)
{
    SignalTracker t;
    t.start(0, 1);
    t.set(10, 9);
    EXPECT_EQ(t.value(), 9);
}


TEST(TimeWeightedTest, EmptyHistogramCdfIsEmptyAndFinite)
{
    TimeWeightedHistogram h;
    EXPECT_TRUE(h.cdf().empty());
    EXPECT_DOUBLE_EQ(h.cdfAt(0), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);

    // Merging empties (an idle controller window) must stay empty.
    TimeWeightedHistogram other;
    h.merge(other);
    EXPECT_TRUE(h.cdf().empty());
    EXPECT_EQ(h.totalTime(), 0);
}

}  // namespace
}  // namespace splitwise::metrics
