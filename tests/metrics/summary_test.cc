#include "metrics/summary.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>

namespace splitwise::metrics {
namespace {

TEST(SummaryTest, EmptyReturnsZeros)
{
    Summary s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(SummaryTest, SingleSample)
{
    Summary s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.p50(), 42.0);
    EXPECT_DOUBLE_EQ(s.p99(), 42.0);
    EXPECT_DOUBLE_EQ(s.min(), 42.0);
    EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(SummaryTest, MeanAndSum)
{
    Summary s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(SummaryTest, MedianInterpolates)
{
    Summary s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.p50(), 2.5);
}

TEST(SummaryTest, PercentilesOnKnownDistribution)
{
    Summary s;
    for (int i = 0; i <= 100; ++i)
        s.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s.percentile(0), 0.0);
    EXPECT_DOUBLE_EQ(s.p50(), 50.0);
    EXPECT_DOUBLE_EQ(s.p90(), 90.0);
    EXPECT_DOUBLE_EQ(s.p99(), 99.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
}

TEST(SummaryTest, PercentileClampsOutOfRange)
{
    Summary s;
    s.add(1.0);
    s.add(2.0);
    EXPECT_DOUBLE_EQ(s.percentile(-5), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(150), 2.0);
}

TEST(SummaryTest, UnsortedInsertOrder)
{
    Summary s;
    for (double v : {9.0, 1.0, 5.0, 3.0, 7.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.p50(), 5.0);
}

TEST(SummaryTest, AddAfterPercentileQueryInvalidatesCache)
{
    Summary s;
    s.add(1.0);
    s.add(2.0);
    EXPECT_DOUBLE_EQ(s.max(), 2.0);
    s.add(10.0);
    EXPECT_DOUBLE_EQ(s.max(), 10.0);
    EXPECT_DOUBLE_EQ(s.p50(), 2.0);
}

TEST(SummaryTest, MergeCombinesSamples)
{
    Summary a;
    a.add(1.0);
    a.add(2.0);
    Summary b;
    b.add(3.0);
    b.add(4.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.5);
    EXPECT_DOUBLE_EQ(a.max(), 4.0);
}

TEST(SummaryTest, ClearResets)
{
    Summary s;
    s.add(5.0);
    s.clear();
    EXPECT_TRUE(s.empty());
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
    s.add(7.0);
    EXPECT_DOUBLE_EQ(s.p50(), 7.0);
}

TEST(SummaryTest, NegativeValues)
{
    Summary s;
    for (double v : {-3.0, -1.0, -2.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.min(), -3.0);
    EXPECT_DOUBLE_EQ(s.p50(), -2.0);
    EXPECT_DOUBLE_EQ(s.mean(), -2.0);
}

TEST(SummaryTest, NanPercentileStaysNanInsteadOfClamping)
{
    Summary s;
    s.add(1.0);
    s.add(2.0);
    // std::clamp on NaN is UB; the guard must return NaN, not 1 or 2.
    EXPECT_TRUE(std::isnan(s.percentile(
        std::numeric_limits<double>::quiet_NaN())));
}

TEST(SummaryTest, HistogramPartitionsTheRange)
{
    Summary s;
    for (int i = 0; i < 100; ++i)
        s.add(static_cast<double>(i));  // [0, 99]
    const auto buckets = s.histogram(4);
    ASSERT_EQ(buckets.size(), 4u);
    std::size_t total = 0;
    for (const auto& b : buckets)
        total += b.count;
    EXPECT_EQ(total, 100u);
    EXPECT_EQ(buckets[0].count, 25u);
    // The top edge is exactly max(), not max() plus rounding fuzz.
    EXPECT_DOUBLE_EQ(buckets.back().upperEdge, 99.0);
}

TEST(SummaryTest, HistogramOfEmptySummaryIsEmpty)
{
    Summary s;
    EXPECT_TRUE(s.histogram(8).empty());
}

TEST(SummaryTest, HistogramDegenerateRangeGetsOneBucket)
{
    Summary s;
    for (int i = 0; i < 5; ++i)
        s.add(7.0);  // min == max
    const auto buckets = s.histogram(8);
    ASSERT_EQ(buckets.size(), 1u);
    EXPECT_DOUBLE_EQ(buckets[0].upperEdge, 7.0);
    EXPECT_EQ(buckets[0].count, 5u);
}

TEST(SummaryTest, HistogramZeroBucketsRoundsUpToOne)
{
    Summary s;
    s.add(1.0);
    s.add(3.0);
    const auto buckets = s.histogram(0);
    ASSERT_EQ(buckets.size(), 1u);
    EXPECT_EQ(buckets[0].count, 2u);
}


TEST(SummaryTest, HistogramIgnoresNonFiniteSamples)
{
    Summary s;
    s.add(1.0);
    s.add(std::numeric_limits<double>::quiet_NaN());
    s.add(3.0);
    s.add(std::numeric_limits<double>::infinity());
    const auto buckets = s.histogram(2);
    ASSERT_EQ(buckets.size(), 2u);
    std::size_t total = 0;
    for (const auto& b : buckets) {
        EXPECT_TRUE(std::isfinite(b.upperEdge));
        total += b.count;
    }
    EXPECT_EQ(total, 2u);  // only the finite samples are bucketed
    EXPECT_DOUBLE_EQ(buckets.back().upperEdge, 3.0);
}

TEST(SummaryTest, HistogramAllNonFiniteIsEmpty)
{
    Summary s;
    s.add(std::numeric_limits<double>::quiet_NaN());
    s.add(std::numeric_limits<double>::infinity());
    EXPECT_TRUE(s.histogram(4).empty());
}

}  // namespace
}  // namespace splitwise::metrics
