#include "metrics/table.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace splitwise::metrics {
namespace {

TEST(TableTest, RendersHeaderAndRows)
{
    Table t({"a", "bb"});
    t.addRow({"1", "2"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| a | bb |"), std::string::npos);
    EXPECT_NE(out.find("| 1 | 2  |"), std::string::npos);
}

TEST(TableTest, ColumnsAlignToWidestCell)
{
    Table t({"x"});
    t.addRow({"wide-cell"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| x         |"), std::string::npos);
}

TEST(TableTest, MismatchedRowThrows)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::runtime_error);
}

TEST(TableTest, FmtFormatsPrecision)
{
    EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(Table::fmt(3.0, 0), "3");
    EXPECT_EQ(Table::fmt(-1.5, 1), "-1.5");
}

TEST(TableTest, EmptyTableRendersHeaderOnly)
{
    Table t({"h1", "h2"});
    const std::string out = t.render();
    // Header line plus rule line.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

}  // namespace
}  // namespace splitwise::metrics
