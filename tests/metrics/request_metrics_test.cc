#include "metrics/request_metrics.h"

#include <gtest/gtest.h>

namespace splitwise::metrics {
namespace {

RequestResult
makeResult(double ttft, double tbt, double e2e, std::int64_t out = 10,
           sim::TimeUs arrival = 0)
{
    RequestResult r;
    r.arrival = arrival;
    r.promptTokens = 100;
    r.outputTokens = out;
    r.ttftMs = ttft;
    r.tbtMs = tbt;
    r.maxTbtMs = tbt * 2;
    r.e2eMs = e2e;
    return r;
}

TEST(RequestMetricsTest, EmptyState)
{
    RequestMetrics m;
    EXPECT_EQ(m.completed(), 0u);
    EXPECT_DOUBLE_EQ(m.throughputRps(), 0.0);
    EXPECT_DOUBLE_EQ(m.tokenThroughput(), 0.0);
}

TEST(RequestMetricsTest, AggregatesLatencies)
{
    RequestMetrics m;
    m.add(makeResult(10, 30, 300));
    m.add(makeResult(20, 40, 400));
    EXPECT_EQ(m.completed(), 2u);
    EXPECT_DOUBLE_EQ(m.ttftMs().mean(), 15.0);
    EXPECT_DOUBLE_EQ(m.tbtMs().mean(), 35.0);
    EXPECT_DOUBLE_EQ(m.e2eMs().mean(), 350.0);
    EXPECT_DOUBLE_EQ(m.maxTbtMs().mean(), 70.0);
}

TEST(RequestMetricsTest, SingleTokenRequestsExcludedFromTbt)
{
    RequestMetrics m;
    m.add(makeResult(10, 0, 10, /*out=*/1));
    m.add(makeResult(10, 50, 300, /*out=*/5));
    EXPECT_EQ(m.tbtMs().count(), 1u);
    EXPECT_DOUBLE_EQ(m.tbtMs().mean(), 50.0);
    EXPECT_EQ(m.ttftMs().count(), 2u);
}

TEST(RequestMetricsTest, TokenTotals)
{
    RequestMetrics m;
    m.add(makeResult(1, 2, 3, 7));
    m.add(makeResult(1, 2, 3, 13));
    EXPECT_EQ(m.totalOutputTokens(), 20);
    EXPECT_EQ(m.totalPromptTokens(), 200);
}

TEST(RequestMetricsTest, ThroughputOverSpan)
{
    RequestMetrics m;
    // Two requests: first arrives at 0, last completes at 2s.
    m.add(makeResult(10, 10, 1000, 10, 0));
    m.add(makeResult(10, 10, 1000, 10, sim::secondsToUs(1)));
    EXPECT_NEAR(m.throughputRps(), 1.0, 1e-9);
    EXPECT_NEAR(m.tokenThroughput(), 10.0, 1e-9);
}

TEST(RequestMetricsTest, MergePreservesCounts)
{
    RequestMetrics a;
    a.add(makeResult(10, 20, 30));
    RequestMetrics b;
    b.add(makeResult(40, 50, 60));
    a.merge(b);
    EXPECT_EQ(a.completed(), 2u);
    EXPECT_DOUBLE_EQ(a.e2eMs().max(), 60.0);
}

TEST(RequestMetricsTest, ResultsKeptInCompletionOrder)
{
    RequestMetrics m;
    auto r1 = makeResult(1, 1, 1);
    r1.requestId = 7;
    auto r2 = makeResult(2, 2, 2);
    r2.requestId = 3;
    m.add(r1);
    m.add(r2);
    ASSERT_EQ(m.results().size(), 2u);
    EXPECT_EQ(m.results()[0].requestId, 7u);
    EXPECT_EQ(m.results()[1].requestId, 3u);
}

}  // namespace
}  // namespace splitwise::metrics
