/**
 * @file
 * Golden-report regression tests: small, fast variants of the
 * bench_fig12 and bench_table5 configurations whose full serialized
 * run reports are checked in under tests/golden/data/. Any change to
 * scheduling, pricing, or accounting that moves a number shows up as
 * a diff here before it can silently skew the paper figures.
 *
 * After an intentional behavior change, refresh the goldens with
 * tools/update_goldens.sh (runs this binary with
 * SPLITWISE_UPDATE_GOLDENS=1) and commit the diff.
 *
 * Numbers are compared with a tight relative tolerance rather than
 * byte equality so the goldens survive compiler FP-contraction
 * differences; structure and strings must match exactly.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/designs.h"
#include "core/json.h"
#include "core/report_io.h"
#include "model/llm_config.h"
#include "sched/policy.h"
#include "workload/multi_turn.h"
#include "workload/trace_gen.h"
#include "workload/workloads.h"

namespace splitwise::core {
namespace {

/** Fig. 12 in miniature: a 2p/2t Splitwise-HH cluster under the
 *  conversation workload at moderate load. */
std::string
fig12SmallReport()
{
    workload::TraceGenerator gen(workload::conversation(), 42);
    const auto trace = gen.generate(5.0, sim::secondsToUs(10));
    SimConfig config;
    config.kvRetry.maxRetries = 2;
    Cluster cluster(model::llama2_70b(), splitwiseHH(2, 2), config);
    return reportToJson(cluster.run(trace));
}

/** Table 5 in miniature: an H100 baseline under the coding
 *  workload, with the SLO section included. */
std::string
table5SmallReport()
{
    workload::TraceGenerator gen(workload::coding(), 7);
    const auto trace = gen.generate(3.0, sim::secondsToUs(10));
    Cluster cluster(model::llama2_70b(), baselineH100(2));
    const RunReport report = cluster.run(trace);
    const SloChecker checker(model::llama2_70b());
    const SloReport slo = checker.evaluate(report.requests, SloSet{});
    return reportToJson(report, &slo);
}

/** The bench_ablation_prefix --short 5P+5T cell in miniature:
 *  multi-turn sessions under the prefix-cache policy, pinning the
 *  hit/miss/evict accounting, the per-pool load shift, and the TTFT
 *  tail of KV reuse. */
std::string
prefixSmallReport()
{
    workload::MultiTurnConfig mt = workload::defaultMultiTurnConfig();
    mt.thinkTimeMeanS = 2.0;
    workload::MultiTurnTraceGenerator gen(mt, 42);
    const auto trace = gen.generate(4.0, sim::secondsToUs(8));
    SimConfig config;
    config.policy.kind = sched::PolicyKind::kPrefixCache;
    config.policy.maxContextTokens = mt.maxContextTokens;
    Cluster cluster(model::llama2_70b(), splitwiseHH(5, 5), config);
    return reportToJson(cluster.run(trace));
}

std::string
goldenPath(const std::string& file)
{
    return std::string(SPLITWISE_GOLDEN_DIR) + "/" + file;
}

std::string
readFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        ADD_FAILURE() << "missing golden " << path
                      << " - run tools/update_goldens.sh";
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/** Structural JSON comparison: exact for types, keys, strings, and
 *  booleans; relative 1e-9 for numbers. */
void
expectJsonNear(const JsonValue& golden, const JsonValue& actual,
               const std::string& where)
{
    ASSERT_EQ(golden.type(), actual.type()) << where;
    switch (golden.type()) {
      case JsonValue::Type::kNumber: {
        const double g = golden.asNumber();
        const double a = actual.asNumber();
        const double tol = 1e-9 * std::max(1.0, std::fabs(g));
        EXPECT_NEAR(a, g, tol) << where;
        break;
      }
      case JsonValue::Type::kString:
        EXPECT_EQ(golden.asString(), actual.asString()) << where;
        break;
      case JsonValue::Type::kBool:
        EXPECT_EQ(golden.asBool(), actual.asBool()) << where;
        break;
      case JsonValue::Type::kArray: {
        ASSERT_EQ(golden.size(), actual.size()) << where;
        for (std::size_t i = 0; i < golden.size(); ++i) {
            expectJsonNear(golden.at(i), actual.at(i),
                           where + "[" + std::to_string(i) + "]");
        }
        break;
      }
      case JsonValue::Type::kObject: {
        ASSERT_EQ(golden.members().size(), actual.members().size())
            << where;
        for (const auto& [key, value] : golden.members()) {
            ASSERT_TRUE(actual.has(key)) << where << "." << key;
            expectJsonNear(value, actual.at(key), where + "." + key);
        }
        break;
      }
      case JsonValue::Type::kNull:
        break;
    }
}

void
checkGolden(const std::string& file, const std::string& actual)
{
    const std::string path = goldenPath(file);
    if (std::getenv("SPLITWISE_UPDATE_GOLDENS") != nullptr) {
        std::ofstream out(path);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << actual << '\n';
        return;
    }
    const std::string golden = readFile(path);
    if (golden.empty())
        return;  // readFile already failed the test.
    expectJsonNear(JsonValue::parse(golden), JsonValue::parse(actual),
                   file);
}

TEST(GoldenReportTest, Fig12SmallMatchesGolden)
{
    checkGolden("fig12_small.json", fig12SmallReport());
}

TEST(GoldenReportTest, Table5SmallMatchesGolden)
{
    checkGolden("table5_small.json", table5SmallReport());
}

TEST(GoldenReportTest, PrefixSmallMatchesGolden)
{
    const std::string actual = prefixSmallReport();
    // The prefix policy must actually engage in the pinned
    // configuration; a silent fall-back to the default path would
    // otherwise golden an empty cache.
    const ReportDigest digest = reportDigestFromJson(actual);
    ASSERT_TRUE(digest.hasPrefixCache);
    ASSERT_GT(digest.prefixHits, 0u);
    checkGolden("prefix_small.json", actual);
}

/** The golden inputs themselves are deterministic - a regression
 *  here means flaky goldens, not a behavior change. */
TEST(GoldenReportTest, GoldenConfigurationsAreDeterministic)
{
    EXPECT_EQ(fig12SmallReport(), fig12SmallReport());
    EXPECT_EQ(table5SmallReport(), table5SmallReport());
    EXPECT_EQ(prefixSmallReport(), prefixSmallReport());
}

}  // namespace
}  // namespace splitwise::core
