#include "core/slo.h"

#include <gtest/gtest.h>

#include "model/llm_config.h"

namespace splitwise::core {
namespace {

metrics::RequestResult
resultWithSlowdown(const SloChecker& checker, std::int64_t prompt,
                   std::int64_t output, double slowdown)
{
    metrics::RequestResult r;
    r.promptTokens = prompt;
    r.outputTokens = output;
    r.ttftMs = checker.refTtftMs(prompt) * slowdown;
    const std::int64_t ctx = prompt + output / 2;
    r.tbtMs = checker.refTbtMs(ctx) * slowdown;
    workload::Request spec;
    spec.promptTokens = prompt;
    spec.outputTokens = output;
    r.e2eMs = checker.refE2eMs(spec) * slowdown;
    return r;
}

class SloTest : public ::testing::Test {
  protected:
    SloChecker checker_{model::llama2_70b()};
    SloSet slos_;
};

TEST_F(SloTest, TableViDefaults)
{
    EXPECT_DOUBLE_EQ(slos_.ttft.p50, 2.0);
    EXPECT_DOUBLE_EQ(slos_.ttft.p90, 3.0);
    EXPECT_DOUBLE_EQ(slos_.ttft.p99, 6.0);
    EXPECT_DOUBLE_EQ(slos_.tbt.p50, 1.25);
    EXPECT_DOUBLE_EQ(slos_.tbt.p99, 5.0);
    EXPECT_DOUBLE_EQ(slos_.e2e.p50, 1.25);
}

TEST_F(SloTest, ReferenceIsUncontendedA100)
{
    // The reference model prices requests on a DGX-A100 without
    // contention (Table VI definition).
    EXPECT_NEAR(checker_.refTtftMs(1500), 185.0, 18.0);
    EXPECT_NEAR(checker_.refTbtMs(1024), 43.0, 6.0);
}

TEST_F(SloTest, RefE2eComposesPhases)
{
    workload::Request spec;
    spec.promptTokens = 1000;
    spec.outputTokens = 100;
    const double e2e = checker_.refE2eMs(spec);
    EXPECT_GT(e2e, checker_.refTtftMs(1000));
    EXPECT_NEAR(e2e,
                checker_.refTtftMs(1000) + 99 * checker_.refTbtMs(1050),
                1.0);
}

TEST_F(SloTest, UncontendedRunPasses)
{
    metrics::RequestMetrics m;
    for (int i = 0; i < 100; ++i)
        m.add(resultWithSlowdown(checker_, 1000 + i, 50, 1.0));
    const SloReport report = checker_.evaluate(m, slos_);
    EXPECT_TRUE(report.pass);
    EXPECT_TRUE(report.violation.empty());
    EXPECT_NEAR(report.e2eSlowdown.p50, 1.0, 0.01);
}

TEST_F(SloTest, MildSlowdownStillPasses)
{
    metrics::RequestMetrics m;
    for (int i = 0; i < 100; ++i)
        m.add(resultWithSlowdown(checker_, 1000, 50, 1.2));
    EXPECT_TRUE(checker_.evaluate(m, slos_).pass);
}

TEST_F(SloTest, MedianViolationFails)
{
    metrics::RequestMetrics m;
    for (int i = 0; i < 100; ++i)
        m.add(resultWithSlowdown(checker_, 1000, 50, 1.3));
    const SloReport report = checker_.evaluate(m, slos_);
    EXPECT_FALSE(report.pass);
    // TBT and E2E p50 limits (1.25x) are the binding ones.
    EXPECT_FALSE(report.violation.empty());
}

TEST_F(SloTest, TailViolationFails)
{
    metrics::RequestMetrics m;
    // 95 fast requests, 5 disastrous ones: p99 breaches.
    for (int i = 0; i < 95; ++i)
        m.add(resultWithSlowdown(checker_, 1000, 50, 1.0));
    for (int i = 0; i < 5; ++i)
        m.add(resultWithSlowdown(checker_, 1000, 50, 8.0));
    const SloReport report = checker_.evaluate(m, slos_);
    EXPECT_FALSE(report.pass);
    EXPECT_NE(report.violation.find("p99"), std::string::npos);
}

TEST_F(SloTest, TtftSlowdownOfTwoIsAcceptable)
{
    // TTFT is deliberately looser (Table VI): 2x at the median.
    metrics::RequestMetrics m;
    for (int i = 0; i < 100; ++i) {
        auto r = resultWithSlowdown(checker_, 1000, 50, 1.0);
        r.ttftMs *= 1.9;
        m.add(r);
    }
    EXPECT_TRUE(checker_.evaluate(m, slos_).pass);
}

TEST_F(SloTest, SingleTokenRequestsSkipTbt)
{
    metrics::RequestMetrics m;
    for (int i = 0; i < 10; ++i)
        m.add(resultWithSlowdown(checker_, 500, 1, 1.0));
    const SloReport report = checker_.evaluate(m, slos_);
    EXPECT_TRUE(report.pass);
    EXPECT_DOUBLE_EQ(report.tbtSlowdown.p50, 0.0);
}

TEST_F(SloTest, CustomSlosRespected)
{
    SloSet strict;
    strict.e2e = {1.01, 1.02, 1.05};
    metrics::RequestMetrics m;
    for (int i = 0; i < 100; ++i)
        m.add(resultWithSlowdown(checker_, 1000, 50, 1.1));
    EXPECT_FALSE(checker_.evaluate(m, strict).pass);
}

}  // namespace
}  // namespace splitwise::core
