#include "core/recording.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include "core/cluster.h"
#include "core/designs.h"
#include "core/ingress.h"
#include "core/report_io.h"
#include "core/run.h"
#include "model/llm_config.h"
#include "sim/clock.h"
#include "testing/invariants.h"
#include "workload/trace_stream.h"

namespace splitwise::core {
namespace {

RunOptions
liveOptions()
{
    RunOptions options;
    options.llm = model::llama2_70b();
    options.design = splitwiseHH(1, 1);
    return options;
}

/**
 * Drive a live session from @p submitters concurrent client threads
 * (each issuing @p per_thread requests, cancelling every third one
 * mid-flight) and return (capture, live report).
 */
std::pair<SessionRecording, RunReport>
runLiveSession(int submitters, int per_thread)
{
    Ingress ingress;
    sim::SimClock clock;
    SessionRecording capture;
    RunReport report;
    std::thread serve_thread([&] {
        report = runLive(liveOptions(), ingress, clock, &capture);
    });

    std::vector<std::thread> clients;
    clients.reserve(static_cast<std::size_t>(submitters));
    for (int t = 0; t < submitters; ++t) {
        clients.emplace_back([&ingress, per_thread, t] {
            for (int i = 0; i < per_thread; ++i) {
                IngressRequest spec;
                spec.promptTokens = 64 + 13 * ((t + i) % 7);
                spec.outputTokens = 4 + (i % 5);
                RequestHandle handle = ingress.submit(spec);
                ASSERT_TRUE(handle.valid());
                if (i % 3 == 0) {
                    // Cancel some requests mid-flight; the rest run
                    // to completion unowned.
                    handle.cancel();
                } else {
                    (void)handle.detach();
                }
            }
        });
    }
    for (std::thread& t : clients)
        t.join();
    ingress.shutdown();
    serve_thread.join();
    EXPECT_EQ(ingress.unresolved(), 0u);
    return {std::move(capture), std::move(report)};
}

TEST(RecordReplayTest, ConcurrentLiveSessionReplaysBitExact)
{
    auto [capture, live_report] = runLiveSession(3, 10);
    ASSERT_EQ(capture.requests.size(), 30u);
    EXPECT_FALSE(capture.cancels.empty());

    // Stamps are strictly increasing and unique: the recorded op
    // order *is* the event order.
    for (std::size_t i = 1; i < capture.requests.size(); ++i) {
        EXPECT_GT(capture.requests[i].arrival,
                  capture.requests[i - 1].arrival);
    }

    const RunReport replayed = replay(liveOptions(), capture);
    EXPECT_EQ(reportToJson(live_report), reportToJson(replayed));
}

TEST(RecordReplayTest, ReplayIsDeterministicUnderInvariantChecker)
{
    auto [capture, live_report] = runLiveSession(2, 8);

    auto replay_once = [&] {
        const RunOptions options = liveOptions();
        Cluster cluster(options.llm, options.design, options.sim);
        testing::InvariantChecker checker(cluster);
        for (const auto& cancel : capture.cancels)
            cluster.scheduleCancel(cancel.requestId, cancel.at);
        workload::VectorTraceStream stream(capture.requests);
        const RunReport report = cluster.run(stream);
        checker.finalCheck(report);
        return reportToJson(report);
    };

    const std::string first = replay_once();
    const std::string second = replay_once();
    EXPECT_EQ(first, second);
    EXPECT_EQ(first, reportToJson(live_report));
}

TEST(RecordReplayTest, JsonRoundTripPreservesTheSession)
{
    auto [capture, live_report] = runLiveSession(2, 5);
    const SessionRecording reloaded =
        SessionRecording::fromJson(capture.toJson());
    ASSERT_EQ(reloaded.requests.size(), capture.requests.size());
    ASSERT_EQ(reloaded.cancels.size(), capture.cancels.size());
    for (std::size_t i = 0; i < capture.requests.size(); ++i) {
        EXPECT_EQ(reloaded.requests[i].id, capture.requests[i].id);
        EXPECT_EQ(reloaded.requests[i].arrival,
                  capture.requests[i].arrival);
        EXPECT_EQ(reloaded.requests[i].promptTokens,
                  capture.requests[i].promptTokens);
        EXPECT_EQ(reloaded.requests[i].outputTokens,
                  capture.requests[i].outputTokens);
    }
    const RunReport replayed = replay(liveOptions(), reloaded);
    EXPECT_EQ(reportToJson(live_report), reportToJson(replayed));
}

TEST(RecordReplayTest, SessionPrefixPolicySessionsReplayBitExact)
{
    // Sequential multi-turn session under the prefix-cache policy:
    // live serving must reuse prefixes exactly as replay does.
    RunOptions options = liveOptions();
    options.sim.policy.kind = sched::PolicyKind::kPrefixCache;

    Ingress ingress;
    sim::SimClock clock;
    SessionRecording capture;
    RunReport report;
    std::thread serve_thread([&] {
        report = runLive(options, ingress, clock, &capture);
    });
    for (int turn = 0; turn < 4; ++turn) {
        IngressRequest spec;
        spec.promptTokens = 128 * (turn + 1);
        spec.outputTokens = 8;
        spec.session = 77;
        spec.turn = turn;
        // Sequential turns: wait for each to finish before the next,
        // as a chat client would.
        std::atomic<bool> done{false};
        RequestHandle handle =
            ingress.submit(spec, [&done](const TokenUpdate& update) {
                if (update.finished || update.rejected)
                    done.store(true);
            });
        ASSERT_TRUE(handle.valid());
        while (!done.load())
            std::this_thread::yield();
        (void)handle.detach();
    }
    ingress.shutdown();
    serve_thread.join();

    EXPECT_TRUE(report.prefixCache.enabled);
    EXPECT_GT(report.prefixCache.hits, 0u);

    const RunReport replayed = replay(options, capture);
    EXPECT_EQ(reportToJson(report), reportToJson(replayed));
}

}  // namespace
}  // namespace splitwise::core
