#include "core/designs.h"

#include <gtest/gtest.h>

namespace splitwise::core {
namespace {

TEST(DesignsTest, BaselinesAreNotSplitwise)
{
    EXPECT_FALSE(baselineA100(4).splitwise);
    EXPECT_FALSE(baselineH100(4).splitwise);
    EXPECT_EQ(baselineA100(4).numPrompt, 4);
    EXPECT_EQ(baselineA100(4).numToken, 0);
}

TEST(DesignsTest, SplitwiseVariantsCarryTableVSpecs)
{
    const ClusterDesign aa = splitwiseAA(3, 2);
    EXPECT_TRUE(aa.splitwise);
    EXPECT_EQ(aa.promptSpec.name, "DGX-A100");
    EXPECT_EQ(aa.tokenSpec.name, "DGX-A100");

    const ClusterDesign ha = splitwiseHA(3, 2);
    EXPECT_EQ(ha.promptSpec.name, "DGX-H100");
    EXPECT_EQ(ha.tokenSpec.name, "DGX-A100");

    const ClusterDesign hhcap = splitwiseHHcap(3, 2);
    EXPECT_DOUBLE_EQ(hhcap.promptSpec.gpuPowerCapFraction, 1.0);
    EXPECT_DOUBLE_EQ(hhcap.tokenSpec.gpuPowerCapFraction, 0.5);
}

TEST(DesignsTest, MachineCountSums)
{
    EXPECT_EQ(splitwiseHH(27, 3).machines(), 30);
}

TEST(DesignsTest, FootprintAggregates)
{
    const ClusterDesign ha = splitwiseHA(2, 3);
    const hw::FleetFootprint f = ha.footprint();
    EXPECT_EQ(f.machines, 5);
    EXPECT_DOUBLE_EQ(f.costPerHour, 2 * 38.0 + 3 * 17.6);
}

TEST(DesignsTest, HHcapTokenPoolDrawsLessPower)
{
    const auto capped = splitwiseHHcap(1, 1).footprint();
    const auto uncapped = splitwiseHH(1, 1).footprint();
    EXPECT_LT(capped.powerWatts, uncapped.powerWatts);
}

TEST(DesignsTest, WithCountsPreservesEverythingElse)
{
    const ClusterDesign d = splitwiseHA(2, 3).withCounts(10, 20);
    EXPECT_EQ(d.numPrompt, 10);
    EXPECT_EQ(d.numToken, 20);
    EXPECT_EQ(d.name, "Splitwise-HA");
    EXPECT_TRUE(d.splitwise);
}

}  // namespace
}  // namespace splitwise::core
