/**
 * @file
 * Concurrent-ingress stress: N submitter threads hammer one serve
 * loop while it runs. Built into the CI ThreadSanitizer job, so any
 * data race between client threads and the serving thread is a test
 * failure, not a latent bug. Asserts request conservation: every
 * accepted submit resolves terminally, exactly once.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/cluster.h"
#include "core/designs.h"
#include "core/ingress.h"
#include "core/run.h"
#include "model/llm_config.h"
#include "sim/clock.h"

namespace splitwise::core {
namespace {

TEST(IngressThreadsTest, ConcurrentSubmittersConserveRequests)
{
    constexpr int kThreads = 8;
    constexpr int kPerThread = 50;

    RunOptions options;
    options.llm = model::llama2_70b();
    options.design = splitwiseHH(1, 1);

    Ingress ingress;
    sim::SimClock clock;
    RunReport report;
    std::thread serve_thread(
        [&] { report = runLive(options, ingress, clock); });

    // Every submission must see exactly one terminal update.
    std::atomic<std::uint64_t> terminals{0};
    std::atomic<std::uint64_t> double_terminals{0};

    std::vector<std::thread> submitters;
    submitters.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        submitters.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                IngressRequest spec;
                spec.promptTokens = 32 + (t * kPerThread + i) % 96;
                spec.outputTokens = 1 + i % 4;
                auto seen = std::make_shared<std::atomic<int>>(0);
                RequestHandle handle = ingress.submit(
                    spec,
                    [seen, &terminals,
                     &double_terminals](const TokenUpdate& update) {
                        if (update.finished || update.rejected) {
                            if (seen->fetch_add(1) == 0)
                                terminals.fetch_add(1);
                            else
                                double_terminals.fetch_add(1);
                        }
                    });
                if (handle.valid()) {
                    if (i % 5 == 0)
                        handle.cancel();
                    else
                        (void)handle.detach();
                }
            }
        });
    }
    for (std::thread& t : submitters)
        t.join();
    ingress.shutdown();
    serve_thread.join();

    EXPECT_EQ(ingress.accepted(),
              static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(terminals.load(),
              static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(double_terminals.load(), 0u);
    EXPECT_EQ(ingress.unresolved(), 0u);
    EXPECT_EQ(ingress.completed() + ingress.rejectedByAdmission() +
                  ingress.rejectedAtShutdown(),
              ingress.accepted());
}

TEST(IngressThreadsTest, ShutdownRacesWithSubmitters)
{
    RunOptions options;
    options.llm = model::llama2_70b();
    options.design = splitwiseHH(1, 1);

    Ingress ingress;
    sim::SimClock clock;
    std::thread serve_thread([&] { runLive(options, ingress, clock); });

    std::atomic<std::uint64_t> terminals{0};
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
        submitters.emplace_back([&] {
            for (int i = 0; i < 25; ++i) {
                IngressRequest spec;
                spec.promptTokens = 64;
                spec.outputTokens = 2;
                RequestHandle handle = ingress.submit(
                    spec, [&terminals](const TokenUpdate& update) {
                        if (update.finished || update.rejected)
                            terminals.fetch_add(1);
                    });
                if (handle.valid())
                    (void)handle.detach();
                else
                    std::this_thread::yield();
            }
        });
    }
    // Shut down while submitters are still running: late submissions
    // must be rejected inline or resolved by endServe, never lost.
    ingress.shutdown();
    for (std::thread& t : submitters)
        t.join();
    serve_thread.join();

    EXPECT_EQ(ingress.unresolved(), 0u);
    EXPECT_EQ(ingress.completed() + ingress.rejectedByAdmission() +
                  ingress.rejectedAtShutdown(),
              ingress.accepted());
}

}  // namespace
}  // namespace splitwise::core
