#include "core/fault_plan.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/time.h"

namespace splitwise::core {
namespace {

FaultStormConfig
stormConfig(int machines = 8)
{
    FaultStormConfig config;
    config.numMachines = machines;
    config.horizonUs = sim::secondsToUs(20.0);
    return config;
}

TEST(FaultPlanTest, StormIsDeterministicPerSeed)
{
    const FaultPlan a = makeFaultStorm(stormConfig(), 42);
    const FaultPlan b = makeFaultStorm(stormConfig(), 42);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.events[i].kind, b.events[i].kind);
        EXPECT_EQ(a.events[i].machineId, b.events[i].machineId);
        EXPECT_EQ(a.events[i].at, b.events[i].at);
        EXPECT_EQ(a.events[i].durationUs, b.events[i].durationUs);
        EXPECT_EQ(a.events[i].factor, b.events[i].factor);
    }
}

TEST(FaultPlanTest, DifferentSeedsDiffer)
{
    const FaultPlan a = makeFaultStorm(stormConfig(), 1);
    const FaultPlan b = makeFaultStorm(stormConfig(), 2);
    bool any_difference = false;
    for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
        if (a.events[i].machineId != b.events[i].machineId ||
            a.events[i].at != b.events[i].at) {
            any_difference = true;
        }
    }
    EXPECT_TRUE(any_difference);
}

TEST(FaultPlanTest, StormMatchesConfiguredCounts)
{
    FaultStormConfig config = stormConfig();
    config.crashes = 3;
    config.slowdowns = 4;
    config.linkFaults = 5;
    config.linkDegrades = 2;
    const FaultPlan plan = makeFaultStorm(config, 7);
    EXPECT_EQ(plan.count(FaultKind::kCrash), 3u);
    EXPECT_EQ(plan.count(FaultKind::kSlowdown), 4u);
    EXPECT_EQ(plan.count(FaultKind::kLinkFault), 5u);
    EXPECT_EQ(plan.count(FaultKind::kLinkDegrade), 2u);
    EXPECT_EQ(plan.size(), 14u);
}

TEST(FaultPlanTest, StormNeverCrashesSameMachineTwice)
{
    FaultStormConfig config = stormConfig(6);
    config.crashes = 5;
    const FaultPlan plan = makeFaultStorm(config, 11);
    std::vector<int> crashed;
    for (const auto& e : plan.events) {
        if (e.kind != FaultKind::kCrash)
            continue;
        for (int seen : crashed)
            EXPECT_NE(seen, e.machineId);
        crashed.push_back(e.machineId);
        // Transient: every storm crash has a recovery.
        EXPECT_GT(e.durationUs, 0);
    }
    EXPECT_EQ(crashed.size(), 5u);
}

TEST(FaultPlanTest, StormEventsSortedAndInHorizon)
{
    const FaultPlan plan = makeFaultStorm(stormConfig(), 3);
    const auto horizon = stormConfig().horizonUs;
    sim::TimeUs prev = 0;
    for (const auto& e : plan.events) {
        EXPECT_GE(e.at, prev);
        EXPECT_LT(e.at, horizon);
        prev = e.at;
    }
}

TEST(FaultPlanTest, ValidateRejectsBadEvents)
{
    FaultPlan plan;
    plan.add({FaultKind::kCrash, /*machineId=*/9, 0, 0, 1.0});
    EXPECT_THROW(plan.validate(/*num_machines=*/4), std::runtime_error);

    FaultPlan degrade;
    degrade.add({FaultKind::kLinkDegrade, 0, 0, sim::secondsToUs(1.0),
                 /*factor=*/1.5});
    EXPECT_THROW(degrade.validate(4), std::runtime_error);

    FaultPlan empty_window;
    empty_window.add({FaultKind::kLinkFault, 0, 0, /*durationUs=*/0, 1.0});
    EXPECT_THROW(empty_window.validate(4), std::runtime_error);

    FaultPlan ok;
    ok.add({FaultKind::kCrash, 0, 0, sim::secondsToUs(5.0), 1.0});
    ok.add({FaultKind::kSlowdown, 1, 10, sim::secondsToUs(1.0), 2.0});
    EXPECT_NO_THROW(ok.validate(4));
}

TEST(FaultPlanTest, StormRefusesToKillWholeCluster)
{
    FaultStormConfig config = stormConfig(3);
    config.crashes = 3;
    EXPECT_THROW(makeFaultStorm(config, 1), std::runtime_error);
}

TEST(FaultPlanTest, KindNames)
{
    EXPECT_STREQ(faultKindName(FaultKind::kCrash), "crash");
    EXPECT_STREQ(faultKindName(FaultKind::kSlowdown), "slowdown");
    EXPECT_STREQ(faultKindName(FaultKind::kLinkFault), "link-fault");
    EXPECT_STREQ(faultKindName(FaultKind::kLinkDegrade), "link-degrade");
}

}  // namespace
}  // namespace splitwise::core
