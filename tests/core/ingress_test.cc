#include "core/ingress.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "core/cluster.h"
#include "core/designs.h"
#include "core/recording.h"
#include "model/llm_config.h"
#include "sim/clock.h"

namespace splitwise::core {
namespace {

/** A serve loop on a worker thread with a SimClock: virtual-time
 *  live serving, the configuration every test here drives. */
class ServeFixture {
  public:
    explicit ServeFixture(SessionRecording* capture = nullptr)
        : cluster_(model::llama2_70b(), splitwiseHH(1, 1))
    {
        thread_ = std::thread([this, capture] {
            report_ = cluster_.serve(ingress_, clock_, capture);
        });
    }

    ~ServeFixture()
    {
        if (thread_.joinable()) {
            ingress_.shutdown();
            thread_.join();
        }
    }

    Ingress& ingress() { return ingress_; }

    const RunReport&
    finish()
    {
        ingress_.shutdown();
        thread_.join();
        return report_;
    }

  private:
    Cluster cluster_;
    Ingress ingress_;
    sim::SimClock clock_;
    std::thread thread_;
    RunReport report_;
};

/** Collects one request's stream; thread-safe. */
struct StreamLog {
    std::mutex mu;
    std::vector<TokenUpdate> updates;

    StreamCallback
    callback()
    {
        return [this](const TokenUpdate& update) {
            std::lock_guard<std::mutex> lock(mu);
            updates.push_back(update);
        };
    }

    bool
    terminal()
    {
        std::lock_guard<std::mutex> lock(mu);
        return !updates.empty() &&
               (updates.back().finished || updates.back().rejected);
    }

    std::vector<TokenUpdate>
    snapshot()
    {
        std::lock_guard<std::mutex> lock(mu);
        return updates;
    }
};

void
awaitTerminal(StreamLog& log)
{
    while (!log.terminal())
        std::this_thread::yield();
}

IngressRequest
request(std::int64_t prompt, std::int64_t output)
{
    IngressRequest r;
    r.promptTokens = prompt;
    r.outputTokens = output;
    return r;
}

TEST(IngressTest, StreamsMonotoneTokensToTerminal)
{
    ServeFixture serve;
    StreamLog log;
    RequestHandle handle =
        serve.ingress().submit(request(128, 5), log.callback());
    ASSERT_TRUE(handle.valid());
    awaitTerminal(log);
    const auto updates = log.snapshot();
    ASSERT_EQ(updates.size(), 5u);
    for (std::size_t i = 0; i < updates.size(); ++i) {
        EXPECT_EQ(updates[i].tokensGenerated,
                  static_cast<std::int64_t>(i + 1));
        EXPECT_EQ(updates[i].requestId, handle.id());
        EXPECT_EQ(updates[i].finished, i + 1 == updates.size());
        if (i > 0)
            EXPECT_GT(updates[i].at, updates[i - 1].at);
    }
    (void)handle.detach();
    const RunReport& report = serve.finish();
    EXPECT_EQ(report.requests.completed(), 1u);
    EXPECT_EQ(serve.ingress().unresolved(), 0u);
}

/**
 * Under SimClock, virtual time outruns wall time: a cancel issued
 * "while streaming" loses the race unless the stream is held back.
 * The callback (on the serving thread) blocks at the first token
 * until the client thread has enqueued its cancel, making the
 * cancel-before-completion ordering deterministic.
 */
TEST(IngressTest, CancelClampsTheStream)
{
    ServeFixture serve;
    StreamLog log;
    std::atomic<bool> cancel_enqueued{false};
    RequestHandle handle = serve.ingress().submit(
        request(128, 2000), [&](const TokenUpdate& update) {
            log.callback()(update);
            // Publish the update first, then hold the stream until
            // the client's cancel is in the mailbox.
            if (update.tokensGenerated == 1) {
                while (!cancel_enqueued.load())
                    std::this_thread::yield();
            }
        });
    ASSERT_TRUE(handle.valid());
    while (log.snapshot().empty())
        std::this_thread::yield();
    handle.cancel();
    cancel_enqueued.store(true);
    awaitTerminal(log);
    const auto updates = log.snapshot();
    EXPECT_TRUE(updates.back().finished);
    // Clamped at the next token boundary, far below the budget.
    EXPECT_LT(updates.back().tokensGenerated, 2000);
    serve.finish();
    EXPECT_EQ(serve.ingress().unresolved(), 0u);
}

TEST(IngressTest, DroppingTheHandleAutoCancels)
{
    ServeFixture serve;
    StreamLog log;
    std::atomic<bool> dropped{false};
    {
        RequestHandle handle = serve.ingress().submit(
            request(128, 2000), [&](const TokenUpdate& update) {
                log.callback()(update);
                if (update.tokensGenerated == 1) {
                    while (!dropped.load())
                        std::this_thread::yield();
                }
            });
        ASSERT_TRUE(handle.valid());
        while (log.snapshot().empty())
            std::this_thread::yield();
        // Handle goes out of scope here: auto-cancel.
    }
    dropped.store(true);
    awaitTerminal(log);
    EXPECT_LT(log.snapshot().back().tokensGenerated, 2000);
    serve.finish();
    EXPECT_EQ(serve.ingress().cancelsRequested(), 1u);
    EXPECT_EQ(serve.ingress().unresolved(), 0u);
}

TEST(IngressTest, SubmitAfterShutdownIsRejectedInline)
{
    ServeFixture serve;
    serve.finish();
    StreamLog log;
    RequestHandle handle =
        serve.ingress().submit(request(128, 4), log.callback());
    EXPECT_FALSE(handle.valid());
    const auto updates = log.snapshot();
    ASSERT_EQ(updates.size(), 1u);
    EXPECT_TRUE(updates.back().rejected);
    EXPECT_EQ(serve.ingress().unresolved(), 0u);
}

TEST(IngressTest, CancelUnknownIdIsANoop)
{
    ServeFixture serve;
    serve.ingress().cancel(12345);
    StreamLog log;
    RequestHandle handle =
        serve.ingress().submit(request(64, 2), log.callback());
    ASSERT_TRUE(handle.valid());
    awaitTerminal(log);
    (void)handle.detach();
    const RunReport& report = serve.finish();
    EXPECT_EQ(report.requests.completed(), 1u);
}

TEST(IngressTest, InspectSeesTheLiveCluster)
{
    ServeFixture serve;
    StreamLog log;
    RequestHandle handle =
        serve.ingress().submit(request(128, 3), log.callback());
    ASSERT_TRUE(handle.valid());
    // The serve thread may not have entered its loop yet; inspect
    // reports false until it does, so spin until it lands.
    bool ran = false;
    while (!ran) {
        ran = serve.ingress().inspect([](const Cluster& cluster) {
            EXPECT_GE(cluster.metrics().names().size(), 1u);
        });
        if (!ran)
            std::this_thread::yield();
    }
    EXPECT_TRUE(ran);
    awaitTerminal(log);
    (void)handle.detach();
    serve.finish();
    // After the loop exits, inspect reports no serving.
    EXPECT_FALSE(serve.ingress().inspect([](const Cluster&) {}));
}

TEST(IngressTest, ConservationAcrossManyRequests)
{
    ServeFixture serve;
    std::vector<StreamLog> logs(20);
    std::vector<std::uint64_t> ids;
    for (auto& log : logs) {
        RequestHandle handle =
            serve.ingress().submit(request(64, 3), log.callback());
        ASSERT_TRUE(handle.valid());
        ids.push_back(handle.detach());
    }
    for (auto& log : logs)
        awaitTerminal(log);
    serve.finish();
    EXPECT_EQ(serve.ingress().accepted(), 20u);
    EXPECT_EQ(serve.ingress().completed() +
                  serve.ingress().rejectedByAdmission() +
                  serve.ingress().rejectedAtShutdown(),
              20u);
    EXPECT_EQ(serve.ingress().unresolved(), 0u);
}

}  // namespace
}  // namespace splitwise::core
