#include "core/cls.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/cluster.h"
#include "core/designs.h"
#include "model/llm_config.h"
#include "workload/trace_gen.h"
#include "workload/workloads.h"

namespace splitwise::core {
namespace {

/**
 * CLS behaviour is exercised through small clusters: routing,
 * JSQ balance, mixed-pool overflow, and pool-return transitions.
 */
workload::Trace
uniformTrace(std::size_t count, double interval_s, std::int64_t prompt,
             std::int64_t output)
{
    workload::Trace trace;
    for (std::size_t i = 0; i < count; ++i) {
        trace.push_back({i, sim::secondsToUs(i * interval_s), prompt,
                         output});
    }
    return trace;
}

TEST(ClsTest, PoolNames)
{
    EXPECT_STREQ(poolTypeName(PoolType::kPrompt), "prompt");
    EXPECT_STREQ(poolTypeName(PoolType::kToken), "token");
    EXPECT_STREQ(poolTypeName(PoolType::kMixed), "mixed");
}

TEST(ClsTest, SplitwiseMachinesStartInTheirPools)
{
    Cluster cluster(model::llama2_70b(), splitwiseHH(2, 3));
    const auto& cls = cluster.scheduler();
    EXPECT_EQ(cls.poolOf(0), PoolType::kPrompt);
    EXPECT_EQ(cls.poolOf(1), PoolType::kPrompt);
    EXPECT_EQ(cls.poolOf(2), PoolType::kToken);
    EXPECT_EQ(cls.originOf(4), PoolType::kToken);
}

TEST(ClsTest, BaselineMachinesAreMixed)
{
    Cluster cluster(model::llama2_70b(), baselineH100(3));
    EXPECT_EQ(cluster.scheduler().poolOf(0), PoolType::kMixed);
    EXPECT_EQ(cluster.scheduler().originOf(0), PoolType::kMixed);
}

TEST(ClsTest, JsqSpreadsPromptLoad)
{
    // Back-to-back arrivals while machines are busy: JSQ must not
    // pile every prompt on machine 0.
    const auto trace = uniformTrace(16, 0.01, 1500, 4);
    Cluster cluster(model::llama2_70b(), splitwiseHH(4, 1));
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed(), 16u);
    int busy_prompt_machines = 0;
    for (int i = 0; i < 4; ++i) {
        if (cluster.machines()[static_cast<std::size_t>(i)]
                ->stats()
                .promptTokensProcessed > 0) {
            ++busy_prompt_machines;
        }
    }
    EXPECT_GE(busy_prompt_machines, 3);
}

TEST(ClsTest, NoOverflowAtLowLoad)
{
    const auto trace = uniformTrace(10, 0.5, 1000, 8);
    Cluster cluster(model::llama2_70b(), splitwiseHH(2, 2));
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.mixedRoutes, 0u);
    EXPECT_EQ(report.poolTransitions, 0u);
}

TEST(ClsTest, PromptBurstOverflowsIntoTokenPool)
{
    // A simultaneous burst of huge prompts swamps the single prompt
    // machine far past the overflow threshold; the CLS must pull the
    // token machines into the mixed pool.
    workload::Trace trace;
    for (int i = 0; i < 24; ++i)
        trace.push_back({static_cast<std::uint64_t>(i), 0, 6000, 2});
    SimConfig config;
    config.cls.promptOverflowTokens = 8000;
    Cluster cluster(model::llama2_70b(), splitwiseHH(1, 3), config);
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed(), 24u);
    EXPECT_GT(report.mixedRoutes, 0u);
    EXPECT_GT(report.poolTransitions, 0u);
    // Overflowed requests ran both phases on the pulled machine, so
    // token machines did prompt work.
    std::int64_t token_pool_prompts = 0;
    for (std::size_t i = 1; i < 4; ++i)
        token_pool_prompts +=
            cluster.machines()[i]->stats().promptTokensProcessed;
    EXPECT_GT(token_pool_prompts, 0);
}

TEST(ClsTest, MixedMachinesReturnToOriginPool)
{
    workload::Trace trace;
    for (int i = 0; i < 24; ++i)
        trace.push_back({static_cast<std::uint64_t>(i), 0, 6000, 2});
    SimConfig config;
    config.cls.promptOverflowTokens = 8000;
    Cluster cluster(model::llama2_70b(), splitwiseHH(1, 3), config);
    cluster.run(trace);
    // After the run drains, every machine is back in its origin pool.
    for (int id = 0; id < 4; ++id) {
        EXPECT_EQ(cluster.scheduler().poolOf(id),
                  cluster.scheduler().originOf(id))
            << "machine " << id;
    }
}

TEST(ClsTest, RepurposingSwapsOrigin)
{
    workload::Trace trace;
    for (int i = 0; i < 40; ++i)
        trace.push_back({static_cast<std::uint64_t>(i), 0, 6000, 30});
    SimConfig config;
    config.cls.promptOverflowTokens = 4000;
    config.cls.repurposeAfterUs = sim::msToUs(200);
    Cluster cluster(model::llama2_70b(), splitwiseHH(1, 3), config);
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed(), 40u);
    EXPECT_GT(cluster.scheduler().repurposings(), 0u);
}

TEST(ClsTest, RandomRoutingWorksButSpreadsWorse)
{
    // Ablation hook: random routing completes everything, but JSQ
    // keeps the TTFT tail tighter under bursty load.
    const auto trace = uniformTrace(40, 0.02, 1500, 10);
    SimConfig random_cfg;
    random_cfg.cls.routing = RoutingPolicy::kRandom;
    Cluster jsq(model::llama2_70b(), splitwiseHH(4, 2));
    Cluster random(model::llama2_70b(), splitwiseHH(4, 2), random_cfg);
    const RunReport a = jsq.run(trace);
    const RunReport b = random.run(trace);
    EXPECT_EQ(a.requests.completed(), 40u);
    EXPECT_EQ(b.requests.completed(), 40u);
    EXPECT_LE(a.requests.ttftMs().p90(), b.requests.ttftMs().p90() * 1.05);
}

TEST(ClsTest, RandomRoutingDeterministicPerSeed)
{
    const auto trace = uniformTrace(30, 0.05, 1000, 10);
    auto run_once = [&] {
        SimConfig config;
        config.cls.routing = RoutingPolicy::kRandom;
        config.cls.routingSeed = 99;
        Cluster cluster(model::llama2_70b(), splitwiseHH(3, 2), config);
        return cluster.run(trace);
    };
    const RunReport a = run_once();
    const RunReport b = run_once();
    EXPECT_DOUBLE_EQ(a.requests.e2eMs().mean(), b.requests.e2eMs().mean());
}

TEST(ClsTest, RetireRestoreRoundTripKeepsCounters)
{
    Cluster cluster(model::llama2_70b(), splitwiseHH(2, 2));
    auto& cls = cluster.scheduler();
    cls.retire(0);
    EXPECT_FALSE(cls.contains(0));
    EXPECT_TRUE(cls.inStandby(0));
    EXPECT_EQ(cls.standbySize(), 1u);
    EXPECT_EQ(cls.liveMachines(), 3u);
    EXPECT_EQ(cls.poolSize(PoolType::kPrompt), 1u);
    // Standby machines keep answering identity queries: the origin
    // survives for restore().
    EXPECT_EQ(cls.originOf(0), PoolType::kPrompt);

    cls.restore(0);
    EXPECT_TRUE(cls.contains(0));
    EXPECT_FALSE(cls.inStandby(0));
    EXPECT_EQ(cls.poolOf(0), PoolType::kPrompt);
    EXPECT_EQ(cls.retires(), 1u);
    EXPECT_EQ(cls.restores(), 1u);
    EXPECT_EQ(cls.liveMachines(), 4u);
}

TEST(ClsTest, RestoreUnderNewOriginIsARoleFlex)
{
    Cluster cluster(model::llama2_70b(), splitwiseHH(2, 2));
    auto& cls = cluster.scheduler();
    cls.retire(0);
    cls.restore(0, PoolType::kToken);
    EXPECT_EQ(cls.poolOf(0), PoolType::kToken);
    EXPECT_EQ(cls.originOf(0), PoolType::kToken);
    EXPECT_EQ(cls.poolSize(PoolType::kPrompt), 1u);
    EXPECT_EQ(cls.poolSize(PoolType::kToken), 3u);
}

TEST(ClsTest, RetireRefusesTheLastRoutedMachine)
{
    Cluster cluster(model::llama2_70b(), splitwiseHH(2, 2));
    auto& cls = cluster.scheduler();
    cls.retire(0);
    cls.retire(1);
    cls.retire(2);
    EXPECT_THROW(cls.retire(3), std::runtime_error);
    EXPECT_THROW(cls.retire(0), std::runtime_error);  // not routed
}

TEST(ClsTest, FlexedMachineFailsAndRejoinsItsFlexedPool)
{
    // A machine flexed prompt->token crashes and recovers mid-run:
    // it must rejoin under its flexed identity (the origin restore()
    // assigned), with retire/restore/rejoin counters consistent and
    // no machine lost or double-counted.
    Cluster cluster(model::llama2_70b(), splitwiseHH(2, 2));
    auto& cls = cluster.scheduler();
    cls.retire(0);
    cls.restore(0, PoolType::kToken);
    cluster.scheduleFailure(0, sim::secondsToUs(2),
                            /*downtime_us=*/sim::secondsToUs(3));

    const auto trace = uniformTrace(30, 0.3, 1200, 30);
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed() + report.rejected, 30u);
    EXPECT_EQ(report.rejoins, 1u);
    EXPECT_TRUE(cls.contains(0));
    EXPECT_EQ(cls.poolOf(0), PoolType::kToken);
    EXPECT_EQ(cls.originOf(0), PoolType::kToken);
    EXPECT_EQ(cls.liveMachines(), 4u);
    EXPECT_EQ(cls.standbySize(), 0u);
    EXPECT_EQ(cls.retires(), 1u);
    EXPECT_EQ(cls.restores(), 1u);
}

TEST(ClsTest, FailedWhileMixedRejoinsOriginPool)
{
    // A token machine pulled into the mixed pool by a prompt burst
    // crashes there; after recovery it must sit in its origin token
    // pool with no mixed-pool residue.
    workload::Trace trace;
    for (int i = 0; i < 24; ++i)
        trace.push_back({static_cast<std::uint64_t>(i), 0, 6000, 2});
    for (int i = 24; i < 40; ++i) {
        trace.push_back({static_cast<std::uint64_t>(i),
                         sim::secondsToUs(6 + (i - 24) / 4.0), 1200, 20});
    }
    SimConfig config;
    config.cls.promptOverflowTokens = 8000;
    Cluster cluster(model::llama2_70b(), splitwiseHH(1, 3), config);
    cluster.scheduleFailure(1, sim::msToUs(50),
                            /*downtime_us=*/sim::secondsToUs(2));
    const RunReport report = cluster.run(trace);

    EXPECT_GT(report.mixedRoutes, 0u);
    EXPECT_EQ(report.rejoins, 1u);
    EXPECT_EQ(report.requests.completed() + report.rejected, 40u);
    const auto& cls = cluster.scheduler();
    EXPECT_EQ(cls.poolOf(1), PoolType::kToken);
    EXPECT_EQ(cls.originOf(1), PoolType::kToken);
    EXPECT_EQ(cls.liveMachines(), 4u);
    // Every machine drained back to its origin pool.
    for (int id = 0; id < 4; ++id)
        EXPECT_EQ(cls.poolOf(id), cls.originOf(id)) << "machine " << id;
}

TEST(ClsTest, BaselineRoutesWholeRequestsByLoad)
{
    const auto trace = uniformTrace(12, 0.05, 1500, 30);
    Cluster cluster(model::llama2_70b(), baselineH100(3));
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed(), 12u);
    for (const auto& m : cluster.machines())
        EXPECT_GT(m->stats().tokensGenerated, 0);
}

}  // namespace
}  // namespace splitwise::core
