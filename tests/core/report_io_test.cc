#include "core/report_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/designs.h"
#include "core/fault_plan.h"
#include "model/llm_config.h"
#include "workload/trace_gen.h"
#include "workload/workloads.h"

namespace splitwise::core {
namespace {

RunReport
smallRun()
{
    workload::TraceGenerator gen(workload::conversation(), 8);
    const auto trace = gen.generate(3.0, sim::secondsToUs(10));
    Cluster cluster(model::llama2_70b(), splitwiseHH(1, 1));
    return cluster.run(trace);
}

TEST(ReportIoTest, JsonContainsAllSections)
{
    const RunReport report = smallRun();
    const std::string json = reportToJson(report);
    for (const char* key :
         {"\"design\"", "\"requests\"", "\"pools\"", "\"transfers\"",
          "\"scheduler\"", "\"ttft_ms\"", "\"tbt_ms\"", "\"e2e_ms\"",
          "\"prompt\"", "\"token\""}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
    // No SLO section unless one is supplied.
    EXPECT_EQ(json.find("\"slo\""), std::string::npos);
}

TEST(ReportIoTest, JsonValuesMatchReport)
{
    const RunReport report = smallRun();
    const std::string json = reportToJson(report);
    EXPECT_NE(json.find("\"completed\":" +
                        std::to_string(report.requests.completed())),
              std::string::npos);
    EXPECT_NE(json.find("\"count\":" +
                        std::to_string(report.transfers.transfers)),
              std::string::npos);
    EXPECT_NE(json.find("\"machines\":2"), std::string::npos);
}

TEST(ReportIoTest, SloSectionIncluded)
{
    const RunReport report = smallRun();
    const SloChecker checker(model::llama2_70b());
    const SloReport slo = checker.evaluate(report.requests, SloSet{});
    const std::string json = reportToJson(report, &slo);
    EXPECT_NE(json.find("\"slo\""), std::string::npos);
    EXPECT_NE(json.find("\"pass\":"), std::string::npos);
    EXPECT_NE(json.find("\"tbt_slowdown\""), std::string::npos);
}

TEST(ReportIoTest, BalancedBracesAndQuotes)
{
    const RunReport report = smallRun();
    const SloChecker checker(model::llama2_70b());
    const SloReport slo = checker.evaluate(report.requests, SloSet{});
    const std::string json = reportToJson(report, &slo);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '"') % 2, 0);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

TEST(ReportIoTest, WritesFile)
{
    const auto path = std::filesystem::temp_directory_path() /
                      "splitwise_report_test.json";
    const RunReport report = smallRun();
    writeReportJson(report, path.string());
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    EXPECT_EQ(contents.front(), '{');
    std::filesystem::remove(path);
}

TEST(ReportIoTest, WriteToBadPathThrows)
{
    const RunReport report = smallRun();
    EXPECT_THROW(writeReportJson(report, "/nonexistent/dir/report.json"),
                 std::runtime_error);
}

TEST(ReportDigestTest, RoundTripPreservesScalars)
{
    const RunReport report = smallRun();
    const ReportDigest d = reportDigestFromJson(reportToJson(report));
    EXPECT_EQ(d.machines, 2);
    EXPECT_EQ(d.submitted, report.submitted);
    EXPECT_EQ(d.completed, report.requests.completed());
    EXPECT_NEAR(d.throughputRps, report.throughputRps(),
                1e-5 * report.throughputRps());
    EXPECT_EQ(d.transfers, report.transfers.transfers);
    EXPECT_EQ(d.preemptions, report.preemptions);
    EXPECT_EQ(d.promptPoolTokens, report.promptPool.tokensGenerated);
    EXPECT_EQ(d.tokenPoolTokens, report.tokenPool.tokensGenerated);
    EXPECT_GT(d.ttftP50Ms, 0.0);
    EXPECT_FALSE(d.hasSlo);
}

TEST(ReportDigestTest, SloSectionRoundTrips)
{
    const RunReport report = smallRun();
    const SloChecker checker(model::llama2_70b());
    const SloReport slo = checker.evaluate(report.requests, SloSet{});
    const ReportDigest d = reportDigestFromJson(reportToJson(report, &slo));
    EXPECT_TRUE(d.hasSlo);
    EXPECT_EQ(d.sloPass, slo.pass);
}

/** A run with crashes and admission control: the fault counters and
 *  rejected count must survive the report -> JSON -> digest trip. */
TEST(ReportDigestTest, FaultCountersAndRejectedRoundTrip)
{
    workload::TraceGenerator gen(workload::conversation(), 11);
    const auto trace = gen.generate(12.0, sim::secondsToUs(8));
    SimConfig config;
    config.cls.shedQueuedTokensBound = 4000;
    config.kvRetry.maxRetries = 2;
    Cluster cluster(model::llama2_70b(), splitwiseHH(2, 2), config);
    FaultPlan plan;
    plan.add({FaultKind::kCrash, 1, sim::secondsToUs(2),
              sim::secondsToUs(2), 1.0});
    plan.add({FaultKind::kLinkFault, 2, sim::secondsToUs(1),
              sim::msToUs(400.0), 1.0});
    FaultInjector(cluster).apply(plan);
    const RunReport report = cluster.run(trace);
    const ReportDigest d = reportDigestFromJson(reportToJson(report));
    EXPECT_EQ(d.restarts, report.restarts);
    EXPECT_EQ(d.checkpointRestores, report.checkpointRestores);
    EXPECT_EQ(d.rejected, report.rejected);
    EXPECT_EQ(d.rejoins, report.rejoins);
    EXPECT_EQ(d.transferFaults, report.transfers.transferFaults);
    EXPECT_EQ(d.transferRetries, report.transfers.transferRetries);
    EXPECT_EQ(d.transferTimeouts, report.transfers.transferTimeouts);
    EXPECT_EQ(d.transferAborts, report.transfers.transferAborts);
    EXPECT_GT(d.rejoins, 0u);
}

TEST(ReportDigestTest, MalformedJsonIsFatal)
{
    EXPECT_THROW(reportDigestFromJson("not json"), std::runtime_error);
    EXPECT_THROW(reportDigestFromJson("{\"design\":{}}"),
                 std::runtime_error);
}

}  // namespace
}  // namespace splitwise::core
