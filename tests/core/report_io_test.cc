#include "core/report_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/designs.h"
#include "model/llm_config.h"
#include "workload/trace_gen.h"
#include "workload/workloads.h"

namespace splitwise::core {
namespace {

RunReport
smallRun()
{
    workload::TraceGenerator gen(workload::conversation(), 8);
    const auto trace = gen.generate(3.0, sim::secondsToUs(10));
    Cluster cluster(model::llama2_70b(), splitwiseHH(1, 1));
    return cluster.run(trace);
}

TEST(ReportIoTest, JsonContainsAllSections)
{
    const RunReport report = smallRun();
    const std::string json = reportToJson(report);
    for (const char* key :
         {"\"design\"", "\"requests\"", "\"pools\"", "\"transfers\"",
          "\"scheduler\"", "\"ttft_ms\"", "\"tbt_ms\"", "\"e2e_ms\"",
          "\"prompt\"", "\"token\""}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
    // No SLO section unless one is supplied.
    EXPECT_EQ(json.find("\"slo\""), std::string::npos);
}

TEST(ReportIoTest, JsonValuesMatchReport)
{
    const RunReport report = smallRun();
    const std::string json = reportToJson(report);
    EXPECT_NE(json.find("\"completed\":" +
                        std::to_string(report.requests.completed())),
              std::string::npos);
    EXPECT_NE(json.find("\"count\":" +
                        std::to_string(report.transfers.transfers)),
              std::string::npos);
    EXPECT_NE(json.find("\"machines\":2"), std::string::npos);
}

TEST(ReportIoTest, SloSectionIncluded)
{
    const RunReport report = smallRun();
    const SloChecker checker(model::llama2_70b());
    const SloReport slo = checker.evaluate(report.requests, SloSet{});
    const std::string json = reportToJson(report, &slo);
    EXPECT_NE(json.find("\"slo\""), std::string::npos);
    EXPECT_NE(json.find("\"pass\":"), std::string::npos);
    EXPECT_NE(json.find("\"tbt_slowdown\""), std::string::npos);
}

TEST(ReportIoTest, BalancedBracesAndQuotes)
{
    const RunReport report = smallRun();
    const SloChecker checker(model::llama2_70b());
    const SloReport slo = checker.evaluate(report.requests, SloSet{});
    const std::string json = reportToJson(report, &slo);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '"') % 2, 0);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

TEST(ReportIoTest, WritesFile)
{
    const auto path = std::filesystem::temp_directory_path() /
                      "splitwise_report_test.json";
    const RunReport report = smallRun();
    writeReportJson(report, path.string());
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    EXPECT_EQ(contents.front(), '{');
    std::filesystem::remove(path);
}

TEST(ReportIoTest, WriteToBadPathThrows)
{
    const RunReport report = smallRun();
    EXPECT_THROW(writeReportJson(report, "/nonexistent/dir/report.json"),
                 std::runtime_error);
}

}  // namespace
}  // namespace splitwise::core
