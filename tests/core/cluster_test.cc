#include "core/cluster.h"

#include <gtest/gtest.h>

#include "core/designs.h"
#include "model/llm_config.h"
#include "workload/trace_gen.h"
#include "workload/workloads.h"

namespace splitwise::core {
namespace {

workload::Trace
conversationTrace(double rps, double seconds, std::uint64_t seed = 1)
{
    workload::TraceGenerator gen(workload::conversation(), seed);
    return gen.generate(rps, sim::secondsToUs(seconds));
}

TEST(ClusterTest, BaselineCompletesAllRequests)
{
    const auto trace = conversationTrace(4.0, 30);
    Cluster cluster(model::llama2_70b(), baselineH100(2));
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed(), trace.size());
    EXPECT_EQ(report.submitted, trace.size());
    // Baselines never transfer KV between machines.
    EXPECT_EQ(report.transfers.transfers, 0u);
}

TEST(ClusterTest, SplitwiseCompletesAllRequests)
{
    const auto trace = conversationTrace(4.0, 30);
    Cluster cluster(model::llama2_70b(), splitwiseHH(2, 2));
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed(), trace.size());
    EXPECT_GT(report.transfers.transfers, 0u);
}

TEST(ClusterTest, TokenConservation)
{
    const auto trace = conversationTrace(4.0, 30);
    std::int64_t expected_prompt = 0;
    std::int64_t expected_output = 0;
    for (const auto& r : trace) {
        expected_prompt += r.promptTokens;
        expected_output += r.outputTokens;
    }
    Cluster cluster(model::llama2_70b(), splitwiseHH(2, 2));
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.totalPromptTokens(), expected_prompt);
    EXPECT_EQ(report.requests.totalOutputTokens(), expected_output);
    // Machines generated exactly the output tokens (prompt machines
    // make the first token, token machines the rest).
    EXPECT_EQ(report.promptPool.tokensGenerated +
                  report.tokenPool.tokensGenerated,
              expected_output);
}

TEST(ClusterTest, SplitwiseSeparatesPhases)
{
    const auto trace = conversationTrace(4.0, 30);
    Cluster cluster(model::llama2_70b(), splitwiseHH(2, 2));
    const RunReport report = cluster.run(trace);
    // At low load the prompt pool does (nearly) all prompt work and
    // the token pool (nearly) all decode work.
    EXPECT_GT(report.promptPool.promptTokensProcessed,
              report.tokenPool.promptTokensProcessed);
    EXPECT_GT(report.tokenPool.tokensGenerated,
              report.promptPool.tokensGenerated);
}

TEST(ClusterTest, DeterministicAcrossRuns)
{
    const auto trace = conversationTrace(5.0, 20);
    auto run_once = [&] {
        Cluster cluster(model::llama2_70b(), splitwiseHH(2, 2));
        return cluster.run(trace);
    };
    const RunReport a = run_once();
    const RunReport b = run_once();
    ASSERT_EQ(a.requests.completed(), b.requests.completed());
    EXPECT_DOUBLE_EQ(a.requests.e2eMs().mean(), b.requests.e2eMs().mean());
    EXPECT_DOUBLE_EQ(a.requests.ttftMs().p99(), b.requests.ttftMs().p99());
    EXPECT_EQ(a.simulatedUs, b.simulatedUs);
}

TEST(ClusterTest, LatenciesAreReasonable)
{
    const auto trace = conversationTrace(2.0, 30);
    Cluster cluster(model::llama2_70b(), splitwiseHH(2, 1));
    const RunReport report = cluster.run(trace);
    // Near-idle H100s: TTFT close to the pure prompt latency.
    EXPECT_GT(report.requests.ttftMs().p50(), 30.0);
    EXPECT_LT(report.requests.ttftMs().p50(), 300.0);
    EXPECT_GT(report.requests.tbtMs().p50(), 20.0);
    EXPECT_LT(report.requests.tbtMs().p50(), 80.0);
}

TEST(ClusterTest, RunIsOneShot)
{
    const auto trace = conversationTrace(2.0, 5);
    Cluster cluster(model::llama2_70b(), baselineH100(1));
    cluster.run(trace);
    EXPECT_THROW(cluster.run(trace), std::runtime_error);
}

TEST(ClusterTest, RejectsBadDesigns)
{
    EXPECT_THROW(Cluster(model::llama2_70b(), baselineH100(0)),
                 std::runtime_error);
    EXPECT_THROW(Cluster(model::llama2_70b(), splitwiseHH(2, 0)),
                 std::runtime_error);
}

TEST(ClusterTest, EmptyTraceYieldsEmptyReport)
{
    Cluster cluster(model::llama2_70b(), baselineH100(1));
    const RunReport report = cluster.run({});
    EXPECT_EQ(report.requests.completed(), 0u);
}

TEST(ClusterTest, PiecewisePerfModelCloseToAnalytical)
{
    const auto trace = conversationTrace(3.0, 20);
    SimConfig piecewise;
    piecewise.usePiecewisePerfModel = true;
    Cluster a(model::llama2_70b(), splitwiseHH(2, 2));
    Cluster b(model::llama2_70b(), splitwiseHH(2, 2), piecewise);
    const double e2e_a = a.run(trace).requests.e2eMs().mean();
    const double e2e_b = b.run(trace).requests.e2eMs().mean();
    EXPECT_NEAR(e2e_b / e2e_a, 1.0, 0.05);
}

TEST(ClusterTest, BloomAlsoRuns)
{
    const auto trace = conversationTrace(2.0, 15);
    Cluster bloom(model::bloom_176b(), splitwiseHH(2, 2));
    const RunReport report = bloom.run(trace);
    EXPECT_EQ(report.requests.completed(), trace.size());
    // BLOOM is slower than Llama end to end (Table III/IV).
    Cluster llama(model::llama2_70b(), splitwiseHH(2, 2));
    const RunReport llama_report = llama.run(trace);
    EXPECT_GT(report.requests.e2eMs().p50(),
              1.1 * llama_report.requests.e2eMs().p50());
}

TEST(ClusterTest, PoolReportsCoverAllMachines)
{
    const auto trace = conversationTrace(2.0, 10);
    Cluster cluster(model::llama2_70b(), splitwiseHA(3, 2));
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.promptPool.machines, 3);
    EXPECT_EQ(report.tokenPool.machines, 2);
    EXPECT_GT(report.promptPool.energyWh, 0.0);
    EXPECT_GT(report.tokenPool.energyWh, 0.0);
}

TEST(ClusterTest, HeterogeneousHaUsesA100TokenMachines)
{
    const auto trace = conversationTrace(2.0, 10);
    Cluster cluster(model::llama2_70b(), splitwiseHA(2, 2));
    EXPECT_EQ(cluster.machines()[0]->spec().name, "DGX-H100");
    EXPECT_EQ(cluster.machines()[2]->spec().name, "DGX-A100");
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed(), trace.size());
}

TEST(ClusterTest, SingleOutputTokenRequestsNeverTransfer)
{
    workload::Trace trace;
    for (int i = 0; i < 10; ++i) {
        trace.push_back({static_cast<std::uint64_t>(i),
                         sim::secondsToUs(i * 0.2), 1000, 1});
    }
    Cluster cluster(model::llama2_70b(), splitwiseHH(1, 1));
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed(), 10u);
    EXPECT_EQ(report.transfers.transfers, 0u);
}

}  // namespace
}  // namespace splitwise::core
