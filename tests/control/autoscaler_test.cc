#include "control/autoscaler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "core/cluster.h"
#include "core/designs.h"
#include "core/report_io.h"
#include "model/llm_config.h"
#include "workload/rate_curve.h"
#include "workload/trace_gen.h"
#include "workload/workloads.h"

namespace splitwise::control {
namespace {

/**
 * The autoscaler is exercised end-to-end through small clusters: the
 * controller ticks inside the simulation and its action log plus the
 * report's control section are the observable behaviour.
 */

/** Fast cadence so a few simulated seconds see many decisions. */
AutoscalerConfig
fastConfig()
{
    AutoscalerConfig cfg;
    cfg.tickIntervalUs = sim::msToUs(200.0);
    cfg.slidingWindowUs = sim::secondsToUs(2.0);
    cfg.provisioningLeadUs = sim::msToUs(400.0);
    cfg.scaleCooldownUs = sim::msToUs(800.0);
    cfg.brownoutCooldownUs = sim::msToUs(600.0);
    return cfg;
}

workload::Trace
steadyTrace(double rps, double seconds, std::uint64_t seed = 7)
{
    workload::TraceGenerator gen(workload::conversation(), seed);
    return gen.generate(rps, sim::secondsToUs(seconds));
}

TEST(AutoscalerTest, RequiresSplitwiseDesign)
{
    core::Cluster cluster(model::llama2_70b(), core::baselineH100(2));
    EXPECT_THROW(Autoscaler(cluster, fastConfig()), std::runtime_error);
}

TEST(AutoscalerTest, RejectsInvalidConfig)
{
    core::Cluster cluster(model::llama2_70b(), core::splitwiseHH(2, 2));
    AutoscalerConfig cfg = fastConfig();
    cfg.tickIntervalUs = 0;
    EXPECT_THROW(Autoscaler(cluster, cfg), std::runtime_error);
}

TEST(AutoscalerTest, IdleClusterScalesDownToTheFloor)
{
    // 4P+4T fed a trickle: the controller must park down to the
    // configured minimum and bank the machine-hours.
    core::Cluster cluster(model::llama2_70b(), core::splitwiseHH(4, 4));
    Autoscaler scaler(cluster, fastConfig());
    const auto trace = steadyTrace(1.0, 8.0);
    core::RunReport report = cluster.run(trace);
    scaler.fillReport(report);

    EXPECT_TRUE(report.control.enabled);
    EXPECT_GT(report.control.ticks, 0u);
    EXPECT_GT(report.control.scaleDowns, 0u);
    EXPECT_GT(report.promptPool.parkedUs + report.tokenPool.parkedUs, 0);
    // Parked time is unpaid: the fleet cost less than always-on.
    const double wall_machine_us =
        static_cast<double>(report.simulatedUs) * 8.0;
    EXPECT_LT(static_cast<double>(report.promptPool.poweredUs +
                                  report.tokenPool.poweredUs),
              wall_machine_us);
    EXPECT_EQ(report.requests.completed() + report.rejected, trace.size());
}

TEST(AutoscalerTest, NeverBelowTheMinimumFloor)
{
    AutoscalerConfig cfg = fastConfig();
    cfg.minPromptMachines = 2;
    cfg.minTokenMachines = 3;
    core::Cluster cluster(model::llama2_70b(), core::splitwiseHH(4, 4));
    Autoscaler scaler(cluster, cfg);
    cluster.run(steadyTrace(0.5, 6.0));

    const auto& cls = cluster.scheduler();
    EXPECT_GE(cls.poolSize(core::PoolType::kPrompt), 2u);
    EXPECT_GE(cls.poolSize(core::PoolType::kToken), 3u);
}

TEST(AutoscalerTest, SurgeAfterValleyScalesBackUp)
{
    // A quiet first half parks machines; the surge must bring them
    // back (kScaleUpStart then kScaleUp after the lead time).
    auto curve = workload::RateCurve::constant(1.0);
    curve.addSpike(sim::secondsToUs(6.0), sim::secondsToUs(6.0), 14.0);
    workload::TraceGenerator gen(workload::conversation(), 11);
    const auto trace = gen.generate(curve, sim::secondsToUs(12.0));

    core::Cluster cluster(model::llama2_70b(), core::splitwiseHH(3, 3));
    Autoscaler scaler(cluster, fastConfig());
    core::RunReport report = cluster.run(trace);
    scaler.fillReport(report);

    EXPECT_GT(report.control.scaleDowns, 0u);
    EXPECT_GT(report.control.scaleUps, 0u);
    bool saw_start = false, saw_finish = false;
    for (const auto& a : scaler.actions()) {
        saw_start = saw_start || a.type == ActionType::kScaleUpStart;
        saw_finish = saw_finish || a.type == ActionType::kScaleUp;
    }
    EXPECT_TRUE(saw_start);
    EXPECT_TRUE(saw_finish);
}

TEST(AutoscalerTest, ScaleActionsRespectTheCooldown)
{
    auto curve = workload::RateCurve::constant(1.0);
    curve.addSpike(sim::secondsToUs(5.0), sim::secondsToUs(5.0), 14.0);
    workload::TraceGenerator gen(workload::conversation(), 13);
    const auto trace = gen.generate(curve, sim::secondsToUs(12.0));

    core::Cluster cluster(model::llama2_70b(), core::splitwiseHH(3, 3));
    AutoscalerConfig cfg = fastConfig();
    Autoscaler scaler(cluster, cfg);
    cluster.run(trace);

    sim::TimeUs last_prompt = -1, last_token = -1;
    for (const auto& a : scaler.actions()) {
        if (a.type != ActionType::kScaleUpStart &&
            a.type != ActionType::kScaleDownStart &&
            a.type != ActionType::kFlexStart) {
            continue;
        }
        const bool prompt = a.pool == core::PoolType::kPrompt ||
                            a.type == ActionType::kFlexStart;
        const bool token = a.pool == core::PoolType::kToken ||
                           a.type == ActionType::kFlexStart;
        if (prompt) {
            if (last_prompt >= 0)
                EXPECT_GE(a.at - last_prompt, cfg.scaleCooldownUs);
            last_prompt = a.at;
        }
        if (token) {
            if (last_token >= 0)
                EXPECT_GE(a.at - last_token, cfg.scaleCooldownUs);
            last_token = a.at;
        }
    }
}

TEST(AutoscalerTest, OverloadClimbsTheBrownoutLadderAndRecovers)
{
    // 1P+1T swamped far past capacity, then the tail drains: the
    // ladder must climb (shedding sheddable work first) and step
    // back down one level at a time.
    AutoscalerConfig cfg = fastConfig();
    cfg.brownoutQueuedTokensPerMachine = 2000;
    cfg.brownoutTtftSlowdown = 3.0;
    cfg.minPromptMachines = 1;
    cfg.minTokenMachines = 1;

    workload::Trace trace;
    for (int i = 0; i < 120; ++i) {
        workload::Request r;
        r.id = static_cast<std::uint64_t>(i);
        r.arrival = sim::msToUs(20.0 * i);
        r.promptTokens = 1500;
        r.outputTokens = 80;
        r.priority = i % 2;
        trace.push_back(r);
    }

    core::Cluster cluster(model::llama2_70b(), core::splitwiseHH(1, 1));
    Autoscaler scaler(cluster, cfg);
    core::RunReport report = cluster.run(trace);
    scaler.fillReport(report);

    EXPECT_GE(report.control.maxBrownoutLevel, 1);
    EXPECT_GT(report.control.brownoutTransitions, 1u);
    EXPECT_GT(report.control.brownoutUs, 0);
    EXPECT_GT(report.rejected, 0u);
    // One level per move, always inside the ladder, and at least one
    // downward step once the tail drained. (The controller only
    // ticks while the simulation has events, so the final level may
    // legitimately rest one step above zero.)
    int level = 0;
    bool recovered = false;
    for (const auto& a : scaler.actions()) {
        if (a.type != ActionType::kBrownout)
            continue;
        EXPECT_EQ(std::abs(a.brownoutLevel - level), 1);
        recovered = recovered || a.brownoutLevel < level;
        level = a.brownoutLevel;
        EXPECT_GE(level, 0);
        EXPECT_LE(level, 3);
    }
    EXPECT_TRUE(recovered);
    EXPECT_LT(cluster.scheduler().brownoutLevel(),
              report.control.maxBrownoutLevel);
    EXPECT_EQ(cluster.scheduler().brownoutLevel(), level);
    EXPECT_EQ(report.requests.completed() + report.rejected, 120u);
}

TEST(AutoscalerTest, PowerBudgetPlacesTokenCapsFirst)
{
    // Budget below the fleet's provisioned draw: caps must appear,
    // and the token pool (where Fig. 9 says caps are nearly free)
    // must carry the deeper ones.
    core::Cluster cluster(model::llama2_70b(), core::splitwiseHH(2, 2));
    AutoscalerConfig cfg = fastConfig();
    cfg.powerBudgetWatts = cluster.design().footprint().powerWatts * 0.8;
    Autoscaler scaler(cluster, cfg);
    core::RunReport report = cluster.run(steadyTrace(4.0, 6.0));
    scaler.fillReport(report);

    EXPECT_GT(report.control.powerCapChanges, 0u);
    double deepest_token = 1.0, deepest_prompt = 1.0;
    for (const auto& a : scaler.actions()) {
        if (a.type != ActionType::kPowerCap)
            continue;
        EXPECT_GE(a.capFraction, cfg.tokenCapFloor);
        EXPECT_LE(a.capFraction, 1.0);
        if (a.pool == core::PoolType::kToken)
            deepest_token = std::min(deepest_token, a.capFraction);
        else
            deepest_prompt = std::min(deepest_prompt, a.capFraction);
    }
    EXPECT_LT(deepest_token, 1.0);
    EXPECT_LE(deepest_token, deepest_prompt);
}

TEST(AutoscalerTest, DeterministicActionLogAndReport)
{
    auto run_once = [](std::string* json) {
        auto curve = workload::RateCurve::diurnal(1.0, 10.0,
                                                  sim::secondsToUs(10.0));
        workload::TraceGenerator gen(workload::conversation(), 5);
        const auto trace = gen.generate(curve, sim::secondsToUs(10.0));
        core::Cluster cluster(model::llama2_70b(),
                              core::splitwiseHH(3, 3));
        Autoscaler scaler(cluster, fastConfig());
        core::RunReport report = cluster.run(trace);
        scaler.fillReport(report);
        *json = core::reportToJson(report);
        return scaler.actions();
    };
    std::string json_a, json_b;
    const auto a = run_once(&json_a);
    const auto b = run_once(&json_b);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].at, b[i].at);
        EXPECT_EQ(a[i].type, b[i].type);
        EXPECT_EQ(a[i].machine, b[i].machine);
    }
    EXPECT_EQ(json_a, json_b);
    EXPECT_FALSE(a.empty());
}

TEST(AutoscalerTest, DisabledControlSectionStaysOutOfTheReport)
{
    // Without fillReport the control block must not serialize: the
    // byte-stability contract for every pre-existing golden.
    core::Cluster cluster(model::llama2_70b(), core::splitwiseHH(2, 2));
    const core::RunReport report = cluster.run(steadyTrace(2.0, 3.0));
    EXPECT_FALSE(report.control.enabled);
    EXPECT_EQ(core::reportToJson(report).find("\"control\""),
              std::string::npos);
}

TEST(AutoscalerTest, FlexMovesAMachineAcrossRoles)
{
    // Prompt-heavy surge with an idle token pool: cheaper to flex a
    // token machine across than to wait for an unpark (everything is
    // already routed, so flex is the only scale-up path).
    AutoscalerConfig cfg = fastConfig();
    cfg.queuedTokensHighPerMachine = 1500;
    workload::Trace trace;
    for (int i = 0; i < 60; ++i) {
        workload::Request r;
        r.id = static_cast<std::uint64_t>(i);
        r.arrival = sim::msToUs(40.0 * i);
        r.promptTokens = 2000;
        r.outputTokens = 4;
        trace.push_back(r);
    }
    core::Cluster cluster(model::llama2_70b(), core::splitwiseHH(1, 3));
    Autoscaler scaler(cluster, cfg);
    core::RunReport report = cluster.run(trace);
    scaler.fillReport(report);

    EXPECT_GT(report.control.roleFlexes, 0u);
    EXPECT_EQ(report.requests.completed() + report.rejected, 60u);
    // Drained flex: the donor left with no in-flight work, so no
    // request was restarted by the move.
    EXPECT_EQ(report.restarts, 0u);
}

}  // namespace
}  // namespace splitwise::control
