#include "hw/interconnect.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "hw/machine_spec.h"

namespace splitwise::hw {
namespace {

TEST(InterconnectTest, WireTimeScalesLinearly)
{
    LinkSpec link;
    link.bandwidthGBps = 100.0;
    const sim::TimeUs one = link.wireTime(1'000'000'000);
    const sim::TimeUs two = link.wireTime(2'000'000'000);
    EXPECT_GT(one, 0);
    EXPECT_NEAR(static_cast<double>(two),
                2.0 * static_cast<double>(one), 1.0);
}

TEST(InterconnectTest, TransferTimeAddsSetup)
{
    LinkSpec link;
    link.bandwidthGBps = 50.0;
    link.setupUs = 123;
    EXPECT_EQ(link.transferTime(1'000'000),
              123 + link.wireTime(1'000'000));
}

TEST(InterconnectTest, ZeroBandwidthIsFatal)
{
    LinkSpec link;
    EXPECT_THROW(link.wireTime(1), std::runtime_error);
    link.bandwidthGBps = -4.0;
    EXPECT_THROW(link.transferTime(1), std::runtime_error);
}

TEST(InterconnectTest, ZeroBytesIsFree)
{
    LinkSpec link;
    link.bandwidthGBps = 10.0;
    EXPECT_EQ(link.wireTime(0), 0);
    link.setupUs = 7;
    EXPECT_EQ(link.transferTime(0), 7);
}

TEST(InterconnectTest, HeterogeneousPairRunsAtSlowerNic)
{
    const LinkSpec mixed = linkBetween(dgxH100(), dgxA100());
    const LinkSpec slow = linkBetween(dgxA100(), dgxA100());
    EXPECT_DOUBLE_EQ(mixed.bandwidthGBps, slow.bandwidthGBps);
    EXPECT_DOUBLE_EQ(mixed.bandwidthGBps, dgxA100().infinibandGBps);
}

TEST(InterconnectTest, SingleLinkPairIsSymmetric)
{
    const LinkSpec ab = linkBetween(dgxH100(), dgxA100());
    const LinkSpec ba = linkBetween(dgxA100(), dgxH100());
    EXPECT_DOUBLE_EQ(ab.bandwidthGBps, ba.bandwidthGBps);
    EXPECT_EQ(ab.setupUs, ba.setupUs);
}

TEST(InterconnectTest, FasterLinkHasCheaperSetup)
{
    const LinkSpec fast = linkBetween(dgxH100(), dgxH100());
    const LinkSpec slow = linkBetween(dgxA100(), dgxA100());
    EXPECT_LT(fast.setupUs, slow.setupUs);
    EXPECT_GT(fast.setupUs, 0);
}

}  // namespace
}  // namespace splitwise::hw
