#include <gtest/gtest.h>

#include "hw/cost_model.h"
#include "hw/gpu_spec.h"
#include "hw/interconnect.h"
#include "hw/machine_spec.h"

namespace splitwise::hw {
namespace {

// --- Table I facts ---

TEST(GpuSpecTest, TableIRawNumbers)
{
    EXPECT_DOUBLE_EQ(a100().hbmCapacityGb, 80.0);
    EXPECT_DOUBLE_EQ(h100().hbmCapacityGb, 80.0);
    EXPECT_DOUBLE_EQ(a100().hbmBandwidthGBps, 2039.0);
    EXPECT_DOUBLE_EQ(h100().hbmBandwidthGBps, 3352.0);
    EXPECT_DOUBLE_EQ(a100().tdpWatts, 400.0);
    EXPECT_DOUBLE_EQ(h100().tdpWatts, 700.0);
}

TEST(GpuSpecTest, TableIRatios)
{
    // Compute 3.43x, HBM bandwidth 1.64x, power 1.75x, NVLink 2x.
    EXPECT_NEAR(h100().peakFp16Tflops / a100().peakFp16Tflops, 3.43, 0.35);
    EXPECT_NEAR(h100().hbmBandwidthGBps / a100().hbmBandwidthGBps, 1.64, 0.01);
    EXPECT_NEAR(h100().tdpWatts / a100().tdpWatts, 1.75, 1e-9);
    EXPECT_NEAR(h100().nvlinkGBps / a100().nvlinkGBps, 2.0, 1e-9);
}

TEST(GpuSpecTest, LookupByType)
{
    EXPECT_EQ(gpuSpec(GpuType::kA100).name, "A100");
    EXPECT_EQ(gpuSpec(GpuType::kH100).name, "H100");
    EXPECT_STREQ(gpuTypeName(GpuType::kA100), "A100");
}

// --- Machine specs ---

TEST(MachineSpecTest, DgxConfigsHaveEightGpus)
{
    EXPECT_EQ(dgxA100().gpuCount, 8);
    EXPECT_EQ(dgxH100().gpuCount, 8);
}

TEST(MachineSpecTest, CostsMatchTableI)
{
    EXPECT_DOUBLE_EQ(dgxA100().costPerHour, 17.6);
    EXPECT_DOUBLE_EQ(dgxH100().costPerHour, 38.0);
    EXPECT_NEAR(dgxH100().costPerHour / dgxA100().costPerHour, 2.16, 0.01);
}

TEST(MachineSpecTest, InfinibandMatchesTableI)
{
    EXPECT_DOUBLE_EQ(dgxA100().infinibandGBps, 200.0);
    EXPECT_DOUBLE_EQ(dgxH100().infinibandGBps, 400.0);
}

TEST(MachineSpecTest, PowerRatioIs175)
{
    // Table V: DGX-H100 draws 1.75x a DGX-A100.
    EXPECT_NEAR(dgxH100().ratedPowerWatts() / dgxA100().ratedPowerWatts(),
                1.75, 0.01);
}

TEST(MachineSpecTest, FiftyPercentGpuCapIsSeventyPercentMachine)
{
    // Table V: HHcap token machines run at 70% machine power (1.23x
    // a DGX-A100) with each GPU capped by 50%.
    const MachineSpec capped = dgxH100Capped();
    EXPECT_NEAR(capped.provisionedPowerWatts() /
                    dgxH100().provisionedPowerWatts(),
                0.70, 0.01);
    EXPECT_NEAR(capped.provisionedPowerWatts() /
                    dgxA100().provisionedPowerWatts(),
                1.23, 0.02);
}

TEST(MachineSpecTest, SeventyA100sFitInFortyH100Power)
{
    // SVI-B: the paper fits 70 DGX-A100s in the power of 40 DGX-H100s.
    const double budget = 40 * dgxH100().provisionedPowerWatts();
    const int a100s = static_cast<int>(budget /
                                       dgxA100().provisionedPowerWatts());
    EXPECT_EQ(a100s, 70);
}

TEST(MachineSpecTest, AggregateAccessors)
{
    const MachineSpec m = dgxH100();
    EXPECT_EQ(m.totalHbmBytes(), static_cast<std::int64_t>(8 * 80.0 * 1e9));
    EXPECT_DOUBLE_EQ(m.totalHbmBandwidthGBps(), 8 * 3352.0);
    EXPECT_DOUBLE_EQ(m.totalPeakTflops(), 8 * 989.0);
}

TEST(MachineSpecTest, WithPowerCapOnlyAffectsGpus)
{
    const MachineSpec capped = dgxA100().withPowerCap(0.5);
    EXPECT_DOUBLE_EQ(capped.gpuPowerCapFraction, 0.5);
    EXPECT_DOUBLE_EQ(capped.ratedPowerWatts(), dgxA100().ratedPowerWatts());
    EXPECT_LT(capped.provisionedPowerWatts(),
              dgxA100().provisionedPowerWatts());
}

// --- Interconnect ---

TEST(InterconnectTest, LinkTakesSlowerNic)
{
    const LinkSpec hh = linkBetween(dgxH100(), dgxH100());
    const LinkSpec ha = linkBetween(dgxH100(), dgxA100());
    const LinkSpec aa = linkBetween(dgxA100(), dgxA100());
    EXPECT_DOUBLE_EQ(hh.bandwidthGBps, 400.0);
    EXPECT_DOUBLE_EQ(ha.bandwidthGBps, 200.0);
    EXPECT_DOUBLE_EQ(aa.bandwidthGBps, 200.0);
}

TEST(InterconnectTest, WireTimeScalesWithBytes)
{
    const LinkSpec link = linkBetween(dgxH100(), dgxH100());
    // 400 GB at 400 GB/s = 1 s.
    EXPECT_NEAR(sim::usToSeconds(link.wireTime(400'000'000'000LL)), 1.0,
                1e-6);
    EXPECT_EQ(link.wireTime(0), 0);
}

TEST(InterconnectTest, TransferTimeIncludesSetup)
{
    const LinkSpec link = linkBetween(dgxA100(), dgxA100());
    EXPECT_EQ(link.transferTime(0), link.setupUs);
    EXPECT_GT(link.transferTime(1'000'000'000), link.setupUs);
}

TEST(InterconnectTest, H100TransfersTwiceAsFast)
{
    // SVI-A: H100 transfers happen about twice as fast as A100.
    const LinkSpec hh = linkBetween(dgxH100(), dgxH100());
    const LinkSpec aa = linkBetween(dgxA100(), dgxA100());
    const std::int64_t bytes = 4'000'000'000;
    EXPECT_NEAR(static_cast<double>(aa.wireTime(bytes)) /
                    static_cast<double>(hh.wireTime(bytes)),
                2.0, 0.01);
}

// --- Fleet footprint ---

TEST(FleetFootprintTest, AccumulatesMachines)
{
    FleetFootprint fleet;
    fleet.add(dgxA100(), 2);
    fleet.add(dgxH100(), 1);
    EXPECT_EQ(fleet.machines, 3);
    EXPECT_DOUBLE_EQ(fleet.costPerHour, 2 * 17.6 + 38.0);
    EXPECT_NEAR(fleet.powerWatts,
                2 * dgxA100().provisionedPowerWatts() +
                    dgxH100().provisionedPowerWatts(),
                1e-9);
}

TEST(FleetFootprintTest, CostAndEnergyForDuration)
{
    FleetFootprint fleet;
    fleet.add(dgxA100(), 1);
    const sim::TimeUs hour = sim::secondsToUs(3600);
    EXPECT_NEAR(fleet.costFor(hour), 17.6, 1e-9);
    EXPECT_NEAR(fleet.energyWhFor(hour), dgxA100().provisionedPowerWatts(),
                1e-6);
}

}  // namespace
}  // namespace splitwise::hw
