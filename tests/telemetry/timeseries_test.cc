#include "telemetry/timeseries.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "json_checker.h"
#include "sim/simulator.h"

namespace splitwise::telemetry {
namespace {

TEST(TimeSeriesTest, ColumnLookup)
{
    TimeSeries ts;
    ts.columns = {"t_s", "a", "b"};
    ts.rows = {{0.0, 1.0, 2.0}, {1.0, 3.0, 4.0}};
    EXPECT_EQ(ts.columnIndex("a"), 1);
    EXPECT_EQ(ts.columnIndex("missing"), -1);
    const auto b = ts.column("b");
    ASSERT_EQ(b.size(), 2u);
    EXPECT_DOUBLE_EQ(b[0], 2.0);
    EXPECT_DOUBLE_EQ(b[1], 4.0);
    EXPECT_THROW(ts.column("missing"), std::runtime_error);
}

TEST(TimeSeriesTest, CsvHasHeaderAndOneLinePerRow)
{
    TimeSeries ts;
    ts.columns = {"t_s", "x"};
    ts.rows = {{0.0, 1.0}, {0.5, 2.0}};
    const std::string csv = ts.toCsv();
    EXPECT_EQ(csv, "t_s,x\n0,1\n0.5,2\n");
}

TEST(TimeSeriesTest, JsonParsesBackAndSummarizes)
{
    TimeSeries ts;
    ts.columns = {"t_s", "x"};
    for (int i = 0; i < 10; ++i)
        ts.rows.push_back({0.1 * i, static_cast<double>(i)});
    const std::string json = ts.toJson(4);
    test_json::Checker checker(json);
    EXPECT_TRUE(checker.valid())
        << "parse error near " << json.substr(checker.errorAt(), 40);
    EXPECT_NE(json.find("\"samples\":10"), std::string::npos);
    EXPECT_NE(json.find("\"mean\":4.5"), std::string::npos);
    EXPECT_NE(json.find("\"histogram\":["), std::string::npos);
}

class SamplerTest : public ::testing::Test {
  protected:
    SamplerTest()
    {
        registry_.addGauge("value", [this] { return value_; });
    }

    sim::Simulator sim_;
    MetricsRegistry registry_;
    double value_ = 0.0;
};

TEST_F(SamplerTest, EmitsRowsOnTheGrid)
{
    TimeSeriesSampler sampler(sim_, registry_, 1000);
    sampler.install();
    // Events at 2500 and 5000; boundaries 1000..5000 all crossed.
    sim_.post(2500, [this] { value_ = 1.0; });
    sim_.post(5000, [this] { value_ = 2.0; });
    sim_.run();
    sampler.finish();

    const auto& series = sampler.series();
    const auto t = series.column("t_s");
    ASSERT_EQ(t.size(), 6u);  // t=0 + five boundaries
    EXPECT_DOUBLE_EQ(t[0], 0.0);
    EXPECT_DOUBLE_EQ(t[5], 0.005);

    // A boundary row carries the state current *at* that boundary:
    // the t=3000/4000/5000 rows see the t=2500 update, and the
    // t=5000 grid row is emitted before the t=5000 event runs.
    const auto v = series.column("value");
    EXPECT_DOUBLE_EQ(v[2], 0.0);  // t=2000
    EXPECT_DOUBLE_EQ(v[3], 1.0);  // t=3000
    EXPECT_DOUBLE_EQ(v[5], 1.0);  // t=5000 boundary, pre-event
}

TEST_F(SamplerTest, FinishEmitsFinalRowWithLatestState)
{
    TimeSeriesSampler sampler(sim_, registry_, 1000);
    sampler.install();
    sim_.post(1500, [this] { value_ = 7.0; });
    sim_.run();
    sampler.finish();
    const auto v = sampler.series().column("value");
    // Rows: t=0, t=1000, finish at t=1500.
    ASSERT_EQ(v.size(), 3u);
    EXPECT_DOUBLE_EQ(v.back(), 7.0);
    EXPECT_DOUBLE_EQ(sampler.series().column("t_s").back(), 0.0015);
}

TEST_F(SamplerTest, OnEventSampleLandsBetweenGridPoints)
{
    TimeSeriesSampler sampler(sim_, registry_, 1000);
    sampler.install();
    sim_.post(1499, [this, &sampler] {
        value_ = 3.0;
        sampler.sampleNow();
    });
    sim_.post(3000, [] {});
    sim_.run();
    sampler.finish();
    const auto t = sampler.series().column("t_s");
    const auto v = sampler.series().column("value");
    // t=0, 1000, on-event 1499, 2000, 3000.
    ASSERT_EQ(t.size(), 5u);
    EXPECT_DOUBLE_EQ(t[2], 0.001499);
    EXPECT_DOUBLE_EQ(v[2], 3.0);
    EXPECT_DOUBLE_EQ(v[1], 0.0);
}

TEST_F(SamplerTest, DuplicateTimestampsCollapse)
{
    TimeSeriesSampler sampler(sim_, registry_, 1000);
    sampler.install();
    sim_.post(1000, [&sampler] { sampler.sampleNow(); });
    sim_.run();
    sampler.finish();
    // Grid row at t=1000 plus the on-event sample and finish() at
    // the same instant collapse to one row.
    EXPECT_EQ(sampler.series().rows.size(), 2u);
}

TEST_F(SamplerTest, FinishDetachesTheHook)
{
    TimeSeriesSampler sampler(sim_, registry_, 1000);
    sampler.install();
    sim_.run();
    sampler.finish();
    const auto rows = sampler.series().rows.size();
    sim_.post(sim_.now() + 10000, [] {});
    sim_.run();
    EXPECT_EQ(sampler.series().rows.size(), rows);
}

TEST(SamplerConfigTest, NonPositiveIntervalFails)
{
    sim::Simulator sim;
    MetricsRegistry reg;
    EXPECT_THROW(TimeSeriesSampler(sim, reg, 0), std::runtime_error);
    EXPECT_THROW(TimeSeriesSampler(sim, reg, -5), std::runtime_error);
}

}  // namespace
}  // namespace splitwise::telemetry
