#ifndef SPLITWISE_TESTS_TELEMETRY_JSON_CHECKER_H_
#define SPLITWISE_TESTS_TELEMETRY_JSON_CHECKER_H_

/**
 * @file
 * A deliberately tiny recursive-descent JSON parser used by the
 * telemetry tests to prove exported documents parse back. It builds
 * no DOM - it only validates syntax and lets callers walk values via
 * callbacks on object keys. Test-only; the production exporters
 * hand-serialize and must never depend on this.
 */

#include <cctype>
#include <cstddef>
#include <string>

namespace splitwise::test_json {

/** Validating cursor over a JSON document. */
class Checker {
  public:
    explicit Checker(const std::string& text) : text_(text) {}

    /** Parse the whole document; false on any syntax error. */
    bool
    valid()
    {
        pos_ = 0;
        if (!value())
            return false;
        skipWs();
        return pos_ == text_.size();
    }

    /** Offset of the first error after a failed valid(). */
    std::size_t errorAt() const { return pos_; }

  private:
    bool
    value()
    {
        skipWs();
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool
    object()
    {
        ++pos_;  // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_;  // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '\\') {
                pos_ += 2;
                continue;
            }
            if (c == '"') {
                ++pos_;
                return true;
            }
            // Control characters must be escaped in valid JSON.
            if (static_cast<unsigned char>(c) < 0x20)
                return false;
            ++pos_;
        }
        return false;
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (std::isdigit(peekRaw()))
            ++pos_;
        if (peek() == '.') {
            ++pos_;
            while (std::isdigit(peekRaw()))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            while (std::isdigit(peekRaw()))
                ++pos_;
        }
        return pos_ > start && std::isdigit(static_cast<unsigned char>(
                                   text_[pos_ - 1]));
    }

    bool
    literal(const char* word)
    {
        for (const char* p = word; *p; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                return false;
            ++pos_;
        }
        return true;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
    int peekRaw() const
    {
        return pos_ < text_.size()
                   ? static_cast<unsigned char>(text_[pos_])
                   : 0;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

}  // namespace splitwise::test_json

#endif  // SPLITWISE_TESTS_TELEMETRY_JSON_CHECKER_H_
