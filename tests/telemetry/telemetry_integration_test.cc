#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <utility>

#include "core/cluster.h"
#include "core/designs.h"
#include "core/report_io.h"
#include "json_checker.h"
#include "model/llm_config.h"
#include "telemetry/trace_recorder.h"
#include "workload/trace_gen.h"
#include "workload/workloads.h"

namespace splitwise {
namespace {

using core::Cluster;
using core::RunReport;
using core::SimConfig;

workload::Trace
convTrace(double rps, double seconds, std::uint64_t seed = 7)
{
    workload::TraceGenerator gen(workload::conversation(), seed);
    return gen.generate(rps, sim::secondsToUs(seconds));
}

#if SPLITWISE_TELEMETRY_ENABLED

TEST(TelemetryIntegrationTest, TraceExportIsWellFormedPerfettoJson)
{
    const auto trace = convTrace(8.0, 15);
    SimConfig config;
    config.telemetry.traceEnabled = true;
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(2, 2), config);
    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.requests.completed(), trace.size());

    const auto* rec = cluster.traceRecorder();
    ASSERT_NE(rec, nullptr);
    EXPECT_GT(rec->eventCount(), 0u);
    // Every span begun during the run was ended or closed.
    EXPECT_EQ(rec->openSpans(), 0u);

    const std::string json = rec->toJson();
    test_json::Checker checker(json);
    EXPECT_TRUE(checker.valid())
        << "JSON parse error near offset " << checker.errorAt() << ": "
        << json.substr(checker.errorAt(), 40);
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
    // All three track processes show up in a real run.
    for (const char* name : {"\"requests\"", "\"machines\"", "\"cluster\""})
        EXPECT_NE(json.find(name), std::string::npos) << name;
}

TEST(TelemetryIntegrationTest, ExportedTimestampsAreMonotonicPerTrack)
{
    const auto trace = convTrace(8.0, 10);
    SimConfig config;
    config.telemetry.traceEnabled = true;
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(2, 2), config);
    cluster.run(trace);

    // Walk the exported array in order and track the last ts seen on
    // each (pid, tid). The exporter promises a stable sort by ts, so
    // within any track timestamps must never go backwards.
    const std::string json = cluster.traceRecorder()->toJson();
    std::map<std::pair<long, long>, double> last_ts;
    std::size_t events = 0;
    std::size_t pos = 0;
    auto field = [&](const char* key, std::size_t from, double& out) {
        const std::string needle = std::string("\"") + key + "\":";
        const auto at = json.find(needle, from);
        if (at == std::string::npos)
            return false;
        out = std::stod(json.substr(at + needle.size()));
        return true;
    };
    while ((pos = json.find("{\"ph\":\"", pos)) != std::string::npos) {
        if (json[pos + 7] == 'M') {  // metadata events carry no ts
            ++pos;
            continue;
        }
        double pid = 0, tid = 0, ts = 0;
        ASSERT_TRUE(field("pid", pos, pid));
        ASSERT_TRUE(field("tid", pos, tid));
        ASSERT_TRUE(field("ts", pos, ts));
        const auto key = std::make_pair(static_cast<long>(pid),
                                        static_cast<long>(tid));
        auto it = last_ts.find(key);
        if (it != last_ts.end()) {
            EXPECT_GE(ts, it->second) << "track pid=" << pid
                                      << " tid=" << tid;
        }
        last_ts[key] = ts;
        ++events;
        ++pos;
    }
    EXPECT_EQ(events, cluster.traceRecorder()->eventCount());
    EXPECT_GT(last_ts.size(), 4u);  // several request + machine tracks
}

TEST(TelemetryIntegrationTest, SamplerFollowsCrashAndRejoin)
{
    const auto trace = convTrace(8.0, 20);
    SimConfig config;
    config.telemetry.sampleIntervalUs = sim::secondsToUs(1.0);
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(2, 2), config);
    cluster.scheduleFailure(3, sim::secondsToUs(5),
                            sim::secondsToUs(7));

    const RunReport report = cluster.run(trace);
    EXPECT_EQ(report.rejoins, 1u);
    const auto& series = report.timeseries;
    ASSERT_FALSE(series.empty());

    // On-event samples at the fail (t=5s) and rejoin (t=12s)
    // instants land between the 1 s grid rows.
    const auto t = series.column("t_s");
    auto has_row_at = [&](double when) {
        return std::any_of(t.begin(), t.end(), [&](double v) {
            return std::abs(v - when) < 1e-9;
        });
    };
    EXPECT_TRUE(has_row_at(5.0));
    EXPECT_TRUE(has_row_at(12.0));

    // The token-pool machine count dips while the machine is down.
    const auto pool = series.column("token_pool_machines");
    const auto lo = *std::min_element(pool.begin(), pool.end());
    const auto hi = *std::max_element(pool.begin(), pool.end());
    EXPECT_EQ(hi, 2.0);
    EXPECT_EQ(lo, 1.0);

    // The rejoin made it into the counters column too.
    EXPECT_EQ(series.column("rejoins").back(), 1.0);
}

TEST(TelemetryIntegrationTest, FinalTokenSampleMatchesPoolAggregates)
{
    const auto trace = convTrace(10.0, 20);
    SimConfig config;
    config.telemetry.sampleIntervalUs = sim::secondsToUs(1.0);
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(2, 2), config);
    const RunReport report = cluster.run(trace);

    const auto sampled = report.timeseries.column("tokens_generated");
    ASSERT_FALSE(sampled.empty());
    const double aggregate =
        static_cast<double>(report.promptPool.tokensGenerated +
                            report.tokenPool.tokensGenerated);
    ASSERT_GT(aggregate, 0.0);
    // finish() emits a final end-of-run row, so the last cumulative
    // sample matches the aggregate exactly - well within the 1%
    // acceptance bound.
    EXPECT_NEAR(sampled.back() / aggregate, 1.0, 0.01);

    const auto prompts =
        report.timeseries.column("prompt_tokens_processed");
    const double prompt_aggregate =
        static_cast<double>(report.promptPool.promptTokensProcessed +
                            report.tokenPool.promptTokensProcessed);
    EXPECT_NEAR(prompts.back() / prompt_aggregate, 1.0, 0.01);
}

TEST(TelemetryIntegrationTest, FaultCountersFlowThroughRegistry)
{
    const auto trace = convTrace(8.0, 20);
    SimConfig config;
    config.telemetry.sampleIntervalUs = sim::secondsToUs(1.0);
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(2, 2), config);
    cluster.scheduleFailure(3, sim::secondsToUs(5), sim::secondsToUs(7));
    const RunReport report = cluster.run(trace);

    // The legacy report counters are now read out of the registry;
    // the sampled columns and the scalar report must agree.
    const auto& ts = report.timeseries;
    EXPECT_EQ(ts.column("restarts").back(),
              static_cast<double>(report.restarts));
    EXPECT_EQ(ts.column("rejoins").back(),
              static_cast<double>(report.rejoins));
    EXPECT_EQ(ts.column("rejected").back(),
              static_cast<double>(report.rejected));
    EXPECT_EQ(ts.column("kv_transfers").back(),
              static_cast<double>(report.transfers.transfers));
    EXPECT_GT(report.restarts, 0u);
}

TEST(TelemetryIntegrationTest, TimeseriesAppearsInReportJson)
{
    const auto trace = convTrace(5.0, 10);
    SimConfig config;
    config.telemetry.sampleIntervalUs = sim::secondsToUs(2.0);
    config.telemetry.perMachineSeries = false;
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(1, 1), config);
    const RunReport report = cluster.run(trace);

    const std::string json = core::reportToJson(report);
    test_json::Checker checker(json);
    EXPECT_TRUE(checker.valid())
        << "parse error near " << json.substr(checker.errorAt(), 40);
    EXPECT_NE(json.find("\"timeseries\""), std::string::npos);
    EXPECT_NE(json.find("\"tokens_generated\""), std::string::npos);
    // perMachineSeries=false keeps per-machine gauges out.
    EXPECT_EQ(json.find("\"m0_queue_tokens\""), std::string::npos);
}

#endif  // SPLITWISE_TELEMETRY_ENABLED

TEST(TelemetryIntegrationTest, TelemetryOffLeavesTheReportUntouched)
{
    const auto trace = convTrace(8.0, 15);
    auto run_once = [&](bool telemetry) {
        SimConfig config;
        if (telemetry) {
            config.telemetry.traceEnabled = true;
            config.telemetry.sampleIntervalUs = sim::secondsToUs(1.0);
        }
        Cluster cluster(model::llama2_70b(), core::splitwiseHH(2, 2),
                        config);
        cluster.scheduleFailure(3, sim::secondsToUs(4),
                                sim::secondsToUs(5));
        RunReport report = cluster.run(trace);
        // Sampling adds the timeseries block to the JSON by design;
        // strip it so the comparison covers everything else.
        report.timeseries = {};
        return core::reportToJson(report);
    };
    // Observability must not perturb the simulation: the serialized
    // report is bit-identical with telemetry on and off.
    EXPECT_EQ(run_once(false), run_once(true));
}

TEST(TelemetryIntegrationTest, NoTraceRecorderUnlessEnabled)
{
    Cluster cluster(model::llama2_70b(), core::splitwiseHH(1, 1));
    EXPECT_EQ(cluster.traceRecorder(), nullptr);
    const RunReport report = cluster.run(convTrace(2.0, 5));
    EXPECT_TRUE(report.timeseries.empty());
}

}  // namespace
}  // namespace splitwise
