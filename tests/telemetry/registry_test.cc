#include "telemetry/metrics_registry.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace splitwise::telemetry {
namespace {

TEST(MetricsRegistryTest, OwnedCounterAccumulates)
{
    MetricsRegistry reg;
    Counter* c = reg.counter("restarts");
    ASSERT_NE(c, nullptr);
    c->add();
    c->add(4);
    EXPECT_EQ(c->value(), 5u);
    EXPECT_EQ(reg.counterValue("restarts"), 5u);
}

TEST(MetricsRegistryTest, CounterIsCreateOrGet)
{
    MetricsRegistry reg;
    Counter* a = reg.counter("x");
    Counter* b = reg.counter("x");
    EXPECT_EQ(a, b);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistryTest, CounterPointersSurviveGrowth)
{
    MetricsRegistry reg;
    Counter* first = reg.counter("c0");
    std::vector<Counter*> all{first};
    for (int i = 1; i < 100; ++i)
        all.push_back(reg.counter("c" + std::to_string(i)));
    first->add(7);
    EXPECT_EQ(all[0]->value(), 7u);
    EXPECT_EQ(reg.counterValue("c0"), 7u);
}

TEST(MetricsRegistryTest, CallbackCounterReadsExternalState)
{
    MetricsRegistry reg;
    std::uint64_t external = 0;
    reg.addCounterFn("external", [&] { return external; });
    external = 42;
    EXPECT_EQ(reg.counterValue("external"), 42u);
}

TEST(MetricsRegistryTest, GaugeReadsInstantaneousValue)
{
    MetricsRegistry reg;
    double watts = 0.0;
    reg.addGauge("power_w", [&] { return watts; });
    watts = 1234.5;
    const auto values = reg.sampleValues();
    ASSERT_EQ(values.size(), 1u);
    EXPECT_DOUBLE_EQ(values[0], 1234.5);
}

TEST(MetricsRegistryTest, RegistrationOrderIsSampleOrder)
{
    MetricsRegistry reg;
    reg.counter("first")->add(1);
    reg.addGauge("second", [] { return 2.0; });
    reg.addCounterFn("third", [] { return std::uint64_t{3}; });
    const auto names = reg.names();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "first");
    EXPECT_EQ(names[1], "second");
    EXPECT_EQ(names[2], "third");
    const auto values = reg.sampleValues();
    ASSERT_EQ(values.size(), 3u);
    EXPECT_DOUBLE_EQ(values[0], 1.0);
    EXPECT_DOUBLE_EQ(values[1], 2.0);
    EXPECT_DOUBLE_EQ(values[2], 3.0);
}

TEST(MetricsRegistryTest, UnknownCounterValueIsZero)
{
    MetricsRegistry reg;
    EXPECT_EQ(reg.counterValue("missing"), 0u);
}

TEST(MetricsRegistryTest, GaugeIsNotReadableAsCounter)
{
    MetricsRegistry reg;
    reg.addGauge("g", [] { return 1.0; });
    EXPECT_EQ(reg.counterValue("g"), 0u);
}

TEST(MetricsRegistryTest, DuplicateNameAcrossKindsFails)
{
    MetricsRegistry reg;
    reg.addGauge("name", [] { return 0.0; });
    EXPECT_THROW(reg.counter("name"), std::runtime_error);
    EXPECT_THROW(reg.addGauge("name", [] { return 0.0; }),
                 std::runtime_error);
    EXPECT_THROW(reg.addCounterFn("name", [] { return std::uint64_t{0}; }),
                 std::runtime_error);
}

}  // namespace
}  // namespace splitwise::telemetry
