#include "telemetry/trace_recorder.h"

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>

#include "json_checker.h"
#include "sim/log.h"

namespace splitwise::telemetry {
namespace {

TEST(TraceRecorderTest, TracksAddressTheThreeProcesses)
{
    const Track req = TraceRecorder::requestTrack(42);
    const Track mach = TraceRecorder::machineTrack(3);
    const Track cluster = TraceRecorder::clusterTrack();
    EXPECT_NE(req.pid, mach.pid);
    EXPECT_NE(mach.pid, cluster.pid);
    EXPECT_NE(req.pid, cluster.pid);
    EXPECT_EQ(req.tid, 42);
    EXPECT_EQ(mach.tid, 3);
}

TEST(TraceRecorderTest, BeginEndBookkeeping)
{
    TraceRecorder rec;
    const Track t = TraceRecorder::machineTrack(0);
    rec.begin(t, "iter", 10);
    EXPECT_EQ(rec.openSpans(), 1u);
    rec.end(t, 20);
    EXPECT_EQ(rec.openSpans(), 0u);
    EXPECT_EQ(rec.eventCount(), 2u);
}

TEST(TraceRecorderTest, SpansNestPerTrack)
{
    TraceRecorder rec;
    const Track t = TraceRecorder::machineTrack(0);
    rec.begin(t, "outer", 0);
    rec.begin(t, "inner", 5);
    EXPECT_EQ(rec.openSpans(), 2u);
    rec.end(t, 7);
    rec.end(t, 9);
    EXPECT_EQ(rec.openSpans(), 0u);
}

TEST(TraceRecorderDeathTest, UnmatchedEndPanics)
{
    TraceRecorder rec;
    EXPECT_DEATH(rec.end(TraceRecorder::machineTrack(0), 5), "matching");
}

TEST(TraceRecorderTest, TransitionKeepsOneOpenSpanPerTrack)
{
    TraceRecorder rec;
    const Track t = TraceRecorder::requestTrack(1);
    rec.transition(t, "queued", 0);
    rec.transition(t, "prompt", 10);
    rec.transition(t, "decode", 20);
    EXPECT_EQ(rec.openSpans(), 1u);
    // queued B, queued E, prompt B, prompt E, decode B.
    EXPECT_EQ(rec.eventCount(), 5u);
    rec.close(t, 30);
    EXPECT_EQ(rec.openSpans(), 0u);
}

TEST(TraceRecorderTest, TransitionToSamePhaseIsANoOp)
{
    TraceRecorder rec;
    const Track t = TraceRecorder::requestTrack(1);
    rec.transition(t, "prompt", 0);
    // Chunked prefill: the prompt phase spans several iterations.
    rec.transition(t, "prompt", 10);
    rec.transition(t, "prompt", 20);
    EXPECT_EQ(rec.eventCount(), 1u);
    EXPECT_EQ(rec.openSpans(), 1u);
}

TEST(TraceRecorderTest, CloseWithoutOpenSpanIsANoOp)
{
    TraceRecorder rec;
    rec.close(TraceRecorder::requestTrack(9), 5);
    EXPECT_EQ(rec.eventCount(), 0u);
}

TEST(TraceRecorderTest, ExportParsesBack)
{
    TraceRecorder rec;
    const Track req = TraceRecorder::requestTrack(7);
    const Track mach = TraceRecorder::machineTrack(2);
    rec.setTrackName(mach, "m2 DGX-H100 \"token\"");
    rec.transition(req, "queued", 0, {{"machine", 2}});
    rec.begin(mach, "prompt_iter", 5, {{"prompt_tokens", std::int64_t{1500}}});
    rec.instant(TraceRecorder::clusterTrack(), "shed", 7,
                {{"request", 3.5}, {"why", "queue\nfull"}});
    rec.end(mach, 12);
    rec.close(req, 12);

    const std::string json = rec.toJson();
    test_json::Checker checker(json);
    EXPECT_TRUE(checker.valid())
        << "JSON parse error near offset " << checker.errorAt() << ": "
        << json.substr(checker.errorAt(), 40);

    // Perfetto essentials present.
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    // The track name's quotes and the arg's newline were escaped.
    EXPECT_NE(json.find("\\\"token\\\""), std::string::npos);
    EXPECT_NE(json.find("queue\\nfull"), std::string::npos);
    // Instants carry the thread scope marker.
    EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
}

TEST(TraceRecorderTest, ExportSortsEventsByTimestamp)
{
    TraceRecorder rec;
    // Record out of order across tracks; export must sort.
    rec.instant(TraceRecorder::clusterTrack(), "late", 500);
    rec.begin(TraceRecorder::machineTrack(0), "iter", 100);
    rec.end(TraceRecorder::machineTrack(0), 200);
    const std::string json = rec.toJson();
    const auto late = json.find("\"late\"");
    const auto iter = json.find("\"iter\"");
    ASSERT_NE(late, std::string::npos);
    ASSERT_NE(iter, std::string::npos);
    EXPECT_LT(iter, late);
}

TEST(TraceRecorderTest, WriteFileRoundTrips)
{
    TraceRecorder rec;
    rec.instant(TraceRecorder::clusterTrack(), "marker", 1);
    const std::string path = ::testing::TempDir() + "trace_rt.json";
    rec.writeFile(path);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    test_json::Checker checker(content);
    EXPECT_TRUE(checker.valid());
    EXPECT_NE(content.find("\"marker\""), std::string::npos);
}

TEST(TraceRecorderTest, WriteFileToBadPathFails)
{
    TraceRecorder rec;
    EXPECT_THROW(rec.writeFile("/nonexistent-dir/trace.json"),
                 std::runtime_error);
}

}  // namespace
}  // namespace splitwise::telemetry
