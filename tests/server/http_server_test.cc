/**
 * @file
 * Full-stack loopback test of the HTTP serving front-end: real
 * sockets, the CompletionService, an Ingress, and a cluster serve
 * loop under SimClock.
 */

#include "server/serving.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/cluster.h"
#include "core/designs.h"
#include "core/ingress.h"
#include "core/json.h"
#include "core/run.h"
#include "model/llm_config.h"
#include "server/http_client.h"
#include "server/http_server.h"
#include "sim/clock.h"

namespace splitwise::server {
namespace {

/** Server + serve loop + HTTP listener, torn down in order. Most
 *  tests run under SimClock; tests that need real token cadence
 *  (e.g. to win a cancellation race) override makeClock(). */
class ServerFixture : public ::testing::Test {
  protected:
    virtual std::unique_ptr<sim::Clock>
    makeClock()
    {
        return std::make_unique<sim::SimClock>();
    }

    void
    SetUp() override
    {
        clock_ = makeClock();
        core::RunOptions options;
        options.llm = model::llama2_70b();
        options.design = core::splitwiseHH(1, 1);
        serveThread_ = std::thread([this, options] {
            core::runLive(options, ingress_, *clock_);
        });
        service_ = std::make_unique<CompletionService>(ingress_);
        http_ = std::make_unique<HttpServer>(
            [this](const HttpRequest& request, ResponseWriter& writer) {
                service_->handle(request, writer);
            });
        ASSERT_TRUE(http_->start(0));
    }

    void
    TearDown() override
    {
        ingress_.shutdown();
        serveThread_.join();
        http_->stop();
        EXPECT_EQ(ingress_.unresolved(), 0u);
    }

    int port() { return http_->port(); }

    core::Ingress ingress_;
    std::unique_ptr<sim::Clock> clock_;
    std::thread serveThread_;
    std::unique_ptr<CompletionService> service_;
    std::unique_ptr<HttpServer> http_;
};

/** Wall-clock variant: tokens stream at real decode cadence, so a
 *  client's DELETE can land mid-stream instead of losing the race
 *  against virtual time. */
class WallClockServerFixture : public ServerFixture {
  protected:
    std::unique_ptr<sim::Clock>
    makeClock() override
    {
        return std::make_unique<sim::WallClock>();
    }
};

TEST_F(ServerFixture, CompletionStreamsTokenRecords)
{
    std::vector<core::JsonValue> records;
    std::string partial;
    const int status = httpStream(
        port(), "POST", "/v1/completions",
        "{\"prompt_tokens\": 128, \"output_tokens\": 3}",
        [&](const std::string& data) {
            partial += data;
            std::size_t eol;
            while ((eol = partial.find('\n')) != std::string::npos) {
                records.push_back(
                    core::JsonValue::parse(partial.substr(0, eol)));
                partial.erase(0, eol + 1);
            }
            return true;
        });
    EXPECT_EQ(status, 200);
    ASSERT_EQ(records.size(), 3u);
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].at("tokens").asInt(),
                  static_cast<std::int64_t>(i + 1));
        EXPECT_EQ(records[i].at("finished").asBool(),
                  i + 1 == records.size());
    }
}

TEST_F(ServerFixture, MalformedBodyIs400)
{
    const HttpResult result =
        httpRequest(port(), "POST", "/v1/completions", "not json");
    EXPECT_EQ(result.status, 400);

    const HttpResult missing =
        httpRequest(port(), "POST", "/v1/completions", "{}");
    EXPECT_EQ(missing.status, 400);
}

TEST_F(ServerFixture, UnknownRouteIs404)
{
    const HttpResult result = httpRequest(port(), "GET", "/nope");
    EXPECT_EQ(result.status, 404);
}

TEST_F(WallClockServerFixture, DeleteCancelsAStream)
{
    std::int64_t final_tokens = -1;
    std::string partial;
    const int status = httpStream(
        port(), "POST", "/v1/completions",
        "{\"prompt_tokens\": 128, \"output_tokens\": 2000}",
        [&](const std::string& data) {
            partial += data;
            std::size_t eol;
            while ((eol = partial.find('\n')) != std::string::npos) {
                const core::JsonValue record =
                    core::JsonValue::parse(partial.substr(0, eol));
                partial.erase(0, eol + 1);
                final_tokens = record.at("tokens").asInt();
                if (record.at("tokens").asInt() == 1) {
                    const std::string id =
                        std::to_string(record.at("id").asInt());
                    EXPECT_EQ(httpRequest(port(), "DELETE",
                                          "/v1/completions/" + id)
                                  .status,
                              202);
                }
                if (record.at("finished").asBool())
                    return false;
            }
            return true;
        });
    EXPECT_EQ(status, 200);
    // Cancelled long before the 2000-token budget.
    EXPECT_GE(final_tokens, 1);
    EXPECT_LT(final_tokens, 2000);
}

TEST_F(ServerFixture, MetricsSnapshotIsServed)
{
    const HttpResult result = httpRequest(port(), "GET", "/v1/metrics");
    ASSERT_EQ(result.status, 200);
    const core::JsonValue doc = core::JsonValue::parse(result.body);
    EXPECT_TRUE(doc.has("simulated_us"));
    EXPECT_TRUE(doc.has("metrics"));
}

TEST_F(ServerFixture, ShutdownDrainsAndRejectsNewWork)
{
    EXPECT_EQ(httpRequest(port(), "POST", "/v1/admin/shutdown").status,
              202);
    // A submit after shutdown is terminally rejected (503 or a
    // rejected record, depending on when the drain lands).
    const HttpResult result =
        httpRequest(port(), "POST", "/v1/completions",
                    "{\"prompt_tokens\": 64}");
    EXPECT_TRUE(result.status == 503 || result.status == 200);
}

}  // namespace
}  // namespace splitwise::server
