#include "provision/provisioner.h"

#include <gtest/gtest.h>

#include "hw/machine_spec.h"
#include "model/llm_config.h"
#include "workload/workloads.h"

namespace splitwise::provision {
namespace {

/** Fast options: short traces, coarse searches. */
ProvisionerOptions
fastOptions()
{
    ProvisionerOptions o;
    o.traceDuration = sim::secondsToUs(15);
    o.rpsTolerance = 4.0;
    o.maxRpsCeiling = 128.0;
    o.promptFractions = {0.4, 0.6, 0.8};
    return o;
}

class ProvisionerTest : public ::testing::Test {
  protected:
    Provisioner prov_{model::llama2_70b(), workload::conversation(),
                      fastOptions()};
};

TEST(DesignKindTest, NamesAndPredicates)
{
    EXPECT_STREQ(designKindName(DesignKind::kSplitwiseHA), "Splitwise-HA");
    EXPECT_TRUE(isBaseline(DesignKind::kBaselineA100));
    EXPECT_FALSE(isBaseline(DesignKind::kSplitwiseAA));
    EXPECT_EQ(allDesignKinds().size(), 6u);
}

TEST(DesignKindTest, MakeDesignFoldsBaselineCounts)
{
    const auto d = makeDesign(DesignKind::kBaselineH100, 3, 2);
    EXPECT_EQ(d.numPrompt, 5);
    EXPECT_EQ(d.numToken, 0);
    const auto s = makeDesign(DesignKind::kSplitwiseHA, 3, 2);
    EXPECT_EQ(s.numPrompt, 3);
    EXPECT_EQ(s.numToken, 2);
}

TEST_F(ProvisionerTest, EvaluateReportsSloVerdict)
{
    // A generously sized cluster at trivial load passes.
    const auto good = prov_.evaluate(core::splitwiseHH(4, 4), 2.0);
    EXPECT_TRUE(good.slo.pass) << good.slo.violation;
    // A tiny cluster at crushing load fails.
    const auto bad = prov_.evaluate(core::splitwiseHH(1, 1), 40.0);
    EXPECT_FALSE(bad.slo.pass);
}

TEST_F(ProvisionerTest, MaxThroughputMonotoneInMachines)
{
    const double small = prov_.maxThroughput(core::splitwiseHH(2, 2));
    const double large = prov_.maxThroughput(core::splitwiseHH(4, 4));
    EXPECT_GT(small, 0.0);
    EXPECT_GE(large, small);
}

TEST_F(ProvisionerTest, H100BaselineFasterThanA100PerMachine)
{
    const double a = prov_.maxThroughput(core::baselineA100(3));
    const double h = prov_.maxThroughput(core::baselineH100(3));
    EXPECT_GT(h, a);
}

TEST_F(ProvisionerTest, SweepMarksFeasibleRegion)
{
    const auto cells =
        prov_.sweep(DesignKind::kSplitwiseHH, {1, 4}, {1, 4}, 6.0);
    ASSERT_EQ(cells.size(), 4u);
    // The largest cluster must do at least as well as the smallest.
    bool small_pass = false;
    bool large_pass = false;
    for (const auto& c : cells) {
        if (c.numPrompt == 1 && c.numToken == 1)
            small_pass = c.pass;
        if (c.numPrompt == 4 && c.numToken == 4)
            large_pass = c.pass;
    }
    EXPECT_TRUE(large_pass);
    EXPECT_TRUE(!small_pass || large_pass);
}

TEST_F(ProvisionerTest, SweepRecordsErrorCellsAndContinues)
{
    // A zero-prompt-machine design cannot be built; the sweep must
    // record the failure on that cell and still simulate the rest.
    const auto cells =
        prov_.sweep(DesignKind::kSplitwiseHH, {0, 2}, {2}, 2.0);
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_TRUE(cells[0].error);
    EXPECT_FALSE(cells[0].pass);
    EXPECT_FALSE(cells[0].errorMessage.empty());
    EXPECT_FALSE(cells[1].error);
    EXPECT_TRUE(cells[1].pass);
}

TEST_F(ProvisionerTest, SweepCapturesReportsOnRequest)
{
    auto options = fastOptions();
    options.captureReports = true;
    const Provisioner prov(model::llama2_70b(), workload::conversation(),
                           options);
    const auto cells = prov.sweep(DesignKind::kSplitwiseHH, {2}, {2}, 2.0);
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_NE(cells[0].reportJson.find("\"requests\""), std::string::npos);
    // Reports are off by default (they are large).
    const auto plain =
        prov_.sweep(DesignKind::kSplitwiseHH, {2}, {2}, 2.0);
    EXPECT_TRUE(plain[0].reportJson.empty());
}

TEST_F(ProvisionerTest, IsoPowerRespectsBudget)
{
    const double budget = 8 * hw::dgxH100().provisionedPowerWatts();
    for (DesignKind kind :
         {DesignKind::kBaselineH100, DesignKind::kSplitwiseHH,
          DesignKind::kSplitwiseHA}) {
        const Optimum opt = prov_.isoPowerThroughputOptimized(kind, budget);
        ASSERT_TRUE(opt.feasible) << designKindName(kind);
        EXPECT_LE(opt.footprint.powerWatts, budget + 1.0)
            << designKindName(kind);
        EXPECT_GT(opt.maxRps, 0.0);
    }
}

TEST_F(ProvisionerTest, IsoPowerFitsMoreA100sThanH100s)
{
    const double budget = 8 * hw::dgxH100().provisionedPowerWatts();
    const Optimum a = prov_.isoPowerThroughputOptimized(
        DesignKind::kBaselineA100, budget);
    const Optimum h = prov_.isoPowerThroughputOptimized(
        DesignKind::kBaselineH100, budget);
    EXPECT_EQ(h.footprint.machines, 8);
    EXPECT_EQ(a.footprint.machines, 14);  // 1.75x the machines
}

TEST_F(ProvisionerTest, IsoCostRespectsBudget)
{
    const double budget = 6 * hw::dgxH100().costPerHour;
    const Optimum opt =
        prov_.isoCostThroughputOptimized(DesignKind::kSplitwiseAA, budget);
    ASSERT_TRUE(opt.feasible);
    EXPECT_LE(opt.footprint.costPerHour, budget + 1e-9);
}

TEST_F(ProvisionerTest, IsoThroughputFindsMinimalCluster)
{
    const double target = 6.0;
    const Optimum opt =
        prov_.isoThroughputCostOptimized(DesignKind::kSplitwiseHH, target);
    ASSERT_TRUE(opt.feasible);
    // The found cluster meets the target...
    EXPECT_TRUE(prov_.evaluate(opt.design, target).slo.pass);
    // ...and is minimal along its split: one less total machine at a
    // probed split must not be verifiable cheaper than the optimum.
    EXPECT_GE(opt.design.machines(), 2);
}

TEST_F(ProvisionerTest, IsoThroughputPowerPrefersCapped)
{
    // HHcap should never need more power than plain HH for the same
    // throughput (token machines run capped at equal speed).
    const double target = 6.0;
    const Optimum hh =
        prov_.isoThroughputPowerOptimized(DesignKind::kSplitwiseHH, target);
    const Optimum cap = prov_.isoThroughputPowerOptimized(
        DesignKind::kSplitwiseHHcap, target);
    ASSERT_TRUE(hh.feasible);
    ASSERT_TRUE(cap.feasible);
    EXPECT_LE(cap.footprint.powerWatts, hh.footprint.powerWatts * 1.05);
}

TEST_F(ProvisionerTest, InfeasibleBudgetReportsInfeasible)
{
    const Optimum opt = prov_.isoPowerThroughputOptimized(
        DesignKind::kBaselineH100, 10.0 /* watts: fits nothing */);
    EXPECT_FALSE(opt.feasible);
}

}  // namespace
}  // namespace splitwise::provision
