#include "bench/arg_parser.h"

#include <unistd.h>

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace splitwise::bench {
namespace {

/**
 * The bench CLI contract: unknown flags and registration bugs exit 2
 * with a diagnostic on stderr; --help exits 0. Exercised in death
 * tests because ArgParser terminates the process by design.
 */
struct Argv {
    explicit Argv(std::vector<std::string> args) : strings(std::move(args))
    {
        for (auto& s : strings)
            pointers.push_back(s.data());
        pointers.push_back(nullptr);
    }

    int argc() const { return static_cast<int>(strings.size()); }
    char** argv() { return pointers.data(); }

    std::vector<std::string> strings;
    std::vector<char*> pointers;
};

TEST(ArgParserTest, ParsesTypedFlagsAndPositional)
{
    ArgParser parser("bench_x", "test parser");
    int jobs = 0;
    double rate = 1.5;
    bool flag = false;
    std::string out;
    std::string seed;
    parser.addInt("--jobs", &jobs, "worker count");
    parser.addDouble("--rate", &rate, "arrival rate");
    parser.addFlag("--short", &flag, "short run");
    parser.addString("--out", &out, "output path");
    parser.addPositional("seed", &seed, "base seed");

    Argv args({"bench_x", "--jobs=8", "--rate", "2.75", "--short",
               "--out=/tmp/x.json", "1234"});
    parser.parse(args.argc(), args.argv());
    EXPECT_EQ(jobs, 8);
    EXPECT_DOUBLE_EQ(rate, 2.75);
    EXPECT_TRUE(flag);
    EXPECT_EQ(out, "/tmp/x.json");
    EXPECT_EQ(seed, "1234");
}

TEST(ArgParserDeathTest, UnknownFlagExits2)
{
    ArgParser parser("bench_x", "test parser");
    int jobs = 0;
    parser.addInt("--jobs", &jobs, "worker count");
    Argv args({"bench_x", "--job=8"});
    EXPECT_EXIT(parser.parse(args.argc(), args.argv()),
                ::testing::ExitedWithCode(2), "unknown flag --job");
}

TEST(ArgParserDeathTest, InvalidValueExits2)
{
    ArgParser parser("bench_x", "test parser");
    int jobs = 0;
    parser.addInt("--jobs", &jobs, "worker count");
    Argv args({"bench_x", "--jobs=eight"});
    EXPECT_EXIT(parser.parse(args.argc(), args.argv()),
                ::testing::ExitedWithCode(2), "invalid value 'eight'");
}

TEST(ArgParserDeathTest, MissingValueExits2)
{
    ArgParser parser("bench_x", "test parser");
    int jobs = 0;
    parser.addInt("--jobs", &jobs, "worker count");
    Argv args({"bench_x", "--jobs"});
    EXPECT_EXIT(parser.parse(args.argc(), args.argv()),
                ::testing::ExitedWithCode(2), "--jobs requires a value");
}

TEST(ArgParserDeathTest, DuplicateRegistrationExits2)
{
    EXPECT_EXIT(
        {
            ArgParser parser("bench_x", "test parser");
            int jobs = 0;
            int workers = 0;
            parser.addInt("--jobs", &jobs, "worker count");
            parser.addInt("--jobs", &workers, "conflicting registration");
        },
        ::testing::ExitedWithCode(2), "duplicate flag registration --jobs");
}

TEST(ArgParserDeathTest, HelpExitsZeroAndListsFlags)
{
    // printHelp writes to stdout; the death-test matcher only sees
    // stderr, so point stdout at stderr inside the child process.
    EXPECT_EXIT(
        {
            ArgParser parser("bench_x", "one-line summary");
            int jobs = 4;
            bool short_run = false;
            parser.addInt("--jobs", &jobs, "worker count");
            parser.addFlag("--short", &short_run, "short run");
            std::fflush(stdout);
            dup2(STDERR_FILENO, STDOUT_FILENO);
            Argv args({"bench_x", "--help"});
            parser.parse(args.argc(), args.argv());
        },
        ::testing::ExitedWithCode(0),
        "usage: bench_x(.|\n)*one-line summary(.|\n)*--jobs=VALUE"
        "(.|\n)*worker count(.|\n)*default: 4(.|\n)*--short(.|\n)*--help");
}

}  // namespace
}  // namespace splitwise::bench
