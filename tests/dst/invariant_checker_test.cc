#include "testing/invariants.h"

#include <gtest/gtest.h>

#include "core/designs.h"
#include "core/fault_plan.h"
#include "model/llm_config.h"
#include "testing/scenario.h"
#include "workload/trace_gen.h"
#include "workload/workloads.h"

namespace splitwise::testing {
namespace {

workload::Trace
smallTrace(std::uint64_t seed, double rps = 4.0, double seconds = 5.0)
{
    workload::TraceGenerator gen(workload::conversation(), seed);
    return gen.generate(rps, sim::secondsToUs(seconds));
}

TEST(InvariantCheckerTest, CleanRunPassesEveryQuiescentPoint)
{
    const auto trace = smallTrace(5);
    core::Cluster cluster(model::llama2_70b(), core::splitwiseHH(2, 2));
    InvariantChecker checker(cluster);
    const core::RunReport report = cluster.run(trace);
    checker.finalCheck(report);
    EXPECT_GT(checker.checksRun(), 100u);
    EXPECT_EQ(report.requests.completed(), trace.size());
}

TEST(InvariantCheckerTest, CadenceOptionThinsChecks)
{
    const auto trace = smallTrace(5);
    std::uint64_t every = 0;
    std::uint64_t thinned = 0;
    {
        core::Cluster cluster(model::llama2_70b(), core::splitwiseHH(2, 2));
        InvariantChecker checker(cluster);
        cluster.run(trace);
        every = checker.checksRun();
    }
    {
        core::Cluster cluster(model::llama2_70b(), core::splitwiseHH(2, 2));
        InvariantChecker checker(cluster, InvariantOptions{8});
        cluster.run(trace);
        thinned = checker.checksRun();
    }
    EXPECT_GT(thinned, 0u);
    EXPECT_LT(thinned * 4, every);
}

TEST(InvariantCheckerTest, BaselineDesignPasses)
{
    const auto trace = smallTrace(9);
    core::Cluster cluster(model::llama2_70b(), core::baselineA100(3));
    InvariantChecker checker(cluster);
    const core::RunReport report = cluster.run(trace);
    checker.finalCheck(report);
    EXPECT_GT(checker.checksRun(), 0u);
}

/** A crash + rejoin, a link-fault window, and checkpointing all at
 *  once: the recovery paths must uphold every conservation law. */
TEST(InvariantCheckerTest, FaultStormRunStaysClean)
{
    Scenario s;
    s.name = "fault-storm";
    s.numPrompt = 2;
    s.numToken = 2;
    s.kvCheckpointing = true;
    s.kvRetry.maxRetries = 3;
    s.kvRetry.backoffBaseUs = 1000;
    s.traceEnabled = true;
    s.requests = smallTrace(13, 6.0, 6.0);
    s.faults.add({core::FaultKind::kCrash, 2, sim::secondsToUs(1),
                  sim::secondsToUs(2), 1.0});
    s.faults.add({core::FaultKind::kLinkFault, 1, sim::msToUs(500.0),
                  sim::msToUs(400.0), 1.0});
    s.faults.add({core::FaultKind::kSlowdown, 0, sim::secondsToUs(2),
                  sim::secondsToUs(1), 2.5});
    const ScenarioOutcome outcome = runScenario(s);
    EXPECT_FALSE(outcome.violated) << outcome.invariant << ": "
                                   << outcome.detail;
    EXPECT_GT(outcome.completed, 0u);
}

/** The harness validation demanded by the acceptance criteria: a
 *  deliberately planted KV leak must be caught, not just by the
 *  final audit but at the quiescent point right after it lands. */
TEST(InvariantCheckerTest, CatchesPlantedOrphanKvBlock)
{
    Scenario s;
    s.name = "planted-orphan";
    s.numPrompt = 1;
    s.numToken = 1;
    s.requests = smallTrace(21, 3.0, 3.0);
    s.bug.kind = BugKind::kOrphanKvBlock;
    s.bug.atUs = sim::msToUs(300.0);
    s.bug.machineId = 0;
    const ScenarioOutcome outcome = runScenario(s);
    ASSERT_TRUE(outcome.violated);
    EXPECT_EQ(outcome.invariant, "kv-orphan");
    EXPECT_GE(outcome.violationTime, s.bug.atUs);
    // Caught promptly: well before the trace has drained.
    EXPECT_LT(outcome.violationTime, sim::secondsToUs(4));
}

TEST(InvariantCheckerTest, ViolationCarriesEvidence)
{
    Scenario s;
    s.name = "evidence";
    s.numPrompt = 1;
    s.numToken = 1;
    s.requests = smallTrace(22, 2.0, 2.0);
    s.bug.kind = BugKind::kOrphanKvBlock;
    s.bug.atUs = sim::msToUs(200.0);
    s.bug.machineId = 1;
    const ScenarioOutcome outcome = runScenario(s);
    ASSERT_TRUE(outcome.violated);
    EXPECT_FALSE(outcome.detail.empty());
    EXPECT_NE(outcome.outcomeJson.find("\"violated\":true"),
              std::string::npos);
}

}  // namespace
}  // namespace splitwise::testing
