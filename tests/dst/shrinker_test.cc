#include "testing/shrinker.h"

#include <gtest/gtest.h>

#include "workload/trace_gen.h"
#include "workload/workloads.h"

namespace splitwise::testing {
namespace {

/** A busy scenario carrying the planted transfer-path leak: the
 *  prompt-side KV copy of the first transferred request is never
 *  released. Request-dependent by construction, so the shrinker has
 *  to keep at least one cross-machine request to reproduce it. */
Scenario
leakyScenario()
{
    Scenario s;
    s.name = "leaky-transfer";
    s.seed = 4242;
    s.numPrompt = 2;
    s.numToken = 2;
    s.kvRetry.maxRetries = 2;
    workload::TraceGenerator gen(workload::conversation(), 31);
    s.requests = gen.generate(8.0, sim::secondsToUs(5));
    if (s.requests.size() > 40)
        s.requests.resize(40);
    // Noise the shrinker should strip: a transient crash and a
    // slowdown window, neither needed for the leak.
    s.faults.add({core::FaultKind::kCrash, 3, sim::secondsToUs(2),
                  sim::secondsToUs(1), 1.0});
    s.faults.add({core::FaultKind::kSlowdown, 1, sim::secondsToUs(1),
                  sim::msToUs(500.0), 3.0});
    s.bug.kind = BugKind::kLeakPromptKv;
    return s;
}

/** The acceptance-criteria demo: the planted bug is caught and
 *  shrunk to a handful of requests that still reproduce it. */
TEST(ShrinkerTest, ShrinksLeakToMinimalReproducer)
{
    const Scenario failing = leakyScenario();
    ASSERT_GE(failing.requests.size(), 30u);

    const ScenarioOutcome original = runScenario(failing);
    ASSERT_TRUE(original.violated);
    EXPECT_EQ(original.invariant, "kv-orphan");

    const ShrinkResult result = shrink(failing);
    ASSERT_TRUE(result.reproduced);
    EXPECT_EQ(result.invariant, "kv-orphan");
    EXPECT_EQ(result.originalRequests, failing.requests.size());

    // Minimal: a handful of requests, no faults left.
    EXPECT_LE(result.minimal.requests.size(), 5u);
    EXPECT_GE(result.minimal.requests.size(), 1u);
    EXPECT_EQ(result.minimal.faults.size(), 0u);
    EXPECT_EQ(result.minimal.name, "leaky-transfer-min");

    // And still a reproducer of the same invariant.
    const ScenarioOutcome replay = runScenario(result.minimal);
    ASSERT_TRUE(replay.violated);
    EXPECT_EQ(replay.invariant, result.invariant);
}

TEST(ShrinkerTest, CleanScenarioDoesNotReproduce)
{
    Scenario s;
    s.name = "clean";
    s.numPrompt = 1;
    s.numToken = 1;
    workload::TraceGenerator gen(workload::conversation(), 33);
    s.requests = gen.generate(2.0, sim::secondsToUs(2));
    const ShrinkResult result = shrink(s);
    EXPECT_FALSE(result.reproduced);
    EXPECT_EQ(result.runs, 1);
    EXPECT_EQ(scenarioToJson(result.minimal).dump(),
              scenarioToJson(s).dump());
}

TEST(ShrinkerTest, RespectsRunBudget)
{
    ShrinkOptions options;
    options.maxRuns = 5;
    const ShrinkResult result = shrink(leakyScenario(), options);
    EXPECT_TRUE(result.reproduced);
    EXPECT_LE(result.runs, 5);
}

TEST(ShrinkerTest, ShrinkingIsDeterministic)
{
    ShrinkOptions options;
    options.maxRuns = 60;
    const ShrinkResult a = shrink(leakyScenario(), options);
    const ShrinkResult b = shrink(leakyScenario(), options);
    EXPECT_EQ(a.runs, b.runs);
    EXPECT_EQ(scenarioToJson(a.minimal).dump(),
              scenarioToJson(b.minimal).dump());
}

}  // namespace
}  // namespace splitwise::testing
