#include "testing/scenario.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "testing/fuzzer.h"

namespace splitwise::testing {
namespace {

TEST(ScenarioIoTest, JsonRoundTripIsByteIdentical)
{
    const Scenario s = makeScenario(42);
    const std::string once = scenarioToJson(s).dump();
    const Scenario back =
        scenarioFromJson(core::JsonValue::parse(once));
    EXPECT_EQ(scenarioToJson(back).dump(), once);
    EXPECT_EQ(back.name, s.name);
    EXPECT_EQ(back.seed, s.seed);
    EXPECT_EQ(back.requests.size(), s.requests.size());
    EXPECT_EQ(back.faults.size(), s.faults.size());
}

TEST(ScenarioIoTest, RoundTripPreservesEveryKnob)
{
    Scenario s;
    s.name = "knobs";
    s.seed = 7;
    s.designKind = provision::DesignKind::kSplitwiseHA;
    s.numPrompt = 3;
    s.numToken = 2;
    s.routing = core::RoutingPolicy::kRandom;
    s.routingSeed = 99;
    s.shedQueuedTokensBound = 12345;
    s.promptChunkTokens = 512;
    s.kvCheckpointing = true;
    s.usePiecewisePerfModel = true;
    s.kvRetry.maxRetries = 4;
    s.kvRetry.backoffBaseUs = 777;
    s.kvRetry.backoffMultiplier = 2.25;
    s.kvRetry.timeoutUs = 123456;
    s.traceEnabled = true;
    s.requests.push_back({1, 1000, 800, 120});
    s.requests.push_back({2, 2500, 1500, 60});
    s.faults.add({core::FaultKind::kLinkDegrade, 1, 5000, 20000, 0.25});
    s.bug.kind = BugKind::kLeakPromptKv;

    const Scenario t =
        scenarioFromJson(scenarioToJson(s));
    EXPECT_EQ(t.designKind, s.designKind);
    EXPECT_EQ(t.numPrompt, s.numPrompt);
    EXPECT_EQ(t.numToken, s.numToken);
    EXPECT_EQ(t.routing, s.routing);
    EXPECT_EQ(t.routingSeed, s.routingSeed);
    EXPECT_EQ(t.shedQueuedTokensBound, s.shedQueuedTokensBound);
    EXPECT_EQ(t.promptChunkTokens, s.promptChunkTokens);
    EXPECT_EQ(t.kvCheckpointing, s.kvCheckpointing);
    EXPECT_EQ(t.usePiecewisePerfModel, s.usePiecewisePerfModel);
    EXPECT_EQ(t.kvRetry.maxRetries, s.kvRetry.maxRetries);
    EXPECT_EQ(t.kvRetry.backoffBaseUs, s.kvRetry.backoffBaseUs);
    EXPECT_DOUBLE_EQ(t.kvRetry.backoffMultiplier,
                     s.kvRetry.backoffMultiplier);
    EXPECT_EQ(t.kvRetry.timeoutUs, s.kvRetry.timeoutUs);
    EXPECT_EQ(t.traceEnabled, s.traceEnabled);
    ASSERT_EQ(t.requests.size(), 2u);
    EXPECT_EQ(t.requests[1].promptTokens, 1500);
    ASSERT_EQ(t.faults.size(), 1u);
    EXPECT_EQ(t.faults.events[0].kind, core::FaultKind::kLinkDegrade);
    EXPECT_DOUBLE_EQ(t.faults.events[0].factor, 0.25);
    EXPECT_EQ(t.bug.kind, BugKind::kLeakPromptKv);
}

TEST(ScenarioIoTest, FileRoundTrip)
{
    const auto path = std::filesystem::temp_directory_path() /
                      "splitwise_dst_io_test.scenario.json";
    const Scenario s = makeScenario(17);
    writeScenarioFile(s, path.string());
    const Scenario back = loadScenarioFile(path.string());
    EXPECT_EQ(scenarioToJson(back).dump(), scenarioToJson(s).dump());
    std::filesystem::remove(path);
}

TEST(ScenarioIoTest, RejectsWrongFormatTag)
{
    core::JsonValue doc = core::JsonValue::makeObject();
    doc.set("format", core::JsonValue(std::string("not-a-scenario")));
    EXPECT_THROW(scenarioFromJson(doc), std::runtime_error);
}

TEST(ScenarioIoTest, MissingFileIsFatal)
{
    EXPECT_THROW(loadScenarioFile("/nonexistent/x.scenario.json"),
                 std::runtime_error);
}

/** The determinism oracle: replaying a scenario must reproduce the
 *  outcome byte-for-byte, including the embedded run report. */
TEST(ScenarioIoTest, ReplayedOutcomeIsByteIdentical)
{
    const Scenario s = makeScenario(23);
    const ScenarioOutcome a = runScenario(s);
    const ScenarioOutcome b = runScenario(s);
    EXPECT_EQ(a.outcomeJson, b.outcomeJson);
    EXPECT_FALSE(a.outcomeJson.empty());
}

}  // namespace
}  // namespace splitwise::testing
