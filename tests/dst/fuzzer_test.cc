#include "testing/fuzzer.h"

#include <gtest/gtest.h>

#include <set>

namespace splitwise::testing {
namespace {

TEST(FuzzerTest, MakeScenarioIsPureInItsSeed)
{
    const Scenario a = makeScenario(1234);
    const Scenario b = makeScenario(1234);
    EXPECT_EQ(scenarioToJson(a).dump(), scenarioToJson(b).dump());
}

TEST(FuzzerTest, SeedsExploreTheScenarioSpace)
{
    std::set<provision::DesignKind> kinds;
    std::set<std::size_t> trace_sizes;
    bool any_faults = false;
    bool any_checkpointing = false;
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        const Scenario s = makeScenario(seed);
        kinds.insert(s.designKind);
        trace_sizes.insert(s.requests.size());
        any_faults |= !s.faults.empty();
        any_checkpointing |= s.kvCheckpointing;
        EXPECT_GE(s.machines(), 1);
        s.faults.validate(s.machines());
    }
    EXPECT_GE(kinds.size(), 3u);
    EXPECT_GE(trace_sizes.size(), 5u);
    EXPECT_TRUE(any_faults);
    EXPECT_TRUE(any_checkpointing);
}

TEST(FuzzerTest, CampaignRunsCleanUnderParallelJobs)
{
    FuzzerConfig config;
    config.scenarios = 10;
    config.baseSeed = 100;
    config.jobs = 4;
    const auto results = fuzz(config);
    ASSERT_EQ(results.size(), 10u);
    for (const auto& r : results) {
        EXPECT_FALSE(r.outcome.violated)
            << "seed " << r.seed << " violated " << r.outcome.invariant
            << ": " << r.outcome.detail;
        EXPECT_FALSE(r.outcome.outcomeJson.empty());
    }
}

/** The fuzzer inherits the sweep engine's determinism contract:
 *  identical campaigns are byte-identical across job counts. */
TEST(FuzzerTest, OutcomesByteIdenticalAcrossJobCounts)
{
    FuzzerConfig serial;
    serial.scenarios = 6;
    serial.baseSeed = 300;
    serial.jobs = 1;
    FuzzerConfig parallel = serial;
    parallel.jobs = 4;
    const auto a = fuzz(serial);
    const auto b = fuzz(parallel);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].seed, b[i].seed);
        EXPECT_EQ(a[i].outcome.outcomeJson, b[i].outcome.outcomeJson)
            << "seed " << a[i].seed;
    }
}

}  // namespace
}  // namespace splitwise::testing
