/**
 * @file
 * Replays the checked-in `.scenario.json` reproducers under
 * tests/dst/data/. Every file must run clean and byte-
 * deterministically: once a fuzzed failure is fixed, its shrunk
 * scenario is checked in here so the bug can never quietly return.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <vector>

#include "testing/fuzzer.h"
#include "testing/scenario.h"

namespace splitwise::testing {
namespace {

std::vector<std::filesystem::path>
dataFiles()
{
    std::vector<std::filesystem::path> files;
    for (const auto& entry :
         std::filesystem::directory_iterator(SPLITWISE_DST_DATA_DIR)) {
        if (entry.path().extension() == ".json")
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    return files;
}

TEST(DstReproTest, DataDirectoryHasScenarios)
{
    EXPECT_FALSE(dataFiles().empty());
}

TEST(DstReproTest, CheckedInScenariosReplayCleanAndDeterministic)
{
    for (const auto& path : dataFiles()) {
        const Scenario s = loadScenarioFile(path.string());
        const ScenarioOutcome a = runScenario(s);
        EXPECT_FALSE(a.violated)
            << path << " violated " << a.invariant << ": " << a.detail;
        const ScenarioOutcome b = runScenario(s);
        EXPECT_EQ(a.outcomeJson, b.outcomeJson) << path;
    }
}

/** A scenario that went through the file is the same scenario: its
 *  replayed outcome matches the in-memory run byte-for-byte. */
TEST(DstReproTest, FileTripPreservesOutcome)
{
    const Scenario s = makeScenario(57);
    const auto path = std::filesystem::temp_directory_path() /
                      "splitwise_dst_repro_test.scenario.json";
    writeScenarioFile(s, path.string());
    const Scenario loaded = loadScenarioFile(path.string());
    std::filesystem::remove(path);
    EXPECT_EQ(runScenario(loaded).outcomeJson, runScenario(s).outcomeJson);
}

}  // namespace
}  // namespace splitwise::testing
