/**
 * @file
 * Domain scenario: serving a code-completion assistant (the paper's
 * coding trace - big prompts, tiny outputs) and deciding between a
 * homogeneous mixed-batching fleet and a Splitwise split fleet at
 * equal machine count.
 *
 *   ./build/examples/coding_assistant [rps]
 */

#include <cstdio>
#include <cstdlib>

#include "core/cluster.h"
#include "core/designs.h"
#include "core/slo.h"
#include "metrics/table.h"
#include "model/llm_config.h"
#include "workload/trace_gen.h"
#include "workload/workloads.h"

int
main(int argc, char** argv)
{
    using namespace splitwise;
    using metrics::Table;

    const double rps = argc > 1 ? std::atof(argv[1]) : 60.0;
    const model::LlmConfig llm = model::llama2_70b();

    workload::TraceGenerator gen(workload::coding(), 11);
    const workload::Trace trace = gen.generate(rps, sim::secondsToUs(45));
    std::printf("Coding workload: %zu requests at %.0f RPS, median prompt"
                " %lld tokens, median output %lld tokens\n",
                trace.size(), rps,
                static_cast<long long>(
                    workload::coding().promptTokens->median()),
                static_cast<long long>(
                    workload::coding().outputTokens->median()));

    // Same 20 DGX-H100 machines, organized two ways.
    const core::ClusterDesign candidates[] = {
        core::baselineH100(20),
        core::splitwiseHH(17, 3),
    };

    const core::SloChecker checker(llm);
    Table table({"fleet", "TTFT p50/p90 (ms)", "TBT p50 (ms)",
                 "worst gap p90 (ms)", "E2E p50 (ms)", "SLO"});
    for (const auto& design : candidates) {
        core::Cluster cluster(llm, design);
        const core::RunReport report = cluster.run(trace);
        const core::SloReport slo =
            checker.evaluate(report.requests, core::SloSet{});
        const auto& m = report.requests;
        table.addRow({
            design.name + " (" + std::to_string(design.numPrompt) + "P+" +
                std::to_string(design.numToken) + "T)",
            Table::fmt(m.ttftMs().p50(), 0) + "/" +
                Table::fmt(m.ttftMs().p90(), 0),
            Table::fmt(m.tbtMs().p50(), 1),
            Table::fmt(m.maxTbtMs().p90(), 0),
            Table::fmt(m.e2eMs().p50(), 0),
            slo.pass ? "pass" : "FAIL " + slo.violation,
        });
    }
    table.print();

    std::printf("\nThe coding service is prompt-heavy, so the split fleet"
                " dedicates most machines to the prompt pool and keeps"
                " decode latency clean on the rest.\n");
    return 0;
}
