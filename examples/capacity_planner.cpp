/**
 * @file
 * Capacity planning with the provisioning framework (paper SIV-D):
 * given a workload and a target throughput, find the cheapest and
 * the most power-frugal cluster for each design family.
 *
 *   ./build/examples/capacity_planner [workload] [target_rps]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "metrics/table.h"
#include "provision/provisioner.h"
#include "sim/run_pool.h"

int
main(int argc, char** argv)
{
    using namespace splitwise;
    using metrics::Table;
    using provision::DesignKind;

    const std::string workload_name = argc > 1 ? argv[1] : "conversation";
    const double target_rps = argc > 2 ? std::atof(argv[2]) : 50.0;

    provision::ProvisionerOptions options;
    options.traceDuration = sim::secondsToUs(20);
    options.promptFractions = {0.25, 0.4, 0.5, 0.65, 0.8};
    options.jobs = sim::RunPool::defaultJobs();
    provision::Provisioner planner(model::llama2_70b(),
                                   workload::workloadByName(workload_name),
                                   options);

    std::printf("Capacity plan for the %s workload at %.0f RPS"
                " (Llama2-70B, Table VI SLOs)\n\n",
                workload_name.c_str(), target_rps);

    Table table({"design", "cheapest pools", "cost ($/hr)",
                 "frugal pools", "power (kW)"});
    for (DesignKind kind : provision::allDesignKinds()) {
        const provision::Optimum cheap =
            planner.isoThroughputCostOptimized(kind, target_rps);
        const provision::Optimum frugal =
            planner.isoThroughputPowerOptimized(kind, target_rps);
        auto pools = [](const provision::Optimum& opt) -> std::string {
            if (!opt.feasible)
                return "infeasible";
            if (!opt.design.splitwise)
                return std::to_string(opt.design.numPrompt) + " machines";
            return std::to_string(opt.design.numPrompt) + "P+" +
                   std::to_string(opt.design.numToken) + "T";
        };
        table.addRow({
            designKindName(kind),
            pools(cheap),
            cheap.feasible ? Table::fmt(cheap.footprint.costPerHour, 0)
                           : "-",
            pools(frugal),
            frugal.feasible ? Table::fmt(frugal.footprint.powerWatts / 1e3, 1)
                            : "-",
        });
    }
    table.print();

    std::printf("\nEach plan meets all nine Table VI SLOs on a synthetic"
                " %.0f-second trace; validate the winner with a longer"
                " run before committing hardware.\n",
                sim::usToSeconds(options.traceDuration));
    return 0;
}
