/**
 * @file
 * Multi-turn chat serving (paper SVII): chat APIs resend the whole
 * conversation every turn, so sessions become increasingly
 * prompt-heavy. This example generates interleaved chat sessions,
 * serves them on a Splitwise-HH cluster, and exports the run report
 * as JSON for downstream tooling.
 *
 *   ./build/examples/multi_turn_chat [out.json]
 */

#include <cstdio>

#include "core/cluster.h"
#include "core/designs.h"
#include "core/report_io.h"
#include "metrics/table.h"
#include "model/llm_config.h"
#include "workload/multi_turn.h"

int
main(int argc, char** argv)
{
    using namespace splitwise;
    using metrics::Table;

    const std::string out_path =
        argc > 1 ? argv[1] : "/tmp/splitwise_multiturn_report.json";

    // Interleaved chat sessions: 3 new sessions/s, 2-6 turns each.
    workload::MultiTurnTraceGenerator gen(
        workload::defaultMultiTurnConfig(), /*seed=*/19);
    const workload::Trace trace = gen.generate(3.0, sim::secondsToUs(90));

    metrics::Summary prompts;
    for (const auto& r : trace)
        prompts.add(static_cast<double>(r.promptTokens));
    std::printf("Generated %zu turns across %zu sessions; prompt tokens"
                " p50 %.0f, p90 %.0f (context accumulates per turn)\n",
                trace.size(), gen.lastSessionCount(), prompts.p50(),
                prompts.p90());

    core::Cluster cluster(model::llama2_70b(), core::splitwiseHH(5, 3));
    const core::RunReport report = cluster.run(trace);

    Table table({"metric", "p50", "p90", "p99"});
    auto row = [&](const char* name, const metrics::Summary& s) {
        table.addRow({name, Table::fmt(s.p50(), 1), Table::fmt(s.p90(), 1),
                      Table::fmt(s.p99(), 1)});
    };
    row("TTFT (ms)", report.requests.ttftMs());
    row("TBT (ms)", report.requests.tbtMs());
    row("E2E (ms)", report.requests.e2eMs());
    table.print();

    std::printf("\nPrompt pool processed %lld tokens vs %lld generated -"
                " resent context makes chat prompt-heavy, the regime"
                " where dedicated prompt machines pay off (SVII).\n",
                static_cast<long long>(
                    report.promptPool.promptTokensProcessed +
                    report.tokenPool.promptTokensProcessed),
                static_cast<long long>(
                    report.requests.totalOutputTokens()));

    const core::SloChecker checker(model::llama2_70b());
    const core::SloReport slo =
        checker.evaluate(report.requests, core::SloSet{});
    core::writeReportJson(report, out_path, &slo);
    std::printf("Full report written to %s\n", out_path.c_str());
    return 0;
}
