/**
 * @file
 * Power-capping exploration (the insight behind Splitwise-HHcap):
 * sweep per-GPU power caps on the token pool and watch provisioned
 * power fall while latency barely moves - then show what the same
 * cap does to a prompt pool.
 *
 *   ./build/examples/power_capping
 */

#include <cstdio>

#include "core/cluster.h"
#include "core/designs.h"
#include "metrics/table.h"
#include "model/llm_config.h"
#include "workload/trace_gen.h"
#include "workload/workloads.h"

int
main()
{
    using namespace splitwise;
    using metrics::Table;

    const model::LlmConfig llm = model::llama2_70b();
    workload::TraceGenerator gen(workload::conversation(), 5);
    const workload::Trace trace = gen.generate(30.0, sim::secondsToUs(30));

    std::printf("Sweeping per-GPU power caps on a Splitwise-HH cluster"
                " (6P+8T, conversation @ 30 RPS)\n");

    Table token_table({"token-pool cap", "cluster power (kW)",
                       "TBT p50 (ms)", "E2E p50 (s)"});
    for (double cap : {1.0, 0.8, 0.6, 0.5, 0.4}) {
        core::ClusterDesign design = core::splitwiseHH(6, 8);
        design.tokenSpec = hw::dgxH100().withPowerCap(cap);
        design.name = "HH token-cap";
        core::Cluster cluster(llm, design);
        const auto report = cluster.run(trace);
        token_table.addRow({
            Table::fmt(cap * 100, 0) + "%",
            Table::fmt(report.footprint.powerWatts / 1e3, 1),
            Table::fmt(report.requests.tbtMs().p50(), 1),
            Table::fmt(report.requests.e2eMs().p50() / 1e3, 2),
        });
    }
    token_table.print();
    std::printf("Token pool: capping to 50%% saves power at essentially"
                " no latency cost (Fig. 9b).\n\n");

    Table prompt_table({"prompt-pool cap", "cluster power (kW)",
                        "TTFT p50 (ms)", "E2E p50 (s)"});
    for (double cap : {1.0, 0.8, 0.6, 0.5}) {
        core::ClusterDesign design = core::splitwiseHH(6, 8);
        design.promptSpec = hw::dgxH100().withPowerCap(cap);
        design.name = "HH prompt-cap";
        core::Cluster cluster(llm, design);
        const auto report = cluster.run(trace);
        prompt_table.addRow({
            Table::fmt(cap * 100, 0) + "%",
            Table::fmt(report.footprint.powerWatts / 1e3, 1),
            Table::fmt(report.requests.ttftMs().p50(), 0),
            Table::fmt(report.requests.e2eMs().p50() / 1e3, 2),
        });
    }
    prompt_table.print();
    std::printf("Prompt pool: the same caps inflate TTFT badly (Fig. 9a)"
                " - cap the token pool, never the prompt pool.\n");
    return 0;
}
