/**
 * @file
 * Quickstart: simulate a small Splitwise-HH cluster serving the
 * conversation workload on Llama2-70B and print the latency metrics.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/cluster.h"
#include "core/designs.h"
#include "core/slo.h"
#include "metrics/table.h"
#include "model/llm_config.h"
#include "workload/trace_gen.h"
#include "workload/workloads.h"

int
main()
{
    using namespace splitwise;

    // 1. Pick a model and a cluster design (Table V nomenclature:
    //    first letter = prompt machines, second = token machines).
    const model::LlmConfig llm = model::llama2_70b();
    const core::ClusterDesign design = core::splitwiseHH(/*num_prompt=*/6,
                                                         /*num_token=*/2);

    // 2. Generate a 60-second conversation trace at 10 requests/s.
    workload::TraceGenerator gen(workload::conversation(), /*seed=*/7);
    const workload::Trace trace = gen.generate(10.0, sim::secondsToUs(60));
    std::printf("Generated %zu requests (%.1f RPS)\n", trace.size(),
                workload::traceRps(trace));

    // 3. Run the cluster simulation to completion.
    core::Cluster cluster(llm, design);
    const core::RunReport report = cluster.run(trace);

    // 4. Report the paper's metrics (Table II).
    const auto& m = report.requests;
    metrics::Table table({"metric", "p50", "p90", "p99", "mean"});
    auto add = [&](const char* name, const metrics::Summary& s) {
        table.addRow({name, metrics::Table::fmt(s.p50()),
                      metrics::Table::fmt(s.p90()),
                      metrics::Table::fmt(s.p99()),
                      metrics::Table::fmt(s.mean())});
    };
    add("TTFT (ms)", m.ttftMs());
    add("TBT (ms)", m.tbtMs());
    add("E2E (ms)", m.e2eMs());
    table.print();

    std::printf("\nCompleted %zu/%zu requests, %.1f tokens/s generated\n",
                m.completed(), report.submitted, m.tokenThroughput());
    std::printf("KV transfers: %llu (%.1f%% layer-wise), %.2f GB moved\n",
                static_cast<unsigned long long>(report.transfers.transfers),
                report.transfers.transfers
                    ? 100.0 * report.transfers.layerwiseTransfers /
                          report.transfers.transfers
                    : 0.0,
                report.transfers.bytesMoved / 1e9);
    std::printf("Mixed-pool routes: %llu, pool transitions: %llu\n",
                static_cast<unsigned long long>(report.mixedRoutes),
                static_cast<unsigned long long>(report.poolTransitions));

    // 5. Check the paper's SLOs (Table VI).
    const core::SloChecker checker(llm);
    const core::SloReport slo = checker.evaluate(m, core::SloSet{});
    std::printf("SLOs: %s%s%s\n", slo.pass ? "PASS" : "FAIL",
                slo.pass ? "" : " - violated ",
                slo.pass ? "" : slo.violation.c_str());
    return 0;
}
