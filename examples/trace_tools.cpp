/**
 * @file
 * Working with request traces: synthesize a trace in the format of
 * the Azure LLM inference dataset (arrival, prompt tokens, output
 * tokens), write it to CSV, read it back, and print its shape.
 *
 *   ./build/examples/trace_tools [out.csv]
 */

#include <cstdio>

#include "metrics/summary.h"
#include "metrics/table.h"
#include "workload/trace.h"
#include "workload/trace_gen.h"
#include "workload/workloads.h"

int
main(int argc, char** argv)
{
    using namespace splitwise;
    using metrics::Table;

    const std::string path = argc > 1 ? argv[1] : "/tmp/splitwise_trace.csv";

    // Synthesize a 2-minute conversation trace at 20 RPS.
    workload::TraceGenerator gen(workload::conversation(), 2024);
    const workload::Trace trace = gen.generate(20.0, sim::secondsToUs(120));
    workload::writeCsv(trace, path);
    std::printf("Wrote %zu requests to %s\n", trace.size(), path.c_str());

    // Read it back and summarize, as a consumer would.
    const workload::Trace loaded = workload::readCsv(path);
    metrics::Summary prompts;
    metrics::Summary outputs;
    metrics::Summary gaps_ms;
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        prompts.add(static_cast<double>(loaded[i].promptTokens));
        outputs.add(static_cast<double>(loaded[i].outputTokens));
        if (i > 0) {
            gaps_ms.add(sim::usToMs(loaded[i].arrival -
                                    loaded[i - 1].arrival));
        }
    }

    Table table({"series", "p50", "p90", "p99", "mean"});
    auto row = [&](const char* name, const metrics::Summary& s) {
        table.addRow({name, Table::fmt(s.p50(), 0), Table::fmt(s.p90(), 0),
                      Table::fmt(s.p99(), 0), Table::fmt(s.mean(), 0)});
    };
    row("prompt tokens", prompts);
    row("output tokens", outputs);
    row("inter-arrival (ms)", gaps_ms);
    table.print();

    std::printf("\nMeasured rate: %.1f RPS over %.0f s (Poisson target"
                " 20)\n",
                workload::traceRps(loaded),
                sim::usToSeconds(workload::traceSpan(loaded)));
    std::printf("The CSV schema matches the released Azure LLM inference"
                " trace: id,arrival_us,prompt_tokens,output_tokens\n");
    return 0;
}
