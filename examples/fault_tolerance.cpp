/**
 * @file
 * Fault tolerance (paper SIV-E): kill a token machine mid-run and
 * compare the two recovery strategies the paper discusses -
 * restarting stranded requests from scratch versus restoring their
 * KV-cache from an in-memory checkpoint store.
 *
 *   ./build/examples/fault_tolerance
 */

#include <cstdio>

#include "core/cluster.h"
#include "core/designs.h"
#include "metrics/table.h"
#include "model/llm_config.h"
#include "workload/trace_gen.h"
#include "workload/workloads.h"

namespace {

struct Outcome {
    splitwise::core::RunReport report;
};

Outcome
runWith(bool inject_failure, bool checkpointing,
        const splitwise::workload::Trace& trace)
{
    using namespace splitwise;
    core::SimConfig config;
    config.kvCheckpointing = checkpointing;
    core::Cluster cluster(model::llama2_70b(), core::splitwiseHH(3, 3),
                          config);
    if (inject_failure) {
        // Machine 4 is a token machine (ids 3..5 form the token pool).
        cluster.scheduleFailure(4, sim::secondsToUs(10));
    }
    return {cluster.run(trace)};
}

}  // namespace

int
main()
{
    using namespace splitwise;
    using metrics::Table;

    workload::TraceGenerator gen(workload::conversation(), 31);
    const workload::Trace trace = gen.generate(12.0, sim::secondsToUs(30));
    std::printf("Splitwise-HH (3P+3T) serving %zu conversation requests;"
                " token machine 4 dies at t=10s\n\n",
                trace.size());

    Table table({"scenario", "completed", "restarts", "ckpt restores",
                 "E2E p50 (s)", "E2E p99 (s)", "worst gap p99 (ms)"});
    auto row = [&](const char* name, const Outcome& o) {
        const auto& m = o.report.requests;
        table.addRow({
            name,
            std::to_string(m.completed()),
            std::to_string(o.report.restarts),
            std::to_string(o.report.checkpointRestores),
            Table::fmt(m.e2eMs().p50() / 1e3),
            Table::fmt(m.e2eMs().p99() / 1e3),
            Table::fmt(m.maxTbtMs().p99(), 0),
        });
    };
    row("no failure", runWith(false, false, trace));
    row("failure, restart from scratch", runWith(true, false, trace));
    row("failure, KV checkpoint restore", runWith(true, true, trace));
    table.print();

    std::printf("\nRestart-from-scratch recomputes every stranded prompt"
                " (lost work shows in the E2E tail). Checkpointing"
                " restores the KV-cache over the wire and resumes the"
                " decode where it stopped - the recovery the paper"
                " sketches in SIV-E.\n");
    return 0;
}
