/**
 * @file
 * Million-request scale benchmark: simulation throughput and memory
 * footprint of the streaming ingestion path vs the naive materialized
 * baseline.
 *
 * Two modes per shape (requests x machines):
 *
 *   streamed      The production path: arrivals pulled one at a time
 *                 from a GenTraceStream, retired request slots
 *                 recycled through the RequestPool, latencies folded
 *                 into quantile sketches. Memory is O(in-flight).
 *   materialized  The pre-pool baseline: the full trace vector built
 *                 up front, slot recycling off (every request keeps
 *                 its slot forever), exact per-request latency
 *                 records. Memory is O(total arrivals).
 *
 * Output is one machine-readable line per run:
 *
 *   SCALE_BENCH mode=<m> requests=<n> machines=<c> completed=<n> \
 *       wall_seconds=<s> requests_per_sec=<r> events_per_sec=<r> \
 *       peak_rss_kb=<kb> live_slot_high_water=<n>
 *
 * peak_rss_kb is the process-wide getrusage high-water mark, so a
 * same-process sweep only reports a meaningful RSS for its largest
 * shape so far; tools/perf_baseline.sh runs one shape per process and
 * commits the numbers to BENCH_PR8.json, which CI's scale-smoke step
 * gates against.
 *
 * --budget-mb turns the memory contract into an exit code: the run
 * fails if peak RSS exceeds the budget.
 */

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace {

using namespace splitwise;

long
peakRssKb()
{
    struct rusage usage {};
    getrusage(RUSAGE_SELF, &usage);
    return usage.ru_maxrss;  // KB on Linux.
}

struct ScaleArgs {
    std::string mode = "streamed";
    std::uint64_t requests = 0;  // 0 = built-in sweep
    int machines = 0;
    double budgetMb = 0.0;  // 0 = no budget enforcement
};

/** Coding-ratio Splitwise-HH design over @p machines total machines. */
core::ClusterDesign
scaleDesign(int machines)
{
    // The paper's coding split is 35P/5T (7:1); keep that ratio at
    // every sweep size.
    const int token = std::max(1, machines / 8);
    const int prompt = machines - token;
    return provision::makeDesign(provision::DesignKind::kSplitwiseHH, prompt,
                                 token);
}

struct ShapeResult {
    std::uint64_t completed = 0;
    std::uint64_t submitted = 0;
    std::uint64_t events = 0;
    std::size_t slotHighWater = 0;
    double wallSeconds = 0.0;
    std::uint64_t rejected = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t memoryStalls = 0;
    sim::TimeUs simulatedUs = 0;
};

/**
 * Run one (mode, requests, machines) shape. Arrivals are uniform at
 * ~1.4 requests/s per machine - comfortably inside the coding
 * design's capacity, so queues stay bounded, the live set is a true
 * O(in-flight) working set, and every sweep size runs the cluster at
 * comparable utilization. The request count is exact.
 */
ShapeResult
runShape(const std::string& mode, std::uint64_t requests, int machines)
{
    const double rps = 1.4 * machines;
    const auto interval =
        static_cast<sim::TimeUs>(sim::secondsToUs(1.0) / rps);

    core::SimConfig config;
    // Random routing, not JSQ: at thousands of machines the JSQ load
    // signal goes stale over a KV-transfer window, herding arrival
    // bursts onto one token machine until its KV fills (memory
    // stalls, runaway queues). Random keeps the live set a true
    // O(in-flight) working set at every sweep size.
    config.cls.routing = core::RoutingPolicy::kRandom;
    const bool streamed = mode == "streamed";
    // Streamed mode is the bounded-memory production path; the
    // materialized baseline deliberately keeps the pre-pool
    // O(total-arrivals) footprint for the A/B comparison.
    config.sketchLatencies = streamed;
    config.requestRecycling = streamed;

    core::Cluster cluster(model::llama2_70b(), scaleDesign(machines), config);
    workload::TraceGenerator gen(workload::coding(), /*seed=*/42);

    using Clock = std::chrono::steady_clock;
    ShapeResult result;
    if (streamed) {
        auto stream =
            gen.streamUniform(static_cast<std::size_t>(requests), interval);
        const auto t0 = Clock::now();
        const core::RunReport report = cluster.run(*stream);
        result.wallSeconds =
            std::chrono::duration<double>(Clock::now() - t0).count();
        result.completed = report.requests.completed();
        result.submitted = report.submitted;
        result.rejected = report.rejected;
        result.preemptions = report.preemptions;
        result.memoryStalls = report.transfers.memoryStalls;
        result.simulatedUs = report.simulatedUs;
    } else {
        const workload::Trace trace =
            gen.generateUniform(static_cast<std::size_t>(requests), interval);
        const auto t0 = Clock::now();
        const core::RunReport report = cluster.run(trace);
        result.wallSeconds =
            std::chrono::duration<double>(Clock::now() - t0).count();
        result.completed = report.requests.completed();
        result.submitted = report.submitted;
        result.rejected = report.rejected;
        result.preemptions = report.preemptions;
        result.memoryStalls = report.transfers.memoryStalls;
        result.simulatedUs = report.simulatedUs;
    }
    result.events = cluster.simulator().executedEvents();
    result.slotHighWater = cluster.requestPool().highWater();
    return result;
}

/** Print the SCALE_BENCH line; false if the RSS budget was blown. */
bool
report(const std::string& mode, std::uint64_t requests, int machines,
       const ShapeResult& result, double budget_mb)
{
    const long rss_kb = peakRssKb();
    const double wall = result.wallSeconds > 0 ? result.wallSeconds : 1e-9;
    std::printf("SCALE_BENCH mode=%s requests=%llu machines=%d "
                "completed=%llu wall_seconds=%.3f requests_per_sec=%.0f "
                "events_per_sec=%.0f peak_rss_kb=%ld "
                "live_slot_high_water=%zu\n",
                mode.c_str(), static_cast<unsigned long long>(requests),
                machines,
                static_cast<unsigned long long>(result.completed), wall,
                static_cast<double>(result.submitted) / wall,
                static_cast<double>(result.events) / wall, rss_kb,
                result.slotHighWater);
    std::printf("SCALE_DIAG rejected=%llu preemptions=%llu "
                "memory_stalls=%llu simulated_s=%.1f\n",
                static_cast<unsigned long long>(result.rejected),
                static_cast<unsigned long long>(result.preemptions),
                static_cast<unsigned long long>(result.memoryStalls),
                static_cast<double>(result.simulatedUs) / 1e6);
    if (budget_mb > 0 && static_cast<double>(rss_kb) > budget_mb * 1024.0) {
        std::printf("BUDGET_EXCEEDED peak_rss_kb=%ld budget_mb=%.0f\n",
                    rss_kb, budget_mb);
        return false;
    }
    return true;
}

}  // namespace

int
main(int argc, char** argv)
{
    ScaleArgs scale;
    bench::ArgParser parser = bench::benchParser(
        "bench_scale",
        "simulation throughput and peak RSS at 10^5..10^6 requests on "
        "10^2..2*10^3 machines, streamed vs materialized ingestion");
    parser.addString("--mode", &scale.mode,
                     "ingestion path: streamed (bounded memory) or "
                     "materialized (naive full-trace baseline)");
    parser.addUint64("--requests", &scale.requests,
                     "run exactly one shape with this many requests "
                     "(default: built-in sweep)");
    parser.addInt("--machines", &scale.machines,
                  "machine count for the single-shape run");
    parser.addDouble("--budget-mb", &scale.budgetMb,
                     "fail the run if peak RSS exceeds this many MB");
    parser.addValidator([&scale] {
        if (scale.mode != "streamed" && scale.mode != "materialized")
            sim::fatal("--mode must be streamed or materialized");
        if (scale.requests > 0 && scale.machines <= 0)
            sim::fatal("--requests needs --machines");
        if (scale.budgetMb < 0)
            sim::fatal("--budget-mb must be >= 0");
    });
    parser.parse(argc, argv);

    bench::banner("scale: streaming ingestion + pooled request slots");

    bool ok = true;
    if (scale.requests > 0) {
        // Single-shape mode: one process, one shape - the form
        // perf_baseline.sh uses so peak_rss_kb is per-shape.
        const ShapeResult result =
            runShape(scale.mode, scale.requests, scale.machines);
        ok = report(scale.mode, scale.requests, scale.machines, result,
                    scale.budgetMb);
    } else {
        std::vector<std::uint64_t> request_counts;
        std::vector<int> machine_counts;
        if (bench::benchArgs().shortRun) {
            request_counts = {50'000};
            machine_counts = {100};
        } else {
            request_counts = {100'000, 1'000'000};
            machine_counts = {100, 2'000};
        }
        for (const int machines : machine_counts) {
            for (const std::uint64_t requests : request_counts) {
                const ShapeResult result =
                    runShape(scale.mode, requests, machines);
                ok = report(scale.mode, requests, machines, result,
                            scale.budgetMb) &&
                     ok;
            }
        }
    }
    return ok ? 0 : 1;
}
