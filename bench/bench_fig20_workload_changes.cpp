/**
 * @file
 * Regenerates paper Fig. 20: robustness to workload changes -
 * (a) the conversation trace on clusters provisioned for coding, and
 * (b) Llama2-70B on clusters provisioned for BLOOM-176B - on the
 * iso-power throughput-optimized designs at 1/5 scale.
 */

#include <cstdio>

#include "bench/bench_common.h"

namespace {

void
sweep(const char* title, const splitwise::model::LlmConfig& llm,
      const splitwise::workload::Workload& workload,
      const char* provisioned_for, const std::vector<double>& loads)
{
    using namespace splitwise;
    using metrics::Table;
    using provision::DesignKind;

    const core::SloChecker checker(llm);
    bench::banner(title);
    Table table({"design", "RPS", "TTFT p50 (ms)", "TBT p50 (ms)",
                 "E2E p50 (s)", "SLO"});
    for (DesignKind kind : provision::allDesignKinds()) {
        const core::ClusterDesign design =
            bench::isoPowerDesign(kind, provisioned_for);
        for (double rps : loads) {
            const auto trace = bench::makeTrace(workload, rps, 30);
            const auto report =
                core::run(bench::cliRunOptions(llm, design, trace));
            const auto slo =
                checker.evaluate(report.requests, core::SloSet{});
            table.addRow({
                design.name,
                Table::fmt(rps, 0),
                Table::fmt(report.requests.ttftMs().p50(), 0),
                Table::fmt(report.requests.tbtMs().p50(), 1),
                Table::fmt(report.requests.e2eMs().p50() / 1e3, 2),
                slo.pass ? "pass" : "FAIL " + slo.violation,
            });
        }
    }
    table.print();
}

}  // namespace

int
main(int argc, char** argv)
{
    splitwise::bench::parseBenchArgs(argc, argv, "bench_fig20_workload_changes",
        "Paper Fig. 20: robustness to workload drift");
    using namespace splitwise;

    // (a) Conversation trace on clusters provisioned for coding.
    sweep("Fig. 20a: conversation trace on coding-provisioned clusters",
          model::llama2_70b(), workload::conversation(), "coding",
          {40, 70, 100});
    std::printf("Paper: homogeneous designs (AA/HH) morph via the mixed"
                " pool with no loss; HA/HHcap lose ~7%% throughput; all"
                " Splitwise designs still beat the baselines\n");

    // (b) Llama2-70B on clusters provisioned for BLOOM-176B (same
    // machine counts; Llama supports much higher load).
    sweep("Fig. 20b: Llama2-70B on BLOOM-provisioned clusters",
          model::llama2_70b(), workload::conversation(), "conversation",
          {50, 90, 130});
    std::printf("Paper: Llama sustains much higher throughput on the same"
                " cluster; Splitwise-HH/HHcap keep the best latency as"
                " load rises\n");
    return 0;
}
