/**
 * @file
 * Regenerates paper Fig. 3: cumulative distributions of prompt and
 * generated tokens for the coding and conversation services.
 */

#include <cstdio>

#include "bench/bench_common.h"

namespace {

void
printCdf(const char* title, bool prompts)
{
    using namespace splitwise;
    using metrics::Table;

    bench::banner(title);
    Table table({"percentile", "coding (tokens)", "conversation (tokens)"});
    const auto& code = workload::coding();
    const auto& conv = workload::conversation();
    for (double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.99}) {
        const auto& cd = prompts ? *code.promptTokens : *code.outputTokens;
        const auto& vd = prompts ? *conv.promptTokens : *conv.outputTokens;
        table.addRow({"p" + Table::fmt(q * 100, 0),
                      std::to_string(cd.quantile(q)),
                      std::to_string(vd.quantile(q))});
    }
    table.print();
}

}  // namespace

int
main(int argc, char** argv)
{
    splitwise::bench::parseBenchArgs(argc, argv, "bench_fig03_token_distributions",
        "Paper Fig. 3: prompt/output token distributions");
    using namespace splitwise;

    printCdf("Fig. 3a: number of prompt tokens (CDF)", true);
    std::printf("Paper medians: coding 1500, conversation 1020\n");

    printCdf("Fig. 3b: number of generated tokens (CDF)", false);
    std::printf("Paper medians: coding 13, conversation 129 (bimodal)\n");

    // Sampled verification: empirical medians from a drawn trace.
    bench::banner("Sampled check (100k draws per service)");
    for (const auto* w : {&workload::coding(), &workload::conversation()}) {
        sim::Rng rng(7);
        metrics::Summary prompt;
        metrics::Summary output;
        for (int i = 0; i < 100000; ++i) {
            prompt.add(static_cast<double>(w->promptTokens->sample(rng)));
            output.add(static_cast<double>(w->outputTokens->sample(rng)));
        }
        std::printf("%-13s sampled median prompt %.0f, output %.0f\n",
                    w->name.c_str(), prompt.p50(), output.p50());
    }
    return 0;
}
