/**
 * @file
 * Regenerates paper Fig. 15: end-to-end overhead of the KV-cache
 * transfer on the coding trace - a two-machine Splitwise pair vs. a
 * single-machine baseline, with serialized-only transfer as the
 * ablation (SVI-A).
 */

#include <cstdio>

#include "bench/bench_common.h"

namespace {

splitwise::metrics::Summary
secondTokenSummary(const splitwise::core::RunReport& report)
{
    splitwise::metrics::Summary s;
    for (const auto& r : report.requests.results()) {
        if (r.outputTokens > 1)
            s.add(r.secondTokenMs);
    }
    return s;
}

}  // namespace

int
main(int argc, char** argv)
{
    splitwise::bench::parseBenchArgs(argc, argv, "bench_fig15_e2e_overhead",
        "Paper Fig. 15: end-to-end transfer overhead");
    using namespace splitwise;
    using metrics::Table;

    // Low arrival rate approximates the paper's no-batching setup:
    // requests rarely overlap, so the second-token gap isolates the
    // transfer itself rather than queueing behind other decodes.
    const auto trace = bench::makeTrace(workload::coding(), 0.4, 150);

    // Baseline: one machine, no transfer (run two so capacity and
    // contention match the Splitwise pair).
    const auto local = core::run(bench::cliRunOptions(
        model::llama2_70b(), core::baselineH100(2), trace));

    // Splitwise with the adaptive serialized/layer-wise policy.
    const auto split = core::run(bench::cliRunOptions(
        model::llama2_70b(), core::splitwiseHH(1, 1), trace));

    // Ablation: force serialized transfers for every prompt size.
    core::SimConfig serialized_only;
    serialized_only.layerwiseThresholdTokens =
        std::numeric_limits<std::int64_t>::max();
    const auto serialized = core::run(bench::cliRunOptions(
        model::llama2_70b(), core::splitwiseHH(1, 1), trace,
        serialized_only));

    bench::banner("Fig. 15: KV transfer overhead, coding trace, H100 pair");
    Table table({"setup", "TTFT p50 (ms)", "2nd token p50 (ms)",
                 "E2E p50 (ms)", "E2E overhead", "2nd token overhead"});
    const auto base_second = secondTokenSummary(local);
    auto row = [&](const char* name, const core::RunReport& r) {
        const auto second = secondTokenSummary(r);
        table.addRow({
            name,
            Table::fmt(r.requests.ttftMs().p50(), 1),
            Table::fmt(second.p50(), 1),
            Table::fmt(r.requests.e2eMs().p50(), 1),
            Table::fmt(100.0 * (r.requests.e2eMs().p50() /
                                    local.requests.e2eMs().p50() -
                                1.0),
                       1) + "%",
            Table::fmt(100.0 * (second.p50() / base_second.p50() - 1.0), 1) +
                "%",
        });
    };
    row("no transfer (1 machine)", local);
    row("Splitwise (adaptive)", split);
    row("serialized only", serialized);
    table.print();

    std::printf("\nPaper: serialized adds up to 3%% E2E and 64%% to the"
                " second token; Splitwise 0.8%% E2E and 16.5%% to the"
                " second token\n");
    std::printf("Transfers: %llu adaptive (%llu layer-wise), %llu"
                " serialized-only\n",
                static_cast<unsigned long long>(split.transfers.transfers),
                static_cast<unsigned long long>(
                    split.transfers.layerwiseTransfers),
                static_cast<unsigned long long>(
                    serialized.transfers.transfers));
    return 0;
}
