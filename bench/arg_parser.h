#ifndef SPLITWISE_BENCH_ARG_PARSER_H_
#define SPLITWISE_BENCH_ARG_PARSER_H_

/**
 * @file
 * A small typed command-line parser for the bench binaries.
 *
 * Replaces the per-bench strcmp/strncmp loops: flags are registered
 * with a type, a target, and a help line; `--help` is generated; and
 * unknown flags are hard errors (exit code 2) instead of being
 * silently ignored - a typoed `--job=8` used to run the bench at the
 * hardware default without a word.
 *
 * Supported spellings: `--flag=value` and `--flag value`. Boolean
 * flags take no value. A bench may register one optional positional
 * operand (bench_chaos's bare seed) and a passthrough prefix for
 * flags owned by an embedded library (bench_micro forwards
 * `--benchmark_*` to google-benchmark).
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

namespace splitwise::bench {

class ArgParser {
  public:
    /**
     * @param program Binary name shown in usage/help.
     * @param summary One-line description shown by --help.
     */
    ArgParser(std::string program, std::string summary)
        : program_(std::move(program)), summary_(std::move(summary))
    {
    }

    void
    addString(const std::string& name, std::string* target,
              const std::string& help, bool required = false)
    {
        addFlagSpec(name, Kind::kString, target, help, required,
                    target->empty() ? "" : *target);
    }

    void
    addInt(const std::string& name, int* target, const std::string& help)
    {
        addFlagSpec(name, Kind::kInt, target, help, false,
                    std::to_string(*target));
    }

    void
    addUint64(const std::string& name, std::uint64_t* target,
              const std::string& help)
    {
        addFlagSpec(name, Kind::kUint64, target, help, false,
                    std::to_string(*target));
    }

    void
    addDouble(const std::string& name, double* target,
              const std::string& help)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%g", *target);
        addFlagSpec(name, Kind::kDouble, target, help, false, buf);
    }

    /** A value-less boolean switch; presence sets the target true. */
    void
    addFlag(const std::string& name, bool* target, const std::string& help)
    {
        addFlagSpec(name, Kind::kBool, target, help, false, "");
    }

    /** Register the single optional positional operand. */
    void
    addPositional(const std::string& name, std::string* target,
                  const std::string& help)
    {
        positionalName_ = name;
        positionalTarget_ = target;
        positionalHelp_ = help;
    }

    /**
     * Arguments starting with @p prefix are collected verbatim into
     * passthrough() instead of being parsed (for embedded libraries
     * with their own flag namespace).
     */
    void passthroughPrefix(std::string prefix)
    {
        passthroughPrefix_ = std::move(prefix);
    }

    const std::vector<std::string>& passthrough() const
    {
        return passthrough_;
    }

    /**
     * Register a post-parse validation hook; it runs after all flags
     * are applied and should call ArgParser::fail()/sim-level fatal
     * on invalid combinations.
     */
    void addValidator(std::function<void()> validator)
    {
        validators_.push_back(std::move(validator));
    }

    /**
     * Parse the command line. On `--help`/`-h` prints the generated
     * help and exits 0; on any error (unknown flag, missing/invalid
     * value, missing required flag) prints a diagnostic and exits 2.
     */
    void
    parse(int argc, char** argv)
    {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                printHelp();
                std::exit(0);
            }
            if (!passthroughPrefix_.empty() &&
                arg.rfind(passthroughPrefix_, 0) == 0) {
                passthrough_.push_back(arg);
                continue;
            }
            if (arg.rfind("--", 0) == 0) {
                parseFlag(arg, i, argc, argv);
                continue;
            }
            if (positionalTarget_ != nullptr && !positionalSeen_) {
                *positionalTarget_ = arg;
                positionalSeen_ = true;
                continue;
            }
            fail("unexpected argument '" + arg + "'");
        }
        for (const auto& spec : flags_) {
            if (spec.required && !spec.seen)
                fail("missing required flag " + spec.name);
        }
        for (const auto& validator : validators_)
            validator();
    }

    /** Print a diagnostic and exit 2 (non-zero per the bench CLI contract). */
    [[noreturn]] void
    fail(const std::string& message) const
    {
        std::fprintf(stderr, "%s: %s\nrun '%s --help' for usage\n",
                     program_.c_str(), message.c_str(), program_.c_str());
        std::exit(2);
    }

  private:
    enum class Kind { kString, kInt, kUint64, kDouble, kBool };

    struct Spec {
        std::string name;
        Kind kind;
        void* target;
        std::string help;
        bool required;
        std::string defaultText;
        bool seen = false;
    };

    void
    addFlagSpec(const std::string& name, Kind kind, void* target,
                const std::string& help, bool required,
                std::string default_text)
    {
        // Registering the same flag twice is a bench programming
        // error: the first registration would silently win at parse
        // time while the second target never gets written.
        if (findFlag(name) != nullptr)
            fail("duplicate flag registration " + name);
        flags_.push_back(
            {name, kind, target, help, required, std::move(default_text)});
    }

    Spec*
    findFlag(const std::string& name)
    {
        for (auto& spec : flags_) {
            if (spec.name == name)
                return &spec;
        }
        return nullptr;
    }

    void
    parseFlag(const std::string& arg, int& i, int argc, char** argv)
    {
        std::string name = arg;
        std::string value;
        bool has_value = false;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
            has_value = true;
        }
        Spec* spec = findFlag(name);
        if (spec == nullptr)
            fail("unknown flag " + name);
        if (spec->kind == Kind::kBool) {
            if (has_value)
                fail(name + " takes no value");
            *static_cast<bool*>(spec->target) = true;
            spec->seen = true;
            return;
        }
        if (!has_value) {
            if (i + 1 >= argc)
                fail(name + " requires a value");
            value = argv[++i];
        }
        applyValue(*spec, value);
        spec->seen = true;
    }

    void
    applyValue(Spec& spec, const std::string& value)
    {
        try {
            std::size_t used = 0;
            switch (spec.kind) {
              case Kind::kString:
                *static_cast<std::string*>(spec.target) = value;
                return;
              case Kind::kInt:
                *static_cast<int*>(spec.target) = std::stoi(value, &used);
                break;
              case Kind::kUint64:
                *static_cast<std::uint64_t*>(spec.target) =
                    std::stoull(value, &used);
                break;
              case Kind::kDouble:
                *static_cast<double*>(spec.target) = std::stod(value, &used);
                break;
              case Kind::kBool:
                return;  // handled in parseFlag
            }
            if (used != value.size())
                fail(spec.name + ": invalid value '" + value + "'");
        } catch (const std::exception&) {
            fail(spec.name + ": invalid value '" + value + "'");
        }
    }

    void
    printHelp() const
    {
        std::printf("usage: %s [flags]%s\n\n%s\n\nflags:\n", program_.c_str(),
                    positionalTarget_ != nullptr
                        ? (" [" + positionalName_ + "]").c_str()
                        : "",
                    summary_.c_str());
        for (const auto& spec : flags_) {
            const std::string left =
                spec.kind == Kind::kBool ? spec.name : spec.name + "=VALUE";
            std::string right = spec.help;
            if (spec.required)
                right += " (required)";
            else if (!spec.defaultText.empty())
                right += " (default: " + spec.defaultText + ")";
            std::printf("  %-26s %s\n", left.c_str(), right.c_str());
        }
        std::printf("  %-26s %s\n", "--help", "show this help");
        if (positionalTarget_ != nullptr) {
            std::printf("\npositional:\n  %-26s %s\n",
                        positionalName_.c_str(), positionalHelp_.c_str());
        }
        if (!passthroughPrefix_.empty()) {
            std::printf("\nflags starting with %s are forwarded verbatim\n",
                        passthroughPrefix_.c_str());
        }
    }

    std::string program_;
    std::string summary_;
    std::vector<Spec> flags_;
    std::string positionalName_;
    std::string* positionalTarget_ = nullptr;
    std::string positionalHelp_;
    bool positionalSeen_ = false;
    std::string passthroughPrefix_;
    std::vector<std::string> passthrough_;
    std::vector<std::function<void()>> validators_;
};

}  // namespace splitwise::bench

#endif  // SPLITWISE_BENCH_ARG_PARSER_H_
