/**
 * @file
 * Chaos soak: an iso-power Splitwise-HH cluster serving the
 * conversation trace under a randomized (but seeded) fault storm -
 * transient machine crashes with rejoin, straggler windows, NIC
 * fault/degradation windows - versus the same cluster fault-free.
 *
 * Every request must be accounted for: completed or explicitly shed
 * by admission control. The binary exits non-zero if any request
 * falls through the cracks, so it doubles as a soak check.
 *
 *   bench_chaos [storm_seed] [--runs=N] [--jobs=N] [--short]
 *               [--trace-out=...] [--timeseries-out=...]
 *
 * `--runs N` soaks N consecutive storm seeds (seed, seed+1, ...)
 * concurrently across `--jobs` workers; `--short` is the reduced CI
 * smoke variant.
 */

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/fault_plan.h"

namespace {

/** One soak run: the fault-free control or one storm seed. */
struct ChaosRun {
    bool faulted = false;
    std::uint64_t seed = 0;
};

/** Everything a worker produces for the serial reporting pass. */
struct ChaosResult {
    splitwise::core::RunReport report;
    std::vector<std::string> row;
    bool accounted = true;
    bool telemetryConsistent = true;
    std::string telemetryNote;
};

}  // namespace

int
main(int argc, char** argv)
{
    using namespace splitwise;
    using metrics::Table;

    auto parser = bench::benchParser(
        "bench_chaos",
        "Chaos soak: iso-power Splitwise-HH under a seeded fault storm "
        "vs fault-free, with full request accounting");
    std::string seed_arg;
    parser.addPositional("storm_seed", &seed_arg,
                         "base storm seed (default 2024)");
    parser.parse(argc, argv);
    const bench::BenchArgs& args = bench::benchArgs();

    std::uint64_t seed = 2024;
    if (!seed_arg.empty()) {
        try {
            std::size_t used = 0;
            seed = std::stoull(seed_arg, &used);
            if (used != seed_arg.size())
                throw std::invalid_argument(seed_arg);
        } catch (const std::exception&) {
            parser.fail("storm_seed: invalid value '" + seed_arg + "'");
        }
    }

    const double trace_seconds = args.shortRun ? 12.0 : 60.0;
    const auto trace =
        bench::makeTrace(workload::conversation(), 70.0, trace_seconds);
    const core::ClusterDesign design = core::splitwiseHH(17, 23);
    const core::SloChecker checker(model::llama2_70b());

    core::FaultStormConfig storm;
    storm.numMachines = design.machines();
    storm.horizonUs = sim::secondsToUs(args.shortRun ? 9.0 : 50.0);
    storm.crashes = args.shortRun ? 2 : 3;
    storm.slowdowns = args.shortRun ? 1 : 3;
    storm.linkFaults = args.shortRun ? 2 : 4;
    storm.linkDegrades = args.shortRun ? 1 : 3;

    // Run 0 is the fault-free control; runs 1..N are storm seeds.
    std::vector<ChaosRun> runs;
    runs.push_back({false, 0});
    for (int i = 0; i < args.runs; ++i)
        runs.push_back({true, seed + static_cast<std::uint64_t>(i)});

    bench::banner("Chaos soak: Splitwise-HH 17P+23T, conversation @ "
                  "70 RPS, " + std::to_string(args.runs) +
                  " storm(s) from seed " + std::to_string(seed));
    for (const ChaosRun& run : runs) {
        if (!run.faulted)
            continue;
        const core::FaultPlan plan = core::makeFaultStorm(storm, run.seed);
        std::printf("storm seed %llu:\n",
                    static_cast<unsigned long long>(run.seed));
        for (const auto& event : plan.events) {
            std::printf("  t=%5.1fs  %-12s machine %2d  (%.1fs window",
                        sim::usToSeconds(event.at),
                        core::faultKindName(event.kind), event.machineId,
                        sim::usToSeconds(event.durationUs));
            if (event.kind == core::FaultKind::kSlowdown)
                std::printf(", %.1fx slower", event.factor);
            if (event.kind == core::FaultKind::kLinkDegrade)
                std::printf(", %.0f%% bandwidth", 100.0 * event.factor);
            std::printf(")\n");
        }
    }

    core::SimConfig config;
    config.cls.shedQueuedTokensBound = 500000;
    config.kvRetry.maxRetries = 4;
    config.kvRetry.backoffBaseUs = sim::msToUs(20.0);
    bench::applyTelemetryCli(config);

    // Fan the runs out; each owns its cluster, fault plan, and
    // telemetry sinks, so reports are identical at every job count.
    sim::RunPool pool(bench::effectiveJobs());
    const std::vector<ChaosResult> results =
        pool.map(runs, [&](const ChaosRun& run, std::size_t index) {
            ChaosResult res;
            core::Cluster cluster(model::llama2_70b(), design, config);
            if (run.faulted) {
                const core::FaultPlan plan =
                    core::makeFaultStorm(storm, run.seed);
                core::FaultInjector injector(cluster);
                injector.apply(plan);
            }
            res.report = cluster.run(trace);
            const auto slo =
                checker.evaluate(res.report.requests, core::SloSet{});
            res.row = {
                run.faulted ? "storm " + std::to_string(run.seed)
                            : "fault-free",
                Table::fmt(res.report.throughputRps(), 1),
                Table::fmt(res.report.requests.ttftMs().p50(), 0),
                Table::fmt(res.report.requests.ttftMs().p99(), 0),
                Table::fmt(res.report.requests.tbtMs().p50(), 1),
                Table::fmt(res.report.requests.tbtMs().p99(), 1),
                std::to_string(res.report.requests.completed()),
                std::to_string(res.report.rejected),
                slo.pass ? "pass" : "FAIL " + slo.violation,
            };
            if (res.report.requests.completed() + res.report.rejected !=
                trace.size())
                res.accounted = false;

            // Telemetry self-checks: a parseable trace needs matched
            // begin/end pairs, and the sampled cumulative token
            // counter must land on the aggregate the report derives
            // throughput from (the final sample row is taken at
            // end-of-run, so any disagreement means the sampler lost
            // updates).
            if (auto* rec = cluster.traceRecorder()) {
                if (rec->openSpans() != 0) {
                    res.telemetryNote =
                        std::to_string(rec->openSpans()) +
                        " trace spans left open";
                    res.telemetryConsistent = false;
                }
            }
            if (!res.report.timeseries.empty()) {
                const auto sampled =
                    res.report.timeseries.column("tokens_generated");
                const double aggregate = static_cast<double>(
                    res.report.promptPool.tokensGenerated +
                    res.report.tokenPool.tokensGenerated);
                const double err =
                    aggregate > 0.0
                        ? std::abs(sampled.back() - aggregate) / aggregate
                        : std::abs(sampled.back());
                char buf[128];
                std::snprintf(buf, sizeof(buf),
                              "sampled %.0f vs aggregate %.0f generated "
                              "tokens (%.3f%% off)",
                              sampled.back(), aggregate, 100.0 * err);
                res.telemetryNote = buf;
                if (err > 0.01)
                    res.telemetryConsistent = false;
            }
            bench::writeTelemetryOutputs(cluster, res.report,
                                         static_cast<int>(index));
            return res;
        });

    Table table({"run", "thpt (rps)", "TTFT p50 (ms)", "TTFT p99 (ms)",
                 "TBT p50 (ms)", "TBT p99 (ms)", "completed", "shed",
                 "SLO"});
    bool accounted = true;
    bool telemetryConsistent = true;
    for (const ChaosResult& res : results) {
        table.addRow(res.row);
        accounted = accounted && res.accounted;
        telemetryConsistent =
            telemetryConsistent && res.telemetryConsistent;
        if (!res.telemetryNote.empty())
            std::printf("timeseries cross-check: %s\n",
                        res.telemetryNote.c_str());
    }
    table.print();

    for (std::size_t i = 1; i < results.size(); ++i) {
        const auto& chaos = results[i].report;
        std::printf("\nrecovery under storm %llu: %llu rejoins, %llu "
                    "restarts, %llu transfer faults (%llu retried, %llu "
                    "aborted), %llu timeouts, %llu degraded transfers, "
                    "%llu shed\n",
                    static_cast<unsigned long long>(runs[i].seed),
                    static_cast<unsigned long long>(chaos.rejoins),
                    static_cast<unsigned long long>(chaos.restarts),
                    static_cast<unsigned long long>(
                        chaos.transfers.transferFaults),
                    static_cast<unsigned long long>(
                        chaos.transfers.transferRetries),
                    static_cast<unsigned long long>(
                        chaos.transfers.transferAborts),
                    static_cast<unsigned long long>(
                        chaos.transfers.transferTimeouts),
                    static_cast<unsigned long long>(
                        chaos.transfers.degradedTransfers),
                    static_cast<unsigned long long>(chaos.rejected));
    }
    std::printf("crashed machines rejoin their pool after the downtime; "
                "faulted KV transfers retry with exponential backoff and "
                "only restart from scratch once the budget is spent.\n");

    if (!accounted) {
        std::printf("\nERROR: requests lost - completed + shed != "
                    "submitted (%zu)\n", trace.size());
        return 1;
    }
    if (!telemetryConsistent) {
        std::printf("\nERROR: telemetry self-check failed\n");
        return 1;
    }
    return 0;
}
