/**
 * @file
 * Chaos soak: an iso-power Splitwise-HH cluster serving the
 * conversation trace under a randomized (but seeded) fault storm -
 * transient machine crashes with rejoin, straggler windows, NIC
 * fault/degradation windows - versus the same cluster fault-free.
 *
 * Every request must be accounted for: completed or explicitly shed
 * by admission control. The binary exits non-zero if any request
 * falls through the cracks, so it doubles as a soak check.
 *
 *   bench_chaos [storm_seed] [--trace-out=...] [--timeseries-out=...]
 */

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.h"
#include "core/fault_plan.h"

int
main(int argc, char** argv)
{
    using namespace splitwise;
    using metrics::Table;

    bench::initBenchArgs(argc, argv);

    // The storm seed is the first bare-number argument; everything
    // else belongs to the shared telemetry flags.
    std::uint64_t seed = 2024;
    for (int i = 1; i < argc; ++i) {
        if (std::isdigit(static_cast<unsigned char>(argv[i][0]))) {
            seed = std::strtoull(argv[i], nullptr, 10);
            break;
        }
    }

    const auto trace =
        bench::makeTrace(workload::conversation(), 70.0, 60);
    const core::ClusterDesign design = core::splitwiseHH(17, 23);
    const core::SloChecker checker(model::llama2_70b());

    core::FaultStormConfig storm;
    storm.numMachines = design.machines();
    storm.horizonUs = sim::secondsToUs(50.0);
    storm.crashes = 3;
    storm.slowdowns = 3;
    storm.linkFaults = 4;
    storm.linkDegrades = 3;
    const core::FaultPlan plan = core::makeFaultStorm(storm, seed);

    bench::banner("Chaos soak: Splitwise-HH 17P+23T, conversation @ "
                  "70 RPS, storm seed " + std::to_string(seed));
    std::printf("injected faults:\n");
    for (const auto& event : plan.events) {
        std::printf("  t=%5.1fs  %-12s machine %2d  (%.1fs window",
                    sim::usToSeconds(event.at),
                    core::faultKindName(event.kind), event.machineId,
                    sim::usToSeconds(event.durationUs));
        if (event.kind == core::FaultKind::kSlowdown)
            std::printf(", %.1fx slower", event.factor);
        if (event.kind == core::FaultKind::kLinkDegrade)
            std::printf(", %.0f%% bandwidth", 100.0 * event.factor);
        std::printf(")\n");
    }

    core::SimConfig config;
    config.cls.shedQueuedTokensBound = 500000;
    config.kvRetry.maxRetries = 4;
    config.kvRetry.backoffBaseUs = sim::msToUs(20.0);
    bench::applyTelemetryCli(config);

    bool accounted = true;
    bool telemetryConsistent = true;
    Table table({"run", "thpt (rps)", "TTFT p50 (ms)", "TTFT p99 (ms)",
                 "TBT p50 (ms)", "TBT p99 (ms)", "completed", "shed",
                 "SLO"});
    core::RunReport reports[2];
    for (const bool faulted : {false, true}) {
        core::Cluster cluster(model::llama2_70b(), design, config);
        if (faulted) {
            core::FaultInjector injector(cluster);
            injector.apply(plan);
        }
        const auto report = cluster.run(trace);
        const auto slo = checker.evaluate(report.requests, core::SloSet{});
        table.addRow({
            faulted ? "fault storm" : "fault-free",
            Table::fmt(report.throughputRps(), 1),
            Table::fmt(report.requests.ttftMs().p50(), 0),
            Table::fmt(report.requests.ttftMs().p99(), 0),
            Table::fmt(report.requests.tbtMs().p50(), 1),
            Table::fmt(report.requests.tbtMs().p99(), 1),
            std::to_string(report.requests.completed()),
            std::to_string(report.rejected),
            slo.pass ? "pass" : "FAIL " + slo.violation,
        });
        if (report.requests.completed() + report.rejected != trace.size())
            accounted = false;

        // Telemetry self-checks: a parseable trace needs matched
        // begin/end pairs, and the sampled cumulative token counter
        // must land on the aggregate the report derives throughput
        // from (the final sample row is taken at end-of-run, so any
        // disagreement means the sampler lost updates).
        if (auto* rec = cluster.traceRecorder()) {
            if (rec->openSpans() != 0) {
                std::printf("ERROR: %zu trace spans left open\n",
                            rec->openSpans());
                telemetryConsistent = false;
            }
        }
        if (!report.timeseries.empty()) {
            const auto sampled = report.timeseries.column("tokens_generated");
            const double aggregate =
                static_cast<double>(report.promptPool.tokensGenerated +
                                    report.tokenPool.tokensGenerated);
            const double err =
                aggregate > 0.0
                    ? std::abs(sampled.back() - aggregate) / aggregate
                    : std::abs(sampled.back());
            std::printf("timeseries cross-check: sampled %0.f vs "
                        "aggregate %.0f generated tokens (%.3f%% off)\n",
                        sampled.back(), aggregate, 100.0 * err);
            if (err > 0.01)
                telemetryConsistent = false;
        }
        bench::writeTelemetryOutputs(cluster, report);
        reports[faulted ? 1 : 0] = report;
    }
    table.print();

    const auto& chaos = reports[1];
    std::printf("\nrecovery under the storm: %llu rejoins, %llu "
                "restarts, %llu transfer faults (%llu retried, %llu "
                "aborted), %llu timeouts, %llu degraded transfers, "
                "%llu shed\n",
                static_cast<unsigned long long>(chaos.rejoins),
                static_cast<unsigned long long>(chaos.restarts),
                static_cast<unsigned long long>(chaos.transfers.transferFaults),
                static_cast<unsigned long long>(chaos.transfers.transferRetries),
                static_cast<unsigned long long>(chaos.transfers.transferAborts),
                static_cast<unsigned long long>(chaos.transfers.transferTimeouts),
                static_cast<unsigned long long>(chaos.transfers.degradedTransfers),
                static_cast<unsigned long long>(chaos.rejected));
    std::printf("crashed machines rejoin their pool after the downtime; "
                "faulted KV transfers retry with exponential backoff and "
                "only restart from scratch once the budget is spent.\n");

    if (!accounted) {
        std::printf("\nERROR: requests lost - completed + shed != "
                    "submitted (%zu)\n", trace.size());
        return 1;
    }
    if (!telemetryConsistent) {
        std::printf("\nERROR: telemetry self-check failed\n");
        return 1;
    }
    return 0;
}
