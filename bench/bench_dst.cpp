/**
 * @file
 * DST soak driver: fuzz seeded scenarios through the invariant
 * checker until a seed count or a wall-clock budget is exhausted.
 *
 *   bench_dst --seeds=200 --jobs=8        # fixed-count campaign
 *   bench_dst --time-budget=120 --jobs=8  # nightly soak (seconds)
 *   bench_dst --short                     # CI smoke (24 seeds)
 *   bench_dst --dump-seed=7 --dump-out=x.scenario.json
 *
 * On a violation the driver shrinks the failing scenario to a
 * minimal reproducer, writes it to dst_failure_<seed>.scenario.json
 * (check it into tests/dst/data/ once fixed), and exits non-zero.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>

#include "bench/bench_common.h"
#include "testing/fuzzer.h"
#include "testing/shrinker.h"

namespace splitwise {
namespace {

struct DstArgs {
    int seeds = 200;
    std::uint64_t baseSeed = 1;
    /** Wall-clock budget in seconds; 0 = run exactly `seeds`. */
    double timeBudgetS = 0.0;
    /** Invariant cadence (1 = every quiescent point). */
    int checkEvery = 1;
    std::uint64_t dumpSeed = 0;
    std::string dumpOut;
};

DstArgs
parseArgs(int argc, char** argv)
{
    DstArgs args;
    auto value = [&](int& i, const char* name, std::string& out) {
        const std::size_t len = std::strlen(name);
        if (std::strncmp(argv[i], name, len) != 0)
            return false;
        if (argv[i][len] == '=') {
            out = argv[i] + len + 1;
            return true;
        }
        if (argv[i][len] == '\0' && i + 1 < argc) {
            out = argv[++i];
            return true;
        }
        return false;
    };
    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (value(i, "--seeds", v))
            args.seeds = std::stoi(v);
        else if (value(i, "--base-seed", v))
            args.baseSeed = std::stoull(v);
        else if (value(i, "--time-budget", v)) {
            if (!v.empty() && v.back() == 's')
                v.pop_back();
            args.timeBudgetS = std::stod(v);
        } else if (value(i, "--check-every", v))
            args.checkEvery = std::stoi(v);
        else if (value(i, "--dump-seed", v))
            args.dumpSeed = std::stoull(v);
        else if (value(i, "--dump-out", v))
            args.dumpOut = v;
    }
    if (args.seeds < 1)
        sim::fatal("--seeds must be >= 1");
    if (args.checkEvery < 1)
        sim::fatal("--check-every must be >= 1");
    return args;
}

int
runSoak(const DstArgs& args)
{
    using Clock = std::chrono::steady_clock;
    const auto start = Clock::now();
    auto elapsedS = [&] {
        return std::chrono::duration<double>(Clock::now() - start).count();
    };

    const int jobs = bench::effectiveJobs();
    const int batch = std::max(16, 4 * jobs);
    const bool timed = args.timeBudgetS > 0.0;

    std::uint64_t ran = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t restarts = 0;
    std::uint64_t transfers = 0;

    bench::banner("DST soak");
    std::printf("jobs=%d base_seed=%llu %s\n", jobs,
                static_cast<unsigned long long>(args.baseSeed),
                timed ? ("budget=" + std::to_string(args.timeBudgetS) + "s")
                           .c_str()
                      : ("seeds=" + std::to_string(args.seeds)).c_str());

    while (true) {
        const std::uint64_t remaining =
            timed ? static_cast<std::uint64_t>(batch)
                  : static_cast<std::uint64_t>(args.seeds) - ran;
        if (remaining == 0)
            break;

        testing::FuzzerConfig config;
        config.scenarios = static_cast<int>(
            std::min<std::uint64_t>(remaining,
                                    static_cast<std::uint64_t>(batch)));
        config.baseSeed = args.baseSeed + ran;
        config.jobs = jobs;
        config.invariants.checkEveryNthAdvance = args.checkEvery;
        const auto results = testing::fuzz(config);

        for (const auto& r : results) {
            if (r.outcome.violated) {
                std::printf(
                    "\nVIOLATION seed=%llu invariant=%s t=%lld us\n  %s\n",
                    static_cast<unsigned long long>(r.seed),
                    r.outcome.invariant.c_str(),
                    static_cast<long long>(r.outcome.violationTime),
                    r.outcome.detail.c_str());
                std::printf("shrinking (%zu requests, %zu faults)...\n",
                            r.scenario.requests.size(),
                            r.scenario.faults.size());
                const testing::ShrinkResult shrunk =
                    testing::shrink(r.scenario);
                const std::string path =
                    "dst_failure_" + std::to_string(r.seed) +
                    ".scenario.json";
                testing::writeScenarioFile(shrunk.minimal, path);
                std::printf(
                    "minimal reproducer: %zu requests, %zu faults "
                    "(%d runs) -> %s\n",
                    shrunk.minimal.requests.size(),
                    shrunk.minimal.faults.size(), shrunk.runs,
                    path.c_str());
                return 1;
            }
            completed += r.outcome.completed;
            rejected += r.outcome.rejected;
            restarts += r.outcome.restarts;
            transfers += r.outcome.transfers;
        }
        ran += static_cast<std::uint64_t>(results.size());
        std::printf("  %llu scenarios clean (%.1fs)\n",
                    static_cast<unsigned long long>(ran), elapsedS());
        std::fflush(stdout);
        if (timed && elapsedS() >= args.timeBudgetS)
            break;
    }

    std::printf(
        "\n%llu scenarios, 0 violations in %.1fs\n"
        "  completed=%llu rejected=%llu restarts=%llu transfers=%llu\n",
        static_cast<unsigned long long>(ran), elapsedS(),
        static_cast<unsigned long long>(completed),
        static_cast<unsigned long long>(rejected),
        static_cast<unsigned long long>(restarts),
        static_cast<unsigned long long>(transfers));
    return 0;
}

}  // namespace
}  // namespace splitwise

int
main(int argc, char** argv)
{
    using namespace splitwise;
    bench::initBenchArgs(argc, argv);
    DstArgs args = parseArgs(argc, argv);
    if (bench::benchArgs().shortRun)
        args.seeds = std::min(args.seeds, 24);

    if (!args.dumpOut.empty()) {
        testing::writeScenarioFile(testing::makeScenario(args.dumpSeed),
                                   args.dumpOut);
        std::printf("wrote scenario seed=%llu to %s\n",
                    static_cast<unsigned long long>(args.dumpSeed),
                    args.dumpOut.c_str());
        return 0;
    }
    return runSoak(args);
}
