/**
 * @file
 * DST soak driver: fuzz seeded scenarios through the invariant
 * checker until a seed count or a wall-clock budget is exhausted.
 *
 *   bench_dst --seeds=200 --jobs=8        # fixed-count campaign
 *   bench_dst --time-budget=120 --jobs=8  # nightly soak (seconds)
 *   bench_dst --short                     # CI smoke (24 seeds)
 *   bench_dst --dump-seed=7 --dump-out=x.scenario.json
 *
 * On a violation the driver shrinks the failing scenario to a
 * minimal reproducer, writes it to dst_failure_<seed>.scenario.json
 * (check it into tests/dst/data/ once fixed), and exits non-zero.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>

#include "bench/bench_common.h"
#include "testing/fuzzer.h"
#include "testing/shrinker.h"

namespace splitwise {
namespace {

struct DstArgs {
    int seeds = 200;
    std::uint64_t baseSeed = 1;
    /** Wall-clock budget in seconds; 0 = run exactly `seeds`. */
    double timeBudgetS = 0.0;
    /** Raw `--time-budget` value; accepts an optional 's' suffix. */
    std::string timeBudget;
    /** Invariant cadence (1 = every quiescent point). */
    int checkEvery = 1;
    std::uint64_t dumpSeed = 0;
    std::string dumpOut;
    /** Parsed shared --spans flag (Scenario::spanOverride). */
    int spanOverride = 0;
};

DstArgs
parseArgs(int argc, char** argv)
{
    DstArgs args;
    auto parser = bench::benchParser(
        "bench_dst",
        "DST soak: fuzz seeded scenarios through the invariant checker "
        "until a seed count or wall-clock budget is exhausted");
    parser.addInt("--seeds", &args.seeds, "scenario count for the campaign");
    parser.addUint64("--base-seed", &args.baseSeed, "first scenario seed");
    parser.addString("--time-budget", &args.timeBudget,
                     "wall-clock budget in seconds (optional 's' suffix); "
                     "overrides --seeds");
    parser.addInt("--check-every", &args.checkEvery,
                  "invariant cadence (1 = every quiescent point)");
    parser.addUint64("--dump-seed", &args.dumpSeed,
                     "scenario seed to dump with --dump-out");
    parser.addString("--dump-out", &args.dumpOut,
                     "write the --dump-seed scenario JSON here and exit");
    parser.parse(argc, argv);
    // The shared --spans flag maps onto the scenario override: "auto"
    // lets each fuzzed scenario decide.
    const std::string& spans = bench::benchArgs().spans;
    if (spans == "on")
        args.spanOverride = 1;
    else if (spans == "off")
        args.spanOverride = -1;
    if (!args.timeBudget.empty()) {
        std::string v = args.timeBudget;
        if (v.back() == 's')
            v.pop_back();
        try {
            args.timeBudgetS = std::stod(v);
        } catch (const std::exception&) {
            parser.fail("--time-budget: invalid value '" + args.timeBudget +
                        "'");
        }
    }
    if (args.seeds < 1)
        sim::fatal("--seeds must be >= 1");
    if (args.checkEvery < 1)
        sim::fatal("--check-every must be >= 1");
    return args;
}

int
runSoak(const DstArgs& args)
{
    using Clock = std::chrono::steady_clock;
    const auto start = Clock::now();
    auto elapsedS = [&] {
        return std::chrono::duration<double>(Clock::now() - start).count();
    };

    const int jobs = bench::effectiveJobs();
    const int batch = std::max(16, 4 * jobs);
    const bool timed = args.timeBudgetS > 0.0;

    std::uint64_t ran = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t restarts = 0;
    std::uint64_t transfers = 0;

    bench::banner("DST soak");
    std::printf("jobs=%d base_seed=%llu %s\n", jobs,
                static_cast<unsigned long long>(args.baseSeed),
                timed ? ("budget=" + std::to_string(args.timeBudgetS) + "s")
                           .c_str()
                      : ("seeds=" + std::to_string(args.seeds)).c_str());

    while (true) {
        const std::uint64_t remaining =
            timed ? static_cast<std::uint64_t>(batch)
                  : static_cast<std::uint64_t>(args.seeds) - ran;
        if (remaining == 0)
            break;

        testing::FuzzerConfig config;
        config.scenarios = static_cast<int>(
            std::min<std::uint64_t>(remaining,
                                    static_cast<std::uint64_t>(batch)));
        config.baseSeed = args.baseSeed + ran;
        config.jobs = jobs;
        config.spanOverride = args.spanOverride;
        config.invariants.checkEveryNthAdvance = args.checkEvery;
        const auto results = testing::fuzz(config);

        for (const auto& r : results) {
            if (r.outcome.violated) {
                std::printf(
                    "\nVIOLATION seed=%llu invariant=%s t=%lld us\n  %s\n",
                    static_cast<unsigned long long>(r.seed),
                    r.outcome.invariant.c_str(),
                    static_cast<long long>(r.outcome.violationTime),
                    r.outcome.detail.c_str());
                if (!r.outcome.flightRecorderJson.empty()) {
                    // The tracker's last moments before the violation:
                    // recent completed timelines plus everything live.
                    const std::string flight_path =
                        "dst_flight_" + std::to_string(r.seed) + ".json";
                    std::FILE* file =
                        std::fopen(flight_path.c_str(), "w");
                    if (file) {
                        std::fwrite(r.outcome.flightRecorderJson.data(), 1,
                                    r.outcome.flightRecorderJson.size(),
                                    file);
                        std::fclose(file);
                        std::printf("flight recorder: %s\n",
                                    flight_path.c_str());
                    }
                }
                std::printf("shrinking (%zu requests, %zu faults)...\n",
                            r.scenario.requests.size(),
                            r.scenario.faults.size());
                const testing::ShrinkResult shrunk =
                    testing::shrink(r.scenario);
                const std::string path =
                    "dst_failure_" + std::to_string(r.seed) +
                    ".scenario.json";
                testing::writeScenarioFile(shrunk.minimal, path);
                std::printf(
                    "minimal reproducer: %zu requests, %zu faults "
                    "(%d runs) -> %s\n",
                    shrunk.minimal.requests.size(),
                    shrunk.minimal.faults.size(), shrunk.runs,
                    path.c_str());
                return 1;
            }
            completed += r.outcome.completed;
            rejected += r.outcome.rejected;
            restarts += r.outcome.restarts;
            transfers += r.outcome.transfers;
        }
        ran += static_cast<std::uint64_t>(results.size());
        std::printf("  %llu scenarios clean (%.1fs)\n",
                    static_cast<unsigned long long>(ran), elapsedS());
        std::fflush(stdout);
        if (timed && elapsedS() >= args.timeBudgetS)
            break;
    }

    std::printf(
        "\n%llu scenarios, 0 violations in %.1fs\n"
        "  completed=%llu rejected=%llu restarts=%llu transfers=%llu\n",
        static_cast<unsigned long long>(ran), elapsedS(),
        static_cast<unsigned long long>(completed),
        static_cast<unsigned long long>(rejected),
        static_cast<unsigned long long>(restarts),
        static_cast<unsigned long long>(transfers));
    return 0;
}

}  // namespace
}  // namespace splitwise

int
main(int argc, char** argv)
{
    using namespace splitwise;
    DstArgs args = parseArgs(argc, argv);
    if (bench::benchArgs().shortRun)
        args.seeds = std::min(args.seeds, 24);

    if (!args.dumpOut.empty()) {
        testing::writeScenarioFile(testing::makeScenario(args.dumpSeed),
                                   args.dumpOut);
        std::printf("wrote scenario seed=%llu to %s\n",
                    static_cast<unsigned long long>(args.dumpSeed),
                    args.dumpOut.c_str());
        return 0;
    }
    return runSoak(args);
}
