/**
 * @file
 * Regenerates paper Fig. 8: GPU power draw (fraction of TDP) while
 * varying the batch size in each phase (Insight VI: the token phase
 * never uses the power budget).
 */

#include <cstdio>

#include "bench/bench_common.h"
#include "model/power_model.h"

int
main(int argc, char** argv)
{
    splitwise::bench::parseBenchArgs(argc, argv, "bench_fig08_power",
        "Paper Fig. 8: power draw by phase");
    using namespace splitwise;
    using metrics::Table;

    bench::banner("Fig. 8a: prompt phase power vs batched tokens");
    Table prompt({"batched prompt tokens", "A100 (frac of TDP)",
                  "H100 (frac of TDP)"});
    const model::PowerModel a100(hw::a100());
    const model::PowerModel h100(hw::h100());
    for (std::int64_t p : {64, 128, 256, 512, 1024, 1500, 2048, 4096}) {
        prompt.addRow({std::to_string(p),
                       Table::fmt(a100.promptPowerFraction(p)),
                       Table::fmt(h100.promptPowerFraction(p))});
    }
    prompt.print();
    std::printf("Paper: prompt-phase draw rises with batch toward TDP\n");

    bench::banner("Fig. 8b: token phase power vs batch size");
    Table token({"batch size", "A100 (frac of TDP)", "H100 (frac of TDP)"});
    for (int b : {1, 2, 4, 8, 16, 32, 64, 128}) {
        token.addRow({std::to_string(b),
                      Table::fmt(a100.tokenPowerFraction(b)),
                      Table::fmt(h100.tokenPowerFraction(b))});
    }
    token.print();
    std::printf("Paper: token-phase draw is flat near half of TDP\n");
    return 0;
}
