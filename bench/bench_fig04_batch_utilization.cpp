/**
 * @file
 * Regenerates paper Fig. 4: cumulative distribution of time spent
 * running various numbers of active batched tokens, for the coding
 * and conversation traces at 2 RPS on one DGX-H100 with mixed
 * continuous batching (Insight II).
 */

#include <cstdio>

#include "bench/bench_common.h"

namespace {

void
report(const char* model_name, const splitwise::model::LlmConfig& llm)
{
    using namespace splitwise;
    using metrics::Table;

    bench::banner(std::string("Fig. 4: time at active batched tokens, ") +
                  model_name + ", 1x DGX-H100 @ 2 RPS");
    Table table({"active tokens <=", "coding (% of time)",
                 "conversation (% of time)"});

    metrics::TimeWeightedHistogram hists[2];
    const workload::Workload* workloads[2] = {&workload::coding(),
                                              &workload::conversation()};
    for (int i = 0; i < 2; ++i) {
        const auto trace = bench::makeTrace(*workloads[i], 2.0, 120);
        const auto run = core::run(
            bench::cliRunOptions(llm, core::baselineH100(1), trace));
        hists[i] = run.promptPool.activeTokens;
    }
    for (std::int64_t threshold : {0, 1, 2, 5, 10, 20, 50, 100, 500, 2000,
                                   8000}) {
        table.addRow({std::to_string(threshold),
                      Table::fmt(100.0 * hists[0].cdfAt(threshold), 1),
                      Table::fmt(100.0 * hists[1].cdfAt(threshold), 1)});
    }
    table.print();
}

/**
 * Re-derive the Fig. 4 distribution from the telemetry sampler
 * instead of the exact event-driven signal tracker: fixed-interval
 * samples of the active_batch_tokens gauge, each weighting one grid
 * interval. The two paths share no code, so their agreement
 * cross-validates the sampler against the exact histogram.
 */
void
samplerCrossCheck(const splitwise::model::LlmConfig& llm)
{
    using namespace splitwise;
    using metrics::Table;

    bench::banner("Sampler cross-check: Fig. 4 from the time-series "
                  "(coding, Llama2-70B, 50 ms grid)");

    const auto trace = bench::makeTrace(workload::coding(), 2.0, 120);
    core::SimConfig config;
    config.telemetry.sampleIntervalUs = sim::msToUs(50.0);
    core::Cluster cluster(llm, core::baselineH100(1), config);
    const auto run = cluster.run(trace);

    const auto& exact = run.promptPool.activeTokens;
    const auto samples = run.timeseries.column("active_batch_tokens");

    Table table({"active tokens <=", "exact (% of time)",
                 "sampled (% of time)"});
    for (std::int64_t threshold : {0, 1, 20, 100, 2000, 8000}) {
        std::size_t below = 0;
        for (double v : samples) {
            if (v <= static_cast<double>(threshold))
                ++below;
        }
        const double sampled_pct =
            100.0 * static_cast<double>(below) /
            static_cast<double>(samples.size());
        table.addRow({std::to_string(threshold),
                      Table::fmt(100.0 * exact.cdfAt(threshold), 1),
                      Table::fmt(sampled_pct, 1)});
    }
    table.print();
}

}  // namespace

int
main(int argc, char** argv)
{
    splitwise::bench::parseBenchArgs(argc, argv, "bench_fig04_batch_utilization",
        "Paper Fig. 4: active tokens per batch over time");
    using namespace splitwise;

    report("Llama2-70B", model::llama2_70b());
    report("BLOOM-176B", model::bloom_176b());

    samplerCrossCheck(model::llama2_70b());

    std::printf("\nPaper: conversation spends 60-70%% of time at <= 20"
                " active tokens; coding runs a single token > 20%% of the"
                " time (Insight II)\n");
    return 0;
}
