/**
 * @file
 * Regenerates paper Fig. 4: cumulative distribution of time spent
 * running various numbers of active batched tokens, for the coding
 * and conversation traces at 2 RPS on one DGX-H100 with mixed
 * continuous batching (Insight II).
 */

#include <cstdio>

#include "bench/bench_common.h"

namespace {

void
report(const char* model_name, const splitwise::model::LlmConfig& llm)
{
    using namespace splitwise;
    using metrics::Table;

    bench::banner(std::string("Fig. 4: time at active batched tokens, ") +
                  model_name + ", 1x DGX-H100 @ 2 RPS");
    Table table({"active tokens <=", "coding (% of time)",
                 "conversation (% of time)"});

    metrics::TimeWeightedHistogram hists[2];
    const workload::Workload* workloads[2] = {&workload::coding(),
                                              &workload::conversation()};
    for (int i = 0; i < 2; ++i) {
        const auto trace = bench::makeTrace(*workloads[i], 2.0, 120);
        const auto run =
            bench::runCluster(llm, core::baselineH100(1), trace);
        hists[i] = run.promptPool.activeTokens;
    }
    for (std::int64_t threshold : {0, 1, 2, 5, 10, 20, 50, 100, 500, 2000,
                                   8000}) {
        table.addRow({std::to_string(threshold),
                      Table::fmt(100.0 * hists[0].cdfAt(threshold), 1),
                      Table::fmt(100.0 * hists[1].cdfAt(threshold), 1)});
    }
    table.print();
}

}  // namespace

int
main()
{
    using namespace splitwise;

    report("Llama2-70B", model::llama2_70b());
    report("BLOOM-176B", model::bloom_176b());

    std::printf("\nPaper: conversation spends 60-70%% of time at <= 20"
                " active tokens; coding runs a single token > 20%% of the"
                " time (Insight II)\n");
    return 0;
}
