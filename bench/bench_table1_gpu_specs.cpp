/**
 * @file
 * Regenerates paper Table I: NVIDIA A100 vs. H100 specifications.
 */

#include <cstdio>

#include "bench/bench_common.h"

int
main(int argc, char** argv)
{
    splitwise::bench::parseBenchArgs(argc, argv, "bench_table1_gpu_specs",
        "Paper Table 1: GPU/machine spec sheet");
    using namespace splitwise;
    using metrics::Table;

    bench::banner("Table I: NVIDIA A100 vs. H100 specifications");

    const hw::GpuSpec& a = hw::a100();
    const hw::GpuSpec& h = hw::h100();
    const hw::MachineSpec& da = hw::dgxA100();
    const hw::MachineSpec& dh = hw::dgxH100();

    Table table({"", "A100", "H100", "Ratio"});
    auto row = [&](const char* name, double av, double hv, int precision) {
        table.addRow({name, Table::fmt(av, precision),
                      Table::fmt(hv, precision),
                      Table::fmt(hv / av, 2) + "x"});
    };
    row("TFLOPs (fp16 dense)", a.peakFp16Tflops, h.peakFp16Tflops, 0);
    row("HBM capacity (GB)", a.hbmCapacityGb, h.hbmCapacityGb, 0);
    row("HBM bandwidth (GBps)", a.hbmBandwidthGBps, h.hbmBandwidthGBps, 0);
    row("Power (W)", a.tdpWatts, h.tdpWatts, 0);
    row("NVLink (GBps)", a.nvlinkGBps, h.nvlinkGBps, 0);
    row("InfiniBand (GBps, machine)", da.infinibandGBps, dh.infinibandGBps,
        0);
    row("Cost per machine ($/hr)", da.costPerHour, dh.costPerHour, 1);
    row("Machine power (W)", da.provisionedPowerWatts(),
        dh.provisionedPowerWatts(), 0);
    table.print();

    std::printf("\nPaper ratios: compute 3.43x, HBM bw 1.64x, power 1.75x,"
                " NVLink 2x, IB 2x, cost 2.16x\n");
    return 0;
}
