/**
 * @file
 * Ablation of the CLS routing policy (paper SIV-A picks
 * Join-the-Shortest-Queue [39, 85]): JSQ versus uniform-random
 * machine selection on an iso-power Splitwise-HH cluster. Random
 * routing lets hot spots form, inflating the latency tails JSQ
 * exists to prevent.
 */

#include <cstdio>

#include "bench/bench_common.h"

int
main(int argc, char** argv)
{
    splitwise::bench::parseBenchArgs(argc, argv, "bench_ablation_routing",
        "Ablation: CLS routing policies under load");
    using namespace splitwise;
    using metrics::Table;

    const auto trace =
        bench::makeTrace(workload::conversation(), 90.0, 30);
    const core::ClusterDesign design = core::splitwiseHH(17, 23);
    const core::SloChecker checker(model::llama2_70b());

    bench::banner("Ablation: CLS routing policy, Splitwise-HH 17P+23T, "
                  "conversation @ 90 RPS");
    Table table({"routing", "TTFT p50 (ms)", "TTFT p99 (ms)",
                 "TBT p50 (ms)", "E2E p99 (s)", "SLO"});
    for (const bool random : {false, true}) {
        core::SimConfig config;
        config.cls.routing = random ? core::RoutingPolicy::kRandom
                                    : core::RoutingPolicy::kJsq;
        core::Cluster cluster(model::llama2_70b(), design, config);
        const auto report = cluster.run(trace);
        const auto slo = checker.evaluate(report.requests, core::SloSet{});
        table.addRow({
            random ? "random" : "JSQ (paper)",
            Table::fmt(report.requests.ttftMs().p50(), 0),
            Table::fmt(report.requests.ttftMs().p99(), 0),
            Table::fmt(report.requests.tbtMs().p50(), 1),
            Table::fmt(report.requests.e2eMs().p99() / 1e3, 2),
            slo.pass ? "pass" : "FAIL " + slo.violation,
        });
    }
    table.print();

    std::printf("\nJSQ keeps queue depths even; random routing piles"
                " prompts behind busy machines, blowing the TTFT tail"
                " (the reason the paper adopts JSQ [39, 85]).\n");
    return 0;
}
