/**
 * @file
 * Regenerates paper Fig. 6: impact of batching on prompt-phase and
 * token-phase throughput (Insight IV: cap prompt batches at ~2048
 * tokens; batch the token phase as hard as memory allows).
 */

#include <cstdio>

#include "bench/bench_common.h"
#include "model/memory_model.h"
#include "model/perf_model.h"

int
main(int argc, char** argv)
{
    splitwise::bench::parseBenchArgs(argc, argv, "bench_fig06_throughput",
        "Paper Fig. 6: throughput vs batching policy");
    using namespace splitwise;
    using metrics::Table;

    const model::AnalyticalPerfModel llama(model::llama2_70b(),
                                           hw::dgxH100());
    const model::AnalyticalPerfModel bloom(model::bloom_176b(),
                                           hw::dgxH100());

    bench::banner("Fig. 6a: prompt phase throughput vs batched tokens");
    Table prompt({"batched prompt tokens", "Llama2-70B (tokens/s)",
                  "BLOOM-176B (tokens/s)"});
    for (std::int64_t p : {256, 512, 1024, 1536, 2048, 2560, 3072, 4096,
                           6144, 8192}) {
        prompt.addRow({std::to_string(p),
                       Table::fmt(llama.promptThroughput(p), 0),
                       Table::fmt(bloom.promptThroughput(p), 0)});
    }
    prompt.print();
    std::printf("Paper: throughput peaks near 2048 batched prompt tokens,"
                " then declines\n");

    bench::banner("Fig. 6b: token phase throughput vs batch size");
    const model::MemoryModel llama_mem(model::llama2_70b(), hw::dgxH100());
    const model::MemoryModel bloom_mem(model::bloom_176b(), hw::dgxH100());
    const std::int64_t ctx = 900;  // conversation-like mean context
    Table token({"batch size", "Llama2-70B (tokens/s)",
                 "BLOOM-176B (tokens/s)"});
    for (int b : {1, 2, 4, 8, 16, 32, 64, 128}) {
        auto cell = [&](const model::AnalyticalPerfModel& perf,
                        const model::MemoryModel& mem) -> std::string {
            if (static_cast<std::int64_t>(b) * ctx > mem.kvCapacityTokens())
                return "OOM";
            return Table::fmt(perf.tokenThroughput(b, ctx), 0);
        };
        token.addRow({std::to_string(b), cell(llama, llama_mem),
                      cell(bloom, bloom_mem)});
    }
    token.print();
    std::printf("Paper: token throughput keeps scaling with batch size"
                " until the machine runs out of memory (~64 for BLOOM)\n");
    return 0;
}
