/**
 * @file
 * Head-to-head events/sec benchmark of the event engine: the indexed
 * 4-ary pooled heap (sim::EventQueue) against an embedded copy of the
 * legacy queue it replaced (std::priority_queue + tombstone sets +
 * std::function actions).
 *
 * Workloads:
 *   churn   64-event schedule bursts drained to empty (the
 *           microbench shape the simulator's steady state reduces to)
 *   cancel  bursts where half the events are cancelled before firing
 *   ring    a deep queue (4096 pending) in pop-one/push-one steady
 *           state - the end-to-end cluster-simulation regime
 *   large   churn with 96-byte captures: inline for EventAction,
 *           a heap allocation per event for std::function
 *
 * Output is one machine-readable line per (impl, workload) pair:
 *
 *   EVENTS_BENCH impl=<new|legacy> workload=<w> events=<n> \
 *       seconds=<s> events_per_sec=<r>
 *
 * plus a SPEEDUP line per workload; tools/perf_baseline.sh parses
 * these into BENCH_PR5.json and CI gates on the churn ratio.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench/bench_common.h"
#include "sim/event_queue.h"

namespace {

using namespace splitwise;

/**
 * The pre-PR event queue, verbatim except for the name: a binary
 * priority_queue of full Event values with lazy cancellation through
 * a cancelled-id tombstone set and a live-id set, actions type-erased
 * into std::function.
 */
class LegacyEventQueue {
  public:
    struct LegacyEvent {
        sim::TimeUs time = 0;
        int priority = 0;
        std::uint64_t id = 0;
        std::function<void()> action;
    };

    std::uint64_t
    schedule(sim::TimeUs time, std::function<void()> action, int priority = 0)
    {
        LegacyEvent ev;
        ev.time = time;
        ev.priority = priority;
        ev.id = nextId_++;
        ev.action = std::move(action);
        const std::uint64_t id = ev.id;
        heap_.push(std::move(ev));
        live_.insert(id);
        return id;
    }

    void
    cancel(std::uint64_t id)
    {
        if (live_.erase(id) > 0)
            cancelled_.insert(id);
    }

    bool empty() const { return live_.empty(); }

    LegacyEvent
    pop()
    {
        skipDead();
        LegacyEvent ev = heap_.top();
        heap_.pop();
        live_.erase(ev.id);
        return ev;
    }

  private:
    struct EventLater {
        bool
        operator()(const LegacyEvent& a, const LegacyEvent& b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.id > b.id;
        }
    };

    void
    skipDead()
    {
        while (!heap_.empty()) {
            auto it = cancelled_.find(heap_.top().id);
            if (it == cancelled_.end())
                break;
            cancelled_.erase(it);
            heap_.pop();
        }
    }

    std::priority_queue<LegacyEvent, std::vector<LegacyEvent>, EventLater>
        heap_;
    std::unordered_set<std::uint64_t> cancelled_;
    std::unordered_set<std::uint64_t> live_;
    std::uint64_t nextId_ = 0;
};

/** Fired-callback side effect so actions cannot be optimized away. */
std::uint64_t g_fired = 0;

/** A 96-byte capture: inline in EventAction, heap in std::function. */
struct LargeCapture {
    std::uint64_t payload[11] = {};
    std::uint64_t* sink = nullptr;

    void operator()() const { *sink += payload[0]; }
};

struct WorkloadResult {
    std::uint64_t events = 0;
    double seconds = 0.0;
};

template <typename Fn>
WorkloadResult
timed(std::uint64_t events, Fn&& body)
{
    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();
    body();
    const auto t1 = Clock::now();
    return {events, std::chrono::duration<double>(t1 - t0).count()};
}

// --- churn: 64-event bursts drained to empty ------------------------

template <typename Queue>
WorkloadResult
runChurn(Queue& queue, std::uint64_t iters)
{
    return timed(iters * 64, [&] {
        sim::TimeUs t = 0;
        for (std::uint64_t it = 0; it < iters; ++it) {
            for (int i = 0; i < 64; ++i)
                queue.post(t + (i * 37) % 1000, [] { ++g_fired; });
            while (!queue.empty())
                queue.pop().action();
            t += 1000;
        }
    });
}

WorkloadResult
runChurnLegacy(LegacyEventQueue& queue, std::uint64_t iters)
{
    return timed(iters * 64, [&] {
        sim::TimeUs t = 0;
        for (std::uint64_t it = 0; it < iters; ++it) {
            for (int i = 0; i < 64; ++i)
                queue.schedule(t + (i * 37) % 1000, [] { ++g_fired; });
            while (!queue.empty())
                queue.pop().action();
            t += 1000;
        }
    });
}

// --- cancel: half of each burst is cancelled before firing ----------

WorkloadResult
runCancelNew(sim::EventQueue& queue, std::uint64_t iters)
{
    std::vector<sim::EventId> ids;
    ids.reserve(32);
    return timed(iters * 64, [&] {
        sim::TimeUs t = 0;
        for (std::uint64_t it = 0; it < iters; ++it) {
            ids.clear();
            for (int i = 0; i < 64; ++i) {
                auto handle =
                    queue.schedule(t + (i * 37) % 1000, [] { ++g_fired; });
                if (i % 2 == 0)
                    ids.push_back(handle.release());
                else
                    handle.cancel();
            }
            while (!queue.empty())
                queue.pop().action();
            t += 1000;
        }
    });
}

WorkloadResult
runCancelLegacy(LegacyEventQueue& queue, std::uint64_t iters)
{
    return timed(iters * 64, [&] {
        sim::TimeUs t = 0;
        for (std::uint64_t it = 0; it < iters; ++it) {
            for (int i = 0; i < 64; ++i) {
                const auto id =
                    queue.schedule(t + (i * 37) % 1000, [] { ++g_fired; });
                if (i % 2 != 0)
                    queue.cancel(id);
            }
            while (!queue.empty())
                queue.pop().action();
            t += 1000;
        }
    });
}

// --- ring: deep queue in pop-one/push-one steady state --------------

template <typename Queue, typename Schedule>
WorkloadResult
runRing(Queue& queue, Schedule&& schedule, std::uint64_t pops)
{
    constexpr int kDepth = 4096;
    sim::TimeUs t = 0;
    for (int i = 0; i < kDepth; ++i)
        schedule(t + (i * 37) % 50000);
    return timed(pops, [&] {
        for (std::uint64_t i = 0; i < pops; ++i) {
            auto ev = queue.pop();
            ev.action();
            t = ev.time;
            schedule(t + 1 + (i * 131) % 50000);
        }
    });
}

// --- large: churn with 96-byte captures -----------------------------

WorkloadResult
runLargeNew(sim::EventQueue& queue, std::uint64_t iters)
{
    return timed(iters * 64, [&] {
        sim::TimeUs t = 0;
        LargeCapture capture;
        capture.payload[0] = 1;
        capture.sink = &g_fired;
        for (std::uint64_t it = 0; it < iters; ++it) {
            for (int i = 0; i < 64; ++i)
                queue.post(t + (i * 37) % 1000, capture);
            while (!queue.empty())
                queue.pop().action();
            t += 1000;
        }
    });
}

WorkloadResult
runLargeLegacy(LegacyEventQueue& queue, std::uint64_t iters)
{
    return timed(iters * 64, [&] {
        sim::TimeUs t = 0;
        LargeCapture capture;
        capture.payload[0] = 1;
        capture.sink = &g_fired;
        for (std::uint64_t it = 0; it < iters; ++it) {
            for (int i = 0; i < 64; ++i)
                queue.schedule(t + (i * 37) % 1000, capture);
            while (!queue.empty())
                queue.pop().action();
            t += 1000;
        }
    });
}

double
report(const std::string& impl, const std::string& workload,
       const WorkloadResult& result)
{
    const double rate =
        result.seconds > 0 ? static_cast<double>(result.events) /
                                 result.seconds
                           : 0.0;
    std::printf("EVENTS_BENCH impl=%s workload=%s events=%llu "
                "seconds=%.6f events_per_sec=%.0f\n",
                impl.c_str(), workload.c_str(),
                static_cast<unsigned long long>(result.events),
                result.seconds, rate);
    return rate;
}

void
speedup(const std::string& workload, double new_rate, double legacy_rate)
{
    std::printf("SPEEDUP workload=%s ratio=%.2f\n", workload.c_str(),
                legacy_rate > 0 ? new_rate / legacy_rate : 0.0);
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::parseBenchArgs(
        argc, argv, "bench_events",
        "events/sec of the indexed-heap event engine vs the legacy "
        "priority_queue+tombstone implementation");

    const bool short_run = bench::benchArgs().shortRun;
    const std::uint64_t iters = short_run ? 20'000 : 120'000;
    const std::uint64_t ring_pops = short_run ? 500'000 : 4'000'000;

    bench::banner("event engine: new (indexed 4-ary pooled heap) vs "
                  "legacy (priority_queue + tombstones)");

    // Warm both implementations once so pool growth / allocator
    // warm-up is off the clock for every measured workload.
    {
        sim::EventQueue warm_new;
        LegacyEventQueue warm_legacy;
        runChurn(warm_new, 2'000);
        runChurnLegacy(warm_legacy, 2'000);
    }

    double new_churn = 0.0;
    {
        sim::EventQueue queue;
        queue.reserve(64);
        new_churn = report("new", "churn", runChurn(queue, iters));
    }
    double legacy_churn = 0.0;
    {
        LegacyEventQueue queue;
        legacy_churn = report("legacy", "churn", runChurnLegacy(queue, iters));
    }
    speedup("churn", new_churn, legacy_churn);

    double new_cancel = 0.0;
    {
        sim::EventQueue queue;
        queue.reserve(64);
        new_cancel = report("new", "cancel", runCancelNew(queue, iters));
    }
    double legacy_cancel = 0.0;
    {
        LegacyEventQueue queue;
        legacy_cancel =
            report("legacy", "cancel", runCancelLegacy(queue, iters));
    }
    speedup("cancel", new_cancel, legacy_cancel);

    double new_ring = 0.0;
    {
        sim::EventQueue queue;
        queue.reserve(4096 + 1);
        new_ring = report(
            "new", "ring",
            runRing(queue,
                    [&](sim::TimeUs t) { queue.post(t, [] { ++g_fired; }); },
                    ring_pops));
    }
    double legacy_ring = 0.0;
    {
        LegacyEventQueue queue;
        legacy_ring = report(
            "legacy", "ring",
            runRing(queue,
                    [&](sim::TimeUs t) {
                        queue.schedule(t, [] { ++g_fired; });
                    },
                    ring_pops));
    }
    speedup("ring", new_ring, legacy_ring);

    double new_large = 0.0;
    {
        sim::EventQueue queue;
        queue.reserve(64);
        new_large = report("new", "large", runLargeNew(queue, iters));
    }
    double legacy_large = 0.0;
    {
        LegacyEventQueue queue;
        legacy_large = report("legacy", "large", runLargeLegacy(queue, iters));
    }
    speedup("large", new_large, legacy_large);

    std::printf("\nfired=%llu (side-effect sink)\n",
                static_cast<unsigned long long>(g_fired));
    return 0;
}
