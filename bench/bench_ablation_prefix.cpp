/**
 * @file
 * Ablation of the session prefix-cache scheduling policy: multi-turn
 * chat sessions (paper SVII, "conversation back and forth") resend
 * their whole context every turn, so later turns are increasingly
 * prompt-heavy. The prefix policy routes a session's turns back to
 * the machine holding its KV prefix and prices a hit as prefill over
 * only the un-cached suffix; the default policy recomputes the full
 * context each turn. Swept across prompt/token pool balances to show
 * how reuse shifts the prompt-pool load the balance was sized for.
 */

#include <cstdio>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "sched/policy.h"
#include "workload/multi_turn.h"

int
main(int argc, char** argv)
{
    splitwise::bench::parseBenchArgs(argc, argv, "bench_ablation_prefix",
        "Ablation: session prefix-cache KV reuse vs full recompute");
    using namespace splitwise;
    using metrics::Table;
    const bench::BenchArgs& args = bench::benchArgs();

    // Session workload: the default multi-turn conversation shape.
    // Short mode shrinks the cluster and horizon, not the shape, so
    // the CI golden still exercises real truncation-free sessions.
    workload::MultiTurnConfig mt = workload::defaultMultiTurnConfig();
    mt.thinkTimeMeanS = args.shortRun ? 2.0 : 5.0;
    const double sessions_per_s = args.shortRun ? 4.0 : 12.0;
    const double horizon_s = args.shortRun ? 8.0 : 30.0;

    const std::vector<std::pair<int, int>> balances =
        args.shortRun
            ? std::vector<std::pair<int, int>>{{5, 5}, {6, 4}}
            : std::vector<std::pair<int, int>>{
                  {17, 23}, {20, 20}, {25, 15}};

    bench::banner("Ablation: prefix-cache policy, multi-turn sessions @ " +
                  std::to_string(sessions_per_s).substr(0, 4) +
                  " sessions/s");
    Table table({"pools", "policy", "hit rate", "prompt reduction",
                 "prompt busy (s)", "token busy (s)", "TTFT p99 (ms)"});

    double best_reduction = 0.0;
    for (const auto& [num_prompt, num_token] : balances) {
        const core::ClusterDesign design =
            core::splitwiseHH(num_prompt, num_token);
        const std::string pools = std::to_string(num_prompt) + "P+" +
                                  std::to_string(num_token) + "T";
        for (const auto kind : {sched::PolicyKind::kDefault,
                                sched::PolicyKind::kPrefixCache}) {
            // Identical trace per cell: the generator is re-seeded so
            // the policy is the only variable in a row pair.
            workload::MultiTurnTraceGenerator gen(mt, 42);
            const workload::Trace trace =
                gen.generate(sessions_per_s, sim::secondsToUs(horizon_s));

            core::SimConfig config;
            config.policy.kind = kind;
            config.policy.maxContextTokens = mt.maxContextTokens;
            const auto report = core::run(bench::cliRunOptions(
                model::llama2_70b(), design, trace, config));

            const double total_prompt = static_cast<double>(
                report.requests.totalPromptTokens());
            std::string hit_rate = "-";
            std::string reduction = "-";
            if (report.prefixCache.enabled && report.submitted > 0) {
                const double rate =
                    100.0 * static_cast<double>(report.prefixCache.hits) /
                    static_cast<double>(report.submitted);
                const double saved =
                    total_prompt <= 0.0
                        ? 0.0
                        : 100.0 *
                              static_cast<double>(
                                  report.prefixCache.hitTokens) /
                              total_prompt;
                best_reduction = std::max(best_reduction, saved);
                hit_rate = Table::fmt(rate, 1) + "%";
                reduction = Table::fmt(saved, 1) + "%";
            }
            table.addRow({
                pools,
                sched::policyKindName(kind),
                hit_rate,
                reduction,
                Table::fmt(sim::usToSeconds(report.promptPool.busyUs), 1),
                Table::fmt(sim::usToSeconds(report.tokenPool.busyUs), 1),
                Table::fmt(report.requests.ttftMs().p99(), 0),
            });
        }
    }
    table.print();

    std::printf("\nEvery turn after the first resends the session's"
                " accumulated context; the prefix policy skips prefill"
                " over the cached part (%.0f%% of all prompt tokens at"
                " these session lengths), unloading the prompt pool and"
                " cutting the TTFT tail. The default policy recomputes"
                " it from scratch on whichever machine JSQ picks.\n",
                best_reduction);
    return 0;
}
