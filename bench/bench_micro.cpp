/**
 * @file
 * google-benchmark microbenchmarks for the simulator's hot kernels:
 * event queue operations, performance-model evaluation, the paged
 * block manager, piecewise interpolation, and end-to-end simulated
 * cluster throughput (simulated-seconds per wall-second).
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/cluster.h"
#include "core/designs.h"
#include "engine/block_manager.h"
#include "hw/machine_spec.h"
#include "model/llm_config.h"
#include "model/perf_model.h"
#include "model/piecewise.h"
#include "model/piecewise_perf_model.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "workload/trace_gen.h"
#include "workload/workloads.h"

namespace {

using namespace splitwise;

void
BM_EventQueueScheduleAndPop(benchmark::State& state)
{
    sim::EventQueue queue;
    std::int64_t t = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            queue.post(t + (i * 37) % 1000, [] {});
        while (!queue.empty())
            benchmark::DoNotOptimize(queue.pop());
        t += 1000;
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void
BM_AnalyticalPerfModelIteration(benchmark::State& state)
{
    const model::AnalyticalPerfModel perf(model::llama2_70b(),
                                          hw::dgxH100());
    model::IterationShape shape;
    shape.promptTokens = 1500;
    shape.promptRequests = 2;
    shape.tokenRequests = 32;
    shape.contextTokens = 32 * 1200;
    for (auto _ : state)
        benchmark::DoNotOptimize(perf.iterationTime(shape));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnalyticalPerfModelIteration);

void
BM_PiecewisePerfModelIteration(benchmark::State& state)
{
    const model::AnalyticalPerfModel reference(model::llama2_70b(),
                                               hw::dgxH100());
    const auto fitted = model::PiecewiseLinearPerfModel::fit(reference);
    model::IterationShape shape;
    shape.promptTokens = 1500;
    shape.promptRequests = 2;
    shape.tokenRequests = 32;
    shape.contextTokens = 32 * 1200;
    for (auto _ : state)
        benchmark::DoNotOptimize(fitted->iterationTime(shape));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PiecewisePerfModelIteration);

void
BM_BlockManagerChurn(benchmark::State& state)
{
    engine::BlockManager bm(1 << 20, 16);
    std::uint64_t id = 0;
    for (auto _ : state) {
        for (int i = 0; i < 32; ++i)
            bm.allocate(id + i, 1000 + i);
        for (int i = 0; i < 32; ++i)
            bm.extend(id + i, 1100 + i);
        for (int i = 0; i < 32; ++i)
            bm.release(id + i);
        id += 32;
    }
    state.SetItemsProcessed(state.iterations() * 96);
}
BENCHMARK(BM_BlockManagerChurn);

void
BM_PiecewiseLinearEval(benchmark::State& state)
{
    std::vector<double> xs;
    std::vector<double> ys;
    for (int i = 0; i <= 64; ++i) {
        xs.push_back(i * 256.0);
        ys.push_back(i * 3.0 + 1);
    }
    const model::PiecewiseLinear f(xs, ys);
    double x = 0.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(f(x));
        x += 97.0;
        if (x > 16000.0)
            x = 0.0;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PiecewiseLinearEval);

void
BM_ClusterSimulation(benchmark::State& state)
{
    const double rps = static_cast<double>(state.range(0));
    workload::TraceGenerator gen(workload::conversation(), 42);
    const auto trace = gen.generate(rps, sim::secondsToUs(10));
    for (auto _ : state) {
        core::Cluster cluster(model::llama2_70b(), core::splitwiseHH(2, 2));
        benchmark::DoNotOptimize(cluster.run(trace));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(trace.size()));
    state.counters["requests"] = static_cast<double>(trace.size());
}
BENCHMARK(BM_ClusterSimulation)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void
BM_ClusterSimulationTelemetry(benchmark::State& state)
{
    // Same run as BM_ClusterSimulation/8 with every telemetry stream
    // on; the delta against it prices full tracing plus sampling.
    workload::TraceGenerator gen(workload::conversation(), 42);
    const auto trace = gen.generate(8.0, sim::secondsToUs(10));
    core::SimConfig config;
    config.telemetry.traceEnabled = true;
    config.telemetry.sampleIntervalUs = sim::msToUs(100.0);
    for (auto _ : state) {
        core::Cluster cluster(model::llama2_70b(), core::splitwiseHH(2, 2),
                              config);
        benchmark::DoNotOptimize(cluster.run(trace));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_ClusterSimulationTelemetry)->Unit(benchmark::kMillisecond);

}  // namespace

int
main(int argc, char** argv)
{
    // The shared bench flags are accepted for CLI uniformity;
    // google-benchmark's own --benchmark_* flags pass through.
    auto parser = splitwise::bench::benchParser(
        "bench_micro",
        "google-benchmark microbenchmarks for the simulator's hot "
        "kernels");
    parser.passthroughPrefix("--benchmark_");
    parser.parse(argc, argv);

    std::vector<std::string> forwarded;
    forwarded.emplace_back(argv[0]);
    for (const auto& arg : parser.passthrough())
        forwarded.push_back(arg);
    std::vector<char*> fwd_argv;
    fwd_argv.reserve(forwarded.size());
    for (auto& arg : forwarded)
        fwd_argv.push_back(arg.data());
    int fwd_argc = static_cast<int>(fwd_argv.size());
    benchmark::Initialize(&fwd_argc, fwd_argv.data());
    if (benchmark::ReportUnrecognizedArguments(fwd_argc, fwd_argv.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
