/**
 * @file
 * Regenerates paper Fig. 7: GPU memory required as the number of
 * batched tokens grows, per phase (Insight V: the prompt phase is
 * compute-bound, the token phase memory-capacity-bound).
 */

#include <cstdio>

#include "bench/bench_common.h"
#include "model/memory_model.h"

int
main(int argc, char** argv)
{
    splitwise::bench::parseBenchArgs(argc, argv, "bench_fig07_memory",
        "Paper Fig. 7: KV memory occupancy");
    using namespace splitwise;
    using metrics::Table;

    bench::banner("Fig. 7: required memory vs tokens in batch (DGX-H100)");
    const model::MemoryModel llama(model::llama2_70b(), hw::dgxH100());
    const model::MemoryModel bloom(model::bloom_176b(), hw::dgxH100());
    const double hbm_gb = hw::dgxH100().totalHbmBytes() / 1e9;

    Table table({"tokens in batch", "Llama2-70B (GB)", "BLOOM-176B (GB)"});
    auto cell = [&](const model::MemoryModel& m, std::int64_t tokens) {
        const double gb = m.requiredGb(tokens);
        std::string s = Table::fmt(gb, 0);
        if (gb > hbm_gb)
            s += " (OOM)";
        return s;
    };
    for (std::int64_t t : {0LL, 1024LL, 4096LL, 16384LL, 32768LL, 65536LL,
                           131072LL}) {
        // Prompt phase with t batched prompt tokens and token phase
        // with t tokens of resident context need the same KV.
        table.addRow({std::to_string(t), cell(llama, t), cell(bloom, t)});
    }
    table.print();

    std::printf("\nMachine HBM: %.0f GB. KV per token: Llama %.2f MB,"
                " BLOOM %.2f MB\n",
                hbm_gb, llama.kvBytesPerToken() / 1e6,
                bloom.kvBytesPerToken() / 1e6);
    std::printf("KV capacity (92%% usable): Llama %lld tokens, BLOOM %lld"
                " tokens\n",
                static_cast<long long>(llama.kvCapacityTokens()),
                static_cast<long long>(bloom.kvCapacityTokens()));
    return 0;
}
