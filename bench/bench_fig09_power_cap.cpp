/**
 * @file
 * Regenerates paper Fig. 9: latency impact of GPU power caps on the
 * prompt and token phases (basis for Splitwise-HHcap).
 */

#include <cstdio>

#include "bench/bench_common.h"
#include "model/perf_model.h"

int
main(int argc, char** argv)
{
    splitwise::bench::parseBenchArgs(argc, argv, "bench_fig09_power_cap",
        "Paper Fig. 9: power capping effects");
    using namespace splitwise;
    using metrics::Table;

    bench::banner("Fig. 9: latency vs per-GPU power cap (H100, Llama2-70B)");
    Table table({"cap (W per GPU)", "prompt latency (ms, 1500 tok)",
                 "token latency (ms, batch 32)", "prompt slowdown",
                 "token slowdown"});

    const model::AnalyticalPerfModel uncapped(model::llama2_70b(),
                                              hw::dgxH100());
    const double base_prompt = sim::usToMs(uncapped.promptTime(1500, 1));
    const double base_token =
        sim::usToMs(uncapped.tokenTime(32, 32 * 1200));

    for (double cap_w : {700.0, 600.0, 500.0, 450.0, 400.0, 350.0, 300.0,
                         250.0}) {
        const double frac = cap_w / hw::h100().tdpWatts;
        const model::AnalyticalPerfModel capped(
            model::llama2_70b(), hw::dgxH100().withPowerCap(frac));
        const double prompt = sim::usToMs(capped.promptTime(1500, 1));
        const double token = sim::usToMs(capped.tokenTime(32, 32 * 1200));
        table.addRow({Table::fmt(cap_w, 0), Table::fmt(prompt, 1),
                      Table::fmt(token, 1),
                      Table::fmt(prompt / base_prompt, 2) + "x",
                      Table::fmt(token / base_token, 2) + "x"});
    }
    table.print();
    std::printf("\nPaper: the token phase loses almost nothing down to a"
                " 50%% cap (700 W -> 350 W);\nthe prompt phase slows"
                " substantially (Insight VI, basis of Splitwise-HHcap)\n");
    return 0;
}
