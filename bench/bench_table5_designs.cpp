/**
 * @file
 * Regenerates paper Table V: the evaluated Splitwise designs with
 * per-pool machine type, cost, power, and interconnect bandwidth,
 * normalized to DGX-A100.
 */

#include <cstdio>

#include "bench/bench_common.h"
#include "hw/interconnect.h"

int
main(int argc, char** argv)
{
    splitwise::bench::parseBenchArgs(argc, argv, "bench_table5_designs",
        "Paper Table 5: cluster design comparison");
    using namespace splitwise;
    using metrics::Table;

    bench::banner("Table V: evaluated Splitwise designs "
                  "(normalized to DGX-A100)");

    const double base_cost = hw::dgxA100().costPerHour;
    const double base_power = hw::dgxA100().provisionedPowerWatts();
    const double base_bw =
        hw::linkBetween(hw::dgxA100(), hw::dgxA100()).bandwidthGBps;

    Table table({"design", "prompt type", "prompt cost", "prompt power",
                 "token type", "token cost", "token power",
                 "interconnect bw"});
    const core::ClusterDesign designs[] = {
        core::splitwiseAA(1, 1),
        core::splitwiseHH(1, 1),
        core::splitwiseHHcap(1, 1),
        core::splitwiseHA(1, 1),
    };
    for (const auto& d : designs) {
        const auto link = hw::linkBetween(d.promptSpec, d.tokenSpec);
        table.addRow({
            d.name,
            d.promptSpec.name,
            Table::fmt(d.promptSpec.costPerHour / base_cost, 2) + "x",
            Table::fmt(d.promptSpec.provisionedPowerWatts() / base_power,
                       2) + "x",
            d.tokenSpec.name,
            Table::fmt(d.tokenSpec.costPerHour / base_cost, 2) + "x",
            Table::fmt(d.tokenSpec.provisionedPowerWatts() / base_power,
                       2) + "x",
            Table::fmt(link.bandwidthGBps / base_bw, 1) + "x",
        });
    }
    table.print();

    std::printf("\nPaper: H100 power 1.75x, HHcap token power 1.23x,"
                " H100-pair interconnect 2x\n");
    return 0;
}
