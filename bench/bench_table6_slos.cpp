/**
 * @file
 * Regenerates paper Table VI: the SLO definition (slowdown versus a
 * request running on DGX-A100 under no contention), together with
 * the reference latencies the slowdowns are measured against.
 */

#include <cstdio>

#include "bench/bench_common.h"

int
main(int argc, char** argv)
{
    splitwise::bench::parseBenchArgs(argc, argv, "bench_table6_slos",
        "Paper Table 6: SLO attainment by design");
    using namespace splitwise;
    using metrics::Table;

    bench::banner("Table VI: SLOs as slowdown vs uncontended DGX-A100");
    const core::SloSet slos;
    Table table({"metric", "P50", "P90", "P99"});
    auto row = [&](const char* name, const core::SloLimits& l) {
        table.addRow({name, Table::fmt(l.p50, 2) + "x",
                      Table::fmt(l.p90, 2) + "x",
                      Table::fmt(l.p99, 2) + "x"});
    };
    row("TTFT", slos.ttft);
    row("TBT", slos.tbt);
    row("E2E", slos.e2e);
    table.print();

    bench::banner("Reference latencies (DGX-A100, no contention)");
    const core::SloChecker checker(model::llama2_70b());
    Table ref({"request shape", "ref TTFT (ms)", "ref TBT (ms)",
               "ref E2E (ms)"});
    struct Shape {
        const char* name;
        std::int64_t prompt;
        std::int64_t output;
    } shapes[] = {
        {"coding median (1500 in, 13 out)", 1500, 13},
        {"conversation median (1020 in, 129 out)", 1020, 129},
        {"small (128 in, 8 out)", 128, 8},
        {"large (4096 in, 512 out)", 4096, 512},
    };
    for (const auto& s : shapes) {
        workload::Request spec;
        spec.promptTokens = s.prompt;
        spec.outputTokens = s.output;
        ref.addRow({s.name, Table::fmt(checker.refTtftMs(s.prompt), 1),
                    Table::fmt(checker.refTbtMs(s.prompt + s.output / 2), 1),
                    Table::fmt(checker.refE2eMs(spec), 1)});
    }
    ref.print();
    std::printf("\nAll nine SLO cells must hold for a cluster design to"
                " count as meeting SLOs (SV-B)\n");
    return 0;
}
