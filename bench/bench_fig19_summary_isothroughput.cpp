/**
 * @file
 * Regenerates paper Fig. 19: summary of iso-throughput cluster
 * designs - (a) power-optimized and (b) cost-optimized - normalized
 * to Baseline-H100, at 1/5 of the paper's scale.
 */

#include <cstdio>

#include "bench/bench_common.h"

namespace {

void
summarize(const char* title, double target_rps, bool optimize_power)
{
    using namespace splitwise;
    using metrics::Table;
    using provision::DesignKind;

    provision::ProvisionerOptions options;
    options.traceDuration = sim::secondsToUs(20);
    options.promptFractions = {0.25, 0.4, 0.5, 0.65, 0.8};
    options.jobs = bench::effectiveJobs();
    provision::Provisioner prov(model::llama2_70b(),
                                workload::conversation(), options);

    bench::banner(title);
    Table table({"design", "pools", "cost ($/hr)", "power (kW)",
                 "machines", "vs Baseline-H100"});
    double h100_objective = 0.0;
    for (DesignKind kind : provision::allDesignKinds()) {
        const provision::Optimum opt =
            optimize_power
                ? prov.isoThroughputPowerOptimized(kind, target_rps)
                : prov.isoThroughputCostOptimized(kind, target_rps);
        if (!opt.feasible) {
            table.addRow({designKindName(kind), "-", "-", "-", "-",
                          "infeasible"});
            continue;
        }
        const double objective = optimize_power
                                     ? opt.footprint.powerWatts
                                     : opt.footprint.costPerHour;
        if (kind == DesignKind::kBaselineH100)
            h100_objective = objective;
        const std::string pools =
            opt.design.splitwise
                ? std::to_string(opt.design.numPrompt) + "P+" +
                      std::to_string(opt.design.numToken) + "T"
                : std::to_string(opt.design.numPrompt) + "P/T";
        table.addRow({
            opt.design.name,
            pools,
            Table::fmt(opt.footprint.costPerHour, 0),
            Table::fmt(opt.footprint.powerWatts / 1e3, 1),
            std::to_string(opt.footprint.machines),
            h100_objective > 0
                ? Table::fmt(objective / h100_objective, 2) + "x"
                : "-",
        });
    }
    table.print();
}

}  // namespace

int
main(int argc, char** argv)
{
    splitwise::bench::parseBenchArgs(argc, argv, "bench_fig19_summary_isothroughput",
        "Paper Fig. 19: iso-throughput design summary");
    const double target_rps = 70.0;  // the paper's target throughput
    summarize("Fig. 19a: iso-throughput power-optimized (conversation, "
              "70 RPS)",
              target_rps, true);
    std::printf("Paper: Splitwise-HHcap matches Baseline-H100 throughput"
                " at 25%% lower power, same cost and space\n");

    summarize("Fig. 19b: iso-throughput cost-optimized (conversation, "
              "70 RPS)",
              target_rps, false);
    std::printf("Paper: Splitwise-AA matches Baseline-H100 throughput at"
                " 25%% lower cost\n");
    return 0;
}
