/**
 * @file
 * Regenerates paper Fig. 16: latency metrics (P50 TTFT/TBT/E2E and
 * the P90 tail TBT) across input loads for iso-power
 * throughput-optimized clusters, for the coding and conversation
 * traces, at 1/5 of the paper's scale (the paper's budget is 40
 * DGX-H100s; ours is 8).
 */

#include <cstdio>

#include "bench/bench_common.h"

namespace {

void
sweepWorkload(const char* workload_name,
              const std::vector<double>& loads_rps)
{
    using namespace splitwise;
    using metrics::Table;
    using provision::DesignKind;

    const auto& workload = workload::workloadByName(workload_name);
    const core::SloChecker checker(model::llama2_70b());

    bench::banner(std::string("Fig. 16: iso-power clusters, ") +
                  workload_name + " trace (full paper scale)");
    Table table({"design", "pools", "RPS", "TTFT p50 (ms)",
                 "TBT p50 (ms)", "TBT p90max (ms)", "E2E p50 (s)",
                 "SLO"});
    for (DesignKind kind : provision::allDesignKinds()) {
        const core::ClusterDesign design =
            bench::isoPowerDesign(kind, workload_name);
        const std::string pools =
            design.splitwise ? std::to_string(design.numPrompt) + "P+" +
                                   std::to_string(design.numToken) + "T"
                             : std::to_string(design.numPrompt) + "P/T";
        for (double rps : loads_rps) {
            const auto trace = bench::makeTrace(workload, rps, 40);
            const auto report =
                core::run(bench::cliRunOptions(
                    model::llama2_70b(), design, trace));
            const auto slo = checker.evaluate(report.requests,
                                              core::SloSet{});
            table.addRow({
                design.name,
                pools,
                Table::fmt(rps, 0),
                Table::fmt(report.requests.ttftMs().p50(), 0),
                Table::fmt(report.requests.tbtMs().p50(), 1),
                Table::fmt(report.requests.maxTbtMs().p90(), 0),
                Table::fmt(report.requests.e2eMs().p50() / 1e3, 2),
                slo.pass ? "pass" : "FAIL " + slo.violation,
            });
        }
    }
    table.print();
}

}  // namespace

int
main(int argc, char** argv)
{
    splitwise::bench::parseBenchArgs(argc, argv, "bench_fig16_isopower_latency",
        "Paper Fig. 16: iso-power latency comparison");
    // Paper loads: coding up to ~130 RPS, conversation up to ~130.
    sweepWorkload("coding", {40, 70, 100, 130});
    sweepWorkload("conversation", {40, 70, 100, 130});

    std::printf("\nPaper: baselines blow the TBT tail as load rises"
                " (mixed batching with large prompts); Splitwise-HH/HHcap"
                " hold latency; Splitwise-AA has the highest TTFT but"
                " sustains high RPS; HA bridges TTFT and throughput\n");
    return 0;
}
