/**
 * @file
 * Regenerates paper Fig. 18: summary of throughput-optimized cluster
 * designs - (a) iso-power and (b) iso-cost - searched with the
 * provisioning framework and normalized to Baseline-A100, at 1/5 of
 * the paper's budget.
 */

#include <cstdio>

#include "bench/bench_common.h"

namespace {

void
summarize(const char* title, bool iso_power)
{
    using namespace splitwise;
    using metrics::Table;
    using provision::DesignKind;

    provision::ProvisionerOptions options;
    options.traceDuration = sim::secondsToUs(20);
    options.rpsTolerance = 4.0;
    options.promptFractions = {0.25, 0.4, 0.5, 0.65, 0.8};
    options.jobs = bench::effectiveJobs();
    provision::Provisioner prov(model::llama2_70b(),
                                workload::conversation(), options);

    bench::banner(title);
    Table table({"design", "pools", "throughput (RPS)", "vs A100",
                 "cost ($/hr)", "power (kW)", "machines"});

    double a100_rps = 0.0;
    std::vector<std::vector<std::string>> rows;
    for (DesignKind kind : provision::allDesignKinds()) {
        const provision::Optimum opt =
            iso_power ? prov.isoPowerThroughputOptimized(
                            kind, bench::isoPowerBudgetWatts())
                      : prov.isoCostThroughputOptimized(
                            kind, bench::isoCostBudgetPerHour());
        if (!opt.feasible) {
            table.addRow({designKindName(kind), "-", "infeasible", "-", "-",
                          "-", "-"});
            continue;
        }
        if (kind == DesignKind::kBaselineA100)
            a100_rps = opt.maxRps;
        const std::string pools =
            opt.design.splitwise
                ? std::to_string(opt.design.numPrompt) + "P+" +
                      std::to_string(opt.design.numToken) + "T"
                : std::to_string(opt.design.numPrompt) + "P/T";
        table.addRow({
            opt.design.name,
            pools,
            Table::fmt(opt.maxRps, 1),
            Table::fmt(a100_rps > 0 ? opt.maxRps / a100_rps : 0.0, 2) + "x",
            Table::fmt(opt.footprint.costPerHour, 0),
            Table::fmt(opt.footprint.powerWatts / 1e3, 1),
            std::to_string(opt.footprint.machines),
        });
    }
    table.print();
}

}  // namespace

int
main(int argc, char** argv)
{
    splitwise::bench::parseBenchArgs(argc, argv, "bench_fig18_summary_throughput_opt",
        "Paper Fig. 18: throughput-optimized design summary");
    summarize("Fig. 18a: iso-power throughput-optimized (conversation,"
              " budget = 40x DGX-H100 power)",
              true);
    std::printf("Paper: Splitwise-AA delivers 2.15x Baseline-A100"
                " throughput at the same power and cost; Splitwise-HA"
                " 1.18x at 10%% lower cost\n");

    summarize("Fig. 18b: iso-cost throughput-optimized (conversation,"
              " budget = 40x DGX-H100 rental)",
              false);
    std::printf("Paper: Splitwise-AA gives 1.4x Baseline-H100 throughput"
                " for the same cost (at 25%% more power and 2x space)\n");
    return 0;
}
