#ifndef SPLITWISE_BENCH_BENCH_COMMON_H_
#define SPLITWISE_BENCH_BENCH_COMMON_H_

/**
 * @file
 * Shared helpers for the figure/table regeneration binaries.
 *
 * Cluster-scale benches run at the paper's full scale: the iso-power
 * budget is 40 DGX-H100 machines (70 DGX-A100s). The event-driven
 * simulator covers a 40-machine, 100+ RPS cluster trace in well
 * under a second, so every bench still finishes in seconds.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/designs.h"
#include "core/slo.h"
#include "metrics/table.h"
#include "model/llm_config.h"
#include "provision/provisioner.h"
#include "workload/trace_gen.h"
#include "workload/workloads.h"

namespace splitwise::bench {

/** Scale factor applied to the paper's cluster sizes (1 = full). */
inline constexpr int kScaleDown = 1;

/** The paper's iso-power budget (40 DGX-H100), scaled. */
inline double
isoPowerBudgetWatts()
{
    return 40.0 / kScaleDown * hw::dgxH100().provisionedPowerWatts();
}

/** The matching iso-cost budget (40 DGX-H100 rental), scaled. */
inline double
isoCostBudgetPerHour()
{
    return 40.0 / kScaleDown * hw::dgxH100().costPerHour;
}

/**
 * Iso-power throughput-optimized pool sizes per design under the
 * 40-DGX-H100 power budget.
 *
 * Coding splits land on the paper's provisioning choices (Fig. 16
 * legend: Splitwise-HH 35P/5T). Conversation splits are re-derived
 * from this reproduction's calibrated capacity model, which sizes
 * token pools larger than the paper's legend (25P/15T) because the
 * calibrated decode batches saturate the TBT SLO earlier; see
 * EXPERIMENTS.md for the divergence note.
 */
inline core::ClusterDesign
isoPowerDesign(provision::DesignKind kind, const std::string& workload)
{
    using provision::DesignKind;
    const bool coding = workload == "coding";
    switch (kind) {
      case DesignKind::kBaselineA100:
        return provision::makeDesign(kind, 70, 0);
      case DesignKind::kBaselineH100:
        return provision::makeDesign(kind, 40, 0);
      case DesignKind::kSplitwiseAA:
        return coding ? provision::makeDesign(kind, 60, 10)
                      : provision::makeDesign(kind, 35, 35);
      case DesignKind::kSplitwiseHH:
        // Paper: coding (35P, 5T).
        return coding ? provision::makeDesign(kind, 35, 5)
                      : provision::makeDesign(kind, 17, 23);
      case DesignKind::kSplitwiseHA:
        return coding ? provision::makeDesign(kind, 34, 9)
                      : provision::makeDesign(kind, 19, 36);
      case DesignKind::kSplitwiseHHcap:
        return coding ? provision::makeDesign(kind, 33, 8)
                      : provision::makeDesign(kind, 17, 29);
    }
    return provision::makeDesign(kind, 40, 0);
}

/** Deterministic workload trace for bench runs. */
inline workload::Trace
makeTrace(const workload::Workload& w, double rps, double seconds,
          std::uint64_t seed = 42)
{
    workload::TraceGenerator gen(w, seed);
    return gen.generate(rps, sim::secondsToUs(seconds));
}

/** Run a design on a trace and return the report. */
inline core::RunReport
runCluster(const model::LlmConfig& llm, const core::ClusterDesign& design,
           const workload::Trace& trace, core::SimConfig config = {})
{
    core::Cluster cluster(llm, design, config);
    return cluster.run(trace);
}

/** Print a section banner. */
inline void
banner(const std::string& title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace splitwise::bench

#endif  // SPLITWISE_BENCH_BENCH_COMMON_H_
