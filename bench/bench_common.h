#ifndef SPLITWISE_BENCH_BENCH_COMMON_H_
#define SPLITWISE_BENCH_BENCH_COMMON_H_

/**
 * @file
 * Shared helpers for the figure/table regeneration binaries.
 *
 * Cluster-scale benches run at the paper's full scale: the iso-power
 * budget is 40 DGX-H100 machines (70 DGX-A100s). The event-driven
 * simulator covers a 40-machine, 100+ RPS cluster trace in well
 * under a second, so every bench still finishes in seconds.
 *
 * Every bench accepts the shared flags (parsed by initBenchArgs,
 * applied by runCluster):
 *
 *   --trace-out=PATH        Perfetto/Chrome trace JSON per cluster
 *                           run (open in ui.perfetto.dev).
 *   --timeseries-out=PATH   Sampled cluster metrics as CSV.
 *   --sample-interval-ms=N  Sampling grid (default 1000 ms);
 *                           implies sampling when --timeseries-out
 *                           is given.
 *   --jobs=N                Concurrent simulations for multi-run
 *                           benches (default hardware_concurrency;
 *                           --jobs=1 is the exact serial path).
 *   --runs=N                Repetition count for benches that soak
 *                           over seeds (bench_chaos).
 *   --short                 Reduced-duration smoke variant for CI.
 *
 * Benches that run several clusters suffix the path with the run
 * index before the extension (trace.json, trace.1.json, ...).
 */

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/designs.h"
#include "core/slo.h"
#include "metrics/table.h"
#include "model/llm_config.h"
#include "provision/provisioner.h"
#include "sim/log.h"
#include "sim/run_pool.h"
#include "workload/trace_gen.h"
#include "workload/workloads.h"

namespace splitwise::bench {

/** Scale factor applied to the paper's cluster sizes (1 = full). */
inline constexpr int kScaleDown = 1;

/** The paper's iso-power budget (40 DGX-H100), scaled. */
inline double
isoPowerBudgetWatts()
{
    return 40.0 / kScaleDown * hw::dgxH100().provisionedPowerWatts();
}

/** The matching iso-cost budget (40 DGX-H100 rental), scaled. */
inline double
isoCostBudgetPerHour()
{
    return 40.0 / kScaleDown * hw::dgxH100().costPerHour;
}

/**
 * Iso-power throughput-optimized pool sizes per design under the
 * 40-DGX-H100 power budget.
 *
 * Coding splits land on the paper's provisioning choices (Fig. 16
 * legend: Splitwise-HH 35P/5T). Conversation splits are re-derived
 * from this reproduction's calibrated capacity model, which sizes
 * token pools larger than the paper's legend (25P/15T) because the
 * calibrated decode batches saturate the TBT SLO earlier; see
 * EXPERIMENTS.md for the divergence note.
 */
inline core::ClusterDesign
isoPowerDesign(provision::DesignKind kind, const std::string& workload)
{
    using provision::DesignKind;
    const bool coding = workload == "coding";
    switch (kind) {
      case DesignKind::kBaselineA100:
        return provision::makeDesign(kind, 70, 0);
      case DesignKind::kBaselineH100:
        return provision::makeDesign(kind, 40, 0);
      case DesignKind::kSplitwiseAA:
        return coding ? provision::makeDesign(kind, 60, 10)
                      : provision::makeDesign(kind, 35, 35);
      case DesignKind::kSplitwiseHH:
        // Paper: coding (35P, 5T).
        return coding ? provision::makeDesign(kind, 35, 5)
                      : provision::makeDesign(kind, 17, 23);
      case DesignKind::kSplitwiseHA:
        return coding ? provision::makeDesign(kind, 34, 9)
                      : provision::makeDesign(kind, 19, 36);
      case DesignKind::kSplitwiseHHcap:
        return coding ? provision::makeDesign(kind, 33, 8)
                      : provision::makeDesign(kind, 17, 29);
    }
    return provision::makeDesign(kind, 40, 0);
}

/** Deterministic workload trace for bench runs. */
inline workload::Trace
makeTrace(const workload::Workload& w, double rps, double seconds,
          std::uint64_t seed = 42)
{
    workload::TraceGenerator gen(w, seed);
    return gen.generate(rps, sim::secondsToUs(seconds));
}

/** Output/parallelism options shared by every bench binary. */
struct BenchArgs {
    /** Perfetto trace destination; empty disables tracing. */
    std::string traceOut;
    /** Time-series CSV destination; empty disables sampling. */
    std::string timeseriesOut;
    /** Sampling grid spacing. */
    sim::TimeUs sampleIntervalUs = sim::msToUs(1000.0);
    /** Worker count for multi-run benches; 0 = hardware default. */
    int jobs = 0;
    /** Repetition count for seed-soak benches. */
    int runs = 1;
    /** Reduced-duration smoke variant (`--short`). */
    bool shortRun = false;
    /**
     * Cluster runs completed so far (output-file suffixing). Atomic
     * because parallel benches finish runs concurrently; drivers
     * that need deterministic file names pass an explicit index to
     * writeTelemetryOutputs instead.
     */
    std::atomic<int> runIndex{0};

    bool any() const { return !traceOut.empty() || !timeseriesOut.empty(); }
};

/** The process-wide parsed bench arguments. */
inline BenchArgs&
benchArgs()
{
    static BenchArgs args;
    return args;
}

/**
 * Parse the shared telemetry flags (see the file comment). Both
 * --flag=value and --flag value spellings work; unrecognized
 * arguments are left for the bench's own parsing.
 */
inline void
initBenchArgs(int argc, char** argv)
{
    BenchArgs& args = benchArgs();
    auto take = [&](int& i, const char* name, std::string& out) {
        const std::size_t len = std::strlen(name);
        if (std::strncmp(argv[i], name, len) != 0)
            return false;
        if (argv[i][len] == '=') {
            out = argv[i] + len + 1;
            return true;
        }
        if (argv[i][len] == '\0' && i + 1 < argc) {
            out = argv[++i];
            return true;
        }
        return false;
    };
    for (int i = 1; i < argc; ++i) {
        std::string value;
        if (take(i, "--trace-out", args.traceOut) ||
            take(i, "--timeseries-out", args.timeseriesOut)) {
            continue;
        }
        if (take(i, "--sample-interval-ms", value)) {
            args.sampleIntervalUs = sim::msToUs(std::stod(value));
            continue;
        }
        if (take(i, "--jobs", value)) {
            args.jobs = std::stoi(value);
            continue;
        }
        if (take(i, "--runs", value)) {
            args.runs = std::stoi(value);
            continue;
        }
        if (std::strcmp(argv[i], "--short") == 0)
            args.shortRun = true;
    }
    if (args.sampleIntervalUs <= 0)
        sim::fatal("--sample-interval-ms must be positive");
    if (args.jobs < 0)
        sim::fatal("--jobs must be >= 0 (0 = hardware default)");
    if (args.runs < 1)
        sim::fatal("--runs must be >= 1");
}

/** The resolved `--jobs` value: explicit flag or hardware default. */
inline int
effectiveJobs()
{
    const BenchArgs& args = benchArgs();
    return args.jobs > 0 ? args.jobs : sim::RunPool::defaultJobs();
}

/** Turn the parsed bench flags into per-run telemetry switches. */
inline void
applyTelemetryCli(core::SimConfig& config)
{
    const BenchArgs& args = benchArgs();
    if (!args.traceOut.empty())
        config.telemetry.traceEnabled = true;
    if (!args.timeseriesOut.empty())
        config.telemetry.sampleIntervalUs = args.sampleIntervalUs;
}

/** "out.json" with run index 2 becomes "out.2.json". */
inline std::string
indexedPath(const std::string& path, int index)
{
    if (index == 0)
        return path;
    const auto slash = path.find_last_of('/');
    const auto dot = path.find_last_of('.');
    const bool has_ext =
        dot != std::string::npos &&
        (slash == std::string::npos || dot > slash);
    const std::string suffix = "." + std::to_string(index);
    if (!has_ext)
        return path + suffix;
    return path.substr(0, dot) + suffix + path.substr(dot);
}

/**
 * Write one run's telemetry files (when requested) under an explicit
 * run index. Safe to call from RunPool workers: distinct indices
 * write distinct files and nothing shared is mutated.
 */
inline void
writeTelemetryOutputs(core::Cluster& cluster, const core::RunReport& report,
                      int index)
{
    BenchArgs& args = benchArgs();
    if (!args.any())
        return;
    if (!args.traceOut.empty() && cluster.traceRecorder()) {
        const auto path = indexedPath(args.traceOut, index);
        cluster.traceRecorder()->writeFile(path);
        std::printf("wrote trace %s (%zu events)\n", path.c_str(),
                    cluster.traceRecorder()->eventCount());
    }
    if (!args.timeseriesOut.empty() && !report.timeseries.empty()) {
        const auto path = indexedPath(args.timeseriesOut, index);
        report.timeseries.writeCsv(path);
        std::printf("wrote timeseries %s (%zu rows)\n", path.c_str(),
                    report.timeseries.rows.size());
    }
}

/**
 * Write the run's telemetry files (when requested) and advance the
 * shared run index so serial multi-run benches produce one file set
 * per run.
 */
inline void
writeTelemetryOutputs(core::Cluster& cluster, const core::RunReport& report)
{
    BenchArgs& args = benchArgs();
    if (!args.any())
        return;
    writeTelemetryOutputs(cluster, report,
                          args.runIndex.fetch_add(1));
}

/** Run a design on a trace and return the report. */
inline core::RunReport
runCluster(const model::LlmConfig& llm, const core::ClusterDesign& design,
           const workload::Trace& trace, core::SimConfig config = {})
{
    applyTelemetryCli(config);
    core::Cluster cluster(llm, design, config);
    auto report = cluster.run(trace);
    writeTelemetryOutputs(cluster, report);
    return report;
}

/**
 * Run one design over several traces concurrently (`--jobs`) and
 * return the reports in trace order. Each run owns its cluster and
 * telemetry sinks; output files are suffixed with the trace index,
 * so results and artifacts are identical at every job count.
 */
inline std::vector<core::RunReport>
runClusterMany(const model::LlmConfig& llm,
               const core::ClusterDesign& design,
               const std::vector<workload::Trace>& traces,
               core::SimConfig config = {})
{
    applyTelemetryCli(config);
    sim::RunPool pool(effectiveJobs());
    return pool.map(traces, [&](const workload::Trace& trace,
                                std::size_t index) {
        core::Cluster cluster(llm, design, config);
        auto report = cluster.run(trace);
        writeTelemetryOutputs(cluster, report, static_cast<int>(index));
        return report;
    });
}

/** Print a section banner. */
inline void
banner(const std::string& title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace splitwise::bench

#endif  // SPLITWISE_BENCH_BENCH_COMMON_H_
