#ifndef SPLITWISE_BENCH_BENCH_COMMON_H_
#define SPLITWISE_BENCH_BENCH_COMMON_H_

/**
 * @file
 * Shared helpers for the figure/table regeneration binaries.
 *
 * Cluster-scale benches run at the paper's full scale: the iso-power
 * budget is 40 DGX-H100 machines (70 DGX-A100s). The event-driven
 * simulator covers a 40-machine, 100+ RPS cluster trace in well
 * under a second, so every bench still finishes in seconds.
 *
 * Every bench accepts the shared flags (registered on the typed
 * bench::ArgParser by benchParser, applied by cliRunOptions):
 *
 *   --trace-out=PATH        Perfetto/Chrome trace JSON per cluster
 *                           run (open in ui.perfetto.dev).
 *   --timeseries-out=PATH   Sampled cluster metrics as CSV.
 *   --breakdown-out=PATH    Latency-attribution JSON per cluster run
 *                           (per-phase breakdown + SLO-offender
 *                           exemplar timelines); implies span
 *                           tracking. No-op in telemetry-off builds.
 *   --exemplars=K           Worst-offender timelines retained per run
 *                           (default 3).
 *   --spans=MODE            Span tracking: auto (follow
 *                           --breakdown-out), on (track without
 *                           writing files; the perf probe's A/B
 *                           switch), or off.
 *   --sample-interval-ms=N  Sampling grid (default 1000 ms);
 *                           implies sampling when --timeseries-out
 *                           is given.
 *   --jobs=N                Concurrent simulations for multi-run
 *                           benches (default hardware_concurrency;
 *                           --jobs=1 is the exact serial path).
 *   --policy=NAME           Scheduling policy, resolved through
 *                           sched::policyRegistry() (default,
 *                           prefix); unset keeps the bench's own
 *                           choice.
 *   --runs=N                Repetition count for benches that soak
 *                           over seeds (bench_chaos).
 *   --short                 Reduced-duration smoke variant for CI.
 *
 * Benches that run several clusters suffix the path with the run
 * index before the extension (trace.json, trace.1.json, ...).
 */

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/arg_parser.h"
#include "core/cluster.h"
#include "core/designs.h"
#include "core/run.h"
#include "core/slo.h"
#include "metrics/table.h"
#include "model/llm_config.h"
#include "provision/provisioner.h"
#include "sched/policy.h"
#include "sim/log.h"
#include "sim/run_pool.h"
#include "workload/trace_gen.h"
#include "workload/workloads.h"

namespace splitwise::bench {

/** Scale factor applied to the paper's cluster sizes (1 = full). */
inline constexpr int kScaleDown = 1;

/** The paper's iso-power budget (40 DGX-H100), scaled. */
inline double
isoPowerBudgetWatts()
{
    return 40.0 / kScaleDown * hw::dgxH100().provisionedPowerWatts();
}

/** The matching iso-cost budget (40 DGX-H100 rental), scaled. */
inline double
isoCostBudgetPerHour()
{
    return 40.0 / kScaleDown * hw::dgxH100().costPerHour;
}

/**
 * Iso-power throughput-optimized pool sizes per design under the
 * 40-DGX-H100 power budget.
 *
 * Coding splits land on the paper's provisioning choices (Fig. 16
 * legend: Splitwise-HH 35P/5T). Conversation splits are re-derived
 * from this reproduction's calibrated capacity model, which sizes
 * token pools larger than the paper's legend (25P/15T) because the
 * calibrated decode batches saturate the TBT SLO earlier; see
 * EXPERIMENTS.md for the divergence note.
 */
inline core::ClusterDesign
isoPowerDesign(provision::DesignKind kind, const std::string& workload)
{
    using provision::DesignKind;
    const bool coding = workload == "coding";
    switch (kind) {
      case DesignKind::kBaselineA100:
        return provision::makeDesign(kind, 70, 0);
      case DesignKind::kBaselineH100:
        return provision::makeDesign(kind, 40, 0);
      case DesignKind::kSplitwiseAA:
        return coding ? provision::makeDesign(kind, 60, 10)
                      : provision::makeDesign(kind, 35, 35);
      case DesignKind::kSplitwiseHH:
        // Paper: coding (35P, 5T).
        return coding ? provision::makeDesign(kind, 35, 5)
                      : provision::makeDesign(kind, 17, 23);
      case DesignKind::kSplitwiseHA:
        return coding ? provision::makeDesign(kind, 34, 9)
                      : provision::makeDesign(kind, 19, 36);
      case DesignKind::kSplitwiseHHcap:
        return coding ? provision::makeDesign(kind, 33, 8)
                      : provision::makeDesign(kind, 17, 29);
    }
    return provision::makeDesign(kind, 40, 0);
}

/** Deterministic workload trace for bench runs. */
inline workload::Trace
makeTrace(const workload::Workload& w, double rps, double seconds,
          std::uint64_t seed = 42)
{
    workload::TraceGenerator gen(w, seed);
    return gen.generate(rps, sim::secondsToUs(seconds));
}

/** Output/parallelism options shared by every bench binary. */
struct BenchArgs {
    /** Perfetto trace destination; empty disables tracing. */
    std::string traceOut;
    /** Time-series CSV destination; empty disables sampling. */
    std::string timeseriesOut;
    /** Attribution JSON destination; empty disables span tracking. */
    std::string breakdownOut;
    /**
     * Span tracking override (`--spans`): "auto" follows
     * --breakdown-out, "on" tracks without writing attribution files
     * (how the perf probe prices tracing), "off" forces it off.
     */
    std::string spans = "auto";
    /** SLO-offender exemplar timelines retained (`--exemplars`). */
    int exemplars = 3;
    /** Sampling grid spacing as parsed (`--sample-interval-ms`). */
    double sampleIntervalMs = 1000.0;
    /** Sampling grid spacing (derived from sampleIntervalMs). */
    sim::TimeUs sampleIntervalUs = sim::msToUs(1000.0);
    /** Worker count for multi-run benches; 0 = hardware default. */
    int jobs = 0;
    /** Repetition count for seed-soak benches. */
    int runs = 1;
    /**
     * Scheduling-policy name (`--policy`), resolved through
     * sched::policyRegistry(); empty keeps the bench's own
     * SimConfig::policy untouched.
     */
    std::string policy;
    /** Reduced-duration smoke variant (`--short`). */
    bool shortRun = false;
    /**
     * Cluster runs completed so far (output-file suffixing). Atomic
     * because parallel benches finish runs concurrently; drivers
     * that need deterministic file names pass an explicit index to
     * writeTelemetryOutputs instead.
     */
    std::atomic<int> runIndex{0};

    bool any() const
    {
        return !traceOut.empty() || !timeseriesOut.empty() ||
               !breakdownOut.empty();
    }
};

/** The process-wide parsed bench arguments. */
inline BenchArgs&
benchArgs()
{
    static BenchArgs args;
    return args;
}

/**
 * Build the bench's ArgParser with the shared flags pre-registered
 * (see the file comment). The bench adds its own flags, then calls
 * parse(argc, argv); `--help` and unknown-flag handling come for
 * free.
 */
inline ArgParser
benchParser(const std::string& program, const std::string& summary)
{
    ArgParser parser(program, summary);
    BenchArgs& args = benchArgs();
    parser.addString("--trace-out", &args.traceOut,
                     "write a Perfetto/Chrome trace JSON per cluster run");
    parser.addString("--timeseries-out", &args.timeseriesOut,
                     "write sampled cluster metrics as CSV");
    parser.addString("--breakdown-out", &args.breakdownOut,
                     "write latency-attribution JSON per cluster run");
    parser.addInt("--exemplars", &args.exemplars,
                  "SLO-offender exemplar timelines retained per run");
    parser.addString("--spans", &args.spans,
                     "span tracking: auto (follow --breakdown-out), "
                     "on, or off");
    parser.addDouble("--sample-interval-ms", &args.sampleIntervalMs,
                     "time-series sampling grid in milliseconds");
    parser.addInt("--jobs", &args.jobs,
                  "concurrent simulations (0 = hardware default; "
                  "1 = exact serial path)");
    parser.addInt("--runs", &args.runs,
                  "repetition count for seed-soak benches");
    parser.addString("--policy", &args.policy,
                     "scheduling policy (" + sched::policyNames() +
                         "; default: the bench's own)");
    parser.addFlag("--short", &args.shortRun,
                   "reduced-duration smoke variant for CI");
    parser.addValidator([&args] {
        if (args.sampleIntervalMs <= 0)
            sim::fatal("--sample-interval-ms must be positive");
        args.sampleIntervalUs = sim::msToUs(args.sampleIntervalMs);
        if (args.jobs < 0)
            sim::fatal("--jobs must be >= 0 (0 = hardware default)");
        if (args.runs < 1)
            sim::fatal("--runs must be >= 1");
        if (args.exemplars < 0)
            sim::fatal("--exemplars must be >= 0");
        if (args.spans != "auto" && args.spans != "on" &&
            args.spans != "off")
            sim::fatal("--spans must be auto, on, or off");
        if (args.spans == "off" && !args.breakdownOut.empty())
            sim::fatal("--spans=off contradicts --breakdown-out");
        if (!args.policy.empty() && !sched::findPolicy(args.policy))
            sim::fatal("--policy: unknown policy '" + args.policy +
                       "' (known: " + sched::policyNames() + ")");
    });
    return parser;
}

/**
 * Parse a bench command line that has no bench-specific flags: the
 * one-liner for the majority of figure/table binaries.
 */
inline void
parseBenchArgs(int argc, char** argv, const std::string& program,
               const std::string& summary)
{
    benchParser(program, summary).parse(argc, argv);
}

/** The resolved `--jobs` value: explicit flag or hardware default. */
inline int
effectiveJobs()
{
    const BenchArgs& args = benchArgs();
    return args.jobs > 0 ? args.jobs : sim::RunPool::defaultJobs();
}

/**
 * Apply an explicit `--policy` selection to @p config; without the
 * flag the bench's own policy choice stands.
 */
inline void
applyPolicyCli(core::SimConfig& config)
{
    const BenchArgs& args = benchArgs();
    if (args.policy.empty())
        return;
    const sched::PolicyFactory* factory = sched::findPolicy(args.policy);
    if (!factory)
        sim::fatal("--policy: unknown policy '" + args.policy + "'");
    config.policy.kind = factory->kind;
}

/** Turn the parsed bench flags into per-run telemetry switches. */
inline void
applyTelemetryCli(core::SimConfig& config)
{
    const BenchArgs& args = benchArgs();
    if (!args.traceOut.empty())
        config.telemetry.traceEnabled = true;
    if (!args.timeseriesOut.empty())
        config.telemetry.sampleIntervalUs = args.sampleIntervalUs;
    if (!args.breakdownOut.empty() || args.spans == "on")
        config.telemetry.spanTracking = true;
    if (args.spans == "off")
        config.telemetry.spanTracking = false;
    config.telemetry.exemplarK = args.exemplars;
}

/**
 * The parsed bench CLI as core run inputs: telemetry sinks (suffixed
 * with @p index for multi-run benches) plus the sampling grid applied
 * to @p sim.
 */
inline core::RunSinks
cliRunSinks(core::SimConfig& sim, int index = 0)
{
    const BenchArgs& args = benchArgs();
    core::RunSinks sinks;
    if (!args.traceOut.empty())
        sinks.tracePath = core::indexedSinkPath(args.traceOut, index);
    if (!args.timeseriesOut.empty()) {
        sinks.timeseriesPath =
            core::indexedSinkPath(args.timeseriesOut, index);
        sim.telemetry.sampleIntervalUs = args.sampleIntervalUs;
    }
    if (!args.breakdownOut.empty())
        sinks.breakdownPath = core::indexedSinkPath(args.breakdownOut, index);
    sim.telemetry.exemplarK = args.exemplars;
    return sinks;
}

/**
 * Write one run's telemetry files (when requested) under an explicit
 * run index. Safe to call from RunPool workers: distinct indices
 * write distinct files and nothing shared is mutated.
 */
inline void
writeTelemetryOutputs(core::Cluster& cluster, const core::RunReport& report,
                      int index)
{
    BenchArgs& args = benchArgs();
    if (!args.any())
        return;
    if (!args.traceOut.empty() && cluster.traceRecorder()) {
        const auto path = core::indexedSinkPath(args.traceOut, index);
        cluster.traceRecorder()->writeFile(path);
        std::printf("wrote trace %s (%zu events)\n", path.c_str(),
                    cluster.traceRecorder()->eventCount());
    }
    if (!args.timeseriesOut.empty() && !report.timeseries.empty()) {
        const auto path = core::indexedSinkPath(args.timeseriesOut, index);
        report.timeseries.writeCsv(path);
        std::printf("wrote timeseries %s (%zu rows)\n", path.c_str(),
                    report.timeseries.rows.size());
    }
    if (!args.breakdownOut.empty() && cluster.spanTracker()) {
        const auto path = core::indexedSinkPath(args.breakdownOut, index);
        const std::string json = cluster.spanTracker()->attributionJson();
        std::FILE* file = std::fopen(path.c_str(), "w");
        if (!file)
            sim::fatal("cannot write breakdown file " + path);
        std::fwrite(json.data(), 1, json.size(), file);
        std::fclose(file);
        std::printf("wrote breakdown %s (%zu requests)\n", path.c_str(),
                    cluster.spanTracker()->completedCount());
    }
}

/**
 * Write the run's telemetry files (when requested) and advance the
 * shared run index so serial multi-run benches produce one file set
 * per run.
 */
inline void
writeTelemetryOutputs(core::Cluster& cluster, const core::RunReport& report)
{
    BenchArgs& args = benchArgs();
    if (!args.any())
        return;
    writeTelemetryOutputs(cluster, report,
                          args.runIndex.fetch_add(1));
}

/**
 * The parsed bench CLI as a complete core::RunOptions for one trace:
 * policy selection, telemetry sinks (advancing the shared run index
 * so serial multi-run benches get one file set per run), and the
 * sampling grid. Benches call `core::run(cliRunOptions(...))`.
 */
inline core::RunOptions
cliRunOptions(const model::LlmConfig& llm, const core::ClusterDesign& design,
              const workload::Trace& trace, core::SimConfig config = {})
{
    BenchArgs& args = benchArgs();
    core::RunOptions options;
    options.llm = llm;
    options.design = design;
    options.traces = {trace};
    options.sim = config;
    applyPolicyCli(options.sim);
    const int index = args.any() ? args.runIndex.fetch_add(1) : 0;
    options.sinks = cliRunSinks(options.sim, index);
    return options;
}

/** Print a section banner. */
inline void
banner(const std::string& title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace splitwise::bench

#endif  // SPLITWISE_BENCH_BENCH_COMMON_H_
