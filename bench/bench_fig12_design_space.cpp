/**
 * @file
 * Regenerates paper Fig. 12: the two-dimensional provisioning design
 * space for a Splitwise-HH cluster serving the coding workload at a
 * target peak throughput, marking SLO-feasible cells and the
 * cost-optimal configuration.
 *
 * The sweep fans out across `--jobs N` workers (default
 * hardware_concurrency); `--jobs 1` is the exact serial path and
 * produces byte-identical results. `--report-out=PATH` dumps every
 * cell's reportToJson as a JSON array - the artifact the CI
 * determinism gate byte-compares between job counts.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "bench/bench_common.h"

int
main(int argc, char** argv)
{
    using namespace splitwise;
    using provision::DesignKind;

    std::string report_out;
    auto parser = bench::benchParser(
        "bench_fig12_design_space",
        "Paper Fig. 12: Splitwise-HH provisioning design-space sweep "
        "with SLO-feasible and cost-optimal marking");
    parser.addString("--report-out", &report_out,
                     "dump every cell's report as a JSON array (the CI "
                     "determinism-gate artifact)");
    parser.parse(argc, argv);

    const double target_rps = 70.0;  // the paper's target peak load
    provision::ProvisionerOptions options;
    options.traceDuration = sim::secondsToUs(25);
    options.jobs = bench::effectiveJobs();
    options.captureReports = !report_out.empty();
    provision::Provisioner prov(model::llama2_70b(), workload::coding(),
                                options);

    const std::vector<int> prompt_counts = {7, 8, 9, 10, 11, 13, 17, 21, 27};
    const std::vector<int> token_counts = {1, 2, 3, 4, 6};

    bench::banner("Fig. 12: Splitwise-HH design space, coding @ " +
                  std::to_string(static_cast<int>(target_rps)) + " RPS");
    const auto t0 = std::chrono::steady_clock::now();
    const auto cells = prov.sweep(DesignKind::kSplitwiseHH, prompt_counts,
                                  token_counts, target_rps);
    const double sweep_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    // Grid view: rows = prompt machines, columns = token machines.
    std::printf("rows: prompt machines; cols: token machines;"
                " cell: meets all SLOs ('+'), not ('.'), error ('E')\n\n"
                "      ");
    for (int nt : token_counts)
        std::printf("%4dT", nt);
    std::printf("\n");
    const provision::SweepCell* best = nullptr;
    for (int np : prompt_counts) {
        std::printf("%4dP ", np);
        for (int nt : token_counts) {
            const provision::SweepCell* cell = nullptr;
            for (const auto& c : cells) {
                if (c.numPrompt == np && c.numToken == nt)
                    cell = &c;
            }
            std::printf("%4s ", cell->error ? "E"
                                            : (cell->pass ? "+" : "."));
            if (cell->pass && (!best || cell->costPerHour < best->costPerHour))
                best = cell;
        }
        std::printf("\n");
    }

    if (best) {
        std::printf("\nCost-optimal (*): %dP, %dT at $%.0f/hr\n",
                    best->numPrompt, best->numToken, best->costPerHour);
    } else {
        std::printf("\nNo feasible cell in the probed grid\n");
    }
    std::printf("Paper: the iso-throughput cost-optimal Splitwise-HH for"
                " coding at 70 RPS is 27 prompt + 3 token machines\n");
    std::printf("sweep wall-clock: %.3f s (%zu cells, jobs=%d)\n", sweep_s,
                cells.size(), options.jobs);

    if (!report_out.empty()) {
        std::ofstream out(report_out);
        if (!out)
            sim::fatal("cannot open " + report_out);
        out << "[\n";
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (cells[i].error)
                out << "{\"error\": true}";
            else
                out << cells[i].reportJson;
            out << (i + 1 < cells.size() ? ",\n" : "\n");
        }
        out << "]\n";
        std::printf("wrote per-cell reports to %s\n", report_out.c_str());
    }
    return 0;
}
