/**
 * @file
 * Regenerates paper Fig. 12: the two-dimensional provisioning design
 * space for a Splitwise-HH cluster serving the coding workload at a
 * target peak throughput, marking SLO-feasible cells and the
 * cost-optimal configuration.
 *
 * The paper targets 70 RPS with up to ~30 machines; we run the same
 * search at 1/5 scale (14 RPS) so the bench completes in seconds.
 */

#include <cstdio>

#include "bench/bench_common.h"

int
main(int argc, char** argv)
{
    splitwise::bench::initBenchArgs(argc, argv);
    using namespace splitwise;
    using provision::DesignKind;

    const double target_rps = 70.0;  // the paper's target peak load
    provision::ProvisionerOptions options;
    options.traceDuration = sim::secondsToUs(25);
    provision::Provisioner prov(model::llama2_70b(), workload::coding(),
                                options);

    const std::vector<int> prompt_counts = {7, 8, 9, 10, 11, 13, 17, 21, 27};
    const std::vector<int> token_counts = {1, 2, 3, 4, 6};

    bench::banner("Fig. 12: Splitwise-HH design space, coding @ " +
                  std::to_string(static_cast<int>(target_rps)) + " RPS");
    const auto cells = prov.sweep(DesignKind::kSplitwiseHH, prompt_counts,
                                  token_counts, target_rps);

    // Grid view: rows = prompt machines, columns = token machines.
    std::printf("rows: prompt machines; cols: token machines;"
                " cell: meets all SLOs ('+') or not ('.')\n\n      ");
    for (int nt : token_counts)
        std::printf("%4dT", nt);
    std::printf("\n");
    const provision::SweepCell* best = nullptr;
    for (int np : prompt_counts) {
        std::printf("%4dP ", np);
        for (int nt : token_counts) {
            const provision::SweepCell* cell = nullptr;
            for (const auto& c : cells) {
                if (c.numPrompt == np && c.numToken == nt)
                    cell = &c;
            }
            std::printf("%4s ", cell->pass ? "+" : ".");
            if (cell->pass && (!best || cell->costPerHour < best->costPerHour))
                best = cell;
        }
        std::printf("\n");
    }

    if (best) {
        std::printf("\nCost-optimal (*): %dP, %dT at $%.0f/hr\n",
                    best->numPrompt, best->numToken, best->costPerHour);
    } else {
        std::printf("\nNo feasible cell in the probed grid\n");
    }
    std::printf("Paper: the iso-throughput cost-optimal Splitwise-HH for"
                " coding at 70 RPS is 27 prompt + 3 token machines\n");
    return 0;
}
