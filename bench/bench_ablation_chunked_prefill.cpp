/**
 * @file
 * Ablation beyond the paper: Sarathi-style chunked prefill [23] on
 * the mixed-batching baseline.
 *
 * The paper's mixed continuous batching runs whole prompts alongside
 * decodes, so co-scheduled token phases stall for the full prompt
 * runtime (Fig. 2c). Chunked prefill bounds that stall by slicing
 * prompts, trading prompt throughput and TTFT for a far smaller TBT
 * tail - the direction later systems (Sarathi-Serve, vLLM chunked
 * prefill) took. This bench quantifies that trade against Splitwise's
 * answer (separate pools) on the conversation trace.
 */

#include <cstdio>

#include "bench/bench_common.h"

int
main(int argc, char** argv)
{
    splitwise::bench::parseBenchArgs(argc, argv, "bench_ablation_chunked_prefill",
        "Ablation: chunked-prefill budget vs TTFT/TBT trade-off");
    using namespace splitwise;
    using metrics::Table;

    const double rps = 100.0;
    const auto trace = bench::makeTrace(workload::conversation(), rps, 30);
    const core::SloChecker checker(model::llama2_70b());

    bench::banner("Ablation: chunked prefill vs phase splitting "
                  "(conversation @ 100 RPS)");
    Table table({"configuration", "TTFT p50 (ms)", "TTFT p90 (ms)",
                 "TBT p50 (ms)", "TBT max p90 (ms)", "SLO"});

    auto run_row = [&](const char* name, const core::ClusterDesign& design,
                       std::int64_t chunk) {
        core::SimConfig config;
        config.mls.promptChunkTokens = chunk;
        core::Cluster cluster(model::llama2_70b(), design, config);
        const auto report = cluster.run(trace);
        const auto slo = checker.evaluate(report.requests, core::SloSet{});
        table.addRow({
            name,
            Table::fmt(report.requests.ttftMs().p50(), 0),
            Table::fmt(report.requests.ttftMs().p90(), 0),
            Table::fmt(report.requests.tbtMs().p50(), 1),
            Table::fmt(report.requests.maxTbtMs().p90(), 0),
            slo.pass ? "pass" : "FAIL " + slo.violation,
        });
    };

    run_row("Baseline-H100, whole prompts (paper)", core::baselineH100(40),
            0);
    run_row("Baseline-H100, 2048-token chunks", core::baselineH100(40),
            2048);
    run_row("Baseline-H100, 512-token chunks", core::baselineH100(40), 512);
    run_row("Baseline-H100, 256-token chunks", core::baselineH100(40), 256);
    run_row("Splitwise-HH 17P+23T (phase split)",
            core::splitwiseHH(17, 23), 0);
    table.print();

    std::printf("\nTakeaway: chunking shrinks the baseline's TBT tail"
                " (the max-gap column) at the price of TTFT; phase"
                " splitting removes the interference entirely without"
                " the TTFT penalty.\n");
    return 0;
}
