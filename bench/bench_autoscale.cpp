/**
 * @file
 * Online autoscaling under time-varying traffic (ISSUE 6): a
 * Splitwise-HH cluster serving a compressed diurnal day and a
 * flash-crowd spike, provisioned three ways -
 *
 *   auto    full fleet + the Autoscaler control plane (parks idle
 *           machines, unparks/flexes under surge, browns out and
 *           power-caps as last resorts)
 *   peak    the full fleet statically routed all day
 *   trough  a fleet sized for the overnight valley, static
 *
 * plus a `storm` run that composes the flash crowd with a seeded
 * fault storm and arms the DST invariant checker, so controller
 * actions race failures under the full invariant catalog.
 *
 * The binary is its own acceptance gate and exits non-zero unless
 *   - diurnal: auto beats peak on paid machine-hours without giving
 *     up SLO attainment (graceful degradation is not free capacity);
 *   - flash:   auto beats trough on SLO attainment (an undersized
 *     static fleet cannot absorb the spike);
 *   - storm:   every request is accounted for and no invariant trips.
 *
 *   bench_autoscale [--jobs=N] [--short] [--report-out=PATH]
 *
 * `--report-out` writes every run's full report JSON; CI diffs the
 * file across `--jobs 1` and `--jobs 8` as a determinism gate.
 */

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "control/autoscaler.h"
#include "core/fault_plan.h"
#include "core/report_io.h"
#include "testing/invariants.h"
#include "workload/rate_curve.h"

namespace {

using namespace splitwise;

enum class Provisioning { kAuto, kPeak, kTrough };

struct AutoscaleRun {
    std::string name;
    /** Arrival-rate shape over the compressed day. */
    workload::RateCurve curve;
    Provisioning provisioning = Provisioning::kAuto;
    bool storm = false;
};

struct AutoscaleResult {
    core::RunReport report;
    std::vector<std::string> row;
    double machineHours = 0.0;
    double attainment = 0.0;
    bool accounted = true;
    bool violated = false;
    std::string violation;
    std::string reportJson;
};

/** Paid machine-time, hours: identical formula for all variants so
 *  the auto-vs-static comparison is apples to apples. */
double
paidMachineHours(const core::RunReport& report)
{
    return sim::usToSeconds(report.promptPool.poweredUs +
                            report.tokenPool.poweredUs) /
           3600.0;
}

/** Controller tuning for the compressed bench day: cadence and
 *  cooldowns shrink with the day so the controller gets the same
 *  number of decisions a real day would offer. */
control::AutoscalerConfig
benchControllerConfig()
{
    control::AutoscalerConfig cfg;
    cfg.tickIntervalUs = sim::msToUs(250.0);
    cfg.slidingWindowUs = sim::secondsToUs(3.0);
    cfg.provisioningLeadUs = sim::secondsToUs(1.0);
    cfg.scaleCooldownUs = sim::msToUs(2500.0);
    cfg.brownoutCooldownUs = sim::msToUs(2500.0);
    // Act early on the diurnal ramp: the lead time plus one cooldown
    // per machine is all the slack the rising edge offers.
    cfg.ttftScaleUpSlowdown = 2.5;
    cfg.tbtScaleUpSlowdown = 2.0;
    cfg.queuedTokensHighPerMachine = 3000;
    cfg.queuedTokensLowPerMachine = 300;
    cfg.kvLowUtilization = 0.20;
    // The ladder is a last resort for the flash/storm runs; plain
    // diurnal load must never brown out.
    cfg.brownoutQueuedTokensPerMachine = 25000;
    cfg.brownoutTtftSlowdown = 12.0;
    // Keep the overnight floor at the trough fleet's size, so the
    // saved machine-hours come from the shoulders, not from serving
    // the valley on a single pair.
    cfg.minPromptMachines = 2;
    cfg.minTokenMachines = 2;
    return cfg;
}

}  // namespace

int
main(int argc, char** argv)
{
    using metrics::Table;

    auto parser = bench::benchParser(
        "bench_autoscale",
        "SLO-driven online autoscaling: diurnal + flash-crowd traffic "
        "under auto / static-peak / static-trough provisioning, plus a "
        "fault-storm soak with the DST invariant catalog armed");
    std::string report_out;
    parser.addString("--report-out", &report_out,
                     "write every run's full report JSON (determinism "
                     "gate diffs this across --jobs values)");
    parser.parse(argc, argv);
    const bench::BenchArgs& args = bench::benchArgs();

    // One compressed "day". The peak fleet is sized to hold the
    // diurnal crest with margin; the trough fleet to hold the valley.
    const double day_s = args.shortRun ? 40.0 : 120.0;
    const double trough_rps = 3.0;
    const double peak_rps = 14.0;
    const core::ClusterDesign peak_design = core::splitwiseHH(6, 6);
    const core::ClusterDesign trough_design = core::splitwiseHH(2, 2);

    const auto diurnal = workload::RateCurve::diurnal(
        trough_rps, peak_rps, sim::secondsToUs(day_s));
    auto flash = workload::RateCurve::diurnal(trough_rps, peak_rps,
                                              sim::secondsToUs(day_s));
    // Flash crowd: 2.5x multiplier for ~8% of the day, landing on the
    // rising edge where the controller has the least slack.
    flash.addSpike(sim::secondsToUs(0.35 * day_s),
                   sim::secondsToUs(0.08 * day_s), 2.5);

    std::vector<AutoscaleRun> runs = {
        {"diurnal/auto", diurnal, Provisioning::kAuto, false},
        {"diurnal/peak", diurnal, Provisioning::kPeak, false},
        {"diurnal/trough", diurnal, Provisioning::kTrough, false},
        {"flash/auto", flash, Provisioning::kAuto, false},
        {"flash/peak", flash, Provisioning::kPeak, false},
        {"flash/trough", flash, Provisioning::kTrough, false},
        {"storm/auto", flash, Provisioning::kAuto, true},
    };

    bench::banner(
        "Autoscale: Splitwise-HH, conversation, diurnal " +
        Table::fmt(trough_rps, 0) + "-" + Table::fmt(peak_rps, 0) +
        " RPS over a " + Table::fmt(day_s, 0) + "s day (auto fleet 6P+6T, "
        "trough fleet 2P+2T)");

    const core::SloChecker checker(model::llama2_70b());
    core::SimConfig base_config;
    // Generous shed bound: admission control belongs to the brownout
    // ladder in this bench, not the static queue bound.
    base_config.cls.shedQueuedTokensBound = 500000;
    bench::applyTelemetryCli(base_config);

    sim::RunPool pool(bench::effectiveJobs());
    const std::vector<AutoscaleResult> results = pool.map(
        runs, [&](const AutoscaleRun& run, std::size_t index) {
            AutoscaleResult res;
            const core::ClusterDesign& design =
                run.provisioning == Provisioning::kTrough ? trough_design
                                                          : peak_design;
            workload::TraceGenerator gen(workload::conversation(), 42);
            const workload::Trace trace =
                gen.generate(run.curve, sim::secondsToUs(day_s));

            core::Cluster cluster(model::llama2_70b(), design,
                                  base_config);
            std::unique_ptr<core::FaultInjector> injector;
            if (run.storm) {
                core::FaultStormConfig storm;
                storm.numMachines = design.machines();
                storm.horizonUs = sim::secondsToUs(0.8 * day_s);
                storm.crashes = 2;
                storm.slowdowns = 2;
                storm.linkFaults = 2;
                storm.linkDegrades = 1;
                injector = std::make_unique<core::FaultInjector>(cluster);
                injector->apply(core::makeFaultStorm(storm, 2024));
            }
            std::unique_ptr<control::Autoscaler> autoscaler;
            if (run.provisioning == Provisioning::kAuto) {
                autoscaler = std::make_unique<control::Autoscaler>(
                    cluster, benchControllerConfig());
            }
            // The storm run doubles as a DST soak: the full invariant
            // catalog plus the control-plane checks, every quiescent
            // point.
            std::unique_ptr<testing::InvariantChecker> invariants;
            if (run.storm) {
                invariants =
                    std::make_unique<testing::InvariantChecker>(cluster);
                if (autoscaler)
                    invariants->attachController(autoscaler.get());
            }

            try {
                res.report = cluster.run(trace);
                if (autoscaler)
                    autoscaler->fillReport(res.report);
                if (invariants)
                    invariants->finalCheck(res.report);
            } catch (const testing::InvariantViolation& v) {
                res.violated = true;
                res.violation = v.invariant() + " @ " +
                                Table::fmt(sim::usToSeconds(v.at()), 2) +
                                "s: " + v.detail();
                return res;
            }

            res.machineHours = paidMachineHours(res.report);
            res.attainment = core::sloAttainment(
                checker, res.report.requests, trace.size());
            res.accounted = res.report.requests.completed() +
                                res.report.rejected ==
                            trace.size();
            res.reportJson = core::reportToJson(res.report);

            const auto& ctl = res.report.control;
            res.row = {
                run.name,
                std::to_string(design.numPrompt) + "P+" +
                    std::to_string(design.numToken) + "T",
                Table::fmt(res.machineHours, 3),
                Table::fmt(res.report.promptPool.costDollars +
                               res.report.tokenPool.costDollars, 2),
                Table::fmt(res.report.promptPool.energyWh +
                               res.report.promptPool.idleEnergyWh +
                               res.report.tokenPool.energyWh +
                               res.report.tokenPool.idleEnergyWh, 0),
                Table::fmt(100.0 * res.attainment, 1),
                Table::fmt(res.report.requests.ttftMs().p99(), 0),
                std::to_string(res.report.requests.completed()),
                std::to_string(res.report.rejected),
                ctl.enabled ? std::to_string(ctl.scaleUps) + "/" +
                                  std::to_string(ctl.scaleDowns) + "/" +
                                  std::to_string(ctl.roleFlexes) + "/" +
                                  std::to_string(ctl.brownoutTransitions)
                            : "-",
            };
            bench::writeTelemetryOutputs(cluster, res.report,
                                         static_cast<int>(index));
            return res;
        });

    Table table({"run", "fleet", "machine-h", "cost ($)", "energy (Wh)",
                 "SLO att (%)", "TTFT p99 (ms)", "completed", "shed",
                 "up/down/flex/brownout"});
    for (const AutoscaleResult& res : results) {
        if (res.violated) {
            std::printf("INVARIANT VIOLATION: %s\n", res.violation.c_str());
            continue;
        }
        table.addRow(res.row);
    }
    table.print();

    if (!report_out.empty()) {
        std::ofstream out(report_out);
        if (!out)
            sim::fatal("bench_autoscale: cannot open " + report_out);
        for (std::size_t i = 0; i < results.size(); ++i) {
            out << runs[i].name << '\n'
                << results[i].reportJson << '\n';
        }
        std::printf("wrote reports %s\n", report_out.c_str());
    }

    // --- Acceptance gates -------------------------------------------
    const AutoscaleResult& diurnal_auto = results[0];
    const AutoscaleResult& diurnal_peak = results[1];
    const AutoscaleResult& flash_auto = results[3];
    const AutoscaleResult& flash_trough = results[5];
    const AutoscaleResult& storm_auto = results[6];
    /** Attainment the controller may trade for the machine-hour win
     *  before the diurnal gate calls it a regression. */
    const double attainment_slack = 0.02;

    bool ok = true;
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].violated) {
            std::printf("FAIL: %s tripped an invariant\n",
                        runs[i].name.c_str());
            ok = false;
        } else if (!results[i].accounted) {
            std::printf("FAIL: %s lost requests (completed + shed != "
                        "submitted)\n", runs[i].name.c_str());
            ok = false;
        }
    }
    if (ok) {
        if (diurnal_auto.machineHours >= diurnal_peak.machineHours) {
            std::printf("FAIL: diurnal auto machine-hours (%.3f) not "
                        "below static peak (%.3f)\n",
                        diurnal_auto.machineHours,
                        diurnal_peak.machineHours);
            ok = false;
        }
        if (diurnal_auto.attainment <
            diurnal_peak.attainment - attainment_slack) {
            std::printf("FAIL: diurnal auto SLO attainment (%.3f) gave "
                        "up more than %.0f%% vs static peak (%.3f)\n",
                        diurnal_auto.attainment, 100.0 * attainment_slack,
                        diurnal_peak.attainment);
            ok = false;
        }
        if (flash_auto.attainment <= flash_trough.attainment) {
            std::printf("FAIL: flash auto SLO attainment (%.3f) not "
                        "above static trough (%.3f)\n",
                        flash_auto.attainment, flash_trough.attainment);
            ok = false;
        }
        if (!storm_auto.report.control.enabled ||
            storm_auto.report.control.ticks == 0) {
            std::printf("FAIL: storm run reported no controller "
                        "activity\n");
            ok = false;
        }
    }
    if (ok) {
        std::printf(
            "\nauto saved %.1f%% machine-hours vs static peak over the "
            "diurnal day at %.1f%% attainment (peak %.1f%%); under the "
            "flash crowd auto held %.1f%% attainment vs %.1f%% for the "
            "trough fleet; storm soak ran %llu controller ticks clean.\n",
            100.0 * (1.0 - diurnal_auto.machineHours /
                               diurnal_peak.machineHours),
            100.0 * diurnal_auto.attainment,
            100.0 * diurnal_peak.attainment,
            100.0 * flash_auto.attainment,
            100.0 * flash_trough.attainment,
            static_cast<unsigned long long>(
                storm_auto.report.control.ticks));
        return 0;
    }
    return 1;
}
