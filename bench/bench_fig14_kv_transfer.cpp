/**
 * @file
 * Regenerates paper Fig. 14: visible KV-cache transfer latency as
 * the prompt size grows, serialized vs. layer-wise optimized, on
 * A100 and H100 InfiniBand setups — plus the threshold ablation
 * behind the 512-token switch (SIV-C).
 */

#include <cstdio>

#include "bench/bench_common.h"
#include "hw/interconnect.h"
#include "model/perf_model.h"
#include "model/transfer_model.h"

int
main(int argc, char** argv)
{
    splitwise::bench::parseBenchArgs(argc, argv, "bench_fig14_kv_transfer",
        "Paper Fig. 14: KV-transfer latency overhead");
    using namespace splitwise;
    using metrics::Table;

    const model::LlmConfig llm = model::llama2_70b();
    const model::TransferModel aa(
        llm, hw::linkBetween(hw::dgxA100(), hw::dgxA100()));
    const model::TransferModel hh(
        llm, hw::linkBetween(hw::dgxH100(), hw::dgxH100()));
    const model::AnalyticalPerfModel perf_a(llm, hw::dgxA100());
    const model::AnalyticalPerfModel perf_h(llm, hw::dgxH100());

    bench::banner("Fig. 14: visible KV-cache transfer latency (ms), "
                  "Llama2-70B");
    Table table({"prompt tokens", "A100 serialized", "A100 layer-wise",
                 "H100 serialized", "H100 layer-wise",
                 "% of H100 prompt time (layer-wise)"});
    for (std::int64_t p : {128, 256, 512, 1024, 1536, 2048, 3072, 4096,
                           6144, 8192}) {
        const auto compute_a = perf_a.promptTime(p, 1);
        const auto compute_h = perf_h.promptTime(p, 1);
        const double lw_h =
            sim::usToMs(hh.layerwiseVisibleTime(p, compute_h));
        table.addRow({
            std::to_string(p),
            Table::fmt(sim::usToMs(aa.serializedTime(p)), 1),
            Table::fmt(sim::usToMs(aa.layerwiseVisibleTime(p, compute_a)),
                       1),
            Table::fmt(sim::usToMs(hh.serializedTime(p)), 1),
            Table::fmt(lw_h, 1),
            Table::fmt(100.0 * lw_h / sim::usToMs(compute_h), 1) + "%",
        });
    }
    table.print();
    std::printf("\nPaper: serialized grows linearly; layer-wise leaves a"
                " near-constant ~8 ms (A100) / ~5 ms (H100); overhead"
                " < 7%% of prompt time\n");

    bench::banner("Ablation: technique switch threshold (H100)");
    Table ablation({"prompt tokens", "serialized (ms)", "layer-wise (ms)",
                    "Splitwise picks"});
    for (std::int64_t p : {64, 128, 256, 384, 512, 768, 1024}) {
        const auto plan = hh.plan(p, perf_h.promptTime(p, 1));
        ablation.addRow({
            std::to_string(p),
            Table::fmt(sim::usToMs(hh.serializedTime(p)), 2),
            Table::fmt(sim::usToMs(hh.layerwiseVisibleTime(
                           p, perf_h.promptTime(p, 1))),
                       2),
            plan.layerwise ? "layer-wise" : "serialized",
        });
    }
    ablation.print();
    std::printf("\nPaper: serialized below 512 prompt tokens on H100,"
                " layer-wise above (SVI-A)\n");
    return 0;
}
