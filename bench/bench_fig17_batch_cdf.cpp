/**
 * @file
 * Regenerates paper Fig. 17: cumulative distribution of time spent
 * at various active-batched-token counts on iso-power
 * throughput-optimized clusters, conversation trace, at low and high
 * load (paper: 70 and 130 RPS; ours 14 and 26 at 1/5 scale).
 */

#include <cstdio>

#include "bench/bench_common.h"

namespace {

void
atLoad(double rps, const char* label)
{
    using namespace splitwise;
    using metrics::Table;
    using provision::DesignKind;

    const auto trace =
        bench::makeTrace(workload::conversation(), rps, 40);

    const auto baseline = core::run(bench::cliRunOptions(
        model::llama2_70b(),
        bench::isoPowerDesign(DesignKind::kBaselineH100, "conversation"),
        trace));
    const auto split = core::run(bench::cliRunOptions(
        model::llama2_70b(),
        bench::isoPowerDesign(DesignKind::kSplitwiseHH, "conversation"),
        trace));

    bench::banner(std::string("Fig. 17: active batched tokens CDF, ") +
                  label);
    Table table({"active tokens <=", "Baseline-H100 (%)",
                 "Splitwise-HH prompt pool (%)",
                 "Splitwise-HH token pool (%)"});
    for (std::int64_t t : {0, 1, 5, 10, 15, 20, 30, 50, 100, 1000, 4000}) {
        table.addRow({
            std::to_string(t),
            Table::fmt(100.0 * baseline.promptPool.activeTokens.cdfAt(t), 1),
            Table::fmt(100.0 * split.promptPool.activeTokens.cdfAt(t), 1),
            Table::fmt(100.0 * split.tokenPool.activeTokens.cdfAt(t), 1),
        });
    }
    table.print();
    std::printf("Mixed-pool routes at this load: %llu\n",
                static_cast<unsigned long long>(split.mixedRoutes));
}

}  // namespace

int
main(int argc, char** argv)
{
    splitwise::bench::parseBenchArgs(argc, argv, "bench_fig17_batch_cdf",
        "Paper Fig. 17: batched-token CDFs per pool");
    atLoad(70.0, "low load (70 RPS)");
    atLoad(130.0, "high load (130 RPS)");
    std::printf("\nPaper: at low load baseline machines spend ~70%% of"
                " time at <= 15 active tokens while Splitwise token"
                " machines batch much better; at high load the mixed"
                " pool makes the distributions converge\n");
    return 0;
}
