/**
 * @file
 * Regenerates paper SVI-E: cluster design for batch jobs - stressing
 * the iso-power throughput-optimized clusters far past their SLOs
 * and comparing token-generation throughput per dollar (RPS/$).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace {

/**
 * Sustained throughput: requests/s until 95% of the batch finished.
 * A makespan-based rate would be dominated by the handful of
 * longest-generation stragglers draining at tiny batch sizes.
 */
double
sustainedRps(const splitwise::core::RunReport& report)
{
    using namespace splitwise;
    std::vector<sim::TimeUs> completions;
    sim::TimeUs first_arrival = sim::kTimeNever;
    for (const auto& r : report.requests.results()) {
        completions.push_back(r.arrival + sim::msToUs(r.e2eMs));
        first_arrival = std::min(first_arrival, r.arrival);
    }
    if (completions.empty())
        return 0.0;
    std::sort(completions.begin(), completions.end());
    const std::size_t idx =
        static_cast<std::size_t>(0.95 * (completions.size() - 1));
    const double span = sim::usToSeconds(completions[idx] - first_arrival);
    return span > 0 ? 0.95 * static_cast<double>(completions.size()) / span
                    : 0.0;
}

}  // namespace

int
main(int argc, char** argv)
{
    splitwise::bench::parseBenchArgs(argc, argv, "bench_batchjob",
        "Batch-job throughput on mixed request sizes");
    using namespace splitwise;
    using metrics::Table;
    using provision::DesignKind;

    // Batch load: far beyond the interactive operating point.
    const double stress_rps = 200.0;
    const auto trace =
        bench::makeTrace(workload::conversation(), stress_rps, 30);

    bench::banner("SVI-E: batch-job throughput per cost (stressed "
                  "iso-power clusters, conversation)");
    Table table({"design", "pools", "sustained RPS", "tokens/s",
                 "cost ($/hr)", "RPS per $/hr", "mixed routes"});
    for (DesignKind kind : provision::allDesignKinds()) {
        const core::ClusterDesign design =
            bench::isoPowerDesign(kind, "conversation");
        const auto report = core::run(
            bench::cliRunOptions(model::llama2_70b(), design, trace));
        const double rps = sustainedRps(report);
        const std::string pools =
            design.splitwise ? std::to_string(design.numPrompt) + "P+" +
                                   std::to_string(design.numToken) + "T"
                             : std::to_string(design.numPrompt) + "P/T";
        table.addRow({
            design.name,
            pools,
            Table::fmt(rps, 1),
            Table::fmt(report.requests.tokenThroughput(), 0),
            Table::fmt(report.footprint.costPerHour, 0),
            Table::fmt(rps / report.footprint.costPerHour, 3),
            std::to_string(report.mixedRoutes),
        });
    }
    table.print();

    std::printf("\nPaper: under stress Splitwise devolves into the"
                " iso-count baseline (everything mixed-batches);"
                " A100-based designs win on RPS/$ (0.89 vs 0.75 for"
                " H100-based)\n");
    return 0;
}
