/**
 * @file
 * Regenerates paper Fig. 5: (a) TTFT vs. prompt size, (b) TBT vs.
 * token batch size, and (c) E2E latency percentiles on the
 * production-like traces, for BLOOM-176B and Llama2-70B on DGX-H100.
 *
 * Section (d) runs a full Splitwise-HH cluster with span tracking on
 * and prints the per-phase latency attribution, pinning the gap
 * between Fig. 5's uncontended model latencies and cluster-observed
 * latencies on queueing vs. KV transfer. `--breakdown-out=PATH`
 * additionally writes the attribution JSON (with exemplar timelines).
 */

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "model/perf_model.h"

int
main(int argc, char** argv)
{
    splitwise::bench::parseBenchArgs(argc, argv, "bench_fig05_latency",
        "Paper Fig. 5: TTFT/TBT/E2E latency models");
    using namespace splitwise;
    using metrics::Table;

    const model::AnalyticalPerfModel llama(model::llama2_70b(),
                                           hw::dgxH100());
    const model::AnalyticalPerfModel bloom(model::bloom_176b(),
                                           hw::dgxH100());

    bench::banner("Fig. 5a: TTFT by prompt size (DGX-H100)");
    Table ttft({"prompt tokens", "Llama2-70B TTFT (ms)",
                "BLOOM-176B TTFT (ms)"});
    for (std::int64_t p : {128, 256, 512, 1024, 1500, 2048, 3072, 4096}) {
        ttft.addRow({std::to_string(p),
                     Table::fmt(sim::usToMs(llama.promptTime(p, 1))),
                     Table::fmt(sim::usToMs(bloom.promptTime(p, 1)))});
    }
    ttft.print();
    std::printf("Paper: near-linear growth; Llama ~95 ms at 1500 tokens\n");

    bench::banner("Fig. 5b: TBT by token batch size (context 1200/seq)");
    Table tbt({"batch size", "Llama2-70B TBT (ms)", "BLOOM-176B TBT (ms)"});
    for (int b : {1, 2, 4, 8, 16, 32, 64}) {
        tbt.addRow({std::to_string(b),
                    Table::fmt(sim::usToMs(llama.tokenTime(b, 1200LL * b))),
                    Table::fmt(sim::usToMs(bloom.tokenTime(b, 1200LL * b)))});
    }
    tbt.print();
    std::printf("Paper: batch 64 costs only ~2x the batch-1 TBT\n");

    bench::banner("Fig. 5c: E2E latency percentiles, no batching");
    Table e2e({"model", "trace", "p50 (s)", "p90 (s)", "p99 (s)"});
    for (const auto* w : {&workload::coding(), &workload::conversation()}) {
        struct Entry {
            const char* name;
            const model::AnalyticalPerfModel* perf;
        } models[] = {{"Llama2-70B", &llama}, {"BLOOM-176B", &bloom}};
        for (const auto& entry : models) {
            // Uncontended per-request E2E: one prompt pass plus one
            // decode iteration per output token.
            sim::Rng rng(11);
            metrics::Summary summary;
            for (int i = 0; i < 4000; ++i) {
                const auto prompt = w->promptTokens->sample(rng);
                const auto output = w->outputTokens->sample(rng);
                double ms = sim::usToMs(entry.perf->promptTime(prompt, 1));
                ms += static_cast<double>(output - 1) *
                      sim::usToMs(entry.perf->tokenTime(
                          1, prompt + output / 2));
                summary.add(ms);
            }
            e2e.addRow({entry.name, w->name,
                        Table::fmt(summary.p50() / 1e3),
                        Table::fmt(summary.p90() / 1e3),
                        Table::fmt(summary.p99() / 1e3)});
        }
    }
    e2e.print();
    std::printf("Paper: most E2E time is spent in the token phase"
                " (Insight III)\n");

    bench::banner("Fig. 5d: cluster-run latency attribution "
                  "(Splitwise-HH, coding)");
    {
        const bool short_run = bench::benchArgs().shortRun;
        core::SimConfig config;
        bench::applyTelemetryCli(config);
        // The attribution section is this bench's whole point, so
        // span tracking is on regardless of --breakdown-out.
        config.telemetry.spanTracking = true;
        const auto design = bench::isoPowerDesign(
            provision::DesignKind::kSplitwiseHH, "coding");
        const auto trace = bench::makeTrace(workload::coding(), 60.0,
                                            short_run ? 20.0 : 60.0);
        const auto report = core::run(bench::cliRunOptions(
            model::llama2_70b(), design, trace, config));
        if (!report.breakdown.enabled) {
            std::printf("span tracking unavailable "
                        "(SPLITWISE_TELEMETRY=OFF build); skipped\n");
        } else {
            const telemetry::LatencyBreakdown& b = report.breakdown;
            Table phases({"phase", "requests", "total (s)", "share (%)",
                          "mean (ms)", "p50 (ms)", "p99 (ms)", "max (ms)"});
            for (const auto& p : b.phases) {
                if (p.requests == 0)
                    continue;
                phases.addRow(
                    {telemetry::spanPhaseName(p.phase),
                     std::to_string(p.requests),
                     Table::fmt(p.totalMs / 1e3),
                     Table::fmt(100.0 * p.totalMs / b.e2eTotalMs),
                     Table::fmt(p.meanMs), Table::fmt(p.p50Ms),
                     Table::fmt(p.p99Ms), Table::fmt(p.maxMs)});
            }
            phases.print();
            const double drift =
                std::abs(b.attributedTotalMs - b.e2eTotalMs) /
                (b.e2eTotalMs > 0.0 ? b.e2eTotalMs : 1.0);
            std::printf("attributed %.3f s of %.3f s E2E across %zu "
                        "requests (drift %.4f%%)\n",
                        b.attributedTotalMs / 1e3, b.e2eTotalMs / 1e3,
                        b.requests, 100.0 * drift);
            if (drift > 0.005) {
                sim::fatal("bench_fig05_latency: per-phase attribution "
                           "drifted more than 0.5% from E2E");
            }
            std::printf("The gap above Fig. 5c's uncontended E2E is the "
                        "queue/kv_transfer share.\n");
        }
    }
    return 0;
}
