/**
 * @file
 * Regenerates paper Fig. 5: (a) TTFT vs. prompt size, (b) TBT vs.
 * token batch size, and (c) E2E latency percentiles on the
 * production-like traces, for BLOOM-176B and Llama2-70B on DGX-H100.
 */

#include <cstdio>

#include "bench/bench_common.h"
#include "model/perf_model.h"

int
main(int argc, char** argv)
{
    splitwise::bench::parseBenchArgs(argc, argv, "bench_fig05_latency",
        "Paper Fig. 5: TTFT/TBT/E2E latency models");
    using namespace splitwise;
    using metrics::Table;

    const model::AnalyticalPerfModel llama(model::llama2_70b(),
                                           hw::dgxH100());
    const model::AnalyticalPerfModel bloom(model::bloom_176b(),
                                           hw::dgxH100());

    bench::banner("Fig. 5a: TTFT by prompt size (DGX-H100)");
    Table ttft({"prompt tokens", "Llama2-70B TTFT (ms)",
                "BLOOM-176B TTFT (ms)"});
    for (std::int64_t p : {128, 256, 512, 1024, 1500, 2048, 3072, 4096}) {
        ttft.addRow({std::to_string(p),
                     Table::fmt(sim::usToMs(llama.promptTime(p, 1))),
                     Table::fmt(sim::usToMs(bloom.promptTime(p, 1)))});
    }
    ttft.print();
    std::printf("Paper: near-linear growth; Llama ~95 ms at 1500 tokens\n");

    bench::banner("Fig. 5b: TBT by token batch size (context 1200/seq)");
    Table tbt({"batch size", "Llama2-70B TBT (ms)", "BLOOM-176B TBT (ms)"});
    for (int b : {1, 2, 4, 8, 16, 32, 64}) {
        tbt.addRow({std::to_string(b),
                    Table::fmt(sim::usToMs(llama.tokenTime(b, 1200LL * b))),
                    Table::fmt(sim::usToMs(bloom.tokenTime(b, 1200LL * b)))});
    }
    tbt.print();
    std::printf("Paper: batch 64 costs only ~2x the batch-1 TBT\n");

    bench::banner("Fig. 5c: E2E latency percentiles, no batching");
    Table e2e({"model", "trace", "p50 (s)", "p90 (s)", "p99 (s)"});
    for (const auto* w : {&workload::coding(), &workload::conversation()}) {
        struct Entry {
            const char* name;
            const model::AnalyticalPerfModel* perf;
        } models[] = {{"Llama2-70B", &llama}, {"BLOOM-176B", &bloom}};
        for (const auto& entry : models) {
            // Uncontended per-request E2E: one prompt pass plus one
            // decode iteration per output token.
            sim::Rng rng(11);
            metrics::Summary summary;
            for (int i = 0; i < 4000; ++i) {
                const auto prompt = w->promptTokens->sample(rng);
                const auto output = w->outputTokens->sample(rng);
                double ms = sim::usToMs(entry.perf->promptTime(prompt, 1));
                ms += static_cast<double>(output - 1) *
                      sim::usToMs(entry.perf->tokenTime(
                          1, prompt + output / 2));
                summary.add(ms);
            }
            e2e.addRow({entry.name, w->name,
                        Table::fmt(summary.p50() / 1e3),
                        Table::fmt(summary.p90() / 1e3),
                        Table::fmt(summary.p99() / 1e3)});
        }
    }
    e2e.print();
    std::printf("Paper: most E2E time is spent in the token phase"
                " (Insight III)\n");
    return 0;
}
