/**
 * @file
 * Regenerates paper Table IV: P50 request metrics on DGX-A100 vs.
 * DGX-H100 without batching, for Llama2-70B on both traces, with
 * per-request cost and energy.
 */

#include <cstdio>

#include "bench/bench_common.h"
#include "model/perf_model.h"
#include "model/power_model.h"

namespace {

struct P50Metrics {
    double ttftMs = 0.0;
    double tbtMs = 0.0;
    double e2eMs = 0.0;
    double costPer1k = 0.0;
    double energyWh = 0.0;
};

P50Metrics
measure(const splitwise::workload::Workload& w,
        const splitwise::hw::MachineSpec& machine)
{
    using namespace splitwise;
    const model::AnalyticalPerfModel perf(model::llama2_70b(), machine);
    const model::PowerModel power(machine.gpu);

    sim::Rng rng(21);
    metrics::Summary ttft;
    metrics::Summary tbt;
    metrics::Summary e2e;
    metrics::Summary cost;
    metrics::Summary energy;
    for (int i = 0; i < 4000; ++i) {
        const auto prompt = w.promptTokens->sample(rng);
        const auto output = w.outputTokens->sample(rng);
        const double prompt_ms = sim::usToMs(perf.promptTime(prompt, 1));
        const double token_ms =
            sim::usToMs(perf.tokenTime(1, prompt + output / 2));
        const double e2e_ms =
            prompt_ms + static_cast<double>(output - 1) * token_ms;
        ttft.add(prompt_ms);
        tbt.add(token_ms);
        e2e.add(e2e_ms);
        // Cost: machine rental for the request's duration, per 1000
        // requests. Energy: phase-weighted machine draw.
        cost.add(machine.costPerHour * e2e_ms / 3.6e6 * 1000.0);
        const double prompt_w = power.machinePowerWatts(
            machine, power.promptPowerFraction(prompt));
        const double token_w =
            power.machinePowerWatts(machine, power.tokenPowerFraction(1));
        energy.add((prompt_w * prompt_ms + token_w * (e2e_ms - prompt_ms)) /
                   3.6e6);
    }
    return {ttft.p50(), tbt.p50(), e2e.p50(), cost.p50(), energy.p50()};
}

}  // namespace

int
main(int argc, char** argv)
{
    splitwise::bench::parseBenchArgs(argc, argv, "bench_table4_a100_vs_h100",
        "Paper Table 4: A100 vs H100 phase performance");
    using namespace splitwise;
    using metrics::Table;

    bench::banner("Table IV: P50 request metrics, A100 vs H100, "
                  "Llama2-70B, no batching");
    Table table({"trace", "metric", "A100", "H100", "ratio (H/A)"});
    for (const auto* w : {&workload::coding(), &workload::conversation()}) {
        const P50Metrics a = measure(*w, hw::dgxA100());
        const P50Metrics h = measure(*w, hw::dgxH100());
        auto row = [&](const char* name, double av, double hv,
                       const char* unit) {
            table.addRow({w->name, name, Table::fmt(av, 2) + unit,
                          Table::fmt(hv, 2) + unit,
                          Table::fmt(hv / av, 2) + "x"});
        };
        row("TTFT", a.ttftMs, h.ttftMs, " ms");
        row("TBT", a.tbtMs, h.tbtMs, " ms");
        row("E2E", a.e2eMs, h.e2eMs, " ms");
        row("Cost (/1k req)", a.costPer1k, h.costPer1k, " $");
        row("Energy", a.energyWh, h.energyWh, " Wh");
    }
    table.print();

    std::printf("\nPaper (Llama2-70B): coding TTFT 185/95 ms (0.51x),"
                " TBT 52/31 ms (0.70x), E2E 856/493 ms;\n"
                "conversation TTFT 155/84 ms, TBT 40/28 ms, E2E"
                " 4957/3387 ms; A100 cost/energy at parity or better\n");
    return 0;
}
