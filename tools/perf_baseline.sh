#!/usr/bin/env bash
# Measure the event-engine perf baseline and emit BENCH_PR5.json.
#
# Runs each probe RUNS times (default 5) and reports the median:
#   - bench_events          events/sec, new vs embedded legacy queue
#   - bench_dst --short     scenarios/sec through the DST harness
#   - bench_fig12 --jobs 1  end-to-end design-space sweep wall-clock
#   - span-tracking overhead, two probes:
#       sweep: bench_fig12 --spans on vs off — production-shaped
#           (dozens of full cluster runs, the tracker amortizes);
#           the perf-smoke job gates this ratio at 1.05.
#       dst: bench_dst, 2000 fixed seeds (--short caps at 24, too
#           little signal) + peak RSS both sides — recorded as a
#           diagnostic only: 2000 fresh micro-sims re-pay tracker
#           setup per scenario and the span-balance invariant sweep
#           is a DST-only cost, so this ratio overstates tracing.
#       Both use the min over interleaved off/on pairs: wall minima
#       are the standard noise-robust statistic on shared hosts.
#
# Usage: tools/perf_baseline.sh [BUILD_DIR] [OUT_JSON]
#   BUILD_DIR defaults to ./build, OUT_JSON to ./BENCH_PR5.json.
#   RUNS=N overrides the repetition count (min 5 for the committed
#   baseline; CI may lower it for the smoke gate).
#
# Scale trajectory (PR 8):
#
#   tools/perf_baseline.sh scale [BUILD_DIR] [OUT_JSON]
#
# sweeps bench_scale over requests x machines shapes (one process per
# shape, so each peak_rss_kb is a true per-shape high-water mark),
# runs the naive materialized baseline at the headline 10^6 x 2000
# shape, and emits BENCH_PR8.json — the committed numbers CI's
# scale-smoke step gates against. The streamed 10^6 x 2000 run is
# budget-enforced (--budget-mb) so the O(in-flight) memory contract
# fails loudly here, not just in DST.
set -euo pipefail

SUBCOMMAND=""
if [[ "${1:-}" == "scale" ]]; then
    SUBCOMMAND="scale"
    shift
fi

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_PR5.json}"
BENCH="$BUILD_DIR/bench"

# median FILE -> median of one number per line
median() {
    sort -n "$1" | awk '{a[NR]=$1} END {
        if (NR == 0) exit 1;
        if (NR % 2) print a[(NR+1)/2];
        else printf "%.6f\n", (a[NR/2] + a[NR/2+1]) / 2 }'
}

# --- scale subcommand: bench_scale sweep -> BENCH_PR8.json -----------
if [[ "$SUBCOMMAND" == "scale" ]]; then
    [[ "$OUT_JSON" == "BENCH_PR5.json" ]] && OUT_JSON="BENCH_PR8.json"
    RUNS="${RUNS:-3}"
    SCALE_BUDGET_MB=150
    if [[ ! -x "$BENCH/bench_scale" ]]; then
        echo "perf_baseline: missing $BENCH/bench_scale (build first)" >&2
        exit 1
    fi
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"' EXIT

    # run_scale_shape MODE REQUESTS MACHINES PREFIX [EXTRA...]
    # One process per invocation: peak_rss_kb is a per-shape number.
    run_scale_shape() {
        local mode="$1" requests="$2" machines="$3" prefix="$4"
        shift 4
        "$BENCH/bench_scale" --mode="$mode" --requests="$requests" \
            --machines="$machines" "$@" > "$tmp/$prefix.out"
        awk '/^SCALE_BENCH/ {
            for (f = 1; f <= NF; ++f) {
                if ($f ~ /^requests_per_sec=/)
                    print substr($f, 18) >> ("'"$tmp"'/'"$prefix"'.rps")
                if ($f ~ /^events_per_sec=/)
                    print substr($f, 16) >> ("'"$tmp"'/'"$prefix"'.eps")
                if ($f ~ /^peak_rss_kb=/)
                    print substr($f, 13) >> ("'"$tmp"'/'"$prefix"'.rss")
                if ($f ~ /^live_slot_high_water=/)
                    print substr($f, 22) >> ("'"$tmp"'/'"$prefix"'.hw")
            }
        }' "$tmp/$prefix.out"
    }

    # shape_json PREFIX MODE REQUESTS MACHINES -> one JSON object
    shape_json() {
        local prefix="$1" mode="$2" requests="$3" machines="$4"
        printf '{"mode": "%s", "requests": %s, "machines": %s, ' \
            "$mode" "$requests" "$machines"
        printf '"requests_per_sec": %s, "events_per_sec": %s, ' \
            "$(median "$tmp/$prefix.rps")" "$(median "$tmp/$prefix.eps")"
        printf '"peak_rss_kb": %s, "live_slot_high_water": %s}' \
            "$(median "$tmp/$prefix.rss")" "$(median "$tmp/$prefix.hw")"
    }

    echo "perf_baseline scale: $RUNS runs per shape" >&2
    STREAMED_SHAPES="100000:100 1000000:100 100000:2000 1000000:2000"
    for i in $(seq 1 "$RUNS"); do
        # The CI smoke shape, both modes: the smoke gate compares the
        # streamed/materialized throughput ratio (host-independent)
        # rather than absolute requests/sec from whatever machine
        # produced this baseline.
        run_scale_shape streamed 50000 100 short
        run_scale_shape materialized 50000 100 short_mat
        for shape in $STREAMED_SHAPES; do
            requests="${shape%%:*}"; machines="${shape##*:}"
            budget=()
            if [[ "$shape" == "1000000:2000" ]]; then
                budget=(--budget-mb="$SCALE_BUDGET_MB")
            fi
            run_scale_shape streamed "$requests" "$machines" \
                "s_${requests}_${machines}" "${budget[@]}"
            echo "  streamed ${requests}x${machines} run $i done" >&2
        done
        # Naive materialized baseline at the headline shape only: it
        # exists to price the memory the streaming path saves.
        run_scale_shape materialized 1000000 2000 m_1000000_2000
        echo "  materialized 1000000x2000 run $i done" >&2
    done

    streamed_rss="$(median "$tmp/s_1000000_2000.rss")"
    materialized_rss="$(median "$tmp/m_1000000_2000.rss")"
    rss_reduction="$(python3 -c \
        "print(f'{$materialized_rss / $streamed_rss:.2f}')")"
    short_ratio="$(python3 -c \
        "print(f'{$(median "$tmp/short.rps") / $(median "$tmp/short_mat.rps"):.3f}')")"

    {
        printf '{\n'
        printf '  "runs": %s,\n' "$RUNS"
        printf '  "statistic": "median",\n'
        printf '  "budget_mb": %s,\n' "$SCALE_BUDGET_MB"
        printf '  "short": %s,\n' "$(shape_json short streamed 50000 100)"
        printf '  "short_materialized": %s,\n' \
            "$(shape_json short_mat materialized 50000 100)"
        printf '  "short_throughput_ratio": %s,\n' "$short_ratio"
        printf '  "streamed": {\n'
        sep=""
        for shape in $STREAMED_SHAPES; do
            requests="${shape%%:*}"; machines="${shape##*:}"
            printf '%s    "r%s_m%s": %s' "$sep" "$requests" "$machines" \
                "$(shape_json "s_${requests}_${machines}" streamed \
                       "$requests" "$machines")"
            sep=$',\n'
        done
        printf '\n  },\n'
        printf '  "materialized": {\n    "r1000000_m2000": %s\n  },\n' \
            "$(shape_json m_1000000_2000 materialized 1000000 2000)"
        printf '  "rss_reduction_1m_2000": %s\n' "$rss_reduction"
        printf '}\n'
    } > "$OUT_JSON"

    echo "perf_baseline scale: wrote $OUT_JSON" >&2
    cat "$OUT_JSON"
    exit 0
fi

for bin in bench_events bench_dst bench_fig12_design_space; do
    if [[ ! -x "$BENCH/$bin" ]]; then
        echo "perf_baseline: missing $BENCH/$bin (build first)" >&2
        exit 1
    fi
done

# minval FILE -> smallest of one number per line
minval() {
    sort -n "$1" | head -1
}

now_s() { python3 -c 'import time; print(f"{time.monotonic():.6f}")'; }

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

RUNS="${RUNS:-5}"
echo "perf_baseline: $RUNS runs per probe" >&2

# --- bench_events: events/sec per (impl, workload) -------------------
# Full-length runs: the --short shape is noise-dominated (tens of
# milliseconds per workload), which makes the CI regression gate
# flaky.
for i in $(seq 1 "$RUNS"); do
    "$BENCH/bench_events" > "$tmp/events.$i.txt"
    awk '/^EVENTS_BENCH/ {
        impl=""; wl=""; rate="";
        for (f = 1; f <= NF; ++f) {
            if ($f ~ /^impl=/) { impl = substr($f, 6) }
            if ($f ~ /^workload=/) { wl = substr($f, 10) }
            if ($f ~ /^events_per_sec=/) { rate = substr($f, 16) }
        }
        print rate >> ("'"$tmp"'/rate." impl "." wl ".txt")
    }' "$tmp/events.$i.txt"
    echo "  bench_events run $i done" >&2
done

# --- bench_dst --short: scenarios/sec --------------------------------
DST_SEEDS=200
for i in $(seq 1 "$RUNS"); do
    t0="$(now_s)"
    "$BENCH/bench_dst" --seeds="$DST_SEEDS" --jobs 1 > /dev/null
    t1="$(now_s)"
    python3 -c "print(f'{$DST_SEEDS / ($t1 - $t0):.3f}')" \
        >> "$tmp/dst_rate.txt"
    python3 -c "print(f'{$t1 - $t0:.6f}')" >> "$tmp/dst_wall.txt"
    echo "  bench_dst run $i done" >&2
done

# --- span tracking: overhead + peak RSS --------------------------------
# Interleaved off/on pairs so host noise lands on both sides equally.
# Peak RSS comes from GNU time -v when present, else a python3 rusage
# fallback.
SPAN_SEEDS=2000
measure_spans() {
    # $1 = bench binary, $2 = --spans value, $3 = output prefix,
    # $4.. = extra args; appends wall seconds to $3.wall and peak RSS
    # (KiB) to $3.rss.
    local bin="$1" spans="$2" prefix="$3"
    shift 3
    if [[ -x /usr/bin/time ]]; then
        local t0 t1 rss
        t0="$(now_s)"
        rss="$(/usr/bin/time -v "$bin" --jobs 1 --spans "$spans" "$@" \
            2>&1 >/dev/null |
            awk '/Maximum resident set size/ {print $NF}')"
        t1="$(now_s)"
        python3 -c "print(f'{$t1 - $t0:.6f}')" >> "$prefix.wall"
        echo "${rss:-0}" >> "$prefix.rss"
    else
        python3 - "$bin" "$spans" "$@" \
            >> "$prefix.wall" 2>> "$prefix.rss" <<'PYEOF'
import resource, subprocess, sys, time
bin, spans = sys.argv[1], sys.argv[2]
t0 = time.monotonic()
subprocess.run([bin, "--jobs", "1", "--spans", spans] + sys.argv[3:],
               stdout=subprocess.DEVNULL, check=True)
wall = time.monotonic() - t0
rss = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
print(f"{wall:.6f}")
print(rss, file=sys.stderr)
PYEOF
    fi
}

# The gated sweep probe is cheap (~0.25 s/run), so it gets extra
# pairs: the min over few pairs still carries host noise.
SWEEP_PAIRS=$((RUNS > 8 ? RUNS : 8))
for i in $(seq 1 "$SWEEP_PAIRS"); do
    measure_spans "$BENCH/bench_fig12_design_space" off "$tmp/sweep_off"
    measure_spans "$BENCH/bench_fig12_design_space" on "$tmp/sweep_on"
done
echo "  sweep span-overhead pairs done" >&2
for i in $(seq 1 "$RUNS"); do
    measure_spans "$BENCH/bench_dst" off "$tmp/spans_off" \
        --seeds="$SPAN_SEEDS"
    measure_spans "$BENCH/bench_dst" on "$tmp/spans_on" \
        --seeds="$SPAN_SEEDS"
    echo "  dst span-overhead pair $i done" >&2
done

# --- bench_fig12 --jobs 1: end-to-end sweep wall-clock ---------------
for i in $(seq 1 "$RUNS"); do
    t0="$(now_s)"
    "$BENCH/bench_fig12_design_space" --jobs 1 > /dev/null
    t1="$(now_s)"
    python3 -c "print(f'{$t1 - $t0:.6f}')" >> "$tmp/fig12_wall.txt"
    echo "  bench_fig12 run $i done" >&2
done

events_new_churn="$(median "$tmp/rate.new.churn.txt")"
events_legacy_churn="$(median "$tmp/rate.legacy.churn.txt")"
events_new_cancel="$(median "$tmp/rate.new.cancel.txt")"
events_legacy_cancel="$(median "$tmp/rate.legacy.cancel.txt")"
events_new_ring="$(median "$tmp/rate.new.ring.txt")"
events_legacy_ring="$(median "$tmp/rate.legacy.ring.txt")"
events_new_large="$(median "$tmp/rate.new.large.txt")"
events_legacy_large="$(median "$tmp/rate.legacy.large.txt")"
dst_rate="$(median "$tmp/dst_rate.txt")"
dst_wall="$(median "$tmp/dst_wall.txt")"
fig12_wall="$(median "$tmp/fig12_wall.txt")"
sweep_off_wall="$(minval "$tmp/sweep_off.wall")"
sweep_on_wall="$(minval "$tmp/sweep_on.wall")"
sweep_overhead="$(python3 -c \
    "print(f'{$sweep_on_wall / $sweep_off_wall:.4f}')")"
spans_off_wall="$(minval "$tmp/spans_off.wall")"
spans_on_wall="$(minval "$tmp/spans_on.wall")"
spans_off_rss="$(median "$tmp/spans_off.rss")"
spans_on_rss="$(median "$tmp/spans_on.rss")"
spans_overhead="$(python3 -c \
    "print(f'{$spans_on_wall / $spans_off_wall:.4f}')")"

churn_ratio="$(python3 -c \
    "print(f'{$events_new_churn / $events_legacy_churn:.3f}')")"

cat > "$OUT_JSON" <<EOF
{
  "runs": $RUNS,
  "statistic": "median",
  "events_per_sec": {
    "churn": {"new": $events_new_churn, "legacy": $events_legacy_churn},
    "cancel": {"new": $events_new_cancel, "legacy": $events_legacy_cancel},
    "ring": {"new": $events_new_ring, "legacy": $events_legacy_ring},
    "large": {"new": $events_new_large, "legacy": $events_legacy_large}
  },
  "churn_speedup": $churn_ratio,
  "dst": {
    "seeds": $DST_SEEDS,
    "jobs": 1,
    "scenarios_per_sec": $dst_rate,
    "p50_wall_s": $dst_wall
  },
  "fig12_sweep": {
    "jobs": 1,
    "p50_wall_s": $fig12_wall
  },
  "span_tracking": {
    "sweep": {
      "off_min_wall_s": $sweep_off_wall,
      "on_min_wall_s": $sweep_on_wall,
      "overhead_ratio": $sweep_overhead
    },
    "dst": {
      "seeds": $SPAN_SEEDS,
      "off": {"min_wall_s": $spans_off_wall, "p50_peak_rss_kb": $spans_off_rss},
      "on": {"min_wall_s": $spans_on_wall, "p50_peak_rss_kb": $spans_on_rss},
      "overhead_ratio": $spans_overhead
    }
  }
}
EOF

echo "perf_baseline: wrote $OUT_JSON" >&2
cat "$OUT_JSON"
