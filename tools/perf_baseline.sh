#!/usr/bin/env bash
# Measure the event-engine perf baseline and emit BENCH_PR5.json.
#
# Runs each probe RUNS times (default 5) and reports the median:
#   - bench_events          events/sec, new vs embedded legacy queue
#   - bench_dst --short     scenarios/sec through the DST harness
#   - bench_fig12 --jobs 1  end-to-end design-space sweep wall-clock
#
# Usage: tools/perf_baseline.sh [BUILD_DIR] [OUT_JSON]
#   BUILD_DIR defaults to ./build, OUT_JSON to ./BENCH_PR5.json.
#   RUNS=N overrides the repetition count (min 5 for the committed
#   baseline; CI may lower it for the smoke gate).
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_PR5.json}"
RUNS="${RUNS:-5}"
BENCH="$BUILD_DIR/bench"

for bin in bench_events bench_dst bench_fig12_design_space; do
    if [[ ! -x "$BENCH/$bin" ]]; then
        echo "perf_baseline: missing $BENCH/$bin (build first)" >&2
        exit 1
    fi
done

# median FILE -> median of one number per line
median() {
    sort -n "$1" | awk '{a[NR]=$1} END {
        if (NR == 0) exit 1;
        if (NR % 2) print a[(NR+1)/2];
        else printf "%.6f\n", (a[NR/2] + a[NR/2+1]) / 2 }'
}

now_s() { python3 -c 'import time; print(f"{time.monotonic():.6f}")'; }

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "perf_baseline: $RUNS runs per probe" >&2

# --- bench_events: events/sec per (impl, workload) -------------------
# Full-length runs: the --short shape is noise-dominated (tens of
# milliseconds per workload), which makes the CI regression gate
# flaky.
for i in $(seq 1 "$RUNS"); do
    "$BENCH/bench_events" > "$tmp/events.$i.txt"
    awk '/^EVENTS_BENCH/ {
        impl=""; wl=""; rate="";
        for (f = 1; f <= NF; ++f) {
            if ($f ~ /^impl=/) { impl = substr($f, 6) }
            if ($f ~ /^workload=/) { wl = substr($f, 10) }
            if ($f ~ /^events_per_sec=/) { rate = substr($f, 16) }
        }
        print rate >> ("'"$tmp"'/rate." impl "." wl ".txt")
    }' "$tmp/events.$i.txt"
    echo "  bench_events run $i done" >&2
done

# --- bench_dst --short: scenarios/sec --------------------------------
DST_SEEDS=200
for i in $(seq 1 "$RUNS"); do
    t0="$(now_s)"
    "$BENCH/bench_dst" --seeds="$DST_SEEDS" --jobs 1 > /dev/null
    t1="$(now_s)"
    python3 -c "print(f'{$DST_SEEDS / ($t1 - $t0):.3f}')" \
        >> "$tmp/dst_rate.txt"
    python3 -c "print(f'{$t1 - $t0:.6f}')" >> "$tmp/dst_wall.txt"
    echo "  bench_dst run $i done" >&2
done

# --- bench_fig12 --jobs 1: end-to-end sweep wall-clock ---------------
for i in $(seq 1 "$RUNS"); do
    t0="$(now_s)"
    "$BENCH/bench_fig12_design_space" --jobs 1 > /dev/null
    t1="$(now_s)"
    python3 -c "print(f'{$t1 - $t0:.6f}')" >> "$tmp/fig12_wall.txt"
    echo "  bench_fig12 run $i done" >&2
done

events_new_churn="$(median "$tmp/rate.new.churn.txt")"
events_legacy_churn="$(median "$tmp/rate.legacy.churn.txt")"
events_new_cancel="$(median "$tmp/rate.new.cancel.txt")"
events_legacy_cancel="$(median "$tmp/rate.legacy.cancel.txt")"
events_new_ring="$(median "$tmp/rate.new.ring.txt")"
events_legacy_ring="$(median "$tmp/rate.legacy.ring.txt")"
events_new_large="$(median "$tmp/rate.new.large.txt")"
events_legacy_large="$(median "$tmp/rate.legacy.large.txt")"
dst_rate="$(median "$tmp/dst_rate.txt")"
dst_wall="$(median "$tmp/dst_wall.txt")"
fig12_wall="$(median "$tmp/fig12_wall.txt")"

churn_ratio="$(python3 -c \
    "print(f'{$events_new_churn / $events_legacy_churn:.3f}')")"

cat > "$OUT_JSON" <<EOF
{
  "runs": $RUNS,
  "statistic": "median",
  "events_per_sec": {
    "churn": {"new": $events_new_churn, "legacy": $events_legacy_churn},
    "cancel": {"new": $events_new_cancel, "legacy": $events_legacy_cancel},
    "ring": {"new": $events_new_ring, "legacy": $events_legacy_ring},
    "large": {"new": $events_new_large, "legacy": $events_legacy_large}
  },
  "churn_speedup": $churn_ratio,
  "dst": {
    "seeds": $DST_SEEDS,
    "jobs": 1,
    "scenarios_per_sec": $dst_rate,
    "p50_wall_s": $dst_wall
  },
  "fig12_sweep": {
    "jobs": 1,
    "p50_wall_s": $fig12_wall
  }
}
EOF

echo "perf_baseline: wrote $OUT_JSON" >&2
cat "$OUT_JSON"
