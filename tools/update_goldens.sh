#!/usr/bin/env bash
#
# Regenerate the golden report files under tests/golden/data/.
#
#   tools/update_goldens.sh [build-dir]
#
# Rebuilds golden_report_test in the given tree (default: build/) and
# reruns it with SPLITWISE_UPDATE_GOLDENS=1, which makes the test
# overwrite each golden file with the current simulator output instead
# of comparing against it. Review the resulting diff before
# committing: every changed number is a deliberate behaviour change or
# a regression.

set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"

cmake -B "$build_dir" -S . >/dev/null
cmake --build "$build_dir" -j --target golden_report_test

SPLITWISE_UPDATE_GOLDENS=1 "$build_dir/tests/golden_report_test"

echo
echo "goldens rewritten; review with: git diff tests/golden/data/"
git --no-pager diff --stat -- tests/golden/data/ || true
