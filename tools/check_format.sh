#!/usr/bin/env bash
#
# Source formatting and hygiene gate - run by the CI `format` job and
# by tools/verify.sh, so the two can never disagree.
#
# Two layers:
#   1. Repo-wide hygiene over every tracked C++/CMake/shell source:
#      no tabs, no trailing whitespace, no CRLF, newline at EOF.
#   2. clang-format --dry-run over the incremental-adoption file list
#      in tools/format_paths.txt (skipped with a notice when no
#      clang-format binary is available, e.g. in minimal containers;
#      CI always installs one).

set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# --- Layer 1: hygiene ------------------------------------------------

mapfile -t sources < <(git ls-files \
    '*.h' '*.cc' '*.cpp' 'CMakeLists.txt' '*.cmake' '*.sh')

for f in "${sources[@]}"; do
    if grep -nP '\t' "$f" > /dev/null; then
        echo "TAB characters: $f"
        grep -nP '\t' "$f" | head -3
        fail=1
    fi
    if grep -nP ' +$' "$f" > /dev/null; then
        echo "trailing whitespace: $f"
        grep -nP ' +$' "$f" | head -3
        fail=1
    fi
    if grep -q $'\r' "$f"; then
        echo "CRLF line endings: $f"
        fail=1
    fi
    if [ -s "$f" ] && [ -n "$(tail -c 1 "$f")" ]; then
        echo "missing newline at EOF: $f"
        fail=1
    fi
done

# --- Layer 2: clang-format over the enforced file list ---------------

clang_format=""
for candidate in clang-format clang-format-18 clang-format-17 \
                 clang-format-16 clang-format-15 clang-format-14; do
    if command -v "$candidate" > /dev/null 2>&1; then
        clang_format="$candidate"
        break
    fi
done

if [ -z "$clang_format" ]; then
    echo "NOTE: clang-format not found; skipping layer 2" \
         "(CI enforces it)"
else
    echo "using $($clang_format --version)"
    while IFS= read -r path; do
        case "$path" in
          ''|'#'*) continue ;;
        esac
        if [ ! -f "$path" ]; then
            echo "format_paths.txt lists missing file: $path"
            fail=1
            continue
        fi
        if ! "$clang_format" --dry-run -Werror "$path"; then
            echo "clang-format violation: $path"
            fail=1
        fi
    done < tools/format_paths.txt
fi

if [ "$fail" -ne 0 ]; then
    echo
    echo "format check FAILED"
    exit 1
fi
echo "format check ok"
