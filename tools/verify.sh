#!/usr/bin/env bash
#
# Full verification sweep for the Splitwise simulator.
#
#   tools/verify.sh          tier-1 build + tests, telemetry-off build
#   tools/verify.sh --asan   ... plus an ASan/UBSan build + tests (slow)
#
# Build trees:
#   build/          default (telemetry on) - the tier-1 tree
#   build-notelem/  -DSPLITWISE_TELEMETRY=OFF
#   build-asan/     -DSPLITWISE_SANITIZE=address,undefined (--asan only)

set -euo pipefail
cd "$(dirname "$0")/.."

run_asan=0
for arg in "$@"; do
    case "$arg" in
      --asan) run_asan=1 ;;
      *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

step() { printf '\n=== %s ===\n' "$*"; }

step "tier-1: default build"
cmake -B build -S . >/dev/null
cmake --build build -j

step "tier-1: ctest"
ctest --test-dir build --output-on-failure -j "$(nproc)"

step "telemetry-off build (-DSPLITWISE_TELEMETRY=OFF)"
cmake -B build-notelem -S . -DSPLITWISE_TELEMETRY=OFF >/dev/null
cmake --build build-notelem -j

step "telemetry-off ctest"
ctest --test-dir build-notelem --output-on-failure -j "$(nproc)"

step "telemetry smoke: bench_chaos with trace + timeseries"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
build/bench/bench_chaos \
    --trace-out="$tmpdir/trace.json" \
    --timeseries-out="$tmpdir/ts.csv" >/dev/null
test -s "$tmpdir/trace.json"
test -s "$tmpdir/ts.csv"
echo "bench_chaos telemetry self-checks passed"

if [ "$run_asan" -eq 1 ]; then
    step "ASan/UBSan build (slow)"
    cmake -B build-asan -S . \
        -DSPLITWISE_SANITIZE=address,undefined >/dev/null
    cmake --build build-asan -j

    step "ASan/UBSan ctest"
    ctest --test-dir build-asan --output-on-failure -j "$(nproc)"
fi

step "verify: all green"
