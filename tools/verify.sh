#!/usr/bin/env bash
#
# Full verification sweep for the Splitwise simulator.
#
#   tools/verify.sh          tier-1 build + tests, telemetry-off build,
#                            format check, determinism gate
#   tools/verify.sh --asan   ... plus an ASan/UBSan build + tests (slow)
#   tools/verify.sh --tsan   ... plus a TSan build of the parallel
#                            sweep tests (slow)
#
# Build trees:
#   build/          default (telemetry on) - the tier-1 tree
#   build-notelem/  -DSPLITWISE_TELEMETRY=OFF
#   build-asan/     -DSPLITWISE_SANITIZE=address,undefined (--asan only)
#   build-tsan/     -DSPLITWISE_SANITIZE=thread (--tsan only)

set -euo pipefail
cd "$(dirname "$0")/.."

run_asan=0
run_tsan=0
for arg in "$@"; do
    case "$arg" in
      --asan) run_asan=1 ;;
      --tsan) run_tsan=1 ;;
      *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

step() { printf '\n=== %s ===\n' "$*"; }

step "format check (same gate as CI)"
tools/check_format.sh

step "tier-1: default build"
cmake -B build -S . >/dev/null
cmake --build build -j

step "tier-1: ctest"
ctest --test-dir build --output-on-failure -j "$(nproc)"

step "telemetry-off build (-DSPLITWISE_TELEMETRY=OFF)"
cmake -B build-notelem -S . -DSPLITWISE_TELEMETRY=OFF >/dev/null
cmake --build build-notelem -j

step "telemetry-off ctest"
ctest --test-dir build-notelem --output-on-failure -j "$(nproc)"

step "determinism gate: fig12 sweep --jobs 1 vs --jobs 8"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
build/bench/bench_fig12_design_space --jobs 1 \
    --report-out="$tmpdir/fig12-jobs1.json" >/dev/null
build/bench/bench_fig12_design_space --jobs 8 \
    --report-out="$tmpdir/fig12-jobs8.json" >/dev/null
cmp "$tmpdir/fig12-jobs1.json" "$tmpdir/fig12-jobs8.json"
echo "per-cell reports byte-identical across job counts"

step "autoscale gate: acceptance checks + --jobs 1 vs --jobs 8"
build/bench/bench_autoscale --short --jobs 1 \
    --report-out="$tmpdir/autoscale-jobs1.json" >/dev/null
build/bench/bench_autoscale --short --jobs 8 \
    --report-out="$tmpdir/autoscale-jobs8.json" >/dev/null
cmp "$tmpdir/autoscale-jobs1.json" "$tmpdir/autoscale-jobs8.json"
echo "autoscale reports byte-identical across job counts"

step "DST smoke: bench_dst --short (fuzz + invariant checker)"
build/bench/bench_dst --short --jobs 4

step "telemetry smoke: bench_chaos with trace + timeseries"
build/bench/bench_chaos \
    --trace-out="$tmpdir/trace.json" \
    --timeseries-out="$tmpdir/ts.csv" >/dev/null
test -s "$tmpdir/trace.json"
test -s "$tmpdir/ts.csv"
echo "bench_chaos telemetry self-checks passed"

if [ "$run_asan" -eq 1 ]; then
    step "ASan/UBSan build (slow)"
    cmake -B build-asan -S . \
        -DSPLITWISE_SANITIZE=address,undefined >/dev/null
    cmake --build build-asan -j

    step "ASan/UBSan ctest"
    ctest --test-dir build-asan --output-on-failure -j "$(nproc)"
fi

if [ "$run_tsan" -eq 1 ]; then
    step "TSan build: parallel sweep targets (slow)"
    cmake -B build-tsan -S . -DSPLITWISE_SANITIZE=thread >/dev/null
    cmake --build build-tsan -j \
        --target run_pool_test determinism_test provisioner_test

    step "TSan ctest (parallel sweep tests)"
    ctest --test-dir build-tsan --output-on-failure \
        -R 'run_pool_test|determinism_test|provisioner_test'
fi

step "verify: all green"
