#include "control/autoscaler.h"

#include <algorithm>
#include <cmath>

#include "sim/log.h"

namespace splitwise::control {

const char*
actionTypeName(ActionType type)
{
    switch (type) {
    case ActionType::kScaleUpStart: return "scale_up_start";
    case ActionType::kScaleUp: return "scale_up";
    case ActionType::kScaleDownStart: return "scale_down_start";
    case ActionType::kScaleDown: return "scale_down";
    case ActionType::kFlexStart: return "flex_start";
    case ActionType::kFlex: return "flex";
    case ActionType::kBrownout: return "brownout";
    case ActionType::kPowerCap: return "power_cap";
    }
    return "unknown";
}

Autoscaler::Autoscaler(core::Cluster& cluster, AutoscalerConfig config)
    : cluster_(cluster), config_(config),
      monitor_(cluster.llm(), config.slidingWindowUs)
{
    if (!cluster.design().splitwise)
        sim::fatal("Autoscaler: needs a Splitwise (phase-split) design");
    if (config_.tickIntervalUs <= 0)
        sim::fatal("Autoscaler: tick interval must be positive");
    if (config_.provisioningLeadUs < 0 || config_.scaleCooldownUs < 0 ||
        config_.brownoutCooldownUs < 0)
        sim::fatal("Autoscaler: negative lead or cooldown");
    if (config_.tokenCapFloor <= 0.0 || config_.tokenCapFloor > 1.0 ||
        config_.promptCapFloor <= 0.0 || config_.promptCapFloor > 1.0)
        sim::fatal("Autoscaler: cap floors must lie in (0, 1]");
    if (config_.minPromptMachines < 1 || config_.minTokenMachines < 1)
        sim::fatal("Autoscaler: pool minimums must be at least 1");
    cluster_.simulator().postAfter(config_.tickIntervalUs,
                                   [this] { tick(); });
}

void
Autoscaler::record(ActionType type, int machine, core::PoolType pool,
                   int level, double cap)
{
    actions_.push_back({cluster_.simulator().now(), type, machine, pool,
                        level, cap});
}

void
Autoscaler::tick()
{
    ++ticks_;
    sim::Simulator& simulator = cluster_.simulator();
    completeDrains();
    const WindowStats stats =
        monitor_.refresh(cluster_.results(), simulator.now());
    enforcePowerBudget();
    stepBrownout(stats);
    scalePools(stats);
    // The controller is a passenger: it keeps ticking only while the
    // simulation has work of its own, so runs drain exactly when
    // they would have without it.
    if (simulator.pendingEvents() > 0)
        simulator.postAfter(config_.tickIntervalUs, [this] { tick(); });
}

bool
Autoscaler::drained(const engine::Machine& m) const
{
    if (m.busy() || m.mls().hasWork() || m.mls().blocks().residents() > 0)
        return false;
    // Any live request still naming this machine (queued transfer,
    // pre-retire routing decision) could try to reserve KV here
    // later; a parked machine rejects the reservation and never
    // fires onMemoryFreed, deadlocking the request. Hold the park
    // until nothing in the simulation references the machine.
    const int id = m.id();
    bool referenced = false;
    cluster_.requestPool().forEachLive([&](const engine::LiveRequest& req) {
        if (req.terminal())
            return;
        if (req.promptMachine == id || req.tokenMachine == id)
            referenced = true;
    });
    return !referenced;
}

void
Autoscaler::completeDrains()
{
    core::ClusterScheduler& cls = cluster_.scheduler();
    for (auto it = pendingDrains_.begin(); it != pendingDrains_.end();) {
        const int id = it->first;
        engine::Machine* m = cluster_.machines()[static_cast<std::size_t>(id)]
                                 .get();
        // Crashed while draining (the rejoin path owns it now) or
        // emergency-restored by the failure handler: drop the intent.
        if (m->failed() || !cls.inStandby(id)) {
            it = pendingDrains_.erase(it);
            continue;
        }
        if (!drained(*m)) {
            ++it;
            continue;
        }
        if (it->second.park) {
            m->park();
            ++scaleDowns_;
            record(ActionType::kScaleDown, id, cls.originOf(id));
        } else {
            cls.restore(id, it->second.flexTo);
            ++roleFlexes_;
            record(ActionType::kFlex, id, it->second.flexTo);
        }
        it = pendingDrains_.erase(it);
    }
}

void
Autoscaler::enforcePowerBudget()
{
    if (config_.powerBudgetWatts <= 0.0)
        return;
    core::ClusterScheduler& cls = cluster_.scheduler();
    const auto& machines = cluster_.machines();

    // Budget the provisioned (peak) draw of every powered machine -
    // failed ones included, since they resume drawing on recovery
    // and flapping caps around crashes would defeat the hysteresis.
    double prompt_watts = 0.0;
    double token_watts = 0.0;
    for (const auto& m : machines) {
        if (m->parked())
            continue;
        const double watts = m->spec().provisionedPowerWatts();
        if (cls.originOf(m->id()) == core::PoolType::kToken)
            token_watts += watts;
        else
            prompt_watts += watts;
    }

    // SLO-aware placement (Fig. 9): cap the token pool first - its
    // bandwidth-bound iterations draw ~half of TDP, so caps down to
    // that need are free - and touch the prompt pool, whose latency
    // pays for caps almost proportionally, only as a last resort.
    double token_cap = 1.0;
    double prompt_cap = 1.0;
    const double budget = config_.powerBudgetWatts;
    if (prompt_watts + token_watts > budget) {
        if (token_watts > 0.0) {
            token_cap = std::clamp((budget - prompt_watts) / token_watts,
                                   config_.tokenCapFloor, 1.0);
        }
        if (prompt_watts > 0.0 &&
            prompt_watts + token_watts * token_cap > budget) {
            prompt_cap =
                std::clamp((budget - token_watts * token_cap) / prompt_watts,
                           config_.promptCapFloor, 1.0);
        }
    }

    for (const auto& m : machines) {
        if (m->parked())
            continue;
        const core::PoolType origin = cls.originOf(m->id());
        const double cap =
            origin == core::PoolType::kToken ? token_cap : prompt_cap;
        if (std::abs(m->powerCap() - cap) > 1e-9) {
            m->setPowerCap(cap);
            ++powerCapChanges_;
            record(ActionType::kPowerCap, m->id(), origin, 0, cap);
        }
    }
}

void
Autoscaler::stepBrownout(const WindowStats& stats)
{
    core::ClusterScheduler& cls = cluster_.scheduler();
    const sim::TimeUs now = cluster_.simulator().now();
    if (now - lastBrownoutMove_ < config_.brownoutCooldownUs)
        return;

    const auto routed = static_cast<std::int64_t>(
        std::max<std::size_t>(1, cls.liveMachines()));
    const std::int64_t queued_per = cls.queuedPromptTokens() / routed;

    // One ladder, one step per move: sustained overload ratchets
    // L1 -> L2 -> L3 across successive cooldown periods, and the
    // recovery band sits well below the trigger so the level cannot
    // flap across a tick boundary.
    const bool escalate =
        queued_per > config_.brownoutQueuedTokensPerMachine ||
        stats.ttftP99Slowdown > config_.brownoutTtftSlowdown;
    const double frac = config_.brownoutRecoverFraction;
    const bool recover =
        static_cast<double>(queued_per) <
            frac * static_cast<double>(
                       config_.brownoutQueuedTokensPerMachine) &&
        stats.ttftP99Slowdown < frac * config_.brownoutTtftSlowdown;

    const int level = cls.brownoutLevel();
    int next = level;
    if (escalate && level < 3)
        next = level + 1;
    else if (recover && level > 0)
        next = level - 1;
    if (next == level)
        return;

    cls.setBrownoutLevel(next);
    lastBrownoutMove_ = now;
    ++brownoutTransitions_;
    maxBrownoutLevel_ = std::max(maxBrownoutLevel_, next);
    if (level == 0)
        brownoutSince_ = now;
    if (next == 0)
        brownoutUs_ += now - brownoutSince_;
    record(ActionType::kBrownout, -1, core::PoolType::kPrompt, next);
}

std::size_t
Autoscaler::routedOf(core::PoolType pool) const
{
    const core::ClusterScheduler& cls = cluster_.scheduler();
    std::size_t n = 0;
    for (const auto& m : cluster_.machines()) {
        if (cls.contains(m->id()) && cls.originOf(m->id()) == pool)
            ++n;
    }
    return n;
}

void
Autoscaler::scalePools(const WindowStats& stats)
{
    core::ClusterScheduler& cls = cluster_.scheduler();
    const sim::TimeUs now = cluster_.simulator().now();
    const auto cooled = [&](sim::TimeUs last) {
        return now - last >= config_.scaleCooldownUs;
    };

    const std::size_t prompt_routed = routedOf(core::PoolType::kPrompt);
    const std::size_t token_routed = routedOf(core::PoolType::kToken);

    // Leading indicators: queue depth per prompt machine (grows
    // before completions reflect the surge) and mean KV utilization
    // across the token pool. In-flight scale-ups count as capacity
    // so one surge does not unpark the whole standby fleet.
    const auto prompt_capacity = static_cast<std::int64_t>(
        std::max<std::size_t>(1, prompt_routed + pendingUpPrompt_));
    const std::int64_t queued_per = cls.queuedPromptTokens() / prompt_capacity;

    double kv_util = 0.0;
    std::size_t token_live = 0;
    for (const auto& m : cluster_.machines()) {
        if (cls.contains(m->id()) &&
            cls.originOf(m->id()) == core::PoolType::kToken) {
            kv_util += m->mls().blocks().utilization();
            ++token_live;
        }
    }
    if (token_live > 0)
        kv_util /= static_cast<double>(token_live);

    const bool prompt_hot =
        stats.ttftP99Slowdown > config_.ttftScaleUpSlowdown ||
        queued_per > config_.queuedTokensHighPerMachine;
    const bool token_hot =
        stats.tbtP99Slowdown > config_.tbtScaleUpSlowdown ||
        kv_util > config_.kvHighUtilization;

    if (prompt_hot && cooled(lastScalePrompt_))
        scaleUp(core::PoolType::kPrompt, token_hot);
    if (token_hot && cooled(lastScaleToken_))
        scaleUp(core::PoolType::kToken, prompt_hot);

    const bool healthy =
        stats.ttftP99Slowdown < config_.ttftScaleDownSlowdown &&
        stats.tbtP99Slowdown < config_.tbtScaleDownSlowdown;
    if (healthy && !prompt_hot && pendingUpPrompt_ == 0 &&
        queued_per < config_.queuedTokensLowPerMachine &&
        prompt_routed > config_.minPromptMachines &&
        cooled(lastScalePrompt_)) {
        scaleDown(core::PoolType::kPrompt);
    }
    if (healthy && !token_hot && pendingUpToken_ == 0 &&
        kv_util < config_.kvLowUtilization &&
        token_routed > config_.minTokenMachines &&
        cooled(lastScaleToken_)) {
        scaleDown(core::PoolType::kToken);
    }
}

void
Autoscaler::scaleUp(core::PoolType pool, bool opposite_strained)
{
    core::ClusterScheduler& cls = cluster_.scheduler();
    const sim::TimeUs now = cluster_.simulator().now();
    auto& last = pool == core::PoolType::kPrompt ? lastScalePrompt_
                                                 : lastScaleToken_;
    auto& pending_up = pool == core::PoolType::kPrompt ? pendingUpPrompt_
                                                       : pendingUpToken_;

    // Cheapest first: a machine still draining toward park has not
    // powered off yet - cancel the scale-down and put it straight
    // back into routing.
    for (auto it = pendingDrains_.begin(); it != pendingDrains_.end(); ++it) {
        const int id = it->first;
        if (!it->second.park || !cls.inStandby(id))
            continue;
        cls.restore(id, pool);
        pendingDrains_.erase(it);
        ++scaleUps_;
        // Initiation and completion coincide: no lead time to pay.
        record(ActionType::kScaleUpStart, id, pool);
        record(ActionType::kScaleUp, id, pool);
        last = now;
        return;
    }

    // Next: unpark a standby machine, paying the provisioning lead
    // time before it can take work.
    for (const auto& m : cluster_.machines()) {
        const int id = m->id();
        if (!m->parked() || !cls.inStandby(id) ||
            pendingUnparks_.count(id) > 0)
            continue;
        if (!budgetAdmits(*m, pool))
            continue;
        pendingUnparks_.insert(id);
        ++pending_up;
        record(ActionType::kScaleUpStart, id, pool);
        last = now;
        cluster_.simulator().postAfter(
            config_.provisioningLeadUs,
            [this, id, pool] { finishUnpark(id, pool); });
        return;
    }

    // Last resort under a surge: flex a machine over from the
    // opposite pool - but never rob a pool that is strained itself
    // or already at its minimum. A flex perturbs both pools, so both
    // cooldowns must have expired (the caller only checked ours).
    if (opposite_strained)
        return;
    if (now - lastScalePrompt_ < config_.scaleCooldownUs ||
        now - lastScaleToken_ < config_.scaleCooldownUs)
        return;
    const core::PoolType opposite = pool == core::PoolType::kPrompt
                                        ? core::PoolType::kToken
                                        : core::PoolType::kPrompt;
    const std::size_t opposite_min = opposite == core::PoolType::kPrompt
                                         ? config_.minPromptMachines
                                         : config_.minTokenMachines;
    if (routedOf(opposite) <= opposite_min)
        return;
    // Donate the least-loaded machine so the drain completes fast.
    engine::Machine* donor = nullptr;
    std::int64_t best_load = 0;
    for (const auto& m : cluster_.machines()) {
        const int id = m->id();
        if (!cls.contains(id) || cls.originOf(id) != opposite)
            continue;
        const std::int64_t load = opposite == core::PoolType::kPrompt
                                      ? m->promptQueueDepthTokens()
                                      : m->tokenLoadTokens();
        if (donor == nullptr || load < best_load) {
            donor = m.get();
            best_load = load;
        }
    }
    if (donor == nullptr)
        return;
    cls.retire(donor->id());
    pendingDrains_[donor->id()] = {/*park=*/false, pool};
    record(ActionType::kFlexStart, donor->id(), pool);
    // A flex changes both pools; cool both down.
    lastScalePrompt_ = now;
    lastScaleToken_ = now;
}

void
Autoscaler::finishUnpark(int machine_id, core::PoolType pool)
{
    pendingUnparks_.erase(machine_id);
    auto& pending_up = pool == core::PoolType::kPrompt ? pendingUpPrompt_
                                                       : pendingUpToken_;
    if (pending_up > 0)
        --pending_up;
    core::ClusterScheduler& cls = cluster_.scheduler();
    // Failed or emergency-restored while the lead time ran.
    if (!cls.inStandby(machine_id))
        return;
    engine::Machine* m =
        cluster_.machines()[static_cast<std::size_t>(machine_id)].get();
    if (m->parked())
        m->unpark();
    cls.restore(machine_id, pool);
    ++scaleUps_;
    record(ActionType::kScaleUp, machine_id, pool);
}

void
Autoscaler::scaleDown(core::PoolType pool)
{
    core::ClusterScheduler& cls = cluster_.scheduler();
    // Retire the highest-id routed machine of this origin: a stable,
    // deterministic choice that tends to concentrate surviving load
    // on the low-id machines.
    const auto& machines = cluster_.machines();
    for (auto it = machines.rbegin(); it != machines.rend(); ++it) {
        const int id = (*it)->id();
        if (!cls.contains(id) || cls.originOf(id) != pool)
            continue;
        cls.retire(id);
        pendingDrains_[id] = {/*park=*/true, pool};
        record(ActionType::kScaleDownStart, id, pool);
        auto& last = pool == core::PoolType::kPrompt ? lastScalePrompt_
                                                     : lastScaleToken_;
        last = cluster_.simulator().now();
        return;
    }
}

bool
Autoscaler::budgetAdmits(const engine::Machine& candidate,
                         core::PoolType as) const
{
    if (config_.powerBudgetWatts <= 0.0)
        return true;
    const core::ClusterScheduler& cls = cluster_.scheduler();
    const auto floor_of = [&](core::PoolType origin) {
        return origin == core::PoolType::kToken ? config_.tokenCapFloor
                                                : config_.promptCapFloor;
    };
    // Even at the deepest caps, would the fleet plus the candidate
    // fit? If not, the brownout ladder has to absorb the surge.
    double watts = candidate.spec().provisionedPowerWatts() * floor_of(as);
    for (const auto& m : cluster_.machines()) {
        if (m->parked() || m->id() == candidate.id())
            continue;
        watts += m->spec().provisionedPowerWatts() *
                 floor_of(cls.originOf(m->id()));
    }
    return watts <= config_.powerBudgetWatts;
}

void
Autoscaler::fillReport(core::RunReport& report) const
{
    core::ControlReport& c = report.control;
    c.enabled = true;
    c.ticks = ticks_;
    c.scaleUps = scaleUps_;
    c.scaleDowns = scaleDowns_;
    c.roleFlexes = roleFlexes_;
    c.brownoutTransitions = brownoutTransitions_;
    c.maxBrownoutLevel = maxBrownoutLevel_;
    c.brownoutUs = brownoutUs_;
    if (cluster_.scheduler().brownoutLevel() > 0)
        c.brownoutUs += report.simulatedUs - brownoutSince_;
    c.powerCapChanges = powerCapChanges_;
    c.emergencyRestores = cluster_.emergencyRestores();
    const sim::TimeUs powered =
        report.promptPool.poweredUs + report.tokenPool.poweredUs;
    c.machineHours = sim::usToSeconds(powered) / 3600.0;
    c.costDollars =
        report.promptPool.costDollars + report.tokenPool.costDollars;
    c.totalEnergyWh = report.promptPool.energyWh +
                      report.promptPool.idleEnergyWh +
                      report.tokenPool.energyWh +
                      report.tokenPool.idleEnergyWh;
    c.sloAttainment = core::sloAttainment(monitor_.checker(), report.requests,
                                          report.submitted, config_.slos);
}

}  // namespace splitwise::control
