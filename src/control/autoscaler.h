#ifndef SPLITWISE_CONTROL_AUTOSCALER_H_
#define SPLITWISE_CONTROL_AUTOSCALER_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "control/slo_monitor.h"
#include "core/cluster.h"
#include "sim/time.h"

namespace splitwise::control {

/** One control-plane decision, for reports and DST invariants. */
enum class ActionType {
    /** Unpark scheduled; the provisioning lead time is running. */
    kScaleUpStart,
    /** Machine restored to routing after its lead time. */
    kScaleUp,
    /** Machine retired from routing, draining toward park. */
    kScaleDownStart,
    /** Drained machine powered off. */
    kScaleDown,
    /** Machine retired from routing, draining toward a role flex. */
    kFlexStart,
    /** Drained machine restored under the opposite role. */
    kFlex,
    /** Admission brownout level moved (by exactly one step). */
    kBrownout,
    /** Power-cap fraction assigned to a machine. */
    kPowerCap,
};

/** Human-readable action name. */
const char* actionTypeName(ActionType type);

struct ControlAction {
    sim::TimeUs at = 0;
    ActionType type = ActionType::kScaleUp;
    int machine = -1;
    core::PoolType pool = core::PoolType::kPrompt;
    int brownoutLevel = 0;
    double capFraction = 1.0;
};

/** Controller tunables; the defaults suit the bench scenarios. */
struct AutoscalerConfig {
    /** Controller evaluation period. */
    sim::TimeUs tickIntervalUs = sim::secondsToUs(5);
    /** Sliding window the SLO signals are computed over. */
    sim::TimeUs slidingWindowUs = sim::secondsToUs(30);
    /** Cold-start delay between an unpark decision and the machine
     *  accepting work (cloud provisioning / boot / model load). */
    sim::TimeUs provisioningLeadUs = sim::secondsToUs(15);
    /** Minimum spacing between scale actions on one pool - the
     *  hysteresis that forbids oscillation. */
    sim::TimeUs scaleCooldownUs = sim::secondsToUs(45);
    /** Minimum spacing between brownout-level moves. */
    sim::TimeUs brownoutCooldownUs = sim::secondsToUs(20);

    /** Scale the prompt pool up when windowed P99 TTFT slowdown
     *  crosses this (Table VI P99 limit is 6). */
    double ttftScaleUpSlowdown = 4.0;
    /** Scale the token pool up when windowed P99 TBT slowdown
     *  crosses this (Table VI P99 limit is 5). */
    double tbtScaleUpSlowdown = 3.0;
    /** Queued prompt tokens per routed prompt machine that also
     *  triggers prompt scale-up (leading indicator: queue growth
     *  shows up before completions do). */
    std::int64_t queuedTokensHighPerMachine = 6000;
    /** Mean KV utilization across the token pool that also triggers
     *  token scale-up. */
    double kvHighUtilization = 0.80;

    /** Scale a pool down only when windowed slowdowns sit below
     *  these healthy margins... */
    double ttftScaleDownSlowdown = 1.5;
    double tbtScaleDownSlowdown = 1.5;
    /** ...and the pool's own load signal is this idle. */
    std::int64_t queuedTokensLowPerMachine = 500;
    double kvLowUtilization = 0.25;

    /** Escalate the brownout ladder when queued prompt tokens per
     *  routed machine cross this... */
    std::int64_t brownoutQueuedTokensPerMachine = 20000;
    /** ...or windowed P99 TTFT slowdown crosses this. */
    double brownoutTtftSlowdown = 8.0;
    /** De-escalate once both signals drop below this fraction of
     *  their trigger (hysteresis band). */
    double brownoutRecoverFraction = 0.4;

    /** Facility power budget, watts; 0 = unlimited. Enforced with
     *  Fig. 9 power caps, token pool first (caps there are nearly
     *  free), prompt pool only as a last resort. */
    double powerBudgetWatts = 0.0;
    /** Deepest cap ever placed on token-origin machines. */
    double tokenCapFloor = 0.5;
    /** Deepest cap ever placed on prompt-origin machines (higher:
     *  prompt latency pays nearly proportionally, Fig. 9). */
    double promptCapFloor = 0.7;

    /** Never shrink a pool's routed machines below these. */
    std::size_t minPromptMachines = 1;
    std::size_t minTokenMachines = 1;

    /** SLO set used for the report's attainment number. */
    core::SloSet slos;
};

/**
 * The online control plane (ISSUE 6): a periodic controller event
 * inside the simulation that watches telemetry the cluster already
 * exposes and issues live actions against it.
 *
 *   scale down:  retire -> drain -> park        (stop paying)
 *   scale up:    unpark after lead time -> restore
 *   role flex:   retire -> drain -> restore under the opposite role
 *   brownout:    admission ladder L0..L3, one step per move
 *   power caps:  Fig. 9 caps enforcing a facility budget
 *
 * Construct after the Cluster, before run(). When no autoscaler is
 * attached the cluster's behaviour is byte-identical to before this
 * subsystem existed: the controller's only coupling is the events it
 * posts.
 */
class Autoscaler {
  public:
    Autoscaler(core::Cluster& cluster, AutoscalerConfig config = {});

    Autoscaler(const Autoscaler&) = delete;
    Autoscaler& operator=(const Autoscaler&) = delete;

    const AutoscalerConfig& config() const { return config_; }

    /** Every decision taken, in simulated-time order. */
    const std::vector<ControlAction>& actions() const { return actions_; }

    /** Controller evaluations so far. */
    std::uint64_t ticks() const { return ticks_; }

    /**
     * Fill @p report's control section (call after Cluster::run()):
     * action counters, machine-hours/$/energy totals from the pool
     * reports, and Table VI SLO attainment over all submissions.
     */
    void fillReport(core::RunReport& report) const;

  private:
    /** What a draining (retired) machine becomes once empty. */
    struct DrainIntent {
        /** True: park. False: restore under flexTo. */
        bool park = true;
        core::PoolType flexTo = core::PoolType::kPrompt;
    };

    void tick();

    /** Park or flex-restore retired machines that finished draining. */
    void completeDrains();

    /** True once nothing in the simulation references the machine. */
    bool drained(const engine::Machine& m) const;

    void enforcePowerBudget();
    void stepBrownout(const WindowStats& stats);
    void scalePools(const WindowStats& stats);

    /** The unpark lead time elapsed: bring @p machine_id into @p pool. */
    void finishUnpark(int machine_id, core::PoolType pool);

    /** Routed machines whose origin is @p pool. */
    std::size_t routedOf(core::PoolType pool) const;

    /** Scale @p pool up by one machine: unpark standby if possible,
     *  else flex one from the (healthy) opposite pool. */
    void scaleUp(core::PoolType pool, bool opposite_strained);
    void scaleDown(core::PoolType pool);

    /** True when powering @p candidate on for @p as stays inside the
     *  power budget even at the deepest caps. */
    bool budgetAdmits(const engine::Machine& candidate,
                      core::PoolType as) const;

    void record(ActionType type, int machine, core::PoolType pool,
                int level = 0, double cap = 1.0);

    core::Cluster& cluster_;
    AutoscalerConfig config_;
    SloMonitor monitor_;

    /** Retired machines draining toward park or flex. */
    std::unordered_map<int, DrainIntent> pendingDrains_;
    /** Machines whose unpark lead time is running. */
    std::unordered_set<int> pendingUnparks_;
    /** In-flight scale-ups per pool (prompt, token), so one surge
     *  does not trigger a fleet-wide unpark. */
    std::size_t pendingUpPrompt_ = 0;
    std::size_t pendingUpToken_ = 0;

    /** "Long ago" sentinel: halved to keep now-minus-last overflow
     *  free. Fresh controllers act on the first firing tick. */
    static constexpr sim::TimeUs kLongAgo = INT64_MIN / 2;
    sim::TimeUs lastScalePrompt_ = kLongAgo;
    sim::TimeUs lastScaleToken_ = kLongAgo;
    sim::TimeUs lastBrownoutMove_ = kLongAgo;
    sim::TimeUs brownoutSince_ = 0;
    sim::TimeUs brownoutUs_ = 0;
    int maxBrownoutLevel_ = 0;

    std::vector<ControlAction> actions_;
    std::uint64_t ticks_ = 0;
    std::uint64_t scaleUps_ = 0;
    std::uint64_t scaleDowns_ = 0;
    std::uint64_t roleFlexes_ = 0;
    std::uint64_t brownoutTransitions_ = 0;
    std::uint64_t powerCapChanges_ = 0;
};

}  // namespace splitwise::control

#endif  // SPLITWISE_CONTROL_AUTOSCALER_H_
