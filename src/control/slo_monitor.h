#ifndef SPLITWISE_CONTROL_SLO_MONITOR_H_
#define SPLITWISE_CONTROL_SLO_MONITOR_H_

#include <cstddef>
#include <deque>

#include "core/slo.h"
#include "metrics/request_metrics.h"
#include "model/llm_config.h"
#include "sim/time.h"

namespace splitwise::control {

/**
 * Sliding-window SLO signals the autoscaler steers by: P99 slowdowns
 * over recent completions, against the same uncontended DGX-A100
 * reference the paper's Table VI SLOs are defined over.
 */
struct WindowStats {
    /** Completions inside the window. */
    std::size_t samples = 0;
    /** P99 TTFT slowdown over the window (0 when empty). */
    double ttftP99Slowdown = 0.0;
    /** P99 TBT slowdown over the window (0 when empty). */
    double tbtP99Slowdown = 0.0;
    /** Completion rate over the window, requests/s. */
    double completionRps = 0.0;
};

/**
 * Tracks per-request SLO slowdowns over a sliding time window.
 *
 * Feeds from the cluster's completion-ordered results vector through
 * a cursor, so each refresh() is incremental: new completions are
 * priced once, expired ones fall off the window's front.
 */
class SloMonitor {
  public:
    SloMonitor(const model::LlmConfig& llm, sim::TimeUs window_us);

    /**
     * Ingest completions recorded since the last call and return the
     * window's current signals at time @p now.
     */
    WindowStats refresh(const metrics::RequestMetrics& metrics,
                        sim::TimeUs now);

    /** The Table VI reference checker (shared with reporting). */
    const core::SloChecker& checker() const { return checker_; }

  private:
    struct Sample {
        sim::TimeUs completedAt = 0;
        double ttftSlowdown = 0.0;
        /** Negative when the request had no decode steps. */
        double tbtSlowdown = -1.0;
    };

    core::SloChecker checker_;
    sim::TimeUs windowUs_;
    std::size_t cursor_ = 0;
    std::deque<Sample> window_;
};

}  // namespace splitwise::control

#endif  // SPLITWISE_CONTROL_SLO_MONITOR_H_
