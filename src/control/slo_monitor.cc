#include "control/slo_monitor.h"

#include <algorithm>
#include <vector>

#include "sim/log.h"

namespace splitwise::control {

namespace {

/** Nearest-rank P99 over a scratch vector (empty -> 0). */
double
p99(std::vector<double>& values)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const std::size_t rank =
        (values.size() * 99 + 99) / 100;  // ceil(n * 0.99)
    return values[std::min(rank, values.size()) - 1];
}

}  // namespace

SloMonitor::SloMonitor(const model::LlmConfig& llm, sim::TimeUs window_us)
    : checker_(llm), windowUs_(window_us)
{
    if (window_us <= 0)
        sim::fatal("SloMonitor: window must be positive");
}

WindowStats
SloMonitor::refresh(const metrics::RequestMetrics& metrics, sim::TimeUs now)
{
    const auto& results = metrics.results();
    for (; cursor_ < results.size(); ++cursor_) {
        const auto& r = results[cursor_];
        Sample s;
        s.completedAt = r.arrival + sim::msToUs(r.e2eMs);
        s.ttftSlowdown = r.ttftMs / checker_.refTtftMs(r.promptTokens);
        if (r.outputTokens > 1) {
            const std::int64_t mean_ctx = r.promptTokens + r.outputTokens / 2;
            s.tbtSlowdown = r.tbtMs / checker_.refTbtMs(mean_ctx);
        }
        window_.push_back(s);
    }
    const sim::TimeUs horizon = now - windowUs_;
    while (!window_.empty() && window_.front().completedAt < horizon)
        window_.pop_front();

    WindowStats stats;
    stats.samples = window_.size();
    if (window_.empty())
        return stats;

    std::vector<double> ttft;
    std::vector<double> tbt;
    ttft.reserve(window_.size());
    tbt.reserve(window_.size());
    for (const auto& s : window_) {
        ttft.push_back(s.ttftSlowdown);
        if (s.tbtSlowdown >= 0.0)
            tbt.push_back(s.tbtSlowdown);
    }
    stats.ttftP99Slowdown = p99(ttft);
    stats.tbtP99Slowdown = p99(tbt);
    stats.completionRps =
        static_cast<double>(window_.size()) / sim::usToSeconds(windowUs_);
    return stats;
}

}  // namespace splitwise::control
