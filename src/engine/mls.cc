#include "engine/mls.h"

#include <algorithm>
#include <limits>

#include "sim/log.h"

namespace splitwise::engine {

const char*
batchPolicyName(BatchPolicy policy)
{
    switch (policy) {
      case BatchPolicy::kRequestLevel: return "request-level";
      case BatchPolicy::kContinuous: return "continuous";
      case BatchPolicy::kMixed: return "mixed";
    }
    return "?";
}

std::int64_t
BatchPlan::contextTokens() const
{
    std::int64_t total = 0;
    for (const auto* r : decodes)
        total += r->contextTokens();
    return total;
}

std::int64_t
BatchPlan::activeTokens() const
{
    return promptTokens + static_cast<std::int64_t>(decodes.size());
}

model::IterationShape
BatchPlan::shape() const
{
    model::IterationShape s;
    s.promptTokens = promptTokens;
    s.promptRequests = static_cast<int>(prompts.size());
    s.tokenRequests = static_cast<int>(decodes.size());
    s.contextTokens = contextTokens();
    return s;
}

Mls::Mls(MlsConfig config, std::int64_t kv_capacity_tokens,
         int block_size_tokens)
    : config_(config), blocks_(kv_capacity_tokens, block_size_tokens)
{
    if (config_.promptTokenBudget <= 0)
        sim::fatal("Mls: promptTokenBudget must be positive");
    if (config_.maxBatchSize <= 0)
        sim::fatal("Mls: maxBatchSize must be positive");
}

std::int64_t
Mls::promptWorkTokens(const LiveRequest* request)
{
    // A preempted-and-recomputed request must re-process its whole
    // accumulated context, not just the original prompt.
    return request->generated > 0 ? request->contextTokens()
                                  : request->spec.promptTokens;
}

void
Mls::enqueuePrompt(LiveRequest* request)
{
    // A request must be able to finish: its full final context
    // (prompt plus every generated token) has to fit in KV.
    const std::int64_t final_context =
        request->spec.promptTokens + request->spec.outputTokens;
    if (blocks_.blocksFor(final_context) > blocks_.totalBlocks()) {
        sim::fatal("Mls: request " + std::to_string(request->spec.id) +
                   " needs more KV than the machine holds");
    }
    request->phase = RequestPhase::kPromptQueued;
    promptQueue_.push_back(request);
}

void
Mls::addResident(LiveRequest* request)
{
    if (!blocks_.holds(request->spec.id)) {
        sim::panic("Mls::addResident without a KV allocation: request " +
                   std::to_string(request->spec.id) + " phase " +
                   std::to_string(static_cast<int>(request->phase)) +
                   " promptMachine " + std::to_string(request->promptMachine) +
                   " tokenMachine " + std::to_string(request->tokenMachine) +
                   " generated " + std::to_string(request->generated) +
                   " restarts " + std::to_string(request->restarts) +
                   " preemptions " + std::to_string(request->preemptions) +
                   " epoch " + std::to_string(request->restartEpoch));
    }
    request->phase = RequestPhase::kDecoding;
    request->starvedIterations = 0;
    residents_.push_back(request);
}

void
Mls::finish(LiveRequest* request)
{
    blocks_.release(request->spec.id);
    const auto it =
        std::find(residents_.begin(), residents_.end(), request);
    if (it != residents_.end())
        residents_.erase(it);
    requestLevelBatch_.erase(request);
}

void
Mls::clearAll()
{
    for (auto* r : promptQueue_)
        blocks_.release(r->spec.id);
    for (auto* r : residents_)
        blocks_.release(r->spec.id);
    promptQueue_.clear();
    residents_.clear();
    requestLevelBatch_.clear();
    // Allocations held by in-flight iterations or inbound-transfer
    // reservations are swept too, along with every cached shared
    // prefix: the machine's memory is gone. Lifetime cache counters
    // survive the wipe.
    blocks_.reset();
}

std::int64_t
Mls::pendingPromptTokens() const
{
    std::int64_t total = 0;
    for (const auto* r : promptQueue_)
        total += promptWorkTokens(r) - r->promptProcessed;
    return total;
}

std::int64_t
Mls::residentContextTokens() const
{
    std::int64_t total = 0;
    for (const auto* r : residents_)
        total += r->contextTokens();
    return total;
}

bool
Mls::queued(const LiveRequest* request) const
{
    return std::find(promptQueue_.begin(), promptQueue_.end(), request) !=
           promptQueue_.end();
}

bool
Mls::resident(const LiveRequest* request) const
{
    return std::find(residents_.begin(), residents_.end(), request) !=
           residents_.end();
}

bool
Mls::hasWork() const
{
    return !promptQueue_.empty() || !residents_.empty();
}

void
Mls::admitPrompts(BatchPlan& plan, std::int64_t token_budget, int slot_budget,
                  bool chunked)
{
    std::int64_t budget = token_budget;
    while (!promptQueue_.empty() && budget > 0 &&
           static_cast<int>(plan.prompts.size()) < slot_budget) {
        LiveRequest* req = promptQueue_.front();
        const std::int64_t remaining =
            promptWorkTokens(req) - req->promptProcessed;
        // KV for the whole prompt (plus the token it produces) must
        // be allocatable up front; FCFS means a stuck head blocks
        // the queue. A partially-chunked head already holds blocks.
        if (!blocks_.holds(req->spec.id) &&
            !blocks_.allocate(req->spec.id, promptWorkTokens(req) + 1)) {
            break;
        }
        std::int64_t take = 0;
        if (chunked) {
            // Chunked prefill: only a bounded slice runs alongside
            // the resident decodes (Fig. 2c / Sarathi [23]).
            take = std::min(remaining, budget);
        } else if (plan.prompts.empty()) {
            // A single oversized prompt still runs, whole and alone.
            take = remaining;
        } else if (remaining <= budget) {
            take = remaining;
        } else {
            // Would exceed the batch budget (Insight IV).
            break;
        }
        req->phase = RequestPhase::kPromptRunning;
        req->chunkTokens = take;
        plan.prompts.push_back(req);
        plan.promptTokens += take;
        budget -= take;
        if (take < remaining) {
            // Partial chunk: the request stays at the queue head for
            // its next chunk.
            break;
        }
        promptQueue_.pop_front();
    }
}

void
Mls::admitDecodes(BatchPlan& plan, int slot_budget)
{
    for (LiveRequest* req : residents_) {
        if (static_cast<int>(plan.decodes.size()) >= slot_budget) {
            ++req->starvedIterations;
            continue;
        }
        // Reserve room for the token this iteration will produce.
        if (blocks_.extend(req->spec.id, req->contextTokens() + 1)) {
            plan.decodes.push_back(req);
        } else {
            ++req->starvedIterations;
        }
    }
}

bool
Mls::preemptForMemory()
{
    if (residents_.empty())
        return false;
    // Preempt the newest resident (vLLM-style): release its KV and
    // recompute its context later. Ageing in admitDecodes plus FCFS
    // recompute placement at the queue front bound starvation.
    LiveRequest* victim = residents_.back();
    residents_.pop_back();
    blocks_.release(victim->spec.id);
    ++victim->preemptions;
    ++preemptions_;
    victim->phase = RequestPhase::kPromptQueued;
    victim->promptProcessed = 0;
    // release() dropped the victim's prefix pin; the recompute runs
    // the full context as a plain prefill.
    victim->cachedPrefixTokens = 0;
    promptQueue_.push_front(victim);
    if (onPreempt_)
        onPreempt_(victim);
    return true;
}

void
Mls::planMixed(BatchPlan& plan)
{
    // With decodes resident, prompts are chunked so the decodes'
    // iteration latency stays bounded; an idle-of-decodes machine
    // runs full prompt batches at peak efficiency.
    const bool chunk = config_.promptChunkTokens > 0 && hasDecodeWork();
    const std::int64_t budget =
        chunk ? std::min(config_.promptChunkTokens, config_.promptTokenBudget)
              : config_.promptTokenBudget;
    admitPrompts(plan, budget, config_.maxBatchSize, chunk);
    const int slots =
        config_.maxBatchSize - static_cast<int>(plan.prompts.size());
    admitDecodes(plan, slots);
}

void
Mls::planContinuous(BatchPlan& plan)
{
    // Ageing: once any resident has been preempted past the limit,
    // the token phase runs regardless of waiting prompts (SIV-B).
    bool starving = false;
    for (const auto* r : residents_) {
        if (r->starvedIterations >= config_.maxPreemptions) {
            starving = true;
            break;
        }
    }

    if (!promptQueue_.empty() && !starving) {
        admitPrompts(plan, config_.promptTokenBudget, config_.maxBatchSize,
                     /*chunked=*/false);
        if (!plan.prompts.empty()) {
            // Residents are preempted by this prompt batch.
            for (auto* r : residents_) {
                ++r->starvedIterations;
                ++r->preemptions;
            }
            return;
        }
    }

    admitDecodes(plan, config_.maxBatchSize);
    for (auto* r : plan.decodes)
        r->starvedIterations = 0;
}

void
Mls::planRequestLevel(BatchPlan& plan)
{
    if (requestLevelBatch_.empty()) {
        // Form a fresh batch from every ready request (no token
        // budget: that is exactly the policy's weakness).
        admitPrompts(plan, std::numeric_limits<std::int64_t>::max(),
                     config_.maxBatchSize, /*chunked=*/false);
        for (auto* r : plan.prompts)
            requestLevelBatch_.insert(r);
        return;
    }

    // A preempted member recomputes within the current batch; new
    // arrivals wait for the batch to drain.
    if (!promptQueue_.empty() &&
        requestLevelBatch_.count(promptQueue_.front()) > 0) {
        admitPrompts(plan, std::numeric_limits<std::int64_t>::max(),
                     config_.maxBatchSize, /*chunked=*/false);
    }
    admitDecodes(plan,
                 config_.maxBatchSize - static_cast<int>(plan.prompts.size()));
}

void
Mls::nextBatch(BatchPlan& plan)
{
    // Each failed attempt preempts one resident, so the loop is
    // bounded by the resident count.
    while (true) {
        plan.clear();
        switch (config_.policy) {
          case BatchPolicy::kMixed:
            planMixed(plan);
            break;
          case BatchPolicy::kContinuous:
            planContinuous(plan);
            break;
          case BatchPolicy::kRequestLevel:
            planRequestLevel(plan);
            break;
        }
        if (!plan.empty())
            return;
        // Nothing runnable with work pending means memory is wedged:
        // free some by preempting a resident and retry.
        if (!hasWork() || !preemptForMemory())
            return;
    }
}

}  // namespace splitwise::engine
