#include "engine/request_pool.h"

#include "sim/log.h"

namespace splitwise::engine {

RequestPool::RequestPool(std::size_t slab_slots) : slabSlots_(slab_slots)
{
    if (slab_slots == 0)
        sim::fatal("RequestPool: slab size must be positive");
}

LiveRequest*
RequestPool::rowAt(std::size_t slot) const
{
    return &slabs_[slot / slabSlots_][slot % slabSlots_];
}

void
RequestPool::growSlab()
{
    slabs_.push_back(std::make_unique<LiveRequest[]>(slabSlots_));
    const std::size_t base = liveBits_.size();
    liveBits_.resize(base + slabSlots_, 0);
    // Push in reverse so the LIFO free list hands out ascending slot
    // indices within a fresh slab.
    for (std::size_t i = slabSlots_; i-- > 0;)
        freeList_.push_back(static_cast<std::uint32_t>(base + i));
}

LiveRequest*
RequestPool::acquire()
{
    if (freeList_.empty())
        growSlab();
    const std::uint32_t slot = freeList_.back();
    freeList_.pop_back();

    LiveRequest* row = rowAt(slot);
    // Preserve-and-bump: the epoch survives the reset as the slot's
    // incarnation counter, invalidating events captured against any
    // previous occupant.
    const std::uint32_t epoch = row->restartEpoch;
    *row = LiveRequest{};
    row->restartEpoch = epoch + 1;
    row->poolSlot = slot;

    liveBits_[slot] = 1;
    ++liveCount_;
    ++acquiredTotal_;
    ++version_;
    if (liveCount_ > highWater_)
        highWater_ = liveCount_;
    return row;
}

void
RequestPool::release(LiveRequest* request)
{
    const std::uint32_t slot = request->poolSlot;
    if (slot >= liveBits_.size() || rowAt(slot) != request)
        sim::panic("RequestPool: release of a non-pool request");
    if (!liveBits_[slot])
        sim::panic("RequestPool: double release of slot " +
                   std::to_string(slot));
    liveBits_[slot] = 0;
    --liveCount_;
    ++version_;
    if (recycle_)
        freeList_.push_back(slot);
}

}  // namespace splitwise::engine
