#include "engine/kv_transfer.h"

#include <algorithm>
#include <cmath>

#include "hw/interconnect.h"
#include "sim/log.h"

namespace splitwise::engine {

KvTransferEngine::KvTransferEngine(sim::Simulator& simulator,
                                   model::LlmConfig llm,
                                   std::int64_t layerwise_threshold_tokens,
                                   double compression_ratio)
    : simulator_(simulator), llm_(std::move(llm)),
      layerwiseThreshold_(layerwise_threshold_tokens),
      compressionRatio_(compression_ratio)
{
}

void
KvTransferEngine::registerMachine(Machine* machine)
{
    machines_[machine->id()] = machine;
    nicFreeAt_.emplace(machine->id(), 0);
}

void
KvTransferEngine::injectLinkFault(int machine_id, sim::TimeUs from,
                                  sim::TimeUs until)
{
    if (until <= from)
        sim::fatal("KvTransferEngine::injectLinkFault: empty window");
    linkWindows_[machine_id].push_back({from, until, 0.0});
}

void
KvTransferEngine::injectLinkDegrade(int machine_id, sim::TimeUs from,
                                    sim::TimeUs until, double bandwidth_factor)
{
    if (until <= from)
        sim::fatal("KvTransferEngine::injectLinkDegrade: empty window");
    if (bandwidth_factor <= 0.0 || bandwidth_factor > 1.0)
        sim::fatal("KvTransferEngine::injectLinkDegrade: factor must be "
                   "in (0, 1]");
    linkWindows_[machine_id].push_back({from, until, bandwidth_factor});
}

double
KvTransferEngine::degradeFactorAt(int src_id, int dst_id,
                                  sim::TimeUs at) const
{
    double factor = 1.0;
    for (int id : {src_id, dst_id}) {
        const auto it = linkWindows_.find(id);
        if (it == linkWindows_.end())
            continue;
        for (const LinkWindow& w : it->second) {
            if (w.factor > 0.0 && w.from <= at && at < w.until)
                factor = std::min(factor, w.factor);
        }
    }
    return factor;
}

bool
KvTransferEngine::linkFaultIn(int src_id, int dst_id, sim::TimeUs start,
                              sim::TimeUs end) const
{
    for (int id : {src_id, dst_id}) {
        const auto it = linkWindows_.find(id);
        if (it == linkWindows_.end())
            continue;
        for (const LinkWindow& w : it->second) {
            if (w.factor == 0.0 && w.from < end && start < w.until)
                return true;
        }
    }
    return false;
}

const model::TransferModel&
KvTransferEngine::modelFor(const Machine& src, const Machine& dst)
{
    const auto key = std::make_pair(src.spec().name, dst.spec().name);
    auto it = models_.find(key);
    if (it == models_.end()) {
        const hw::LinkSpec link = hw::linkBetween(src.spec(), dst.spec());
        it = models_
                 .emplace(key, model::TransferModel(llm_, link,
                                                    layerwiseThreshold_,
                                                    compressionRatio_))
                 .first;
    }
    return it->second;
}

sim::TimeUs
KvTransferEngine::interferenceFor(Machine& src, LiveRequest* request,
                                  sim::TimeUs prompt_compute)
{
    const auto dst_it = machines_.find(request->tokenMachine);
    if (dst_it == machines_.end())
        return 0;
    const auto& model = modelFor(src, *dst_it->second);
    if (!model.useLayerwise(request->spec.promptTokens))
        return 0;
    return model.layerwiseInterference(request->spec.promptTokens,
                                       prompt_compute);
}

void
KvTransferEngine::startTransfer(LiveRequest* request, Machine* src,
                                Machine* dst, sim::TimeUs prompt_compute,
                                DoneCallback done)
{
    if (src == dst)
        sim::panic("KvTransferEngine: src == dst");
    request->phase = RequestPhase::kTransferring;
    TELEM_TRANSITION(trace_,
                     telemetry::TraceRecorder::requestTrack(request->spec.id),
                     "kv_transfer", simulator_.now(),
                     {{"src", src->id()}, {"dst", dst->id()}});
    TELEM_REQ_PHASE(spans_, request->spec.id,
                    telemetry::SpanPhase::kKvTransfer, simulator_.now());
    if (dst->failed()) {
        // Destination died between routing and prompt completion:
        // continue the decode locally on the prompt machine.
        request->tokenMachine = src->id();
        src->acceptTransferred(request);
        return;
    }
    // Intermediate flow point: the request-track "kv_transfer" span
    // just opened, linking the prompt machine's handoff arrow through
    // the transfer span to the token machine.
    TELEM_FLOW_STEP(trace_,
                    telemetry::TraceRecorder::requestTrack(request->spec.id),
                    "kv_handoff", simulator_.now(), request->spec.id);
    // KV for the accumulated context plus the next generated token
    // must land on the destination before decoding resumes.
    if (!dst->reserveKv(request, request->contextTokens() + 1)) {
        ++stats_.memoryStalls;
        TELEM_INSTANT(trace_, telemetry::TraceRecorder::requestTrack(
                                  request->spec.id),
                      "kv_memory_stall", simulator_.now(),
                      {{"dst", dst->id()}});
        TELEM_REQ_PHASE(spans_, request->spec.id,
                        telemetry::SpanPhase::kKvStall, simulator_.now());
        waiting_[dst->id()].push_back({request, src, prompt_compute,
                                       request->restartEpoch,
                                       std::move(done)});
        return;
    }
    launch(request, src, dst, prompt_compute, std::move(done));
}

void
KvTransferEngine::launch(LiveRequest* request, Machine* src, Machine* dst,
                         sim::TimeUs prompt_compute, DoneCallback done,
                         int attempt)
{
    // Re-enter the transfer phase: a no-op on the first attempt, and
    // the stall/backoff-to-wire transition on later ones.
    TELEM_REQ_PHASE(spans_, request->spec.id,
                    telemetry::SpanPhase::kKvTransfer, simulator_.now());
    const auto& model = modelFor(*src, *dst);
    const auto plan = model.plan(request->spec.promptTokens, prompt_compute);

    const sim::TimeUs now = simulator_.now();
    const sim::TimeUs start =
        std::max({now, nicFreeAt_[src->id()], nicFreeAt_[dst->id()]});

    sim::TimeUs visible = plan.visibleUs;
    const double factor = degradeFactorAt(src->id(), dst->id(), start);
    if (factor < 1.0) {
        visible = static_cast<sim::TimeUs>(
            static_cast<double>(visible) / factor);
        ++stats_.degradedTransfers;
    }

    // An attempt dies at its timeout, or - when its wire time crosses
    // an injected fault window - at the end of the wasted attempt.
    const bool timed_out =
        retry_.timeoutUs > 0 && visible > retry_.timeoutUs;
    const sim::TimeUs end =
        start + (timed_out ? retry_.timeoutUs : visible);
    const bool faulted =
        !timed_out && linkFaultIn(src->id(), dst->id(), start, end);
    nicFreeAt_[src->id()] = end;
    nicFreeAt_[dst->id()] = end;

    const bool succeeds = !timed_out && !faulted;
    if (succeeds) {
        ++stats_.transfers;
        if (plan.layerwise)
            ++stats_.layerwiseTransfers;
        stats_.bytesMoved += model.kvBytes(request->spec.promptTokens);
        stats_.totalVisibleUs += visible;
    }

    ++inFlight_;
    const std::uint32_t epoch = request->restartEpoch;
    // Fits EventAction's inline buffer (asserted in
    // event_action_test.cc): no allocation per delivery event.
    simulator_.post(end, [this, request, src, dst, epoch, prompt_compute,
                          attempt, timed_out, succeeds,
                          done = std::move(done)]() mutable {
        --inFlight_;
        if (request->restartEpoch != epoch) {
            // A machine failure restarted the request. The failure
            // handler released this incarnation's copies, and the new
            // incarnation may already hold fresh blocks under the same
            // request id - possibly on these very machines - so the
            // stale delivery must not touch any KV.
            return;
        }
        if (dst->failed() || src->failed()) {
            // An endpoint died mid-flight and nothing restarted the
            // request: the surviving endpoint's copy is useless -
            // release it so the blocks cannot leak.
            if (!src->failed())
                src->releaseKv(request);
            if (!dst->failed())
                dst->releaseKv(request);
            return;
        }
        if (!succeeds) {
            if (timed_out)
                ++stats_.transferTimeouts;
            else
                ++stats_.transferFaults;
            TELEM_INSTANT(trace_, telemetry::TraceRecorder::requestTrack(
                                      request->spec.id),
                          timed_out ? "kv_timeout" : "kv_fault",
                          simulator_.now(), {{"attempt", attempt}});
            handleAttemptFailure(request, src, dst, prompt_compute,
                                 std::move(done), attempt);
            return;
        }
        // The prompt machine can drop its copy; the destination
        // owns the cache now.
        if (!src->failed())
            src->releaseKv(request);
#if SPLITWISE_TELEMETRY_ENABLED
        // The destination's first decode iteration will close the
        // cross-machine flow arrow for this request.
        if (trace_)
            trace_->markPendingFlow(request->spec.id);
#endif
        dst->acceptTransferred(request);
        if (done)
            done(request);
    });
}

void
KvTransferEngine::handleAttemptFailure(LiveRequest* request, Machine* src,
                                       Machine* dst,
                                       sim::TimeUs prompt_compute,
                                       DoneCallback done, int attempt)
{
    if (attempt >= retry_.maxRetries) {
        ++stats_.transferAborts;
        abortTransfer(request, src, dst);
        return;
    }
    ++stats_.transferRetries;
    const auto backoff = static_cast<sim::TimeUs>(
        static_cast<double>(retry_.backoffBaseUs) *
        std::pow(retry_.backoffMultiplier, attempt));
    TELEM_INSTANT(trace_,
                  telemetry::TraceRecorder::requestTrack(request->spec.id),
                  "kv_retry", simulator_.now(),
                  {{"attempt", attempt + 1}, {"backoff_us", backoff}});
    TELEM_REQ_PHASE(spans_, request->spec.id,
                    telemetry::SpanPhase::kKvBackoff, simulator_.now());
    const std::uint32_t epoch = request->restartEpoch;
    simulator_.postAfter(
        backoff, [this, request, src, dst, prompt_compute, attempt, epoch,
                  done = std::move(done)]() mutable {
            // A failure handler restarted the request during the
            // backoff; the new incarnation owns its own transfer.
            if (request->restartEpoch != epoch)
                return;
            if (src->failed() || dst->failed()) {
                // An endpoint died during the backoff and nobody
                // restarted the request: give up cleanly so the
                // surviving endpoint's KV copy cannot leak.
                ++stats_.transferAborts;
                abortTransfer(request, src, dst);
                return;
            }
            launch(request, src, dst, prompt_compute, std::move(done),
                   attempt + 1);
        });
}

void
KvTransferEngine::abortTransfer(LiveRequest* request, Machine* src,
                                Machine* dst)
{
    TELEM_INSTANT(trace_,
                  telemetry::TraceRecorder::requestTrack(request->spec.id),
                  "kv_abort", simulator_.now(),
                  {{"src", src->id()}, {"dst", dst->id()}});
    if (!dst->failed())
        dst->releaseKv(request);
    if (!src->failed())
        src->releaseKv(request);
    if (onAbort_)
        onAbort_(request);
}

std::size_t
KvTransferEngine::waitingTransfers() const
{
    std::size_t n = 0;
    for (const auto& [id, queue] : waiting_)
        n += queue.size();
    return n;
}

void
KvTransferEngine::onMemoryFreed(Machine* dst)
{
    auto it = waiting_.find(dst->id());
    if (it == waiting_.end())
        return;
    if (dst->failed()) {
        waiting_.erase(it);
        return;
    }
    auto& queue = it->second;
    while (!queue.empty()) {
        Pending& head = queue.front();
        if (head.request->restartEpoch != head.epoch) {
            // Restarted after a failure; the new incarnation is
            // routed elsewhere.
            queue.pop_front();
            continue;
        }
        if (!dst->reserveKv(head.request, head.request->contextTokens() + 1))
            break;
        Pending pending = std::move(head);
        queue.pop_front();
        launch(pending.request, pending.src, dst, pending.promptCompute,
               std::move(pending.done));
    }
}

}  // namespace splitwise::engine
