#include "engine/kv_transfer.h"

#include <algorithm>

#include "hw/interconnect.h"
#include "sim/log.h"

namespace splitwise::engine {

KvTransferEngine::KvTransferEngine(sim::Simulator& simulator,
                                   model::LlmConfig llm,
                                   std::int64_t layerwise_threshold_tokens,
                                   double compression_ratio)
    : simulator_(simulator), llm_(std::move(llm)),
      layerwiseThreshold_(layerwise_threshold_tokens),
      compressionRatio_(compression_ratio)
{
}

void
KvTransferEngine::registerMachine(Machine* machine)
{
    machines_[machine->id()] = machine;
    nicFreeAt_.emplace(machine->id(), 0);
}

const model::TransferModel&
KvTransferEngine::modelFor(const Machine& src, const Machine& dst)
{
    const auto key = std::make_pair(src.spec().name, dst.spec().name);
    auto it = models_.find(key);
    if (it == models_.end()) {
        const hw::LinkSpec link = hw::linkBetween(src.spec(), dst.spec());
        it = models_
                 .emplace(key, model::TransferModel(llm_, link,
                                                    layerwiseThreshold_,
                                                    compressionRatio_))
                 .first;
    }
    return it->second;
}

sim::TimeUs
KvTransferEngine::interferenceFor(Machine& src, LiveRequest* request,
                                  sim::TimeUs prompt_compute)
{
    const auto dst_it = machines_.find(request->tokenMachine);
    if (dst_it == machines_.end())
        return 0;
    const auto& model = modelFor(src, *dst_it->second);
    if (!model.useLayerwise(request->spec.promptTokens))
        return 0;
    return model.layerwiseInterference(request->spec.promptTokens,
                                       prompt_compute);
}

void
KvTransferEngine::startTransfer(LiveRequest* request, Machine* src,
                                Machine* dst, sim::TimeUs prompt_compute,
                                DoneCallback done)
{
    if (src == dst)
        sim::panic("KvTransferEngine: src == dst");
    request->phase = RequestPhase::kTransferring;
    if (dst->failed()) {
        // Destination died between routing and prompt completion:
        // continue the decode locally on the prompt machine.
        request->tokenMachine = src->id();
        src->acceptTransferred(request);
        return;
    }
    // KV for the accumulated context plus the next generated token
    // must land on the destination before decoding resumes.
    if (!dst->reserveKv(request, request->contextTokens() + 1)) {
        ++stats_.memoryStalls;
        waiting_[dst->id()].push_back({request, src, prompt_compute,
                                       request->restartEpoch,
                                       std::move(done)});
        return;
    }
    launch(request, src, dst, prompt_compute, std::move(done));
}

void
KvTransferEngine::launch(LiveRequest* request, Machine* src, Machine* dst,
                         sim::TimeUs prompt_compute, DoneCallback done)
{
    const auto& model = modelFor(*src, *dst);
    const auto plan = model.plan(request->spec.promptTokens, prompt_compute);

    const sim::TimeUs now = simulator_.now();
    const sim::TimeUs start =
        std::max({now, nicFreeAt_[src->id()], nicFreeAt_[dst->id()]});
    const sim::TimeUs end = start + plan.visibleUs;
    nicFreeAt_[src->id()] = end;
    nicFreeAt_[dst->id()] = end;

    ++stats_.transfers;
    if (plan.layerwise)
        ++stats_.layerwiseTransfers;
    stats_.bytesMoved += model.kvBytes(request->spec.promptTokens);
    stats_.totalVisibleUs += plan.visibleUs;

    const std::uint32_t epoch = request->restartEpoch;
    simulator_.schedule(end, [this, request, src, dst, epoch,
                              done = std::move(done)]() mutable {
        // A machine failure restarted the request (epoch bumped) or
        // killed an endpoint mid-flight: drop the stale delivery.
        if (request->restartEpoch != epoch || dst->failed()) {
            if (!src->failed())
                src->releaseKv(request);
            return;
        }
        // The prompt machine can drop its copy; the destination
        // owns the cache now.
        if (!src->failed())
            src->releaseKv(request);
        dst->acceptTransferred(request);
        if (done)
            done(request);
    });
}

void
KvTransferEngine::onMemoryFreed(Machine* dst)
{
    auto it = waiting_.find(dst->id());
    if (it == waiting_.end())
        return;
    if (dst->failed()) {
        waiting_.erase(it);
        return;
    }
    auto& queue = it->second;
    while (!queue.empty()) {
        Pending& head = queue.front();
        if (head.request->restartEpoch != head.epoch) {
            // Restarted after a failure; the new incarnation is
            // routed elsewhere.
            queue.pop_front();
            continue;
        }
        if (!dst->reserveKv(head.request, head.request->contextTokens() + 1))
            break;
        Pending pending = std::move(head);
        queue.pop_front();
        launch(pending.request, pending.src, dst, pending.promptCompute,
               std::move(pending.done));
    }
}

}  // namespace splitwise::engine
