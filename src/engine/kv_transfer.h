#ifndef SPLITWISE_ENGINE_KV_TRANSFER_H_
#define SPLITWISE_ENGINE_KV_TRANSFER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "engine/machine.h"
#include "engine/request.h"
#include "model/llm_config.h"
#include "model/transfer_model.h"
#include "sim/simulator.h"
#include "telemetry/telemetry.h"

namespace splitwise::engine {

/**
 * Transient-fault handling policy for KV-cache transfers.
 *
 * A transfer attempt that a link fault kills (or that outlives its
 * timeout) is retried with exponential backoff while the destination
 * reservation is kept warm. Only once the retry budget is exhausted
 * does the engine abort and hand the request back to its owner for a
 * from-scratch restart - the paper's blunt recovery policy becomes
 * the last resort rather than the only answer.
 */
struct KvRetryPolicy {
    /** Re-attempts after the first failed try; 0 = fail fast. */
    int maxRetries = 3;
    /** Backoff before the first retry. */
    sim::TimeUs backoffBaseUs = 2000;
    /** Growth factor of successive backoffs. */
    double backoffMultiplier = 2.0;
    /** Per-attempt wall-clock timeout; 0 disables timeouts. */
    sim::TimeUs timeoutUs = 0;
};

/**
 * Simulated MSCCL++-style KV-cache mover between machines
 * (paper SIV-C, SV-A).
 *
 * When a prompt completes on a prompt machine, the engine reserves
 * KV blocks on the destination token machine, occupies both NICs
 * for the transfer's visible duration (serialized for small
 * prompts, layer-wise overlapped for large ones), then hands the
 * request to the destination. Transfers that cannot reserve
 * destination memory wait in a per-destination queue and retry when
 * blocks free up - the paper's "MLS starts queueing tokens once the
 * machine is close to running out of memory".
 *
 * Fault model: a NIC/link can be marked faulty or degraded for a
 * time window (injectLinkFault / injectLinkDegrade). Attempts whose
 * wire time overlaps a fault window fail and are retried per the
 * KvRetryPolicy; degraded windows stretch the visible transfer time
 * by the inverse bandwidth factor.
 */
class KvTransferEngine {
  public:
    /** Aggregate transfer statistics. */
    struct Stats {
        std::uint64_t transfers = 0;
        std::uint64_t layerwiseTransfers = 0;
        std::int64_t bytesMoved = 0;
        sim::TimeUs totalVisibleUs = 0;
        std::uint64_t memoryStalls = 0;
        /** Attempts killed by an injected link fault. */
        std::uint64_t transferFaults = 0;
        /** Attempts that outlived the per-attempt timeout. */
        std::uint64_t transferTimeouts = 0;
        /** Backoff-delayed re-attempts scheduled. */
        std::uint64_t transferRetries = 0;
        /** Transfers given up after exhausting the retry budget. */
        std::uint64_t transferAborts = 0;
        /** Attempts priced under a degraded-bandwidth window. */
        std::uint64_t degradedTransfers = 0;
    };

    using DoneCallback = std::function<void(LiveRequest*)>;
    /** Invoked when a transfer exhausts its retry budget. */
    using AbortCallback = std::function<void(LiveRequest*)>;

    /**
     * @param layerwise_threshold_tokens Prompt size at or above
     *     which layer-wise transfer is used.
     * @param compression_ratio Wire-size divisor from KV-cache
     *     compression before transfer (paper SVII); 1.0 = raw.
     */
    KvTransferEngine(sim::Simulator& simulator, model::LlmConfig llm,
                     std::int64_t layerwise_threshold_tokens = 512,
                     double compression_ratio = 1.0);

    /** Make a machine addressable as a transfer endpoint. */
    void registerMachine(Machine* machine);

    /** Install the transient-fault retry policy. */
    void setRetryPolicy(KvRetryPolicy policy) { retry_ = policy; }

    const KvRetryPolicy& retryPolicy() const { return retry_; }

    /**
     * Install the owner's give-up hook. The request's source-side and
     * destination-side KV is already released when it fires; the
     * owner restarts the request from scratch.
     */
    void setOnAbort(AbortCallback on_abort) { onAbort_ = std::move(on_abort); }

    /**
     * Mark @p machine_id's NIC faulty during [from, until): any
     * transfer attempt whose wire time overlaps the window fails.
     */
    void injectLinkFault(int machine_id, sim::TimeUs from, sim::TimeUs until);

    /**
     * Degrade @p machine_id's NIC bandwidth to @p bandwidth_factor of
     * nominal (0 < factor <= 1) during [from, until): attempts
     * starting inside the window take 1/factor times longer.
     */
    void injectLinkDegrade(int machine_id, sim::TimeUs from,
                           sim::TimeUs until, double bandwidth_factor);

    /**
     * Begin moving a request's KV-cache from @p src to @p dst.
     *
     * @param prompt_compute Duration of the prompt iteration the
     *     transfer overlapped with.
     * @param done Invoked after the destination accepted the
     *     request (may be null).
     */
    void startTransfer(LiveRequest* request, Machine* src, Machine* dst,
                       sim::TimeUs prompt_compute, DoneCallback done);

    /**
     * TTFT interference a layer-wise transfer inflicts on the prompt
     * iteration (wired into Machine::Callbacks::transferInterference).
     */
    sim::TimeUs interferenceFor(Machine& src, LiveRequest* request,
                                sim::TimeUs prompt_compute);

    /** Retry transfers stalled on @p dst's memory. */
    void onMemoryFreed(Machine* dst);

    const Stats& stats() const { return stats_; }

    /** Attach a trace recorder for transfer spans/instants. */
    void setTrace(telemetry::TraceRecorder* trace) { trace_ = trace; }

    /** Attach a span tracker for transfer/stall/backoff attribution. */
    void setSpans(telemetry::SpanTracker* spans) { spans_ = spans; }

    /** Transfer attempts currently occupying wire time. */
    std::size_t inFlightTransfers() const { return inFlight_; }

    /** Transfers parked waiting for destination KV memory. */
    std::size_t waitingTransfers() const;

  private:
    struct Pending {
        LiveRequest* request = nullptr;
        Machine* src = nullptr;
        sim::TimeUs promptCompute = 0;
        std::uint32_t epoch = 0;
        DoneCallback done;
    };

    /** A scheduled NIC fault or degradation window. */
    struct LinkWindow {
        sim::TimeUs from = 0;
        sim::TimeUs until = 0;
        /** Bandwidth multiplier; 0 marks a hard fault window. */
        double factor = 0.0;
    };

    /** Transfer model for a machine pair (cached per spec pair). */
    const model::TransferModel& modelFor(const Machine& src,
                                         const Machine& dst);

    /** Launch attempt @p attempt of a transfer whose destination
     *  memory is reserved. */
    void launch(LiveRequest* request, Machine* src, Machine* dst,
                sim::TimeUs prompt_compute, DoneCallback done,
                int attempt = 0);

    /** Slowest degraded-bandwidth factor covering @p at on either
     *  endpoint; 1.0 when undegraded. */
    double degradeFactorAt(int src_id, int dst_id, sim::TimeUs at) const;

    /** True when a fault window on either endpoint overlaps
     *  [start, end). */
    bool linkFaultIn(int src_id, int dst_id, sim::TimeUs start,
                     sim::TimeUs end) const;

    /** A failed attempt: retry after backoff or abort. */
    void handleAttemptFailure(LiveRequest* request, Machine* src,
                              Machine* dst, sim::TimeUs prompt_compute,
                              DoneCallback done, int attempt);

    /** Give up on the transfer: release both ends, tell the owner. */
    void abortTransfer(LiveRequest* request, Machine* src, Machine* dst);

    sim::Simulator& simulator_;
    model::LlmConfig llm_;
    std::int64_t layerwiseThreshold_;
    double compressionRatio_;
    KvRetryPolicy retry_;
    AbortCallback onAbort_;
    std::unordered_map<int, Machine*> machines_;
    /** NIC availability per machine id. */
    std::unordered_map<int, sim::TimeUs> nicFreeAt_;
    /** Injected fault/degradation windows per machine id. */
    std::unordered_map<int, std::vector<LinkWindow>> linkWindows_;
    /** Cached transfer models keyed by (src spec, dst spec) names. */
    std::map<std::pair<std::string, std::string>, model::TransferModel>
        models_;
    /** Transfers waiting for destination memory, per machine id. */
    std::unordered_map<int, std::deque<Pending>> waiting_;
    Stats stats_;
    telemetry::TraceRecorder* trace_ = nullptr;
    telemetry::SpanTracker* spans_ = nullptr;
    std::size_t inFlight_ = 0;
};

}  // namespace splitwise::engine

#endif  // SPLITWISE_ENGINE_KV_TRANSFER_H_
