#ifndef SPLITWISE_ENGINE_KV_TRANSFER_H_
#define SPLITWISE_ENGINE_KV_TRANSFER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>

#include "engine/machine.h"
#include "engine/request.h"
#include "model/llm_config.h"
#include "model/transfer_model.h"
#include "sim/simulator.h"

namespace splitwise::engine {

/**
 * Simulated MSCCL++-style KV-cache mover between machines
 * (paper SIV-C, SV-A).
 *
 * When a prompt completes on a prompt machine, the engine reserves
 * KV blocks on the destination token machine, occupies both NICs
 * for the transfer's visible duration (serialized for small
 * prompts, layer-wise overlapped for large ones), then hands the
 * request to the destination. Transfers that cannot reserve
 * destination memory wait in a per-destination queue and retry when
 * blocks free up - the paper's "MLS starts queueing tokens once the
 * machine is close to running out of memory".
 */
class KvTransferEngine {
  public:
    /** Aggregate transfer statistics. */
    struct Stats {
        std::uint64_t transfers = 0;
        std::uint64_t layerwiseTransfers = 0;
        std::int64_t bytesMoved = 0;
        sim::TimeUs totalVisibleUs = 0;
        std::uint64_t memoryStalls = 0;
    };

    using DoneCallback = std::function<void(LiveRequest*)>;

    /**
     * @param layerwise_threshold_tokens Prompt size at or above
     *     which layer-wise transfer is used.
     * @param compression_ratio Wire-size divisor from KV-cache
     *     compression before transfer (paper SVII); 1.0 = raw.
     */
    KvTransferEngine(sim::Simulator& simulator, model::LlmConfig llm,
                     std::int64_t layerwise_threshold_tokens = 512,
                     double compression_ratio = 1.0);

    /** Make a machine addressable as a transfer endpoint. */
    void registerMachine(Machine* machine);

    /**
     * Begin moving a request's KV-cache from @p src to @p dst.
     *
     * @param prompt_compute Duration of the prompt iteration the
     *     transfer overlapped with.
     * @param done Invoked after the destination accepted the
     *     request (may be null).
     */
    void startTransfer(LiveRequest* request, Machine* src, Machine* dst,
                       sim::TimeUs prompt_compute, DoneCallback done);

    /**
     * TTFT interference a layer-wise transfer inflicts on the prompt
     * iteration (wired into Machine::Callbacks::transferInterference).
     */
    sim::TimeUs interferenceFor(Machine& src, LiveRequest* request,
                                sim::TimeUs prompt_compute);

    /** Retry transfers stalled on @p dst's memory. */
    void onMemoryFreed(Machine* dst);

    const Stats& stats() const { return stats_; }

  private:
    struct Pending {
        LiveRequest* request = nullptr;
        Machine* src = nullptr;
        sim::TimeUs promptCompute = 0;
        std::uint32_t epoch = 0;
        DoneCallback done;
    };

    /** Transfer model for a machine pair (cached per spec pair). */
    const model::TransferModel& modelFor(const Machine& src,
                                         const Machine& dst);

    /** Launch a transfer whose destination memory is reserved. */
    void launch(LiveRequest* request, Machine* src, Machine* dst,
                sim::TimeUs prompt_compute, DoneCallback done);

    sim::Simulator& simulator_;
    model::LlmConfig llm_;
    std::int64_t layerwiseThreshold_;
    double compressionRatio_;
    std::unordered_map<int, Machine*> machines_;
    /** NIC availability per machine id. */
    std::unordered_map<int, sim::TimeUs> nicFreeAt_;
    /** Cached transfer models keyed by (src spec, dst spec) names. */
    std::map<std::pair<std::string, std::string>, model::TransferModel>
        models_;
    /** Transfers waiting for destination memory, per machine id. */
    std::unordered_map<int, std::deque<Pending>> waiting_;
    Stats stats_;
};

}  // namespace splitwise::engine

#endif  // SPLITWISE_ENGINE_KV_TRANSFER_H_
