#ifndef SPLITWISE_ENGINE_BLOCK_MANAGER_H_
#define SPLITWISE_ENGINE_BLOCK_MANAGER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace splitwise::engine {

/** Hit/miss/evict accounting for the shared-prefix tier. Survives
 *  reset() so a machine's counters span crash/recovery cycles. */
struct PrefixCacheStats {
    /** Successful prefix acquisitions (one per reusing request). */
    std::uint64_t hits = 0;
    /** Failed acquisitions: the prefix was evicted, or the request
     *  was routed to a machine that never held it. The scheduling
     *  policy counts directory-level misses separately. */
    std::uint64_t misses = 0;
    /** Refcount-zero prefixes evicted under memory pressure. */
    std::uint64_t evictions = 0;
    /** Prefix inserts plus in-place growths. */
    std::uint64_t stores = 0;
    /** Prompt tokens skipped across all hits. */
    std::int64_t hitTokens = 0;
};

/** One request's pin on a shared prefix (for the DST checker). */
struct PrefixReference {
    std::uint64_t requestId = 0;
    std::uint64_t key = 0;
    /** The prefix size when acquired; the entry may grow later. */
    std::int64_t tokens = 0;
};

/**
 * Paged KV-cache allocator, in the style of vLLM's block manager.
 *
 * GPU memory for the KV cache is carved into fixed-size blocks of
 * @c blockSize tokens. Each request owns a block table that grows as
 * its context grows during decoding. Paging eliminates external
 * fragmentation; internal fragmentation is at most one block per
 * request, which utilization() accounts for.
 *
 * On top of the per-request tables sits a shared-prefix tier for
 * session KV reuse: ref-counted prefix entries keyed by session,
 * evicted LRU-at-refcount-zero, and evicted automatically whenever a
 * per-request allocation needs the space (the cache is strictly
 * opportunistic use of free memory). A request that acquirePrefix()'d
 * an entry has that many tokens of its context priced out of its own
 * allocations: allocate()/extend() are called with full context sizes
 * and deduct the pinned prefix internally.
 */
class BlockManager {
  public:
    /**
     * @param capacity_tokens Total KV capacity in tokens.
     * @param block_size_tokens Tokens per block (vLLM default 16).
     */
    BlockManager(std::int64_t capacity_tokens, int block_size_tokens = 16);

    /** Total blocks in the pool. */
    std::int64_t totalBlocks() const { return totalBlocks_; }

    /** Total token capacity of the pool. */
    std::int64_t
    tokenCapacity() const
    {
        return totalBlocks_ * blockSize_;
    }

    /** Currently unallocated blocks. */
    std::int64_t freeBlocks() const { return totalBlocks_ - usedBlocks_; }

    /** Tokens that could still be stored in free blocks. */
    std::int64_t
    freeTokens() const
    {
        return freeBlocks() * blockSize_;
    }

    /** Blocks needed to hold @p tokens. */
    std::int64_t blocksFor(std::int64_t tokens) const;

    /** True when @p tokens more could be allocated right now,
     *  counting reclaimable (refcount-zero) prefix blocks as free. */
    bool canAllocate(std::int64_t tokens) const;

    /**
     * Allocate the block table for a new request holding @p tokens
     * of context. A pinned shared prefix (acquirePrefix) is deducted
     * from @p tokens first; refcount-zero prefixes are evicted LRU as
     * needed to make room.
     *
     * @return false (and allocate nothing) when the pool is full or
     *     the request already holds an allocation.
     */
    bool allocate(std::uint64_t request_id, std::int64_t tokens);

    /**
     * Grow a request's context to @p new_total_tokens, allocating
     * blocks as needed (net of any pinned shared prefix, evicting
     * reclaimable prefixes as needed).
     *
     * @return false (leaving the allocation untouched) when the pool
     *     cannot cover the growth.
     */
    bool extend(std::uint64_t request_id, std::int64_t new_total_tokens);

    /** Check whether extend() to @p new_total_tokens would succeed. */
    bool canExtend(std::uint64_t request_id,
                   std::int64_t new_total_tokens) const;

    /** Release a request's blocks and drop its shared-prefix pin (if
     *  any); no-op for unknown ids. */
    void release(std::uint64_t request_id);

    /** True when the request holds an allocation. */
    bool holds(std::uint64_t request_id) const;

    /** Tokens recorded for the request's own allocation, net of any
     *  pinned shared prefix (0 if absent). */
    std::int64_t tokensOf(std::uint64_t request_id) const;

    /** Total context tokens currently stored (pre-rounding),
     *  including the shared-prefix tier. */
    std::int64_t usedTokens() const { return usedTokens_; }

    /** usedTokens() minus reclaimable (refcount-zero) prefix tokens:
     *  the load a scheduler should see, since the cache yields to
     *  real traffic. Equal to usedTokens() when the cache is empty. */
    std::int64_t
    committedTokens() const
    {
        return usedTokens_ - reclaimableTokens_;
    }

    /** Fraction of blocks in use (including the shared tier). */
    double utilization() const;

    /** Fraction of blocks in use that cannot be reclaimed by
     *  evicting refcount-zero prefixes. */
    double committedUtilization() const;

    /** Number of requests holding allocations. */
    std::size_t residents() const { return table_.size(); }

    /** Ids of every request holding an allocation (sorted). */
    std::vector<std::uint64_t> heldRequestIds() const;

    /**
     * Drop every allocation, prefix entry, and prefix pin, returning
     * the pool to empty. Stats survive: a machine crash wipes its KV
     * (and its cached prefixes) but not its lifetime counters.
     */
    void reset();

    // Shared-prefix tier -------------------------------------------------

    /**
     * Cached prefix tokens for @p key (0 = not cached). Bumps the
     * entry's LRU position: the caller is about to route against it.
     */
    std::int64_t lookupPrefix(std::uint64_t key);

    /**
     * Insert or grow the cached prefix for @p key to @p tokens,
     * evicting refcount-zero prefixes LRU as needed. Entries never
     * shrink; storing fewer tokens than cached just bumps the LRU.
     *
     * @return false (cache unchanged) when the pool cannot make room.
     */
    bool storePrefix(std::uint64_t key, std::int64_t tokens);

    /**
     * Pin the prefix for @p key on behalf of @p request_id:
     * refcount+1, and the entry's current size is deducted from the
     * request's subsequent allocate()/extend() calls. Counted as a
     * hit; a pinned entry cannot be evicted.
     *
     * @return false (counted as a miss) when the key is not cached or
     *     the request already pins a prefix.
     */
    bool acquirePrefix(std::uint64_t key, std::uint64_t request_id);

    /** The tokens pinned by @p request_id's prefix reference (0 if
     *  none): the request's acquire-time prefix size. */
    std::int64_t prefixTokensHeldBy(std::uint64_t request_id) const;

    /** Number of cached prefix entries. */
    std::size_t sharedPrefixCount() const { return prefixes_.size(); }

    /** Blocks held by the shared-prefix tier. */
    std::int64_t sharedBlocks() const { return sharedBlocks_; }

    /** Refcount of @p key's entry; -1 when not cached. */
    std::int64_t prefixRefcount(std::uint64_t key) const;

    /** Every live prefix pin, sorted by request id (DST checker). */
    std::vector<PrefixReference> prefixReferences() const;

    /** Lifetime hit/miss/evict/store counters. */
    const PrefixCacheStats& prefixStats() const { return stats_; }

    /**
     * Audit the allocator's internal accounting: per-allocation block
     * counts match blocksFor(), the used-block/used-token aggregates
     * equal the table sums (private tables plus the shared tier),
     * per-entry refcounts equal the number of pins pointing at them,
     * and usage stays within [0, capacity]. The DST invariant checker
     * calls this at every quiescent point; a leak or double-release
     * shows up as an aggregate mismatch.
     *
     * @return Empty string when consistent, else a description of
     *     the first inconsistency found.
     */
    std::string audit() const;

  private:
    struct Allocation {
        std::int64_t tokens = 0;
        std::int64_t blocks = 0;
    };

    struct SharedPrefix {
        std::int64_t tokens = 0;
        std::int64_t blocks = 0;
        std::int64_t refcount = 0;
        /** LRU position: larger = more recently used. */
        std::uint64_t lastUse = 0;
    };

    struct PrefixPin {
        std::uint64_t key = 0;
        std::int64_t tokens = 0;
    };

    /** Evict refcount-zero prefixes (LRU first, key as tie-break)
     *  until at least @p need_blocks are free. */
    bool reclaimFor(std::int64_t need_blocks);

    /** Blocks reclaimable right now from refcount-zero prefixes. */
    std::int64_t reclaimableBlocks() const { return reclaimableBlocks_; }

    void touch(SharedPrefix& entry) { entry.lastUse = ++useTick_; }

    std::int64_t totalBlocks_ = 0;
    std::int64_t usedBlocks_ = 0;
    std::int64_t usedTokens_ = 0;
    std::int64_t sharedBlocks_ = 0;
    std::int64_t sharedTokens_ = 0;
    std::int64_t reclaimableBlocks_ = 0;
    std::int64_t reclaimableTokens_ = 0;
    int blockSize_ = 16;
    std::uint64_t useTick_ = 0;
    std::unordered_map<std::uint64_t, Allocation> table_;
    std::unordered_map<std::uint64_t, SharedPrefix> prefixes_;
    std::unordered_map<std::uint64_t, PrefixPin> pins_;
    PrefixCacheStats stats_;
};

}  // namespace splitwise::engine

#endif  // SPLITWISE_ENGINE_BLOCK_MANAGER_H_
