#ifndef SPLITWISE_ENGINE_BLOCK_MANAGER_H_
#define SPLITWISE_ENGINE_BLOCK_MANAGER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace splitwise::engine {

/**
 * Paged KV-cache allocator, in the style of vLLM's block manager.
 *
 * GPU memory for the KV cache is carved into fixed-size blocks of
 * @c blockSize tokens. Each request owns a block table that grows as
 * its context grows during decoding. Paging eliminates external
 * fragmentation; internal fragmentation is at most one block per
 * request, which utilization() accounts for.
 */
class BlockManager {
  public:
    /**
     * @param capacity_tokens Total KV capacity in tokens.
     * @param block_size_tokens Tokens per block (vLLM default 16).
     */
    BlockManager(std::int64_t capacity_tokens, int block_size_tokens = 16);

    /** Total blocks in the pool. */
    std::int64_t totalBlocks() const { return totalBlocks_; }

    /** Total token capacity of the pool. */
    std::int64_t
    tokenCapacity() const
    {
        return totalBlocks_ * blockSize_;
    }

    /** Currently unallocated blocks. */
    std::int64_t freeBlocks() const { return totalBlocks_ - usedBlocks_; }

    /** Tokens that could still be stored in free blocks. */
    std::int64_t
    freeTokens() const
    {
        return freeBlocks() * blockSize_;
    }

    /** Blocks needed to hold @p tokens. */
    std::int64_t blocksFor(std::int64_t tokens) const;

    /** True when @p tokens more could be allocated right now. */
    bool canAllocate(std::int64_t tokens) const;

    /**
     * Allocate the block table for a new request holding @p tokens
     * of context.
     *
     * @return false (and allocate nothing) when the pool is full or
     *     the request already holds an allocation.
     */
    bool allocate(std::uint64_t request_id, std::int64_t tokens);

    /**
     * Grow a request's context to @p new_total_tokens, allocating
     * blocks as needed.
     *
     * @return false (leaving the allocation untouched) when the pool
     *     cannot cover the growth.
     */
    bool extend(std::uint64_t request_id, std::int64_t new_total_tokens);

    /** Check whether extend() to @p new_total_tokens would succeed. */
    bool canExtend(std::uint64_t request_id,
                   std::int64_t new_total_tokens) const;

    /** Release a request's blocks; no-op for unknown ids. */
    void release(std::uint64_t request_id);

    /** True when the request holds an allocation. */
    bool holds(std::uint64_t request_id) const;

    /** Tokens recorded for the request (0 if absent). */
    std::int64_t tokensOf(std::uint64_t request_id) const;

    /** Total context tokens currently stored (pre-rounding). */
    std::int64_t usedTokens() const { return usedTokens_; }

    /** Fraction of blocks in use. */
    double utilization() const;

    /** Number of requests holding allocations. */
    std::size_t residents() const { return table_.size(); }

    /** Ids of every request holding an allocation (sorted). */
    std::vector<std::uint64_t> heldRequestIds() const;

    /**
     * Audit the allocator's internal accounting: per-allocation block
     * counts match blocksFor(), the used-block/used-token aggregates
     * equal the table sums, and usage stays within [0, capacity].
     * The DST invariant checker calls this at every quiescent point;
     * a leak or double-release shows up as an aggregate mismatch.
     *
     * @return Empty string when consistent, else a description of
     *     the first inconsistency found.
     */
    std::string audit() const;

  private:
    struct Allocation {
        std::int64_t tokens = 0;
        std::int64_t blocks = 0;
    };

    std::int64_t totalBlocks_ = 0;
    std::int64_t usedBlocks_ = 0;
    std::int64_t usedTokens_ = 0;
    int blockSize_ = 16;
    std::unordered_map<std::uint64_t, Allocation> table_;
};

}  // namespace splitwise::engine

#endif  // SPLITWISE_ENGINE_BLOCK_MANAGER_H_
