#ifndef SPLITWISE_ENGINE_REQUEST_H_
#define SPLITWISE_ENGINE_REQUEST_H_

#include <cstdint>

#include "metrics/request_metrics.h"
#include "sim/time.h"
#include "workload/trace.h"

namespace splitwise::engine {

/** Lifecycle of an inference request inside the cluster. */
enum class RequestPhase {
    /** Waiting in a prompt queue. */
    kPromptQueued,
    /** Prompt tokens being computed this iteration. */
    kPromptRunning,
    /** KV-cache in flight to the token machine. */
    kTransferring,
    /** Resident on a token machine, generating. */
    kDecoding,
    /** All output tokens produced. */
    kDone,
    /** Shed by admission control before any work ran (terminal). */
    kRejected,
};

/** Human-readable phase name. */
const char* requestPhaseName(RequestPhase phase);

/**
 * Mutable simulation state of one request.
 *
 * Owned by the cluster; machines and the transfer engine hold
 * non-owning pointers while the request is in flight.
 */
struct LiveRequest {
    workload::Request spec;
    RequestPhase phase = RequestPhase::kPromptQueued;

    /** Output tokens produced so far (the prompt yields the first). */
    std::int64_t generated = 0;

    /**
     * Prompt tokens already computed in earlier chunked-prefill
     * iterations (Sarathi-style mixed batching splits prompts into
     * chunks so co-scheduled decodes keep bounded latency).
     */
    std::int64_t promptProcessed = 0;

    /** Prompt tokens assigned to the current iteration's chunk. */
    std::int64_t chunkTokens = 0;

    sim::TimeUs firstTokenTime = -1;
    sim::TimeUs prevTokenTime = -1;
    sim::TimeUs doneTime = -1;

    /** Sum and max of inter-token gaps, for TBT metrics. */
    double sumTbtMs = 0.0;
    double maxTbtMs = 0.0;
    /** Gap between first and second token (KV transfer shows here). */
    double secondTokenMs = 0.0;

    /** Times the token phase was preempted or recomputed. */
    int preemptions = 0;
    /** Iterations this request sat resident but unscheduled. */
    int starvedIterations = 0;
    /** Times the request restarted after a machine failure (SIV-E). */
    int restarts = 0;
    /**
     * Bumped on every restart; in-flight events captured under an
     * older epoch must not touch the request.
     */
    std::uint32_t restartEpoch = 0;

    /** Machine ids; -1 while unassigned. Equal ids mean no transfer. */
    int promptMachine = -1;
    int tokenMachine = -1;

    /**
     * Leading prompt tokens served from a shared session prefix
     * (prefix-cache policy): set at routing, pinned at submit, and
     * priced out of prefill — the machine computes only the suffix.
     * 0 = full prefill (default policy, or a cache miss).
     */
    std::int64_t cachedPrefixTokens = 0;

    /**
     * Slot index inside the owning RequestPool; pool bookkeeping
     * only. Preserved (with restartEpoch) across slot recycling.
     */
    std::uint32_t poolSlot = 0;

    /** KV context tokens accumulated so far. */
    std::int64_t
    contextTokens() const
    {
        return spec.promptTokens + generated;
    }

    /** True once every output token has been produced. */
    bool
    finished() const
    {
        return generated >= spec.outputTokens;
    }

    /** True when admission control shed the request. */
    bool
    rejected() const
    {
        return phase == RequestPhase::kRejected;
    }

    /** True when the request needs no further simulation work. */
    bool
    terminal() const
    {
        return finished() || rejected();
    }

    /**
     * Account one produced token at simulated time @p now, updating
     * TTFT/TBT bookkeeping.
     */
    void recordToken(sim::TimeUs now);

    /**
     * Reset all execution state for a from-scratch restart after a
     * machine failure (SIV-E). The arrival time is kept, so the
     * recorded TTFT/E2E include the lost work.
     */
    void resetForRestart();

    /** Convert to the final metrics record (valid once finished). */
    metrics::RequestResult result() const;
};

}  // namespace splitwise::engine

#endif  // SPLITWISE_ENGINE_REQUEST_H_
