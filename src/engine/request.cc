#include "engine/request.h"

#include <algorithm>

#include "sim/log.h"

namespace splitwise::engine {

const char*
requestPhaseName(RequestPhase phase)
{
    switch (phase) {
      case RequestPhase::kPromptQueued: return "prompt-queued";
      case RequestPhase::kPromptRunning: return "prompt-running";
      case RequestPhase::kTransferring: return "transferring";
      case RequestPhase::kDecoding: return "decoding";
      case RequestPhase::kDone: return "done";
      case RequestPhase::kRejected: return "rejected";
    }
    return "?";
}

void
LiveRequest::recordToken(sim::TimeUs now)
{
    ++generated;
    if (generated == 1) {
        firstTokenTime = now;
    } else {
        const double gap_ms = sim::usToMs(now - prevTokenTime);
        sumTbtMs += gap_ms;
        if (generated == 2) {
            // The second token carries the one-off KV-transfer cost;
            // it is reported separately (secondTokenMs) and excluded
            // from the steady-state streaming tail.
            secondTokenMs = gap_ms;
        } else {
            maxTbtMs = std::max(maxTbtMs, gap_ms);
        }
    }
    prevTokenTime = now;
    if (finished())
        doneTime = now;
}

void
LiveRequest::resetForRestart()
{
    phase = RequestPhase::kPromptQueued;
    generated = 0;
    promptProcessed = 0;
    chunkTokens = 0;
    firstTokenTime = -1;
    prevTokenTime = -1;
    doneTime = -1;
    sumTbtMs = 0.0;
    maxTbtMs = 0.0;
    secondTokenMs = 0.0;
    starvedIterations = 0;
    promptMachine = -1;
    tokenMachine = -1;
    // A restart re-routes from scratch; any prefix pin was dropped
    // with the machine's KV, and the policy re-decides hit vs miss.
    cachedPrefixTokens = 0;
    ++restarts;
    ++restartEpoch;
}

metrics::RequestResult
LiveRequest::result() const
{
    if (!finished() || doneTime < 0)
        sim::panic("LiveRequest::result on unfinished request");
    metrics::RequestResult r;
    r.requestId = spec.id;
    r.arrival = spec.arrival;
    r.promptTokens = spec.promptTokens;
    r.outputTokens = spec.outputTokens;
    r.ttftMs = sim::usToMs(firstTokenTime - spec.arrival);
    const auto gaps = spec.outputTokens - 1;
    r.tbtMs = gaps > 0 ? sumTbtMs / static_cast<double>(gaps) : 0.0;
    r.maxTbtMs = maxTbtMs;
    r.e2eMs = sim::usToMs(doneTime - spec.arrival);
    r.secondTokenMs = secondTokenMs;
    r.preemptions = preemptions;
    return r;
}

}  // namespace splitwise::engine
