#include "engine/block_manager.h"

#include <algorithm>

#include "sim/log.h"

namespace splitwise::engine {

BlockManager::BlockManager(std::int64_t capacity_tokens, int block_size_tokens)
    : blockSize_(block_size_tokens)
{
    if (block_size_tokens <= 0)
        sim::fatal("BlockManager: block size must be positive");
    if (capacity_tokens < 0)
        sim::fatal("BlockManager: negative capacity");
    totalBlocks_ = capacity_tokens / blockSize_;
}

std::int64_t
BlockManager::blocksFor(std::int64_t tokens) const
{
    return (tokens + blockSize_ - 1) / blockSize_;
}

bool
BlockManager::canAllocate(std::int64_t tokens) const
{
    return blocksFor(tokens) <= freeBlocks();
}

bool
BlockManager::allocate(std::uint64_t request_id, std::int64_t tokens)
{
    if (tokens < 0)
        sim::panic("BlockManager::allocate with negative tokens");
    if (table_.count(request_id) > 0)
        return false;
    const std::int64_t need = blocksFor(tokens);
    if (need > freeBlocks())
        return false;
    table_[request_id] = {tokens, need};
    usedBlocks_ += need;
    usedTokens_ += tokens;
    return true;
}

bool
BlockManager::canExtend(std::uint64_t request_id,
                        std::int64_t new_total_tokens) const
{
    const auto it = table_.find(request_id);
    if (it == table_.end())
        return false;
    const std::int64_t need = blocksFor(new_total_tokens) - it->second.blocks;
    return need <= freeBlocks();
}

bool
BlockManager::extend(std::uint64_t request_id, std::int64_t new_total_tokens)
{
    const auto it = table_.find(request_id);
    if (it == table_.end())
        return false;
    if (new_total_tokens <= it->second.tokens) {
        // Contexts only grow; a no-op extension is still a success.
        return true;
    }
    const std::int64_t need = blocksFor(new_total_tokens) - it->second.blocks;
    if (need > freeBlocks())
        return false;
    usedTokens_ += new_total_tokens - it->second.tokens;
    it->second.tokens = new_total_tokens;
    it->second.blocks += need;
    usedBlocks_ += need;
    return true;
}

void
BlockManager::release(std::uint64_t request_id)
{
    const auto it = table_.find(request_id);
    if (it == table_.end())
        return;
    usedBlocks_ -= it->second.blocks;
    usedTokens_ -= it->second.tokens;
    table_.erase(it);
}

bool
BlockManager::holds(std::uint64_t request_id) const
{
    return table_.count(request_id) > 0;
}

std::int64_t
BlockManager::tokensOf(std::uint64_t request_id) const
{
    const auto it = table_.find(request_id);
    return it == table_.end() ? 0 : it->second.tokens;
}

std::vector<std::uint64_t>
BlockManager::heldRequestIds() const
{
    std::vector<std::uint64_t> ids;
    ids.reserve(table_.size());
    for (const auto& [id, alloc] : table_)
        ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    return ids;
}

std::string
BlockManager::audit() const
{
    std::int64_t blocks = 0;
    std::int64_t tokens = 0;
    for (const auto& [id, alloc] : table_) {
        if (alloc.tokens < 0 || alloc.blocks < 0) {
            return "allocation for request " + std::to_string(id) +
                   " has negative size";
        }
        if (alloc.blocks != blocksFor(alloc.tokens)) {
            return "allocation for request " + std::to_string(id) + " holds " +
                   std::to_string(alloc.blocks) + " blocks for " +
                   std::to_string(alloc.tokens) + " tokens (expected " +
                   std::to_string(blocksFor(alloc.tokens)) + ")";
        }
        blocks += alloc.blocks;
        tokens += alloc.tokens;
    }
    if (blocks != usedBlocks_) {
        return "used-block aggregate " + std::to_string(usedBlocks_) +
               " != table sum " + std::to_string(blocks);
    }
    if (tokens != usedTokens_) {
        return "used-token aggregate " + std::to_string(usedTokens_) +
               " != table sum " + std::to_string(tokens);
    }
    if (usedBlocks_ < 0 || usedBlocks_ > totalBlocks_) {
        return "used blocks " + std::to_string(usedBlocks_) +
               " outside [0, " + std::to_string(totalBlocks_) + "]";
    }
    return "";
}

double
BlockManager::utilization() const
{
    if (totalBlocks_ == 0)
        return 0.0;
    return static_cast<double>(usedBlocks_) / static_cast<double>(totalBlocks_);
}

}  // namespace splitwise::engine
