#include "engine/block_manager.h"

#include <algorithm>

#include "sim/log.h"

namespace splitwise::engine {

BlockManager::BlockManager(std::int64_t capacity_tokens, int block_size_tokens)
    : blockSize_(block_size_tokens)
{
    if (block_size_tokens <= 0)
        sim::fatal("BlockManager: block size must be positive");
    if (capacity_tokens < 0)
        sim::fatal("BlockManager: negative capacity");
    totalBlocks_ = capacity_tokens / blockSize_;
}

std::int64_t
BlockManager::blocksFor(std::int64_t tokens) const
{
    return (tokens + blockSize_ - 1) / blockSize_;
}

bool
BlockManager::canAllocate(std::int64_t tokens) const
{
    return blocksFor(tokens) <= freeBlocks() + reclaimableBlocks_;
}

bool
BlockManager::reclaimFor(std::int64_t need_blocks)
{
    while (freeBlocks() < need_blocks) {
        // LRU victim among refcount-zero entries; key breaks ties
        // deterministically. O(entries) per eviction is fine at
        // cache sizes a machine can hold.
        auto victim = prefixes_.end();
        for (auto it = prefixes_.begin(); it != prefixes_.end(); ++it) {
            if (it->second.refcount != 0)
                continue;
            if (victim == prefixes_.end() ||
                it->second.lastUse < victim->second.lastUse ||
                (it->second.lastUse == victim->second.lastUse &&
                 it->first < victim->first)) {
                victim = it;
            }
        }
        if (victim == prefixes_.end())
            return false;
        usedBlocks_ -= victim->second.blocks;
        usedTokens_ -= victim->second.tokens;
        sharedBlocks_ -= victim->second.blocks;
        sharedTokens_ -= victim->second.tokens;
        reclaimableBlocks_ -= victim->second.blocks;
        reclaimableTokens_ -= victim->second.tokens;
        ++stats_.evictions;
        prefixes_.erase(victim);
    }
    return true;
}

bool
BlockManager::allocate(std::uint64_t request_id, std::int64_t tokens)
{
    if (tokens < 0)
        sim::panic("BlockManager::allocate with negative tokens");
    if (table_.count(request_id) > 0)
        return false;
    const std::int64_t effective =
        std::max<std::int64_t>(0, tokens - prefixTokensHeldBy(request_id));
    const std::int64_t need = blocksFor(effective);
    if (need > freeBlocks() && !reclaimFor(need))
        return false;
    table_[request_id] = {effective, need};
    usedBlocks_ += need;
    usedTokens_ += effective;
    return true;
}

bool
BlockManager::canExtend(std::uint64_t request_id,
                        std::int64_t new_total_tokens) const
{
    const auto it = table_.find(request_id);
    if (it == table_.end())
        return false;
    const std::int64_t effective = std::max<std::int64_t>(
        0, new_total_tokens - prefixTokensHeldBy(request_id));
    const std::int64_t need = blocksFor(effective) - it->second.blocks;
    return need <= freeBlocks() + reclaimableBlocks_;
}

bool
BlockManager::extend(std::uint64_t request_id, std::int64_t new_total_tokens)
{
    const auto it = table_.find(request_id);
    if (it == table_.end())
        return false;
    const std::int64_t effective = std::max<std::int64_t>(
        0, new_total_tokens - prefixTokensHeldBy(request_id));
    if (effective <= it->second.tokens) {
        // Contexts only grow; a no-op extension is still a success.
        return true;
    }
    const std::int64_t need = blocksFor(effective) - it->second.blocks;
    if (need > freeBlocks() && !reclaimFor(need))
        return false;
    usedTokens_ += effective - it->second.tokens;
    it->second.tokens = effective;
    it->second.blocks += need;
    usedBlocks_ += need;
    return true;
}

void
BlockManager::release(std::uint64_t request_id)
{
    const auto it = table_.find(request_id);
    if (it != table_.end()) {
        usedBlocks_ -= it->second.blocks;
        usedTokens_ -= it->second.tokens;
        table_.erase(it);
    }
    const auto pin = pins_.find(request_id);
    if (pin != pins_.end()) {
        const auto entry = prefixes_.find(pin->second.key);
        if (entry == prefixes_.end())
            sim::panic("BlockManager::release: pin on evicted prefix");
        if (--entry->second.refcount == 0) {
            reclaimableBlocks_ += entry->second.blocks;
            reclaimableTokens_ += entry->second.tokens;
        }
        pins_.erase(pin);
    }
}

bool
BlockManager::holds(std::uint64_t request_id) const
{
    return table_.count(request_id) > 0;
}

std::int64_t
BlockManager::tokensOf(std::uint64_t request_id) const
{
    const auto it = table_.find(request_id);
    return it == table_.end() ? 0 : it->second.tokens;
}

std::vector<std::uint64_t>
BlockManager::heldRequestIds() const
{
    std::vector<std::uint64_t> ids;
    ids.reserve(table_.size());
    for (const auto& [id, alloc] : table_)
        ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    return ids;
}

void
BlockManager::reset()
{
    table_.clear();
    prefixes_.clear();
    pins_.clear();
    usedBlocks_ = 0;
    usedTokens_ = 0;
    sharedBlocks_ = 0;
    sharedTokens_ = 0;
    reclaimableBlocks_ = 0;
    reclaimableTokens_ = 0;
    useTick_ = 0;
}

std::int64_t
BlockManager::lookupPrefix(std::uint64_t key)
{
    const auto it = prefixes_.find(key);
    if (it == prefixes_.end())
        return 0;
    touch(it->second);
    return it->second.tokens;
}

bool
BlockManager::storePrefix(std::uint64_t key, std::int64_t tokens)
{
    if (tokens <= 0)
        sim::panic("BlockManager::storePrefix with non-positive tokens");
    const auto it = prefixes_.find(key);
    if (it != prefixes_.end()) {
        SharedPrefix& entry = it->second;
        if (tokens <= entry.tokens) {
            touch(entry);
            return true;
        }
        const std::int64_t delta = blocksFor(tokens) - entry.blocks;
        // A refcount-zero entry must not be cannibalized to grow
        // itself, so it is temporarily pinned around the reclaim.
        ++entry.refcount;
        if (entry.refcount == 1) {
            reclaimableBlocks_ -= entry.blocks;
            reclaimableTokens_ -= entry.tokens;
        }
        const bool fits = delta <= freeBlocks() || reclaimFor(delta);
        if (--entry.refcount == 0) {
            reclaimableBlocks_ += entry.blocks;
            reclaimableTokens_ += entry.tokens;
        }
        if (!fits)
            return false;
        const std::int64_t token_delta = tokens - entry.tokens;
        entry.tokens = tokens;
        entry.blocks += delta;
        usedBlocks_ += delta;
        usedTokens_ += token_delta;
        sharedBlocks_ += delta;
        sharedTokens_ += token_delta;
        if (entry.refcount == 0) {
            reclaimableBlocks_ += delta;
            reclaimableTokens_ += token_delta;
        }
        touch(entry);
        ++stats_.stores;
        return true;
    }
    const std::int64_t need = blocksFor(tokens);
    if (need > freeBlocks() && !reclaimFor(need))
        return false;
    SharedPrefix entry;
    entry.tokens = tokens;
    entry.blocks = need;
    touch(entry);
    prefixes_.emplace(key, entry);
    usedBlocks_ += need;
    usedTokens_ += tokens;
    sharedBlocks_ += need;
    sharedTokens_ += tokens;
    reclaimableBlocks_ += need;
    reclaimableTokens_ += tokens;
    ++stats_.stores;
    return true;
}

bool
BlockManager::acquirePrefix(std::uint64_t key, std::uint64_t request_id)
{
    const auto it = prefixes_.find(key);
    if (it == prefixes_.end() || pins_.count(request_id) > 0) {
        ++stats_.misses;
        return false;
    }
    SharedPrefix& entry = it->second;
    if (entry.refcount == 0) {
        reclaimableBlocks_ -= entry.blocks;
        reclaimableTokens_ -= entry.tokens;
    }
    ++entry.refcount;
    pins_[request_id] = {key, entry.tokens};
    touch(entry);
    ++stats_.hits;
    stats_.hitTokens += entry.tokens;
    return true;
}

std::int64_t
BlockManager::prefixTokensHeldBy(std::uint64_t request_id) const
{
    const auto it = pins_.find(request_id);
    return it == pins_.end() ? 0 : it->second.tokens;
}

std::int64_t
BlockManager::prefixRefcount(std::uint64_t key) const
{
    const auto it = prefixes_.find(key);
    return it == prefixes_.end() ? -1 : it->second.refcount;
}

std::vector<PrefixReference>
BlockManager::prefixReferences() const
{
    std::vector<PrefixReference> refs;
    refs.reserve(pins_.size());
    for (const auto& [id, pin] : pins_)
        refs.push_back({id, pin.key, pin.tokens});
    std::sort(refs.begin(), refs.end(),
              [](const PrefixReference& a, const PrefixReference& b) {
                  return a.requestId < b.requestId;
              });
    return refs;
}

std::string
BlockManager::audit() const
{
    std::int64_t blocks = 0;
    std::int64_t tokens = 0;
    for (const auto& [id, alloc] : table_) {
        if (alloc.tokens < 0 || alloc.blocks < 0) {
            return "allocation for request " + std::to_string(id) +
                   " has negative size";
        }
        if (alloc.blocks != blocksFor(alloc.tokens)) {
            return "allocation for request " + std::to_string(id) + " holds " +
                   std::to_string(alloc.blocks) + " blocks for " +
                   std::to_string(alloc.tokens) + " tokens (expected " +
                   std::to_string(blocksFor(alloc.tokens)) + ")";
        }
        blocks += alloc.blocks;
        tokens += alloc.tokens;
    }
    std::unordered_map<std::uint64_t, std::int64_t> pin_counts;
    for (const auto& [id, pin] : pins_) {
        const auto entry = prefixes_.find(pin.key);
        if (entry == prefixes_.end()) {
            return "request " + std::to_string(id) +
                   " pins evicted prefix " + std::to_string(pin.key);
        }
        if (pin.tokens <= 0 || pin.tokens > entry->second.tokens) {
            return "request " + std::to_string(id) + " pins " +
                   std::to_string(pin.tokens) + " tokens of prefix " +
                   std::to_string(pin.key) + " holding " +
                   std::to_string(entry->second.tokens);
        }
        ++pin_counts[pin.key];
    }
    std::int64_t shared_blocks = 0;
    std::int64_t shared_tokens = 0;
    std::int64_t reclaim_blocks = 0;
    std::int64_t reclaim_tokens = 0;
    for (const auto& [key, entry] : prefixes_) {
        if (entry.tokens <= 0 || entry.blocks != blocksFor(entry.tokens)) {
            return "prefix " + std::to_string(key) + " holds " +
                   std::to_string(entry.blocks) + " blocks for " +
                   std::to_string(entry.tokens) + " tokens";
        }
        const auto counted = pin_counts.find(key);
        const std::int64_t pinned =
            counted == pin_counts.end() ? 0 : counted->second;
        if (entry.refcount != pinned) {
            return "prefix " + std::to_string(key) + " refcount " +
                   std::to_string(entry.refcount) + " != " +
                   std::to_string(pinned) + " per-request references";
        }
        shared_blocks += entry.blocks;
        shared_tokens += entry.tokens;
        if (entry.refcount == 0) {
            reclaim_blocks += entry.blocks;
            reclaim_tokens += entry.tokens;
        }
    }
    if (shared_blocks != sharedBlocks_ || shared_tokens != sharedTokens_) {
        return "shared aggregates (" + std::to_string(sharedBlocks_) + "," +
               std::to_string(sharedTokens_) + ") != entry sums (" +
               std::to_string(shared_blocks) + "," +
               std::to_string(shared_tokens) + ")";
    }
    if (reclaim_blocks != reclaimableBlocks_ ||
        reclaim_tokens != reclaimableTokens_) {
        return "reclaimable aggregates (" +
               std::to_string(reclaimableBlocks_) + "," +
               std::to_string(reclaimableTokens_) + ") != entry sums (" +
               std::to_string(reclaim_blocks) + "," +
               std::to_string(reclaim_tokens) + ")";
    }
    if (blocks + shared_blocks != usedBlocks_) {
        return "used-block aggregate " + std::to_string(usedBlocks_) +
               " != table sum " + std::to_string(blocks + shared_blocks);
    }
    if (tokens + shared_tokens != usedTokens_) {
        return "used-token aggregate " + std::to_string(usedTokens_) +
               " != table sum " + std::to_string(tokens + shared_tokens);
    }
    if (usedBlocks_ < 0 || usedBlocks_ > totalBlocks_) {
        return "used blocks " + std::to_string(usedBlocks_) +
               " outside [0, " + std::to_string(totalBlocks_) + "]";
    }
    return "";
}

double
BlockManager::utilization() const
{
    if (totalBlocks_ == 0)
        return 0.0;
    return static_cast<double>(usedBlocks_) / static_cast<double>(totalBlocks_);
}

double
BlockManager::committedUtilization() const
{
    if (totalBlocks_ == 0)
        return 0.0;
    return static_cast<double>(usedBlocks_ - reclaimableBlocks_) /
           static_cast<double>(totalBlocks_);
}

}  // namespace splitwise::engine
