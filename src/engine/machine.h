#ifndef SPLITWISE_ENGINE_MACHINE_H_
#define SPLITWISE_ENGINE_MACHINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "engine/mls.h"
#include "engine/request.h"
#include "hw/machine_spec.h"
#include "metrics/time_weighted.h"
#include "model/memory_model.h"
#include "model/perf_model.h"
#include "model/power_model.h"
#include "sim/simulator.h"
#include "telemetry/telemetry.h"

namespace splitwise::engine {

/** Aggregate activity counters for one machine. */
struct MachineStats {
    sim::TimeUs busyUs = 0;
    std::uint64_t iterations = 0;
    std::uint64_t promptIterations = 0;
    std::uint64_t tokenIterations = 0;
    std::uint64_t mixedIterations = 0;
    std::int64_t promptTokensProcessed = 0;
    std::int64_t tokensGenerated = 0;
    /** GPU + platform energy while iterating, Wh. */
    double energyWh = 0.0;
    /** Time spent parked (powered off by the control plane). */
    sim::TimeUs parkedUs = 0;
    /** Time spent failed (crashed, drawing nothing). */
    sim::TimeUs downUs = 0;
    /** Powered wall-clock (run length minus parked time); the
     *  machine-hours the deployment pays for. Set by finalizeStats. */
    sim::TimeUs poweredUs = 0;
    /** Idle-floor energy while powered, up, and not iterating, Wh.
     *  Kept separate from energyWh (busy iterations only) so the
     *  paper-anchored energy numbers are unchanged. */
    double idleEnergyWh = 0.0;
    /** Active-batched-token signal over time (Figs. 4/17). */
    metrics::SignalTracker activeTokens;
};

/**
 * A simulated DGX inference machine.
 *
 * Wires the MLS batching logic into the event loop: at every
 * iteration boundary it asks the MLS for the next batch, prices it
 * with the performance model, and schedules the completion event.
 * Completions route requests onward - locally into the resident
 * decode set, or to the owner via callbacks for KV transfer.
 */
class Machine {
  public:
    /** Hooks the owning cluster installs. */
    struct Callbacks {
        /**
         * A prompt finished for a request whose decode runs
         * elsewhere. The machine keeps the request's KV blocks until
         * releaseKv(); the owner starts the transfer.
         * @param prompt_compute Duration of the completed iteration
         *     (the window a layer-wise transfer overlapped with).
         */
        std::function<void(Machine&, LiveRequest*, sim::TimeUs prompt_compute)>
            onPromptDone;

        /** A request produced its final token on this machine. */
        std::function<void(Machine&, LiveRequest*)> onRequestDone;

        /**
         * The full prompt has been computed (before the request is
         * routed onward to decode). The scheduling policy uses this
         * to publish the session's KV prefix for reuse. Optional.
         */
        std::function<void(Machine&, LiveRequest*)> onPrefillComplete;

        /**
         * Extra iteration time caused by overlapped KV-transfer
         * synchronization for an outbound prompt (SIV-C). Optional.
         */
        std::function<sim::TimeUs(Machine&, LiveRequest*,
                                  sim::TimeUs prompt_compute)>
            transferInterference;

        /** KV blocks were freed (transfer engine retries waiters). */
        std::function<void(Machine&)> onMemoryFreed;

        /** An iteration ended (CLS pool-management hook). Optional. */
        std::function<void(Machine&)> onIterationEnd;
    };

    Machine(sim::Simulator& simulator, int id, hw::MachineSpec spec,
            const model::PerfModel& perf, const model::MemoryModel& memory,
            MlsConfig mls_config, Callbacks callbacks);

    Machine(const Machine&) = delete;
    Machine& operator=(const Machine&) = delete;

    int id() const { return id_; }
    const hw::MachineSpec& spec() const { return spec_; }

    /** Submit a request for prompt computation (FCFS). */
    void submitPrompt(LiveRequest* request);

    /**
     * Reserve KV blocks for an inbound transfer.
     *
     * @return false when memory is currently insufficient.
     */
    bool reserveKv(LiveRequest* request, std::int64_t tokens);

    /** Release a request's KV blocks (e.g. after transfer-out). */
    void releaseKv(LiveRequest* request);

    /** A transferred-in request becomes a resident decode. */
    void acceptTransferred(LiveRequest* request);

    /** Start an iteration if idle and work is pending. */
    void kick();

    /**
     * Take the machine down (SIV-E). All queued/resident work and KV
     * allocations are dropped, and every later event touching the
     * machine becomes a no-op. The owner restarts affected requests.
     */
    void fail();

    /**
     * Bring a failed machine back up after its downtime, empty of
     * state: no queued prompts, no residents, no KV. The owner must
     * re-admit it to routing (CLS rejoin).
     */
    void recover();

    /** True while the machine is down. */
    bool failed() const { return failed_; }

    /**
     * Power the machine off (autoscaler scale-down). Only legal once
     * the machine is fully drained - no in-flight iteration, no
     * queued or resident work, no KV allocations. A parked machine
     * draws no power, accrues no machine-hours, and accepts no work
     * until unpark().
     */
    void park();

    /**
     * Power a parked machine back on (autoscaler scale-up, after the
     * provisioning lead time). The machine comes back empty and the
     * owner must re-admit it to routing (CLS restore).
     */
    void unpark();

    /** True while powered off by the control plane. */
    bool parked() const { return parked_; }

    /**
     * Apply a per-GPU power cap as a fraction of TDP (Fig. 9).
     * Iterations whose phase needs more than the cap run slower by
     * the model's cap-latency multiplier; caps above the phase's
     * natural draw cost nothing. 1.0 removes the cap.
     */
    void setPowerCap(double fraction);

    /** The current power-cap fraction (1.0 = uncapped). */
    double powerCap() const { return powerCap_; }

    /**
     * Straggler injection: multiply every iteration's duration by
     * @p scale (> 1 = slower). Routing signals are untouched, so the
     * CLS only sees the straggler through its growing queues.
     */
    void setPerfScale(double scale);

    /** Current iteration-duration multiplier. */
    double perfScale() const { return perfScale_; }

    /** The machine-level scheduler. */
    Mls& mls() { return mls_; }
    const Mls& mls() const { return mls_; }

    /** True while an iteration is in flight. */
    bool busy() const { return busy_; }

    /** JSQ signal: queued prompt tokens plus the running chunk. */
    std::int64_t promptQueueDepthTokens() const;

    /** JSQ signal: KV tokens held or reserved on this machine. */
    std::int64_t tokenLoadTokens() const;

    /**
     * Largest decode batch whose iteration stays within @p tbt_ms
     * (at ~1200 tokens of context per sequence). The CLS uses this
     * as the machine's latency-efficient capacity when deciding
     * token-pool overflow. Cached per bound.
     */
    int maxBatchWithinTbt(double tbt_ms) const;

    /** Activity counters; call finalizeStats() before reading. */
    const MachineStats& stats() const { return stats_; }

    /** Close the active-token signal at the end of a run. */
    void finalizeStats();

    /**
     * Attach a trace recorder: iteration spans on the machine track
     * and phase transitions on request tracks. nullptr detaches.
     */
    void setTrace(telemetry::TraceRecorder* trace) { trace_ = trace; }

    /**
     * Attach a span tracker: queue/prefill/decode attribution phases
     * for every request this machine touches, including preemption
     * re-queues. nullptr detaches.
     */
    void setSpans(telemetry::SpanTracker* spans);

    /**
     * Attach a per-token hook, fired after every recordToken() —
     * each decode token and the prompt-completion (first) token.
     * Live serving streams TokenUpdates through it; offline runs
     * leave it unset, keeping the hot path at one null check.
     * nullptr detaches.
     */
    void
    setOnToken(std::function<void(LiveRequest*)> on_token)
    {
        onToken_ = std::move(on_token);
    }

    /**
     * Modeled machine power draw right now: the in-flight
     * iteration's draw while busy, the platform/idle floor
     * otherwise. Telemetry gauge for the paper's power figures.
     */
    double currentPowerWatts() const;

  private:
    void startIteration();
    void completeIteration(const BatchPlan& plan, sim::TimeUs duration);

    /**
     * The scheduled iteration-completion event: drops silently when
     * @p epoch is stale (the machine failed since the iteration
     * started), otherwise completes the in-flight plan_.
     */
    void onIterationEvent(std::uint64_t epoch);

    /** Route a request whose prompt chunk just completed. */
    void routePromptCompletion(LiveRequest* request,
                               sim::TimeUs prompt_compute);

    sim::Simulator& simulator_;
    int id_;
    hw::MachineSpec spec_;
    const model::PerfModel& perf_;
    model::PowerModel power_;
    Mls mls_;
    Callbacks callbacks_;
    /** Live-serving per-token hook; unset (and free) offline. */
    std::function<void(LiveRequest*)> onToken_;

    bool busy_ = false;
    bool failed_ = false;
    bool parked_ = false;
    sim::TimeUs parkedSince_ = 0;
    sim::TimeUs downSince_ = 0;
    /** Per-GPU power cap as a fraction of TDP; 1.0 = uncapped. */
    double powerCap_ = 1.0;
    /**
     * Bumped on every fail(); an in-flight iteration-completion event
     * captured under an older epoch must drop silently, even when the
     * machine has recovered by the time it fires.
     */
    std::uint64_t epoch_ = 0;
    double perfScale_ = 1.0;
    std::int64_t runningPromptTokens_ = 0;
    /**
     * The in-flight iteration's batch and duration. Only one
     * iteration runs at a time (busy_), so the completion event reads
     * these instead of capturing a copy of the plan - the vectors'
     * capacity is reused every iteration, keeping the hot path
     * allocation-free.
     */
    BatchPlan plan_;
    sim::TimeUs planDuration_ = 0;
    /** Draw of the in-flight iteration; idle floor while not busy. */
    double currentWatts_ = 0.0;
    telemetry::TraceRecorder* trace_ = nullptr;
    telemetry::SpanTracker* spans_ = nullptr;
    MachineStats stats_;
    mutable double cachedTbtBoundMs_ = -1.0;
    mutable int cachedMaxBatch_ = 0;
};

}  // namespace splitwise::engine

#endif  // SPLITWISE_ENGINE_MACHINE_H_
