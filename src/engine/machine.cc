#include "engine/machine.h"

#include <algorithm>

#include "sim/log.h"

namespace splitwise::engine {

namespace {

/**
 * Decode batch size maximizing generated tokens/s on this machine.
 * Throughput rises with batch until the quadratic batching penalty
 * (Fig. 5b) dominates; admitting more residents past that point
 * *lowers* throughput, so the MLS caps its batch there.
 */
MlsConfig
withThroughputOptimalBatch(MlsConfig config, const model::PerfModel& perf)
{
    constexpr std::int64_t kCtxPerSeq = 1200;
    int best_b = 1;
    double best_thpt = 0.0;
    for (int b = 1; b <= config.maxBatchSize; ++b) {
        const double thpt =
            b / sim::usToSeconds(perf.tokenTime(b, b * kCtxPerSeq));
        if (thpt > best_thpt) {
            best_thpt = thpt;
            best_b = b;
        }
    }
    config.maxBatchSize = std::min(config.maxBatchSize, best_b);
    return config;
}

}  // namespace

Machine::Machine(sim::Simulator& simulator, int id, hw::MachineSpec spec,
                 const model::PerfModel& perf,
                 const model::MemoryModel& memory, MlsConfig mls_config,
                 Callbacks callbacks)
    : simulator_(simulator), id_(id), spec_(std::move(spec)), perf_(perf),
      power_(spec_.gpu),
      mls_(withThroughputOptimalBatch(mls_config, perf),
           memory.kvCapacityTokens()),
      callbacks_(std::move(callbacks))
{
    if (!memory.weightsFit())
        sim::fatal("Machine " + spec_.name + ": model weights do not fit");
    stats_.activeTokens.start(simulator_.now(), 0);
}

void
Machine::submitPrompt(LiveRequest* request)
{
    if (failed_)
        sim::panic("Machine::submitPrompt on a failed machine");
    if (parked_)
        sim::panic("Machine::submitPrompt on a parked machine");
    request->promptMachine = id_;
    // A routed-in prefix hit must be pinned now, while the entry
    // still exists: it may be evicted between routing and admission
    // otherwise. A failed pin degrades to a full prefill.
    if (request->cachedPrefixTokens > 0) {
        if (mls_.blocks().acquirePrefix(request->spec.session,
                                        request->spec.id)) {
            request->promptProcessed = request->cachedPrefixTokens;
        } else {
            request->cachedPrefixTokens = 0;
        }
    }
    TELEM_TRANSITION(trace_, telemetry::TraceRecorder::requestTrack(
                                 request->spec.id),
                     "queued", simulator_.now(),
                     {{"machine", id_}, {"restarts", request->restarts}});
    TELEM_REQ_PHASE(spans_, request->spec.id, telemetry::SpanPhase::kQueue,
                    simulator_.now());
    mls_.enqueuePrompt(request);
    kick();
}

bool
Machine::reserveKv(LiveRequest* request, std::int64_t tokens)
{
    if (failed_ || parked_)
        return false;
    return mls_.blocks().allocate(request->spec.id, tokens);
}

void
Machine::releaseKv(LiveRequest* request)
{
    mls_.blocks().release(request->spec.id);
    if (callbacks_.onMemoryFreed)
        callbacks_.onMemoryFreed(*this);
    kick();
}

void
Machine::acceptTransferred(LiveRequest* request)
{
    if (failed_)
        sim::panic("Machine::acceptTransferred on a failed machine");
    if (parked_)
        sim::panic("Machine::acceptTransferred on a parked machine");
    TELEM_TRANSITION(trace_, telemetry::TraceRecorder::requestTrack(
                                 request->spec.id),
                     "decode", simulator_.now(), {{"machine", id_}});
    TELEM_REQ_PHASE(spans_, request->spec.id, telemetry::SpanPhase::kDecode,
                    simulator_.now());
    mls_.addResident(request);
    kick();
}

std::int64_t
Machine::promptQueueDepthTokens() const
{
    return mls_.pendingPromptTokens() + runningPromptTokens_;
}

std::int64_t
Machine::tokenLoadTokens() const
{
    // Committed load only: reclaimable (refcount-zero) cached
    // prefixes yield to real traffic, so JSQ must not see them.
    return mls_.blocks().committedTokens();
}

int
Machine::maxBatchWithinTbt(double tbt_ms) const
{
    if (cachedTbtBoundMs_ == tbt_ms)
        return cachedMaxBatch_;
    constexpr std::int64_t kCtxPerSeq = 1200;
    int lo = 1;
    int hi = mls_.config().maxBatchSize;
    if (sim::usToMs(perf_.tokenTime(hi, hi * kCtxPerSeq)) <= tbt_ms) {
        lo = hi;
    } else {
        while (hi - lo > 1) {
            const int mid = (lo + hi) / 2;
            if (sim::usToMs(perf_.tokenTime(mid, mid * kCtxPerSeq)) <= tbt_ms)
                lo = mid;
            else
                hi = mid;
        }
    }
    cachedTbtBoundMs_ = tbt_ms;
    cachedMaxBatch_ = lo;
    return lo;
}

void
Machine::setSpans(telemetry::SpanTracker* spans)
{
    spans_ = spans;
#if SPLITWISE_TELEMETRY_ENABLED
    // A preempted resident's KV is dropped and it recomputes from the
    // queue, so its attribution returns to the queue phase.
    if (spans) {
        mls_.setPreemptHook([this](LiveRequest* victim) {
            spans_->transition(victim->spec.id, telemetry::SpanPhase::kQueue,
                               simulator_.now());
        });
    } else {
        mls_.setPreemptHook(nullptr);
    }
#endif
}

void
Machine::kick()
{
    if (busy_ || failed_ || parked_)
        return;
    startIteration();
}

void
Machine::fail()
{
    if (failed_)
        return;
    // The in-flight iteration dies with the machine: close its span
    // so the trace keeps matched begin/end pairs.
    if (busy_) {
        TELEM_SPAN_END(trace_, telemetry::TraceRecorder::machineTrack(id_),
                       simulator_.now());
    }
    TELEM_INSTANT(trace_, telemetry::TraceRecorder::machineTrack(id_),
                  "fail", simulator_.now());
    // A crash trumps a park: close the parked interval so downtime
    // is accounted as down, not parked, and let recover() bring the
    // machine back into service directly.
    if (parked_) {
        stats_.parkedUs += simulator_.now() - parkedSince_;
        parked_ = false;
    }
    failed_ = true;
    downSince_ = simulator_.now();
    ++epoch_;
    busy_ = false;
    mls_.clearAll();
    runningPromptTokens_ = 0;
    currentWatts_ = 0.0;
    stats_.activeTokens.set(simulator_.now(), 0);
}

void
Machine::recover()
{
    if (!failed_)
        return;
    failed_ = false;
    stats_.downUs += simulator_.now() - downSince_;
    TELEM_INSTANT(trace_, telemetry::TraceRecorder::machineTrack(id_),
                  "recover", simulator_.now());
    stats_.activeTokens.set(simulator_.now(), 0);
    kick();
}

void
Machine::park()
{
    if (parked_)
        return;
    if (failed_)
        sim::panic("Machine::park on a failed machine");
    if (busy_ || mls_.hasWork() || mls_.blocks().residents() > 0)
        sim::panic("Machine::park with work on the machine");
    parked_ = true;
    parkedSince_ = simulator_.now();
    TELEM_INSTANT(trace_, telemetry::TraceRecorder::machineTrack(id_),
                  "park", simulator_.now());
}

void
Machine::unpark()
{
    if (!parked_)
        return;
    parked_ = false;
    stats_.parkedUs += simulator_.now() - parkedSince_;
    TELEM_INSTANT(trace_, telemetry::TraceRecorder::machineTrack(id_),
                  "unpark", simulator_.now());
    kick();
}

void
Machine::setPowerCap(double fraction)
{
    if (fraction <= 0.0 || fraction > 1.0)
        sim::fatal("Machine::setPowerCap: fraction must be in (0, 1]");
    powerCap_ = fraction;
}

void
Machine::setPerfScale(double scale)
{
    if (scale <= 0.0)
        sim::fatal("Machine::setPerfScale: scale must be positive");
    perfScale_ = scale;
}

void
Machine::startIteration()
{
    mls_.nextBatch(plan_);
    BatchPlan& plan = plan_;
    if (plan.empty()) {
        stats_.activeTokens.set(simulator_.now(), 0);
        return;
    }

    sim::TimeUs duration = perf_.iterationTime(plan.shape());
    if (perfScale_ != 1.0) {
        duration = static_cast<sim::TimeUs>(
            static_cast<double>(duration) * perfScale_);
    }

    // A power cap slows the batch down per Fig. 9: compute-bound
    // prompt phases pay roughly proportionally, bandwidth-bound token
    // phases only when capped below their natural (~half TDP) draw.
    // Mixed batches take the worst case across their phases.
    if (powerCap_ < 1.0) {
        double cap_mult = 1.0;
        if (!plan.prompts.empty()) {
            cap_mult = power_.capLatencyMultiplier(model::Phase::kPrompt,
                                                   powerCap_);
        }
        if (!plan.decodes.empty()) {
            cap_mult = std::max(
                cap_mult,
                power_.capLatencyMultiplier(model::Phase::kToken, powerCap_));
        }
        if (cap_mult != 1.0) {
            duration = static_cast<sim::TimeUs>(
                static_cast<double>(duration) * cap_mult);
        }
    }

    // Outbound layer-wise KV transfers steal compute cycles from the
    // prompt they overlap with (SIV-C interference).
    if (callbacks_.transferInterference) {
        for (auto* req : plan.prompts) {
            if (req->tokenMachine >= 0 && req->tokenMachine != id_)
                duration += callbacks_.transferInterference(*this, req, duration);
        }
    }

    busy_ = true;
    runningPromptTokens_ = plan.promptTokens;
    stats_.activeTokens.set(simulator_.now(), plan.activeTokens());

    // Energy: GPU draw depends on the phase mix; the platform
    // overhead is always drawn while iterating.
    const bool has_prompt = !plan.prompts.empty();
    const bool has_decode = !plan.decodes.empty();

#if SPLITWISE_TELEMETRY_ENABLED
    if (trace_) {
        const char* kind = has_prompt && has_decode ? "mixed_iter"
                           : has_prompt             ? "prompt_iter"
                                                    : "token_iter";
        trace_->begin(telemetry::TraceRecorder::machineTrack(id_), kind,
                      simulator_.now(),
                      {{"prompt_tokens", plan.promptTokens},
                       {"prompts", static_cast<int>(plan.prompts.size())},
                       {"decodes", static_cast<int>(plan.decodes.size())}});
        for (auto* req : plan.prompts) {
            trace_->transition(
                telemetry::TraceRecorder::requestTrack(req->spec.id),
                "prompt", simulator_.now(), {{"machine", id_}});
        }
        // Transferred-in requests complete their cross-machine flow
        // arrow here: the 'f' point must sit inside an open slice on
        // this machine's track, and the first decode iteration is
        // the first such slice after the handoff.
        if (trace_->hasPendingFlows()) {
            for (auto* req : plan.decodes) {
                if (trace_->takePendingFlow(req->spec.id)) {
                    trace_->flowEnd(
                        telemetry::TraceRecorder::machineTrack(id_),
                        "kv_handoff", simulator_.now(), req->spec.id);
                }
            }
        }
    }
    if (spans_) {
        for (auto* req : plan.prompts) {
            // A prefix hit computes only the suffix; attribute the
            // compute to its own phase so reports can separate cheap
            // (cache-assisted) prefills from full ones.
            spans_->transition(req->spec.id,
                               req->cachedPrefixTokens > 0
                                   ? telemetry::SpanPhase::kPrefixHit
                                   : telemetry::SpanPhase::kPrefill,
                               simulator_.now());
        }
    }
#endif
    double gpu_fraction = 0.0;
    if (has_prompt) {
        gpu_fraction = power_.promptPowerFraction(plan.promptTokens);
    }
    if (has_decode) {
        gpu_fraction = std::max(
            gpu_fraction,
            power_.tokenPowerFraction(static_cast<int>(plan.decodes.size())));
    }
    if (powerCap_ < 1.0)
        gpu_fraction = std::min(gpu_fraction, powerCap_);
    const double watts = power_.machinePowerWatts(spec_, gpu_fraction);
    currentWatts_ = watts;
    stats_.energyWh += watts * sim::usToSeconds(duration) / 3600.0;

    planDuration_ = duration;
    // The closure captures only (this, epoch): the plan itself stays
    // in plan_, reused every iteration, so scheduling allocates
    // nothing.
    simulator_.postAfter(duration,
                         [this, epoch = epoch_] { onIterationEvent(epoch); });
}

void
Machine::onIterationEvent(std::uint64_t epoch)
{
    // A failure between start and completion voids the iteration,
    // even when the machine recovered in the meantime.
    if (epoch != epoch_)
        return;
    completeIteration(plan_, planDuration_);
}

void
Machine::routePromptCompletion(LiveRequest* request,
                               sim::TimeUs prompt_compute)
{
    if (request->finished()) {
        // Single-output requests are done at the first token; the
        // KV-cache is never needed again.
        request->phase = RequestPhase::kDone;
        TELEM_CLOSE(trace_, telemetry::TraceRecorder::requestTrack(
                                request->spec.id),
                    simulator_.now());
        mls_.blocks().release(request->spec.id);
        if (callbacks_.onMemoryFreed)
            callbacks_.onMemoryFreed(*this);
        if (callbacks_.onRequestDone)
            callbacks_.onRequestDone(*this, request);
        return;
    }
    if (request->tokenMachine < 0 || request->tokenMachine == id_) {
        // Decode continues locally (baseline, mixed pool, or
        // standalone machine).
        request->tokenMachine = id_;
        TELEM_TRANSITION(trace_, telemetry::TraceRecorder::requestTrack(
                                     request->spec.id),
                         "decode", simulator_.now(), {{"machine", id_}});
        TELEM_REQ_PHASE(spans_, request->spec.id,
                        telemetry::SpanPhase::kDecode, simulator_.now());
        mls_.addResident(request);
        return;
    }
    request->phase = RequestPhase::kTransferring;
    if (!callbacks_.onPromptDone)
        sim::panic("Machine: remote token machine but no onPromptDone hook");
    // Flow-arrow source: emitted while this machine's iteration slice
    // is still open (routePromptCompletion runs before the machine
    // track's SPAN_END in completeIteration).
    TELEM_FLOW_START(trace_, telemetry::TraceRecorder::machineTrack(id_),
                     "kv_handoff", simulator_.now(), request->spec.id);
    callbacks_.onPromptDone(*this, request, prompt_compute);
}

void
Machine::completeIteration(const BatchPlan& plan, sim::TimeUs duration)
{
    // A failed machine's in-flight iteration is lost; the cluster
    // restarted its requests.
    if (failed_)
        return;

    const sim::TimeUs now = simulator_.now();

    bool freed = false;
    for (auto* req : plan.decodes) {
        req->recordToken(now);
        ++stats_.tokensGenerated;
        if (onToken_)
            onToken_(req);
        if (req->finished()) {
            req->phase = RequestPhase::kDone;
            TELEM_CLOSE(trace_,
                        telemetry::TraceRecorder::requestTrack(req->spec.id),
                        now);
            mls_.finish(req);
            freed = true;
            if (callbacks_.onRequestDone)
                callbacks_.onRequestDone(*this, req);
        }
    }

    for (auto* req : plan.prompts) {
        stats_.promptTokensProcessed += req->chunkTokens;
        req->promptProcessed += req->chunkTokens;
        req->chunkTokens = 0;
        // The first token appears only once every prompt chunk has
        // been computed (chunked prefill spreads a prompt over
        // several iterations).
        const std::int64_t work = req->generated > 0
                                      ? req->contextTokens()
                                      : req->spec.promptTokens;
        if (req->promptProcessed < work)
            continue;
        if (callbacks_.onPrefillComplete)
            callbacks_.onPrefillComplete(*this, req);
        req->recordToken(now);
        ++stats_.tokensGenerated;
        if (onToken_)
            onToken_(req);
        routePromptCompletion(req, duration);
    }

    ++stats_.iterations;
    const bool has_prompt = !plan.prompts.empty();
    const bool has_decode = !plan.decodes.empty();
    if (has_prompt && has_decode)
        ++stats_.mixedIterations;
    else if (has_prompt)
        ++stats_.promptIterations;
    else
        ++stats_.tokenIterations;
    stats_.busyUs += duration;

    TELEM_SPAN_END(trace_, telemetry::TraceRecorder::machineTrack(id_), now);

    busy_ = false;
    runningPromptTokens_ = 0;
    currentWatts_ = 0.0;

    if (freed && callbacks_.onMemoryFreed)
        callbacks_.onMemoryFreed(*this);
    if (callbacks_.onIterationEnd)
        callbacks_.onIterationEnd(*this);
    kick();
}

void
Machine::finalizeStats()
{
    const sim::TimeUs now = simulator_.now();
    stats_.activeTokens.finish(now);
    // Close any open parked/down interval; idempotent because the
    // interval start moves to now.
    if (parked_) {
        stats_.parkedUs += now - parkedSince_;
        parkedSince_ = now;
    }
    if (failed_) {
        stats_.downUs += now - downSince_;
        downSince_ = now;
    }
    stats_.poweredUs = now - stats_.parkedUs;
    const sim::TimeUs idle = std::max<sim::TimeUs>(
        0, stats_.poweredUs - stats_.busyUs - stats_.downUs);
    stats_.idleEnergyWh = power_.machinePowerWatts(spec_, 0.0) *
                          sim::usToSeconds(idle) / 3600.0;
}

double
Machine::currentPowerWatts() const
{
    if (failed_ || parked_)
        return 0.0;
    if (busy_)
        return currentWatts_;
    // Idle floor: platform overhead with GPUs at rest.
    return power_.machinePowerWatts(spec_, 0.0);
}

}  // namespace splitwise::engine
