#ifndef SPLITWISE_ENGINE_REQUEST_POOL_H_
#define SPLITWISE_ENGINE_REQUEST_POOL_H_

/**
 * @file
 * Pooled, index-addressed storage for live request state.
 *
 * Requests used to be heap-allocated one by one and kept alive until
 * the end of the run, making the live set O(total arrivals). The
 * pool extends the event engine's zero-allocation discipline to
 * requests: rows live in fixed-size slabs (stable addresses - the
 * machines, scheduler, and transfer engine keep holding raw
 * LiveRequest pointers), a free list recycles retired slots, and the
 * slot-state columns (live flags) are kept separate from the rows so
 * cluster-wide scans walk the column and touch row memory only for
 * live slots. Steady-state memory is O(in-flight requests), not
 * O(trace length).
 *
 * ABA protection: in-flight events capture (pointer, restartEpoch)
 * pairs and drop themselves when the epochs no longer match.
 * acquire() therefore *preserves and bumps* the slot's restartEpoch
 * instead of zeroing it, so the epoch doubles as a slot incarnation
 * counter: any event captured against a previous occupant of the
 * slot sees a mismatch and drops.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/request.h"

namespace splitwise::engine {

class RequestPool {
  public:
    /** @param slab_slots Rows per slab (power of two not required). */
    explicit RequestPool(std::size_t slab_slots = 4096);

    RequestPool(const RequestPool&) = delete;
    RequestPool& operator=(const RequestPool&) = delete;

    /**
     * Take a slot off the free list (growing a slab if none are
     * free) and reset its row to a fresh request - except for
     * restartEpoch, which is bumped (see the ABA note above).
     */
    LiveRequest* acquire();

    /**
     * Return a slot to the free list. The caller must drop every
     * pointer it holds; epoch-guarded events may still read the row
     * (the memory stays valid) but must not act on it.
     */
    void release(LiveRequest* request);

    /** Slots currently acquired. */
    std::size_t liveCount() const { return liveCount_; }

    /** Total acquire() calls over the pool's lifetime. */
    std::uint64_t acquiredTotal() const { return acquiredTotal_; }

    /** Maximum simultaneously-live slots seen so far. */
    std::size_t highWater() const { return highWater_; }

    /** Slots allocated across all slabs. */
    std::size_t capacity() const { return liveBits_.size(); }

    /**
     * Bumped on every acquire and release; index caches (e.g. the
     * DST checker's id map) rebuild when it moves.
     */
    std::uint64_t version() const { return version_; }

    /**
     * Disable slot recycling: release() drops the slot from the live
     * set but never reuses it, reproducing the pre-pool O(total
     * arrivals) footprint. Benchmark baseline only.
     */
    void setRecycling(bool on) { recycle_ = on; }

    /**
     * Visit every live request in slot-index order. The visitor must
     * not acquire or release slots.
     */
    template <typename Fn>
    void
    forEachLive(Fn&& fn) const
    {
        for (std::size_t slot = 0; slot < liveBits_.size(); ++slot) {
            if (liveBits_[slot])
                fn(*rowAt(slot));
        }
    }

  private:
    LiveRequest* rowAt(std::size_t slot) const;
    void growSlab();

    std::size_t slabSlots_;
    /** Fixed-size row arrays; never reallocated, addresses stable. */
    std::vector<std::unique_ptr<LiveRequest[]>> slabs_;
    /** Columnar slot state, index-addressed alongside the rows. */
    std::vector<std::uint8_t> liveBits_;
    /** Released slot indices, reused LIFO (cache-warm first). */
    std::vector<std::uint32_t> freeList_;

    std::size_t liveCount_ = 0;
    std::size_t highWater_ = 0;
    std::uint64_t acquiredTotal_ = 0;
    std::uint64_t version_ = 0;
    bool recycle_ = true;
};

}  // namespace splitwise::engine

#endif  // SPLITWISE_ENGINE_REQUEST_POOL_H_
