#ifndef SPLITWISE_ENGINE_MLS_H_
#define SPLITWISE_ENGINE_MLS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_set>
#include <vector>

#include "engine/block_manager.h"
#include "engine/request.h"
#include "model/perf_model.h"

namespace splitwise::engine {

/** Batching mechanisms compared in the paper (Fig. 2). */
enum class BatchPolicy {
    /** Batch at request level; batch runs until all members finish. */
    kRequestLevel,
    /** Per-iteration scheduling, pure prompt or pure token batches;
     *  prompts preempt token phases (Orca-style). */
    kContinuous,
    /** Per-iteration scheduling with prompts and tokens co-scheduled
     *  (Sarathi-style; the paper's default). */
    kMixed,
};

/** Human-readable policy name. */
const char* batchPolicyName(BatchPolicy policy);

/** Tunables of the machine-level scheduler (paper SIV-B). */
struct MlsConfig {
    BatchPolicy policy = BatchPolicy::kMixed;
    /** Max prompt tokens batched together (2048; Fig. 6a). */
    std::int64_t promptTokenBudget = 2048;
    /**
     * Prompt tokens per iteration while decodes are co-resident
     * (Sarathi-style chunked prefill [23]); bounds the latency hit
     * mixed batching inflicts on token phases, at the cost of prompt
     * throughput. 0 (the default, matching the paper's mixed
     * continuous batching) runs whole prompts alongside decodes, so
     * co-scheduled token phases experience the full prompt runtime.
     */
    std::int64_t promptChunkTokens = 0;
    /** Hard cap on requests per iteration. */
    int maxBatchSize = 256;
    /** Token-phase preemptions allowed before ageing forces a run. */
    int maxPreemptions = 4;
};

/**
 * One iteration's batch: the prompt chunk and the decode set
 * (either side may be empty depending on policy and queues).
 */
struct BatchPlan {
    std::vector<LiveRequest*> prompts;
    std::vector<LiveRequest*> decodes;
    std::int64_t promptTokens = 0;

    bool
    empty() const
    {
        return prompts.empty() && decodes.empty();
    }

    /** Empty the plan, keeping vector capacity for reuse. */
    void
    clear()
    {
        prompts.clear();
        decodes.clear();
        promptTokens = 0;
    }

    /** Total KV context under the decode side. */
    std::int64_t contextTokens() const;

    /**
     * Active tokens in the paper's Fig. 4 sense: each prompt token
     * counts, each decode sequence counts as one.
     */
    std::int64_t activeTokens() const;

    /** Shape handed to the performance model. */
    model::IterationShape shape() const;
};

/**
 * The machine-level scheduler: owns the pending prompt queue, the
 * resident decode set, and the KV block manager; decides each
 * iteration's batch according to the configured policy.
 *
 * Pure logic - no simulator dependency - so each policy is unit
 * testable. The Machine drives it: nextBatch() at every iteration
 * boundary, then the completion notifications.
 */
class Mls {
  public:
    Mls(MlsConfig config, std::int64_t kv_capacity_tokens,
        int block_size_tokens = 16);

    /** FCFS-enqueue a request needing prompt computation. */
    void enqueuePrompt(LiveRequest* request);

    /**
     * Add a decode-phase resident whose KV blocks are already
     * allocated (local prompt completion or a finished transfer-in).
     */
    void addResident(LiveRequest* request);

    /**
     * Remove a request from the resident set and release its blocks
     * (request finished or was migrated away).
     */
    void finish(LiveRequest* request);

    /**
     * Drop every queued prompt, resident, and KV allocation (machine
     * failure, SIV-E). The owner restarts the affected requests.
     */
    void clearAll();

    /**
     * Plan the next iteration into @p plan (cleared first, capacity
     * reused - the Machine hot path passes the same plan every
     * iteration so steady state never allocates). May preempt a
     * resident (releasing its KV and re-queueing it for
     * recomputation) when memory is wedged; leaves @p plan empty when
     * there is nothing runnable.
     */
    void nextBatch(BatchPlan& plan);

    /** Convenience by-value wrapper (tests). */
    BatchPlan
    nextBatch()
    {
        BatchPlan plan;
        nextBatch(plan);
        return plan;
    }

    /** The paged KV allocator (shared with the owning machine). */
    BlockManager& blocks() { return blocks_; }
    const BlockManager& blocks() const { return blocks_; }

    /** Pending prompt work in tokens (the CLS's JSQ signal). */
    std::int64_t pendingPromptTokens() const;

    /** Number of queued prompt requests. */
    std::size_t pendingPrompts() const { return promptQueue_.size(); }

    /** Number of resident decode requests. */
    std::size_t residentCount() const { return residents_.size(); }

    /** True when @p request sits in the pending prompt queue. */
    bool queued(const LiveRequest* request) const;

    /** True when @p request is in the resident decode set. */
    bool resident(const LiveRequest* request) const;

    /** Total KV context tokens across residents. */
    std::int64_t residentContextTokens() const;

    /** True when any work (prompt or decode) is pending. */
    bool hasWork() const;

    /** True when prompt work is pending. */
    bool hasPromptWork() const { return !promptQueue_.empty(); }

    /** True when decode work is pending. */
    bool hasDecodeWork() const { return !residents_.empty(); }

    /** Total preemption-recompute events (statistics). */
    std::uint64_t preemptionCount() const { return preemptions_; }

    /**
     * Observer called when a resident is preempted back into the
     * prompt queue (telemetry attribution hook; the Machine installs
     * it so preempted decode time re-enters the queue phase).
     */
    void
    setPreemptHook(std::function<void(LiveRequest*)> hook)
    {
        onPreempt_ = std::move(hook);
    }

    const MlsConfig& config() const { return config_; }

  private:
    /** Tokens a prompt-phase run of @p request must process. */
    static std::int64_t promptWorkTokens(const LiveRequest* request);

    /**
     * Admit prompts from the queue head into @p plan. With
     * @p chunked set, only a bounded slice of the head prompt runs
     * this iteration (chunked prefill).
     */
    void admitPrompts(BatchPlan& plan, std::int64_t token_budget,
                      int slot_budget, bool chunked);

    /** Admit runnable residents into @p plan. */
    void admitDecodes(BatchPlan& plan, int slot_budget);

    /** Policy planners fill an already-cleared @p plan. */
    void planMixed(BatchPlan& plan);
    void planContinuous(BatchPlan& plan);
    void planRequestLevel(BatchPlan& plan);

    /**
     * Preempt the newest resident to unwedge memory: release its KV
     * and push it to the front of the prompt queue for
     * recomputation.
     *
     * @return true if a victim was preempted.
     */
    bool preemptForMemory();

    MlsConfig config_;
    BlockManager blocks_;
    std::deque<LiveRequest*> promptQueue_;
    std::vector<LiveRequest*> residents_;
    /** Members of the in-flight request-level batch. */
    std::unordered_set<LiveRequest*> requestLevelBatch_;
    std::uint64_t preemptions_ = 0;
    std::function<void(LiveRequest*)> onPreempt_;
};

}  // namespace splitwise::engine

#endif  // SPLITWISE_ENGINE_MLS_H_
