#include "workload/workloads.h"

#include "sim/log.h"

namespace splitwise::workload {

namespace {

/**
 * Anchor quantiles reconstructed from the published coding and
 * conversation trace CDFs (Fig. 3); medians match the values stated
 * in the text (coding 1500/13, conversation 1020/129).
 */
std::shared_ptr<TokenDistribution>
codingPrompts()
{
    return std::make_shared<EmpiricalDistribution>(
        std::vector<std::pair<double, std::int64_t>>{
            {0.00, 64},
            {0.10, 300},
            {0.25, 800},
            {0.50, 1500},
            {0.75, 2500},
            {0.90, 3600},
            {0.99, 6200},
            {1.00, 8000},
        });
}

std::shared_ptr<TokenDistribution>
codingOutputs()
{
    return std::make_shared<EmpiricalDistribution>(
        std::vector<std::pair<double, std::int64_t>>{
            {0.00, 1},
            {0.25, 5},
            {0.50, 13},
            {0.75, 33},
            {0.90, 70},
            {0.99, 180},
            {1.00, 350},
        });
}

std::shared_ptr<TokenDistribution>
conversationPrompts()
{
    return std::make_shared<EmpiricalDistribution>(
        std::vector<std::pair<double, std::int64_t>>{
            {0.00, 8},
            {0.10, 60},
            {0.25, 320},
            {0.50, 1020},
            {0.75, 2100},
            {0.90, 3700},
            {0.99, 7200},
            {1.00, 9000},
        });
}

std::shared_ptr<TokenDistribution>
conversationOutputs()
{
    // Bimodal (Fig. 3b): a short-reply mode around a few tens of
    // tokens and a long-form mode around a few hundred, mixed so the
    // overall median lands at 129 tokens.
    auto short_mode = std::make_shared<EmpiricalDistribution>(
        std::vector<std::pair<double, std::int64_t>>{
            {0.00, 1},
            {0.50, 25},
            {1.00, 120},
        });
    auto long_mode = std::make_shared<EmpiricalDistribution>(
        std::vector<std::pair<double, std::int64_t>>{
            {0.00, 130},
            {0.50, 290},
            {0.90, 550},
            {1.00, 900},
        });
    return std::make_shared<MixtureDistribution>(short_mode, long_mode, 0.48);
}

}  // namespace

const Workload&
coding()
{
    static const Workload w = {
        .name = "coding",
        .promptTokens = codingPrompts(),
        .outputTokens = codingOutputs(),
    };
    return w;
}

const Workload&
conversation()
{
    static const Workload w = {
        .name = "conversation",
        .promptTokens = conversationPrompts(),
        .outputTokens = conversationOutputs(),
    };
    return w;
}

const Workload&
workloadByName(const std::string& name)
{
    if (name == "coding")
        return coding();
    if (name == "conversation")
        return conversation();
    sim::fatal("unknown workload: " + name);
}

}  // namespace splitwise::workload
