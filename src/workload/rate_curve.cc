#include "workload/rate_curve.h"

#include <cmath>

#include "sim/log.h"

namespace splitwise::workload {

RateCurve::RateCurve(double trough, double peak, sim::TimeUs period,
                     sim::TimeUs phase)
    : trough_(trough), peak_(peak), period_(period), phase_(phase)
{
}

RateCurve
RateCurve::constant(double rps)
{
    if (rps <= 0.0)
        sim::fatal("RateCurve::constant: rps must be positive");
    return RateCurve(rps, rps, 0, 0);
}

RateCurve
RateCurve::diurnal(double trough_rps, double peak_rps, sim::TimeUs period,
                   sim::TimeUs phase)
{
    if (trough_rps <= 0.0 || peak_rps < trough_rps)
        sim::fatal("RateCurve::diurnal: need 0 < trough <= peak");
    if (period <= 0)
        sim::fatal("RateCurve::diurnal: period must be positive");
    return RateCurve(trough_rps, peak_rps, period, phase);
}

RateCurve&
RateCurve::addSpike(sim::TimeUs start, sim::TimeUs duration, double multiplier)
{
    if (duration <= 0)
        sim::fatal("RateCurve::addSpike: duration must be positive");
    if (multiplier <= 1.0)
        sim::fatal("RateCurve::addSpike: multiplier must exceed 1");
    spikes_.push_back({start, start + duration, multiplier});
    return *this;
}

double
RateCurve::rateAt(sim::TimeUs t) const
{
    double rate = trough_;
    if (period_ > 0) {
        constexpr double kTwoPi = 6.283185307179586476925286766559;
        const double cycle =
            static_cast<double>(t + phase_) / static_cast<double>(period_);
        rate = trough_ +
               (peak_ - trough_) * 0.5 * (1.0 - std::cos(kTwoPi * cycle));
    }
    for (const auto& s : spikes_) {
        if (t >= s.start && t < s.end)
            rate *= s.multiplier;
    }
    return rate;
}

double
RateCurve::maxRate() const
{
    double bound = peak_;
    for (const auto& s : spikes_)
        bound *= s.multiplier;
    return bound;
}

}  // namespace splitwise::workload
