#ifndef SPLITWISE_WORKLOAD_TRACE_GEN_H_
#define SPLITWISE_WORKLOAD_TRACE_GEN_H_

#include <cstdint>
#include <memory>

#include "sim/rng.h"
#include "sim/time.h"
#include "workload/rate_curve.h"
#include "workload/trace.h"
#include "workload/trace_stream.h"
#include "workload/workloads.h"

namespace splitwise::workload {

/**
 * A TraceStream that samples requests from a workload's token
 * distributions on demand. Owns a snapshot of the generator's
 * sampling state (workload, rng, next id), so pulling from the
 * stream consumes exactly the draws a materialized generate() call
 * would - the generator syncs the state back after a drain, which is
 * what guarantees streamed and materialized traces are identical.
 */
class GenTraceStream : public TraceStream {
  public:
    GenTraceStream(Workload workload, sim::Rng rng, std::uint64_t next_id)
        : workload_(std::move(workload)), rng_(rng), nextId_(next_id)
    {
    }

    /** Sampling state after the pulls so far (for sync-back). */
    const sim::Rng& rng() const { return rng_; }
    std::uint64_t nextId() const { return nextId_; }

  protected:
    Request makeRequest(sim::TimeUs arrival);

    Workload workload_;
    sim::Rng rng_;
    std::uint64_t nextId_;
};

/**
 * Generates request traces from a workload's token distributions
 * with Poisson arrivals - the paper tunes the Poisson rate to sweep
 * cluster load (SV-B).
 *
 * Each generate*() overload has a stream*() twin returning a pull
 * based GenTraceStream that yields the identical request sequence
 * without materializing it; generate*() is implemented as a drain of
 * its twin, so the two can never diverge.
 */
class TraceGenerator {
  public:
    /**
     * @param workload Token size distributions to sample.
     * @param seed Seed for the deterministic sampling stream.
     */
    TraceGenerator(Workload workload, std::uint64_t seed);

    /**
     * Generate a trace with Poisson arrivals.
     *
     * @param rps Mean arrival rate, requests/s (> 0).
     * @param duration Trace length in simulated time.
     */
    Trace generate(double rps, sim::TimeUs duration);

    /**
     * Generate @p count requests arriving at a fixed interval
     * (useful for deterministic tests and characterization runs).
     */
    Trace generateUniform(std::size_t count, sim::TimeUs interval);

    /**
     * Generate a trace whose arrival rate follows @p curve - a
     * non-homogeneous Poisson process sampled by thinning against
     * the curve's maxRate() envelope. Deterministic per seed.
     */
    Trace generate(const RateCurve& curve, sim::TimeUs duration);

    /**
     * Pull-based twins: the stream snapshots the generator's current
     * sampling state and advances independently. The generator's own
     * state is NOT advanced; call adopt() after draining to fold the
     * stream's final state back in (generate*() does exactly that).
     */
    std::unique_ptr<GenTraceStream> streamPoisson(double rps,
                                                  sim::TimeUs duration) const;
    std::unique_ptr<GenTraceStream> streamUniform(std::size_t count,
                                                  sim::TimeUs interval) const;
    std::unique_ptr<GenTraceStream> streamCurve(const RateCurve& curve,
                                                sim::TimeUs duration) const;

    /** Fold a drained stream's sampling state back into this. */
    void adopt(const GenTraceStream& stream);

  private:
    Workload workload_;
    sim::Rng rng_;
    std::uint64_t nextId_ = 0;
};

/**
 * Mark a random @p sheddable_fraction of @p trace priority 1 (batch
 * work the brownout ladder sheds first); the rest stay priority 0
 * (interactive). Deterministic per @p seed, independent of the
 * generator's sampling stream.
 */
void assignPriorities(Trace& trace, double sheddable_fraction,
                      std::uint64_t seed);

}  // namespace splitwise::workload

#endif  // SPLITWISE_WORKLOAD_TRACE_GEN_H_
