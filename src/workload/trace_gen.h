#ifndef SPLITWISE_WORKLOAD_TRACE_GEN_H_
#define SPLITWISE_WORKLOAD_TRACE_GEN_H_

#include <cstdint>

#include "sim/rng.h"
#include "sim/time.h"
#include "workload/rate_curve.h"
#include "workload/trace.h"
#include "workload/workloads.h"

namespace splitwise::workload {

/**
 * Generates request traces from a workload's token distributions
 * with Poisson arrivals - the paper tunes the Poisson rate to sweep
 * cluster load (SV-B).
 */
class TraceGenerator {
  public:
    /**
     * @param workload Token size distributions to sample.
     * @param seed Seed for the deterministic sampling stream.
     */
    TraceGenerator(Workload workload, std::uint64_t seed);

    /**
     * Generate a trace with Poisson arrivals.
     *
     * @param rps Mean arrival rate, requests/s (> 0).
     * @param duration Trace length in simulated time.
     */
    Trace generate(double rps, sim::TimeUs duration);

    /**
     * Generate @p count requests arriving at a fixed interval
     * (useful for deterministic tests and characterization runs).
     */
    Trace generateUniform(std::size_t count, sim::TimeUs interval);

    /**
     * Generate a trace whose arrival rate follows @p curve - a
     * non-homogeneous Poisson process sampled by thinning against
     * the curve's maxRate() envelope. Deterministic per seed.
     */
    Trace generate(const RateCurve& curve, sim::TimeUs duration);

  private:
    Request makeRequest(sim::TimeUs arrival);

    Workload workload_;
    sim::Rng rng_;
    std::uint64_t nextId_ = 0;
};

/**
 * Mark a random @p sheddable_fraction of @p trace priority 1 (batch
 * work the brownout ladder sheds first); the rest stay priority 0
 * (interactive). Deterministic per @p seed, independent of the
 * generator's sampling stream.
 */
void assignPriorities(Trace& trace, double sheddable_fraction,
                      std::uint64_t seed);

}  // namespace splitwise::workload

#endif  // SPLITWISE_WORKLOAD_TRACE_GEN_H_
