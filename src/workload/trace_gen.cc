#include "workload/trace_gen.h"

#include "sim/log.h"

namespace splitwise::workload {

TraceGenerator::TraceGenerator(Workload workload, std::uint64_t seed)
    : workload_(std::move(workload)), rng_(seed)
{
}

Request
TraceGenerator::makeRequest(sim::TimeUs arrival)
{
    Request r;
    r.id = nextId_++;
    r.arrival = arrival;
    r.promptTokens = workload_.promptTokens->sample(rng_);
    r.outputTokens = workload_.outputTokens->sample(rng_);
    return r;
}

Trace
TraceGenerator::generate(double rps, sim::TimeUs duration)
{
    if (rps <= 0.0)
        sim::fatal("TraceGenerator: rps must be positive");
    Trace trace;
    double t_s = 0.0;
    const double horizon_s = sim::usToSeconds(duration);
    while (true) {
        t_s += rng_.exponential(rps);
        if (t_s >= horizon_s)
            break;
        trace.push_back(makeRequest(sim::secondsToUs(t_s)));
    }
    return trace;
}

Trace
TraceGenerator::generateUniform(std::size_t count, sim::TimeUs interval)
{
    Trace trace;
    trace.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        trace.push_back(makeRequest(static_cast<sim::TimeUs>(i) * interval));
    return trace;
}

Trace
TraceGenerator::generate(const RateCurve& curve, sim::TimeUs duration)
{
    // Thinning (Lewis-Shedler): draw candidates at the envelope rate
    // and keep each with probability lambda(t)/envelope. Every
    // candidate consumes the same rng draws whether kept or not, so
    // the stream stays aligned across curve tweaks to spike windows.
    const double bound = curve.maxRate();
    if (bound <= 0.0)
        sim::fatal("TraceGenerator: rate curve has non-positive envelope");
    Trace trace;
    double t_s = 0.0;
    const double horizon_s = sim::usToSeconds(duration);
    while (true) {
        t_s += rng_.exponential(bound);
        if (t_s >= horizon_s)
            break;
        const sim::TimeUs t = sim::secondsToUs(t_s);
        if (rng_.bernoulli(curve.rateAt(t) / bound))
            trace.push_back(makeRequest(t));
    }
    return trace;
}

void
assignPriorities(Trace& trace, double sheddable_fraction, std::uint64_t seed)
{
    if (sheddable_fraction < 0.0 || sheddable_fraction > 1.0)
        sim::fatal("assignPriorities: fraction must lie in [0, 1]");
    sim::Rng rng(seed);
    for (auto& r : trace)
        r.priority = rng.bernoulli(sheddable_fraction) ? 1 : 0;
}

}  // namespace splitwise::workload
