#include "workload/trace_gen.h"

#include "sim/log.h"

namespace splitwise::workload {

TraceGenerator::TraceGenerator(Workload workload, std::uint64_t seed)
    : workload_(std::move(workload)), rng_(seed)
{
}

Request
TraceGenerator::makeRequest(sim::TimeUs arrival)
{
    Request r;
    r.id = nextId_++;
    r.arrival = arrival;
    r.promptTokens = workload_.promptTokens->sample(rng_);
    r.outputTokens = workload_.outputTokens->sample(rng_);
    return r;
}

Trace
TraceGenerator::generate(double rps, sim::TimeUs duration)
{
    if (rps <= 0.0)
        sim::fatal("TraceGenerator: rps must be positive");
    Trace trace;
    double t_s = 0.0;
    const double horizon_s = sim::usToSeconds(duration);
    while (true) {
        t_s += rng_.exponential(rps);
        if (t_s >= horizon_s)
            break;
        trace.push_back(makeRequest(sim::secondsToUs(t_s)));
    }
    return trace;
}

Trace
TraceGenerator::generateUniform(std::size_t count, sim::TimeUs interval)
{
    Trace trace;
    trace.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        trace.push_back(makeRequest(static_cast<sim::TimeUs>(i) * interval));
    return trace;
}

}  // namespace splitwise::workload
