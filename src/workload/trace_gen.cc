#include "workload/trace_gen.h"

#include "sim/log.h"

namespace splitwise::workload {

namespace {

/** Poisson-arrival stream (generate(rps, duration)'s twin). */
class PoissonStream final : public GenTraceStream {
  public:
    PoissonStream(Workload workload, sim::Rng rng, std::uint64_t next_id,
                  double rps, sim::TimeUs duration)
        : GenTraceStream(std::move(workload), rng, next_id), rps_(rps),
          horizonS_(sim::usToSeconds(duration))
    {
    }

    bool
    next(Request& out) override
    {
        if (done_)
            return false;
        tS_ += rng_.exponential(rps_);
        if (tS_ >= horizonS_) {
            done_ = true;
            return false;
        }
        out = makeRequest(sim::secondsToUs(tS_));
        return true;
    }

  private:
    double rps_;
    double horizonS_;
    double tS_ = 0.0;
    bool done_ = false;
};

/** Fixed-interval stream (generateUniform's twin). */
class UniformStream final : public GenTraceStream {
  public:
    UniformStream(Workload workload, sim::Rng rng, std::uint64_t next_id,
                  std::size_t count, sim::TimeUs interval)
        : GenTraceStream(std::move(workload), rng, next_id), count_(count),
          interval_(interval)
    {
    }

    bool
    next(Request& out) override
    {
        if (emitted_ >= count_)
            return false;
        out = makeRequest(static_cast<sim::TimeUs>(emitted_) * interval_);
        ++emitted_;
        return true;
    }

  private:
    std::size_t count_;
    sim::TimeUs interval_;
    std::size_t emitted_ = 0;
};

/** Thinned non-homogeneous Poisson stream (rate-curve twin). */
class CurveStream final : public GenTraceStream {
  public:
    CurveStream(Workload workload, sim::Rng rng, std::uint64_t next_id,
                RateCurve curve, sim::TimeUs duration)
        : GenTraceStream(std::move(workload), rng, next_id),
          curve_(std::move(curve)), bound_(curve_.maxRate()),
          horizonS_(sim::usToSeconds(duration))
    {
        if (bound_ <= 0.0)
            sim::fatal("TraceGenerator: rate curve has non-positive envelope");
    }

    bool
    next(Request& out) override
    {
        // Thinning (Lewis-Shedler): draw candidates at the envelope
        // rate and keep each with probability lambda(t)/envelope.
        // Every candidate consumes the same rng draws whether kept
        // or not, so the stream stays aligned across curve tweaks to
        // spike windows.
        while (!done_) {
            tS_ += rng_.exponential(bound_);
            if (tS_ >= horizonS_) {
                done_ = true;
                return false;
            }
            const sim::TimeUs t = sim::secondsToUs(tS_);
            if (rng_.bernoulli(curve_.rateAt(t) / bound_)) {
                out = makeRequest(t);
                return true;
            }
        }
        return false;
    }

  private:
    RateCurve curve_;
    double bound_;
    double horizonS_;
    double tS_ = 0.0;
    bool done_ = false;
};

}  // namespace

Request
GenTraceStream::makeRequest(sim::TimeUs arrival)
{
    Request r;
    r.id = nextId_++;
    r.arrival = arrival;
    r.promptTokens = workload_.promptTokens->sample(rng_);
    r.outputTokens = workload_.outputTokens->sample(rng_);
    return r;
}

TraceGenerator::TraceGenerator(Workload workload, std::uint64_t seed)
    : workload_(std::move(workload)), rng_(seed)
{
}

std::unique_ptr<GenTraceStream>
TraceGenerator::streamPoisson(double rps, sim::TimeUs duration) const
{
    if (rps <= 0.0)
        sim::fatal("TraceGenerator: rps must be positive");
    return std::make_unique<PoissonStream>(workload_, rng_, nextId_, rps,
                                           duration);
}

std::unique_ptr<GenTraceStream>
TraceGenerator::streamUniform(std::size_t count, sim::TimeUs interval) const
{
    return std::make_unique<UniformStream>(workload_, rng_, nextId_, count,
                                           interval);
}

std::unique_ptr<GenTraceStream>
TraceGenerator::streamCurve(const RateCurve& curve, sim::TimeUs duration) const
{
    return std::make_unique<CurveStream>(workload_, rng_, nextId_, curve,
                                         duration);
}

void
TraceGenerator::adopt(const GenTraceStream& stream)
{
    rng_ = stream.rng();
    nextId_ = stream.nextId();
}

Trace
TraceGenerator::generate(double rps, sim::TimeUs duration)
{
    auto stream = streamPoisson(rps, duration);
    Trace trace = drainStream(*stream);
    adopt(*stream);
    return trace;
}

Trace
TraceGenerator::generateUniform(std::size_t count, sim::TimeUs interval)
{
    auto stream = streamUniform(count, interval);
    Trace trace;
    trace.reserve(count);
    Request r;
    while (stream->next(r))
        trace.push_back(r);
    adopt(*stream);
    return trace;
}

Trace
TraceGenerator::generate(const RateCurve& curve, sim::TimeUs duration)
{
    auto stream = streamCurve(curve, duration);
    Trace trace = drainStream(*stream);
    adopt(*stream);
    return trace;
}

void
assignPriorities(Trace& trace, double sheddable_fraction, std::uint64_t seed)
{
    if (sheddable_fraction < 0.0 || sheddable_fraction > 1.0)
        sim::fatal("assignPriorities: fraction must lie in [0, 1]");
    sim::Rng rng(seed);
    for (auto& r : trace)
        r.priority = rng.bernoulli(sheddable_fraction) ? 1 : 0;
}

}  // namespace splitwise::workload
