#ifndef SPLITWISE_WORKLOAD_TRACE_H_
#define SPLITWISE_WORKLOAD_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace splitwise::workload {

/**
 * One inference request, in the format of the Azure LLM inference
 * trace release: arrival time plus input and output token counts
 * (the trace does not include prompt text; SIII).
 */
struct Request {
    std::uint64_t id = 0;
    sim::TimeUs arrival = 0;
    std::int64_t promptTokens = 0;
    std::int64_t outputTokens = 0;
    /**
     * Scheduling priority: 0 = interactive (default), higher values
     * are increasingly sheddable background/batch traffic. The
     * brownout ladder drops the highest values first.
     */
    int priority = 0;
    /**
     * Multi-turn session this request belongs to; 0 = standalone
     * request (default). Turns of one session share a growing prompt
     * prefix, which the prefix-cache policy can reuse.
     */
    std::uint64_t session = 0;
    /** Zero-based turn index within the session. */
    int turn = 0;
};

/** A request trace sorted by arrival time. */
using Trace = std::vector<Request>;

/** Mean request rate of a trace over its span, requests/s. */
double traceRps(const Trace& trace);

/** Duration from first to last arrival. */
sim::TimeUs traceSpan(const Trace& trace);

/**
 * Write a trace as CSV with header
 * `id,arrival_us,prompt_tokens,output_tokens,priority,session,turn`.
 */
void writeCsv(const Trace& trace, const std::string& path);

/**
 * Read a trace written by writeCsv. The trailing priority and
 * session/turn columns are optional so traces from before they
 * existed still load (priority 0, no session).
 *
 * @throws std::runtime_error on malformed rows (via sim::fatal).
 */
Trace readCsv(const std::string& path);

namespace detail {
/**
 * Parse one writeCsv data row. @p path only labels error messages.
 * Shared by readCsv and the pull-based CsvTraceStream.
 */
Request parseCsvRow(const std::string& line, const std::string& path);
}  // namespace detail

}  // namespace splitwise::workload

#endif  // SPLITWISE_WORKLOAD_TRACE_H_
