#include "workload/multi_turn.h"

#include <algorithm>

#include "sim/log.h"

namespace splitwise::workload {

MultiTurnConfig
defaultMultiTurnConfig()
{
    MultiTurnConfig config;
    config.userTokens = std::make_shared<EmpiricalDistribution>(
        std::vector<std::pair<double, std::int64_t>>{
            {0.00, 8},
            {0.50, 120},
            {0.90, 600},
            {1.00, 2000},
        });
    config.outputTokens = std::make_shared<EmpiricalDistribution>(
        std::vector<std::pair<double, std::int64_t>>{
            {0.00, 1},
            {0.50, 129},
            {0.90, 450},
            {1.00, 900},
        });
    return config;
}

MultiTurnTraceGenerator::MultiTurnTraceGenerator(MultiTurnConfig config,
                                                 std::uint64_t seed)
    : config_(std::move(config)), rng_(seed)
{
    if (!config_.userTokens || !config_.outputTokens)
        sim::fatal("MultiTurnTraceGenerator: missing distributions");
    if (config_.minTurns < 1 || config_.maxTurns < config_.minTurns)
        sim::fatal("MultiTurnTraceGenerator: bad turn bounds");
    if (config_.maxContextTokens < 1)
        sim::fatal("MultiTurnTraceGenerator: bad context cap");
}

Trace
MultiTurnTraceGenerator::generate(double sessions_per_s, sim::TimeUs duration)
{
    if (sessions_per_s <= 0.0)
        sim::fatal("MultiTurnTraceGenerator: rate must be positive");

    Trace trace;
    lastSessions_ = 0;
    double session_start_s = 0.0;
    const double horizon_s = sim::usToSeconds(duration);
    while (true) {
        session_start_s += rng_.exponential(sessions_per_s);
        if (session_start_s >= horizon_s)
            break;
        ++lastSessions_;

        const int turns = static_cast<int>(
            rng_.uniformInt(config_.minTurns, config_.maxTurns));
        double t_s = session_start_s;
        std::int64_t context = 0;
        for (int turn = 0; turn < turns; ++turn) {
            const std::int64_t user = config_.userTokens->sample(rng_);
            const std::int64_t output = config_.outputTokens->sample(rng_);
            // Chat APIs resend the whole context: prior prompts and
            // outputs plus the new user message (capped at the API
            // context limit).
            context = std::min(context + user, config_.maxContextTokens);
            Request r;
            r.id = nextId_++;
            r.arrival = sim::secondsToUs(t_s);
            r.promptTokens = context;
            r.outputTokens = output;
            trace.push_back(r);
            context = std::min(context + output, config_.maxContextTokens);
            // The user reads the reply, then types the next turn.
            t_s += sim::usToSeconds(sim::msToUs(50.0)) +
                   rng_.exponential(1.0 / config_.thinkTimeMeanS);
        }
    }

    std::sort(trace.begin(), trace.end(),
              [](const Request& a, const Request& b) {
                  return a.arrival != b.arrival ? a.arrival < b.arrival
                                                : a.id < b.id;
              });
    return trace;
}

}  // namespace splitwise::workload
