#include "workload/multi_turn.h"

#include "sim/log.h"

namespace splitwise::workload {

MultiTurnConfig
defaultMultiTurnConfig()
{
    MultiTurnConfig config;
    config.userTokens = std::make_shared<EmpiricalDistribution>(
        std::vector<std::pair<double, std::int64_t>>{
            {0.00, 8},
            {0.50, 120},
            {0.90, 600},
            {1.00, 2000},
        });
    config.outputTokens = std::make_shared<EmpiricalDistribution>(
        std::vector<std::pair<double, std::int64_t>>{
            {0.00, 1},
            {0.50, 129},
            {0.90, 450},
            {1.00, 900},
        });
    return config;
}

ContextAccum
accumulateContext(std::int64_t context, std::int64_t added, std::int64_t cap)
{
    const std::int64_t grown = context + added;
    if (grown > cap)
        return {cap, true};
    return {grown, false};
}

bool
contextPrefixValid(std::int64_t stored_tokens, std::int64_t prompt_tokens,
                   std::int64_t cap)
{
    return stored_tokens > 0 && stored_tokens < prompt_tokens &&
           prompt_tokens < cap;
}

bool
contextCacheStorable(const ContextAccum& context, std::int64_t cap)
{
    return !context.truncated && context.tokens < cap;
}

MultiTurnTraceGenerator::MultiTurnTraceGenerator(MultiTurnConfig config,
                                                 std::uint64_t seed)
    : config_(std::move(config)), rng_(seed)
{
    if (!config_.userTokens || !config_.outputTokens)
        sim::fatal("MultiTurnTraceGenerator: missing distributions");
    if (config_.minTurns < 1 || config_.maxTurns < config_.minTurns)
        sim::fatal("MultiTurnTraceGenerator: bad turn bounds");
    if (config_.maxContextTokens < 1)
        sim::fatal("MultiTurnTraceGenerator: bad context cap");
}

Trace
MultiTurnTraceGenerator::generate(double sessions_per_s, sim::TimeUs duration)
{
    auto s = stream(sessions_per_s, duration);
    Trace trace = drainStream(*s);
    adopt(*s);
    return trace;
}

std::unique_ptr<MultiTurnTraceStream>
MultiTurnTraceGenerator::stream(double sessions_per_s, sim::TimeUs duration)
{
    if (sessions_per_s <= 0.0)
        sim::fatal("MultiTurnTraceGenerator: rate must be positive");
    return std::unique_ptr<MultiTurnTraceStream>(
        new MultiTurnTraceStream(*this, sessions_per_s, duration));
}

void
MultiTurnTraceGenerator::adopt(const MultiTurnTraceStream& stream)
{
    rng_ = stream.rng();
    nextId_ = stream.nextId();
    nextSession_ = stream.nextSession();
    lastSessions_ = stream.sessionCount();
}

MultiTurnTraceStream::MultiTurnTraceStream(const MultiTurnTraceGenerator& gen,
                                           double sessions_per_s,
                                           sim::TimeUs duration)
    : config_(gen.config_),
      rng_(gen.rng_),
      nextId_(gen.nextId_),
      nextSession_(gen.nextSession_),
      rate_(sessions_per_s),
      horizonS_(sim::usToSeconds(duration))
{
    nextStartS_ = rng_.exponential(rate_);
    exhausted_ = nextStartS_ >= horizonS_;
}

void
MultiTurnTraceStream::openSession()
{
    ++sessions_;
    const std::uint64_t session = nextSession_++;
    const int turns = static_cast<int>(
        rng_.uniformInt(config_.minTurns, config_.maxTurns));
    double t_s = nextStartS_;
    ContextAccum context{0, false};
    for (int turn = 0; turn < turns; ++turn) {
        const std::int64_t user = config_.userTokens->sample(rng_);
        const std::int64_t output = config_.outputTokens->sample(rng_);
        // Chat APIs resend the whole context: prior prompts and
        // outputs plus the new user message (capped at the API
        // context limit, which slides the window once exceeded).
        context = accumulateContext(context.tokens, user,
                                    config_.maxContextTokens);
        Request r;
        r.id = nextId_++;
        r.arrival = sim::secondsToUs(t_s);
        r.promptTokens = context.tokens;
        r.outputTokens = output;
        r.session = session;
        r.turn = turn;
        pending_.push(r);
        context = accumulateContext(context.tokens, output,
                                    config_.maxContextTokens);
        // The user reads the reply, then types the next turn.
        t_s += sim::usToSeconds(sim::msToUs(50.0)) +
               rng_.exponential(1.0 / config_.thinkTimeMeanS);
    }
    nextStartS_ += rng_.exponential(rate_);
    exhausted_ = nextStartS_ >= horizonS_;
}

bool
MultiTurnTraceStream::next(Request& out)
{
    // A pending turn is safe to emit only once every session starting
    // at or before its arrival has been materialized: later sessions
    // can only produce later (arrival, id) pairs.
    while (!exhausted_ &&
           (pending_.empty() ||
            sim::secondsToUs(nextStartS_) <= pending_.top().arrival)) {
        openSession();
    }
    if (pending_.empty())
        return false;
    out = pending_.top();
    pending_.pop();
    return true;
}

}  // namespace splitwise::workload
