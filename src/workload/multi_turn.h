#ifndef SPLITWISE_WORKLOAD_MULTI_TURN_H_
#define SPLITWISE_WORKLOAD_MULTI_TURN_H_

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"
#include "workload/distribution.h"
#include "workload/trace.h"
#include "workload/trace_stream.h"

namespace splitwise::workload {

/** Default cap on a session's resent context, tokens (API limit).
 *  Shared between MultiTurnConfig and the prefix-cache policy so the
 *  generator and the cache-key logic agree on truncation. */
inline constexpr std::int64_t kDefaultMaxContextTokens = 16384;

/**
 * Multi-turn chat sessions (paper SVII, "conversation back and
 * forth"): chat APIs resend the complete context on every turn, so a
 * session's prompt grows by the previous turn's prompt, its output,
 * and the new user message. Later turns are therefore increasingly
 * prompt-heavy - the regime the paper expects to further favour
 * phase splitting.
 */
struct MultiTurnConfig {
    /** Turns per session, uniform in [minTurns, maxTurns]. */
    int minTurns = 2;
    int maxTurns = 6;
    /** New user tokens added each turn. */
    std::shared_ptr<TokenDistribution> userTokens;
    /** Assistant output tokens per turn. */
    std::shared_ptr<TokenDistribution> outputTokens;
    /** Mean user think time between turns, seconds (exponential). */
    double thinkTimeMeanS = 20.0;
    /** Cap on a session's resent context, tokens (API limit). */
    std::int64_t maxContextTokens = kDefaultMaxContextTokens;
};

/** A default configuration shaped like the conversation service. */
MultiTurnConfig defaultMultiTurnConfig();

/**
 * The result of growing a session context by @p added tokens under
 * the API context cap: the new resent-context size plus whether the
 * cap truncated it.
 */
struct ContextAccum {
    std::int64_t tokens = 0;
    bool truncated = false;
};

/**
 * Deterministic context accumulation, shared between the trace
 * generator and the prefix-cache key logic. Truncation drops the
 * *oldest* tokens (a sliding window), so once a session has been
 * truncated its stored context is no longer a prefix of the next
 * prompt - which is why the two sides must agree on exactly when
 * truncation happens.
 */
ContextAccum accumulateContext(std::int64_t context, std::int64_t added,
                               std::int64_t cap);

/**
 * Whether a stored context of @p stored_tokens is a valid reusable
 * prefix of a follow-up prompt of @p prompt_tokens under @p cap.
 *
 * Requires strict growth (there is always at least one new user
 * token to prefill) and an un-truncated prompt: a prompt at the cap
 * may have slid the window, so it is conservatively a miss. Because
 * accumulateContext() pins a truncated session at the cap forever,
 * `prompt < cap` also implies no truncation ever occurred.
 */
bool contextPrefixValid(std::int64_t stored_tokens,
                        std::int64_t prompt_tokens, std::int64_t cap);

/**
 * Whether a completed turn's context of @p tokens may be stored as a
 * cached prefix for the session's next turn. Contexts at (or
 * truncated to) the cap are not storable: the next prompt can never
 * validate them via contextPrefixValid().
 */
bool contextCacheStorable(const ContextAccum& context, std::int64_t cap);

class MultiTurnTraceStream;

/**
 * Generates request traces of interleaved multi-turn sessions with
 * Poisson session arrivals. Each turn is one inference request whose
 * prompt is the session's full accumulated context; requests carry
 * their session id and turn index.
 */
class MultiTurnTraceGenerator {
  public:
    MultiTurnTraceGenerator(MultiTurnConfig config, std::uint64_t seed);

    /**
     * Generate a trace of sessions arriving at @p sessions_per_s
     * over @p duration. Turns may land after the horizon (think
     * time); the trace is sorted by arrival. Implemented as a full
     * drain of the stream() twin, so the two can never diverge.
     */
    Trace generate(double sessions_per_s, sim::TimeUs duration);

    /**
     * The same workload as a pull-based stream: sessions are
     * materialized lazily as the arrival frontier reaches them, so
     * memory stays O(concurrently open sessions) instead of O(trace).
     * The generator's own state is not advanced; call adopt() on the
     * drained stream to fold the state back (what generate() does).
     */
    std::unique_ptr<MultiTurnTraceStream> stream(double sessions_per_s,
                                                 sim::TimeUs duration);

    /** Fold a drained stream's state back into this generator. */
    void adopt(const MultiTurnTraceStream& stream);

    /** Sessions produced by the last generate()/adopt(). */
    std::size_t lastSessionCount() const { return lastSessions_; }

  private:
    friend class MultiTurnTraceStream;

    MultiTurnConfig config_;
    sim::Rng rng_;
    std::uint64_t nextId_ = 0;
    std::uint64_t nextSession_ = 1;
    std::size_t lastSessions_ = 0;
};

/**
 * Pull-based twin of MultiTurnTraceGenerator::generate. A session's
 * turns are drawn all at once when its start is reached (the exact
 * RNG draw order of the materialized path) and merged by
 * (arrival, id) through a heap of pending turns; a turn is emitted
 * only once no later-starting session could precede it.
 */
class MultiTurnTraceStream final : public TraceStream {
  public:
    bool next(Request& out) override;

    sim::Rng rng() const { return rng_; }
    std::uint64_t nextId() const { return nextId_; }
    std::uint64_t nextSession() const { return nextSession_; }
    std::size_t sessionCount() const { return sessions_; }

  private:
    friend class MultiTurnTraceGenerator;

    MultiTurnTraceStream(const MultiTurnTraceGenerator& gen,
                         double sessions_per_s, sim::TimeUs duration);

    /** Draw the next session's turns into the heap, then advance the
     *  session-start frontier. */
    void openSession();

    struct Later {
        bool operator()(const Request& a, const Request& b) const
        {
            return a.arrival != b.arrival ? a.arrival > b.arrival
                                          : a.id > b.id;
        }
    };

    MultiTurnConfig config_;
    sim::Rng rng_;
    std::uint64_t nextId_ = 0;
    std::uint64_t nextSession_ = 1;
    std::size_t sessions_ = 0;
    double rate_ = 0.0;
    double horizonS_ = 0.0;
    double nextStartS_ = 0.0;
    bool exhausted_ = false;
    std::priority_queue<Request, std::vector<Request>, Later> pending_;
};

}  // namespace splitwise::workload

#endif  // SPLITWISE_WORKLOAD_MULTI_TURN_H_
