#ifndef SPLITWISE_WORKLOAD_MULTI_TURN_H_
#define SPLITWISE_WORKLOAD_MULTI_TURN_H_

#include <cstdint>
#include <memory>

#include "sim/rng.h"
#include "sim/time.h"
#include "workload/distribution.h"
#include "workload/trace.h"

namespace splitwise::workload {

/**
 * Multi-turn chat sessions (paper SVII, "conversation back and
 * forth"): chat APIs resend the complete context on every turn, so a
 * session's prompt grows by the previous turn's prompt, its output,
 * and the new user message. Later turns are therefore increasingly
 * prompt-heavy - the regime the paper expects to further favour
 * phase splitting.
 */
struct MultiTurnConfig {
    /** Turns per session, uniform in [minTurns, maxTurns]. */
    int minTurns = 2;
    int maxTurns = 6;
    /** New user tokens added each turn. */
    std::shared_ptr<TokenDistribution> userTokens;
    /** Assistant output tokens per turn. */
    std::shared_ptr<TokenDistribution> outputTokens;
    /** Mean user think time between turns, seconds (exponential). */
    double thinkTimeMeanS = 20.0;
    /** Cap on a session's resent context, tokens (API limit). */
    std::int64_t maxContextTokens = 16384;
};

/** A default configuration shaped like the conversation service. */
MultiTurnConfig defaultMultiTurnConfig();

/**
 * Generates request traces of interleaved multi-turn sessions with
 * Poisson session arrivals. Each turn is one inference request whose
 * prompt is the session's full accumulated context.
 */
class MultiTurnTraceGenerator {
  public:
    MultiTurnTraceGenerator(MultiTurnConfig config, std::uint64_t seed);

    /**
     * Generate a trace of sessions arriving at @p sessions_per_s
     * over @p duration. Turns may land after the horizon (think
     * time); the trace is sorted by arrival.
     */
    Trace generate(double sessions_per_s, sim::TimeUs duration);

    /** Sessions produced by the last generate() call. */
    std::size_t lastSessionCount() const { return lastSessions_; }

  private:
    MultiTurnConfig config_;
    sim::Rng rng_;
    std::uint64_t nextId_ = 0;
    std::size_t lastSessions_ = 0;
};

}  // namespace splitwise::workload

#endif  // SPLITWISE_WORKLOAD_MULTI_TURN_H_
