#ifndef SPLITWISE_WORKLOAD_WORKLOADS_H_
#define SPLITWISE_WORKLOAD_WORKLOADS_H_

#include <memory>
#include <string>

#include "workload/distribution.h"

namespace splitwise::workload {

/**
 * A named inference service workload: the joint distribution of
 * prompt and output token counts (paper Fig. 3).
 */
struct Workload {
    std::string name;
    std::shared_ptr<TokenDistribution> promptTokens;
    std::shared_ptr<TokenDistribution> outputTokens;
};

/**
 * The coding service (paper SIII-A): large prompts (whole files of
 * context, median 1500 tokens), tiny outputs (next few words,
 * median 13 tokens).
 */
const Workload& coding();

/**
 * The conversation service: wide prompt range (median 1020 tokens),
 * bimodal outputs (median 129 tokens).
 */
const Workload& conversation();

/** Look up a workload by name ("coding" or "conversation"). */
const Workload& workloadByName(const std::string& name);

}  // namespace splitwise::workload

#endif  // SPLITWISE_WORKLOAD_WORKLOADS_H_
