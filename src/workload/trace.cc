#include "workload/trace.h"

#include <fstream>
#include <sstream>

#include "sim/log.h"

namespace splitwise::workload {

double
traceRps(const Trace& trace)
{
    if (trace.size() < 2)
        return 0.0;
    const double span = sim::usToSeconds(traceSpan(trace));
    return span > 0.0 ? static_cast<double>(trace.size()) / span : 0.0;
}

sim::TimeUs
traceSpan(const Trace& trace)
{
    if (trace.empty())
        return 0;
    return trace.back().arrival - trace.front().arrival;
}

void
writeCsv(const Trace& trace, const std::string& path)
{
    std::ofstream out(path);
    if (!out)
        sim::fatal("writeCsv: cannot open " + path);
    out << "id,arrival_us,prompt_tokens,output_tokens,priority,"
           "session,turn\n";
    for (const auto& r : trace) {
        out << r.id << ',' << r.arrival << ',' << r.promptTokens << ','
            << r.outputTokens << ',' << r.priority << ',' << r.session
            << ',' << r.turn << '\n';
    }
}

Trace
readCsv(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        sim::fatal("readCsv: cannot open " + path);
    Trace trace;
    std::string line;
    if (!std::getline(in, line))
        sim::fatal("readCsv: empty file " + path);
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        trace.push_back(detail::parseCsvRow(line, path));
    }
    return trace;
}

namespace detail {

Request
parseCsvRow(const std::string& line, const std::string& path)
{
    std::istringstream row(line);
    Request r;
    char comma = 0;
    if (!(row >> r.id >> comma >> r.arrival >> comma >> r.promptTokens >>
          comma >> r.outputTokens)) {
        sim::fatal("readCsv: malformed row in " + path + ": " + line);
    }
    // Priority and session/turn are later additions; rows without
    // them parse as 0 (interactive, standalone).
    if (row >> comma) {
        if (!(row >> r.priority))
            sim::fatal("readCsv: malformed row in " + path + ": " + line);
    }
    if (row >> comma) {
        if (!(row >> r.session >> comma >> r.turn))
            sim::fatal("readCsv: malformed row in " + path + ": " + line);
    }
    return r;
}

}  // namespace detail

}  // namespace splitwise::workload
