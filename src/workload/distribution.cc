#include "workload/distribution.h"

#include <algorithm>
#include <cmath>

#include "sim/log.h"

namespace splitwise::workload {

std::int64_t
TokenDistribution::sample(sim::Rng& rng) const
{
    return std::max<std::int64_t>(1, quantile(rng.uniform()));
}

EmpiricalDistribution::EmpiricalDistribution(
    std::vector<std::pair<double, std::int64_t>> anchors)
{
    if (anchors.size() < 2)
        sim::fatal("EmpiricalDistribution: need at least 2 anchors");
    for (std::size_t i = 0; i < anchors.size(); ++i) {
        if (i > 0 && anchors[i].first <= anchors[i - 1].first)
            sim::fatal("EmpiricalDistribution: probabilities must increase");
        probs_.push_back(anchors[i].first);
        tokens_.push_back(static_cast<double>(anchors[i].second));
    }
    if (probs_.front() > 1e-12 || probs_.back() < 1.0 - 1e-12)
        sim::fatal("EmpiricalDistribution: anchors must span [0, 1]");
}

std::int64_t
EmpiricalDistribution::quantile(double q) const
{
    const double qc = std::clamp(q, 0.0, 1.0);
    const auto it = std::upper_bound(probs_.begin(), probs_.end(), qc);
    if (it == probs_.begin())
        return static_cast<std::int64_t>(tokens_.front());
    if (it == probs_.end())
        return static_cast<std::int64_t>(tokens_.back());
    const std::size_t i = static_cast<std::size_t>(it - probs_.begin()) - 1;
    const double t = (qc - probs_[i]) / (probs_[i + 1] - probs_[i]);
    const double v = tokens_[i] + t * (tokens_[i + 1] - tokens_[i]);
    return static_cast<std::int64_t>(std::llround(v));
}

MixtureDistribution::MixtureDistribution(std::shared_ptr<TokenDistribution> a,
                                         std::shared_ptr<TokenDistribution> b,
                                         double weight_a)
    : a_(std::move(a)), b_(std::move(b)), weightA_(weight_a)
{
    if (weightA_ < 0.0 || weightA_ > 1.0)
        sim::fatal("MixtureDistribution: weight must be in [0, 1]");
}

std::int64_t
MixtureDistribution::quantile(double q) const
{
    // Exact mixture quantiles require CDF inversion; a component-wise
    // approximation suffices for plotting: below the weight boundary
    // report component A's stretched quantile, above it B's.
    if (q <= weightA_ && weightA_ > 0.0)
        return a_->quantile(q / weightA_);
    if (weightA_ >= 1.0)
        return a_->quantile(q);
    return b_->quantile((q - weightA_) / (1.0 - weightA_));
}

std::int64_t
MixtureDistribution::sample(sim::Rng& rng) const
{
    return rng.bernoulli(weightA_) ? a_->sample(rng) : b_->sample(rng);
}

}  // namespace splitwise::workload
