#ifndef SPLITWISE_WORKLOAD_TRACE_STREAM_H_
#define SPLITWISE_WORKLOAD_TRACE_STREAM_H_

/**
 * @file
 * Pull-based trace ingestion.
 *
 * A TraceStream yields requests one at a time in arrival order, so a
 * million-request run never materializes the full request vector:
 * the cluster pulls the next arrival only when the previous one has
 * been posted, keeping both the event queue and the workload-side
 * memory O(1) in trace length. Every materialized-trace entry point
 * is a thin wrapper over a stream (VectorTraceStream), which is what
 * makes the streamed and materialized paths byte-identical by
 * construction.
 */

#include <fstream>
#include <string>

#include "workload/trace.h"

namespace splitwise::workload {

/**
 * A source of requests in non-decreasing arrival order.
 *
 * next() is pull-based and single-pass: each call either fills
 * @p out with the next request and returns true, or returns false
 * forever once the stream is exhausted. Implementations must not
 * consume underlying entropy or I/O after exhaustion, so draining a
 * stream leaves its state exactly where a materialized generation
 * would have.
 */
class TraceStream {
  public:
    virtual ~TraceStream() = default;

    /** Pull the next request; false once exhausted (idempotent). */
    virtual bool next(Request& out) = 0;
};

/**
 * Stream view over an already-materialized trace (not owned; the
 * trace must outlive the stream). This is the adapter that routes
 * the classic Trace-vector entry points through the streaming path.
 */
class VectorTraceStream final : public TraceStream {
  public:
    explicit VectorTraceStream(const Trace& trace) : trace_(&trace) {}

    bool
    next(Request& out) override
    {
        if (cursor_ >= trace_->size())
            return false;
        out = (*trace_)[cursor_++];
        return true;
    }

  private:
    const Trace* trace_;
    std::size_t cursor_ = 0;
};

/**
 * Stream over a writeCsv-format trace file, parsing one row per
 * pull so file-backed runs never hold the whole trace in memory.
 * Construction fails (sim::fatal) on a missing file or header;
 * malformed rows fail at the pull that reaches them.
 */
class CsvTraceStream final : public TraceStream {
  public:
    explicit CsvTraceStream(const std::string& path);

    bool next(Request& out) override;

  private:
    std::ifstream in_;
    std::string path_;
    std::string line_;
};

/** Drain @p stream into a vector (tests and small traces). */
Trace drainStream(TraceStream& stream);

}  // namespace splitwise::workload

#endif  // SPLITWISE_WORKLOAD_TRACE_STREAM_H_
