#include "workload/trace_stream.h"

#include "sim/log.h"

namespace splitwise::workload {

CsvTraceStream::CsvTraceStream(const std::string& path)
    : in_(path), path_(path)
{
    if (!in_)
        sim::fatal("CsvTraceStream: cannot open " + path);
    if (!std::getline(in_, line_))
        sim::fatal("CsvTraceStream: empty file " + path);
}

bool
CsvTraceStream::next(Request& out)
{
    while (std::getline(in_, line_)) {
        if (line_.empty())
            continue;
        out = detail::parseCsvRow(line_, path_);
        return true;
    }
    return false;
}

Trace
drainStream(TraceStream& stream)
{
    Trace trace;
    Request r;
    while (stream.next(r))
        trace.push_back(r);
    return trace;
}

}  // namespace splitwise::workload
