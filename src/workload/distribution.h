#ifndef SPLITWISE_WORKLOAD_DISTRIBUTION_H_
#define SPLITWISE_WORKLOAD_DISTRIBUTION_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/rng.h"

namespace splitwise::workload {

/**
 * A distribution over token counts (prompt or output sizes).
 *
 * Implementations provide inverse-CDF sampling so traces can be
 * generated deterministically from a seeded Rng, plus quantile
 * queries for plotting CDFs (Fig. 3).
 */
class TokenDistribution {
  public:
    virtual ~TokenDistribution() = default;

    /** Token count at cumulative probability @p q in [0, 1]. */
    virtual std::int64_t quantile(double q) const = 0;

    /** Draw a sample (>= 1 token). */
    virtual std::int64_t sample(sim::Rng& rng) const;

    /** Median token count. */
    std::int64_t median() const { return quantile(0.5); }
};

/**
 * Piecewise-linear inverse CDF through (probability, tokens) anchor
 * points. This is how the paper's published trace distributions are
 * reconstructed from their reported quantiles.
 */
class EmpiricalDistribution : public TokenDistribution {
  public:
    /**
     * @param anchors (cumulative probability, token count) pairs;
     *     probabilities strictly increasing and covering [0, 1].
     */
    explicit EmpiricalDistribution(
        std::vector<std::pair<double, std::int64_t>> anchors);

    std::int64_t quantile(double q) const override;

  private:
    std::vector<double> probs_;
    std::vector<double> tokens_;
};

/** Degenerate distribution: always the same token count. */
class FixedDistribution : public TokenDistribution {
  public:
    explicit FixedDistribution(std::int64_t tokens) : tokens_(tokens) {}

    std::int64_t quantile(double) const override { return tokens_; }

  private:
    std::int64_t tokens_;
};

/**
 * Mixture of two component distributions, used for the
 * conversation service's bimodal output-length distribution
 * (Fig. 3b).
 */
class MixtureDistribution : public TokenDistribution {
  public:
    /**
     * @param weight_a Probability mass of component @p a.
     */
    MixtureDistribution(std::shared_ptr<TokenDistribution> a,
                        std::shared_ptr<TokenDistribution> b,
                        double weight_a);

    std::int64_t quantile(double q) const override;
    std::int64_t sample(sim::Rng& rng) const override;

  private:
    std::shared_ptr<TokenDistribution> a_;
    std::shared_ptr<TokenDistribution> b_;
    double weightA_;
};

}  // namespace splitwise::workload

#endif  // SPLITWISE_WORKLOAD_DISTRIBUTION_H_
