#ifndef SPLITWISE_WORKLOAD_RATE_CURVE_H_
#define SPLITWISE_WORKLOAD_RATE_CURVE_H_

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace splitwise::workload {

/**
 * A time-varying arrival-rate function lambda(t) in requests/s:
 * either a constant or a diurnal cosine between a trough and a peak,
 * optionally overlaid with multiplicative flash-crowd spikes. Drives
 * the non-homogeneous Poisson trace generator (thinning), so the
 * autoscaler faces the day/night swings and surges the paper's
 * production traces exhibit.
 */
class RateCurve {
  public:
    /** Flat lambda(t) = rps. */
    static RateCurve constant(double rps);

    /**
     * Diurnal cosine: lambda(t) oscillates between @p trough_rps and
     * @p peak_rps with @p period (one simulated "day"), starting at
     * the trough. @p phase shifts the curve left.
     */
    static RateCurve diurnal(double trough_rps, double peak_rps,
                             sim::TimeUs period, sim::TimeUs phase = 0);

    /**
     * Overlay a flash crowd: the rate is multiplied by
     * @p multiplier (> 1) during [start, start + duration).
     * Overlapping spikes compound multiplicatively.
     */
    RateCurve& addSpike(sim::TimeUs start, sim::TimeUs duration,
                        double multiplier);

    /** The instantaneous rate at simulated time @p t, requests/s. */
    double rateAt(sim::TimeUs t) const;

    /**
     * An upper bound on rateAt over all t - the thinning envelope.
     * Conservative when spikes never overlap (it compounds every
     * spike), which only costs extra rejected candidate draws.
     */
    double maxRate() const;

    /** The curve's trough-to-peak base rates (peak == trough when
     *  constant). */
    double troughRps() const { return trough_; }
    double peakRps() const { return peak_; }

  private:
    struct Spike {
        sim::TimeUs start = 0;
        sim::TimeUs end = 0;
        double multiplier = 1.0;
    };

    RateCurve(double trough, double peak, sim::TimeUs period,
              sim::TimeUs phase);

    double trough_ = 0.0;
    double peak_ = 0.0;
    /** 0 = constant curve (no oscillation). */
    sim::TimeUs period_ = 0;
    sim::TimeUs phase_ = 0;
    std::vector<Spike> spikes_;
};

}  // namespace splitwise::workload

#endif  // SPLITWISE_WORKLOAD_RATE_CURVE_H_
