#include "sim/run_pool.h"

#include <algorithm>

namespace splitwise::sim {

int
RunPool::defaultJobs()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

RunPool::RunPool(int jobs)
    : jobs_(jobs > 0 ? jobs : defaultJobs())
{
    // jobs == 1 runs inline in map(); no workers to spin up.
    if (jobs_ == 1)
        return;
    workers_.reserve(static_cast<std::size_t>(jobs_));
    for (int i = 0; i < jobs_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

RunPool::~RunPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    // std::jthread joins on destruction.
}

void
RunPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

void
RunPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return;  // stopping, queue drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

}  // namespace splitwise::sim
