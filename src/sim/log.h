#ifndef SPLITWISE_SIM_LOG_H_
#define SPLITWISE_SIM_LOG_H_

#include <sstream>
#include <string>

namespace splitwise::sim {

/** Severity levels for simulator log output. */
enum class LogLevel {
    kDebug = 0,
    kInfo = 1,
    kWarn = 2,
    kError = 3,
    kOff = 4,
};

/**
 * Minimal logging facility in the spirit of gem5's inform()/warn()/
 * fatal()/panic() split.
 *
 * fatal() reports a user-caused error (bad configuration, invalid
 * arguments) and throws std::runtime_error so callers and tests can
 * recover. panic() reports an internal invariant violation and
 * aborts.
 */
class Log {
  public:
    /** Set the global minimum severity that gets printed. */
    static void setLevel(LogLevel level);

    /** Current global minimum severity. */
    static LogLevel level();

    /** Emit a message at the given level to stderr. */
    static void write(LogLevel level, const std::string& msg);
};

/** Log an informational message. */
void inform(const std::string& msg);

/** Log a warning: something suspicious but survivable. */
void warn(const std::string& msg);

/**
 * Report an unrecoverable user error (bad config, invalid argument).
 *
 * @throws std::runtime_error always.
 */
[[noreturn]] void fatal(const std::string& msg);

/**
 * Report an internal invariant violation (a simulator bug) and abort.
 */
[[noreturn]] void panic(const std::string& msg);

}  // namespace splitwise::sim

#endif  // SPLITWISE_SIM_LOG_H_
