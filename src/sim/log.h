#ifndef SPLITWISE_SIM_LOG_H_
#define SPLITWISE_SIM_LOG_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace splitwise::sim {

/** Severity levels for simulator log output. */
enum class LogLevel {
    kDebug = 0,
    kInfo = 1,
    kWarn = 2,
    kError = 3,
    kOff = 4,
};

/** Ordered key/value pairs appended to a structured log line. */
using LogFields = std::vector<std::pair<std::string, std::string>>;

/**
 * Minimal logging facility in the spirit of gem5's inform()/warn()/
 * fatal()/panic() split.
 *
 * The default minimum severity is kWarn. The SPLITWISE_LOG_LEVEL
 * environment variable (debug|info|warn|error|off) overrides it once
 * at first use; setLevel() overrides both.
 *
 * fatal() reports a user-caused error (bad configuration, invalid
 * arguments) and throws std::runtime_error so callers and tests can
 * recover. panic() reports an internal invariant violation and
 * aborts.
 */
class Log {
  public:
    /** Set the global minimum severity that gets printed. */
    static void setLevel(LogLevel level);

    /** Current global minimum severity. */
    static LogLevel level();

    /** Emit a message at the given level to stderr. */
    static void write(LogLevel level, const std::string& msg);

    /**
     * Parse a level name (debug|info|warn|error|off).
     *
     * @return true and set @p out on success; false on junk.
     */
    static bool parseLevel(const std::string& name, LogLevel& out);
};

/** Log an informational message. */
void inform(const std::string& msg);

/** Log a warning: something suspicious but survivable. */
void warn(const std::string& msg);

/**
 * Structured variants: the fields render as a `key=value` suffix
 * ("machine failed machine=3 t_us=120000"), values with spaces
 * quoted, so log lines stay grep- and parse-friendly.
 *
 * When a simulated clock is attached (see setLogClock) every line -
 * plain or structured - leads its fields with `t_us=<now>`, and when
 * a request scope is open (see LogRequestScope) with `request=<id>`,
 * so any log emitted from inside an event handler self-locates on
 * the simulated timeline without each call site threading the clock.
 */
void inform(const std::string& msg, const LogFields& fields);
void warn(const std::string& msg, const LogFields& fields);

/**
 * Attach the simulated clock for this thread's log prefixes; pass
 * nullptr to detach. The pointer must outlive the attachment (the
 * Simulator attaches its own clock for its lifetime). Kept as a raw
 * int64 pointer so this header stays free of sim/time.h: TimeUs is
 * std::int64_t by definition.
 */
void setLogClock(const std::int64_t* now_us);

/** Currently attached clock for this thread (nullptr if none). */
const std::int64_t* logClock();

/**
 * RAII request-id scope: log lines emitted while a scope is open
 * carry a `request=<id>` field. Scopes nest; the innermost id wins
 * and the previous one is restored on destruction.
 */
class LogRequestScope {
  public:
    explicit LogRequestScope(std::uint64_t id);
    ~LogRequestScope();

    LogRequestScope(const LogRequestScope&) = delete;
    LogRequestScope& operator=(const LogRequestScope&) = delete;

  private:
    std::uint64_t previous_;
    bool hadPrevious_;
};

/**
 * Report an unrecoverable user error (bad config, invalid argument).
 *
 * @throws std::runtime_error always.
 */
[[noreturn]] void fatal(const std::string& msg);

/**
 * Report an internal invariant violation (a simulator bug) and abort.
 */
[[noreturn]] void panic(const std::string& msg);

}  // namespace splitwise::sim

#endif  // SPLITWISE_SIM_LOG_H_
