#ifndef SPLITWISE_SIM_EVENT_ACTION_H_
#define SPLITWISE_SIM_EVENT_ACTION_H_

/**
 * @file
 * EventAction: the event engine's move-only callable.
 *
 * std::function<void()> heap-allocates for any capture larger than
 * its (implementation-defined, typically 16-byte) small buffer, which
 * made every Machine iteration and KV-transfer completion allocate on
 * the simulator's hottest path. EventAction replaces it with a
 * type-erased callable whose inline buffer is sized for the repo's
 * actual capture shapes (machine.cc iteration completions,
 * kv_transfer.cc delivery closures, cluster.cc fault/arrival
 * thunks), so the steady-state event loop performs no heap
 * allocations at all.
 *
 * Oversized captures still work - they fall back to the heap - but
 * every fallback bumps a process-wide counter that the steady-state
 * allocation tests assert stays flat, so an accidentally fattened
 * closure on the hot path fails CI instead of silently regressing
 * throughput.
 */

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace splitwise::sim {

/**
 * A move-only, small-buffer-optimized void() callable.
 *
 * Callables up to kInlineBytes live inside the EventAction itself
 * (no allocation); larger ones are moved to the heap and counted by
 * heapFallbacks(). Invoking an empty action is an error checked by
 * the caller (the event queue never stores empty actions).
 */
class EventAction {
  public:
    /**
     * Inline capture budget. Sized to hold the largest hot-path
     * closure in the tree - the KV-transfer delivery lambda (this +
     * three pointers + epoch + time + flags + a moved-in
     * std::function done-callback) - with a little headroom. Keep in
     * sync with the static_asserts at the call sites' test
     * (event_action_test.cc).
     */
    static constexpr std::size_t kInlineBytes = 104;

    EventAction() = default;

    /** Wrap any void() callable; allocates only above kInlineBytes. */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::remove_cvref_t<F>, EventAction> &&
                  std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
    EventAction(F&& fn)  // NOLINT: implicit by design, mirrors std::function
    {
        using Fn = std::remove_cvref_t<F>;
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
            ops_ = &inlineOps<Fn>;
        } else {
            *reinterpret_cast<void**>(buf_) = new Fn(std::forward<F>(fn));
            ops_ = &heapOps<Fn>;
            heapFallbacks_.fetch_add(1, std::memory_order_relaxed);
        }
    }

    EventAction(EventAction&& other) noexcept { moveFrom(other); }

    EventAction&
    operator=(EventAction&& other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    EventAction(const EventAction&) = delete;
    EventAction& operator=(const EventAction&) = delete;

    ~EventAction() { reset(); }

    /** True when a callable is held. */
    explicit operator bool() const { return ops_ != nullptr; }

    /** Invoke the callable. @pre bool(*this) */
    void
    operator()()
    {
        ops_->invoke(buf_);
    }

    /** True when the held callable lives on the heap (oversized). */
    bool onHeap() const { return ops_ != nullptr && ops_->heap; }

    /** Destroy the held callable, leaving the action empty. */
    void
    reset()
    {
        if (ops_ != nullptr) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    /**
     * Process-wide count of captures that exceeded the inline budget
     * and hit the heap. Steady-state tests assert this stays flat
     * across the hot loop; it is cumulative and never reset.
     */
    static std::uint64_t
    heapFallbacks()
    {
        return heapFallbacks_.load(std::memory_order_relaxed);
    }

  private:
    /** Manual vtable: one static instance per wrapped callable type. */
    struct Ops {
        void (*invoke)(void* buf);
        /** Move the callable buf-to-buf and destroy the source. */
        void (*relocate)(void* src, void* dst);
        void (*destroy)(void* buf);
        bool heap;
    };

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](void* buf) { (*static_cast<Fn*>(buf))(); },
        [](void* src, void* dst) {
            Fn* from = static_cast<Fn*>(src);
            ::new (dst) Fn(std::move(*from));
            from->~Fn();
        },
        [](void* buf) { static_cast<Fn*>(buf)->~Fn(); },
        /*heap=*/false,
    };

    template <typename Fn>
    static constexpr Ops heapOps = {
        [](void* buf) { (**static_cast<Fn**>(buf))(); },
        [](void* src, void* dst) {
            *static_cast<void**>(dst) = *static_cast<void**>(src);
        },
        [](void* buf) { delete *static_cast<Fn**>(buf); },
        /*heap=*/true,
    };

    void
    moveFrom(EventAction& other) noexcept
    {
        ops_ = other.ops_;
        if (ops_ != nullptr) {
            ops_->relocate(other.buf_, buf_);
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    const Ops* ops_ = nullptr;

    static inline std::atomic<std::uint64_t> heapFallbacks_{0};
};

}  // namespace splitwise::sim

#endif  // SPLITWISE_SIM_EVENT_ACTION_H_
