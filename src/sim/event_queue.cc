#include "sim/event_queue.h"

#include "sim/log.h"

namespace splitwise::sim {

EventId
EventQueue::schedule(TimeUs time, std::function<void()> action, int priority)
{
    Event ev;
    ev.time = time;
    ev.priority = priority;
    ev.id = nextId_++;
    ev.action = std::move(action);
    const EventId id = ev.id;
    heap_.push(std::move(ev));
    live_.insert(id);
    return id;
}

void
EventQueue::cancel(EventId id)
{
    // Only a still-pending event can be cancelled; executed or
    // already-cancelled ids are ignored.
    if (live_.erase(id) > 0)
        cancelled_.insert(id);
}

void
EventQueue::skipDead() const
{
    while (!heap_.empty()) {
        auto it = cancelled_.find(heap_.top().id);
        if (it == cancelled_.end())
            break;
        cancelled_.erase(it);
        heap_.pop();
    }
}

TimeUs
EventQueue::nextTime() const
{
    skipDead();
    return heap_.empty() ? kTimeNever : heap_.top().time;
}

Event
EventQueue::pop()
{
    skipDead();
    if (heap_.empty())
        panic("EventQueue::pop on empty queue");
    // priority_queue::top returns const&; the event is copied out and
    // then popped. (A move would break heap invariants mid-flight.)
    Event ev = heap_.top();
    heap_.pop();
    live_.erase(ev.id);
    return ev;
}

}  // namespace splitwise::sim
