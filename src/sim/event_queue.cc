#include "sim/event_queue.h"

#include <utility>

#include "sim/log.h"

namespace splitwise::sim {

namespace {

/** 4-ary heap geometry: children of i are 4i+1 .. 4i+4. */
constexpr std::uint32_t kArity = 4;

constexpr std::uint32_t
parentOf(std::uint32_t pos)
{
    return (pos - 1) / kArity;
}

constexpr std::uint32_t
firstChildOf(std::uint32_t pos)
{
    return kArity * pos + 1;
}

}  // namespace

EventId
EventQueue::push(TimeUs time, EventAction action, int priority)
{
    if (!action)
        panic("EventQueue: scheduling an empty action");

    std::uint32_t slot;
    if (!free_.empty()) {
        slot = free_.back();
        free_.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(records_.size());
        records_.emplace_back();
        ++poolGrowths_;
    }

    Record& r = records_[slot];
    r.time = time;
    r.priority = priority;
    r.seq = nextSeq_++;
    r.action = std::move(action);

    const std::uint32_t pos = static_cast<std::uint32_t>(heap_.size());
    heap_.push_back(slot);
    r.heapPos = pos;
    siftUp(pos);

    ++scheduled_;
    return makeId(slot, r.gen);
}

bool
EventQueue::cancel(EventId id)
{
    const std::uint32_t slot = idSlot(id);
    if (slot >= records_.size() || records_[slot].gen != idGen(id))
        return false;
    removeAt(records_[slot].heapPos);
    retire(slot);
    return true;
}

bool
EventQueue::pending(EventId id) const
{
    const std::uint32_t slot = idSlot(id);
    return slot < records_.size() && records_[slot].gen == idGen(id);
}

TimeUs
EventQueue::nextTime() const
{
    return heap_.empty() ? kTimeNever : records_[heap_.front()].time;
}

Event
EventQueue::pop()
{
    if (heap_.empty())
        panic("EventQueue::pop on empty queue");
    const std::uint32_t slot = heap_.front();
    Record& r = records_[slot];

    Event ev;
    ev.time = r.time;
    ev.priority = r.priority;
    ev.id = makeId(slot, r.gen);
    // Move the action out before touching the heap: the record is
    // retired below so a callback can immediately recycle the slot.
    ev.action = std::move(r.action);

    removeAt(0);
    retire(slot);
    return ev;
}

void
EventQueue::removeAt(std::uint32_t pos)
{
    const std::uint32_t last = static_cast<std::uint32_t>(heap_.size()) - 1;
    if (pos != last) {
        const std::uint32_t moved = heap_[last];
        heap_[pos] = moved;
        records_[moved].heapPos = pos;
        heap_.pop_back();
        // The moved entry may order either way relative to the hole's
        // neighbourhood; one of the two sifts is a no-op.
        siftDown(pos);
        siftUp(records_[moved].heapPos);
    } else {
        heap_.pop_back();
    }
}

void
EventQueue::siftUp(std::uint32_t pos)
{
    const std::uint32_t slot = heap_[pos];
    while (pos > 0) {
        const std::uint32_t parent = parentOf(pos);
        if (!before(slot, heap_[parent]))
            break;
        heap_[pos] = heap_[parent];
        records_[heap_[pos]].heapPos = pos;
        pos = parent;
    }
    heap_[pos] = slot;
    records_[slot].heapPos = pos;
}

void
EventQueue::siftDown(std::uint32_t pos)
{
    const std::uint32_t n = static_cast<std::uint32_t>(heap_.size());
    if (n == 0)
        return;
    const std::uint32_t slot = heap_[pos];
    while (true) {
        const std::uint32_t first = firstChildOf(pos);
        if (first >= n)
            break;
        std::uint32_t best = first;
        const std::uint32_t end = std::min(first + kArity, n);
        for (std::uint32_t c = first + 1; c < end; ++c) {
            if (before(heap_[c], heap_[best]))
                best = c;
        }
        if (!before(heap_[best], slot))
            break;
        heap_[pos] = heap_[best];
        records_[heap_[pos]].heapPos = pos;
        pos = best;
    }
    heap_[pos] = slot;
    records_[slot].heapPos = pos;
}

void
EventQueue::reserve(std::size_t events)
{
    heap_.reserve(events);
    free_.reserve(events);
    while (records_.size() < events) {
        records_.emplace_back();
        free_.push_back(static_cast<std::uint32_t>(records_.size() - 1));
    }
}

std::string
EventQueue::integrityError() const
{
    if (heap_.size() + free_.size() != records_.size()) {
        return "slot accounting broken: " + std::to_string(heap_.size()) +
               " in heap + " + std::to_string(free_.size()) + " free != " +
               std::to_string(records_.size()) + " pooled";
    }
    for (std::uint32_t pos = 0; pos < heap_.size(); ++pos) {
        const std::uint32_t slot = heap_[pos];
        if (slot >= records_.size())
            return "heap entry " + std::to_string(pos) + " out of pool";
        if (records_[slot].heapPos != pos) {
            return "slot " + std::to_string(slot) + " thinks it is at " +
                   std::to_string(records_[slot].heapPos) + ", found at " +
                   std::to_string(pos);
        }
        if (!records_[slot].action)
            return "pending slot " + std::to_string(slot) +
                   " holds no action";
        if (pos > 0 && before(slot, heap_[parentOf(pos)])) {
            return "heap property violated at position " +
                   std::to_string(pos);
        }
    }
    for (const std::uint32_t slot : free_) {
        if (slot >= records_.size())
            return "free-list entry out of pool";
        if (records_[slot].heapPos != kNotInHeap)
            return "free slot " + std::to_string(slot) +
                   " still claims a heap position";
    }
    return {};
}

}  // namespace splitwise::sim
