#ifndef SPLITWISE_SIM_RUN_POOL_H_
#define SPLITWISE_SIM_RUN_POOL_H_

/**
 * @file
 * Fixed-size thread pool for embarrassingly parallel simulation
 * fan-out (design-space sweeps, split-ratio probes, seed storms).
 *
 * The pool is deliberately work-stealing-free: one shared FIFO, a
 * fixed set of std::jthread workers, and a map() that returns results
 * ordered by input index regardless of completion order. Each task is
 * expected to be self-contained (own TraceGenerator, own Cluster, own
 * telemetry sinks), which is what makes `--jobs N` bit-identical to
 * the serial path; see DESIGN.md "Parallel run model".
 */

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace splitwise::sim {

/**
 * A fixed-size pool of worker threads executing independent tasks.
 *
 * With jobs == 1, map() runs every task inline on the calling thread
 * in input order - exactly the pre-pool serial code path, including
 * immediate exception propagation. With jobs > 1, tasks run on the
 * workers; map() still returns results in input order and rethrows
 * the lowest-index task exception after the whole batch drains.
 *
 * map() must be called from outside the pool's own workers (the
 * multi-run drivers each create a pool per top-level search, so
 * nested searches never share one).
 */
class RunPool {
  public:
    /** @param jobs Worker count; 0 selects defaultJobs(). */
    explicit RunPool(int jobs = 0);
    ~RunPool();

    RunPool(const RunPool&) = delete;
    RunPool& operator=(const RunPool&) = delete;

    /** The `--jobs` default: hardware_concurrency, at least 1. */
    static int defaultJobs();

    /** Resolved worker count (>= 1). */
    int jobs() const { return jobs_; }

    /**
     * Apply @p fn to every item and return the results ordered by
     * input index. @p fn is invoked as fn(item) or, when invocable
     * that way, fn(item, index) with the item's input index (the
     * hook for per-task RNG seeding and output-file suffixing).
     *
     * If tasks throw, the batch still runs to completion and the
     * exception of the lowest input index is rethrown (results are
     * discarded). With jobs == 1 the first exception propagates
     * immediately, before later items run; drivers that must survive
     * individual failures catch inside @p fn (see
     * provision::Provisioner::sweep).
     */
    template <typename Item, typename Fn>
    auto
    map(const std::vector<Item>& items, Fn&& fn)
    {
        constexpr bool kWithIndex =
            std::is_invocable_v<Fn&, const Item&, std::size_t>;
        auto invoke = [&fn](const Item& item, std::size_t index) {
            if constexpr (kWithIndex)
                return fn(item, index);
            else
                return fn(item);
        };
        using Result = std::remove_cvref_t<decltype(invoke(
            items.front(), std::size_t{0}))>;
        static_assert(!std::is_void_v<Result>,
                      "RunPool::map tasks must return a value");

        std::vector<Result> results;
        results.reserve(items.size());
        if (items.empty())
            return results;

        if (jobs_ == 1 || items.size() == 1) {
            for (std::size_t i = 0; i < items.size(); ++i)
                results.push_back(invoke(items[i], i));
            return results;
        }

        std::vector<std::optional<Result>> slots(items.size());
        std::vector<std::exception_ptr> errors(items.size());
        Batch batch{items.size()};
        for (std::size_t i = 0; i < items.size(); ++i) {
            submit([&, i] {
                try {
                    slots[i].emplace(invoke(items[i], i));
                } catch (...) {
                    errors[i] = std::current_exception();
                }
                batch.finishOne();
            });
        }
        batch.wait();

        for (const auto& error : errors) {
            if (error)
                std::rethrow_exception(error);
        }
        for (auto& slot : slots)
            results.push_back(std::move(*slot));
        return results;
    }

  private:
    /** Completion latch for one map() batch. */
    struct Batch {
        explicit Batch(std::size_t n) : remaining(n) {}

        void
        finishOne()
        {
            std::lock_guard<std::mutex> lock(mu);
            if (--remaining == 0)
                done.notify_all();
        }

        void
        wait()
        {
            std::unique_lock<std::mutex> lock(mu);
            done.wait(lock, [this] { return remaining == 0; });
        }

        std::mutex mu;
        std::condition_variable done;
        std::size_t remaining;
    };

    /** Enqueue one task for the workers. */
    void submit(std::function<void()> task);

    /** Worker body: drain the queue until shutdown. */
    void workerLoop();

    int jobs_;
    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    bool stopping_ = false;
    std::vector<std::jthread> workers_;
};

}  // namespace splitwise::sim

#endif  // SPLITWISE_SIM_RUN_POOL_H_
