#ifndef SPLITWISE_SIM_RNG_H_
#define SPLITWISE_SIM_RNG_H_

#include <cstdint>
#include <random>

namespace splitwise::sim {

/**
 * Deterministic random-number source for simulation components.
 *
 * Wraps a seeded mt19937_64 and exposes the handful of draw shapes
 * the simulator needs. Every stochastic component takes an explicit
 * Rng (or seed) so whole-cluster runs are reproducible bit-for-bit.
 */
class Rng {
  public:
    /** Construct with an explicit seed. */
    explicit Rng(std::uint64_t seed) : gen_(seed) {}

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(gen_);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(gen_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(gen_);
    }

    /** Exponential draw with the given rate (events per unit time). */
    double
    exponential(double rate)
    {
        return std::exponential_distribution<double>(rate)(gen_);
    }

    /** Normal draw. */
    double
    normal(double mean, double stddev)
    {
        return std::normal_distribution<double>(mean, stddev)(gen_);
    }

    /** Log-normal draw with the given parameters of log-space. */
    double
    lognormal(double mu, double sigma)
    {
        return std::lognormal_distribution<double>(mu, sigma)(gen_);
    }

    /** Bernoulli draw. */
    bool bernoulli(double p) { return uniform() < p; }

    /** Access the underlying engine for std distributions. */
    std::mt19937_64& engine() { return gen_; }

    /** Derive an independent child stream (for per-component seeding). */
    Rng
    fork()
    {
        return Rng(gen_());
    }

  private:
    std::mt19937_64 gen_;
};

}  // namespace splitwise::sim

#endif  // SPLITWISE_SIM_RNG_H_
