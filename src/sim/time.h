#ifndef SPLITWISE_SIM_TIME_H_
#define SPLITWISE_SIM_TIME_H_

#include <cstdint>

namespace splitwise::sim {

/**
 * Simulated time, in integer microseconds.
 *
 * All simulator components express time as TimeUs. Integer
 * microseconds give deterministic event ordering (no floating-point
 * comparison hazards) while remaining fine-grained enough for the
 * millisecond-scale LLM iteration latencies modelled here.
 */
using TimeUs = std::int64_t;

/** A far-future sentinel used for "never" deadlines. */
inline constexpr TimeUs kTimeNever = INT64_MAX;

/** Convert seconds to simulated microseconds (rounding to nearest). */
constexpr TimeUs secondsToUs(double s) { return static_cast<TimeUs>(s * 1e6 + 0.5); }

/** Convert milliseconds to simulated microseconds (rounding to nearest). */
constexpr TimeUs msToUs(double ms) { return static_cast<TimeUs>(ms * 1e3 + 0.5); }

/** Convert simulated microseconds to seconds. */
constexpr double usToSeconds(TimeUs t) { return static_cast<double>(t) * 1e-6; }

/** Convert simulated microseconds to milliseconds. */
constexpr double usToMs(TimeUs t) { return static_cast<double>(t) * 1e-3; }

}  // namespace splitwise::sim

#endif  // SPLITWISE_SIM_TIME_H_
