#include "sim/log.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace splitwise::sim {

namespace {

const char*
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "debug";
      case LogLevel::kInfo: return "info";
      case LogLevel::kWarn: return "warn";
      case LogLevel::kError: return "error";
      case LogLevel::kOff: return "off";
    }
    return "?";
}

/** Initial severity: SPLITWISE_LOG_LEVEL when set and valid. */
LogLevel
initialLevel()
{
    const char* env = std::getenv("SPLITWISE_LOG_LEVEL");
    if (env) {
        LogLevel level;
        if (Log::parseLevel(env, level))
            return level;
        std::fprintf(stderr,
                     "[warn] SPLITWISE_LOG_LEVEL=%s is not a level "
                     "(debug|info|warn|error|off); using warn\n",
                     env);
    }
    return LogLevel::kWarn;
}

LogLevel&
levelRef()
{
    static LogLevel level = initialLevel();
    return level;
}

/** Per-thread log context: simulated clock and open request scope. */
thread_local const std::int64_t* tlClock = nullptr;
thread_local std::uint64_t tlRequest = 0;
thread_local bool tlHasRequest = false;

/** Leading `t_us=`/`request=` fields from the attached context. */
std::string
contextFields()
{
    std::string out;
    if (tlClock) {
        out += " t_us=";
        out += std::to_string(*tlClock);
    }
    if (tlHasRequest) {
        out += " request=";
        out += std::to_string(tlRequest);
    }
    return out;
}

/** Append " key=value" per field, quoting values with spaces. */
std::string
renderFields(const LogFields& fields)
{
    std::string out;
    for (const auto& [key, value] : fields) {
        out += ' ';
        out += key;
        out += '=';
        if (value.find(' ') != std::string::npos) {
            out += '"';
            out += value;
            out += '"';
        } else {
            out += value;
        }
    }
    return out;
}

}  // namespace

bool
Log::parseLevel(const std::string& name, LogLevel& out)
{
    for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                           LogLevel::kError, LogLevel::kOff}) {
        if (name == levelName(level)) {
            out = level;
            return true;
        }
    }
    return false;
}

void
Log::setLevel(LogLevel level)
{
    levelRef() = level;
}

LogLevel
Log::level()
{
    return levelRef();
}

void
Log::write(LogLevel level, const std::string& msg)
{
    if (level < levelRef())
        return;
    std::fprintf(stderr, "[%s] %s\n", levelName(level), msg.c_str());
}

void
setLogClock(const std::int64_t* now_us)
{
    tlClock = now_us;
}

const std::int64_t*
logClock()
{
    return tlClock;
}

LogRequestScope::LogRequestScope(std::uint64_t id)
    : previous_(tlRequest), hadPrevious_(tlHasRequest)
{
    tlRequest = id;
    tlHasRequest = true;
}

LogRequestScope::~LogRequestScope()
{
    tlRequest = previous_;
    tlHasRequest = hadPrevious_;
}

void
inform(const std::string& msg)
{
    Log::write(LogLevel::kInfo, msg + contextFields());
}

void
warn(const std::string& msg)
{
    Log::write(LogLevel::kWarn, msg + contextFields());
}

void
inform(const std::string& msg, const LogFields& fields)
{
    Log::write(LogLevel::kInfo,
               msg + contextFields() + renderFields(fields));
}

void
warn(const std::string& msg, const LogFields& fields)
{
    Log::write(LogLevel::kWarn,
               msg + contextFields() + renderFields(fields));
}

void
fatal(const std::string& msg)
{
    Log::write(LogLevel::kError, "fatal: " + msg + contextFields());
    throw std::runtime_error(msg);
}

void
panic(const std::string& msg)
{
    Log::write(LogLevel::kError, "panic: " + msg + contextFields());
    std::abort();
}

}  // namespace splitwise::sim
