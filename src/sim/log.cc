#include "sim/log.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace splitwise::sim {

namespace {

LogLevel g_level = LogLevel::kWarn;

const char*
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "debug";
      case LogLevel::kInfo: return "info";
      case LogLevel::kWarn: return "warn";
      case LogLevel::kError: return "error";
      case LogLevel::kOff: return "off";
    }
    return "?";
}

}  // namespace

void
Log::setLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
Log::level()
{
    return g_level;
}

void
Log::write(LogLevel level, const std::string& msg)
{
    if (level < g_level)
        return;
    std::fprintf(stderr, "[%s] %s\n", levelName(level), msg.c_str());
}

void
inform(const std::string& msg)
{
    Log::write(LogLevel::kInfo, msg);
}

void
warn(const std::string& msg)
{
    Log::write(LogLevel::kWarn, msg);
}

void
fatal(const std::string& msg)
{
    Log::write(LogLevel::kError, "fatal: " + msg);
    throw std::runtime_error(msg);
}

void
panic(const std::string& msg)
{
    Log::write(LogLevel::kError, "panic: " + msg);
    std::abort();
}

}  // namespace splitwise::sim
