#include "sim/simulator.h"

#include <string>

#include "sim/log.h"

namespace splitwise::sim {

void
Simulator::panicPast(TimeUs time) const
{
    panic("Simulator: scheduling at t=" + std::to_string(time) +
          "us, before now=" + std::to_string(now_) + "us");
}

void
Simulator::panicNegativeDelay() const
{
    panic("Simulator: scheduling with negative delay");
}

Simulator::HookId
Simulator::addTimeAdvanceHook(TimeAdvanceHook hook)
{
    extraHooks_.push_back(std::move(hook));
    return extraHooks_.size() - 1;
}

void
Simulator::removeTimeAdvanceHook(HookId id)
{
    if (id < extraHooks_.size())
        extraHooks_[id] = nullptr;
}

void
Simulator::fireTimeAdvance(TimeUs next)
{
    if (timeAdvanceHook_)
        timeAdvanceHook_(next);
    for (const auto& hook : extraHooks_) {
        if (hook)
            hook(next);
    }
}

std::uint64_t
Simulator::run(TimeUs until)
{
    std::uint64_t ran = 0;
    stopRequested_ = false;
    while (!queue_.empty() && !stopRequested_) {
        if (queue_.nextTime() > until)
            break;
        Event ev = queue_.pop();
        if (ev.time > now_)
            fireTimeAdvance(ev.time);
        now_ = ev.time;
        ev.action();
        ++ran;
        ++executed_;
    }
    // Advancing the clock to the horizon keeps back-to-back run()
    // calls with increasing horizons consistent even when idle.
    if (until != kTimeNever && now_ < until && queue_.nextTime() > until)
        now_ = until;
    return ran;
}

bool
Simulator::step()
{
    if (queue_.empty())
        return false;
    Event ev = queue_.pop();
    if (ev.time > now_)
        fireTimeAdvance(ev.time);
    now_ = ev.time;
    ev.action();
    ++executed_;
    return true;
}

}  // namespace splitwise::sim
