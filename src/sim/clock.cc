#include "sim/clock.h"

#include <algorithm>

namespace splitwise::sim {

void
Clock::waitForWork()
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return wakePendingLocked(); });
    consumeWakeupsLocked();
}

void
Clock::wake()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++wakeups_;
    }
    cv_.notify_all();
}

bool
SimClock::waitUntil(TimeUs)
{
    // Virtual time: the deadline is already here. A pending wake-up
    // still wins so freshly submitted work is stamped before the
    // batch fires — replay then reproduces the same interleaving.
    std::lock_guard<std::mutex> lock(mu_);
    if (wakePendingLocked()) {
        consumeWakeupsLocked();
        return false;
    }
    return true;
}

void
WallClock::anchorLocked()
{
    if (anchored_)
        return;
    anchored_ = true;
    epoch_ = std::chrono::steady_clock::now();
}

bool
WallClock::waitUntil(TimeUs next)
{
    // Sleep in bounded slices so a deadline near kTimeNever (e.g. a
    // watchdog event) cannot overflow the chrono arithmetic.
    constexpr TimeUs kMaxSliceUs = 3'600'000'000;  // one hour

    std::unique_lock<std::mutex> lock(mu_);
    anchorLocked();
    for (;;) {
        if (wakePendingLocked()) {
            consumeWakeupsLocked();
            return false;
        }
        const auto elapsed = std::chrono::duration_cast<
            std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                       epoch_);
        const TimeUs now_us = static_cast<TimeUs>(elapsed.count());
        if (now_us >= next)
            return true;
        const TimeUs slice = std::min(next - now_us, kMaxSliceUs);
        cv_.wait_for(lock, std::chrono::microseconds(slice),
                     [this] { return wakePendingLocked(); });
    }
}

TimeUs
WallClock::now()
{
    std::lock_guard<std::mutex> lock(mu_);
    anchorLocked();
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_);
    return static_cast<TimeUs>(elapsed.count());
}

}  // namespace splitwise::sim
