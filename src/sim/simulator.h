#ifndef SPLITWISE_SIM_SIMULATOR_H_
#define SPLITWISE_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace splitwise::sim {

/**
 * The discrete-event simulation driver.
 *
 * Owns the simulated clock and the event queue. Components schedule
 * callbacks at absolute or relative times; run() executes events in
 * deterministic order until the queue drains or a stop condition
 * fires.
 */
class Simulator {
  public:
    Simulator() = default;

    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    /** Current simulated time. */
    TimeUs now() const { return now_; }

    /**
     * Schedule an action at an absolute time.
     *
     * Scheduling in the past is an internal error (panic).
     */
    EventId schedule(TimeUs time, std::function<void()> action, int priority = 0);

    /** Schedule an action @p delay microseconds from now. */
    EventId scheduleAfter(TimeUs delay, std::function<void()> action, int priority = 0);

    /** Cancel a pending event; no-op if already executed. */
    void cancel(EventId id) { queue_.cancel(id); }

    /**
     * Run until the event queue drains or simulated time exceeds
     * @p until.
     *
     * @param until Inclusive time horizon; events stamped later stay
     *     queued. Defaults to "run to completion".
     * @return Number of events executed by this call.
     */
    std::uint64_t run(TimeUs until = kTimeNever);

    /**
     * Execute exactly one event if one is pending.
     *
     * @return true if an event ran.
     */
    bool step();

    /** Request that run() return after the current event completes. */
    void requestStop() { stopRequested_ = true; }

    /**
     * Observer invoked whenever the clock is about to advance, with
     * the time of the event about to execute; now() still reads the
     * pre-advance time inside the hook. Telemetry samplers and the
     * DST invariant checker use this to observe the simulation at
     * every quiescent point (all events at earlier timestamps have
     * fully executed) without scheduling events of their own (which
     * would keep the queue from draining). Costs the loop one branch
     * when no hook is attached.
     */
    using TimeAdvanceHook = std::function<void(TimeUs next)>;

    /** Handle identifying an attached time-advance hook. */
    using HookId = std::size_t;

    /**
     * Single-slot hook, kept for the common one-observer case (the
     * time-series sampler). Pass nullptr to detach. Runs before any
     * addTimeAdvanceHook() observers.
     */
    void setTimeAdvanceHook(TimeAdvanceHook hook)
    {
        timeAdvanceHook_ = std::move(hook);
    }

    /**
     * Attach an additional time-advance observer. Hooks run in
     * attachment order, after the setTimeAdvanceHook() slot.
     *
     * @return Handle for removeTimeAdvanceHook().
     */
    HookId addTimeAdvanceHook(TimeAdvanceHook hook);

    /** Detach a hook added with addTimeAdvanceHook(); idempotent. */
    void removeTimeAdvanceHook(HookId id);

    /** Number of live pending events. */
    std::size_t pendingEvents() const { return queue_.size(); }

    /** Total events executed over the simulator's lifetime. */
    std::uint64_t executedEvents() const { return executed_; }

  private:
    /** Fire every attached hook for an advance to @p next. */
    void fireTimeAdvance(TimeUs next);

    EventQueue queue_;
    TimeUs now_ = 0;
    std::uint64_t executed_ = 0;
    bool stopRequested_ = false;
    TimeAdvanceHook timeAdvanceHook_;
    /** Extra observers; removal nulls the slot to keep ids stable. */
    std::vector<TimeAdvanceHook> extraHooks_;
};

}  // namespace splitwise::sim

#endif  // SPLITWISE_SIM_SIMULATOR_H_
