#ifndef SPLITWISE_SIM_SIMULATOR_H_
#define SPLITWISE_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_action.h"
#include "sim/event_queue.h"
#include "sim/log.h"
#include "sim/time.h"

namespace splitwise::sim {

/**
 * The discrete-event simulation driver.
 *
 * Owns the simulated clock and the event queue. Components schedule
 * callbacks at absolute or relative times; run() executes events in
 * deterministic order until the queue drains or a stop condition
 * fires.
 *
 * Two scheduling families mirror the queue's ownership model:
 * post()/postAfter() for fire-and-forget events (the overwhelmingly
 * common case) and schedule()/scheduleAfter() returning an RAII
 * EventHandle when the caller may need to cancel.
 */
class Simulator {
  public:
    /**
     * Construction attaches this simulator's clock as the thread's
     * log-context clock (see sim::setLogClock), so every log emitted
     * while this simulator drives the thread carries a `t_us=` field.
     * The latest-constructed simulator on a thread wins; destruction
     * detaches only if this clock is still the attached one.
     */
    Simulator() { setLogClock(&now_); }

    ~Simulator()
    {
        if (logClock() == &now_)
            setLogClock(nullptr);
    }

    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    /** Current simulated time. */
    TimeUs now() const { return now_; }

    /**
     * Schedule a fire-and-forget action at an absolute time.
     *
     * Scheduling in the past is an internal error (panic).
     */
    void
    post(TimeUs time, EventAction action, int priority = 0)
    {
        checkNotPast(time);
        queue_.post(time, std::move(action), priority);
    }

    /** Schedule a fire-and-forget action @p delay us from now. */
    void
    postAfter(TimeUs delay, EventAction action, int priority = 0)
    {
        checkDelay(delay);
        queue_.post(now_ + delay, std::move(action), priority);
    }

    /**
     * Schedule an action at an absolute time and own it: the
     * returned handle cancels the event when destroyed (see
     * EventHandle::release() to opt out).
     */
    [[nodiscard]] EventHandle
    schedule(TimeUs time, EventAction action, int priority = 0)
    {
        checkNotPast(time);
        return queue_.schedule(time, std::move(action), priority);
    }

    /** Handle-owning variant of postAfter(). */
    [[nodiscard]] EventHandle
    scheduleAfter(TimeUs delay, EventAction action, int priority = 0)
    {
        checkDelay(delay);
        return queue_.schedule(now_ + delay, std::move(action), priority);
    }

    /**
     * Cancel by raw id (from EventHandle::release()); no-op if the
     * event already executed.
     */
    void cancel(EventId id) { queue_.cancel(id); }

    /**
     * Run until the event queue drains or simulated time exceeds
     * @p until.
     *
     * @param until Inclusive time horizon; events stamped later stay
     *     queued. Defaults to "run to completion".
     * @return Number of events executed by this call.
     */
    std::uint64_t run(TimeUs until = kTimeNever);

    /**
     * Execute exactly one event if one is pending.
     *
     * @return true if an event ran.
     */
    bool step();

    /** Request that run() return after the current event completes. */
    void requestStop() { stopRequested_ = true; }

    /**
     * Observer invoked whenever the clock is about to advance, with
     * the time of the event about to execute; now() still reads the
     * pre-advance time inside the hook. Telemetry samplers and the
     * DST invariant checker use this to observe the simulation at
     * every quiescent point (all events at earlier timestamps have
     * fully executed) without scheduling events of their own (which
     * would keep the queue from draining). Costs the loop one branch
     * when no hook is attached.
     */
    using TimeAdvanceHook = std::function<void(TimeUs next)>;

    /** Handle identifying an attached time-advance hook. */
    using HookId = std::size_t;

    /**
     * Single-slot hook, kept for the common one-observer case (the
     * time-series sampler). Pass nullptr to detach. Runs before any
     * addTimeAdvanceHook() observers.
     */
    void setTimeAdvanceHook(TimeAdvanceHook hook)
    {
        timeAdvanceHook_ = std::move(hook);
    }

    /**
     * Attach an additional time-advance observer. Hooks run in
     * attachment order, after the setTimeAdvanceHook() slot.
     *
     * @return Handle for removeTimeAdvanceHook().
     */
    HookId addTimeAdvanceHook(TimeAdvanceHook hook);

    /** Detach a hook added with addTimeAdvanceHook(); idempotent. */
    void removeTimeAdvanceHook(HookId id);

    /** Number of pending events. */
    std::size_t pendingEvents() const { return queue_.size(); }

    /** Total events executed over the simulator's lifetime. */
    std::uint64_t executedEvents() const { return executed_; }

    /**
     * Read-only view of the event queue, for the DST invariant
     * checker's structural integrity probe and the steady-state
     * allocation tests.
     */
    const EventQueue& eventQueue() const { return queue_; }

    /** Pre-size the event pool for an expected pending-event depth. */
    void reserveEvents(std::size_t events) { queue_.reserve(events); }

  private:
    /** Fire every attached hook for an advance to @p next. */
    void fireTimeAdvance(TimeUs next);

    [[noreturn]] void panicPast(TimeUs time) const;
    [[noreturn]] void panicNegativeDelay() const;

    void
    checkNotPast(TimeUs time) const
    {
        if (time < now_)
            panicPast(time);
    }

    void
    checkDelay(TimeUs delay) const
    {
        if (delay < 0)
            panicNegativeDelay();
    }

    EventQueue queue_;
    TimeUs now_ = 0;
    std::uint64_t executed_ = 0;
    bool stopRequested_ = false;
    TimeAdvanceHook timeAdvanceHook_;
    /** Extra observers; removal nulls the slot to keep ids stable. */
    std::vector<TimeAdvanceHook> extraHooks_;
};

}  // namespace splitwise::sim

#endif  // SPLITWISE_SIM_SIMULATOR_H_
