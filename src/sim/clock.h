#ifndef SPLITWISE_SIM_CLOCK_H_
#define SPLITWISE_SIM_CLOCK_H_

/**
 * @file
 * The time-source seam between the event engine and the world.
 *
 * A discrete-event run and a live serving run differ in exactly one
 * place: what happens between firing the batch of events at one
 * timestamp and the batch at the next. Offline, nothing — virtual
 * time jumps. Live, the serve loop must *sleep* until the next
 * event's wall-clock deadline, and that sleep must be preemptible:
 * a client submitting a request mid-sleep needs the loop awake now,
 * not at the deadline, so the arrival can be stamped and enqueued.
 *
 * Clock abstracts that wait. SimClock is the virtual-time source
 * (waits return immediately; runs at full simulation speed), used by
 * tests, CI smoke, and record/replay. WallClock anchors simulated
 * microsecond 0 at its first wait and sleeps each gap for real.
 * Both are preemptible through wake(), the only Clock entry point
 * that may be called from outside the serving thread.
 */

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "sim/time.h"

namespace splitwise::sim {

/**
 * A source of pacing for a live serve loop.
 *
 * Threading model: waitUntil()/waitForWork()/now() belong to the
 * single serving thread; wake() is safe from any thread. Wake-ups
 * are level-triggered and sticky — a wake() delivered while the
 * serving thread is not waiting is consumed by its next wait, so the
 * submit-then-sleep race loses no work.
 */
class Clock {
  public:
    virtual ~Clock() = default;

    Clock() = default;
    Clock(const Clock&) = delete;
    Clock& operator=(const Clock&) = delete;

    /**
     * Block until the moment events stamped @p next are due.
     *
     * @return true when the deadline was reached (fire the batch);
     *     false when wake() preempted the wait (drain new ingress
     *     work and re-evaluate — the next event may have changed).
     */
    virtual bool waitUntil(TimeUs next) = 0;

    /**
     * Block until wake(); the idle state of a serve loop with an
     * empty event queue. Returns immediately when a wake-up is
     * already pending.
     */
    void waitForWork();

    /** Preempt the current (or next) wait. Thread-safe. */
    void wake();

    /**
     * The current position on this clock's simulated-time axis, for
     * stamping new arrivals. SimClock pins it at 0 (the serve loop's
     * monotone-stamp floor takes over); WallClock reports elapsed
     * microseconds since its anchor.
     */
    virtual TimeUs now() = 0;

  protected:
    /** True (without consuming) when a wake-up is pending. */
    bool wakePendingLocked() const { return wakeups_ != seen_; }

    /** Consume every pending wake-up. */
    void consumeWakeupsLocked() { seen_ = wakeups_; }

    std::mutex mu_;
    std::condition_variable cv_;

  private:
    /** Wake-ups delivered / consumed; sticky level trigger. */
    std::uint64_t wakeups_ = 0;
    std::uint64_t seen_ = 0;
};

/**
 * Virtual time: every deadline is "now". Drives the serve loop at
 * full simulation speed, which is what makes live-captured sessions
 * replayable in milliseconds and the CI smoke test fast.
 */
class SimClock final : public Clock {
  public:
    bool waitUntil(TimeUs next) override;
    TimeUs now() override { return 0; }
};

/**
 * Real time: simulated microsecond 0 is anchored at the first
 * wait/now() call, and each waitUntil() sleeps until the event's
 * wall deadline (or a wake()). Events run no earlier than their
 * stamp; a loaded machine may run them late, which is the standard
 * best-effort contract of a wall-clock reactor.
 */
class WallClock final : public Clock {
  public:
    bool waitUntil(TimeUs next) override;
    TimeUs now() override;

  private:
    /** Anchor simulated 0 at the first use; callers hold mu_. */
    void anchorLocked();

    bool anchored_ = false;
    std::chrono::steady_clock::time_point epoch_;
};

}  // namespace splitwise::sim

#endif  // SPLITWISE_SIM_CLOCK_H_
