#ifndef SPLITWISE_SIM_EVENT_QUEUE_H_
#define SPLITWISE_SIM_EVENT_QUEUE_H_

/**
 * @file
 * The discrete-event priority queue behind the simulator.
 *
 * Design (see DESIGN.md "Event engine"):
 *
 *  - An indexed 4-ary min-heap of slot indices into a pooled record
 *    array. Each record knows its heap position, so cancel() is a
 *    true O(log n) heap removal - no tombstone sets, no lazy
 *    skipping, and memory is exactly proportional to pending events.
 *  - Records come from a free list and are recycled after fire or
 *    cancel, so the steady-state schedule/pop loop allocates nothing
 *    once the pool reaches its high-water mark.
 *  - Actions are EventAction (small-buffer-optimized); the common
 *    capture shapes in machine.cc / kv_transfer.cc / cluster.cc stay
 *    inline.
 *  - Ordering is (time, priority, insertion sequence): lower
 *    priority values run first at equal timestamps, and remaining
 *    ties preserve scheduling order - the determinism contract every
 *    golden/DST suite pins down.
 *
 * Ownership: fire-and-forget events are post()ed; events the caller
 * may need to cancel are schedule()d, which returns an RAII
 * EventHandle. A handle can only ever cancel the exact scheduling it
 * came from - generation counters make a handle to a fired (or
 * recycled) event an inert no-op, eliminating the cancel-after-fire
 * footgun of raw ids.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_action.h"
#include "sim/time.h"

namespace splitwise::sim {

/**
 * Raw identity of a scheduled event: a pool slot plus a generation
 * stamp. Only meaningful to the queue that issued it. Prefer
 * EventHandle; raw ids exist for EventHandle::release() escape
 * hatches and the reference-model property tests.
 */
using EventId = std::uint64_t;

/** Sentinel id that no schedule() ever returns. */
inline constexpr EventId kInvalidEventId = ~std::uint64_t{0};

class EventQueue;

/**
 * RAII ownership of one pending event.
 *
 * Destroying (or overwriting) the handle cancels the event if it is
 * still pending; a handle whose event already fired is inert.
 * release() opts out of auto-cancel and yields the raw EventId for
 * callers that manage cancellation manually.
 *
 * Handles must not outlive their queue.
 */
class EventHandle {
  public:
    EventHandle() = default;

    EventHandle(EventHandle&& other) noexcept
        : queue_(other.queue_), id_(other.id_)
    {
        other.queue_ = nullptr;
        other.id_ = kInvalidEventId;
    }

    EventHandle&
    operator=(EventHandle&& other) noexcept
    {
        if (this != &other) {
            cancel();
            queue_ = other.queue_;
            id_ = other.id_;
            other.queue_ = nullptr;
            other.id_ = kInvalidEventId;
        }
        return *this;
    }

    EventHandle(const EventHandle&) = delete;
    EventHandle& operator=(const EventHandle&) = delete;

    ~EventHandle() { cancel(); }

    /**
     * Cancel the event if still pending; harmless (and idempotent)
     * after the event fired or was already cancelled.
     */
    void cancel();

    /** True while the underlying event is still pending. */
    bool pending() const;

    /**
     * Detach: the event stays scheduled, auto-cancel is disarmed,
     * and the raw id is returned (kInvalidEventId if the handle was
     * empty). The caller owns any further cancellation.
     */
    EventId
    release()
    {
        const EventId id = queue_ != nullptr ? id_ : kInvalidEventId;
        queue_ = nullptr;
        id_ = kInvalidEventId;
        return id;
    }

  private:
    friend class EventQueue;

    EventHandle(EventQueue* queue, EventId id) : queue_(queue), id_(id) {}

    EventQueue* queue_ = nullptr;
    EventId id_ = kInvalidEventId;
};

/**
 * An event popped from the queue, ready to run. The action has been
 * moved out of the pool, so it stays valid even when the callback
 * schedules new events that recycle the slot.
 */
struct Event {
    TimeUs time = 0;
    int priority = 0;
    EventId id = kInvalidEventId;
    EventAction action;
};

/**
 * A deterministic discrete-event priority queue with O(log n)
 * schedule, pop, and cancel (see the file comment for the layout).
 */
class EventQueue {
  public:
    EventQueue() = default;

    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /**
     * Schedule a fire-and-forget action at an absolute simulated
     * time. Use schedule() instead when the event may need
     * cancelling.
     *
     * @param time Absolute timestamp.
     * @param action Callback to execute.
     * @param priority Tie-break at equal times; lower runs first.
     */
    void
    post(TimeUs time, EventAction action, int priority = 0)
    {
        push(time, std::move(action), priority);
    }

    /**
     * Schedule an action and return an owning handle. The event is
     * cancelled when the handle dies, unless the handle is
     * release()d first.
     */
    [[nodiscard]] EventHandle
    schedule(TimeUs time, EventAction action, int priority = 0)
    {
        return EventHandle(this, push(time, std::move(action), priority));
    }

    /**
     * Cancel a pending event by raw id: O(log n) removal, no
     * tombstones. Ids from a previous generation of the slot (fired,
     * cancelled, recycled) are ignored.
     *
     * @return true when a pending event was actually removed.
     */
    bool cancel(EventId id);

    /** True while @p id names a still-pending event. */
    bool pending(EventId id) const;

    /** True when no pending events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /** Timestamp of the earliest pending event; kTimeNever when empty. */
    TimeUs nextTime() const;

    /**
     * Pop and return the earliest pending event.
     *
     * @pre !empty()
     */
    Event pop();

    /** Total events ever scheduled (statistics/debugging). */
    std::uint64_t scheduledCount() const { return scheduled_; }

    /** Allocation-behaviour counters for the steady-state tests. */
    struct MemoryStats {
        /** Pool slots ever created (high-water mark of pending). */
        std::size_t poolSlots = 0;
        /** Slots currently on the free list. */
        std::size_t freeSlots = 0;
        /** Times the pool had to grow (each growth may allocate). */
        std::uint64_t poolGrowths = 0;
    };

    MemoryStats
    memoryStats() const
    {
        return {records_.size(), free_.size(), poolGrowths_};
    }

    /**
     * Pre-size the pool (and heap array) for @p events pending
     * events, so a run reaching that depth never allocates.
     */
    void reserve(std::size_t events);

    /**
     * Structural self-check for the DST invariant hook: verifies the
     * heap property, the record<->heap index mapping, and free-list
     * accounting.
     *
     * @return Empty string when consistent, else a description of
     *     the first inconsistency found.
     */
    std::string integrityError() const;

  private:
    struct Record {
        TimeUs time = 0;
        /** Insertion sequence: the final deterministic tie-break. */
        std::uint64_t seq = 0;
        int priority = 0;
        /** Bumped on fire/cancel so stale ids and handles go inert. */
        std::uint32_t gen = 0;
        /** Index into heap_; kNotInHeap while free. */
        std::uint32_t heapPos = kNotInHeap;
        EventAction action;
    };

    static constexpr std::uint32_t kNotInHeap = ~std::uint32_t{0};

    static EventId
    makeId(std::uint32_t slot, std::uint32_t gen)
    {
        return (static_cast<std::uint64_t>(gen) << 32) | slot;
    }
    static std::uint32_t idSlot(EventId id)
    {
        return static_cast<std::uint32_t>(id & 0xffffffffu);
    }
    static std::uint32_t idGen(EventId id)
    {
        return static_cast<std::uint32_t>(id >> 32);
    }

    /** True when the record at slot @p a orders before slot @p b. */
    bool
    before(std::uint32_t a, std::uint32_t b) const
    {
        const Record& ra = records_[a];
        const Record& rb = records_[b];
        if (ra.time != rb.time)
            return ra.time < rb.time;
        if (ra.priority != rb.priority)
            return ra.priority < rb.priority;
        return ra.seq < rb.seq;
    }

    EventId push(TimeUs time, EventAction action, int priority);

    /** Remove the heap entry at @p pos, restoring the heap property. */
    void removeAt(std::uint32_t pos);

    void siftUp(std::uint32_t pos);
    void siftDown(std::uint32_t pos);

    /** Retire a slot after fire/cancel: bump gen, recycle. */
    void
    retire(std::uint32_t slot)
    {
        Record& r = records_[slot];
        r.action.reset();
        r.heapPos = kNotInHeap;
        ++r.gen;
        free_.push_back(slot);
    }

    /** Event records, indexed by slot; grows only at high-water. */
    std::vector<Record> records_;
    /** 4-ary min-heap of slot indices. */
    std::vector<std::uint32_t> heap_;
    /** Recycled slots (LIFO keeps the hot slots cache-warm). */
    std::vector<std::uint32_t> free_;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t scheduled_ = 0;
    std::uint64_t poolGrowths_ = 0;
};

inline void
EventHandle::cancel()
{
    if (queue_ != nullptr) {
        queue_->cancel(id_);
        queue_ = nullptr;
        id_ = kInvalidEventId;
    }
}

inline bool
EventHandle::pending() const
{
    return queue_ != nullptr && queue_->pending(id_);
}

}  // namespace splitwise::sim

#endif  // SPLITWISE_SIM_EVENT_QUEUE_H_
