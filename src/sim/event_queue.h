#ifndef SPLITWISE_SIM_EVENT_QUEUE_H_
#define SPLITWISE_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace splitwise::sim {

/** Opaque handle identifying a scheduled event, used to cancel it. */
using EventId = std::uint64_t;

/**
 * A discrete event pending execution.
 *
 * Events carry an arbitrary callback. Ordering is by (time, priority,
 * insertion sequence): lower priority values run first at equal
 * timestamps, and ties beyond that preserve scheduling order, which
 * keeps the simulation fully deterministic.
 */
struct Event {
    TimeUs time = 0;
    int priority = 0;
    EventId id = 0;
    std::function<void()> action;
};

/**
 * A deterministic discrete-event priority queue.
 *
 * Supports O(log n) schedule/pop and lazy cancellation: cancelled
 * entries are dropped when they surface at the heap top, so memory
 * stays proportional to the number of pending events.
 */
class EventQueue {
  public:
    /**
     * Schedule an action at an absolute simulated time.
     *
     * @param time Absolute timestamp.
     * @param action Callback to execute.
     * @param priority Tie-break at equal times; lower runs first.
     * @return Handle usable with cancel().
     */
    EventId schedule(TimeUs time, std::function<void()> action, int priority = 0);

    /** Cancel a pending event. Cancelling a completed event is a no-op. */
    void cancel(EventId id);

    /** True when no live (non-cancelled) events remain. */
    bool empty() const { return live_.empty(); }

    /** Number of live pending events. */
    std::size_t size() const { return live_.size(); }

    /** Timestamp of the earliest live event; kTimeNever when empty. */
    TimeUs nextTime() const;

    /**
     * Pop and return the earliest live event.
     *
     * @pre !empty()
     */
    Event pop();

    /** Total events ever scheduled (statistics/debugging). */
    std::uint64_t scheduledCount() const { return nextId_; }

  private:
    struct EventLater {
        bool
        operator()(const Event& a, const Event& b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.id > b.id;
        }
    };

    /** Drop cancelled entries sitting at the heap top. */
    void skipDead() const;

    mutable std::priority_queue<Event, std::vector<Event>, EventLater> heap_;
    mutable std::unordered_set<EventId> cancelled_;
    std::unordered_set<EventId> live_;
    EventId nextId_ = 0;
};

}  // namespace splitwise::sim

#endif  // SPLITWISE_SIM_EVENT_QUEUE_H_
