#include "core/slo.h"

#include "hw/machine_spec.h"
#include "metrics/summary.h"

namespace splitwise::core {

SloChecker::SloChecker(const model::LlmConfig& llm)
    : reference_(llm, hw::dgxA100())
{
}

double
SloChecker::refTtftMs(std::int64_t prompt_tokens) const
{
    return sim::usToMs(reference_.promptTime(prompt_tokens, 1));
}

double
SloChecker::refTbtMs(std::int64_t context_tokens) const
{
    return sim::usToMs(reference_.tokenTime(1, context_tokens));
}

double
SloChecker::refE2eMs(const workload::Request& request) const
{
    // Decode context grows from the prompt size onward; the mean
    // context over the request's lifetime prices the reference run.
    const std::int64_t mean_ctx =
        request.promptTokens + request.outputTokens / 2;
    return refTtftMs(request.promptTokens) +
           static_cast<double>(request.outputTokens - 1) * refTbtMs(mean_ctx);
}

SloReport
SloChecker::evaluate(const metrics::RequestMetrics& metrics,
                     const SloSet& slos) const
{
    metrics::Summary ttft_slow;
    metrics::Summary tbt_slow;
    metrics::Summary e2e_slow;
    metrics::Summary maxtbt_slow;

    for (const auto& r : metrics.results()) {
        workload::Request spec;
        spec.promptTokens = r.promptTokens;
        spec.outputTokens = r.outputTokens;
        spec.arrival = r.arrival;
        ttft_slow.add(r.ttftMs / refTtftMs(r.promptTokens));
        if (r.outputTokens > 1) {
            // TBT is the request's average token streaming latency
            // (Table II); requests that overlap many prompt chunks
            // surface in the distribution's upper percentiles.
            const std::int64_t mean_ctx = r.promptTokens + r.outputTokens / 2;
            tbt_slow.add(r.tbtMs / refTbtMs(mean_ctx));
            // Tail-TBT: the worst single gap, against the same
            // uncontended per-token reference.
            maxtbt_slow.add(r.maxTbtMs / refTbtMs(mean_ctx));
        }
        e2e_slow.add(r.e2eMs / refE2eMs(spec));
    }

    SloReport report;
    report.ttftSlowdown = {ttft_slow.p50(), ttft_slow.p90(), ttft_slow.p99()};
    report.tbtSlowdown = {tbt_slow.p50(), tbt_slow.p90(), tbt_slow.p99()};
    report.e2eSlowdown = {e2e_slow.p50(), e2e_slow.p90(), e2e_slow.p99()};
    report.maxTbtSlowdown = {maxtbt_slow.p50(), maxtbt_slow.p90(),
                             maxtbt_slow.p99()};
    report.pass = true;

    // MaxTBT last: a run that already violated a paper Table VI limit
    // keeps its historical first-violation string.
    const struct {
        const char* name;
        const SloLimits* measured;
        const SloLimits* limit;
    } checks[] = {
        {"TTFT", &report.ttftSlowdown, &slos.ttft},
        {"TBT", &report.tbtSlowdown, &slos.tbt},
        {"E2E", &report.e2eSlowdown, &slos.e2e},
        {"MaxTBT", &report.maxTbtSlowdown, &slos.maxTbt},
    };
    for (const auto& c : checks) {
        const struct {
            const char* pct;
            double measured;
            double limit;
        } rows[] = {
            {"p50", c.measured->p50, c.limit->p50},
            {"p90", c.measured->p90, c.limit->p90},
            {"p99", c.measured->p99, c.limit->p99},
        };
        for (const auto& row : rows) {
            if (row.measured > row.limit && report.pass) {
                report.pass = false;
                report.violation = std::string(c.name) + " " + row.pct;
            }
        }
    }
    return report;
}

double
sloAttainment(const SloChecker& checker,
              const metrics::RequestMetrics& metrics, std::size_t submitted,
              const SloSet& slos)
{
    if (submitted == 0)
        return 0.0;
    std::size_t within = 0;
    for (const auto& r : metrics.results()) {
        if (r.ttftMs / checker.refTtftMs(r.promptTokens) > slos.ttft.p99)
            continue;
        if (r.outputTokens > 1) {
            const std::int64_t mean_ctx = r.promptTokens + r.outputTokens / 2;
            if (r.tbtMs / checker.refTbtMs(mean_ctx) > slos.tbt.p99)
                continue;
        }
        workload::Request spec;
        spec.promptTokens = r.promptTokens;
        spec.outputTokens = r.outputTokens;
        spec.arrival = r.arrival;
        if (r.e2eMs / checker.refE2eMs(spec) > slos.e2e.p99)
            continue;
        ++within;
    }
    return static_cast<double>(within) / static_cast<double>(submitted);
}

}  // namespace splitwise::core
