#ifndef SPLITWISE_CORE_SLO_H_
#define SPLITWISE_CORE_SLO_H_

#include <cstddef>
#include <string>

#include "metrics/request_metrics.h"
#include "model/llm_config.h"
#include "model/perf_model.h"
#include "workload/trace.h"

namespace splitwise::core {

/** Slowdown limits at three percentiles for one metric. */
struct SloLimits {
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
};

/**
 * The paper's SLO definition (Table VI): per-request slowdowns
 * relative to the same request running alone on a DGX-A100, at
 * P50/P90/P99, for TTFT, TBT, and E2E. All nine must hold.
 */
struct SloSet {
    SloLimits ttft{2.0, 3.0, 6.0};
    SloLimits tbt{1.25, 1.5, 5.0};
    SloLimits e2e{1.25, 1.5, 5.0};
    /**
     * Tail-TBT: the request's largest single inter-token gap (Fig. 2
     * effect), relative to the uncontended reference TBT. Mixed
     * batching stalls a decode behind whole prompt chunks even at
     * loads where mean TBT is healthy (a baseline H100 at its knee
     * sees p90 near 23x), so the limits sit above that envelope:
     * they bound pathological streaming stalls rather than average
     * pace, and never bind before the paper's nine Table VI checks.
     */
    SloLimits maxTbt{10.0, 30.0, 60.0};
};

/**
 * Measured slowdown percentiles and the pass/fail verdict.
 *
 * All slowdowns are per-request: TBT is the request's average token
 * streaming latency (Table II), so requests that overlap many
 * co-scheduled prompt chunks populate the upper percentiles.
 */
struct SloReport {
    SloLimits ttftSlowdown;
    SloLimits tbtSlowdown;
    SloLimits e2eSlowdown;
    SloLimits maxTbtSlowdown;
    bool pass = false;
    /** First violated limit, e.g. "TBT p99" (empty when passing). */
    std::string violation;
};

/**
 * Evaluates latency SLOs against the uncontended DGX-A100 reference
 * (paper Table VI).
 */
class SloChecker {
  public:
    explicit SloChecker(const model::LlmConfig& llm);

    /** Reference TTFT for a prompt of @p prompt_tokens, ms. */
    double refTtftMs(std::int64_t prompt_tokens) const;

    /** Reference per-token latency at context @p context_tokens, ms. */
    double refTbtMs(std::int64_t context_tokens) const;

    /** Reference E2E latency for @p request, ms. */
    double refE2eMs(const workload::Request& request) const;

    /** Evaluate all nine SLOs over a run's per-request results. */
    SloReport evaluate(const metrics::RequestMetrics& metrics,
                       const SloSet& slos) const;

  private:
    model::AnalyticalPerfModel reference_;
};

/**
 * Fraction of @p submitted requests that finished within every P99
 * slowdown limit of @p slos (Table VI). Requests shed, rejected, or
 * never completed count against attainment - graceful degradation
 * trades exactly this number against capacity and power.
 */
double sloAttainment(const SloChecker& checker,
                     const metrics::RequestMetrics& metrics,
                     std::size_t submitted, const SloSet& slos = {});

}  // namespace splitwise::core

#endif  // SPLITWISE_CORE_SLO_H_
