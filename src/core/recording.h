#ifndef SPLITWISE_CORE_RECORDING_H_
#define SPLITWISE_CORE_RECORDING_H_

/**
 * @file
 * Capture of a live serving session for bit-exact replay.
 *
 * Cluster::serve() stamps every ingress operation with a strictly
 * increasing simulated time before posting it (see core/ingress.h),
 * so a live session is fully described by two ordered lists: the
 * stamped arrival records (a plain workload::Trace) and the stamped
 * cancellations. core::replay() re-runs a recording through the
 * ordinary streaming path — pre-posting each cancel at the captured
 * time — and produces an event sequence, and therefore a RunReport,
 * identical to the live run's. The record→replay round-trip test
 * and the CI server smoke compare the serialized reports
 * byte-for-byte.
 *
 * Serialization is the repo's own JSON (core::JsonValue), so a
 * capture taken from the server binary feeds straight back into
 * `splitwise_server --replay` or the DST invariant checker.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"
#include "workload/trace.h"

namespace splitwise::core {

/** One recorded live session: stamped arrivals plus cancels. */
struct SessionRecording {
    /** A cancellation, replayed at its captured simulated time. */
    struct Cancel {
        sim::TimeUs at = 0;
        std::uint64_t requestId = 0;
    };

    /** Stamped arrival records, in arrival (= stamp) order. */
    workload::Trace requests;
    /** Stamped cancellations, in stamp order. */
    std::vector<Cancel> cancels;

    bool empty() const { return requests.empty() && cancels.empty(); }

    /**
     * Serialize as a JSON object:
     *   {"requests": [{"id","arrival_us","prompt_tokens",
     *                  "output_tokens","priority","session","turn"}],
     *    "cancels": [{"at_us","id"}]}
     */
    std::string toJson() const;

    /** Parse toJson() output; fatal() on malformed documents. */
    static SessionRecording fromJson(const std::string& json);

    /** Write toJson() to @p path; fatal() when unwritable. */
    void save(const std::string& path) const;

    /** Load a save()d recording; fatal() on a missing file. */
    static SessionRecording load(const std::string& path);
};

}  // namespace splitwise::core

#endif  // SPLITWISE_CORE_RECORDING_H_
