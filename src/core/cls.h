#ifndef SPLITWISE_CORE_CLS_H_
#define SPLITWISE_CORE_CLS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "engine/machine.h"
#include "engine/request.h"
#include "sched/policy.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace splitwise::core {

/** Machine pools maintained by the CLS (paper Fig. 10). */
enum class PoolType {
    kPrompt,
    kToken,
    kMixed,
};

/** Human-readable pool name. */
const char* poolTypeName(PoolType pool);

/** Request-routing policy for machine selection within a pool. */
enum class RoutingPolicy {
    /** Join-the-Shortest-Queue (the paper's choice, SIV-A). */
    kJsq,
    /** Uniform-random pick - the ablation baseline. */
    kRandom,
};

/** Cluster-level scheduler tunables (paper SIV-A). */
struct ClsConfig {
    /** How to pick a machine within a pool. */
    RoutingPolicy routing = RoutingPolicy::kJsq;
    /** Seed for the random-routing stream (kRandom only). */
    std::uint64_t routingSeed = 1;
    /**
     * Pending prompt tokens beyond which the best prompt machine is
     * considered overloaded and the mixed pool is consulted.
     */
    std::int64_t promptOverflowTokens = 12000;
    /**
     * KV utilization beyond which the best token machine is
     * considered overloaded.
     */
    double tokenOverflowUtilization = 0.90;
    /**
     * Resident/inbound decode count beyond which the best token
     * machine is considered overloaded (its batch would exceed the
     * latency-efficient range), triggering mixed-pool spillover.
     * Used as a fallback when tokenSloTbtMs is unset.
     */
    int tokenOverflowResidents = 56;
    /**
     * Per-request TBT bound (ms) defining each machine's
     * latency-efficient decode capacity. When positive, a token
     * machine overflows once its residents exceed the largest batch
     * it can decode within this bound (machine-type aware). The
     * Cluster derives it from the SLO reference by default.
     */
    double tokenSloTbtMs = 0.0;
    /**
     * Mixed-pool dwell time after which a machine is re-purposed to
     * the opposite pool; 0 disables re-purposing.
     */
    sim::TimeUs repurposeAfterUs = 0;
    /**
     * Admission control: cluster-wide queued prompt tokens beyond
     * which new arrivals are shed (rejected and counted) instead of
     * queued, so overload degrades gracefully rather than building
     * unbounded queues. 0 disables shedding. Failure-driven restarts
     * are always admitted - the work was already accepted.
     */
    std::int64_t shedQueuedTokensBound = 0;
    /**
     * Brownout level 2+: output-token cap applied to newly admitted
     * requests, bounding the generation work each one can demand
     * while the cluster is degraded.
     */
    std::int64_t brownoutMaxOutputTokens = 256;
};

/**
 * The cluster-level scheduler: routes each arriving request to a
 * (prompt, token) machine pair with Join-the-Shortest-Queue, and
 * manages the prompt/token/mixed machine pools (paper SIV-A).
 *
 * In baseline (non-Splitwise) mode every machine is standalone and
 * requests are routed whole to the least-loaded machine.
 */
class ClusterScheduler {
  public:
    /**
     * @param splitwise False = baseline mixed-batching cluster.
     */
    ClusterScheduler(sim::Simulator& simulator, ClsConfig config,
                     std::vector<engine::Machine*> prompt_machines,
                     std::vector<engine::Machine*> token_machines,
                     bool splitwise);

    /**
     * Route a new request and submit its prompt phase.
     *
     * @param force_admit Bypass admission control (failure-driven
     *     restarts of already-admitted work).
     * @return false when admission control shed the request; the
     *     caller marks it rejected.
     */
    bool onArrival(engine::LiveRequest* request, bool force_admit = false);

    /**
     * Pool-management hook: after each iteration a mixed-pool
     * machine with no opposite-type work returns to its origin pool.
     */
    void onIterationEnd(engine::Machine& machine);

    /**
     * Remove a failed machine from all pools (SIV-E); no further
     * requests are routed to it. The machine's origin is remembered
     * so a later rejoin() restores it to the right pool.
     */
    void markFailed(int machine_id);

    /**
     * Re-admit a recovered machine: it rejoins its origin pool with
     * fresh scheduling state (it comes back empty, so its JSQ
     * signals read zero and new work flows to it immediately).
     */
    void rejoin(int machine_id);

    /**
     * Take a machine out of routing (autoscaler scale-down or role
     * flex): no further requests are routed to it, but it keeps
     * draining in-flight work. Refuses to retire the last routed
     * machine. The entry moves to standby until restore().
     */
    void retire(int machine_id);

    /** Return a standby machine to routing in its remembered origin. */
    void restore(int machine_id);

    /**
     * Return a standby machine to routing under a (possibly new)
     * origin - the autoscaler's role flex. The machine starts in
     * @p origin with fresh pool state.
     */
    void restore(int machine_id, PoolType origin);

    /** True when the machine sits in controller standby. */
    bool inStandby(int machine_id) const;

    /** Number of machines in controller standby. */
    std::size_t standbySize() const { return standby_.size(); }

    /** Smallest-id standby machine, or -1 when standby is empty. */
    int anyStandby() const;

    /**
     * Set the admission-control brownout level (0 = normal):
     *   L1+ sheds arrivals with priority > 0 (lowest-value first),
     *   L2+ additionally caps admitted output lengths,
     *   L3  rejects every new arrival.
     * Failure-driven restarts are always admitted.
     */
    void setBrownoutLevel(int level);

    /** The current brownout level. */
    int brownoutLevel() const { return brownoutLevel_; }

    /**
     * Pick a machine to host a recovered decode (KV-cache restored
     * from a checkpoint, SIV-E). Unlike normal token routing this
     * never pulls a prompt machine into the mixed pool and never
     * returns a failed or overloaded host; nullptr when nothing can
     * take the work (caller falls back to a from-scratch restart).
     */
    engine::Machine* pickRecoveryTokenMachine();

    /** Queued prompt tokens across all live machines. */
    std::int64_t queuedPromptTokens() const;

    /** Current pool of a machine. */
    PoolType poolOf(int machine_id) const;

    /** Original identity of a machine. */
    PoolType originOf(int machine_id) const;

    /** Number of requests that overflowed into the mixed pool. */
    std::uint64_t mixedPoolRoutes() const { return mixedRoutes_; }

    /** Number of pool transitions (into or out of mixed). */
    std::uint64_t poolTransitions() const { return poolTransitions_; }

    /** Number of permanent re-purposings. */
    std::uint64_t repurposings() const { return repurposings_; }

    /** Number of arrivals shed by admission control. */
    std::uint64_t shedRequests() const { return shedRequests_; }

    /** Number of failed machines re-admitted after recovery. */
    std::uint64_t rejoins() const { return rejoins_; }

    /** Number of machines taken out of routing by the controller. */
    std::uint64_t retires() const { return retires_; }

    /** Number of standby machines returned to routing. */
    std::uint64_t restores() const { return restores_; }

    /** Number of admissions whose output length was brownout-capped. */
    std::uint64_t cappedRequests() const { return cappedRequests_; }

    /** Machines currently assigned to @p pool (live only). */
    std::size_t poolSize(PoolType pool) const;

    /** True when the machine is live (member of some pool). */
    bool contains(int machine_id) const;

    /** Number of live (non-failed) machines across all pools. */
    std::size_t liveMachines() const { return entries_.size(); }

    /**
     * Attach a trace recorder: shed/transition/rejoin instants land
     * on the cluster track. nullptr detaches.
     */
    void setTrace(telemetry::TraceRecorder* trace) { trace_ = trace; }

    /**
     * Attach a span tracker: brownout-level changes flow into it so
     * queue wait taken under degraded admission is attributed as
     * brownout stall. nullptr detaches.
     */
    void setSpans(telemetry::SpanTracker* spans) { spans_ = spans; }

    /**
     * Attach a scheduling policy (non-owning; the Cluster owns it).
     * prepareRoute() runs before every admitted arrival's routing;
     * an affinity preference is honoured when the named machine is
     * still routed, and degrades to the normal JSQ path (with the
     * request's prefix tag cleared) otherwise. nullptr detaches.
     */
    void setPolicy(sched::Policy* policy) { policy_ = policy; }

  private:
    struct Entry {
        engine::Machine* machine = nullptr;
        PoolType origin = PoolType::kPrompt;
        PoolType pool = PoolType::kPrompt;
        sim::TimeUs mixedSince = 0;
    };

    /** Least prompt-loaded machine currently in @p pool with the
     *  given origin filter (nullptr filter = any). */
    engine::Machine* jsqPrompt(PoolType pool) const;
    engine::Machine* jsqToken(PoolType pool) const;

    void moveToPool(int machine_id, PoolType pool);

    bool promptOverloaded(const engine::Machine& m) const;
    bool tokenOverloaded(const engine::Machine& m) const;

    /** True when admission control should shed a new arrival. */
    bool shouldShed() const;

    /** Brownout-aware shed decision for one arrival. */
    bool shouldShedRequest(const engine::LiveRequest& request) const;

    void routeBaseline(engine::LiveRequest* request);
    void routeSplitwise(engine::LiveRequest* request);

    /**
     * Resolve the policy's affinity preference for @p request:
     * the preferred machine when it is still routed and live, else
     * nullptr (after clearing the request's prefix tag — the pin
     * can only be taken on the machine that holds the prefix).
     */
    engine::Machine* affinityMachine(engine::LiveRequest* request);

    /** Pick the prompt-phase machine, spilling into the mixed pool
     *  and opposite pool under load. Sets local_decode when the
     *  machine should also run the token phase. */
    engine::Machine* pickPromptMachine(bool& local_decode);

    /** Pick the token-phase machine, spilling symmetrically. */
    engine::Machine* pickTokenMachine();

    /** Uniform-random pick among eligible machines (kRandom). */
    engine::Machine* pickRandom(std::vector<engine::Machine*>& eligible) const;

    sim::Simulator& simulator_;
    ClsConfig config_;
    bool splitwise_;
    mutable sim::Rng routingRng_{1};
    std::unordered_map<int, Entry> entries_;
    /** Entries of currently-failed machines, parked for rejoin(). */
    std::unordered_map<int, Entry> lost_;
    /** Entries retired from routing by the controller (draining or
     *  parked machines), waiting for restore(). */
    std::unordered_map<int, Entry> standby_;
    std::vector<int> machineIds_;
    int brownoutLevel_ = 0;
    std::uint64_t mixedRoutes_ = 0;
    std::uint64_t poolTransitions_ = 0;
    std::uint64_t repurposings_ = 0;
    std::uint64_t shedRequests_ = 0;
    std::uint64_t rejoins_ = 0;
    std::uint64_t retires_ = 0;
    std::uint64_t restores_ = 0;
    std::uint64_t cappedRequests_ = 0;
    telemetry::TraceRecorder* trace_ = nullptr;
    telemetry::SpanTracker* spans_ = nullptr;
    sched::Policy* policy_ = nullptr;
};

}  // namespace splitwise::core

#endif  // SPLITWISE_CORE_CLS_H_
