#ifndef SPLITWISE_CORE_REPORT_IO_H_
#define SPLITWISE_CORE_REPORT_IO_H_

#include <string>

#include "core/cluster.h"
#include "core/slo.h"

namespace splitwise::core {

/**
 * Serialize a run report (and optionally its SLO evaluation) as a
 * JSON object - the hand-off format for external plotting or
 * regression-tracking tooling.
 *
 * Layout:
 *   {
 *     "design": {...}, "requests": {...latency summaries...},
 *     "pools": {"prompt": {...}, "token": {...}},
 *     "transfers": {...}, "scheduler": {...}, "slo": {...}?
 *   }
 */
std::string reportToJson(const RunReport& report,
                         const SloReport* slo = nullptr);

/** Write reportToJson() to a file. */
void writeReportJson(const RunReport& report, const std::string& path,
                     const SloReport* slo = nullptr);

}  // namespace splitwise::core

#endif  // SPLITWISE_CORE_REPORT_IO_H_
