#ifndef SPLITWISE_CORE_REPORT_IO_H_
#define SPLITWISE_CORE_REPORT_IO_H_

#include <string>

#include "core/cluster.h"
#include "core/slo.h"

namespace splitwise::core {

/**
 * Serialize a run report (and optionally its SLO evaluation) as a
 * JSON object - the hand-off format for external plotting or
 * regression-tracking tooling.
 *
 * Layout:
 *   {
 *     "design": {...}, "requests": {...latency summaries...},
 *     "pools": {"prompt": {...}, "token": {...}},
 *     "transfers": {...}, "scheduler": {...}, "slo": {...}?
 *   }
 */
std::string reportToJson(const RunReport& report,
                         const SloReport* slo = nullptr);

/** Write reportToJson() to a file. */
void writeReportJson(const RunReport& report, const std::string& path,
                     const SloReport* slo = nullptr);

/**
 * The scalar view of a serialized run report: everything
 * reportToJson() emits except the raw latency samples (a Summary
 * serializes its percentiles, not its sample set, so a full RunReport
 * cannot be reconstructed - the digest is the round-trippable part).
 */
struct ReportDigest {
    int machines = 0;
    double costPerHour = 0.0;
    double powerWatts = 0.0;

    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    double throughputRps = 0.0;
    double ttftP50Ms = 0.0;
    double ttftP99Ms = 0.0;
    double tbtP50Ms = 0.0;
    /** Tail-TBT: P99 of the per-request worst inter-token gap. */
    double maxTbtP99Ms = 0.0;
    double e2eP50Ms = 0.0;

    std::int64_t promptPoolTokens = 0;
    std::int64_t tokenPoolTokens = 0;

    std::uint64_t transfers = 0;
    std::uint64_t transferFaults = 0;
    std::uint64_t transferTimeouts = 0;
    std::uint64_t transferRetries = 0;
    std::uint64_t transferAborts = 0;

    std::uint64_t mixedRoutes = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t restarts = 0;
    std::uint64_t checkpointRestores = 0;
    std::uint64_t rejected = 0;
    std::uint64_t rejoins = 0;

    bool hasSlo = false;
    bool sloPass = false;

    /** Prefix-cache section (non-default scheduling policy only). */
    bool hasPrefixCache = false;
    std::uint64_t prefixHits = 0;
    std::uint64_t prefixMisses = 0;
    std::uint64_t prefixEvictions = 0;
    std::int64_t prefixHitTokens = 0;
    std::uint64_t affinityRoutes = 0;
};

/**
 * Parse a reportToJson() document back into its scalar digest
 * (report -> JSON -> digest round-trip); fatal() on malformed input
 * or missing sections.
 */
ReportDigest reportDigestFromJson(const std::string& json);

}  // namespace splitwise::core

#endif  // SPLITWISE_CORE_REPORT_IO_H_
