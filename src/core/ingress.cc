#include "core/ingress.h"

#include <condition_variable>

#include "sim/log.h"

namespace splitwise::core {

/**
 * Completion rendezvous for one inspect(): lives on the inspecting
 * thread's stack; the serving thread signals after running the
 * closure.
 */
struct InspectDone {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;

    void
    signal()
    {
        {
            std::lock_guard<std::mutex> lock(mu);
            done = true;
        }
        cv.notify_all();
    }

    void
    wait()
    {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [this] { return done; });
    }
};

void
RequestHandle::cancel()
{
    if (ingress_ && id_ != 0)
        ingress_->cancel(id_);
    ingress_ = nullptr;
    id_ = 0;
}

RequestHandle
Ingress::submit(const IngressRequest& request, StreamCallback on_token)
{
    std::uint64_t id = 0;
    sim::Clock* clock = nullptr;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (state_ != State::kDone && !shutdownRequested_) {
            id = nextId_++;
            Op op;
            op.kind = Op::Kind::kSubmit;
            op.id = id;
            op.request = request;
            op.onToken = std::move(on_token);
            mailbox_.push_back(std::move(op));
            ++counters_.accepted;
            clock = clock_;
        }
    }
    if (id == 0) {
        // Serving is over (or draining): terminally reject on the
        // caller's thread so every submission still resolves.
        if (on_token) {
            TokenUpdate update;
            update.rejected = true;
            on_token(update);
        }
        return RequestHandle();
    }
    if (clock)
        clock->wake();
    return RequestHandle(this, id);
}

void
Ingress::cancel(std::uint64_t request_id)
{
    if (request_id == 0)
        return;
    sim::Clock* clock = nullptr;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (state_ == State::kDone)
            return;
        Op op;
        op.kind = Op::Kind::kCancel;
        op.id = request_id;
        mailbox_.push_back(std::move(op));
        ++counters_.cancels;
        clock = clock_;
    }
    if (clock)
        clock->wake();
}

void
Ingress::shutdown()
{
    sim::Clock* clock = nullptr;
    {
        std::lock_guard<std::mutex> lock(mu_);
        shutdownRequested_ = true;
        clock = clock_;
    }
    if (clock)
        clock->wake();
}

bool
Ingress::inspect(const std::function<void(const Cluster&)>& fn)
{
    InspectDone done;
    sim::Clock* clock = nullptr;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (state_ != State::kServing)
            return false;
        Op op;
        op.kind = Op::Kind::kInspect;
        op.inspectFn = &fn;
        op.inspectDone = &done;
        mailbox_.push_back(std::move(op));
        clock = clock_;
    }
    if (clock)
        clock->wake();
    done.wait();
    return true;
}

void
Ingress::beginServe(sim::Clock* clock)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ != State::kIdle)
        sim::fatal("Ingress: one serve loop per Ingress instance");
    state_ = State::kServing;
    clock_ = clock;
}

bool
Ingress::takeOps(std::vector<Op>* out)
{
    out->clear();
    std::lock_guard<std::mutex> lock(mu_);
    if (mailbox_.empty())
        return false;
    mailbox_.swap(*out);
    return true;
}

void
Ingress::endServe(const Cluster& cluster)
{
    std::vector<Op> stragglers;
    {
        std::lock_guard<std::mutex> lock(mu_);
        state_ = State::kDone;
        clock_ = nullptr;
        stragglers.swap(mailbox_);
    }
    // Submissions that raced past the shutdown flag but were never
    // drained resolve terminally here; queued inspections still see
    // the (post-run) cluster; cancels have nothing left to cancel.
    for (Op& op : stragglers) {
        switch (op.kind) {
          case Op::Kind::kSubmit: {
            {
                std::lock_guard<std::mutex> lock(mu_);
                ++counters_.rejectedAtShutdown;
            }
            if (op.onToken) {
                TokenUpdate update;
                update.requestId = op.id;
                update.rejected = true;
                op.onToken(update);
            }
            break;
          }
          case Op::Kind::kInspect:
            runInspect(op, cluster);
            break;
          case Op::Kind::kCancel:
            break;
        }
    }
}

void
Ingress::runInspect(const Op& op, const Cluster& cluster)
{
    (*op.inspectFn)(cluster);
    op.inspectDone->signal();
}

void
Ingress::onAdmitQueued(std::uint64_t id, StreamCallback cb)
{
    if (cb)
        callbacks_.emplace(id, std::move(cb));
}

void
Ingress::dispatch(const TokenUpdate& update)
{
    const auto it = callbacks_.find(update.requestId);
    if (it != callbacks_.end())
        it->second(update);
}

void
Ingress::onFinished(std::uint64_t id)
{
    callbacks_.erase(id);
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.completed;
}

void
Ingress::onRejected(std::uint64_t id, sim::TimeUs at)
{
    const auto it = callbacks_.find(id);
    if (it != callbacks_.end()) {
        TokenUpdate update;
        update.requestId = id;
        update.rejected = true;
        update.at = at;
        it->second(update);
        callbacks_.erase(it);
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.rejectedByAdmission;
}

}  // namespace splitwise::core
