#include "core/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "sim/log.h"

namespace splitwise::core {

namespace {

/** Cursor over the input text with shared error reporting. */
struct Parser {
    const std::string& text;
    std::size_t pos = 0;

    [[noreturn]] void
    fail(const std::string& what) const
    {
        sim::fatal("JsonValue::parse: " + what + " at offset " +
                   std::to_string(pos));
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
    }

    char
    peek()
    {
        skipSpace();
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < text.size() && peek() == c) {
            ++pos;
            return true;
        }
        return false;
    }

    void
    literal(const char* word)
    {
        for (const char* p = word; *p; ++p) {
            if (pos >= text.size() || text[pos] != *p)
                fail(std::string("bad literal (wanted \"") + word + "\")");
            ++pos;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= text.size())
                fail("unterminated string");
            const char c = text[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                fail("unterminated escape");
            const char e = text[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos + 4 > text.size())
                    fail("truncated \\u escape");
                const unsigned code = static_cast<unsigned>(
                    std::strtoul(text.substr(pos, 4).c_str(), nullptr, 16));
                pos += 4;
                // Our own emitters never produce non-ASCII escapes;
                // anything above 7F is replaced rather than decoded.
                out += code < 0x80 ? static_cast<char>(code) : '?';
                break;
              }
              default: fail("unknown escape");
            }
        }
    }

    JsonValue
    parseValue()
    {
        const char c = peek();
        if (c == '{') {
            ++pos;
            JsonValue obj = JsonValue::makeObject();
            if (consume('}'))
                return obj;
            while (true) {
                std::string key = parseString();
                expect(':');
                obj.set(key, parseValue());
                if (consume(','))
                    continue;
                expect('}');
                return obj;
            }
        }
        if (c == '[') {
            ++pos;
            JsonValue arr = JsonValue::makeArray();
            if (consume(']'))
                return arr;
            while (true) {
                arr.push(parseValue());
                if (consume(','))
                    continue;
                expect(']');
                return arr;
            }
        }
        if (c == '"')
            return JsonValue(parseString());
        if (c == 't') {
            literal("true");
            return JsonValue(true);
        }
        if (c == 'f') {
            literal("false");
            return JsonValue(false);
        }
        if (c == 'n') {
            literal("null");
            return JsonValue();
        }
        // Number.
        const std::size_t start = pos;
        if (c == '-')
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
                text[pos] == '+' || text[pos] == '-')) {
            ++pos;
        }
        if (pos == start)
            fail("unexpected character");
        char* end = nullptr;
        const std::string token = text.substr(start, pos - start);
        const double value = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0')
            fail("malformed number \"" + token + "\"");
        return JsonValue(value);
    }
};

}  // namespace

JsonValue
JsonValue::parse(const std::string& text)
{
    Parser parser{text};
    JsonValue value = parser.parseValue();
    parser.skipSpace();
    if (parser.pos != text.size())
        parser.fail("trailing garbage");
    return value;
}

JsonValue
JsonValue::makeArray()
{
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
}

JsonValue
JsonValue::makeObject()
{
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
}

bool
JsonValue::asBool() const
{
    if (type_ != Type::kBool)
        sim::fatal("JsonValue: not a bool");
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (type_ != Type::kNumber)
        sim::fatal("JsonValue: not a number");
    return number_;
}

std::int64_t
JsonValue::asInt() const
{
    return static_cast<std::int64_t>(asNumber());
}

const std::string&
JsonValue::asString() const
{
    if (type_ != Type::kString)
        sim::fatal("JsonValue: not a string");
    return string_;
}

std::size_t
JsonValue::size() const
{
    if (type_ == Type::kArray)
        return array_.size();
    if (type_ == Type::kObject)
        return object_.size();
    sim::fatal("JsonValue: size() of a scalar");
}

const JsonValue&
JsonValue::at(std::size_t index) const
{
    if (type_ != Type::kArray)
        sim::fatal("JsonValue: not an array");
    if (index >= array_.size())
        sim::fatal("JsonValue: array index out of range");
    return array_[index];
}

const std::vector<JsonValue>&
JsonValue::items() const
{
    if (type_ != Type::kArray)
        sim::fatal("JsonValue: not an array");
    return array_;
}

bool
JsonValue::has(const std::string& key) const
{
    if (type_ != Type::kObject)
        sim::fatal("JsonValue: not an object");
    for (const auto& [k, v] : object_) {
        if (k == key)
            return true;
    }
    return false;
}

const JsonValue&
JsonValue::at(const std::string& key) const
{
    if (type_ != Type::kObject)
        sim::fatal("JsonValue: not an object");
    // Last set wins, matching set()'s append semantics.
    for (auto it = object_.rbegin(); it != object_.rend(); ++it) {
        if (it->first == key)
            return it->second;
    }
    sim::fatal("JsonValue: missing key \"" + key + "\"");
}

const JsonValue&
JsonValue::get(const std::string& key, const JsonValue& fallback) const
{
    return has(key) ? at(key) : fallback;
}

const std::vector<std::pair<std::string, JsonValue>>&
JsonValue::members() const
{
    if (type_ != Type::kObject)
        sim::fatal("JsonValue: not an object");
    return object_;
}

void
JsonValue::push(JsonValue v)
{
    if (type_ != Type::kArray)
        sim::fatal("JsonValue: push on a non-array");
    array_.push_back(std::move(v));
}

void
JsonValue::set(const std::string& key, JsonValue v)
{
    if (type_ != Type::kObject)
        sim::fatal("JsonValue: set on a non-object");
    object_.emplace_back(key, std::move(v));
}

std::string
JsonValue::dump() const
{
    switch (type_) {
      case Type::kNull:
        return "null";
      case Type::kBool:
        return bool_ ? "true" : "false";
      case Type::kNumber: {
        // Integral values print without an exponent or fraction so
        // ids and counters stay readable; %.17g round-trips the rest.
        char buf[64];
        const auto as_int = static_cast<std::int64_t>(number_);
        if (static_cast<double>(as_int) == number_) {
            std::snprintf(buf, sizeof(buf), "%lld",
                          static_cast<long long>(as_int));
        } else {
            std::snprintf(buf, sizeof(buf), "%.17g", number_);
        }
        return buf;
      }
      case Type::kString:
        return '"' + jsonEscape(string_) + '"';
      case Type::kArray: {
        std::string out = "[";
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i > 0)
                out += ',';
            out += array_[i].dump();
        }
        return out + ']';
      }
      case Type::kObject: {
        std::string out = "{";
        for (std::size_t i = 0; i < object_.size(); ++i) {
            if (i > 0)
                out += ',';
            out += '"' + jsonEscape(object_[i].first) +
                   "\":" + object_[i].second.dump();
        }
        return out + '}';
      }
    }
    return "null";
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

}  // namespace splitwise::core
