#ifndef SPLITWISE_CORE_INGRESS_H_
#define SPLITWISE_CORE_INGRESS_H_

/**
 * @file
 * The thread-safe request-ingress boundary into the event engine.
 *
 * The simulator, the cluster, and everything below them are strictly
 * single-threaded. Ingress is the one concurrency seam in front of
 * them: client threads submit(), cancel(), and inspect() into a
 * mutex-protected mailbox and wake the serving clock; the serving
 * thread (Cluster::serve) drains the mailbox only at quiescent
 * points — after every event sharing a timestamp has fired — stamps
 * each operation with a strictly increasing simulated time, and
 * posts it as an ordinary arrival-priority event. Everything past
 * the mailbox therefore runs exactly as an offline replay would,
 * which is what makes a live session capturable and bit-exact to
 * re-run (see core/recording.h).
 *
 * Conservation contract: every accepted submit() reaches exactly one
 * terminal streaming update — finished, shed by admission control
 * (rejected), or rejected at shutdown — and
 *     accepted() == completed() + rejectedByAdmission()
 *                 + rejectedAtShutdown()
 * holds once serve() has returned. The concurrent-ingress TSan test
 * pins this.
 */

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/clock.h"
#include "sim/time.h"

namespace splitwise::core {

class Cluster;
class Ingress;
struct InspectDone;

/** A live client request: everything but the arrival time, which the
 *  serving thread stamps when it drains the submission. */
struct IngressRequest {
    std::int64_t promptTokens = 0;
    /** Token budget; a later cancel clamps it to end the stream. */
    std::int64_t outputTokens = 1;
    /** 0 = interactive; higher values shed first under brownout. */
    int priority = 0;
    /** Multi-turn session id; 0 = standalone (prefix-cache reuse). */
    std::uint64_t session = 0;
    /** Zero-based turn index within the session. */
    int turn = 0;
};

/** One streaming progress update for a live request. */
struct TokenUpdate {
    std::uint64_t requestId = 0;
    /** Tokens generated so far (1-based; monotone per request). */
    std::int64_t tokensGenerated = 0;
    /** The request produced its final token (terminal). */
    bool finished = false;
    /**
     * The request never ran: shed by admission control, or refused
     * because serving had already shut down (terminal).
     */
    bool rejected = false;
    /** Simulated time of the update (0 for shutdown rejections). */
    sim::TimeUs at = 0;
};

/**
 * Per-token streaming callback. Invoked on the serving thread (or,
 * for post-shutdown rejections, on the submitting thread), so it
 * must be fast and must not call back into the same Ingress.
 */
using StreamCallback = std::function<void(const TokenUpdate&)>;

/**
 * Owner of one submitted request, in the EventHandle mold: dropping
 * the handle cancels the request (the stream ends at the next token
 * boundary), detach() lets it run to completion unowned. Movable,
 * not copyable. Returned [[nodiscard]] from Ingress::submit —
 * silently discarding it would cancel the request immediately.
 */
class [[nodiscard]] RequestHandle {
  public:
    RequestHandle() = default;

    RequestHandle(RequestHandle&& other) noexcept
        : ingress_(other.ingress_), id_(other.id_)
    {
        other.ingress_ = nullptr;
        other.id_ = 0;
    }

    RequestHandle&
    operator=(RequestHandle&& other) noexcept
    {
        if (this != &other) {
            cancel();
            ingress_ = other.ingress_;
            id_ = other.id_;
            other.ingress_ = nullptr;
            other.id_ = 0;
        }
        return *this;
    }

    RequestHandle(const RequestHandle&) = delete;
    RequestHandle& operator=(const RequestHandle&) = delete;

    ~RequestHandle() { cancel(); }

    /** The request's id; 0 for an empty (rejected/moved) handle. */
    std::uint64_t id() const { return id_; }

    /** True when this handle owns a submitted request. */
    bool valid() const { return id_ != 0; }

    /**
     * Request cancellation: the stream finishes at the next token
     * boundary (requests already finished are unaffected). The
     * handle disarms; terminal updates still arrive through the
     * streaming callback. Idempotent.
     */
    void cancel();

    /**
     * Let the request run to completion unowned and disarm the
     * destructor's auto-cancel.
     *
     * @return the request id, for a later Ingress::cancel().
     */
    [[nodiscard]] std::uint64_t
    detach()
    {
        const std::uint64_t id = id_;
        ingress_ = nullptr;
        id_ = 0;
        return id;
    }

  private:
    friend class Ingress;
    RequestHandle(Ingress* ingress, std::uint64_t id)
        : ingress_(ingress), id_(id)
    {
    }

    Ingress* ingress_ = nullptr;
    std::uint64_t id_ = 0;
};

/**
 * The mailbox between client threads and one Cluster::serve() loop.
 *
 * Lifecycle: construct, hand to Cluster::serve() (directly or via
 * core::runLive) on a serving thread, submit()/cancel()/inspect()
 * from any number of client threads, shutdown() to drain and stop.
 * One serve loop per Ingress; not reusable across runs.
 */
class Ingress {
  public:
    Ingress() = default;
    Ingress(const Ingress&) = delete;
    Ingress& operator=(const Ingress&) = delete;

    /**
     * Submit a request for serving.
     *
     * @param on_token Optional per-token streaming callback; see
     *     StreamCallback for the threading contract.
     * @return Owner handle; invalid (and, when a callback was given,
     *     already terminally rejected) when serving has shut down.
     */
    [[nodiscard]] RequestHandle submit(const IngressRequest& request,
                                       StreamCallback on_token = {});

    /**
     * Cancel a request by id (from RequestHandle::id()/detach()).
     * The request finishes at its next token boundary; unknown or
     * already-finished ids are a deterministic no-op. Thread-safe.
     */
    void cancel(std::uint64_t request_id);

    /**
     * Stop accepting submissions and let the serve loop drain: it
     * returns once every admitted request has finished. Thread-safe,
     * idempotent.
     */
    void shutdown();

    /** True once shutdown() has been called. */
    bool
    shutdownRequested() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return shutdownRequested_;
    }

    /**
     * Run @p fn against the serving cluster at its next quiescent
     * point, blocking until it completes — the race-free way to
     * snapshot metrics from another thread.
     *
     * @return false (without running @p fn) when no serve loop is
     *     active to execute it.
     */
    bool inspect(const std::function<void(const Cluster&)>& fn);

    /** Submissions accepted into the mailbox. */
    std::uint64_t
    accepted() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return counters_.accepted;
    }

    /** Requests that produced their final token. */
    std::uint64_t
    completed() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return counters_.completed;
    }

    /** Requests shed by the cluster's admission control. */
    std::uint64_t
    rejectedByAdmission() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return counters_.rejectedByAdmission;
    }

    /** Accepted submissions drained after serving already ended. */
    std::uint64_t
    rejectedAtShutdown() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return counters_.rejectedAtShutdown;
    }

    /** Cancel operations accepted (including no-op cancels). */
    std::uint64_t
    cancelsRequested() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return counters_.cancels;
    }

    /**
     * Accepted submissions not yet terminally resolved. Zero once
     * serve() has returned — the no-leaked-requests gate the server
     * binary and the CI smoke assert.
     */
    std::uint64_t
    unresolved() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return counters_.accepted - counters_.completed -
               counters_.rejectedByAdmission - counters_.rejectedAtShutdown;
    }

  private:
    friend class Cluster;
    friend class RequestHandle;

    /** One queued client operation, drained FIFO. */
    struct Op {
        enum class Kind { kSubmit, kCancel, kInspect };
        Kind kind = Kind::kSubmit;
        std::uint64_t id = 0;
        IngressRequest request;
        StreamCallback onToken;
        /** inspect(): closure + completion flag on the caller's
         *  stack; the caller blocks until the serve loop signals. */
        const std::function<void(const Cluster&)>* inspectFn = nullptr;
        InspectDone* inspectDone = nullptr;
    };

    /** Lifecycle counters, guarded by mu_. */
    struct Counters {
        std::uint64_t accepted = 0;
        std::uint64_t completed = 0;
        std::uint64_t rejectedByAdmission = 0;
        std::uint64_t rejectedAtShutdown = 0;
        std::uint64_t cancels = 0;
    };

    // --- serving-thread interface (Cluster::serve) ---

    /** Bind the serving clock and open the mailbox for draining. */
    void beginServe(sim::Clock* clock);

    /** Swap the queued operations into @p out; true when any. */
    bool takeOps(std::vector<Op>* out);

    /** True when operations are queued (post-drain re-check). */
    bool
    hasQueued() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return !mailbox_.empty();
    }

    /**
     * Serving ended: reject straggler submissions (terminal update
     * on this thread), run straggler inspections against
     * @p cluster, drop straggler cancels.
     */
    void endServe(const Cluster& cluster);

    /** Run one drained inspect op against @p cluster and signal the
     *  blocked caller. */
    static void runInspect(const Op& op, const Cluster& cluster);

    /** The serve loop admitted @p id; future tokens stream to @p cb. */
    void onAdmitQueued(std::uint64_t id, StreamCallback cb);

    /** Dispatch one streaming update to its callback. */
    void dispatch(const TokenUpdate& update);

    /** The request produced its final token. */
    void onFinished(std::uint64_t id);

    /** Admission control shed the request at @p at. */
    void onRejected(std::uint64_t id, sim::TimeUs at);

    enum class State { kIdle, kServing, kDone };

    mutable std::mutex mu_;
    State state_ = State::kIdle;
    bool shutdownRequested_ = false;
    std::uint64_t nextId_ = 1;
    std::vector<Op> mailbox_;
    sim::Clock* clock_ = nullptr;

    Counters counters_;
    /** id → streaming callback; serving-thread only. */
    std::unordered_map<std::uint64_t, StreamCallback> callbacks_;
};

}  // namespace splitwise::core

#endif  // SPLITWISE_CORE_INGRESS_H_
