#include "core/fault_plan.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <tuple>

#include "core/cluster.h"
#include "sim/log.h"
#include "sim/rng.h"

namespace splitwise::core {

const char*
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::kCrash: return "crash";
      case FaultKind::kSlowdown: return "slowdown";
      case FaultKind::kLinkFault: return "link-fault";
      case FaultKind::kLinkDegrade: return "link-degrade";
    }
    return "?";
}

std::size_t
FaultPlan::count(FaultKind kind) const
{
    return static_cast<std::size_t>(
        std::count_if(events.begin(), events.end(),
                      [kind](const FaultEvent& e) { return e.kind == kind; }));
}

void
FaultPlan::sort()
{
    std::stable_sort(events.begin(), events.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                         return std::tie(a.at, a.machineId, a.kind) <
                                std::tie(b.at, b.machineId, b.kind);
                     });
}

void
FaultPlan::validate(int num_machines) const
{
    for (const FaultEvent& e : events) {
        const std::string tag = std::string(faultKindName(e.kind)) +
                                " on machine " +
                                std::to_string(e.machineId);
        if (e.machineId < 0 || e.machineId >= num_machines)
            sim::fatal("FaultPlan: bad machine id (" + tag + ")");
        if (e.at < 0)
            sim::fatal("FaultPlan: negative fault time (" + tag + ")");
        if (e.durationUs < 0)
            sim::fatal("FaultPlan: negative duration (" + tag + ")");
        switch (e.kind) {
          case FaultKind::kCrash:
            break;  // durationUs == 0 means a permanent failure
          case FaultKind::kSlowdown:
            if (e.durationUs == 0 || e.factor <= 0.0)
                sim::fatal("FaultPlan: bad slowdown (" + tag + ")");
            break;
          case FaultKind::kLinkFault:
            if (e.durationUs == 0)
                sim::fatal("FaultPlan: empty link-fault window (" + tag +
                           ")");
            break;
          case FaultKind::kLinkDegrade:
            if (e.durationUs == 0 || e.factor <= 0.0 || e.factor > 1.0)
                sim::fatal("FaultPlan: bad link degrade (" + tag + ")");
            break;
        }
    }
}

FaultPlan
makeFaultStorm(const FaultStormConfig& config, std::uint64_t seed)
{
    if (config.numMachines <= 0)
        sim::fatal("makeFaultStorm: numMachines must be positive");
    if (config.crashes >= config.numMachines)
        sim::fatal("makeFaultStorm: storm would crash every machine");

    sim::Rng rng(seed);
    FaultPlan plan;

    const auto draw_time = [&] {
        return rng.uniformInt(0, config.horizonUs - 1);
    };

    // Crash targets without replacement: a machine that is down (or
    // freshly rejoined) crashing again is a distinct scenario, and a
    // storm should spread its damage.
    std::vector<int> ids(static_cast<std::size_t>(config.numMachines));
    std::iota(ids.begin(), ids.end(), 0);
    for (int i = 0; i < config.crashes; ++i) {
        const auto pick = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(ids.size()) - 1));
        const int target = ids[pick];
        ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(pick));
        FaultEvent e;
        e.kind = FaultKind::kCrash;
        e.machineId = target;
        e.at = draw_time();
        e.durationUs =
            rng.uniformInt(config.minDowntimeUs, config.maxDowntimeUs);
        plan.add(e);
    }

    for (int i = 0; i < config.slowdowns; ++i) {
        FaultEvent e;
        e.kind = FaultKind::kSlowdown;
        e.machineId =
            static_cast<int>(rng.uniformInt(0, config.numMachines - 1));
        e.at = draw_time();
        e.durationUs = config.slowdownWindowUs;
        e.factor =
            rng.uniform(config.minSlowdownFactor, config.maxSlowdownFactor);
        plan.add(e);
    }

    for (int i = 0; i < config.linkFaults; ++i) {
        FaultEvent e;
        e.kind = FaultKind::kLinkFault;
        e.machineId =
            static_cast<int>(rng.uniformInt(0, config.numMachines - 1));
        e.at = draw_time();
        e.durationUs = config.linkFaultWindowUs;
        plan.add(e);
    }

    for (int i = 0; i < config.linkDegrades; ++i) {
        FaultEvent e;
        e.kind = FaultKind::kLinkDegrade;
        e.machineId =
            static_cast<int>(rng.uniformInt(0, config.numMachines - 1));
        e.at = draw_time();
        e.durationUs = config.linkDegradeWindowUs;
        e.factor =
            rng.uniform(config.minBandwidthFactor, config.maxBandwidthFactor);
        plan.add(e);
    }

    plan.sort();
    return plan;
}

void
FaultInjector::apply(const FaultPlan& plan)
{
    plan.validate(cluster_.design().machines());
    for (const FaultEvent& e : plan.events) {
        switch (e.kind) {
          case FaultKind::kCrash:
            if (e.durationUs > 0)
                cluster_.scheduleFailure(e.machineId, e.at, e.durationUs);
            else
                cluster_.scheduleFailure(e.machineId, e.at);
            break;
          case FaultKind::kSlowdown:
            cluster_.scheduleSlowdown(e.machineId, e.at, e.durationUs,
                                      e.factor);
            break;
          case FaultKind::kLinkFault:
            cluster_.scheduleLinkFault(e.machineId, e.at, e.durationUs);
            break;
          case FaultKind::kLinkDegrade:
            cluster_.scheduleLinkDegrade(e.machineId, e.at, e.durationUs,
                                         e.factor);
            break;
        }
    }
}

}  // namespace splitwise::core
